#!/bin/sh
# Tier-1 integration check for the parallel sweep runner:
#
#   1. A small protocol x load sweep at --jobs 1 and --jobs 8 must
#      produce byte-identical artifacts — the results CSV, the binary
#      event trace (--trace-out), and the metrics export
#      (--metrics-out, including the fairness.* entries from the
#      auditor). Every grid cell is hermetic, so thread interleaving
#      must not be observable in any output. (The per-cell
#      --timing-csv is host wall-clock and deliberately excluded from
#      the comparison.)
#   2. busarb_sim --snapshot-out emits the same JSONL bytes at
#      --jobs 1 and --jobs 8: snapshots (fairness and health alike)
#      are keyed to simulated time, never to scheduling order. The
#      health lines are additionally diffed on their own.
#   3. A malformed --loads token must exit with status 2 and name the
#      offending token (regression for the unchecked std::stod abort).
#   3b. The event-queue storage policy is unobservable: --queue heap
#      (the reference binary heap) must produce byte-identical CSV,
#      trace, metrics, and snapshot JSONL to the default calendar
#      queue. The two implementations share one ordering contract —
#      (tick, priority, insertion sequence) — and any divergence in
#      any artifact means one of them broke it (see docs/KERNEL.md).
#   4. A --grid scenario file describing the same sweep must produce
#      byte-identical CSV and metrics to the flag invocation — and
#      itself be --jobs-independent. Both inputs reduce to one
#      ScenarioSpec and expand through the same cell-assembly path, so
#      any divergence means the seam has forked.
#   5. The same sweep run as a worker fleet (--shards 2) must also be
#      byte-identical to the serial run: process boundaries, like
#      thread interleaving, may never be observable in any artifact.
#      (check_shard.sh drills the orchestration layer itself — crash
#      recovery, refusal paths, corrupt manifests.)
#
# Usage: check_determinism.sh /path/to/busarb_sweep /path/to/busarb_sim
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 /path/to/busarb_sweep /path/to/busarb_sim" >&2
    exit 2
fi
sweep="$1"
sim="$2"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run_sweep() {
    "$sweep" --protocols rr1,fcfs1,aap1 --agents 8 --loads 0.5,2,7.5 \
             --batches 3 --batch-size 400 --jobs "$1" --csv "$2" \
             --trace-out "$3" --metrics-out "$4" \
             --timing-csv "$5" --fairness --health > /dev/null
}

run_sweep 1 "$tmp/serial.csv" "$tmp/serial.trace" \
    "$tmp/serial-metrics.csv" "$tmp/serial-timing.csv"
run_sweep 8 "$tmp/parallel.csv" "$tmp/parallel.trace" \
    "$tmp/parallel-metrics.csv" "$tmp/parallel-timing.csv"

if ! cmp -s "$tmp/serial.csv" "$tmp/parallel.csv"; then
    echo "FAIL: --jobs 8 CSV differs from --jobs 1" >&2
    diff -u "$tmp/serial.csv" "$tmp/parallel.csv" >&2 || true
    exit 1
fi

if ! cmp -s "$tmp/serial.trace" "$tmp/parallel.trace"; then
    echo "FAIL: --jobs 8 binary trace differs from --jobs 1" >&2
    exit 1
fi

if ! cmp -s "$tmp/serial-metrics.csv" "$tmp/parallel-metrics.csv"; then
    echo "FAIL: --jobs 8 metrics differ from --jobs 1" >&2
    diff -u "$tmp/serial-metrics.csv" "$tmp/parallel-metrics.csv" \
        >&2 || true
    exit 1
fi

if ! grep -q "fairness\." "$tmp/serial-metrics.csv"; then
    echo "FAIL: --fairness produced no fairness.* metrics" >&2
    exit 1
fi

if ! grep -q "health\." "$tmp/serial-metrics.csv"; then
    echo "FAIL: --health produced no health.* metrics" >&2
    exit 1
fi

for f in serial.trace serial-metrics.csv serial-timing.csv; do
    if [ ! -s "$tmp/$f" ]; then
        echo "FAIL: artifact $f is empty" >&2
        exit 1
    fi
done

# Snapshot determinism: the fairness auditor's and health monitor's
# JSONL streams are keyed to simulated time, so a two-cell --compare
# run must emit identical bytes regardless of how the cells are
# scheduled across worker threads.
run_snap() {
    "$sim" --protocol rr1 --compare aap1 --agents 8 --load 7.6 \
           --batches 2 --batch-size 400 --warmup 400 --jobs "$1" \
           --snapshot-out "$2" --snapshot-every 100 --health \
           > /dev/null
}

run_snap 1 "$tmp/serial.jsonl"
run_snap 8 "$tmp/parallel.jsonl"

if [ ! -s "$tmp/serial.jsonl" ]; then
    echo "FAIL: --snapshot-out produced no snapshots" >&2
    exit 1
fi
if ! cmp -s "$tmp/serial.jsonl" "$tmp/parallel.jsonl"; then
    echo "FAIL: --jobs 8 snapshot JSONL differs from --jobs 1" >&2
    diff -u "$tmp/serial.jsonl" "$tmp/parallel.jsonl" >&2 || true
    exit 1
fi

# The health monitor must contribute per-batch lines of its own, and
# those lines alone must also match across job counts (guards against
# a future format change smuggling host state into one stream while
# the other still happens to compare clean).
grep '"kind": "health"' "$tmp/serial.jsonl" > "$tmp/serial-health.jsonl" \
    || true
grep '"kind": "health"' "$tmp/parallel.jsonl" \
    > "$tmp/parallel-health.jsonl" || true
if [ ! -s "$tmp/serial-health.jsonl" ]; then
    echo "FAIL: --health emitted no health snapshot lines" >&2
    exit 1
fi
if ! cmp -s "$tmp/serial-health.jsonl" "$tmp/parallel-health.jsonl"; then
    echo "FAIL: --jobs 8 health snapshot lines differ from --jobs 1" >&2
    diff -u "$tmp/serial-health.jsonl" "$tmp/parallel-health.jsonl" \
        >&2 || true
    exit 1
fi

# Queue-policy determinism: the reference heap implementation must be
# observationally identical to the calendar queue in every artifact —
# sweep CSV/trace/metrics and per-run snapshot JSONL alike. (--queue
# is deliberately absent from the scenario.spec annotation, so the
# metrics files are comparable byte for byte.)
"$sweep" --protocols rr1,fcfs1,aap1 --agents 8 --loads 0.5,2,7.5 \
         --batches 3 --batch-size 400 --jobs 4 --queue heap \
         --csv "$tmp/heapq.csv" --trace-out "$tmp/heapq.trace" \
         --metrics-out "$tmp/heapq-metrics.csv" \
         --timing-csv "$tmp/heapq-timing.csv" --fairness --health \
         > /dev/null

if ! cmp -s "$tmp/serial.csv" "$tmp/heapq.csv"; then
    echo "FAIL: --queue heap sweep CSV differs from calendar" >&2
    diff -u "$tmp/serial.csv" "$tmp/heapq.csv" >&2 || true
    exit 1
fi
if ! cmp -s "$tmp/serial.trace" "$tmp/heapq.trace"; then
    echo "FAIL: --queue heap binary trace differs from calendar" >&2
    exit 1
fi
if ! cmp -s "$tmp/serial-metrics.csv" "$tmp/heapq-metrics.csv"; then
    echo "FAIL: --queue heap metrics differ from calendar" >&2
    diff -u "$tmp/serial-metrics.csv" "$tmp/heapq-metrics.csv" \
        >&2 || true
    exit 1
fi

"$sim" --protocol rr1 --compare aap1 --agents 8 --load 7.6 \
       --batches 2 --batch-size 400 --warmup 400 --jobs 4 \
       --queue heap --snapshot-out "$tmp/heapq.jsonl" \
       --snapshot-every 100 --health > /dev/null
if ! cmp -s "$tmp/serial.jsonl" "$tmp/heapq.jsonl"; then
    echo "FAIL: --queue heap snapshot JSONL differs from calendar" >&2
    diff -u "$tmp/serial.jsonl" "$tmp/heapq.jsonl" >&2 || true
    exit 1
fi

# A bad --queue token must be rejected with exit 2, naming the token.
set +e
"$sim" --protocol rr1 --agents 4 --batches 1 --batch-size 100 \
       --warmup 0 --queue splay > "$tmp/badqueue.out" 2>&1
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "FAIL: bad --queue token exited with $code, expected 2" >&2
    cat "$tmp/badqueue.out" >&2
    exit 1
fi
if ! grep -q "splay" "$tmp/badqueue.out"; then
    echo "FAIL: error message does not name the bad queue token" >&2
    cat "$tmp/badqueue.out" >&2
    exit 1
fi

# Grid-file sweeps: the declarative twin of a flag invocation must be
# byte-identical to it, at any job count.
cat > "$tmp/sweep.grid" <<'EOF'
[workload]
family = equal
agents = 8
cv = 1

[run]
batches = 3
batch-size = 400

[sweep]
loads = 0.5 2 7.5
protocols = rr1 fcfs1 aap1
EOF

run_grid() {
    "$sweep" --grid "$tmp/sweep.grid" --jobs "$1" --csv "$2" \
             --metrics-out "$3" --fairness --health > /dev/null
}

run_grid 1 "$tmp/grid1.csv" "$tmp/grid1-metrics.csv"
run_grid 8 "$tmp/grid8.csv" "$tmp/grid8-metrics.csv"

if ! cmp -s "$tmp/grid1.csv" "$tmp/grid8.csv"; then
    echo "FAIL: --grid at --jobs 8 CSV differs from --jobs 1" >&2
    diff -u "$tmp/grid1.csv" "$tmp/grid8.csv" >&2 || true
    exit 1
fi
if ! cmp -s "$tmp/grid1-metrics.csv" "$tmp/grid8-metrics.csv"; then
    echo "FAIL: --grid at --jobs 8 metrics differ from --jobs 1" >&2
    diff -u "$tmp/grid1-metrics.csv" "$tmp/grid8-metrics.csv" \
        >&2 || true
    exit 1
fi

if ! cmp -s "$tmp/serial.csv" "$tmp/grid1.csv"; then
    echo "FAIL: --grid CSV differs from the equivalent flag sweep" >&2
    diff -u "$tmp/serial.csv" "$tmp/grid1.csv" >&2 || true
    exit 1
fi
# Both inputs reduce to the same canonical ScenarioSpec, so even the
# scenario.spec provenance annotation must match byte for byte.
if ! cmp -s "$tmp/serial-metrics.csv" "$tmp/grid1-metrics.csv"; then
    echo "FAIL: --grid metrics differ from the equivalent flag sweep" \
        >&2
    diff -u "$tmp/serial-metrics.csv" "$tmp/grid1-metrics.csv" \
        >&2 || true
    exit 1
fi
if ! grep -q "scenario.spec" "$tmp/grid1-metrics.csv"; then
    echo "FAIL: metrics export lacks the scenario.spec annotation" >&2
    exit 1
fi

# Sharded sweeps: the multi-process fleet must reproduce the serial
# artifacts byte for byte, trace and metrics included.
"$sweep" --protocols rr1,fcfs1,aap1 --agents 8 --loads 0.5,2,7.5 \
         --batches 3 --batch-size 400 --shards 2 \
         --shard-dir "$tmp/shards" --csv "$tmp/sharded.csv" \
         --trace-out "$tmp/sharded.trace" \
         --metrics-out "$tmp/sharded-metrics.csv" \
         --fairness --health > /dev/null
if ! cmp -s "$tmp/serial.csv" "$tmp/sharded.csv"; then
    echo "FAIL: --shards 2 CSV differs from the in-process sweep" >&2
    diff -u "$tmp/serial.csv" "$tmp/sharded.csv" >&2 || true
    exit 1
fi
if ! cmp -s "$tmp/serial.trace" "$tmp/sharded.trace"; then
    echo "FAIL: --shards 2 binary trace differs from in-process" >&2
    exit 1
fi
if ! cmp -s "$tmp/serial-metrics.csv" "$tmp/sharded-metrics.csv"; then
    echo "FAIL: --shards 2 metrics differ from the in-process sweep" >&2
    diff -u "$tmp/serial-metrics.csv" "$tmp/sharded-metrics.csv" \
        >&2 || true
    exit 1
fi

set +e
"$sweep" --loads 0.5,bogus --agents 4 --batches 2 --batch-size 200 \
    > "$tmp/bad.out" 2>&1
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "FAIL: bad --loads token exited with $code, expected 2" >&2
    cat "$tmp/bad.out" >&2
    exit 1
fi
if ! grep -q "bogus" "$tmp/bad.out"; then
    echo "FAIL: error message does not name the bad token" >&2
    cat "$tmp/bad.out" >&2
    exit 1
fi

# 6. Open-loop workload sources flow through the same determinism
#    contract: an MMPP sweep must be byte-identical across --jobs,
#    --queue policies, and --shards in every artifact.
"$sweep" --protocols rr1,fcfs1 --agents 8 \
         --source open:dist=mmpp,burst=4,gap=8 --loads 0.5,0.8 \
         --batches 3 --batch-size 400 --fairness --health --jobs 1 \
         --csv "$tmp/open1.csv" --trace-out "$tmp/open1.trace" \
         --metrics-out "$tmp/open1-metrics.csv" > /dev/null
"$sweep" --protocols rr1,fcfs1 --agents 8 \
         --source open:dist=mmpp,burst=4,gap=8 --loads 0.5,0.8 \
         --batches 3 --batch-size 400 --fairness --health --jobs 8 \
         --queue heap --csv "$tmp/open8.csv" \
         --trace-out "$tmp/open8.trace" \
         --metrics-out "$tmp/open8-metrics.csv" > /dev/null
"$sweep" --protocols rr1,fcfs1 --agents 8 \
         --source open:dist=mmpp,burst=4,gap=8 --loads 0.5,0.8 \
         --batches 3 --batch-size 400 --fairness --health --shards 2 \
         --shard-dir "$tmp/open-shards" --csv "$tmp/opensh.csv" \
         --trace-out "$tmp/opensh.trace" \
         --metrics-out "$tmp/opensh-metrics.csv" > /dev/null

for variant in open8 opensh; do
    for kind in csv trace metrics.csv; do
        case "$kind" in
            csv) a="$tmp/open1.csv" b="$tmp/$variant.csv" ;;
            trace) a="$tmp/open1.trace" b="$tmp/$variant.trace" ;;
            *) a="$tmp/open1-metrics.csv" \
               b="$tmp/$variant-metrics.csv" ;;
        esac
        if ! cmp -s "$a" "$b"; then
            echo "FAIL: open-loop $kind differs ($variant vs serial)" >&2
            exit 1
        fi
    done
done
if ! grep -q "workload.issued" "$tmp/open1-metrics.csv"; then
    echo "FAIL: open-loop sweep emitted no workload.* metrics" >&2
    exit 1
fi
# The source is part of the canonical spec, so it must land in the
# provenance annotation (and hence the shard fingerprint).
if ! grep -q "source = open:dist=mmpp" "$tmp/open1-metrics.csv"; then
    echo "FAIL: scenario.spec annotation lacks the workload source" >&2
    exit 1
fi

# 7. Trace replay: record a binary capture, then replaying it must be
#    byte-identical across --jobs, --queue, and --shards too — and the
#    replayed arrival schedule is protocol-independent by construction,
#    so the sweep's CSV rows label the loadless axis with "-".
"$sweep" --protocols rr1 --agents 8 --loads 1.5 --batches 3 \
         --batch-size 400 --trace-out "$tmp/capture.trace" \
         > /dev/null
replay_spec="trace:file=$tmp/capture.trace,format=binary"
"$sweep" --protocols rr1,fcfs1 --agents 8 --source "$replay_spec" \
         --batches 2 --batch-size 200 --jobs 1 \
         --csv "$tmp/replay1.csv" \
         --metrics-out "$tmp/replay1-metrics.csv" > /dev/null
"$sweep" --protocols rr1,fcfs1 --agents 8 --source "$replay_spec" \
         --batches 2 --batch-size 200 --jobs 8 --queue heap \
         --csv "$tmp/replay8.csv" \
         --metrics-out "$tmp/replay8-metrics.csv" > /dev/null
"$sweep" --protocols rr1,fcfs1 --agents 8 --source "$replay_spec" \
         --batches 2 --batch-size 200 --shards 2 \
         --shard-dir "$tmp/replay-shards" --csv "$tmp/replaysh.csv" \
         --metrics-out "$tmp/replaysh-metrics.csv" > /dev/null
for variant in replay8 replaysh; do
    if ! cmp -s "$tmp/replay1.csv" "$tmp/$variant.csv"; then
        echo "FAIL: trace-replay CSV differs ($variant vs serial)" >&2
        diff -u "$tmp/replay1.csv" "$tmp/$variant.csv" >&2 || true
        exit 1
    fi
    if ! cmp -s "$tmp/replay1-metrics.csv" \
         "$tmp/$variant-metrics.csv"; then
        echo "FAIL: trace-replay metrics differ ($variant vs serial)" >&2
        exit 1
    fi
done
if ! grep -q "load=-" "$tmp/replay1.csv"; then
    echo "FAIL: loadless trace sweep rows not labelled with '-'" >&2
    cat "$tmp/replay1.csv" >&2
    exit 1
fi

# A loadless source combined with an explicit load axis is a usage
# error, not a silently ignored flag.
set +e
"$sweep" --protocols rr1 --agents 8 --source "$replay_spec" \
         --loads 0.5 --batches 2 --batch-size 200 \
         > "$tmp/traceload.out" 2>&1
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "FAIL: trace source with --loads exited $code, expected 2" >&2
    cat "$tmp/traceload.out" >&2
    exit 1
fi

echo "ok: parallel and sharded sweep CSV, trace, metrics, and" \
     "fairness/health snapshots byte-identical to serial and across" \
     "--queue policies (closed, open-loop, and trace-replay sources);" \
     "bad tokens rejected with exit 2"
