#!/bin/sh
# Kernel-benchmark regression smoke for the event-queue rebuild:
#
#   1. Runs the micro_kernel google-benchmark binary in smoke mode
#      (short min_time, 3 repetitions, medians) over the
#      BM_FullSimulation* and BM_EventQueue* families.
#   2. Emits a machine-readable summary (BENCH_6.json by default; set
#      BUSARB_BENCH_OUT to relocate) with the measured rates and the
#      verdict of each pin below.
#   3. Fails if any pin regresses:
#        - the calendar queue must beat the in-binary heap policy on
#          the paper's 20-agent full simulation by at least
#          BUSARB_BENCH_MIN_CAL_VS_HEAP (default 1.10x);
#        - the self-profiler's full-simulation overhead must stay
#          within BUSARB_BENCH_MAX_OVERHEAD_PCT (default 5; the
#          design target is <2% — see docs/KERNEL.md — but a smoke
#          run on a loaded host needs noise headroom, so CI on quiet
#          machines should tighten this via the environment);
#        - the steady-state pop path must perform zero callback heap
#          allocations (BM_EventQueuePopAllocations's counter).
#
# Smoke numbers are for regression pinning only; the committed
# BENCH_6.json at the repo root records the curated before/after
# measurements with methodology notes.
#
# Usage: check_bench.sh /path/to/micro_kernel
set -eu

if [ $# -ne 1 ]; then
    echo "usage: $0 /path/to/micro_kernel" >&2
    exit 2
fi
bench="$1"
out="${BUSARB_BENCH_OUT:-BENCH_6.json}"

if ! command -v python3 > /dev/null 2>&1; then
    echo "SKIP: python3 not available to parse benchmark JSON" >&2
    exit 77
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$bench" \
    --benchmark_filter='BM_FullSimulation|BM_EventQueue' \
    --benchmark_min_time="${BUSARB_BENCH_MIN_TIME:-0.05}" \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json > "$tmp/raw.json"

python3 - "$tmp/raw.json" "$out" << 'EOF'
import json
import os
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

# Index the median aggregates by benchmark name.
medians = {}
for b in raw.get("benchmarks", []):
    if b.get("aggregate_name") == "median":
        medians[b["run_name"]] = b

def rate(name, counter):
    b = medians.get(name)
    if b is None or counter not in b:
        sys.exit(f"FAIL: benchmark {name} missing counter {counter}")
    return float(b[counter])

cal_eps = rate("BM_FullSimulationAgents20/0", "events_per_second")
heap_eps = rate("BM_FullSimulationAgents20/1", "events_per_second")
unprof = rate("BM_FullSimulationProfiled/0", "items_per_second")
prof = rate("BM_FullSimulationProfiled/1", "items_per_second")
pop_allocs = rate("BM_EventQueuePopAllocations", "callback_heap_allocs")

min_ratio = float(os.environ.get("BUSARB_BENCH_MIN_CAL_VS_HEAP", "1.10"))
max_overhead = float(os.environ.get("BUSARB_BENCH_MAX_OVERHEAD_PCT", "5"))

ratio = cal_eps / heap_eps if heap_eps > 0 else 0.0
overhead_pct = max(0.0, (unprof - prof) / unprof * 100.0)

checks = [
    {
        "name": "calendar_vs_heap_full_sim",
        "detail": "BM_FullSimulationAgents20 calendar/heap events/s",
        "measured": round(ratio, 3),
        "threshold": min_ratio,
        "ok": ratio >= min_ratio,
    },
    {
        "name": "profiler_overhead_pct",
        "detail": "BM_FullSimulationProfiled (unprofiled-profiled)/unprofiled",
        "measured": round(overhead_pct, 2),
        "threshold": max_overhead,
        "ok": overhead_pct <= max_overhead,
    },
    {
        "name": "pop_path_zero_callback_allocs",
        "detail": "BM_EventQueuePopAllocations callback_heap_allocs",
        "measured": pop_allocs,
        "threshold": 0,
        "ok": pop_allocs == 0,
    },
]

summary = {
    "suite": "busarb micro_kernel smoke",
    "filter": "BM_FullSimulation|BM_EventQueue",
    "results": {
        name: {
            k: b[k]
            for k in ("real_time", "items_per_second", "events_per_second",
                      "callback_heap_allocs")
            if k in b
        }
        for name, b in sorted(medians.items())
    },
    "checks": checks,
    "pass": all(c["ok"] for c in checks),
}
with open(out_path, "w") as f:
    json.dump(summary, f, indent=2)
    f.write("\n")

for c in checks:
    verdict = "ok" if c["ok"] else "FAIL"
    print(f"{verdict}: {c['name']} measured={c['measured']} "
          f"threshold={c['threshold']}")
if not summary["pass"]:
    sys.exit(1)
EOF

echo "ok: kernel benchmark pins hold; summary written to $out"
