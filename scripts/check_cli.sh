#!/bin/sh
# Tier-1 CLI contract check for all four tools:
#
#   exit 0  --help and --list-protocols (informational output)
#   exit 2  usage errors: unknown flags, malformed protocol specs,
#           malformed scenario files, and flag/scenario conflicts —
#           always naming the offending token, with a did-you-mean
#           hint where one is close
#
# Usage: check_cli.sh sim sweep trace report
set -eu

if [ $# -ne 4 ]; then
    echo "usage: $0 sim sweep trace report" >&2
    exit 2
fi
sim="$1"
sweep="$2"
trace="$3"
report="$4"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fails=0

# expect <code> <needle> <label> -- cmd...: run cmd, require the exit
# status and (when needle is non-empty) the named token in the output.
expect() {
    want="$1"; needle="$2"; label="$3"
    shift 3
    set +e
    "$@" > "$tmp/out" 2>&1
    got=$?
    set -e
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: $label exited $got, expected $want" >&2
        cat "$tmp/out" >&2
        fails=$((fails + 1))
        return 0
    fi
    if [ -n "$needle" ] && ! grep -q -e "$needle" "$tmp/out"; then
        echo "FAIL: $label output lacks '$needle'" >&2
        cat "$tmp/out" >&2
        fails=$((fails + 1))
    fi
}

# Informational flags exit 0 on every tool.
expect 0 "--help" "sim --help" "$sim" --help
expect 0 "--help" "sweep --help" "$sweep" --help
expect 0 "--help" "trace --help" "$trace" --help
expect 0 "--help" "report --help" "$report" --help
expect 0 "wrr" "sim --list-protocols" "$sim" --list-protocols
expect 0 "rr1" "sim --list-protocols" "$sim" --list-protocols
expect 0 "wrr" "sweep --list-protocols" "$sweep" --list-protocols
expect 0 "onoff" "sim --list-workloads" "$sim" --list-workloads
expect 0 "trace" "sim --list-workloads" "$sim" --list-workloads
expect 0 "mmpp" "sweep --list-workloads" "$sweep" --list-workloads

# Unknown flags exit 2 and name the flag, on every tool.
expect 2 "no-such-flag" "sim unknown flag" "$sim" --no-such-flag
expect 2 "no-such-flag" "sweep unknown flag" "$sweep" --no-such-flag
expect 2 "no-such-flag" "trace unknown flag" "$trace" --no-such-flag
expect 2 "no-such-flag" "report unknown flag" "$report" --no-such-flag

# Malformed protocol specs exit 2 naming the offending token.
expect 2 "nope" "sim unknown protocol" "$sim" --protocol nope
expect 2 "did you mean 'rr1'" "sim protocol hint" "$sim" --protocol rr9
expect 2 "bogus" "sim unknown option" "$sim" --protocol rr1:bogus=1
expect 2 "out of range" "sim option range" \
    "$sim" --protocol fcfs1:bits=99
expect 2 "nope" "sweep unknown protocol" \
    "$sweep" --protocols rr1,nope --loads 0.5
expect 2 "did you mean 'fcfs1'" "report protocol hint" \
    "$report" --protocol fcsf1 --out "$tmp/report.md"

# busarb_trace without a mode or input is a usage error.
expect 2 "" "trace without arguments" "$trace"

# Malformed workload-source specs exit 2 naming the token, with
# did-you-mean hints, on every tool that takes --source.
expect 2 "did you mean 'open'" "sim workload hint" \
    "$sim" --protocol rr1 --source opne
expect 2 "did you mean 'rate'" "sim workload option hint" \
    "$sim" --protocol rr1 --source open:rte=2
expect 2 "did you mean 'closed'" "sweep workload hint" \
    "$sweep" --protocols rr1 --source clsed
expect 2 "did you mean 'onoff'" "report workload hint" \
    "$report" --protocol rr1 --source onof --out "$tmp/report.md"

# Loadless sources conflict with a load axis; doomed trace runs are
# caught before any cell runs.
expect 2 "requires file=" "sim trace without file" \
    "$sim" --protocol rr1 --source trace
expect 2 "conflicts with --source" "sim trace with --load" \
    "$sim" --protocol rr1 --source "trace:file=$tmp/x.trace" --load 2
expect 2 "conflicts with --source" "sweep trace with --loads" \
    "$sweep" --protocols rr1 --source "trace:file=$tmp/x.trace" \
    --loads 0.5
expect 2 "cannot read" "sim missing trace file" \
    "$sim" --protocol rr1 --agents 4 --batches 1 --batch-size 100 \
    --warmup 0 --source "trace:file=$tmp/does-not-exist.trace"
printf '0.5 1\n1.0 2\n' > "$tmp/short.trace"
expect 2 "shorten the run" "sim short trace" \
    "$sim" --protocol rr1 --agents 4 --batches 1 --batch-size 100 \
    --warmup 0 --source "trace:file=$tmp/short.trace"

# Scenario files: parse errors are line-numbered usage errors, and
# workload flags conflict with --scenario.
cat > "$tmp/bad.scenario" <<'EOF'
[workload]
agents = none
EOF
expect 2 "line 2" "sim bad scenario file" \
    "$sim" --scenario "$tmp/bad.scenario"
cat > "$tmp/ok.scenario" <<'EOF'
[workload]
agents = 4
load = 1
[run]
batches = 2
batch-size = 100
EOF
expect 2 "conflicts with --scenario" "sim scenario/flag conflict" \
    "$sim" --scenario "$tmp/ok.scenario" --agents 8
expect 2 "conflicts with --scenario" "sim scenario/source conflict" \
    "$sim" --scenario "$tmp/ok.scenario" --source open:rate=2
expect 2 "conflicts with --scenario" "sim scenario/hot conflict" \
    "$sim" --scenario "$tmp/ok.scenario" --hot-agents 2 --hot-factor 3
expect 2 "conflicts with --grid" "sweep grid/source conflict" \
    "$sweep" --grid "$tmp/ok.scenario" --source open:rate=2
expect 2 "conflicts with --scenario" "report scenario/flag conflict" \
    "$report" --scenario "$tmp/ok.scenario" --cv 2 \
    --out "$tmp/report.md"
expect 1 "cannot read" "sim missing scenario file" \
    "$sim" --scenario "$tmp/does-not-exist.scenario"

# Artifact paths into a missing parent directory are usage errors,
# caught up front (before any simulation) and naming both the
# directory and the flag, on every tool that writes artifacts.
missing="$tmp/no/such/dir"
expect 2 "$tmp/no/such" "sim metrics parent dir" \
    "$sim" --protocol rr1 --agents 4 --batches 1 --batch-size 100 \
    --warmup 0 --metrics-out "$missing/m.json"
expect 2 "trace-out" "sim trace parent dir" \
    "$sim" --protocol rr1 --agents 4 --batches 1 --batch-size 100 \
    --warmup 0 --trace-out "$missing/run.trace"
expect 2 "does not exist" "sweep csv parent dir" \
    "$sweep" --protocols rr1 --loads 0.5 --agents 4 --batches 1 \
    --batch-size 100 --csv "$missing/sweep.csv"
expect 2 "snapshot-out" "sweep snapshot parent dir" \
    "$sweep" --protocols rr1 --loads 0.5 --agents 4 --batches 1 \
    --batch-size 100 --health --snapshot-out "$missing/s.jsonl"
expect 2 "does not exist" "report out parent dir" \
    "$report" --protocol rr1 --agents 4 --batches 1 \
    --batch-size 100 --out "$missing/report.md"
expect 2 "perfetto" "trace perfetto parent dir" \
    "$trace" "$tmp/whatever.trace" --perfetto "$missing/t.json"

if [ "$fails" -ne 0 ]; then
    echo "FAIL: $fails CLI contract check(s) failed" >&2
    exit 1
fi
echo "ok: help/list exit 0; unknown flags, bad specs, bad scenario" \
     "files and flag conflicts exit 2 naming the token"
