#!/bin/sh
# Tier-1 integration check for the run-report generator:
#
#   1. busarb_report renders a markdown and an HTML report for a small
#      run; both must be non-empty, carry the convergence verdict up
#      top, and contain the estimates, batches, latency, and metrics
#      sections.
#   2. The report is a pure function of the scenario (seed included):
#      rendering the same command line twice must produce byte-identical
#      files.
#   3. When python3 is available, the HTML must parse and the embedded
#      metrics JSON must be a valid JSON object with health.* entries;
#      without python3 that validation is skipped (exit 77).
#
# Usage: check_report.sh /path/to/busarb_report
set -eu

if [ $# -ne 1 ]; then
    echo "usage: $0 /path/to/busarb_report" >&2
    exit 2
fi
report="$1"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run_report() {
    "$report" --protocol rr1 --agents 6 --load 2.0 --batches 4 \
              --batch-size 400 --warmup 400 --snapshot-every 100 \
              --format "$1" --out "$2" > /dev/null
}

run_report md "$tmp/run.md"
run_report html "$tmp/run.html"
run_report md "$tmp/run-again.md"
run_report html "$tmp/run-again.html"

for f in run.md run.html; do
    if [ ! -s "$tmp/$f" ]; then
        echo "FAIL: report $f is empty" >&2
        exit 1
    fi
done

if ! cmp -s "$tmp/run.md" "$tmp/run-again.md"; then
    echo "FAIL: markdown report is not deterministic" >&2
    diff -u "$tmp/run.md" "$tmp/run-again.md" >&2 || true
    exit 1
fi
if ! cmp -s "$tmp/run.html" "$tmp/run-again.html"; then
    echo "FAIL: HTML report is not deterministic" >&2
    diff -u "$tmp/run.html" "$tmp/run-again.html" >&2 || true
    exit 1
fi

# The verdict must lead the document: before any section heading.
for f in run.md run.html; do
    if ! grep -q "verdict=" "$tmp/$f"; then
        echo "FAIL: $f carries no convergence verdict" >&2
        exit 1
    fi
done
first_heading="$(grep -n "^## " "$tmp/run.md" | head -n 1 | cut -d: -f1)"
verdict_line="$(grep -n "verdict=" "$tmp/run.md" | head -n 1 | cut -d: -f1)"
if [ -z "$first_heading" ] || [ -z "$verdict_line" ] ||
   [ "$verdict_line" -ge "$first_heading" ]; then
    echo "FAIL: verdict does not lead the markdown report" >&2
    exit 1
fi

for section in "Scenario" "Estimates" "Convergence" "Batches" \
               "Latency breakdown" "Fairness" "Metrics"; do
    if ! grep -q "$section" "$tmp/run.md"; then
        echo "FAIL: markdown report lacks section '$section'" >&2
        exit 1
    fi
    if ! grep -q "$section" "$tmp/run.html"; then
        echo "FAIL: HTML report lacks section '$section'" >&2
        exit 1
    fi
done

# --out is mandatory and bad formats are usage errors (exit 2).
set +e
"$report" --protocol rr1 > "$tmp/noout.out" 2>&1
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "FAIL: missing --out exited with $code, expected 2" >&2
    exit 1
fi
set +e
"$report" --protocol rr1 --format pdf --out "$tmp/x.pdf" \
    > "$tmp/badfmt.out" 2>&1
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "FAIL: bad --format exited with $code, expected 2" >&2
    exit 1
fi

if ! command -v python3 > /dev/null 2>&1; then
    echo "SKIP: python3 not available; HTML/JSON not validated" >&2
    exit 77
fi

python3 - "$tmp/run.html" <<'EOF'
import html.parser
import json
import sys


class ReportParser(html.parser.HTMLParser):
    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.in_json_pre = False
        self.json_text = []
        self.headings = 0

    def handle_starttag(self, tag, attrs):
        if tag == "pre" and ("data-lang", "json") in attrs:
            self.in_json_pre = True
        if tag == "h2":
            self.headings += 1

    def handle_endtag(self, tag):
        if tag == "pre":
            self.in_json_pre = False

    def handle_data(self, data):
        if self.in_json_pre:
            self.json_text.append(data)


with open(sys.argv[1]) as f:
    text = f.read()
assert text.startswith("<!DOCTYPE html>"), "missing doctype"
parser = ReportParser()
parser.feed(text)
parser.close()
assert parser.headings >= 5, f"only {parser.headings} sections"
metrics = json.loads("".join(parser.json_text))
assert isinstance(metrics, dict) and metrics, "metrics JSON empty"
health = [k for k in metrics if k.startswith("health.")]
assert health, "no health.* entries in embedded metrics"
assert "bus.completions" in metrics, "bus.completions missing"
print(f"validated HTML report: {parser.headings} sections, "
      f"{len(metrics)} metrics, {len(health)} health entries")
EOF

echo "ok: run reports render deterministically in both formats with" \
     "the verdict up top and valid embedded metrics JSON"
