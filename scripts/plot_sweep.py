#!/usr/bin/env python3
"""Plot busarb_sweep summary CSVs: one panel per measure vs offered load.

Usage:
    build/tools/busarb_sweep --protocols rr1,fcfs1,aap1 --agents 30 \
        --loads 0.25,0.5,1,1.5,2,2.5,5,7.5 --csv sweep.csv
    scripts/plot_sweep.py sweep.csv -o sweep.png
"""

import argparse
import collections
import csv
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv", help="busarb_sweep summary CSV")
    parser.add_argument("-o", "--output", default="sweep.png")
    args = parser.parse_args()

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    series = collections.defaultdict(list)
    with open(args.csv) as f:
        for row in csv.DictReader(f):
            load = float(row["label"].split("=", 1)[1])
            series[row["protocol"]].append(
                (load, float(row["wait_mean"]), float(row["wait_stddev"]),
                 float(row["ratio_hi_lo"])))

    panels = [("mean wait W", 1), ("stddev of W", 2),
              ("t[N]/t[1] ratio", 3)]
    fig, axes = plt.subplots(1, 3, figsize=(13, 4))
    for ax, (title, idx) in zip(axes, panels):
        for name, points in sorted(series.items()):
            points = sorted(points)
            ax.plot([p[0] for p in points], [p[idx] for p in points],
                    marker="o", label=name)
        ax.set_xlabel("total offered load")
        ax.set_title(title)
        ax.grid(True, alpha=0.3)
    axes[0].legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(args.output, dpi=150)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
