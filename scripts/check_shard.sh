#!/bin/sh
# Tier-1 integration check for the sharded sweep orchestration:
#
#   1. `--shards 4` must produce byte-identical artifacts — results
#      CSV, binary trace, metrics export, and fairness/health snapshot
#      JSONL — to the same sweep run in a single process. The merge is
#      deterministic by construction (workers checkpoint full encoded
#      results; the coordinator re-runs the identical emission code),
#      so any divergence is a real bug, not noise.
#   2. Re-running over existing checkpoints without --resume must
#      refuse with exit 2 and tell the user to pass --resume.
#   3. Crash recovery: SIGKILL the workers and the coordinator
#      mid-sweep, then `--resume` must finish the remaining cells and
#      reproduce the reference bytes exactly — no duplicated and no
#      dropped cells.
#   4. A corrupt checkpoint (flipped hex digit in a cell record) and a
#      manifest version mismatch must both exit 2, never silently
#      merge bad data.
#
# Usage: check_shard.sh /path/to/busarb_sweep
set -eu

if [ $# -ne 1 ]; then
    echo "usage: $0 /path/to/busarb_sweep" >&2
    exit 2
fi
sweep="$1"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

GRID="--protocols rr1,fcfs1,aap1 --agents 8 --loads 0.5,2,7.5 \
      --batches 3 --batch-size 400 --fairness --health \
      --snapshot-every 100"

# Reference: the ordinary single-process sweep.
# shellcheck disable=SC2086
"$sweep" $GRID --jobs 4 --csv "$tmp/ref.csv" \
         --trace-out "$tmp/ref.trace" --metrics-out "$tmp/ref.json" \
         --snapshot-out "$tmp/ref.jsonl" > /dev/null

# 1. Sharded run: 4 worker processes over the same grid.
# shellcheck disable=SC2086
"$sweep" $GRID --shards 4 --shard-dir "$tmp/shards" \
         --csv "$tmp/shard.csv" --trace-out "$tmp/shard.trace" \
         --metrics-out "$tmp/shard.json" \
         --snapshot-out "$tmp/shard.jsonl" > /dev/null

for artifact in csv trace json jsonl; do
    if ! cmp -s "$tmp/ref.$artifact" "$tmp/shard.$artifact"; then
        echo "FAIL: sharded $artifact differs from single-process" >&2
        cmp "$tmp/ref.$artifact" "$tmp/shard.$artifact" >&2 || true
        exit 1
    fi
done

# 2. The shard directory now holds complete checkpoints: a second run
# without --resume must refuse with exit 2 and suggest the flag.
set +e
# shellcheck disable=SC2086
"$sweep" $GRID --shards 4 --shard-dir "$tmp/shards" \
         --csv "$tmp/refuse.csv" --trace-out "$tmp/refuse.trace" \
         --snapshot-out "$tmp/refuse.jsonl" > "$tmp/refuse.out" 2>&1
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "FAIL: rerun without --resume exited $code, expected 2" >&2
    cat "$tmp/refuse.out" >&2
    exit 1
fi
if ! grep -q -- "--resume" "$tmp/refuse.out"; then
    echo "FAIL: refusal message does not mention --resume" >&2
    cat "$tmp/refuse.out" >&2
    exit 1
fi

# Resuming over *complete* checkpoints is a cheap no-op that still
# reproduces the reference bytes.
# shellcheck disable=SC2086
"$sweep" $GRID --shards 4 --shard-dir "$tmp/shards" --resume \
         --csv "$tmp/noop.csv" --trace-out "$tmp/noop.trace" \
         --snapshot-out "$tmp/noop.jsonl" > /dev/null
if ! cmp -s "$tmp/ref.csv" "$tmp/noop.csv"; then
    echo "FAIL: --resume over complete checkpoints changed the CSV" >&2
    exit 1
fi

# 3. SIGKILL drill: a longer grid, killed mid-flight, then resumed.
# The retry budget is zeroed so the killed coordinator (not a retry
# loop) is what the resume has to recover from.
KGRID="--protocols rr1,fcfs1 --agents 8 --loads 0.5,2,7.5 \
       --batches 3 --batch-size 20000 --fairness --health \
       --snapshot-every 100"
# shellcheck disable=SC2086
"$sweep" $KGRID --jobs 4 --csv "$tmp/kref.csv" \
         --trace-out "$tmp/kref.trace" \
         --snapshot-out "$tmp/kref.jsonl" > /dev/null

# shellcheck disable=SC2086
"$sweep" $KGRID --shards 3 --shard-dir "$tmp/kshards" --retries 0 \
         --csv "$tmp/kill.csv" --trace-out "$tmp/kill.trace" \
         --snapshot-out "$tmp/kill.jsonl" > /dev/null 2>&1 &
cpid=$!
# Mid-run on any plausible host: the grid above takes ~1s with three
# workers. If the host is so fast the sweep already finished, the
# drill degrades gracefully to a no-op resume (still byte-checked).
sleep 0.5
if kill -0 "$cpid" 2> /dev/null; then
    # Workers first (children of the coordinator), then the
    # coordinator itself: nothing gets a chance to clean up.
    pkill -9 -P "$cpid" 2> /dev/null || true
    kill -9 "$cpid" 2> /dev/null || true
fi
wait "$cpid" 2> /dev/null || true

# shellcheck disable=SC2086
"$sweep" $KGRID --shards 3 --shard-dir "$tmp/kshards" --resume \
         --csv "$tmp/kill.csv" --trace-out "$tmp/kill.trace" \
         --snapshot-out "$tmp/kill.jsonl" > /dev/null
for artifact in csv trace jsonl; do
    if ! cmp -s "$tmp/kref.$artifact" "$tmp/kill.$artifact"; then
        echo "FAIL: post-SIGKILL --resume $artifact differs from" \
             "single-process reference" >&2
        exit 1
    fi
done

# 4a. A corrupt checkpoint must be rejected with exit 2: flip one hex
# digit inside the first cell record of shard 0.
manifest="$tmp/kshards/shard-0000.manifest.jsonl"
if [ ! -s "$manifest" ]; then
    echo "FAIL: expected manifest $manifest is missing" >&2
    exit 1
fi
sed '2s/"data":"\([0-9a-f]\{7\}\)[0-9a-f]/"data":"\1x/' \
    "$manifest" > "$manifest.bad" && mv "$manifest.bad" "$manifest"
set +e
# shellcheck disable=SC2086
"$sweep" $KGRID --shards 3 --shard-dir "$tmp/kshards" --resume \
         --csv "$tmp/corrupt.csv" --trace-out "$tmp/corrupt.trace" \
         --snapshot-out "$tmp/corrupt.jsonl" > "$tmp/corrupt.out" 2>&1
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "FAIL: corrupt manifest exited $code, expected 2" >&2
    cat "$tmp/corrupt.out" >&2
    exit 1
fi

# 4b. A manifest from a future format version must also be exit 2.
rm -rf "$tmp/vshards"
mkdir -p "$tmp/vshards"
# shellcheck disable=SC2086
"$sweep" $GRID --shards 2 --shard-dir "$tmp/vshards" \
         --csv "$tmp/v.csv" --snapshot-out "$tmp/v.jsonl" > /dev/null
sed '1s/"version":1/"version":99/' \
    "$tmp/vshards/shard-0000.manifest.jsonl" > "$tmp/v.bad" &&
    mv "$tmp/v.bad" "$tmp/vshards/shard-0000.manifest.jsonl"
set +e
# shellcheck disable=SC2086
"$sweep" $GRID --shards 2 --shard-dir "$tmp/vshards" --resume \
         --csv "$tmp/v2.csv" --snapshot-out "$tmp/v2.jsonl" \
         > "$tmp/version.out" 2>&1
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "FAIL: version-mismatch manifest exited $code, expected 2" >&2
    cat "$tmp/version.out" >&2
    exit 1
fi

echo "ok: sharded sweep byte-identical to single-process," \
     "checkpoints survive SIGKILL + --resume, and corrupt or" \
     "version-mismatched manifests are refused with exit 2"
