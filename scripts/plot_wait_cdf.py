#!/usr/bin/env python3
"""Plot waiting-time CDFs from busarb histogram CSVs (Figure 4.1 style).

Usage:
    build/tools/busarb_sim --protocol rr1   --agents 30 --load 1.5 \
        --histogram-csv rr.csv
    build/tools/busarb_sim --protocol fcfs1 --agents 30 --load 1.5 \
        --histogram-csv fcfs.csv
    scripts/plot_wait_cdf.py rr.csv fcfs.csv -o figure_4_1.png
"""

import argparse
import csv
import sys


def read_cdf(path):
    xs, ys = [], []
    with open(path) as f:
        for row in csv.DictReader(f):
            if row["bin_hi"] == "inf":
                continue
            xs.append(float(row["bin_hi"]))
            ys.append(float(row["cdf"]))
    return xs, ys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csvs", nargs="+", help="histogram CSV files")
    parser.add_argument("-o", "--output", default="wait_cdf.png")
    parser.add_argument("--xmax", type=float, default=None)
    args = parser.parse_args()

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    fig, ax = plt.subplots(figsize=(7, 4.5))
    for path in args.csvs:
        xs, ys = read_cdf(path)
        ax.plot(xs, ys, label=path.rsplit(".", 1)[0])
    ax.set_xlabel("waiting time W (bus transaction times)")
    ax.set_ylabel("CDF")
    ax.set_ylim(0, 1.02)
    if args.xmax:
        ax.set_xlim(0, args.xmax)
    ax.grid(True, alpha=0.3)
    ax.legend()
    fig.tight_layout()
    fig.savefig(args.output, dpi=150)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
