#!/bin/sh
# Tier-1 integration check for the observability pipeline:
#
#   1. busarb_sim --trace-out captures a non-empty binary trace, and
#      the bytes are identical between --jobs 1 and --jobs 8 on a
#      --compare run (two grid cells).
#   2. busarb_trace round-trips the file to Chrome trace-event JSON,
#      an events CSV, and a latency CSV, and prints a breakdown.
#   3. When python3 is available, the JSON must parse and contain a
#      non-empty traceEvents array (ui.perfetto.dev loadability proxy);
#      without python3 the validation is skipped (exit 77).
#
# Usage: check_trace_roundtrip.sh /path/to/busarb_sim /path/to/busarb_trace
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 /path/to/busarb_sim /path/to/busarb_trace" >&2
    exit 2
fi
sim="$1"
trace="$2"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run_sim() {
    "$sim" --protocol rr1 --compare fcfs1 --agents 6 --load 2.0 \
           --batches 2 --batch-size 300 --warmup 300 --jobs "$1" \
           --trace-out "$2" --metrics-out "$3" > /dev/null
}

run_sim 1 "$tmp/serial.trace" "$tmp/serial-metrics.csv"
run_sim 8 "$tmp/parallel.trace" "$tmp/parallel-metrics.csv"

for f in serial.trace serial-metrics.csv; do
    if [ ! -s "$tmp/$f" ]; then
        echo "FAIL: artifact $f is empty" >&2
        exit 1
    fi
done

if ! cmp -s "$tmp/serial.trace" "$tmp/parallel.trace"; then
    echo "FAIL: --jobs 8 trace differs from --jobs 1" >&2
    exit 1
fi
if ! cmp -s "$tmp/serial-metrics.csv" "$tmp/parallel-metrics.csv"; then
    echo "FAIL: --jobs 8 metrics differ from --jobs 1" >&2
    exit 1
fi

"$trace" "$tmp/serial.trace" --perfetto "$tmp/trace.json" \
    --events-csv "$tmp/events.csv" --latency-csv "$tmp/latency.csv" \
    --summary > "$tmp/summary.out"

if ! grep -q "latency breakdown" "$tmp/summary.out"; then
    echo "FAIL: busarb_trace printed no latency breakdown" >&2
    cat "$tmp/summary.out" >&2
    exit 1
fi
for f in trace.json events.csv latency.csv; do
    if [ ! -s "$tmp/$f" ]; then
        echo "FAIL: converter output $f is empty" >&2
        exit 1
    fi
done

# Both runs (rr1 and fcfs1) must appear as separate chunks.
if ! grep -q "2 run(s)" "$tmp/summary.out"; then
    echo "FAIL: expected 2 trace chunks in the summary" >&2
    cat "$tmp/summary.out" >&2
    exit 1
fi

# The audit subcommand replays the same file through the fairness
# auditor: one report per chunk, plus metrics and snapshot exports.
"$trace" audit "$tmp/serial.trace" --metrics-out "$tmp/audit.csv" \
    --snapshot-out "$tmp/audit.jsonl" --snapshot-every 100 \
    > "$tmp/audit.out"
if ! grep -q "fairness audit" "$tmp/audit.out"; then
    echo "FAIL: audit subcommand printed no fairness report" >&2
    cat "$tmp/audit.out" >&2
    exit 1
fi
for f in audit.csv audit.jsonl; do
    if [ ! -s "$tmp/$f" ]; then
        echo "FAIL: audit output $f is empty" >&2
        exit 1
    fi
done
if ! grep -q "fairness\.grants" "$tmp/audit.csv"; then
    echo "FAIL: audit metrics export lacks fairness.grants" >&2
    exit 1
fi

# A truncated trace must be rejected with exit 2 and a clear message,
# not a partial silent decode.
head -c 40 "$tmp/serial.trace" > "$tmp/bad.trace"
set +e
"$trace" "$tmp/bad.trace" --summary > "$tmp/bad.out" 2>&1
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "FAIL: truncated trace exited with $code, expected 2" >&2
    cat "$tmp/bad.out" >&2
    exit 1
fi
if ! grep -q "corrupt or truncated" "$tmp/bad.out"; then
    echo "FAIL: truncated trace error lacks a clear message" >&2
    cat "$tmp/bad.out" >&2
    exit 1
fi

if ! command -v python3 > /dev/null 2>&1; then
    echo "SKIP: python3 not available; JSON not validated" >&2
    exit 77
fi

python3 - "$tmp/trace.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "traceEvents is empty"
phases = {e["ph"] for e in events}
for required in ("M", "i", "X"):
    assert required in phases, f"no '{required}' events in trace"
names = {e["args"]["name"] for e in events if e["ph"] == "M"}
assert "arbiter" in names, "arbiter track metadata missing"
print(f"validated {len(events)} trace events")
EOF

echo "ok: trace byte-identical across job counts and round-trips to" \
     "valid Chrome trace JSON"
