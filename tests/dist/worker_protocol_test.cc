/**
 * @file
 * Shard task file and worker run-loop tests. The end-to-end case is
 * the keystone: a worker run through the public entry point must
 * checkpoint results whose encoded bytes equal an in-process
 * runScenarioGrid of the same cells — the byte-identity the sharded
 * merge rests on.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/stat.h>

#include <gtest/gtest.h>

#include "dist/manifest.hh"
#include "dist/result_codec.hh"
#include "dist/shard_plan.hh"
#include "dist/worker_protocol.hh"
#include "experiment/runner.hh"
#include "experiment/sweep_cells.hh"

namespace busarb {
namespace {

/** A grid small enough to simulate in milliseconds: 2 x 2 cells. */
ScenarioSpec
tinySpec()
{
    ScenarioSpec spec;
    spec.agents = 4;
    spec.batches = 2;
    spec.batchSize = 50;
    spec.loadTokens = {"0.5", "1"};
    spec.protocolSpecs = {"rr1", "fcfs1"};
    return spec;
}

SweepTuning
richTuning()
{
    SweepTuning tuning;
    tuning.captureTrace = true;
    tuning.fairness = true;
    tuning.fairnessWindow = 25.0;
    tuning.bypassBound = 3;
    tuning.health = true;
    tuning.healthRelHw = 0.125;
    tuning.healthLag1 = 0.5;
    tuning.snapshotEvery = 10.0;
    tuning.healthSnapshots = true;
    tuning.queuePolicy = EventQueuePolicy::kHeap;
    return tuning;
}

TEST(ShardFile, RenderParseRoundTrip)
{
    const ScenarioSpec spec = tinySpec();
    const SweepTuning tuning = richTuning();
    const std::string scenario = spec.format();
    const std::uint64_t fp =
        sweepFingerprint(scenario, tuning.canonicalKey());

    const std::string text =
        renderShardFile(fp, 3, 1, 4, scenario, tuning);
    ShardTask task;
    std::string error;
    ASSERT_TRUE(parseShardFile(text, task, error)) << error;
    EXPECT_EQ(task.fingerprint, fp);
    EXPECT_EQ(task.shard, 3u);
    EXPECT_EQ(task.begin, 1u);
    EXPECT_EQ(task.end, 4u);
    EXPECT_EQ(task.spec.format(), scenario);
    EXPECT_EQ(task.tuning.canonicalKey(), tuning.canonicalKey());
    EXPECT_EQ(task.tuning.queuePolicy, EventQueuePolicy::kHeap);
}

TEST(ShardFile, RejectsFingerprintMismatch)
{
    const ScenarioSpec spec = tinySpec();
    const SweepTuning tuning; // defaults != richTuning
    const std::string text = renderShardFile(
        0xdeadbeefdeadbeefULL, 0, 0, 4, spec.format(), tuning);
    ShardTask task;
    std::string error;
    EXPECT_FALSE(parseShardFile(text, task, error));
    EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
}

TEST(ShardFile, RejectsVersionMismatch)
{
    const ScenarioSpec spec = tinySpec();
    const SweepTuning tuning;
    std::string text = renderShardFile(
        sweepFingerprint(spec.format(), tuning.canonicalKey()), 0, 0, 4,
        spec.format(), tuning);
    const std::size_t v = text.find("busarb-shard v1");
    ASSERT_NE(v, std::string::npos);
    text.replace(v, 15, "busarb-shard v9");
    ShardTask task;
    std::string error;
    EXPECT_FALSE(parseShardFile(text, task, error));
}

TEST(ShardFile, RejectsBadCellRange)
{
    const ScenarioSpec spec = tinySpec(); // 4 cells
    const SweepTuning tuning;
    const std::uint64_t fp =
        sweepFingerprint(spec.format(), tuning.canonicalKey());
    ShardTask task;
    std::string error;
    // begin == end (empty shard).
    EXPECT_FALSE(parseShardFile(
        renderShardFile(fp, 0, 2, 2, spec.format(), tuning), task,
        error));
    // end beyond the grid.
    EXPECT_FALSE(parseShardFile(
        renderShardFile(fp, 0, 0, 5, spec.format(), tuning), task,
        error));
}

TEST(TuningKey, ParseRoundTripProperty)
{
    for (const SweepTuning &t : {SweepTuning{}, richTuning()}) {
        SweepTuning parsed;
        std::string error;
        ASSERT_TRUE(parseTuningKey(t.canonicalKey(), parsed, error))
            << error;
        EXPECT_EQ(parsed.canonicalKey(), t.canonicalKey());
    }
}

TEST(TuningKey, RejectsMalformedKeys)
{
    SweepTuning parsed;
    std::string error;
    EXPECT_FALSE(parseTuningKey("", parsed, error));
    EXPECT_FALSE(parseTuningKey("trace=1", parsed, error)); // missing
    const std::string key = SweepTuning{}.canonicalKey();
    EXPECT_FALSE(parseTuningKey(key + ";mystery=1", parsed, error));
    std::string bad = key;
    bad.replace(bad.find("trace=0"), 7, "trace=2");
    EXPECT_FALSE(parseTuningKey(bad, parsed, error));
}

class WorkerShardTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = ::testing::TempDir() + "worker_shard_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        ::mkdir(dir_.c_str(), 0755);
        std::remove(shardFilePath(dir_, 0).c_str());
        std::remove(shardManifestPath(dir_, 0).c_str());
    }

    void
    TearDown() override
    {
        std::remove(shardFilePath(dir_, 0).c_str());
        std::remove(shardManifestPath(dir_, 0).c_str());
        ::rmdir(dir_.c_str());
    }

    /** Write the shard-0 task file covering cells [0, cells). */
    void
    writeTask(const ScenarioSpec &spec, const SweepTuning &tuning)
    {
        const std::string scenario = spec.format();
        fingerprint_ =
            sweepFingerprint(scenario, tuning.canonicalKey());
        std::ofstream out(shardFilePath(dir_, 0), std::ios::binary);
        out << renderShardFile(fingerprint_, 0, 0, spec.cellCount(),
                               scenario, tuning);
        ASSERT_TRUE(out.good());
    }

    std::string
    fileBytes(const std::string &path) const
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        return buffer.str();
    }

    std::string dir_;
    std::uint64_t fingerprint_ = 0;
};

/**
 * Compare a checkpointed cell record against a reference result,
 * bit-exact except for elapsedMs: per-cell wall-clock timing is host
 * noise by design (it feeds only the non-deterministic timing CSV),
 * so it is normalized away before the byte comparison.
 */
void
expectCellMatches(const std::vector<std::uint8_t> &record,
                  const ScenarioResult &reference, std::size_t cell)
{
    ScenarioResult decoded;
    std::string error;
    ASSERT_TRUE(decodeScenarioResult(record.data(), record.size(),
                                     decoded, error))
        << "cell " << cell << ": " << error;
    decoded.elapsedMs = reference.elapsedMs;
    EXPECT_EQ(encodeScenarioResult(decoded),
              encodeScenarioResult(reference))
        << "cell " << cell << " diverged from the in-process run";
}

TEST_F(WorkerShardTest, ProducesBytesIdenticalToInProcessRun)
{
    const ScenarioSpec spec = tinySpec();
    SweepTuning tuning = richTuning();
    tuning.queuePolicy = EventQueuePolicy::kCalendar;
    writeTask(spec, tuning);

    EXPECT_EQ(runWorkerShard("worker_test",
                             shardFilePath(dir_, 0), 1),
              0);

    const ManifestHeader header{fingerprint_, 0, 0, spec.cellCount()};
    ManifestContents contents;
    std::string error;
    ASSERT_EQ(readManifest(shardManifestPath(dir_, 0), header,
                           contents, error),
              ManifestReadStatus::kOk)
        << error;
    ASSERT_EQ(contents.cells.size(), spec.cellCount());

    const auto reference = runScenarioGrid(
        buildSweepGrid(spec, tuning, "worker_test"), 1);
    ASSERT_EQ(reference.size(), spec.cellCount());
    for (std::size_t cell = 0; cell < reference.size(); ++cell)
        expectCellMatches(contents.cells.at(cell), reference[cell],
                          cell);
}

TEST_F(WorkerShardTest, ResumeSkipsCheckpointedCellsAndIsIdempotent)
{
    const ScenarioSpec spec = tinySpec();
    const SweepTuning tuning;
    writeTask(spec, tuning);

    // Pre-checkpoint cells 0 and 2 from an in-process run, as if a
    // previous worker died after finishing them.
    const auto reference = runScenarioGrid(
        buildSweepGrid(spec, tuning, "worker_test"), 1);
    const ManifestHeader header{fingerprint_, 0, 0, spec.cellCount()};
    {
        ManifestWriter writer;
        std::string error;
        ASSERT_TRUE(writer.open(shardManifestPath(dir_, 0), header, 0,
                                error))
            << error;
        ASSERT_TRUE(writer.appendCell(
            0, encodeScenarioResult(reference[0]), error));
        ASSERT_TRUE(writer.appendCell(
            2, encodeScenarioResult(reference[2]), error));
    }

    ASSERT_EQ(runWorkerShard("worker_test",
                             shardFilePath(dir_, 0), 1),
              0);
    ManifestContents contents;
    std::string error;
    ASSERT_EQ(readManifest(shardManifestPath(dir_, 0), header,
                           contents, error),
              ManifestReadStatus::kOk)
        << error;
    ASSERT_EQ(contents.cells.size(), spec.cellCount());
    for (std::size_t cell = 0; cell < reference.size(); ++cell)
        expectCellMatches(contents.cells.at(cell), reference[cell],
                          cell);

    // A second run over the complete manifest must be a no-op: exit 0
    // and byte-identical manifest.
    const std::string before = fileBytes(shardManifestPath(dir_, 0));
    EXPECT_EQ(runWorkerShard("worker_test",
                             shardFilePath(dir_, 0), 1),
              0);
    EXPECT_EQ(fileBytes(shardManifestPath(dir_, 0)), before);
}

TEST_F(WorkerShardTest, MissingTaskFileIsIoError)
{
    EXPECT_EQ(runWorkerShard("worker_test",
                             shardFilePath(dir_, 0), 1),
              1);
}

TEST_F(WorkerShardTest, MalformedTaskFileIsUsageError)
{
    {
        std::ofstream out(shardFilePath(dir_, 0), std::ios::binary);
        out << "busarb-shard v1\nfingerprint nothex\n";
    }
    EXPECT_EQ(runWorkerShard("worker_test",
                             shardFilePath(dir_, 0), 1),
              2);
}

TEST_F(WorkerShardTest, CorruptManifestIsUsageError)
{
    const ScenarioSpec spec = tinySpec();
    const SweepTuning tuning;
    writeTask(spec, tuning);
    {
        std::ofstream out(shardManifestPath(dir_, 0),
                          std::ios::binary);
        out << "{\"kind\":\"busarb-shard-manifest\",\"version\":9}\n";
    }
    EXPECT_EQ(runWorkerShard("worker_test",
                             shardFilePath(dir_, 0), 1),
              2);
}

} // namespace
} // namespace busarb
