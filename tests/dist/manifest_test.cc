/**
 * @file
 * Checkpoint manifest tests: the durable write/read round trip, the
 * torn-tail crash contract, and rejection of every corruption class
 * (bad checksum, version mismatch, fingerprint mismatch, conflicting
 * duplicates, out-of-range cells).
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "dist/manifest.hh"
#include "dist/shard_plan.hh"

namespace busarb {
namespace {

class ManifestTest : public ::testing::Test
{
  protected:
    std::string
    path() const
    {
        return ::testing::TempDir() + "manifest_test_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name() +
               ".jsonl";
    }

    void SetUp() override { std::remove(path().c_str()); }
    void TearDown() override { std::remove(path().c_str()); }

    std::string
    fileText() const
    {
        std::ifstream in(path(), std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        return buffer.str();
    }

    void
    writeText(const std::string &text) const
    {
        std::ofstream out(path(), std::ios::binary | std::ios::trunc);
        out << text;
    }

    const ManifestHeader header_{0x0123456789abcdefULL, 2, 10, 14};
};

std::vector<std::uint8_t>
record(std::uint8_t seed)
{
    std::vector<std::uint8_t> bytes;
    for (int i = 0; i < 40; ++i)
        bytes.push_back(static_cast<std::uint8_t>(seed + i));
    return bytes;
}

TEST_F(ManifestTest, HexRoundTrip)
{
    const auto bytes = record(7);
    std::vector<std::uint8_t> back;
    ASSERT_TRUE(hexDecode(hexEncode(bytes), back));
    EXPECT_EQ(back, bytes);

    std::vector<std::uint8_t> out;
    EXPECT_FALSE(hexDecode("abc", out));  // odd length
    EXPECT_FALSE(hexDecode("zz", out));   // non-hex
    EXPECT_FALSE(hexDecode("AB", out));   // uppercase
    ASSERT_TRUE(hexDecode("", out));
    EXPECT_TRUE(out.empty());
}

TEST_F(ManifestTest, MissingFileReportsMissing)
{
    ManifestContents contents;
    std::string error;
    EXPECT_EQ(readManifest(path(), header_, contents, error),
              ManifestReadStatus::kMissing);
}

TEST_F(ManifestTest, WriteReadRoundTrip)
{
    ManifestWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path(), header_, 0, error)) << error;
    ASSERT_TRUE(writer.appendCell(10, record(1), error)) << error;
    ASSERT_TRUE(writer.appendCell(12, record(2), error)) << error;
    writer.close();

    ManifestContents contents;
    ASSERT_EQ(readManifest(path(), header_, contents, error),
              ManifestReadStatus::kOk)
        << error;
    EXPECT_FALSE(contents.tornTail);
    EXPECT_EQ(contents.header.fingerprint, header_.fingerprint);
    ASSERT_EQ(contents.cells.size(), 2u);
    EXPECT_EQ(contents.cells.at(10), record(1));
    EXPECT_EQ(contents.cells.at(12), record(2));
    EXPECT_EQ(contents.validBytes, fileText().size());
}

TEST_F(ManifestTest, TornTailIsDroppedAndTruncatedOnResume)
{
    ManifestWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path(), header_, 0, error)) << error;
    ASSERT_TRUE(writer.appendCell(10, record(1), error)) << error;
    writer.close();

    // Simulate a mid-write SIGKILL: a second cell line without its
    // trailing newline.
    const std::string intact = fileText();
    {
        std::ofstream out(path(),
                          std::ios::binary | std::ios::app);
        out << "{\"cell\":11,\"check\":\"0000";
    }

    ManifestContents contents;
    ASSERT_EQ(readManifest(path(), header_, contents, error),
              ManifestReadStatus::kOk)
        << error;
    EXPECT_TRUE(contents.tornTail);
    ASSERT_EQ(contents.cells.size(), 1u);
    EXPECT_EQ(contents.validBytes, intact.size());

    // Resuming truncates the torn tail before appending, so the file
    // ends up indistinguishable from a clean two-cell run.
    ASSERT_TRUE(
        writer.open(path(), header_, contents.validBytes, error))
        << error;
    ASSERT_TRUE(writer.appendCell(11, record(3), error)) << error;
    writer.close();
    ManifestContents after;
    ASSERT_EQ(readManifest(path(), header_, after, error),
              ManifestReadStatus::kOk)
        << error;
    EXPECT_FALSE(after.tornTail);
    ASSERT_EQ(after.cells.size(), 2u);
    EXPECT_EQ(after.cells.at(11), record(3));
}

TEST_F(ManifestTest, TornHeaderMeansFreshManifest)
{
    writeText("{\"kind\":\"busarb-shard-man"); // killed mid-header
    ManifestContents contents;
    std::string error;
    ASSERT_EQ(readManifest(path(), header_, contents, error),
              ManifestReadStatus::kOk)
        << error;
    EXPECT_TRUE(contents.tornTail);
    EXPECT_EQ(contents.validBytes, 0u);
    EXPECT_TRUE(contents.cells.empty());
}

TEST_F(ManifestTest, IdenticalDuplicateAcceptedConflictRejected)
{
    ManifestWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path(), header_, 0, error)) << error;
    ASSERT_TRUE(writer.appendCell(10, record(1), error)) << error;
    ASSERT_TRUE(writer.appendCell(10, record(1), error)) << error;
    writer.close();

    ManifestContents contents;
    ASSERT_EQ(readManifest(path(), header_, contents, error),
              ManifestReadStatus::kOk)
        << error;
    EXPECT_EQ(contents.cells.size(), 1u);

    ASSERT_TRUE(
        writer.open(path(), header_, contents.validBytes, error));
    ASSERT_TRUE(writer.appendCell(10, record(9), error));
    writer.close();
    EXPECT_EQ(readManifest(path(), header_, contents, error),
              ManifestReadStatus::kCorrupt);
    EXPECT_NE(error.find("conflicting"), std::string::npos) << error;
}

TEST_F(ManifestTest, ChecksumFlipIsCorrupt)
{
    ManifestWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path(), header_, 0, error)) << error;
    ASSERT_TRUE(writer.appendCell(10, record(1), error)) << error;
    writer.close();

    std::string text = fileText();
    const std::size_t data = text.find("\"data\":\"");
    ASSERT_NE(data, std::string::npos);
    // Flip one hex digit of the payload without touching the length.
    text[data + 8] = text[data + 8] == '0' ? '1' : '0';
    writeText(text);

    ManifestContents contents;
    EXPECT_EQ(readManifest(path(), header_, contents, error),
              ManifestReadStatus::kCorrupt);
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST_F(ManifestTest, VersionMismatchIsCorrupt)
{
    ManifestWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path(), header_, 0, error)) << error;
    writer.close();

    std::string text = fileText();
    const std::size_t version = text.find("\"version\":1");
    ASSERT_NE(version, std::string::npos);
    text.replace(version, 11, "\"version\":9");
    writeText(text);

    ManifestContents contents;
    EXPECT_EQ(readManifest(path(), header_, contents, error),
              ManifestReadStatus::kCorrupt);
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST_F(ManifestTest, FingerprintMismatchIsCorrupt)
{
    ManifestWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path(), header_, 0, error)) << error;
    writer.close();

    ManifestHeader other = header_;
    other.fingerprint ^= 1;
    ManifestContents contents;
    EXPECT_EQ(readManifest(path(), other, contents, error),
              ManifestReadStatus::kCorrupt);
    EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
}

TEST_F(ManifestTest, ShardRangeMismatchIsCorrupt)
{
    ManifestWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path(), header_, 0, error)) << error;
    writer.close();

    ManifestHeader other = header_;
    other.end = 15;
    ManifestContents contents;
    EXPECT_EQ(readManifest(path(), other, contents, error),
              ManifestReadStatus::kCorrupt);
    EXPECT_NE(error.find("range"), std::string::npos) << error;
}

TEST_F(ManifestTest, CellOutsideRangeIsCorrupt)
{
    ManifestWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path(), header_, 0, error)) << error;
    ASSERT_TRUE(writer.appendCell(99, record(1), error)) << error;
    writer.close();

    ManifestContents contents;
    EXPECT_EQ(readManifest(path(), header_, contents, error),
              ManifestReadStatus::kCorrupt);
    EXPECT_NE(error.find("outside"), std::string::npos) << error;
}

TEST_F(ManifestTest, GarbageLineIsCorrupt)
{
    ManifestWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path(), header_, 0, error)) << error;
    writer.close();
    {
        std::ofstream out(path(), std::ios::binary | std::ios::app);
        out << "not json at all\n";
    }
    ManifestContents contents;
    EXPECT_EQ(readManifest(path(), header_, contents, error),
              ManifestReadStatus::kCorrupt);
}

} // namespace
} // namespace busarb
