/**
 * @file
 * ScenarioResult codec tests: the round trip must be bit-exact (the
 * sharded merge's byte-identity rests on it), and every malformed
 * record must fail decode with a diagnostic instead of crashing.
 */

#include <gtest/gtest.h>

#include "dist/result_codec.hh"

namespace busarb {
namespace {

/** A result exercising every serialized field. */
ScenarioResult
richResult()
{
    ScenarioResult r;
    r.protocolName = "RR(1)";
    r.spec = "rr1:bits=3";
    r.numAgents = 4;
    r.confidence = 0.95;
    r.elapsedMs = 123.25;

    for (int i = 0; i < 3; ++i) {
        BatchStats b;
        b.duration = 100.5 + i;
        b.completions = {10, 20, 30, static_cast<std::uint64_t>(40 + i)};
        b.waitMean = 1.0 / 3.0 + i; // not representable exactly in text
        b.waitStddev = 0.1 * i;
        b.productive = {1.1, 2.2, 3.3, 4.4};
        b.cycle = {5.5, 6.6, 7.7, 8.8};
        b.waitSum = {0.25, 0.5, 0.75, 1.0};
        b.overlapSum = {0.0, 0.125, 0.25, 0.375};
        b.utilization = 0.875;
        b.passes = 1000 + static_cast<std::uint64_t>(i);
        b.retryPasses = 7;
        r.batches.push_back(b);
    }

    r.waitHistogram.add(0.1);
    r.waitHistogram.add(3.7);
    r.waitHistogram.add(1e9); // overflow
    r.agentWaitHistograms.emplace_back(0.5, 10);
    r.agentWaitHistograms.back().add(2.0);
    r.agentWaitHistograms.emplace_back(0.5, 10);

    r.binaryTrace = {0x00, 0xff, 0x42, 0x10, 0x00, 0x7f};

    r.metrics.counter("bus.passes").add(321);
    r.metrics.gauge("wait.mean").set(1.0 / 7.0);
    r.metrics.gauge("wait.mean").set(2.0);
    r.metrics.gauge("empty.gauge"); // zero samples: +/-inf sentinels
    r.metrics.histogram("wait.histogram", 0.25, 8).add(0.3);
    r.metrics.setAnnotation("protocol.spec", "rr1:bits=3");

    r.fairnessSnapshots = "{\"t\": 1}\n{\"t\": 2}\n";
    r.healthSnapshots = "{\"batch\": 1}\n";

    r.health.enabled = true;
    r.health.verdict = ConvergenceVerdict::kTransientContaminated;
    r.health.batches = 3;
    r.health.wait = {3.25, 0.0625};
    r.health.waitRelHalfWidth = 0.019230769230769232;
    r.health.waitLag1 = -0.125;
    r.health.waitMserCut = 2;
    r.health.waitRelHwTrajectory = {0.5, 0.25, 0.019230769230769232};
    r.health.utilRelHalfWidth = 0.01;
    r.health.utilLag1 = 0.0625;
    return r;
}

TEST(ResultCodec, RoundTripIsBitExact)
{
    const ScenarioResult original = richResult();
    const auto bytes = encodeScenarioResult(original);

    ScenarioResult decoded;
    std::string error;
    ASSERT_TRUE(decodeScenarioResult(bytes.data(), bytes.size(), decoded,
                                     error))
        << error;

    // Re-encoding the decoded value must reproduce the record
    // byte-for-byte: that single check covers every field bit-exactly.
    EXPECT_EQ(encodeScenarioResult(decoded), bytes);

    // Spot checks for readability of failures.
    EXPECT_EQ(decoded.protocolName, "RR(1)");
    EXPECT_EQ(decoded.spec, "rr1:bits=3");
    EXPECT_EQ(decoded.numAgents, 4);
    ASSERT_EQ(decoded.batches.size(), 3u);
    EXPECT_EQ(decoded.batches[1].waitMean, original.batches[1].waitMean);
    EXPECT_EQ(decoded.waitHistogram.count(), 3u);
    EXPECT_EQ(decoded.waitHistogram.overflow(), 1u);
    EXPECT_EQ(decoded.waitHistogram.sum(), original.waitHistogram.sum());
    ASSERT_EQ(decoded.agentWaitHistograms.size(), 2u);
    EXPECT_EQ(decoded.agentWaitHistograms[1].count(), 0u);
    EXPECT_EQ(decoded.binaryTrace, original.binaryTrace);
    EXPECT_EQ(decoded.metrics.counters().at("bus.passes").value(), 321u);
    EXPECT_EQ(decoded.metrics.gauges().at("wait.mean").sum(),
              original.metrics.gauges().at("wait.mean").sum());
    EXPECT_EQ(decoded.metrics.gauges().at("empty.gauge").count(), 0u);
    EXPECT_EQ(decoded.metrics.annotations().at("protocol.spec"),
              "rr1:bits=3");
    EXPECT_EQ(decoded.fairnessSnapshots, original.fairnessSnapshots);
    EXPECT_EQ(decoded.health.verdict,
              ConvergenceVerdict::kTransientContaminated);
    EXPECT_EQ(decoded.health.waitRelHwTrajectory,
              original.health.waitRelHwTrajectory);
}

TEST(ResultCodec, EmptyGaugeSurvivesMergeAfterDecode)
{
    // The +/-inf empty-gauge sentinels must not be corrupted by the
    // round trip: a later set() must still establish min and max.
    ScenarioResult r;
    r.metrics.gauge("g");
    const auto bytes = encodeScenarioResult(r);
    ScenarioResult decoded;
    std::string error;
    ASSERT_TRUE(decodeScenarioResult(bytes.data(), bytes.size(), decoded,
                                     error));
    decoded.metrics.gauge("g").set(5.0);
    EXPECT_EQ(decoded.metrics.gauges().at("g").min(), 5.0);
    EXPECT_EQ(decoded.metrics.gauges().at("g").max(), 5.0);
}

TEST(ResultCodec, DefaultResultRoundTrips)
{
    const ScenarioResult original;
    const auto bytes = encodeScenarioResult(original);
    ScenarioResult decoded;
    std::string error;
    ASSERT_TRUE(decodeScenarioResult(bytes.data(), bytes.size(), decoded,
                                     error))
        << error;
    EXPECT_EQ(encodeScenarioResult(decoded), bytes);
}

TEST(ResultCodec, RejectsEveryTruncation)
{
    const auto bytes = encodeScenarioResult(richResult());
    ScenarioResult decoded;
    std::string error;
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(
            decodeScenarioResult(bytes.data(), len, decoded, error))
            << "decode accepted a record truncated to " << len
            << " of " << bytes.size() << " bytes";
    }
}

TEST(ResultCodec, RejectsBadMagicAndVersion)
{
    auto bytes = encodeScenarioResult(richResult());
    ScenarioResult decoded;
    std::string error;

    auto bad_magic = bytes;
    bad_magic[0] ^= 0x01;
    EXPECT_FALSE(decodeScenarioResult(bad_magic.data(), bad_magic.size(),
                                      decoded, error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;

    auto bad_version = bytes;
    bad_version[4] ^= 0x01;
    EXPECT_FALSE(decodeScenarioResult(bad_version.data(),
                                      bad_version.size(), decoded,
                                      error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(ResultCodec, RejectsTrailingBytes)
{
    auto bytes = encodeScenarioResult(richResult());
    bytes.push_back(0x00);
    ScenarioResult decoded;
    std::string error;
    EXPECT_FALSE(decodeScenarioResult(bytes.data(), bytes.size(),
                                      decoded, error));
    EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

} // namespace
} // namespace busarb
