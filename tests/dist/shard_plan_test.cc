/**
 * @file
 * Shard planner and fingerprint tests: coverage, balance, determinism,
 * and the hex round trip the manifests rely on.
 */

#include <gtest/gtest.h>

#include "dist/shard_plan.hh"

namespace busarb {
namespace {

TEST(ShardPlan, CoversEveryCellExactlyOnce)
{
    for (std::size_t cells : {1u, 2u, 7u, 16u, 40u, 101u}) {
        for (std::size_t shards : {1u, 2u, 3u, 5u, 16u}) {
            const auto plan = planShards(cells, shards);
            std::size_t next = 0;
            for (const ShardRange &r : plan) {
                EXPECT_EQ(r.begin, next);
                EXPECT_GT(r.end, r.begin) << "empty shard";
                next = r.end;
            }
            EXPECT_EQ(next, cells);
        }
    }
}

TEST(ShardPlan, BalancesWithinOneCell)
{
    const auto plan = planShards(10, 4);
    ASSERT_EQ(plan.size(), 4u);
    // 10 = 3 + 3 + 2 + 2: the first (cells % shards) ranges get the
    // extra cell.
    EXPECT_EQ(plan[0].size(), 3u);
    EXPECT_EQ(plan[1].size(), 3u);
    EXPECT_EQ(plan[2].size(), 2u);
    EXPECT_EQ(plan[3].size(), 2u);
}

TEST(ShardPlan, ClampsShardsToCells)
{
    const auto plan = planShards(3, 8);
    ASSERT_EQ(plan.size(), 3u);
    for (std::size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(plan[i].index, i);
        EXPECT_EQ(plan[i].size(), 1u);
    }
}

TEST(ShardPlan, IndicesMatchPositions)
{
    const auto plan = planShards(9, 3);
    for (std::size_t i = 0; i < plan.size(); ++i)
        EXPECT_EQ(plan[i].index, i);
}

TEST(SweepFingerprint, SeparatesScenarioFromTuning)
{
    // The field separator keeps ("ab", "c") and ("a", "bc") apart.
    EXPECT_NE(sweepFingerprint("ab", "c"), sweepFingerprint("a", "bc"));
    EXPECT_NE(sweepFingerprint("", "x"), sweepFingerprint("x", ""));
}

TEST(SweepFingerprint, DeterministicAndSensitive)
{
    const std::uint64_t base = sweepFingerprint("scenario", "tuning");
    EXPECT_EQ(base, sweepFingerprint("scenario", "tuning"));
    EXPECT_NE(base, sweepFingerprint("scenario2", "tuning"));
    EXPECT_NE(base, sweepFingerprint("scenario", "tuning2"));
}

TEST(SweepFingerprint, HexRoundTrip)
{
    for (const std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xdeadbeef},
          ~std::uint64_t{0}, sweepFingerprint("a", "b")}) {
        const std::string hex = fingerprintHex(v);
        EXPECT_EQ(hex.size(), 16u);
        std::uint64_t back = 0;
        ASSERT_TRUE(parseFingerprintHex(hex, back)) << hex;
        EXPECT_EQ(back, v);
    }
}

TEST(SweepFingerprint, HexParseRejectsMalformed)
{
    std::uint64_t out = 0;
    EXPECT_FALSE(parseFingerprintHex("", out));
    EXPECT_FALSE(parseFingerprintHex("0123456789abcde", out));   // 15
    EXPECT_FALSE(parseFingerprintHex("0123456789abcdef0", out)); // 17
    EXPECT_FALSE(parseFingerprintHex("0123456789ABCDEF", out));  // upper
    EXPECT_FALSE(parseFingerprintHex("0123456789abcdeg", out));
}

TEST(ShardPaths, StableNaming)
{
    EXPECT_EQ(gridSpecPath("dir"), "dir/grid.spec");
    EXPECT_EQ(shardFilePath("dir", 0), "dir/shard-0000.shard");
    EXPECT_EQ(shardManifestPath("dir", 12),
              "dir/shard-0012.manifest.jsonl");
    EXPECT_EQ(shardFilePath("dir", 12345), "dir/shard-12345.shard");
}

} // namespace
} // namespace busarb
