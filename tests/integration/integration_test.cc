/**
 * @file
 * Integration tests: the paper's qualitative claims, verified end-to-end
 * through the full simulation stack.
 */

#include <memory>

#include <gtest/gtest.h>

#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

ScenarioConfig
fastScenario(int n, double load, double cv = 1.0)
{
    ScenarioConfig config = equalLoadScenario(n, load, cv);
    config.numBatches = 5;
    config.batchSize = 1500;
    config.warmup = 1500;
    return config;
}

TEST(ConservationLawTest, MeanWaitIsProtocolIndependent)
{
    // Kleinrock's conservation law (paper, footnote 4): for
    // work-conserving non-preemptive disciplines whose order does not
    // depend on service times, the mean wait is the same. RR, FCFS, and
    // both AAPs must agree.
    const auto config = fastScenario(10, 1.5);
    double reference = 0.0;
    for (const char *key : {"rr1", "fcfs1", "fcfs2", "aap1", "aap2",
                            "hybrid", "central-rr", "central-fcfs",
                            "ticket"}) {
        const auto result = runScenario(config, protocolByKey(key));
        const double w = result.meanWait().value;
        if (reference == 0.0)
            reference = w;
        EXPECT_NEAR(w, reference, 0.06 * reference) << key;
    }
}

TEST(WorkConservationTest, SaturatedBusNeverIdles)
{
    // Even at total load 2.5 there are rare instants when all ten
    // agents think simultaneously, exposing one arbitration overhead;
    // utilization must still be within a fraction of a percent of 1.
    const auto config = fastScenario(10, 2.5);
    for (const char *key : {"rr1", "rr3", "fcfs1", "aap1", "aap2"}) {
        const auto result = runScenario(config, protocolByKey(key));
        EXPECT_NEAR(result.utilization().value, 1.0, 2e-3) << key;
    }
}

TEST(FairnessTest, RoundRobinIsPerfectlyFair)
{
    const auto config = fastScenario(10, 2.0);
    for (const char *key : {"rr1", "rr2", "rr3", "central-rr"}) {
        const auto result = runScenario(config, protocolByKey(key));
        const Estimate ratio = result.throughputRatio(10, 1);
        EXPECT_NEAR(ratio.value, 1.0, 0.05) << key;
    }
}

TEST(FairnessTest, FcfsImpl1SlightBiasTowardHighIdentities)
{
    // Table 4.1: the simple FCFS implementation favours high identities
    // by at most ~6-9% near saturation — far less than the AAPs.
    const auto config = fastScenario(10, 2.0);
    const auto result = runScenario(config, protocolByKey("fcfs1"));
    const Estimate ratio = result.throughputRatio(10, 1);
    EXPECT_GT(ratio.value, 1.0);
    EXPECT_LT(ratio.value, 1.18);
}

TEST(FairnessTest, HybridRemovesFcfsTieBias)
{
    // The Section 5 hybrid uses RR among same-interval arrivals, so the
    // static-identity bias of plain FCFS disappears.
    const auto config = fastScenario(10, 2.0);
    const auto result = runScenario(config, protocolByKey("hybrid"));
    const Estimate ratio = result.throughputRatio(10, 1);
    EXPECT_NEAR(ratio.value, 1.0, 0.06);
}

TEST(FairnessTest, AapsAreSubstantiallyUnfair)
{
    const auto config = fastScenario(10, 5.0);
    for (const char *key : {"aap1", "aap2"}) {
        const auto result = runScenario(config, protocolByKey(key));
        const Estimate ratio = result.throughputRatio(10, 1);
        EXPECT_GT(ratio.value, 1.15) << key;
    }
}

TEST(FairnessTest, FixedPriorityStarvesLowIdentities)
{
    // Agent 1 can be starved outright (zero completions in a batch), so
    // compare per-agent throughput estimates instead of per-batch
    // ratios.
    const auto config = fastScenario(10, 2.5);
    const auto result = runScenario(config, protocolByKey("fixed"));
    const double high = result.agentThroughput(10).value;
    const double low = result.agentThroughput(1).value;
    EXPECT_GT(high, 3.0 * low + 1e-9);
    // The top identity keeps most of its demand (0.25 offered): it
    // waits at most through the tenure in progress plus one already-
    // granted tenure, so its cycle stays short.
    EXPECT_GT(high, 0.15);
}

TEST(VarianceTest, FcfsHasLowerWaitVarianceThanRr)
{
    // Sharma & Ahuja: FCFS minimizes waiting-time variance. Table 4.2
    // shows sigma_RR / sigma_FCFS well above 1 at high load.
    const auto config = fastScenario(10, 2.0);
    const auto rr = runScenario(config, protocolByKey("rr1"));
    const auto fcfs = runScenario(config, protocolByKey("fcfs1"));
    EXPECT_GT(rr.waitStddev().value, 1.3 * fcfs.waitStddev().value);
    EXPECT_NEAR(rr.meanWait().value, fcfs.meanWait().value,
                0.05 * rr.meanWait().value);
}

TEST(ScheduleEquivalenceTest, DistributedRrEqualsCentralRr)
{
    // "The RR protocol implements true round-robin scheduling,
    // identical to the central round-robin arbiter."
    auto config = fastScenario(8, 2.0);
    config.numBatches = 2;
    config.batchSize = 2000;
    for (const char *key : {"rr1", "rr2"}) {
        const auto distributed = runScenario(config, protocolByKey(key));
        const auto central =
            runScenario(config, protocolByKey("central-rr"));
        ASSERT_EQ(distributed.batches.size(), central.batches.size());
        for (std::size_t b = 0; b < distributed.batches.size(); ++b) {
            EXPECT_EQ(distributed.batches[b].completions,
                      central.batches[b].completions)
                << key << " batch " << b;
            EXPECT_DOUBLE_EQ(distributed.batches[b].waitMean,
                             central.batches[b].waitMean)
                << key << " batch " << b;
        }
    }
}

TEST(ScheduleEquivalenceTest, FcfsIncrLineTracksCentralFcfs)
{
    // With a vanishing pulse window, FCFS implementation 2 is exact
    // FCFS except for same-tick ties; waiting-time statistics must be
    // statistically indistinguishable from the central reference.
    auto config = fastScenario(8, 2.0);
    FcfsConfig fcfs_config;
    fcfs_config.strategy = FcfsStrategy::kIncrLine;
    fcfs_config.incrWindow = 1e-6;
    const auto distributed =
        runScenario(config, makeFcfsFactory(fcfs_config));
    const auto central = runScenario(config, protocolByKey("central-fcfs"));
    EXPECT_NEAR(distributed.meanWait().value, central.meanWait().value,
                0.02 * central.meanWait().value);
    EXPECT_NEAR(distributed.waitStddev().value,
                central.waitStddev().value,
                0.05 * central.waitStddev().value);
}

TEST(WorstCaseTest, JustMissHalvesSlowAgentThroughputAtCvZero)
{
    // Table 4.5: deterministic inter-request times let the slow agent
    // repeatedly just miss its RR turn -> it is served every other
    // cycle and gets ~0.5x the throughput of the others.
    ScenarioConfig config = worstCaseRrScenario(10, 0.0);
    config.numBatches = 5;
    config.batchSize = 1500;
    config.warmup = 1500;
    const auto result = runScenario(config, protocolByKey("rr1"));
    const Estimate ratio = result.throughputRatio(1, 2);
    EXPECT_NEAR(ratio.value, 0.5, 0.05);
}

TEST(WorstCaseTest, SmallVariabilityRestoresFairShare)
{
    // Table 4.5: already at CV = 0.25 the just-miss effect vanishes and
    // the ratio returns to the offered-load ratio (~0.70 for N = 10).
    ScenarioConfig config = worstCaseRrScenario(10, 0.25);
    config.numBatches = 5;
    config.batchSize = 1500;
    config.warmup = 1500;
    const auto result = runScenario(config, protocolByKey("rr1"));
    const Estimate ratio = result.throughputRatio(1, 2);
    EXPECT_GT(ratio.value, 0.62);
}

TEST(FcfsWorstCaseTest, SynchronizedArrivalsCannotPersist)
{
    // Section 4.5 sketches a worst case for FCFS — all agents
    // re-requesting within the same counter interval every time — and
    // declines to pursue it as "equally as contrived, if not more so".
    // This test shows why it cannot even be sustained: identical
    // deterministic think times synchronize only the FIRST round;
    // after that, service completions are staggered one transaction
    // apart, so re-requests land in distinct counter intervals and
    // true FCFS order (equal per-agent waits) re-emerges.
    ScenarioConfig config = equalLoadScenario(10, 5.0, /*cv=*/0.0);
    config.numBatches = 5;
    config.batchSize = 1500;
    config.warmup = 1500;
    const auto result = runScenario(config, protocolByKey("fcfs1"));
    EXPECT_NEAR(result.throughputRatio(10, 1).value, 1.0, 0.02);
    EXPECT_NEAR(result.agentMeanWait(1).value,
                result.agentMeanWait(10).value, 0.5);
}

TEST(RetryCostTest, OnlyImpl3AndAap2PayRetryPasses)
{
    const auto config = fastScenario(8, 1.5);
    EXPECT_DOUBLE_EQ(
        runScenario(config, protocolByKey("rr1")).retryPassFraction().value,
        0.0);
    EXPECT_DOUBLE_EQ(
        runScenario(config, protocolByKey("rr2")).retryPassFraction().value,
        0.0);
    EXPECT_GT(
        runScenario(config, protocolByKey("rr3")).retryPassFraction().value,
        0.0);
    EXPECT_GT(runScenario(config, protocolByKey("aap2"))
                  .retryPassFraction()
                  .value,
              0.0);
}

TEST(MultiOutstandingTest, FcfsHandlesQueuedTokens)
{
    ScenarioConfig config = fastScenario(6, 0.9);
    for (auto &traits : config.agents)
        traits.maxOutstanding = 4;
    FcfsConfig fcfs_config;
    fcfs_config.strategy = FcfsStrategy::kIncrLine;
    fcfs_config.maxOutstandingHint = 4;
    const auto result = runScenario(config, makeFcfsFactory(fcfs_config));
    EXPECT_NEAR(result.utilization().value,
                result.throughput().value, 1e-9);
    EXPECT_GT(result.throughput().value, 0.8);
}

TEST(UnequalLoadTest, LowLoadBandwidthProportionalToDemand)
{
    // Table 4.4 top rows: at low load both protocols allocate bandwidth
    // in proportion to request rates (ratio = 2 for the double-rate
    // agent).
    ScenarioConfig config = unequalLoadScenario(10, 0.05, 2.0);
    config.numBatches = 5;
    config.batchSize = 1500;
    config.warmup = 1500;
    for (const char *key : {"rr1", "fcfs1"}) {
        const auto result = runScenario(config, protocolByKey(key));
        EXPECT_NEAR(result.throughputRatio(1, 2).value, 2.0, 0.25) << key;
    }
}

TEST(UnequalLoadTest, SaturationEvensOutRrMoreThanFcfs)
{
    // Table 4.4: at high load RR pushes the ratio toward 1 faster,
    // while FCFS keeps serving more in proportion to demand.
    ScenarioConfig config = unequalLoadScenario(10, 0.2, 2.0);
    config.numBatches = 6;
    config.batchSize = 2000;
    config.warmup = 2000;
    const auto rr = runScenario(config, protocolByKey("rr1"));
    const auto fcfs = runScenario(config, protocolByKey("fcfs1"));
    EXPECT_LT(rr.throughputRatio(1, 2).value,
              fcfs.throughputRatio(1, 2).value + 0.02);
    EXPECT_LT(rr.throughputRatio(1, 2).value, 1.5);
}

} // namespace
} // namespace busarb
