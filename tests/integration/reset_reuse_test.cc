/**
 * @file
 * Protocol object reuse: reset() must restore a pristine state, so a
 * protocol instance driven through one run and reset produces exactly
 * the same results as a fresh instance.
 */

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "bus/protocol_checker.hh"
#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "support/protocol_driver.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

class ResetReuseTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ResetReuseTest, ResetRestoresPristineState)
{
    auto protocol = protocolByKey(GetParam())();

    const auto drive = [&](int n) {
        test::ProtocolDriver driver(*protocol, n); // driver resets
        std::vector<AgentId> order;
        driver.post(2, 0);
        driver.post(n, 0);
        order.push_back(driver.arbitrateAndServe(1));
        driver.post(1, 2);
        order.push_back(driver.arbitrateAndServe(3));
        order.push_back(driver.arbitrateAndServe(4));
        return order;
    };

    const auto first = drive(5);
    const auto again = drive(5);
    EXPECT_EQ(first, again) << GetParam();

    // Resetting to a different size also works.
    const auto bigger = drive(12);
    const auto bigger_again = drive(12);
    EXPECT_EQ(bigger, bigger_again) << GetParam();
    EXPECT_FALSE(protocol->wantsPass());
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ResetReuseTest,
                         ::testing::Values("rr1", "rr2", "rr3", "fcfs1",
                                           "fcfs2", "hybrid", "fixed",
                                           "aap1", "aap2", "central-rr",
                                           "central-fcfs", "ticket"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (auto &c : name) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return name;
                         });

TEST(SettleTimingFuzzTest, CheckedProtocolsSurviveSettleTiming)
{
    // The fuzz dimension the main fuzz test does not cover: the
    // signal-level timing modes, which exercise settleRoundsForPass /
    // arbitrationLineCount on every pass.
    for (const char *key : {"rr1", "rr3", "fcfs2", "aap2"}) {
        for (auto mode : {BusParams::SettleMode::kDynamic,
                          BusParams::SettleMode::kWorstCase}) {
            ScenarioConfig config = equalLoadScenario(7, 2.0, 1.0);
            config.bus.settleTiming = true;
            config.bus.settleMode = mode;
            config.numBatches = 2;
            config.batchSize = 600;
            config.warmup = 300;
            auto base = protocolByKey(key);
            const auto result = runScenario(config, [&] {
                return std::make_unique<ProtocolChecker>(base());
            });
            EXPECT_GT(result.throughput().value, 0.5) << key;
        }
    }
}

} // namespace
} // namespace busarb
