/**
 * @file
 * End-to-end behaviour of the priority integration (Sections 2.4, 3.1,
 * 3.2): urgent requests see near-minimal waits, fair scheduling
 * continues within and around the priority class, and heavy priority
 * load starves non-priority traffic (the documented design trade-off).
 */

#include <string>

#include <gtest/gtest.h>

#include "bus/bus.hh"
#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "stats/welford.hh"
#include "workload/closed_agent.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

/** Mean waits by priority class for one protocol spec. */
struct ClassWaits
{
    double priority = 0.0;
    double normal = 0.0;
};

ClassWaits
measure(const std::string &spec, double priority_fraction,
        double total_load = 2.0)
{
    const int n = 10;
    EventQueue queue;
    Bus bus(queue, protocolFromSpec(spec)(), n, {});
    struct Split : BusObserver
    {
        RunningStats prio;
        RunningStats normal;
        std::vector<std::unique_ptr<ClosedAgent>> *agents = nullptr;
        void onServiceStart(const Request &, Tick) override {}
        void
        onServiceEnd(const Request &req, Tick now) override
        {
            (req.priority ? prio : normal)
                .add(ticksToUnits(now - req.issued));
            (*agents)[static_cast<std::size_t>(req.agent - 1)]
                ->onServiceEnd(now);
        }
    } split;
    std::vector<std::unique_ptr<ClosedAgent>> agents;
    Rng base(4242);
    for (AgentId a = 1; a <= n; ++a) {
        AgentTraits traits;
        traits.meanInterrequest = interrequestForLoad(total_load / n);
        traits.priorityFraction = priority_fraction;
        agents.push_back(std::make_unique<ClosedAgent>(
            queue, bus, a, traits, base.fork(a)));
    }
    split.agents = &agents;
    bus.setObserver(&split);
    for (auto &agent : agents)
        agent->start();
    while (split.prio.count() + split.normal.count() < 40000) {
        if (!queue.runOne())
            break;
    }
    return ClassWaits{split.prio.mean(), split.normal.mean()};
}

TEST(PriorityBehaviorTest, UrgentRequestsSeeShortWaits)
{
    // At total load 2.0 a saturated bus makes normal requests wait ~6
    // units; a 10% priority class must wait only about the residual
    // transaction plus service (~2-3 units).
    for (const char *spec :
         {"rr1:priority", "fcfs1:priority,counting=matched",
          "fcfs2:priority,counting=dual", "aap1:priority",
          "aap2:priority"}) {
        const auto waits = measure(spec, 0.1);
        EXPECT_LT(waits.priority, 3.2) << spec;
        EXPECT_GT(waits.normal, waits.priority + 2.0) << spec;
    }
}

TEST(PriorityBehaviorTest, AllPriorityCollapsesToBaseDiscipline)
{
    // With every request urgent, the priority bit is common to all
    // competitors and cancels: mean waits match the non-priority runs
    // (conservation law).
    const auto rr = measure("rr1:priority", 1.0);
    const auto plain = measure("rr1", 0.0);
    EXPECT_NEAR(rr.priority, plain.normal, 0.15 * plain.normal);
}

TEST(PriorityBehaviorTest, HeavyPriorityLoadStarvesNormalTraffic)
{
    // 70% priority traffic at saturation: normal requests queue behind
    // a nearly always-occupied priority class and wait several times
    // longer than the urgent ones — the documented cost of strict
    // priority (Section 2.4).
    const auto waits = measure("fcfs1:priority,counting=matched", 0.7,
                               3.0);
    EXPECT_GT(waits.normal, 2.0 * waits.priority);
}

TEST(PriorityBehaviorTest, RrWithinPriorityClassStaysFair)
{
    // All agents urgent all the time, RR within the class: per-agent
    // throughputs stay equal.
    ScenarioConfig config = equalLoadScenario(8, 2.0, 1.0);
    for (auto &t : config.agents)
        t.priorityFraction = 1.0;
    config.numBatches = 4;
    config.batchSize = 1000;
    config.warmup = 1000;
    const auto result = runScenario(
        config, protocolFromSpec("rr1:priority,rr-within-class=true"));
    EXPECT_NEAR(result.throughputRatio(8, 1).value, 1.0, 0.08);
    // Ignoring RR within the class degrades to identity order.
    const auto unfair = runScenario(
        config, protocolFromSpec("rr1:priority,rr-within-class=false"));
    EXPECT_GT(unfair.throughputRatio(8, 1).value, 1.5);
}

} // namespace
} // namespace busarb
