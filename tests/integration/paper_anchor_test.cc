/**
 * @file
 * Paper anchors: regression tests pinning the simulation to the
 * published numbers (within confidence-interval-sized tolerances).
 * If a refactor shifts any of these, the reproduction has drifted.
 */

#include <gtest/gtest.h>

#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

ScenarioConfig
anchorConfig(ScenarioConfig config)
{
    config.numBatches = 10;
    config.batchSize = 4000;
    config.warmup = 4000;
    return config;
}

TEST(PaperAnchorTest, Table42MeanWaitTenAgents)
{
    // Table 4.2(a): W = 1.64 / 2.77 / 6.00 / 9.67 at loads
    // 0.25 / 1.0 / 2.0 / 7.52.
    const struct
    {
        double load;
        double w;
    } anchors[] = {{0.25, 1.64}, {1.0, 2.77}, {2.0, 6.00}, {7.5, 9.67}};
    for (const auto &a : anchors) {
        const auto result = runScenario(
            anchorConfig(equalLoadScenario(10, a.load)),
            protocolByKey("rr1"));
        EXPECT_NEAR(result.meanWait().value, a.w, 0.05 + 0.01 * a.w)
            << "load " << a.load;
    }
}

TEST(PaperAnchorTest, Table42WaitStddevTenAgents)
{
    // Table 4.2(a) at load 2.0: sigma_FCFS = 1.43, sigma_RR = 2.09.
    const auto config = anchorConfig(equalLoadScenario(10, 2.0));
    const auto rr = runScenario(config, protocolByKey("rr1"));
    const auto fcfs = runScenario(config, protocolByKey("fcfs1"));
    EXPECT_NEAR(rr.waitStddev().value, 2.09, 0.12);
    EXPECT_NEAR(fcfs.waitStddev().value, 1.43, 0.12);
}

TEST(PaperAnchorTest, Table42SixtyFourAgentsSaturated)
{
    // Table 4.2(c) at load 5.0: W = 52.20, sigma_FCFS = 2.44,
    // sigma_RR = 10.89.
    const auto config = anchorConfig(equalLoadScenario(64, 5.0));
    const auto rr = runScenario(config, protocolByKey("rr1"));
    const auto fcfs = runScenario(config, protocolByKey("fcfs1"));
    EXPECT_NEAR(rr.meanWait().value, 52.20, 0.4);
    EXPECT_NEAR(rr.waitStddev().value, 10.89, 0.7);
    EXPECT_NEAR(fcfs.waitStddev().value, 2.44, 0.3);
}

TEST(PaperAnchorTest, Table41FcfsBiasTenAgents)
{
    // Table 4.1(a): FCFS impl 1 ratio peaks at 1.09 near load 2.0-2.5
    // and relaxes to 1.01 at load 7.52.
    const auto peak = runScenario(
        anchorConfig(equalLoadScenario(10, 2.5)),
        protocolByKey("fcfs1"));
    EXPECT_NEAR(peak.throughputRatio(10, 1).value, 1.09, 0.035);
    const auto heavy = runScenario(
        anchorConfig(equalLoadScenario(10, 7.5)),
        protocolByKey("fcfs1"));
    EXPECT_NEAR(heavy.throughputRatio(10, 1).value, 1.01, 0.02);
}

TEST(PaperAnchorTest, Table41AapUnfairnessThirtyAgents)
{
    // Table 4.1(b): AAP-1 ratio 1.96 at load 5.0.
    const auto result = runScenario(
        anchorConfig(equalLoadScenario(30, 5.0)),
        protocolByKey("aap1"));
    EXPECT_NEAR(result.throughputRatio(30, 1).value, 1.98, 0.08);
}

TEST(PaperAnchorTest, Table44UnequalRatesThirtyAgents)
{
    // Table 4.4(a) at total load 2.58: RR 1.10, FCFS 1.26.
    ScenarioConfig config =
        anchorConfig(unequalLoadScenario(30, 2.5 / 30.0, 2.0));
    const auto rr = runScenario(config, protocolByKey("rr1"));
    const auto fcfs = runScenario(config, protocolByKey("fcfs1"));
    EXPECT_NEAR(rr.throughputRatio(1, 2).value, 1.10, 0.05);
    EXPECT_NEAR(fcfs.throughputRatio(1, 2).value, 1.26, 0.06);
}

TEST(PaperAnchorTest, Table45JustMissExactHalf)
{
    // Table 4.5: 0.50 +- 0.00 at CV = 0 for every system size.
    for (int n : {10, 30}) {
        ScenarioConfig config = anchorConfig(worstCaseRrScenario(n, 0.0));
        const auto result = runScenario(config, protocolByKey("rr1"));
        EXPECT_NEAR(result.throughputRatio(1, 2).value, 0.50, 0.02)
            << n;
    }
}

TEST(PaperAnchorTest, Figure41CrossoverAtTheMean)
{
    // Figure 4.1 (30 agents, load 1.5): both CDFs cross near the mean
    // wait (11.02); FCFS is far steeper around it.
    ScenarioConfig config = anchorConfig(equalLoadScenario(30, 1.5));
    config.collectHistogram = true;
    const auto rr = runScenario(config, protocolByKey("rr1"));
    const auto fcfs = runScenario(config, protocolByKey("fcfs1"));
    EXPECT_NEAR(rr.meanWait().value, 11.02, 0.25);
    const double mean = rr.meanWait().value;
    // Below the mean RR has more mass; above it FCFS does.
    EXPECT_GT(rr.waitHistogram.cdf(mean - 3.0),
              fcfs.waitHistogram.cdf(mean - 3.0) + 0.1);
    EXPECT_LT(rr.waitHistogram.cdf(mean + 3.0),
              fcfs.waitHistogram.cdf(mean + 3.0) - 0.1);
}

} // namespace
} // namespace busarb
