/**
 * @file
 * Property grid: systematic invariants across protocol x system size x
 * offered load. Each grid point checks the universal bus invariants
 * (utilization, minimum wait, throughput accounting) plus the fairness
 * class the protocol belongs to.
 */

#include <algorithm>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "stats/autocorrelation.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

struct GridCase
{
    const char *key;
    int n;
    double load;
};

void
PrintTo(const GridCase &c, std::ostream *os)
{
    *os << c.key << "/n" << c.n << "/load" << c.load;
}

class ProtocolGridTest : public ::testing::TestWithParam<GridCase>
{
};

TEST_P(ProtocolGridTest, UniversalInvariantsHold)
{
    const GridCase c = GetParam();
    ScenarioConfig config = equalLoadScenario(c.n, c.load, 1.0);
    config.numBatches = 4;
    config.batchSize = 1000;
    config.warmup = 1000;
    const auto result = runScenario(config, protocolByKey(c.key));

    // Utilization can never exceed 1 and must match offered load when
    // unsaturated (closed-model self-throttling keeps it slightly
    // below the open-loop value).
    const double util = result.utilization().value;
    EXPECT_LE(util, 1.0 + 1e-9);
    if (c.load <= 0.5) {
        EXPECT_NEAR(util, c.load, 0.10 * c.load + 0.02);
    }
    if (c.load >= 3.0) {
        EXPECT_GT(util, 0.99);
    }

    // Throughput equals utilization for unit transactions (up to the
    // transaction straddling each batch boundary, whose busy time and
    // completion land in different batches).
    EXPECT_NEAR(result.throughput().value, util, 2e-3);

    // Every request pays at least its own service time; an unsaturated
    // bus also exposes the 0.5 arbitration.
    const double wait = result.meanWait().value;
    EXPECT_GE(wait, 1.0);
    if (c.load <= 0.5) {
        EXPECT_GE(wait, 1.49);
    }
    // And never more than a full round of the whole system plus slack.
    EXPECT_LE(wait, 2.0 * c.n + 2.0);

    // Per-agent throughputs sum to the total.
    double sum = 0.0;
    for (AgentId a = 1; a <= c.n; ++a)
        sum += result.agentThroughput(a).value;
    EXPECT_NEAR(sum, result.throughput().value, 1e-9);
}

TEST_P(ProtocolGridTest, FairnessClassHolds)
{
    const GridCase c = GetParam();
    ScenarioConfig config = equalLoadScenario(c.n, c.load, 1.0);
    config.numBatches = 4;
    config.batchSize = 1500;
    config.warmup = 1500;
    const auto result = runScenario(config, protocolByKey(c.key));
    const double ratio =
        result.throughputRatio(c.n, 1).value;

    const std::string key = c.key;
    const bool perfectly_fair =
        key == "rr1" || key == "rr2" || key == "rr3" ||
        key == "central-rr" || key == "hybrid" || key == "fcfs2" ||
        key == "central-fcfs" || key == "ticket";
    if (perfectly_fair) {
        EXPECT_NEAR(ratio, 1.0, 0.13) << key;
    } else if (key == "fcfs1") {
        // Mild bias toward high identities, bounded (Table 4.1).
        EXPECT_GT(ratio, 0.85);
        EXPECT_LT(ratio, 1.25);
    }
    // aap1/aap2/fixed have no fairness bound at saturation.
    if (c.load <= 0.5) {
        // Everyone is fair when the bus is idle enough.
        EXPECT_NEAR(ratio, 1.0, 0.15) << key;
    }
}

std::vector<GridCase>
makeGrid()
{
    std::vector<GridCase> cases;
    for (const char *key :
         {"rr1", "rr3", "fcfs1", "fcfs2", "hybrid", "aap1", "aap2",
          "central-rr", "central-fcfs", "ticket", "fixed"}) {
        for (int n : {5, 16}) {
            for (double load : {0.4, 1.0, 3.0}) {
                // Fixed priority starves agent 1 outright at high load;
                // its ratio is checked in dedicated tests instead.
                if (std::string(key) == "fixed" && load > 1.0)
                    continue;
                cases.push_back(GridCase{key, n, load});
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolGridTest, ::testing::ValuesIn(makeGrid()),
    [](const ::testing::TestParamInfo<GridCase> &info) {
        std::ostringstream os;
        os << info.param.key << "_n" << info.param.n << "_l"
           << static_cast<int>(info.param.load * 10);
        std::string name = os.str();
        std::replace(name.begin(), name.end(), '-', '_');
        return name;
    });

TEST(BatchAdequacyTest, PaperBatchSizesGiveUncorrelatedBatches)
{
    // With 8000-completion batches (the paper's size) the per-batch
    // mean waits must be essentially uncorrelated. Use 20 batches for a
    // meaningful lag-1 estimate.
    ScenarioConfig config = equalLoadScenario(10, 2.0, 1.0);
    config.numBatches = 20;
    config.batchSize = 8000;
    config.warmup = 8000;
    const auto result = runScenario(config, protocolByKey("rr1"));
    std::vector<double> means;
    for (const auto &b : result.batches)
        means.push_back(b.waitMean);
    const auto diag = diagnoseBatches(means, 0.5);
    EXPECT_TRUE(diag.adequate) << "lag-1 = " << diag.lag1;
}

} // namespace
} // namespace busarb
