/**
 * @file
 * Protocol fuzzing: every protocol in the registry is wrapped in the
 * contract-checking decorator and driven through the full bus engine
 * with randomized workloads (mixed loads, CVs, agent counts, multiple
 * outstanding requests). Any lifecycle violation, ghost winner, double
 * service, or livelock panics and fails the test.
 */

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "bus/protocol_checker.hh"
#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "random/rng.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

class ProtocolFuzzTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ProtocolFuzzTest, RandomWorkloadsRespectTheContract)
{
    const std::string key = GetParam();
    Rng rng(0xF00Du + std::hash<std::string>{}(key));
    for (int trial = 0; trial < 6; ++trial) {
        const int n = 2 + static_cast<int>(rng.below(12));
        // Per-agent load 0.15 .. 0.75 across trials (saturates larger
        // systems while staying valid for tiny ones).
        const double per_agent = 0.15 + 0.12 * static_cast<double>(trial);
        const double cv =
            (trial % 3 == 0) ? 0.0 : (trial % 3 == 1) ? 0.5 : 1.0;
        ScenarioConfig config = equalLoadScenario(n, per_agent * n, cv);
        // Heterogeneous think times to vary interleavings.
        for (std::size_t i = 0; i < config.agents.size(); ++i) {
            config.agents[i].meanInterrequest *=
                0.5 + 0.1 * static_cast<double>(i % 7);
            if (key == "fcfs2" && i % 3 == 0)
                config.agents[i].maxOutstanding = 2;
        }
        config.numBatches = 2;
        config.batchSize = 600;
        config.warmup = 200;
        config.seed = rng.next();
        auto base_factory = protocolByKey(key);
        const auto result = runScenario(config, [&] {
            return std::make_unique<ProtocolChecker>(base_factory());
        });
        // Sanity on top of the checker: measurement completed.
        EXPECT_EQ(result.batches.size(), 2u) << key << " trial " << trial;
        EXPECT_GT(result.throughput().value, 0.0);
        EXPECT_LE(result.utilization().value, 1.0 + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolFuzzTest,
    ::testing::Values("rr1", "rr2", "rr3", "fcfs1", "fcfs2", "hybrid",
                      "fixed", "aap1", "aap2", "central-rr",
                      "central-fcfs", "ticket"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

class PriorityFuzzTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PriorityFuzzTest, MixedPriorityTrafficRespectsTheContract)
{
    // Every priority-capable configuration, fuzzed with a mix of
    // urgent and normal requests under the checking decorator.
    const std::string spec = GetParam();
    Rng rng(0xBEEF + std::hash<std::string>{}(spec));
    for (int trial = 0; trial < 4; ++trial) {
        const int n = 3 + static_cast<int>(rng.below(8));
        ScenarioConfig config =
            equalLoadScenario(n, (0.2 + 0.2 * trial) * n,
                              trial % 2 == 0 ? 1.0 : 0.5);
        for (std::size_t i = 0; i < config.agents.size(); ++i)
            config.agents[i].priorityFraction = 0.1 + 0.2 * (i % 3);
        config.numBatches = 2;
        config.batchSize = 600;
        config.warmup = 200;
        config.seed = rng.next();
        auto base = protocolFromSpec(spec);
        const auto result = runScenario(config, [&] {
            return std::make_unique<ProtocolChecker>(base());
        });
        EXPECT_GT(result.throughput().value, 0.0) << spec;
        EXPECT_LE(result.utilization().value, 1.0 + 1e-9) << spec;
    }
}

INSTANTIATE_TEST_SUITE_P(
    PriorityCapable, PriorityFuzzTest,
    ::testing::Values("rr1:priority",
                      "rr1:priority,rr-within-class=false",
                      "fcfs1:priority,counting=matched",
                      "fcfs1:priority,counting=always",
                      "fcfs2:priority,counting=dual",
                      "fcfs2:priority,counting=always,wrap,bits=3",
                      "fixed:priority", "aap1:priority",
                      "aap2:priority"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == ':' || c == ',' || c == '=' || c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace busarb
