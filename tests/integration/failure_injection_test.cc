/**
 * @file
 * Failure injection: agents dropping off the bus mid-run. A correct
 * arbitration protocol must keep serving the survivors — dead agents
 * must not wedge a batch, a fairness release, the recorded-winner
 * register, or the FCFS counters.
 */

#include <gtest/gtest.h>

#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

class DropoutTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DropoutTest, SurvivorsKeepFullService)
{
    // Half the agents die after 300 requests each; the run must still
    // complete and the survivors must absorb the freed bandwidth.
    ScenarioConfig config = equalLoadScenario(8, 4.0, 1.0);
    for (std::size_t i = 0; i < config.agents.size(); i += 2)
        config.agents[i].stopAfterRequests = 300;
    config.numBatches = 4;
    config.batchSize = 1200;
    config.warmup = 1200;
    const auto result = runScenario(config, protocolByKey(GetParam()));
    ASSERT_EQ(result.batches.size(), 4u);
    // By the last batch the odd agents carry the whole load.
    const auto &last = result.batches.back();
    std::uint64_t dead_completions = 0;
    std::uint64_t live_completions = 0;
    for (std::size_t i = 0; i < last.completions.size(); ++i)
        ((i % 2 == 0) ? dead_completions : live_completions) +=
            last.completions[i];
    EXPECT_EQ(dead_completions, 0u) << GetParam();
    EXPECT_GT(live_completions, 0u);
    // The bus stays saturated: four survivors at per-agent load 0.5
    // offer 2.0 total.
    EXPECT_GT(last.utilization, 0.95) << GetParam();
}

TEST_P(DropoutTest, LoneSurvivorIsStillServed)
{
    // Everyone but agent 1 dies early: the protocol must not require
    // the dead agents' participation (e.g. for a fairness release or
    // the round-robin wrap).
    ScenarioConfig config = equalLoadScenario(6, 3.0, 1.0);
    for (std::size_t i = 1; i < config.agents.size(); ++i)
        config.agents[i].stopAfterRequests = 50;
    config.numBatches = 3;
    config.batchSize = 500;
    config.warmup = 300;
    const auto result = runScenario(config, protocolByKey(GetParam()));
    const auto &last = result.batches.back();
    EXPECT_GT(last.completions[0], 0u) << GetParam();
    // A lone closed agent cycles think 1 + wait 1.5: half the time on
    // the bus.
    EXPECT_NEAR(last.utilization, 0.4, 0.15) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, DropoutTest,
                         ::testing::Values("rr1", "rr2", "rr3", "fcfs1",
                                           "fcfs2", "hybrid", "aap1",
                                           "aap2", "central-rr",
                                           "central-fcfs", "ticket"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (auto &c : name) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return name;
                         });

} // namespace
} // namespace busarb
