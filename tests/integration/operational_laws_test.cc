/**
 * @file
 * Operational laws: model-independent identities that must hold for
 * any correct closed-system simulation (Denning & Buzen style), plus
 * long-run stability checks.
 */

#include <gtest/gtest.h>

#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

TEST(OperationalLawsTest, LittlesLawAcrossTheClosedSystem)
{
    // N = X * (R + Z): agents = throughput * (response + think). Holds
    // for every protocol, load, and CV, independent of distributional
    // assumptions.
    for (const char *key : {"rr1", "fcfs1", "aap1", "hybrid"}) {
        for (double load : {0.5, 1.5, 4.0}) {
            ScenarioConfig config = equalLoadScenario(10, load, 1.0);
            config.numBatches = 5;
            config.batchSize = 2000;
            config.warmup = 2000;
            const auto result = runScenario(config, protocolByKey(key));
            const double x = result.throughput().value;
            const double r = result.meanWait().value;
            const double z = config.agents[0].meanInterrequest;
            EXPECT_NEAR(10.0, x * (r + z), 10.0 * 0.02)
                << key << " load " << load;
        }
    }
}

TEST(OperationalLawsTest, UtilizationLawHolds)
{
    // U = X * S with S = 1 (deterministic service).
    ScenarioConfig config = equalLoadScenario(16, 1.2, 0.5);
    config.numBatches = 5;
    config.batchSize = 2000;
    config.warmup = 2000;
    const auto result = runScenario(config, protocolByKey("fcfs2"));
    EXPECT_NEAR(result.utilization().value,
                result.throughput().value * 1.0, 3e-3);
}

TEST(OperationalLawsTest, LittlesLawWithLongerTransactions)
{
    // Same identity with a 2.5-unit transaction time.
    ScenarioConfig config = equalLoadScenario(8, 1.5, 1.0);
    config.bus.transactionTime = 2.5;
    // Re-derive think times for the longer service.
    for (auto &a : config.agents)
        a.meanInterrequest = interrequestForLoad(1.5 / 8.0, 2.5);
    config.numBatches = 5;
    config.batchSize = 1500;
    config.warmup = 1500;
    const auto result = runScenario(config, protocolByKey("rr1"));
    const double x = result.throughput().value;
    const double r = result.meanWait().value;
    const double z = config.agents[0].meanInterrequest;
    EXPECT_NEAR(8.0, x * (r + z), 8.0 * 0.02);
    // And the utilization law with S = 2.5.
    EXPECT_NEAR(result.utilization().value, x * 2.5, 6e-3);
}

TEST(LongRunStabilityTest, SixtyFourAgentsHundredThousandCompletions)
{
    // A long saturated run: estimates stay tight and consistent.
    ScenarioConfig config = equalLoadScenario(64, 2.0, 1.0);
    config.numBatches = 10;
    config.batchSize = 10000;
    config.warmup = 10000;
    const auto result = runScenario(config, protocolByKey("fcfs1"));
    EXPECT_NEAR(result.utilization().value, 1.0, 1e-3);
    // Saturated asymptote: W ~ N - Z with Z = 31.
    const double z = config.agents[0].meanInterrequest;
    EXPECT_NEAR(result.meanWait().value, 64.0 - z, 0.5);
    // Confidence intervals should be well under 1% of the mean.
    EXPECT_LT(result.meanWait().halfWidth,
              0.01 * result.meanWait().value);
}

} // namespace
} // namespace busarb
