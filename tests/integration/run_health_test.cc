/**
 * @file
 * End-to-end pins for the run-health telemetry: the convergence monitor
 * must pass a paper-spec run (Section 4.1's 10 batches x 8000
 * completions, 90% Student-t intervals "within 5%") and must flag a
 * deliberately starved one (tiny batches on a high-CV workload). Also
 * pins the JobPool-facing determinism of the snapshot stream and the
 * profiler's deterministic counters.
 */

#include <cstddef>
#include <cstdint>

#include <gtest/gtest.h>

#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "sim/profiling.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

TEST(RunHealthIntegrationTest, PaperSpecRunConverges)
{
    // The paper's measurement recipe on its Table 4.1 base point
    // (10 agents, total load 2.0): the monitor must agree that this is
    // an adequately converged run.
    ScenarioConfig config = equalLoadScenario(10, 2.0, 1.0);
    config.numBatches = 10;
    config.batchSize = 8000;
    config.warmup = 8000;
    config.monitorHealth = true;
    const ScenarioResult r = runScenario(config, protocolFromSpec("rr1"));
    ASSERT_TRUE(r.health.enabled);
    EXPECT_EQ(r.health.batches, 10u);
    EXPECT_EQ(r.health.verdict, ConvergenceVerdict::kConverged)
        << "paper-spec run judged " << r.health.verdictLabel()
        << " (rel_hw=" << r.health.waitRelHalfWidth
        << ", lag1=" << r.health.waitLag1 << ")";
    // "Within 5%" with a wide margin at this length.
    EXPECT_LE(r.health.waitRelHalfWidth, 0.05);
}

TEST(RunHealthIntegrationTest, StarvedRunIsFlagged)
{
    // Deliberately inadequate: 5 batches of 50 completions on a CV=3
    // arrival process. The interval cannot tighten to 5% at this
    // length; the monitor must refuse to call it converged.
    ScenarioConfig config = equalLoadScenario(10, 2.0, 3.0);
    config.numBatches = 5;
    config.batchSize = 50;
    config.warmup = 1000;
    config.monitorHealth = true;
    const ScenarioResult r = runScenario(config, protocolFromSpec("rr1"));
    ASSERT_TRUE(r.health.enabled);
    EXPECT_NE(r.health.verdict, ConvergenceVerdict::kConverged)
        << "starved run judged converged (rel_hw="
        << r.health.waitRelHalfWidth << ")";
    EXPECT_GT(r.health.waitRelHalfWidth, 0.05);
}

TEST(RunHealthIntegrationTest, DisabledMonitorLeavesResultEmpty)
{
    ScenarioConfig config = equalLoadScenario(4, 1.0, 1.0);
    config.numBatches = 2;
    config.batchSize = 100;
    config.warmup = 0;
    const ScenarioResult r = runScenario(config, protocolFromSpec("rr1"));
    EXPECT_FALSE(r.health.enabled);
    EXPECT_TRUE(r.healthSnapshots.empty());
    EXPECT_FALSE(r.profile.enabled);
    EXPECT_EQ(r.profile.eventsExecuted, 0u);
}

TEST(RunHealthIntegrationTest, SnapshotsAndMetricsAreDeterministic)
{
    // The property check_determinism.sh verifies across processes,
    // pinned here at the library layer: identical configs produce
    // byte-identical health snapshot streams and identical health.*
    // metric values.
    ScenarioConfig config = equalLoadScenario(6, 1.5, 1.0);
    config.numBatches = 4;
    config.batchSize = 300;
    config.warmup = 300;
    config.healthSnapshots = true;
    config.monitorHealth = true;
    const ScenarioResult a = runScenario(config, protocolFromSpec("rr1"));
    const ScenarioResult b = runScenario(config, protocolFromSpec("rr1"));
    ASSERT_FALSE(a.healthSnapshots.empty());
    EXPECT_EQ(a.healthSnapshots, b.healthSnapshots);
    EXPECT_EQ(a.health.verdict, b.health.verdict);
    EXPECT_EQ(a.health.batches, 4u);
    // One snapshot line per batch.
    std::size_t lines = 0;
    for (char c : a.healthSnapshots)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 4u);
}

TEST(RunHealthIntegrationTest, ProfilerCountersMatchRun)
{
    ScenarioConfig config = equalLoadScenario(6, 1.5, 1.0);
    config.numBatches = 3;
    config.batchSize = 200;
    config.warmup = 200;
    config.profile = true;
    const ScenarioResult a = runScenario(config, protocolFromSpec("rr1"));
    const ScenarioResult b = runScenario(config, protocolFromSpec("rr1"));
    // Simulation-derived counters are deterministic run to run (the
    // wall-clock fields are host noise and deliberately not compared).
    EXPECT_EQ(a.profile.eventsExecuted, b.profile.eventsExecuted);
    EXPECT_EQ(a.profile.arbitrationPasses, b.profile.arbitrationPasses);
    EXPECT_EQ(a.profile.retryPasses, b.profile.retryPasses);
    EXPECT_GT(a.profile.eventsExecuted, 0u);
    // At least warmup 200 + 3 x 200 measured completions.
    EXPECT_GE(a.profile.completions, 800u);
    EXPECT_EQ(a.profile.completions, b.profile.completions);
#if BUSARB_PROFILING_ENABLED
    EXPECT_TRUE(a.profile.enabled);
    EXPECT_GT(a.profile.maxQueueDepth, 0u);
    std::uint64_t histogram_total = 0;
    for (std::uint64_t bucket : a.profile.queueDepthLog2)
        histogram_total += bucket;
    EXPECT_GT(histogram_total, 0u);
#endif
}

} // namespace
} // namespace busarb
