/**
 * @file
 * Tests for the ON/OFF modulated think process.
 */

#include <vector>

#include <gtest/gtest.h>

#include "stats/autocorrelation.hh"
#include "stats/welford.hh"
#include "workload/on_off_process.hh"

namespace busarb {
namespace {

TEST(OnOffProcessTest, LongRunMeanMatchesFormula)
{
    OnOffParams params;
    params.meanOn = 0.5;
    params.meanOff = 8.0;
    params.burstLength = 6.0;
    params.gapLength = 2.0;
    OnOffProcess process(params);
    Rng rng(101);
    RunningStats rs;
    for (int i = 0; i < 400000; ++i)
        rs.add(process.sample(rng));
    EXPECT_NEAR(rs.mean(), process.mean(), 0.03 * process.mean());
    // Formula: p = 6/8; mean = 0.75*0.5 + 0.25*8 = 2.375.
    EXPECT_DOUBLE_EQ(process.mean(), 2.375);
}

TEST(OnOffProcessTest, MarginalCvMatchesMixtureFormula)
{
    OnOffParams params;
    params.meanOn = 0.2;
    params.meanOff = 10.0;
    params.burstLength = 8.0;
    params.gapLength = 2.0;
    OnOffProcess process(params);
    Rng rng(107);
    RunningStats rs;
    for (int i = 0; i < 600000; ++i)
        rs.add(process.sample(rng));
    const double realized = rs.stddev() / rs.mean();
    EXPECT_NEAR(realized, process.cv(), 0.05 * process.cv());
    EXPECT_GT(process.cv(), 1.0); // burstier than exponential
}

TEST(OnOffProcessTest, SamplesArePositivelyCorrelated)
{
    // The whole point: unlike every renewal distribution in the
    // library, successive think times are correlated.
    OnOffParams params;
    params.meanOn = 0.2;
    params.meanOff = 10.0;
    params.burstLength = 10.0;
    params.gapLength = 4.0;
    OnOffProcess process(params);
    Rng rng(109);
    std::vector<double> samples;
    for (int i = 0; i < 100000; ++i)
        samples.push_back(process.sample(rng));
    EXPECT_GT(autocorrelation(samples, 1), 0.15);

    // Reference: the iid hyperexponential with the same CV has none.
    HyperExponentialDistribution h2(process.mean(), process.cv());
    std::vector<double> iid;
    Rng rng2(109);
    for (int i = 0; i < 100000; ++i)
        iid.push_back(h2.sample(rng2));
    EXPECT_NEAR(autocorrelation(iid, 1), 0.0, 0.03);
}

TEST(OnOffProcessTest, DegenerateSingleStateIsExponential)
{
    OnOffParams params;
    params.meanOn = 2.0;
    params.meanOff = 2.0; // identical phases
    params.burstLength = 1.0;
    params.gapLength = 1.0;
    OnOffProcess process(params);
    EXPECT_DOUBLE_EQ(process.mean(), 2.0);
    EXPECT_NEAR(process.cv(), 1.0, 1e-9);
}

TEST(OnOffProcessTest, CloneStartsFresh)
{
    OnOffParams params;
    OnOffProcess process(params);
    const auto copy = process.clone();
    EXPECT_EQ(copy->describe(), process.describe());
    EXPECT_DOUBLE_EQ(copy->mean(), process.mean());
}

TEST(OnOffProcessDeathTest, BadParameters)
{
    OnOffParams bad;
    bad.meanOn = 0.0;
    EXPECT_DEATH(OnOffProcess{bad}, "meanOn");
    OnOffParams bad2;
    bad2.burstLength = 0.5;
    EXPECT_DEATH(OnOffProcess{bad2}, "burstLength");
}

} // namespace
} // namespace busarb
