/**
 * @file
 * Unit tests for agent traits, scenario builders, and the closed-loop
 * agent.
 */

#include <memory>

#include <gtest/gtest.h>

#include "baseline/fixed_priority.hh"
#include "support/schedule_recorder.hh"
#include "workload/closed_agent.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

constexpr Tick U = kTicksPerUnit;

TEST(AgentTraitsTest, LoadConversionsRoundTrip)
{
    for (double load : {0.025, 0.1, 0.25, 0.5, 0.752, 0.9}) {
        const double t = interrequestForLoad(load);
        EXPECT_NEAR(loadForInterrequest(t), load, 1e-12) << load;
    }
}

TEST(AgentTraitsTest, KnownValues)
{
    // Per-agent load 0.2 -> think 4; load 0.5 -> think 1.
    EXPECT_DOUBLE_EQ(interrequestForLoad(0.2), 4.0);
    EXPECT_DOUBLE_EQ(interrequestForLoad(0.5), 1.0);
    EXPECT_DOUBLE_EQ(loadForInterrequest(0.0), 1.0);
    // Non-unit transaction time scales the think time.
    EXPECT_DOUBLE_EQ(interrequestForLoad(0.5, 2.0), 2.0);
}

TEST(ScenarioTest, EqualLoadSplitsTotalEvenly)
{
    const auto config = equalLoadScenario(10, 2.0, 1.0);
    EXPECT_EQ(config.numAgents, 10);
    ASSERT_EQ(config.agents.size(), 10u);
    for (const auto &a : config.agents) {
        EXPECT_DOUBLE_EQ(a.meanInterrequest, 4.0); // load 0.2 each
        EXPECT_DOUBLE_EQ(a.cv, 1.0);
    }
    EXPECT_NEAR(config.totalOfferedLoad(), 2.0, 1e-12);
}

TEST(ScenarioTest, UnequalLoadScalesAgentOne)
{
    const auto config = unequalLoadScenario(30, 0.02, 4.0, 1.0);
    EXPECT_DOUBLE_EQ(
        loadForInterrequest(config.agents[0].meanInterrequest), 0.08);
    EXPECT_DOUBLE_EQ(
        loadForInterrequest(config.agents[1].meanInterrequest), 0.02);
    EXPECT_NEAR(config.totalOfferedLoad(), 0.02 * 29 + 0.08, 1e-12);
}

TEST(ScenarioTest, WorstCaseUsesPaperConstants)
{
    const auto config = worstCaseRrScenario(10, 0.0);
    EXPECT_DOUBLE_EQ(config.agents[0].meanInterrequest, 9.5);
    for (std::size_t i = 1; i < config.agents.size(); ++i)
        EXPECT_DOUBLE_EQ(config.agents[i].meanInterrequest, 6.4);
    EXPECT_DOUBLE_EQ(config.agents[0].cv, 0.0);
}

TEST(ScenarioTest, OverlapAppliesToAllAgents)
{
    auto config = equalLoadScenario(4, 1.0, 1.0);
    setOverlapLimit(config, 6.0);
    for (const auto &a : config.agents)
        EXPECT_DOUBLE_EQ(a.overlapLimit, 6.0);
}

TEST(ScenarioDeathTest, InvalidParameters)
{
    EXPECT_DEATH(equalLoadScenario(10, 10.0), "in \\(0, 1\\)");
    EXPECT_DEATH(unequalLoadScenario(10, 0.3, 4.0), "out of range");
    EXPECT_DEATH(worstCaseRrScenario(3, 0.0), "n - 3.6");
}

/** ThinkSink that records samples. */
struct ThinkRecorder : ThinkSink
{
    std::vector<double> samples;

    void
    recordThink(AgentId, double think) override
    {
        samples.push_back(think);
    }
};

TEST(ClosedAgentTest, DeterministicCycleTiming)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 2, {});
    test::ScheduleRecorder recorder;
    bus.setObserver(&recorder);
    AgentTraits traits;
    traits.meanInterrequest = 2.0;
    traits.cv = 0.0;
    ClosedAgent agent(queue, bus, 1, traits, Rng(1));
    struct Fanout : BusObserver
    {
        test::ScheduleRecorder *rec = nullptr;
        ClosedAgent *agentPtr = nullptr;
        void
        onServiceStart(const Request &r, Tick t) override
        {
            rec->onServiceStart(r, t);
        }
        void
        onServiceEnd(const Request &r, Tick t) override
        {
            rec->onServiceEnd(r, t);
            agentPtr->onServiceEnd(t);
        }
    } fanout;
    fanout.rec = &recorder;
    fanout.agentPtr = &agent;
    bus.setObserver(&fanout);
    agent.start();
    queue.run(unitsToTicks(11.0));
    // Cycle: think 2, arb 0.5, service 1 -> period 3.5 starting at 2.
    ASSERT_GE(recorder.grants().size(), 3u);
    EXPECT_EQ(recorder.grants()[0].start, 2 * U + U / 2);
    EXPECT_EQ(recorder.grants()[1].start, 2 * U + U / 2 + U + 2 * U +
                                              U / 2);
}

TEST(ClosedAgentTest, ThinkTimesReportedToSink)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 2, {});
    AgentTraits traits;
    traits.meanInterrequest = 1.5;
    traits.cv = 0.0;
    ClosedAgent agent(queue, bus, 1, traits, Rng(1));
    ThinkRecorder sink;
    agent.setThinkSink(&sink);
    agent.start();
    queue.run(unitsToTicks(1.0));
    ASSERT_EQ(sink.samples.size(), 1u);
    EXPECT_DOUBLE_EQ(sink.samples[0], 1.5);
}

TEST(ClosedAgentTest, MaxOutstandingIssuesThatManyTokens)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 2, {});
    AgentTraits traits;
    traits.meanInterrequest = 1.0;
    traits.cv = 0.0;
    traits.maxOutstanding = 3;
    ClosedAgent agent(queue, bus, 1, traits, Rng(1));
    agent.start();
    queue.run(unitsToTicks(1.0)); // all three tokens issue at t = 1
    EXPECT_EQ(agent.issued(), 3u);
}

TEST(ClosedAgentTest, PriorityFractionZeroAndOne)
{
    EventQueue queue;
    Bus bus(queue,
            std::make_unique<FixedPriorityProtocol>(/*priority=*/true), 2,
            {});
    struct PriorityCounter : BusObserver
    {
        int priority = 0;
        int normal = 0;
        void
        onServiceStart(const Request &r, Tick) override
        {
            (r.priority ? priority : normal) += 1;
        }
        void onServiceEnd(const Request &, Tick) override {}
    } counter;
    bus.setObserver(&counter);
    AgentTraits traits;
    traits.meanInterrequest = 1.0;
    traits.cv = 0.0;
    traits.priorityFraction = 1.0;
    ClosedAgent agent(queue, bus, 1, traits, Rng(1));
    agent.start();
    queue.run(unitsToTicks(3.0));
    EXPECT_GT(counter.priority, 0);
    EXPECT_EQ(counter.normal, 0);
}

TEST(ClosedAgentDeathTest, InvalidTraits)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 2, {});
    AgentTraits traits;
    traits.maxOutstanding = 0;
    EXPECT_DEATH(ClosedAgent(queue, bus, 1, traits, Rng(1)),
                 "maxOutstanding");
}

} // namespace
} // namespace busarb
