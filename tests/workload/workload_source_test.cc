/**
 * @file
 * End-to-end tests for the workload-source seam: the open-loop Poisson
 * source against the M/D/1-M/M/1 closed forms, the saturation verdict,
 * and trace replay's identical-arrivals guarantee across protocols and
 * queue policies.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "obs/binary_trace.hh"
#include "stats/convergence.hh"
#include "stats/open_queue.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

ScenarioConfig
openScenario(const std::string &spec)
{
    ScenarioConfig config = equalLoadScenario(4, 1.0, 1.0);
    config.workloadSpec = spec;
    config.numBatches = 8;
    config.batchSize = 4000;
    config.warmup = 4000;
    return config;
}

TEST(OpenWorkloadTest, PoissonWaitMatchesMd1ClosedForm)
{
    // Superposed Poisson arrivals to a deterministic-service bus with
    // no exposed arbitration are exactly M/D/1; the closed form is an
    // equality, not a bound. M/M/1 brackets it from above.
    ScenarioConfig config = openScenario("open:rate=0.6,dist=exp");
    config.bus.arbitrationOverhead = 0.0;
    const double s = config.bus.transactionTime;
    const ScenarioResult result =
        runScenario(config, makeRoundRobinFactory());

    const OpenQueueResult det = md1(0.6, s);
    const OpenQueueResult expo = mm1(0.6, s);
    const double w = result.meanWait().value;
    EXPECT_NEAR(w, det.meanResponse, 0.1);
    EXPECT_LT(w, expo.meanResponse);
    EXPECT_NEAR(result.utilization().value, det.utilization, 0.02);
    EXPECT_FALSE(result.workload.saturated);
}

TEST(OpenWorkloadTest, OfferedAndCarriedRatesAgreeWhenStable)
{
    const ScenarioResult result = runScenario(
        openScenario("open:rate=0.7"), makeRoundRobinFactory());
    EXPECT_TRUE(result.workload.openLoop);
    EXPECT_NEAR(result.workload.offeredRate, 0.7, 0.05);
    EXPECT_NEAR(result.workload.carriedRate,
                result.workload.offeredRate, 0.05);
    // A stable queue keeps its backlog near zero.
    EXPECT_LT(result.workload.finalBacklog, 200u);
}

TEST(OpenWorkloadTest, OverloadRaisesTheSaturationVerdict)
{
    // rate > 1/S: arrivals outrun the bus, the backlog grows without
    // bound, and the run must say so instead of reporting a converged
    // estimate of a divergent quantity.
    ScenarioConfig config = openScenario("open:rate=1.3");
    config.monitorHealth = true;
    const ScenarioResult result =
        runScenario(config, makeRoundRobinFactory());
    EXPECT_TRUE(result.workload.saturated);
    EXPECT_GT(result.workload.finalBacklog, 1000u);
    EXPECT_EQ(result.health.verdict, ConvergenceVerdict::kSaturated);
    // Carried load pins at the service capacity.
    EXPECT_NEAR(result.workload.carriedRate, 1.0, 0.05);
    EXPECT_GT(result.workload.offeredRate,
              result.workload.carriedRate);
}

TEST(OpenWorkloadTest, StableRunsKeepTheMeasuredVerdict)
{
    ScenarioConfig config = openScenario("open:rate=0.5");
    config.monitorHealth = true;
    const ScenarioResult result =
        runScenario(config, makeRoundRobinFactory());
    EXPECT_FALSE(result.workload.saturated);
    EXPECT_NE(result.health.verdict, ConvergenceVerdict::kSaturated);
}

/** Writes a text trace covering `requests` posts over 4 agents. */
class TempTraceFile
{
  public:
    explicit TempTraceFile(int requests)
    {
        path_ = testing::TempDir() + "workload_source_trace.txt";
        std::ofstream out(path_);
        double t = 0.0;
        for (int i = 0; i < requests; ++i) {
            t += 0.4 + 0.1 * (i % 3);
            out << t << ' ' << (1 + i % 4) << '\n';
        }
    }

    ~TempTraceFile() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

ScenarioConfig
traceScenario(const TempTraceFile &trace)
{
    ScenarioConfig config = equalLoadScenario(4, 1.0, 1.0);
    config.workloadSpec = "trace:file=" + trace.path();
    config.numBatches = 4;
    config.batchSize = 500;
    config.warmup = 500;
    config.captureBinaryTrace = true;
    return config;
}

/** Extract the (tick, agent) arrival schedule from a captured run. */
std::vector<std::pair<Tick, AgentId>>
arrivalSchedule(const ScenarioResult &result)
{
    std::vector<std::pair<Tick, AgentId>> posts;
    for (const auto &chunk : readTraceChunks(result.binaryTrace)) {
        for (const auto &event : chunk.events) {
            if (event.kind == TraceEventKind::kRequestPosted)
                posts.emplace_back(event.tick, event.agent);
        }
    }
    return posts;
}

TEST(TraceWorkloadTest, ReplayDrivesIdenticalArrivalsIntoAnyProtocol)
{
    // The whole point of record/replay: the arrival schedule is a
    // property of the trace, not of the protocol under test.
    TempTraceFile trace(4000);
    const ScenarioResult rr =
        runScenario(traceScenario(trace), makeRoundRobinFactory());
    const ScenarioResult fcfs =
        runScenario(traceScenario(trace), makeFcfsFactory());

    const auto rr_posts = arrivalSchedule(rr);
    const auto fcfs_posts = arrivalSchedule(fcfs);
    ASSERT_GT(rr_posts.size(), 2000u);
    const std::size_t common =
        std::min(rr_posts.size(), fcfs_posts.size());
    for (std::size_t i = 0; i < common; ++i)
        ASSERT_EQ(rr_posts[i], fcfs_posts[i]) << "post " << i;
    // The runs may stop a few ticks apart, but the schedules can only
    // differ by the tail the shorter run never reached.
    EXPECT_LE(rr_posts.size() > fcfs_posts.size()
                  ? rr_posts.size() - fcfs_posts.size()
                  : fcfs_posts.size() - rr_posts.size(),
              8u);
}

TEST(TraceWorkloadTest, ReplayIsByteIdenticalAcrossRunsAndPolicies)
{
    TempTraceFile trace(4000);
    const auto metrics_csv = [](const ScenarioResult &result) {
        std::ostringstream os;
        result.metrics.writeCsv(os);
        return os.str();
    };

    ScenarioConfig calendar = traceScenario(trace);
    calendar.eventQueuePolicy = EventQueuePolicy::kCalendar;
    ScenarioConfig heap = traceScenario(trace);
    heap.eventQueuePolicy = EventQueuePolicy::kHeap;

    const ScenarioResult a =
        runScenario(calendar, makeRoundRobinFactory());
    const ScenarioResult b =
        runScenario(calendar, makeRoundRobinFactory());
    const ScenarioResult c = runScenario(heap, makeRoundRobinFactory());

    EXPECT_EQ(metrics_csv(a), metrics_csv(b));
    EXPECT_EQ(metrics_csv(a), metrics_csv(c));
    EXPECT_EQ(a.binaryTrace, b.binaryTrace);
    EXPECT_EQ(a.binaryTrace, c.binaryTrace);
}

} // namespace
} // namespace busarb
