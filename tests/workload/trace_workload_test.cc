/**
 * @file
 * Tests for the trace-driven workload.
 */

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/fixed_priority.hh"
#include "support/schedule_recorder.hh"
#include "workload/trace_workload.hh"

namespace busarb {
namespace {

constexpr Tick U = kTicksPerUnit;

TEST(RequestTraceTest, AppendTracksMaxAgent)
{
    RequestTrace trace;
    EXPECT_TRUE(trace.empty());
    trace.append(0, 3);
    trace.append(U, 7);
    trace.append(U, 2, true);
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.maxAgent(), 7);
    EXPECT_TRUE(trace.entries()[2].priority);
}

TEST(RequestTraceTest, ParseRoundTrip)
{
    RequestTrace original;
    original.append(0, 1);
    original.append(unitsToTicks(0.5), 2, true);
    original.append(unitsToTicks(2.25), 3);
    std::stringstream buffer;
    original.write(buffer);
    const RequestTrace parsed = RequestTrace::parse(buffer);
    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < parsed.size(); ++i)
        EXPECT_EQ(parsed.entries()[i], original.entries()[i]) << i;
}

TEST(RequestTraceTest, ParseSkipsCommentsAndBlankLines)
{
    std::istringstream is("# header\n\n0.5 1\n# mid comment\n1.5 2 p\n");
    const RequestTrace trace = RequestTrace::parse(is);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.entries()[0].agent, 1);
    EXPECT_EQ(trace.entries()[1].agent, 2);
    EXPECT_TRUE(trace.entries()[1].priority);
}

TEST(RequestTraceTest, ParseRejectsMalformedInput)
{
    {
        std::istringstream is("1.0\n");
        EXPECT_EXIT(RequestTrace::parse(is),
                    ::testing::ExitedWithCode(1), "missing agent");
    }
    {
        std::istringstream is("1.0 2 x\n");
        EXPECT_EXIT(RequestTrace::parse(is),
                    ::testing::ExitedWithCode(1), "unexpected token");
    }
    {
        std::istringstream is("2.0 1\n1.0 2\n");
        EXPECT_EXIT(RequestTrace::parse(is),
                    ::testing::ExitedWithCode(1), "non-decreasing");
    }
}

TEST(RequestTraceTest, PoissonGeneratorProperties)
{
    const auto trace =
        RequestTrace::poisson(8, /*total_rate=*/2.0, /*length=*/500.0,
                              Rng(42));
    // ~1000 expected arrivals.
    EXPECT_GT(trace.size(), 800u);
    EXPECT_LT(trace.size(), 1200u);
    EXPECT_LE(trace.maxAgent(), 8);
    Tick prev = 0;
    for (const auto &e : trace.entries()) {
        EXPECT_GE(e.when, prev);
        prev = e.when;
        EXPECT_GE(e.agent, 1);
    }
}

TEST(TracePlayerTest, ReplaysExactSchedule)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 4, {});
    test::ScheduleRecorder recorder;
    bus.setObserver(&recorder);
    RequestTrace trace;
    trace.append(0, 2);
    trace.append(unitsToTicks(0.2), 4);
    trace.append(unitsToTicks(5.0), 1);
    TracePlayer player(queue, bus, trace);
    player.start();
    queue.run();
    EXPECT_EQ(player.injected(), 3u);
    ASSERT_EQ(recorder.grants().size(), 3u);
    // Agent 2 arrives alone (pass frozen at t=0), then 4, then 1.
    EXPECT_EQ(recorder.grants()[0].agent, 2);
    EXPECT_EQ(recorder.grants()[1].agent, 4);
    EXPECT_EQ(recorder.grants()[2].agent, 1);
    EXPECT_EQ(recorder.grants()[2].issued, unitsToTicks(5.0));
}

TEST(TracePlayerTest, IdenticalTraceIdenticalArrivalsAcrossProtocols)
{
    // The point of trace-driven evaluation: every protocol sees the
    // exact same arrival sequence.
    const auto trace = RequestTrace::poisson(4, 0.8, 200.0, Rng(7));
    std::vector<Tick> first_issued;
    for (int run = 0; run < 2; ++run) {
        EventQueue queue;
        Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 4, {});
        test::ScheduleRecorder recorder;
        bus.setObserver(&recorder);
        TracePlayer player(queue, bus, trace);
        player.start();
        queue.run();
        std::vector<Tick> issued;
        for (const auto &g : recorder.grants())
            issued.push_back(g.issued);
        std::sort(issued.begin(), issued.end());
        if (run == 0)
            first_issued = issued;
        else
            EXPECT_EQ(issued, first_issued);
    }
}

TEST(TracePlayerDeathTest, RejectsTraceBeyondBusAgents)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 2, {});
    RequestTrace trace;
    trace.append(0, 5);
    EXPECT_DEATH(TracePlayer(queue, bus, trace), "only");
}

} // namespace
} // namespace busarb
