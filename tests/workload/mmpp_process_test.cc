/**
 * @file
 * Tests for the two-state Markov-modulated Poisson arrival process.
 */

#include <gtest/gtest.h>

#include "stats/autocorrelation.hh"
#include "stats/welford.hh"
#include "workload/mmpp_process.hh"

namespace busarb {
namespace {

TEST(MmppProcessTest, LongRunRateMatchesPhaseWeightedAverage)
{
    MmppParams params;
    params.rateOn = 2.0;
    params.rateOff = 0.1;
    params.meanOnTime = 8.0;
    params.meanOffTime = 32.0;
    MmppProcess process(params);
    // Time-average rate: (8*2 + 32*0.1) / 40 = 0.48.
    EXPECT_DOUBLE_EQ(process.averageRate(), 0.48);
    EXPECT_DOUBLE_EQ(process.mean(), 1.0 / 0.48);

    Rng rng(2024);
    RunningStats rs;
    for (int i = 0; i < 400000; ++i)
        rs.add(process.sample(rng));
    EXPECT_NEAR(rs.mean(), process.mean(), 0.05 * process.mean());
}

TEST(MmppProcessTest, BurstierThanPoisson)
{
    MmppParams params;
    params.rateOn = 4.0;
    params.rateOff = 0.05;
    params.meanOnTime = 4.0;
    params.meanOffTime = 40.0;
    MmppProcess process(params);
    Rng rng(7);
    RunningStats rs;
    for (int i = 0; i < 200000; ++i)
        rs.add(process.sample(rng));
    // A rate-modulated point process is over-dispersed: the marginal
    // inter-arrival CV must exceed the Poisson benchmark of 1.
    EXPECT_GT(rs.stddev() / rs.mean(), 1.0);
    EXPECT_GT(process.cv(), 1.0);
}

TEST(MmppProcessTest, EqualRatesDegenerateToPoisson)
{
    MmppParams params;
    params.rateOn = 0.5;
    params.rateOff = 0.5;
    params.meanOnTime = 5.0;
    params.meanOffTime = 5.0;
    MmppProcess process(params);
    EXPECT_DOUBLE_EQ(process.averageRate(), 0.5);
    Rng rng(99);
    RunningStats rs;
    for (int i = 0; i < 300000; ++i)
        rs.add(process.sample(rng));
    EXPECT_NEAR(rs.mean(), 2.0, 0.04);
    EXPECT_NEAR(rs.stddev() / rs.mean(), 1.0, 0.04);
}

TEST(MmppProcessTest, CloneRestartsInInitialState)
{
    MmppParams params;
    params.rateOn = 3.0;
    params.rateOff = 0.2;
    MmppProcess process(params);
    Rng walk(5);
    for (int i = 0; i < 1000; ++i)
        process.sample(walk);

    const auto fresh = process.clone();
    MmppProcess direct(params);
    Rng a(42), b(42);
    for (int i = 0; i < 200; ++i)
        EXPECT_DOUBLE_EQ(fresh->sample(a), direct.sample(b)) << i;
}

} // namespace
} // namespace busarb
