/**
 * @file
 * Test helper that drives an ArbitrationProtocol directly, without the
 * bus engine, so unit tests can control exactly when requests are posted
 * and when arbitration passes run.
 */

#ifndef BUSARB_TESTS_SUPPORT_PROTOCOL_DRIVER_HH
#define BUSARB_TESTS_SUPPORT_PROTOCOL_DRIVER_HH

#include <cstdint>
#include <vector>

#include "bus/protocol.hh"

namespace busarb::test {

/**
 * Drives a protocol through post / arbitrate / serve steps.
 */
class ProtocolDriver
{
  public:
    explicit ProtocolDriver(ArbitrationProtocol &protocol, int num_agents)
        : protocol_(protocol)
    {
        protocol_.reset(num_agents);
    }

    /** Post a request from `agent` at tick `now`. */
    Request
    post(AgentId agent, Tick now, bool priority = false)
    {
        Request req;
        req.agent = agent;
        req.issued = now;
        req.priority = priority;
        req.seq = ++seq_;
        protocol_.requestPosted(req);
        return req;
    }

    /**
     * Run one full arbitration (retrying through kRetry results) and
     * start the winner's tenure.
     *
     * @param now Tick at which the passes begin and resolve.
     * @return The winning agent, or kNoAgent if nothing was pending.
     */
    AgentId
    arbitrateAndServe(Tick now)
    {
        if (!protocol_.wantsPass())
            return kNoAgent;
        for (int attempts = 0; attempts < 4; ++attempts) {
            protocol_.beginPass(now);
            const PassResult result = protocol_.completePass(now);
            switch (result.kind) {
              case PassResult::Kind::kWinner:
                protocol_.tenureStarted(result.winner, now);
                protocol_.tenureEnded(result.winner, now + 1);
                served_.push_back(result.winner);
                retries_ += attempts;
                return result.winner.agent;
              case PassResult::Kind::kRetry:
                continue;
              case PassResult::Kind::kIdle:
                return kNoAgent;
            }
        }
        return kNoAgent;
    }

    /** @return Every request served so far, in order. */
    const std::vector<Request> &served() const { return served_; }

    /** @return Retry passes consumed across all arbitrations. */
    int retries() const { return retries_; }

  private:
    ArbitrationProtocol &protocol_;
    std::uint64_t seq_ = 0;
    std::vector<Request> served_;
    int retries_ = 0;
};

} // namespace busarb::test

#endif // BUSARB_TESTS_SUPPORT_PROTOCOL_DRIVER_HH
