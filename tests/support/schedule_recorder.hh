/**
 * @file
 * Test helper that records the exact service schedule a bus produced, so
 * integration tests can compare protocols one grant at a time.
 */

#ifndef BUSARB_TESTS_SUPPORT_SCHEDULE_RECORDER_HH
#define BUSARB_TESTS_SUPPORT_SCHEDULE_RECORDER_HH

#include <vector>

#include "bus/bus.hh"

namespace busarb::test {

/** One grant in the recorded schedule. */
struct Grant
{
    AgentId agent;
    Tick start;
    Tick end;
    Tick issued;

    bool
    operator==(const Grant &other) const
    {
        return agent == other.agent && start == other.start &&
               end == other.end && issued == other.issued;
    }
};

/**
 * BusObserver that appends every service start/end to a list and can
 * forward to a chained observer.
 */
class ScheduleRecorder : public BusObserver
{
  public:
    explicit ScheduleRecorder(BusObserver *next = nullptr) : next_(next) {}

    void
    onServiceStart(const Request &req, Tick now) override
    {
        grants_.push_back(Grant{req.agent, now, 0, req.issued});
        if (next_ != nullptr)
            next_->onServiceStart(req, now);
    }

    void
    onServiceEnd(const Request &req, Tick now) override
    {
        for (auto it = grants_.rbegin(); it != grants_.rend(); ++it) {
            if (it->agent == req.agent && it->end == 0) {
                it->end = now;
                break;
            }
        }
        if (next_ != nullptr)
            next_->onServiceEnd(req, now);
    }

    /** @return All grants recorded so far. */
    const std::vector<Grant> &grants() const { return grants_; }

    /** @return Just the agent order of the grants. */
    std::vector<AgentId>
    agentOrder() const
    {
        std::vector<AgentId> order;
        order.reserve(grants_.size());
        for (const auto &g : grants_)
            order.push_back(g.agent);
        return order;
    }

  private:
    BusObserver *next_;
    std::vector<Grant> grants_;
};

} // namespace busarb::test

#endif // BUSARB_TESTS_SUPPORT_SCHEDULE_RECORDER_HH
