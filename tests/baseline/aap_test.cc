/**
 * @file
 * Unit tests for the two assured-access baseline protocols (Section 2.2).
 */

#include <vector>

#include <gtest/gtest.h>

#include "baseline/aap_batch.hh"
#include "baseline/aap_futurebus.hh"
#include "support/protocol_driver.hh"

namespace busarb {
namespace {

using test::ProtocolDriver;

// ------------------------------------------------------------- AAP-1

TEST(BatchAapTest, BatchServedInDescendingIdentityOrder)
{
    BatchAapProtocol protocol;
    ProtocolDriver driver(protocol, 8);
    driver.post(3, 0);
    driver.post(7, 0);
    driver.post(5, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 7);
    EXPECT_EQ(driver.arbitrateAndServe(2), 5);
    EXPECT_EQ(driver.arbitrateAndServe(3), 3);
    EXPECT_EQ(protocol.batchesFormed(), 1u);
}

TEST(BatchAapTest, MidBatchArrivalWaitsForNextBatch)
{
    BatchAapProtocol protocol;
    ProtocolDriver driver(protocol, 8);
    driver.post(2, 0);
    driver.post(4, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 4);
    // Agent 8 arrives while the batch {2} is still in progress: even
    // with the highest identity it must wait for the batch to drain.
    driver.post(8, 2);
    EXPECT_EQ(driver.arbitrateAndServe(3), 2);
    EXPECT_EQ(driver.arbitrateAndServe(4), 8);
    EXPECT_EQ(protocol.batchesFormed(), 2u);
}

TEST(BatchAapTest, HighIdentityAlwaysFirstInItsBatch)
{
    // The unfairness the paper measures: agent 8 re-requests during
    // each batch and is served first in every batch, while agent 1
    // waits behind it every time.
    BatchAapProtocol protocol;
    ProtocolDriver driver(protocol, 8);
    driver.post(1, 0);
    driver.post(8, 0);
    std::vector<AgentId> order;
    for (int round = 0; round < 6; ++round) {
        const AgentId winner = driver.arbitrateAndServe(round * 10 + 1);
        order.push_back(winner);
        driver.post(winner, round * 10 + 2); // immediate re-request
    }
    EXPECT_EQ(order,
              (std::vector<AgentId>{8, 1, 8, 1, 8, 1}));
}

TEST(BatchAapTest, NewBatchFormsWhenLastMemberStartsService)
{
    BatchAapProtocol protocol;
    ProtocolDriver driver(protocol, 4);
    driver.post(2, 0);
    // Waiting request posted mid-batch.
    driver.post(3, 1);
    // Batch {2} drains; at its tenure start the new batch {3} forms.
    EXPECT_EQ(driver.arbitrateAndServe(2), 2);
    EXPECT_TRUE(protocol.wantsPass());
    EXPECT_EQ(driver.arbitrateAndServe(3), 3);
}

TEST(BatchAapTest, EmptySystemIdles)
{
    BatchAapProtocol protocol;
    ProtocolDriver driver(protocol, 4);
    EXPECT_EQ(driver.arbitrateAndServe(0), kNoAgent);
    EXPECT_FALSE(protocol.wantsPass());
    EXPECT_EQ(protocol.batchesFormed(), 0u);
}

// ------------------------------------------------------------- AAP-2

TEST(FuturebusAapTest, ServedAgentIsInhibitedUntilRelease)
{
    FuturebusAapProtocol protocol;
    ProtocolDriver driver(protocol, 8);
    driver.post(5, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 5);
    EXPECT_TRUE(protocol.isInhibited(5));
    // Re-request: needs a fairness release (one retry pass).
    driver.post(5, 2);
    EXPECT_EQ(driver.arbitrateAndServe(3), 5);
    EXPECT_EQ(driver.retries(), 1);
    EXPECT_EQ(protocol.fairnessReleases(), 1u);
}

TEST(FuturebusAapTest, UnservedAgentJoinsTheBatch)
{
    FuturebusAapProtocol protocol;
    ProtocolDriver driver(protocol, 8);
    driver.post(4, 0);
    driver.post(6, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 6);
    // Agent 8 arrives mid-batch, has not been served in this batch:
    // it competes immediately and, having the highest identity, wins.
    driver.post(8, 2);
    EXPECT_EQ(driver.arbitrateAndServe(3), 8);
    EXPECT_EQ(driver.arbitrateAndServe(4), 4);
    EXPECT_EQ(protocol.fairnessReleases(), 0u);
}

TEST(FuturebusAapTest, NoAgentServedTwicePerBatch)
{
    FuturebusAapProtocol protocol;
    ProtocolDriver driver(protocol, 4);
    driver.post(3, 0);
    driver.post(2, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 3);
    driver.post(3, 2); // 3 again, but it is inhibited
    EXPECT_EQ(driver.arbitrateAndServe(3), 2);
    // Batch over (everyone inhibited): release, then 3 is served.
    EXPECT_EQ(driver.arbitrateAndServe(4), 3);
    EXPECT_EQ(protocol.fairnessReleases(), 1u);
}

TEST(FuturebusAapTest, ReleaseClearsAllInhibitBits)
{
    FuturebusAapProtocol protocol;
    ProtocolDriver driver(protocol, 4);
    driver.post(1, 0);
    driver.post(2, 0);
    driver.arbitrateAndServe(1); // 2
    driver.arbitrateAndServe(2); // 1
    EXPECT_TRUE(protocol.isInhibited(1));
    EXPECT_TRUE(protocol.isInhibited(2));
    driver.post(1, 3);
    driver.arbitrateAndServe(4); // release + serve 1
    EXPECT_FALSE(protocol.isInhibited(2));
    EXPECT_FALSE(protocol.isInhibited(3));
}

TEST(FuturebusAapTest, EmptySystemIdlesWithoutRelease)
{
    FuturebusAapProtocol protocol;
    ProtocolDriver driver(protocol, 4);
    EXPECT_EQ(driver.arbitrateAndServe(0), kNoAgent);
    EXPECT_EQ(protocol.fairnessReleases(), 0u);
}

TEST(AapDeathTest, PriorityRequestsRejectedWhenDisabled)
{
    BatchAapProtocol batch;
    ProtocolDriver d1(batch, 4);
    EXPECT_EXIT(d1.post(1, 0, true), ::testing::ExitedWithCode(1),
                "priority is disabled");
    FuturebusAapProtocol futurebus;
    ProtocolDriver d2(futurebus, 4);
    EXPECT_EXIT(d2.post(1, 0, true), ::testing::ExitedWithCode(1),
                "priority is disabled");
}

// ----------------------------------------- priority integration (§2.4)

TEST(BatchAapPriorityTest, PriorityJumpsTheBatch)
{
    BatchAapProtocol protocol(/*enable_priority=*/true);
    ProtocolDriver driver(protocol, 8);
    driver.post(2, 0);
    driver.post(4, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 4);
    // A priority request from the lowest identity arrives mid-batch:
    // it ignores batching and outranks the remaining member.
    driver.post(1, 2, /*priority=*/true);
    EXPECT_EQ(driver.arbitrateAndServe(3), 1);
    EXPECT_EQ(driver.arbitrateAndServe(4), 2);
}

TEST(BatchAapPriorityTest, PriorityAmongPriorityIsIdentityOrder)
{
    BatchAapProtocol protocol(true);
    ProtocolDriver driver(protocol, 8);
    driver.post(3, 0, true);
    driver.post(6, 0, true);
    driver.post(8, 0, false);
    EXPECT_EQ(driver.arbitrateAndServe(1), 6);
    EXPECT_EQ(driver.arbitrateAndServe(2), 3);
    EXPECT_EQ(driver.arbitrateAndServe(3), 8);
}

TEST(BatchAapPriorityTest, PriorityServiceDoesNotDisturbTheBatch)
{
    BatchAapProtocol protocol(true);
    ProtocolDriver driver(protocol, 8);
    driver.post(5, 0);
    driver.post(3, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 5);
    driver.post(7, 2, true); // priority, then the batch resumes
    EXPECT_EQ(driver.arbitrateAndServe(3), 7);
    EXPECT_EQ(driver.arbitrateAndServe(4), 3);
    EXPECT_EQ(protocol.batchesFormed(), 1u);
}

TEST(FuturebusAapPriorityTest, PriorityIgnoresInhibition)
{
    FuturebusAapProtocol protocol(/*enable_priority=*/true);
    ProtocolDriver driver(protocol, 8);
    driver.post(5, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 5);
    EXPECT_TRUE(protocol.isInhibited(5));
    // Agent 5 is inhibited for normal traffic but its priority request
    // competes immediately, with no fairness release.
    driver.post(5, 2, true);
    EXPECT_EQ(driver.arbitrateAndServe(3), 5);
    EXPECT_EQ(protocol.fairnessReleases(), 0u);
    // Priority service does not inhibit (nor un-inhibit) the agent.
    EXPECT_TRUE(protocol.isInhibited(5));
}

TEST(FuturebusAapPriorityTest, PriorityBeatsEveryBatchMember)
{
    FuturebusAapProtocol protocol(true);
    ProtocolDriver driver(protocol, 8);
    driver.post(8, 0, false);
    driver.post(2, 0, true);
    EXPECT_EQ(driver.arbitrateAndServe(1), 2);
    EXPECT_EQ(driver.arbitrateAndServe(2), 8);
}

} // namespace
} // namespace busarb
