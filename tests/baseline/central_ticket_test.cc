/**
 * @file
 * Unit tests for the central reference arbiters and the Sharma-Ahuja
 * ticket FCFS baseline.
 */

#include <vector>

#include <gtest/gtest.h>

#include "baseline/central.hh"
#include "baseline/fixed_priority.hh"
#include "baseline/ticket_fcfs.hh"
#include "support/protocol_driver.hh"

namespace busarb {
namespace {

using test::ProtocolDriver;

TEST(CentralRrTest, ScanMatchesDistributedDefinition)
{
    CentralRoundRobinProtocol protocol;
    ProtocolDriver driver(protocol, 5);
    for (AgentId a = 1; a <= 5; ++a)
        driver.post(a, 0);
    std::vector<AgentId> order;
    for (int i = 0; i < 5; ++i) {
        order.push_back(driver.arbitrateAndServe(1 + i));
        driver.post(order.back(), 1 + i);
    }
    EXPECT_EQ(order, (std::vector<AgentId>{5, 4, 3, 2, 1}));
}

TEST(CentralRrTest, PointerSkipsIdleAgents)
{
    CentralRoundRobinProtocol protocol;
    ProtocolDriver driver(protocol, 8);
    driver.post(6, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 6);
    driver.post(7, 2); // above the pointer (at 5): served after wrap
    driver.post(2, 2);
    EXPECT_EQ(driver.arbitrateAndServe(3), 2);
    EXPECT_EQ(driver.arbitrateAndServe(4), 7);
}

TEST(CentralFcfsTest, ServesInIssueOrder)
{
    CentralFcfsProtocol protocol;
    ProtocolDriver driver(protocol, 8);
    driver.post(5, 10);
    driver.post(2, 20);
    driver.post(8, 30);
    EXPECT_EQ(driver.arbitrateAndServe(40), 5);
    EXPECT_EQ(driver.arbitrateAndServe(41), 2);
    EXPECT_EQ(driver.arbitrateAndServe(42), 8);
}

TEST(CentralFcfsTest, SimultaneousIssueBreaksTiesBySeq)
{
    CentralFcfsProtocol protocol;
    ProtocolDriver driver(protocol, 8);
    driver.post(5, 10); // seq 1
    driver.post(2, 10); // seq 2
    EXPECT_EQ(driver.arbitrateAndServe(20), 5);
    EXPECT_EQ(driver.arbitrateAndServe(21), 2);
}

TEST(CentralFcfsTest, PerAgentQueuesStayFifo)
{
    CentralFcfsProtocol protocol;
    ProtocolDriver driver(protocol, 4);
    driver.post(1, 10);
    driver.post(2, 20);
    driver.post(1, 30);
    std::vector<AgentId> order;
    for (int i = 0; i < 3; ++i)
        order.push_back(driver.arbitrateAndServe(40 + i));
    EXPECT_EQ(order, (std::vector<AgentId>{1, 2, 1}));
}

TEST(TicketFcfsTest, UnboundedTicketsAreExactFcfs)
{
    TicketFcfsProtocol protocol;
    ProtocolDriver driver(protocol, 8);
    driver.post(7, 0);
    driver.post(3, 1);
    driver.post(5, 2);
    EXPECT_EQ(driver.arbitrateAndServe(5), 7);
    EXPECT_EQ(driver.arbitrateAndServe(6), 3);
    EXPECT_EQ(driver.arbitrateAndServe(7), 5);
    EXPECT_EQ(protocol.ticketsIssued(), 3u);
}

TEST(TicketFcfsTest, BoundedTicketsWrapCorrectly)
{
    // 3-bit dispenser: tickets wrap mod 8; the circular comparison must
    // keep serving in issue order across the wrap as long as fewer than
    // 4 requests are outstanding at once.
    TicketFcfsConfig config;
    config.ticketBits = 3;
    TicketFcfsProtocol protocol(config);
    ProtocolDriver driver(protocol, 4);
    Tick now = 0;
    for (int round = 0; round < 10; ++round) {
        driver.post(1, ++now);
        driver.post(2, ++now);
        EXPECT_EQ(driver.arbitrateAndServe(++now), 1) << round;
        EXPECT_EQ(driver.arbitrateAndServe(++now), 2) << round;
    }
}

TEST(FixedPriorityTest, AlwaysServesHighestIdentity)
{
    FixedPriorityProtocol protocol;
    ProtocolDriver driver(protocol, 8);
    driver.post(2, 0);
    driver.post(5, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 5);
    driver.post(5, 2); // immediately re-requests and wins again
    EXPECT_EQ(driver.arbitrateAndServe(3), 5);
    EXPECT_EQ(driver.arbitrateAndServe(4), 2);
}

TEST(FixedPriorityTest, PriorityBitDominatesIdentity)
{
    FixedPriorityProtocol protocol(/*enable_priority=*/true);
    ProtocolDriver driver(protocol, 8);
    driver.post(8, 0, false);
    driver.post(1, 0, true);
    EXPECT_EQ(driver.arbitrateAndServe(1), 1);
    EXPECT_EQ(driver.arbitrateAndServe(2), 8);
}

TEST(FixedPriorityTest, AgentPresentsItsPriorityRequestFirst)
{
    FixedPriorityProtocol protocol(/*enable_priority=*/true);
    ProtocolDriver driver(protocol, 8);
    const Request np = driver.post(2, 0, false);
    const Request p = driver.post(2, 1, true);
    driver.post(5, 0, false);
    EXPECT_EQ(driver.arbitrateAndServe(2), 2);
    EXPECT_EQ(driver.served().back().seq, p.seq);
    EXPECT_EQ(driver.arbitrateAndServe(3), 5);
    EXPECT_EQ(driver.arbitrateAndServe(4), 2);
    EXPECT_EQ(driver.served().back().seq, np.seq);
}

TEST(CentralDeathTest, PriorityRejected)
{
    CentralRoundRobinProtocol rr;
    ProtocolDriver d1(rr, 4);
    EXPECT_DEATH(d1.post(1, 0, true), "priority");
    CentralFcfsProtocol fcfs;
    ProtocolDriver d2(fcfs, 4);
    EXPECT_DEATH(d2.post(1, 0, true), "priority");
    TicketFcfsProtocol ticket;
    ProtocolDriver d3(ticket, 4);
    EXPECT_DEATH(d3.post(1, 0, true), "priority");
}

} // namespace
} // namespace busarb
