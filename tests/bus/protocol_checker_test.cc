/**
 * @file
 * Tests for the protocol-checking decorator: it must pass through
 * well-behaved protocols transparently and catch contract violations.
 */

#include <memory>

#include <gtest/gtest.h>

#include "baseline/fixed_priority.hh"
#include "bus/protocol_checker.hh"
#include "support/protocol_driver.hh"

namespace busarb {
namespace {

using test::ProtocolDriver;

/** A protocol that misbehaves in a configurable way. */
class MisbehavingProtocol : public ArbitrationProtocol
{
  public:
    enum class Mode {
        kWellBehaved,
        kWinnerNeverPosted,
        kEndlessRetry,
        kServeTwice,
    };

    explicit MisbehavingProtocol(Mode mode) : mode_(mode) {}

    void
    reset(int num_agents) override
    {
        (void)num_agents;
        pending_ = {};
        servedOnce_ = {};
    }

    void
    requestPosted(const Request &req) override
    {
        pending_.push_back(req);
    }

    bool wantsPass() const override { return !pending_.empty(); }

    void beginPass(Tick) override {}

    PassResult
    completePass(Tick) override
    {
        switch (mode_) {
          case Mode::kEndlessRetry:
            return PassResult::makeRetry();
          case Mode::kWinnerNeverPosted: {
            Request ghost;
            ghost.agent = 1;
            ghost.seq = 99999;
            return PassResult::makeWinner(ghost);
          }
          case Mode::kServeTwice:
            if (!servedOnce_.empty())
                return PassResult::makeWinner(servedOnce_.front());
            [[fallthrough]];
          case Mode::kWellBehaved:
            if (pending_.empty())
                return PassResult::makeIdle();
            return PassResult::makeWinner(pending_.front());
        }
        return PassResult::makeIdle();
    }

    void
    tenureStarted(const Request &req, Tick) override
    {
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            if (it->seq == req.seq) {
                servedOnce_.push_back(*it);
                pending_.erase(it);
                return;
            }
        }
    }

    std::string name() const override { return "misbehaving"; }

  private:
    Mode mode_;
    std::vector<Request> pending_;
    std::vector<Request> servedOnce_;
};

ProtocolChecker
makeChecked(MisbehavingProtocol::Mode mode)
{
    return ProtocolChecker(
        std::make_unique<MisbehavingProtocol>(mode));
}

TEST(ProtocolCheckerTest, TransparentForWellBehavedProtocol)
{
    ProtocolChecker checked(std::make_unique<FixedPriorityProtocol>());
    ProtocolDriver driver(checked, 4);
    driver.post(1, 0);
    driver.post(3, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 3);
    EXPECT_EQ(driver.arbitrateAndServe(2), 1);
    EXPECT_EQ(checked.posted(), 2u);
    EXPECT_EQ(checked.served(), 2u);
    EXPECT_NE(checked.name().find("[checked]"), std::string::npos);
}

TEST(ProtocolCheckerDeathTest, CatchesGhostWinner)
{
    auto checked =
        makeChecked(MisbehavingProtocol::Mode::kWinnerNeverPosted);
    ProtocolDriver driver(checked, 4);
    driver.post(1, 0);
    EXPECT_DEATH(driver.arbitrateAndServe(1), "never posted");
}

TEST(ProtocolCheckerDeathTest, CatchesRetryLivelock)
{
    auto checked = makeChecked(MisbehavingProtocol::Mode::kEndlessRetry);
    ProtocolDriver driver(checked, 4);
    driver.post(1, 0);
    EXPECT_DEATH(driver.arbitrateAndServe(1), "livelock");
}

TEST(ProtocolCheckerDeathTest, CatchesDoubleService)
{
    auto checked = makeChecked(MisbehavingProtocol::Mode::kServeTwice);
    ProtocolDriver driver(checked, 4);
    driver.post(2, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 2);
    driver.post(3, 2);
    // The inner protocol now re-announces the already-served request.
    EXPECT_DEATH(driver.arbitrateAndServe(3),
                 "never posted or already served");
}

TEST(ProtocolCheckerDeathTest, CatchesLifecycleViolations)
{
    ProtocolChecker checked(std::make_unique<FixedPriorityProtocol>());
    EXPECT_DEATH(checked.beginPass(0), "before reset");
    checked.reset(4);
    EXPECT_DEATH(checked.completePass(0), "without beginPass");
    checked.beginPass(0);
    EXPECT_DEATH(checked.beginPass(0), "while a pass is open");
}

TEST(ProtocolCheckerDeathTest, CatchesDoublePost)
{
    ProtocolChecker checked(std::make_unique<FixedPriorityProtocol>());
    checked.reset(4);
    Request req;
    req.agent = 1;
    req.seq = 7;
    req.issued = 0;
    checked.requestPosted(req);
    EXPECT_DEATH(checked.requestPosted(req), "posted twice");
}

} // namespace
} // namespace busarb
