/**
 * @file
 * Unit tests for the wired-OR line model.
 */

#include <gtest/gtest.h>

#include "bus/wired_or.hh"

namespace busarb {
namespace {

TEST(WiredOrTest, FloatsLowInitially)
{
    WiredOrLine line(4);
    EXPECT_FALSE(line.read());
    EXPECT_EQ(line.numAsserting(), 0);
    EXPECT_EQ(line.numAgents(), 4);
}

TEST(WiredOrTest, SingleDriverRaisesLine)
{
    WiredOrLine line(4);
    line.assertLine(2);
    EXPECT_TRUE(line.read());
    EXPECT_TRUE(line.isAsserting(2));
    EXPECT_FALSE(line.isAsserting(1));
}

TEST(WiredOrTest, OrSemantics)
{
    WiredOrLine line(3);
    line.assertLine(1);
    line.assertLine(3);
    EXPECT_TRUE(line.read());
    line.releaseLine(1);
    EXPECT_TRUE(line.read()); // agent 3 still drives
    line.releaseLine(3);
    EXPECT_FALSE(line.read());
}

TEST(WiredOrTest, AssertIsIdempotent)
{
    WiredOrLine line(2);
    line.assertLine(1);
    line.assertLine(1);
    EXPECT_EQ(line.numAsserting(), 1);
    line.releaseLine(1);
    EXPECT_FALSE(line.read());
}

TEST(WiredOrTest, ReleaseIsIdempotent)
{
    WiredOrLine line(2);
    line.releaseLine(1);
    line.assertLine(1);
    line.releaseLine(1);
    line.releaseLine(1);
    EXPECT_EQ(line.numAsserting(), 0);
}

TEST(WiredOrTest, RisingEdgesCountZeroToOneTransitions)
{
    WiredOrLine line(3);
    EXPECT_EQ(line.risingEdges(), 0u);
    line.assertLine(1);       // edge 1
    line.assertLine(2);       // already high, no edge
    line.releaseLine(1);
    line.releaseLine(2);      // line falls
    line.assertLine(3);       // edge 2
    EXPECT_EQ(line.risingEdges(), 2u);
}

TEST(WiredOrTest, ClearReleasesEveryDriver)
{
    WiredOrLine line(5);
    for (AgentId a = 1; a <= 5; ++a)
        line.assertLine(a);
    line.clear();
    EXPECT_FALSE(line.read());
    for (AgentId a = 1; a <= 5; ++a)
        EXPECT_FALSE(line.isAsserting(a));
}

TEST(WiredOrDeathTest, OutOfRangeAgents)
{
    WiredOrLine line(3);
    EXPECT_DEATH(line.assertLine(0), "out of range");
    EXPECT_DEATH(line.assertLine(4), "out of range");
    EXPECT_DEATH(line.releaseLine(-1), "out of range");
    EXPECT_DEATH(line.isAsserting(9), "out of range");
    EXPECT_DEATH(WiredOrLine(0), "at least one agent");
}

} // namespace
} // namespace busarb
