/**
 * @file
 * Timing tests for the bus engine: arbitration overlap, exposed
 * overhead, retry passes, competitor freezing.
 */

#include <memory>

#include <gtest/gtest.h>

#include "baseline/aap_futurebus.hh"
#include "baseline/fixed_priority.hh"
#include "bus/bus.hh"
#include "sim/event_queue.hh"
#include "support/schedule_recorder.hh"

namespace busarb {
namespace {

using test::Grant;
using test::ScheduleRecorder;

constexpr Tick U = kTicksPerUnit;

struct BusFixture
{
    EventQueue queue;
    std::unique_ptr<Bus> bus;
    ScheduleRecorder recorder;

    explicit BusFixture(int num_agents = 4, BusParams params = {})
    {
        bus = std::make_unique<Bus>(
            queue, std::make_unique<FixedPriorityProtocol>(), num_agents,
            params);
        bus->setObserver(&recorder);
    }
};

TEST(BusTest, IdleRequestPaysArbitrationOverhead)
{
    BusFixture f;
    f.queue.schedule(0, [&] { f.bus->postRequest(1); });
    f.queue.run();
    ASSERT_EQ(f.recorder.grants().size(), 1u);
    const Grant g = f.recorder.grants()[0];
    EXPECT_EQ(g.start, U / 2);       // 0.5 units of arbitration
    EXPECT_EQ(g.end, U / 2 + U);     // + 1 unit of service
    EXPECT_EQ(f.bus->exposedArbitrationTicks(), U / 2);
    EXPECT_EQ(f.bus->completedTransactions(), 1u);
    EXPECT_EQ(f.bus->busyTicks(), U);
}

TEST(BusTest, ArbitrationOverlapsWithService)
{
    // Two simultaneous requests: the loser's arbitration runs during the
    // winner's transfer, so back-to-back service with no gap.
    BusFixture f;
    f.queue.schedule(0, [&] {
        f.bus->postRequest(1);
        f.bus->postRequest(2);
    });
    f.queue.run();
    ASSERT_EQ(f.recorder.grants().size(), 2u);
    // Fixed priority: agent 2 first.
    EXPECT_EQ(f.recorder.grants()[0].agent, 2);
    EXPECT_EQ(f.recorder.grants()[0].start, U / 2);
    EXPECT_EQ(f.recorder.grants()[1].agent, 1);
    EXPECT_EQ(f.recorder.grants()[1].start, U / 2 + U); // no gap
    // Only the first pass was exposed.
    EXPECT_EQ(f.bus->exposedArbitrationTicks(), U / 2);
    EXPECT_EQ(f.bus->arbitrationPasses(), 2u);
}

TEST(BusTest, MidTenureArrivalArbitratesImmediately)
{
    // Service [0.5, 1.5); a request lands at 0.7 with no pass running:
    // its pass is [0.7, 1.2] and service follows seamlessly at 1.5.
    BusFixture f;
    f.queue.schedule(0, [&] { f.bus->postRequest(1); });
    f.queue.schedule(7 * U / 10, [&] { f.bus->postRequest(2); });
    f.queue.run();
    ASSERT_EQ(f.recorder.grants().size(), 2u);
    EXPECT_EQ(f.recorder.grants()[1].agent, 2);
    EXPECT_EQ(f.recorder.grants()[1].start, U / 2 + U);
    EXPECT_EQ(f.bus->exposedArbitrationTicks(), U / 2); // first pass only
}

TEST(BusTest, LateArrivalExposesPartialOverhead)
{
    // Service [0.5, 1.5); a request lands at 1.3: pass [1.3, 1.8], so
    // the bus idles 0.3 units.
    BusFixture f;
    f.queue.schedule(0, [&] { f.bus->postRequest(1); });
    f.queue.schedule(13 * U / 10, [&] { f.bus->postRequest(2); });
    f.queue.run();
    ASSERT_EQ(f.recorder.grants().size(), 2u);
    EXPECT_EQ(f.recorder.grants()[1].start, 18 * U / 10);
    EXPECT_EQ(f.bus->exposedArbitrationTicks(), U / 2 + 3 * U / 10);
}

TEST(BusTest, OnlyOneArbitrationPerTenure)
{
    // While a winner is already decided, later arrivals must wait for
    // the next tenure's arbitration.
    BusFixture f;
    f.queue.schedule(0, [&] {
        f.bus->postRequest(1);
        f.bus->postRequest(2);
    });
    // Arrives after the second pass decided agent 1 (at 1.0) but before
    // the first transfer ends (1.5): joins the third pass, not this one.
    f.queue.schedule(12 * U / 10, [&] { f.bus->postRequest(3); });
    f.queue.run();
    ASSERT_EQ(f.recorder.grants().size(), 3u);
    EXPECT_EQ(f.recorder.grants()[0].agent, 2);
    EXPECT_EQ(f.recorder.grants()[1].agent, 1);
    EXPECT_EQ(f.recorder.grants()[2].agent, 3);
    EXPECT_EQ(f.bus->arbitrationPasses(), 3u);
}

TEST(BusTest, CompetitorSetFrozenAtPassStart)
{
    // Agent 1 requests at 0; agent 2 (higher priority under fixed
    // priority) requests at 0.2 while the pass is in flight. Agent 1
    // must still win the first arbitration.
    BusFixture f;
    f.queue.schedule(0, [&] { f.bus->postRequest(1); });
    f.queue.schedule(2 * U / 10, [&] { f.bus->postRequest(2); });
    f.queue.run();
    ASSERT_EQ(f.recorder.grants().size(), 2u);
    EXPECT_EQ(f.recorder.grants()[0].agent, 1);
    EXPECT_EQ(f.recorder.grants()[1].agent, 2);
}

TEST(BusTest, ZeroOverheadGrantsImmediately)
{
    BusParams params;
    params.arbitrationOverhead = 0.0;
    BusFixture f(4, params);
    f.queue.schedule(0, [&] { f.bus->postRequest(1); });
    f.queue.run();
    ASSERT_EQ(f.recorder.grants().size(), 1u);
    EXPECT_EQ(f.recorder.grants()[0].start, 0);
    EXPECT_EQ(f.bus->exposedArbitrationTicks(), 0);
}

TEST(BusTest, OverheadLongerThanServiceStallsTheBus)
{
    BusParams params;
    params.arbitrationOverhead = 2.0;
    BusFixture f(4, params);
    f.queue.schedule(0, [&] {
        f.bus->postRequest(1);
        f.bus->postRequest(2);
    });
    f.queue.run();
    ASSERT_EQ(f.recorder.grants().size(), 2u);
    EXPECT_EQ(f.recorder.grants()[0].start, 2 * U);      // pass [0, 2]
    EXPECT_EQ(f.recorder.grants()[0].end, 3 * U);
    // Second pass starts at tenure start (2.0), completes 4.0 > 3.0.
    EXPECT_EQ(f.recorder.grants()[1].start, 4 * U);
    EXPECT_EQ(f.bus->exposedArbitrationTicks(), 2 * U + U);
}

TEST(BusTest, FractionalTransactionTime)
{
    BusParams params;
    params.transactionTime = 2.5;
    params.arbitrationOverhead = 0.25;
    BusFixture f(4, params);
    f.queue.schedule(0, [&] { f.bus->postRequest(1); });
    f.queue.run();
    ASSERT_EQ(f.recorder.grants().size(), 1u);
    EXPECT_EQ(f.recorder.grants()[0].start, U / 4);
    EXPECT_EQ(f.recorder.grants()[0].end, U / 4 + 5 * U / 2);
}

TEST(BusTest, RetryPassCostsTimeWhenExposed)
{
    // Futurebus AAP: agent 1 is served and inhibited; its next request
    // needs a fairness-release pass (empty) plus a real pass.
    EventQueue queue;
    Bus bus(queue, std::make_unique<FuturebusAapProtocol>(), 4, {});
    ScheduleRecorder recorder;
    bus.setObserver(&recorder);
    queue.schedule(0, [&] { bus.postRequest(1); });
    queue.schedule(2 * U, [&] { bus.postRequest(1); });
    queue.run();
    ASSERT_EQ(recorder.grants().size(), 2u);
    // First service: [0.5, 1.5]. Second request at 2.0: release pass
    // [2.0, 2.5], real pass [2.5, 3.0], service [3.0, 4.0].
    EXPECT_EQ(recorder.grants()[1].start, 3 * U);
    EXPECT_EQ(bus.retryPasses(), 1u);
    EXPECT_EQ(bus.arbitrationPasses(), 3u);
}

TEST(BusTest, RequestsFromObserverCallbacksAreSafe)
{
    // Re-post from the completion callback (think time zero).
    struct Reposter : BusObserver
    {
        Bus *bus = nullptr;
        int remaining = 3;

        void onServiceStart(const Request &, Tick) override {}

        void
        onServiceEnd(const Request &req, Tick) override
        {
            if (remaining-- > 0)
                bus->postRequest(req.agent);
        }
    };
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 2, {});
    Reposter reposter;
    reposter.bus = &bus;
    bus.setObserver(&reposter);
    queue.schedule(0, [&] { bus.postRequest(1); });
    queue.run();
    EXPECT_EQ(bus.completedTransactions(), 4u);
}

TEST(BusDeathTest, InvalidConfigurationAndIds)
{
    EventQueue queue;
    EXPECT_DEATH(Bus(queue, nullptr, 4, {}), "needs a protocol");
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 4, {});
    EXPECT_DEATH(bus.postRequest(0), "out of range");
    EXPECT_DEATH(bus.postRequest(5), "out of range");
}

} // namespace
} // namespace busarb
