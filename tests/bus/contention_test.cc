/**
 * @file
 * Unit and property tests for the bit-level parallel contention arbiter.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "bus/contention.hh"
#include "random/rng.hh"

namespace busarb {
namespace {

std::vector<Competitor>
makeCompetitors(const std::vector<std::uint64_t> &words)
{
    std::vector<Competitor> cs;
    AgentId id = 1;
    for (auto w : words)
        cs.push_back(Competitor{id++, w});
    return cs;
}

TEST(LinesForAgentsTest, MatchesCeilLog2NPlusOne)
{
    EXPECT_EQ(linesForAgents(1), 1);
    EXPECT_EQ(linesForAgents(3), 2);
    EXPECT_EQ(linesForAgents(7), 3);
    EXPECT_EQ(linesForAgents(8), 4);   // identity 0 reserved
    EXPECT_EQ(linesForAgents(10), 4);
    EXPECT_EQ(linesForAgents(30), 5);
    EXPECT_EQ(linesForAgents(63), 6);  // Futurebus: k = 6
    EXPECT_EQ(linesForAgents(64), 7);
}

TEST(SettleTest, EmptyCompetitionSettlesToZero)
{
    ContentionArbiter arb(4);
    const auto result = arb.settle({});
    EXPECT_EQ(result.settledWord, 0u);
    EXPECT_EQ(result.winner, kNoAgent);
    EXPECT_EQ(result.rounds, 0);
}

TEST(SettleTest, SingleCompetitorWinsImmediately)
{
    ContentionArbiter arb(4);
    const auto result = arb.settle(makeCompetitors({0b1010}));
    EXPECT_EQ(result.settledWord, 0b1010u);
    EXPECT_EQ(result.winner, 1);
    EXPECT_EQ(result.rounds, 0); // nothing to remove
}

TEST(SettleTest, PaperWorkedExample)
{
    // Section 2.1: agents 1010101 and 0011100. The first removes its
    // three lowest bits then re-applies them; the second removes all.
    ContentionArbiter arb(7);
    const auto result =
        arb.settle(makeCompetitors({0b1010101, 0b0011100}));
    EXPECT_EQ(result.settledWord, 0b1010101u);
    EXPECT_EQ(result.winner, 1);
    EXPECT_GE(result.rounds, 1);
}

TEST(SettleTest, DominatedWordNeedsNoRounds)
{
    // 0b1100 vs 0b1000: the loser's bits are a subset of the winner's
    // pattern conflicts... check the lines still settle to the max.
    ContentionArbiter arb(4);
    const auto result = arb.settle(makeCompetitors({0b1100, 0b1000}));
    EXPECT_EQ(result.settledWord, 0b1100u);
    EXPECT_EQ(result.winner, 1);
}

TEST(SettleTest, WorstCaseStaircaseRespectsLinearBound)
{
    // The classic slow case: words 1000..., 0100..., 0010..., each agent
    // keeps re-applying as higher conflicts resolve.
    const int k = 8;
    ContentionArbiter arb(k);
    std::vector<std::uint64_t> words;
    for (int i = 0; i < k; ++i) {
        std::uint64_t w = 1ULL << (k - 1 - i);
        // Fill lower bits to force repeated remove/re-apply.
        w |= (w >> 1) == 0 ? 0 : ((w >> 1) - 1);
        if (w == 0)
            w = 1;
        words.push_back(w);
    }
    const auto result = arb.settle(makeCompetitors(words));
    std::uint64_t expected = *std::max_element(words.begin(), words.end());
    EXPECT_EQ(result.settledWord, expected);
    // Synchronous-round model: the process must converge within ~k
    // rounds (Taub's k/2 bound is for the asynchronous ripple model;
    // one synchronous round can take two ripple steps).
    EXPECT_LE(result.rounds, k);
}

class SettlePropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SettlePropertyTest, SettlesToMaximumForRandomSubsets)
{
    const int k = GetParam();
    ContentionArbiter arb(k);
    Rng rng(static_cast<std::uint64_t>(k) * 7919);
    const std::uint64_t limit = (k >= 63) ? ~0ULL : (1ULL << k) - 1;
    // Never ask for more distinct words than the line width can encode.
    const int max_n =
        static_cast<int>(std::min<std::uint64_t>(16, limit));
    for (int trial = 0; trial < 200; ++trial) {
        const int n =
            1 + static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(max_n)));
        std::vector<Competitor> cs;
        std::vector<std::uint64_t> used;
        for (int i = 0; i < n; ++i) {
            std::uint64_t w;
            do {
                w = 1 + rng.below(limit);
            } while (std::find(used.begin(), used.end(), w) != used.end());
            used.push_back(w);
            cs.push_back(Competitor{static_cast<AgentId>(i + 1), w});
        }
        const auto result = arb.settle(cs);
        EXPECT_EQ(result.settledWord,
                  *std::max_element(used.begin(), used.end()));
        EXPECT_LE(result.rounds, k + 1);
    }
}

INSTANTIATE_TEST_SUITE_P(LineWidths, SettlePropertyTest,
                         ::testing::Values(3, 4, 5, 6, 7, 10, 16, 24));

TEST(SettleTest, TypicalRoundsAreNearHalfK)
{
    // Sanity for the timing claim: across random contests the average
    // settle round count should be well below the worst case.
    const int k = 10;
    ContentionArbiter arb(k);
    Rng rng(4242);
    double total_rounds = 0;
    const int trials = 500;
    for (int t = 0; t < trials; ++t) {
        std::vector<Competitor> cs;
        std::vector<std::uint64_t> used;
        for (int i = 0; i < 8; ++i) {
            std::uint64_t w;
            do {
                w = 1 + rng.below((1ULL << k) - 1);
            } while (std::find(used.begin(), used.end(), w) != used.end());
            used.push_back(w);
            cs.push_back(Competitor{static_cast<AgentId>(i + 1), w});
        }
        total_rounds += arb.settle(cs).rounds;
    }
    EXPECT_LT(total_rounds / trials, k / 2.0 + 1.0);
}

TEST(SelectMaxTest, PicksLargestWord)
{
    EXPECT_EQ(selectMax(makeCompetitors({5, 9, 3})), 2);
    EXPECT_EQ(selectMax(makeCompetitors({7})), 1);
    EXPECT_EQ(selectMax({}), kNoAgent);
}

TEST(SelectMaxTest, AgreesWithSettleOnRandomInputs)
{
    ContentionArbiter arb(12);
    Rng rng(777);
    for (int trial = 0; trial < 300; ++trial) {
        std::vector<Competitor> cs;
        std::vector<std::uint64_t> used;
        const int n = 1 + static_cast<int>(rng.below(10));
        for (int i = 0; i < n; ++i) {
            std::uint64_t w;
            do {
                w = 1 + rng.below((1ULL << 12) - 1);
            } while (std::find(used.begin(), used.end(), w) != used.end());
            used.push_back(w);
            cs.push_back(Competitor{static_cast<AgentId>(i + 1), w});
        }
        EXPECT_EQ(selectMax(cs), arb.settle(cs).winner);
    }
}

TEST(SelectMaxDeathTest, DuplicateMaximalWordsPanic)
{
    std::vector<Competitor> cs{{1, 7}, {2, 7}};
    EXPECT_DEATH(selectMax(cs), "duplicate arbitration word");
}

TEST(SettleDeathTest, InvalidInputs)
{
    EXPECT_DEATH(ContentionArbiter(0), "out of range");
    ContentionArbiter arb(3);
    EXPECT_DEATH(arb.settle(makeCompetitors({0b1000})), "does not fit");
    EXPECT_DEATH(arb.settle(makeCompetitors({0})), "reserved word 0");
}

} // namespace
} // namespace busarb
