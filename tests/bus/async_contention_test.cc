/**
 * @file
 * Tests for the asynchronous, placement-aware contention arbiter.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "bus/async_contention.hh"
#include "random/rng.hh"

namespace busarb {
namespace {

TEST(AsyncSettleTest, EmptyAndSingleCompetitor)
{
    AsyncContentionArbiter arb(4);
    EXPECT_EQ(arb.settle({}).winner, kNoAgent);
    const auto result =
        arb.settle({PlacedCompetitor{3, 0b1010, 0.5}});
    EXPECT_EQ(result.winner, 3);
    EXPECT_EQ(result.settledWord, 0b1010u);
    EXPECT_DOUBLE_EQ(result.settleTime, 0.0);
    EXPECT_EQ(result.transitions, 0);
}

TEST(AsyncSettleTest, PaperExampleSettlesToMax)
{
    AsyncContentionArbiter arb(7);
    const auto result = arb.settle({
        PlacedCompetitor{1, 0b1010101, 0.0},
        PlacedCompetitor{2, 0b0011100, 1.0},
    });
    EXPECT_EQ(result.winner, 1);
    EXPECT_EQ(result.settledWord, 0b1010101u);
    EXPECT_GT(result.transitions, 0);
}

TEST(AsyncSettleTest, RemoveReapplyRoundTripCostsTwoPropagations)
{
    // A = 101 at one end, B = 011 at the other: A transiently removes
    // bit 0 (B's middle bit conflicts) and re-applies it only after
    // B's removal crosses the bus: settle time 2 end-to-end delays.
    AsyncContentionArbiter arb(3);
    const auto result = arb.settle({
        PlacedCompetitor{1, 0b101, 0.0},
        PlacedCompetitor{2, 0b011, 1.0},
    });
    EXPECT_EQ(result.winner, 1);
    EXPECT_NEAR(result.settleTime, 2.0, 1e-9);
}

TEST(AsyncSettleTest, CoLocatedAgentsSettleInstantly)
{
    // Zero distance: reactions are immediate, no transient is visible.
    AsyncContentionArbiter arb(3);
    const auto result = arb.settle({
        PlacedCompetitor{1, 0b101, 0.4},
        PlacedCompetitor{2, 0b011, 0.4},
    });
    EXPECT_EQ(result.winner, 1);
    EXPECT_NEAR(result.settleTime, 0.0, 1e-9);
}

TEST(AsyncSettleTest, SettleTimeScalesWithDistance)
{
    AsyncContentionArbiter arb(3);
    for (double span : {0.1, 0.5, 1.0}) {
        const auto result = arb.settle({
            PlacedCompetitor{1, 0b101, 0.0},
            PlacedCompetitor{2, 0b011, span},
        });
        EXPECT_NEAR(result.settleTime, 2.0 * span, 1e-9) << span;
    }
}

TEST(AsyncSettleTest, AgreesWithSynchronousModelOnWinner)
{
    Rng rng(0xa57c);
    const int k = 8;
    AsyncContentionArbiter async_arb(k);
    ContentionArbiter sync_arb(k);
    for (int trial = 0; trial < 120; ++trial) {
        const int n = 2 + static_cast<int>(rng.below(6));
        std::vector<PlacedCompetitor> placed;
        std::vector<Competitor> plain;
        std::vector<std::uint64_t> used;
        for (int i = 0; i < n; ++i) {
            std::uint64_t w;
            do {
                w = 1 + rng.below((1ULL << k) - 1);
            } while (std::find(used.begin(), used.end(), w) !=
                     used.end());
            used.push_back(w);
            const double pos = rng.uniform();
            placed.push_back(
                PlacedCompetitor{static_cast<AgentId>(i + 1), w, pos});
            plain.push_back(Competitor{static_cast<AgentId>(i + 1), w});
        }
        const auto async_result = async_arb.settle(placed);
        const auto sync_result = sync_arb.settle(plain);
        ASSERT_EQ(async_result.winner, sync_result.winner)
            << "trial " << trial;
        ASSERT_EQ(async_result.settledWord, sync_result.settledWord);
    }
}

TEST(AsyncSettleTest, SettleTimeBoundedByTaubEnvelope)
{
    // With instantaneous agent logic most contests settle within one
    // remove / re-apply round trip (~2 end-to-end delays); chained
    // transients across intermediate positions can push slightly past
    // that, but everything stays inside Taub's k/2-style envelope.
    Rng rng(0x7A0B);
    for (int k : {4, 6, 8, 12}) {
        AsyncContentionArbiter arb(k);
        double worst = 0.0;
        for (int trial = 0; trial < 80; ++trial) {
            const int n = 2 + static_cast<int>(rng.below(6));
            std::vector<PlacedCompetitor> placed;
            std::vector<std::uint64_t> used;
            for (int i = 0; i < n; ++i) {
                std::uint64_t w;
                do {
                    w = 1 + rng.below((1ULL << k) - 1);
                } while (std::find(used.begin(), used.end(), w) !=
                         used.end());
                used.push_back(w);
                placed.push_back(PlacedCompetitor{
                    static_cast<AgentId>(i + 1), w, rng.uniform()});
            }
            worst = std::max(worst, arb.settle(placed).settleTime);
        }
        EXPECT_LE(worst, k / 2.0 + 0.5) << "k = " << k;
    }
}

TEST(AsyncSettleTest, WorstCasePlacementRealizesTheRoundTrip)
{
    for (int k : {4, 6, 8}) {
        AsyncContentionArbiter arb(k);
        const auto placed = AsyncContentionArbiter::worstCasePlacement(k);
        const auto result = arb.settle(placed);
        // The alternating-bit winner prevails and the settle needs the
        // full cross-bus round trip.
        EXPECT_EQ(result.winner, 1) << k;
        EXPECT_NEAR(result.settleTime, 2.0, 1e-9) << k;
    }
}

TEST(AsyncSettleDeathTest, InvalidInputs)
{
    AsyncContentionArbiter arb(3);
    EXPECT_DEATH(arb.settle({PlacedCompetitor{1, 0, 0.0}}), "bad word");
    EXPECT_DEATH(arb.settle({PlacedCompetitor{1, 0b1000, 0.0}}),
                 "bad word");
    EXPECT_DEATH(arb.settle({PlacedCompetitor{1, 1, -0.5}}),
                 "position");
    EXPECT_DEATH(AsyncContentionArbiter(0), "out of range");
    EXPECT_DEATH(AsyncContentionArbiter::worstCasePlacement(3), "even");
}

} // namespace
} // namespace busarb
