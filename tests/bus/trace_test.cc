/**
 * @file
 * Tests for the bus tracing facility.
 */

#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "baseline/aap_futurebus.hh"
#include "baseline/fixed_priority.hh"
#include "bus/bus.hh"
#include "bus/trace.hh"
#include "sim/event_queue.hh"

namespace busarb {
namespace {

/** Tracer counting each event kind. */
struct CountingTracer : BusTracer
{
    int posted = 0;
    int passStarts = 0;
    int winners = 0;
    int retries = 0;
    int tenureStarts = 0;
    int tenureEnds = 0;

    void onRequestPosted(const Request &) override { ++posted; }
    void onPassStarted(Tick) override { ++passStarts; }

    void
    onPassResolved(Tick now, Tick pass_start, const Request &winner,
                   bool retry) override
    {
        EXPECT_LE(pass_start, now);
        if (winner.valid())
            ++winners;
        if (retry)
            ++retries;
    }

    void onTenureStarted(const Request &, Tick) override
    {
        ++tenureStarts;
    }

    void onTenureEnded(const Request &, Tick) override { ++tenureEnds; }
};

TEST(TraceTest, EventsBalance)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 4, {});
    CountingTracer tracer;
    bus.setTracer(&tracer);
    queue.schedule(0, [&] {
        bus.postRequest(1);
        bus.postRequest(2);
    });
    queue.schedule(3 * kTicksPerUnit, [&] { bus.postRequest(3); });
    queue.run();
    EXPECT_EQ(tracer.posted, 3);
    EXPECT_EQ(tracer.winners, 3);
    EXPECT_EQ(tracer.tenureStarts, 3);
    EXPECT_EQ(tracer.tenureEnds, 3);
    EXPECT_EQ(tracer.passStarts, tracer.winners + tracer.retries);
    EXPECT_EQ(tracer.retries, 0);
}

TEST(TraceTest, RetriesAreVisible)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FuturebusAapProtocol>(), 4, {});
    CountingTracer tracer;
    bus.setTracer(&tracer);
    queue.schedule(0, [&] { bus.postRequest(1); });
    queue.schedule(2 * kTicksPerUnit, [&] { bus.postRequest(1); });
    queue.run();
    EXPECT_EQ(tracer.retries, 1); // the fairness release
    EXPECT_EQ(tracer.winners, 2);
}

TEST(TextTracerTest, ProducesReadableTimeline)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 4, {});
    std::ostringstream os;
    TextTracer tracer(os);
    bus.setTracer(&tracer);
    queue.schedule(0, [&] { bus.postRequest(2); });
    queue.run();
    const std::string out = os.str();
    EXPECT_NE(out.find("agent  2 asserts request"), std::string::npos);
    EXPECT_NE(out.find("arbitration pass starts"), std::string::npos);
    EXPECT_NE(out.find("agent 2 wins"), std::string::npos);
    EXPECT_NE(out.find("becomes bus master"), std::string::npos);
    EXPECT_NE(out.find("releases the bus"), std::string::npos);
    EXPECT_GE(tracer.events(), 5u);
}

TEST(TextTracerTest, TruncatesAtEventBudget)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 4, {});
    std::ostringstream os;
    TextTracer tracer(os, /*max_events=*/3);
    bus.setTracer(&tracer);
    queue.schedule(0, [&] {
        bus.postRequest(1);
        bus.postRequest(2);
        bus.postRequest(3);
    });
    queue.run();
    EXPECT_NE(os.str().find("trace truncated"), std::string::npos);
    EXPECT_EQ(tracer.events(), 3u);
}

TEST(TextTracerTest, PriorityRequestsAreAnnotated)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(true), 4, {});
    std::ostringstream os;
    TextTracer tracer(os);
    bus.setTracer(&tracer);
    queue.schedule(0, [&] { bus.postRequest(1, /*priority=*/true); });
    queue.run();
    EXPECT_NE(os.str().find("(priority)"), std::string::npos);
}

} // namespace
} // namespace busarb
