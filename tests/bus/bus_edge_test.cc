/**
 * @file
 * Additional bus-engine edge cases: accounting counters, boundary
 * sizes, and unusual timing parameter combinations.
 */

#include <memory>

#include <gtest/gtest.h>

#include "baseline/fixed_priority.hh"
#include "bus/bus.hh"
#include "core/round_robin.hh"
#include "sim/event_queue.hh"
#include "support/schedule_recorder.hh"

namespace busarb {
namespace {

constexpr Tick U = kTicksPerUnit;

TEST(BusEdgeTest, OutstandingRequestsTracksPostedMinusCompleted)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 4, {});
    EXPECT_EQ(bus.outstandingRequests(), 0u);
    queue.schedule(0, [&] {
        bus.postRequest(1);
        bus.postRequest(2);
        bus.postRequest(3);
    });
    queue.run(U); // one transaction done by t = 1.5? no: ends at 1.5
    EXPECT_EQ(bus.outstandingRequests(), 3u);
    queue.run(2 * U); // first service [0.5, 1.5] completed
    EXPECT_EQ(bus.outstandingRequests(), 2u);
    queue.run();
    EXPECT_EQ(bus.outstandingRequests(), 0u);
    EXPECT_EQ(bus.completedTransactions(), 3u);
}

TEST(BusEdgeTest, ExposedArbitrationAccumulatesAcrossIdleGaps)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 4, {});
    // Three isolated requests, each paying the full 0.5 exposure.
    for (int i = 0; i < 3; ++i)
        queue.schedule(i * 10 * U, [&] { bus.postRequest(1); });
    queue.run();
    EXPECT_EQ(bus.exposedArbitrationTicks(), 3 * U / 2);
}

TEST(BusEdgeTest, SingleAgentBusWorks)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<RoundRobinProtocol>(), 1, {});
    test::ScheduleRecorder recorder;
    bus.setObserver(&recorder);
    queue.schedule(0, [&] { bus.postRequest(1); });
    queue.schedule(3 * U, [&] { bus.postRequest(1); });
    queue.run();
    ASSERT_EQ(recorder.grants().size(), 2u);
    EXPECT_EQ(recorder.grants()[0].agent, 1);
    EXPECT_EQ(recorder.grants()[1].agent, 1);
}

TEST(BusEdgeTest, SixtyFourAgentBurstServesEveryoneOnce)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<RoundRobinProtocol>(), 64, {});
    test::ScheduleRecorder recorder;
    bus.setObserver(&recorder);
    queue.schedule(0, [&] {
        for (AgentId a = 1; a <= 64; ++a)
            bus.postRequest(a);
    });
    queue.run();
    ASSERT_EQ(recorder.grants().size(), 64u);
    // Descending identity order from a cold round-robin start.
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(recorder.grants()[static_cast<std::size_t>(i)].agent,
                  64 - i);
    // Back-to-back service with only the first arbitration exposed.
    EXPECT_EQ(recorder.grants()[63].end, U / 2 + 64 * U);
    EXPECT_EQ(bus.exposedArbitrationTicks(), U / 2);
}

TEST(BusEdgeTest, NoObserverIsFine)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 2, {});
    queue.schedule(0, [&] {
        bus.postRequest(1);
        bus.postRequest(2);
    });
    queue.run();
    EXPECT_EQ(bus.completedTransactions(), 2u);
}

TEST(BusEdgeTest, ServiceShorterThanOverheadSerializesOnArbitration)
{
    BusParams params;
    params.transactionTime = 0.25;
    params.arbitrationOverhead = 0.5;
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 4, params);
    test::ScheduleRecorder recorder;
    bus.setObserver(&recorder);
    queue.schedule(0, [&] {
        bus.postRequest(1);
        bus.postRequest(2);
        bus.postRequest(3);
    });
    queue.run();
    ASSERT_EQ(recorder.grants().size(), 3u);
    // Grants at 0.5, 1.0, 1.5: the bus idles 0.25 between transfers
    // because arbitration (0.5) outlasts the 0.25 transfer.
    EXPECT_EQ(recorder.grants()[0].start, U / 2);
    EXPECT_EQ(recorder.grants()[1].start, U);
    EXPECT_EQ(recorder.grants()[2].start, 3 * U / 2);
    // Utilization is 3 * 0.25 of 1.75 total.
    EXPECT_EQ(bus.busyTicks(), 3 * U / 4);
}

TEST(BusEdgeTest, StatsCountersAreConsistent)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<RoundRobinProtocol>(RrConfig{
                       RrImplementation::kNoExtraLine}),
            4, {});
    queue.schedule(0, [&] { bus.postRequest(2); });
    queue.schedule(2 * U, [&] { bus.postRequest(3); });
    queue.run();
    EXPECT_EQ(bus.completedTransactions(), 2u);
    // Impl 3 pays a wrap pass for the second request (3 >= recorded 2).
    EXPECT_EQ(bus.retryPasses(), 1u);
    EXPECT_EQ(bus.arbitrationPasses(), 3u);
    EXPECT_FALSE(bus.busy());
}

} // namespace
} // namespace busarb
