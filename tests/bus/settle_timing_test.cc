/**
 * @file
 * Tests for signal-level (settle-based) arbitration timing.
 */

#include <memory>

#include <gtest/gtest.h>

#include "baseline/central.hh"
#include "baseline/fixed_priority.hh"
#include "bus/bus.hh"
#include "core/fcfs.hh"
#include "core/round_robin.hh"
#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "sim/event_queue.hh"
#include "support/schedule_recorder.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

constexpr Tick U = kTicksPerUnit;

BusParams
settleParams()
{
    BusParams params;
    params.settleTiming = true;
    params.propagationDelay = 0.05;
    params.controlRounds = 4;
    return params;
}

TEST(SettleTimingTest, SingleCompetitorPaysOnlyControlRounds)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 4,
            settleParams());
    test::ScheduleRecorder recorder;
    bus.setObserver(&recorder);
    queue.schedule(0, [&] { bus.postRequest(1); });
    queue.run();
    ASSERT_EQ(recorder.grants().size(), 1u);
    // One competitor settles in 0 rounds: 4 control rounds * 0.05.
    EXPECT_EQ(recorder.grants()[0].start, U / 5);
}

TEST(SettleTimingTest, ContestedPassesTakeLonger)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 8,
            settleParams());
    test::ScheduleRecorder recorder;
    bus.setObserver(&recorder);
    queue.schedule(0, [&] {
        // Identities chosen to force remove/re-apply activity.
        bus.postRequest(5); // 101
        bus.postRequest(2); // 010
        bus.postRequest(3); // 011
    });
    queue.run();
    ASSERT_EQ(recorder.grants().size(), 3u);
    EXPECT_EQ(recorder.grants()[0].agent, 5);
    // More than the uncontested 4 rounds.
    EXPECT_GT(recorder.grants()[0].start, U / 5);
}

TEST(SettleTimingTest, CentralArbiterFallsBackToFixedOverhead)
{
    BusParams params = settleParams();
    params.arbitrationOverhead = 0.5;
    EventQueue queue;
    Bus bus(queue, std::make_unique<CentralRoundRobinProtocol>(), 4,
            params);
    test::ScheduleRecorder recorder;
    bus.setObserver(&recorder);
    queue.schedule(0, [&] { bus.postRequest(1); });
    queue.run();
    ASSERT_EQ(recorder.grants().size(), 1u);
    EXPECT_EQ(recorder.grants()[0].start, U / 2);
}

TEST(SettleTimingTest, ProtocolsReportPlausibleRoundCounts)
{
    // Drive each distributed protocol once and check the reported
    // settle rounds are within the synchronous-model bound (<= k).
    for (const char *key : {"rr1", "rr2", "rr3", "fcfs1", "fcfs2",
                            "hybrid", "fixed", "aap1", "aap2"}) {
        auto protocol = protocolByKey(key)();
        protocol->reset(10);
        Request req;
        req.agent = 7;
        req.seq = 1;
        protocol->requestPosted(req);
        Request req2;
        req2.agent = 3;
        req2.seq = 2;
        protocol->requestPosted(req2);
        protocol->beginPass(0);
        const int rounds = protocol->settleRoundsForPass();
        EXPECT_GE(rounds, 0) << key;
        EXPECT_LE(rounds, 16) << key;
        protocol->completePass(0);
    }
}

TEST(SettleTimingTest, CentralProtocolsReportNoSignalModel)
{
    for (const char *key : {"central-rr", "central-fcfs", "ticket"}) {
        auto protocol = protocolByKey(key)();
        protocol->reset(4);
        EXPECT_EQ(protocol->settleRoundsForPass(), -1) << key;
    }
}

TEST(SettleTimingTest, FcfsPaysMoreArbitrationTimeThanRr)
{
    // The paper, Section 3.2: FCFS's wider identities make arbitration
    // slower than RR's. On a synchronous bus (worst-case budget of
    // ceil(k/2) propagations), FCFS with k = 8 lines must see larger
    // mean waits at low load than RR impl 1 with k = 5.
    ScenarioConfig config = equalLoadScenario(10, 0.5, 1.0);
    config.bus = settleParams();
    config.bus.settleMode = BusParams::SettleMode::kWorstCase;
    config.numBatches = 5;
    config.batchSize = 1200;
    config.warmup = 1200;
    const auto rr = runScenario(config, protocolByKey("rr1"));
    const auto fcfs = runScenario(config, protocolByKey("fcfs1"));
    EXPECT_GT(fcfs.meanWait().value, rr.meanWait().value + 0.02);
}

TEST(SettleTimingTest, WorstCaseBudgetMatchesLineCount)
{
    // RR impl 1 on 10 agents: k = 5 lines -> 4 + ceil(5/2) = 7 rounds.
    BusParams params = settleParams();
    params.settleMode = BusParams::SettleMode::kWorstCase;
    EventQueue queue;
    Bus bus(queue, std::make_unique<RoundRobinProtocol>(), 10, params);
    test::ScheduleRecorder recorder;
    bus.setObserver(&recorder);
    queue.schedule(0, [&] { bus.postRequest(1); });
    queue.run();
    ASSERT_EQ(recorder.grants().size(), 1u);
    EXPECT_EQ(recorder.grants()[0].start, unitsToTicks(0.05) * 7);
}

TEST(SettleTimingTest, WholeStackStillConservesWork)
{
    ScenarioConfig config = equalLoadScenario(8, 2.0, 1.0);
    config.bus = settleParams();
    config.numBatches = 4;
    config.batchSize = 1000;
    config.warmup = 1000;
    for (const char *key : {"rr1", "fcfs2", "aap1"}) {
        const auto result = runScenario(config, protocolByKey(key));
        EXPECT_NEAR(result.utilization().value, 1.0, 5e-3) << key;
    }
    // The fair protocols stay fair under settle timing (AAP-1 is
    // inherently unfair regardless of the timing model).
    for (const char *key : {"rr1", "fcfs2"}) {
        const auto result = runScenario(config, protocolByKey(key));
        EXPECT_NEAR(result.throughputRatio(8, 1).value, 1.0, 0.15)
            << key;
    }
}

} // namespace
} // namespace busarb
