/**
 * @file
 * Unit and property tests for the inter-request time distributions.
 */

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "random/distributions.hh"
#include "stats/welford.hh"

namespace busarb {
namespace {

/** Sample `n` values and return running statistics. */
RunningStats
sampleStats(const Distribution &d, int n, std::uint64_t seed = 1234)
{
    Rng rng(seed);
    RunningStats rs;
    for (int i = 0; i < n; ++i)
        rs.add(d.sample(rng));
    return rs;
}

TEST(DeterministicTest, AlwaysReturnsValue)
{
    DeterministicDistribution d(3.25);
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(d.sample(rng), 3.25);
    EXPECT_DOUBLE_EQ(d.mean(), 3.25);
    EXPECT_DOUBLE_EQ(d.cv(), 0.0);
}

TEST(DeterministicTest, ZeroIsAllowed)
{
    DeterministicDistribution d(0.0);
    Rng rng(1);
    EXPECT_DOUBLE_EQ(d.sample(rng), 0.0);
}

TEST(ExponentialTest, MeanAndCvMatch)
{
    ExponentialDistribution d(2.5);
    const auto rs = sampleStats(d, 400000);
    EXPECT_NEAR(rs.mean(), 2.5, 0.02);
    EXPECT_NEAR(rs.stddev() / rs.mean(), 1.0, 0.02);
    EXPECT_DOUBLE_EQ(d.cv(), 1.0);
}

TEST(ExponentialTest, SamplesAreNonNegative)
{
    ExponentialDistribution d(1.0);
    Rng rng(5);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(d.sample(rng), 0.0);
}

struct ErlangCase
{
    int stages;
    double mean;
};

class ErlangParamTest : public ::testing::TestWithParam<ErlangCase>
{
};

TEST_P(ErlangParamTest, MeanAndCvMatchTheory)
{
    const auto param = GetParam();
    ErlangDistribution d(param.stages, param.mean);
    const auto rs = sampleStats(d, 300000);
    EXPECT_NEAR(rs.mean(), param.mean, 0.02 * param.mean);
    const double expected_cv = 1.0 / std::sqrt(param.stages);
    EXPECT_NEAR(rs.stddev() / rs.mean(), expected_cv, 0.03);
    EXPECT_DOUBLE_EQ(d.cv(), expected_cv);
}

INSTANTIATE_TEST_SUITE_P(Stages, ErlangParamTest,
                         ::testing::Values(ErlangCase{1, 1.0},
                                           ErlangCase{4, 2.0},
                                           ErlangCase{9, 6.4},
                                           ErlangCase{16, 0.5},
                                           ErlangCase{100, 9.5}));

TEST(ErlangTest, OneStageEqualsExponentialInDistribution)
{
    ErlangDistribution e1(1, 3.0);
    const auto rs = sampleStats(e1, 300000);
    EXPECT_NEAR(rs.stddev() / rs.mean(), 1.0, 0.02);
}

TEST(HyperExponentialTest, MeanAndCvMatch)
{
    HyperExponentialDistribution d(2.0, 2.5);
    const auto rs = sampleStats(d, 600000);
    EXPECT_NEAR(rs.mean(), 2.0, 0.05);
    EXPECT_NEAR(rs.stddev() / rs.mean(), 2.5, 0.1);
}

class FactoryCvTest : public ::testing::TestWithParam<double>
{
};

TEST_P(FactoryCvTest, RealizedCvTracksRequestedCv)
{
    // The paper's CV axis for Table 4.5: the factory must realize each of
    // these to the nearest achievable Erlang CV.
    const double cv = GetParam();
    const auto d = makeDistributionByCv(5.0, cv);
    const auto rs = sampleStats(*d, 300000);
    EXPECT_NEAR(rs.mean(), 5.0, 0.1);
    const double realized =
        rs.count() > 1 ? rs.stddev() / rs.mean() : 0.0;
    // Erlang quantization: k = round(1/cv^2) gives cv' = 1/sqrt(k).
    EXPECT_NEAR(realized, d->cv(), 0.03);
    EXPECT_NEAR(d->cv(), cv, cv * 0.15 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(PaperCvValues, FactoryCvTest,
                         ::testing::Values(0.0, 0.10, 0.25, 0.33, 0.50,
                                           1.0));

TEST(FactoryTest, SelectsExpectedTypes)
{
    EXPECT_NE(dynamic_cast<DeterministicDistribution *>(
                  makeDistributionByCv(1.0, 0.0).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<ExponentialDistribution *>(
                  makeDistributionByCv(1.0, 1.0).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<ErlangDistribution *>(
                  makeDistributionByCv(1.0, 0.5).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<HyperExponentialDistribution *>(
                  makeDistributionByCv(1.0, 2.0).get()),
              nullptr);
}

TEST(FactoryTest, ErlangStageCountFromCv)
{
    const auto d = makeDistributionByCv(1.0, 0.5);
    const auto *erlang = dynamic_cast<ErlangDistribution *>(d.get());
    ASSERT_NE(erlang, nullptr);
    EXPECT_EQ(erlang->stages(), 4);

    const auto d2 = makeDistributionByCv(1.0, 0.25);
    const auto *erlang2 = dynamic_cast<ErlangDistribution *>(d2.get());
    ASSERT_NE(erlang2, nullptr);
    EXPECT_EQ(erlang2->stages(), 16);
}

TEST(FactoryTest, ZeroMeanIsDeterministicZero)
{
    const auto d = makeDistributionByCv(0.0, 1.0);
    Rng rng(1);
    EXPECT_DOUBLE_EQ(d->sample(rng), 0.0);
}

TEST(CloneTest, ClonesAreEquivalent)
{
    const auto original = makeDistributionByCv(2.0, 0.33);
    const auto copy = original->clone();
    EXPECT_EQ(original->describe(), copy->describe());
    EXPECT_DOUBLE_EQ(original->mean(), copy->mean());
    EXPECT_DOUBLE_EQ(original->cv(), copy->cv());
}

TEST(DescribeTest, NamesAreInformative)
{
    EXPECT_NE(makeDistributionByCv(1.0, 0.0)->describe().find(
                  "Deterministic"),
              std::string::npos);
    EXPECT_NE(makeDistributionByCv(1.0, 1.0)->describe().find(
                  "Exponential"),
              std::string::npos);
    EXPECT_NE(makeDistributionByCv(1.0, 0.5)->describe().find("Erlang"),
              std::string::npos);
}

TEST(QuantileTest, ExponentialMedianAndTail)
{
    // Median = ln(2) * mean; P(X > 3 * mean) = e^-3.
    ExponentialDistribution d(2.0);
    Rng rng(55);
    const int n = 200000;
    int below_median = 0;
    int above_tail = 0;
    for (int i = 0; i < n; ++i) {
        const double x = d.sample(rng);
        if (x <= 2.0 * std::log(2.0))
            ++below_median;
        if (x > 6.0)
            ++above_tail;
    }
    EXPECT_NEAR(static_cast<double>(below_median) / n, 0.5, 0.01);
    EXPECT_NEAR(static_cast<double>(above_tail) / n, std::exp(-3.0),
                0.003);
}

TEST(QuantileTest, ErlangConcentratesAroundTheMean)
{
    // Erlang-16 with mean 4: P(|X - 4| < 2) should be large (~95%),
    // unlike the exponential with the same mean (~47%).
    ErlangDistribution erlang(16, 4.0);
    ExponentialDistribution expo(4.0);
    Rng rng(66);
    const int n = 100000;
    int erlang_close = 0;
    int expo_close = 0;
    for (int i = 0; i < n; ++i) {
        if (std::abs(erlang.sample(rng) - 4.0) < 2.0)
            ++erlang_close;
        if (std::abs(expo.sample(rng) - 4.0) < 2.0)
            ++expo_close;
    }
    EXPECT_GT(static_cast<double>(erlang_close) / n, 0.90);
    EXPECT_LT(static_cast<double>(expo_close) / n, 0.55);
}

TEST(QuantileTest, HyperExponentialHasAHeavyTail)
{
    // Same mean as the exponential but far more mass beyond 5x mean.
    HyperExponentialDistribution h2(1.0, 3.0);
    ExponentialDistribution expo(1.0);
    Rng rng(77);
    const int n = 200000;
    int h2_tail = 0;
    int expo_tail = 0;
    for (int i = 0; i < n; ++i) {
        if (h2.sample(rng) > 5.0)
            ++h2_tail;
        if (expo.sample(rng) > 5.0)
            ++expo_tail;
    }
    EXPECT_GT(h2_tail, 3 * expo_tail);
}

TEST(ParetoTest, SampleMeanMatchesForFiniteVarianceTail)
{
    // alpha = 3: finite variance, so the sample mean converges fast.
    ParetoDistribution d(2.0, 3.0);
    const auto rs = sampleStats(d, 400000);
    EXPECT_NEAR(rs.mean(), 2.0, 0.03);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
    EXPECT_NEAR(d.cv(), 1.0 / std::sqrt(3.0), 1e-12);
}

TEST(ParetoTest, SamplesNeverFallBelowScale)
{
    // X = x_m * U^(-1/alpha) >= x_m = mean * (alpha - 1) / alpha.
    ParetoDistribution d(1.0, 1.5);
    const double x_m = 1.0 * 0.5 / 1.5;
    Rng rng(31);
    for (int i = 0; i < 100000; ++i)
        EXPECT_GE(d.sample(rng), x_m);
}

TEST(ParetoTest, InfiniteVarianceRegimeIsHeavierThanExponential)
{
    // alpha in (1, 2] has infinite variance: far more tail mass than
    // an exponential with the same mean.
    ParetoDistribution pareto(1.0, 1.5);
    ExponentialDistribution expo(1.0);
    EXPECT_TRUE(std::isinf(pareto.cv()));
    Rng rng(88);
    const int n = 200000;
    int pareto_tail = 0;
    int expo_tail = 0;
    for (int i = 0; i < n; ++i) {
        if (pareto.sample(rng) > 8.0)
            ++pareto_tail;
        if (expo.sample(rng) > 8.0)
            ++expo_tail;
    }
    EXPECT_GT(pareto_tail, 3 * expo_tail);
}

TEST(DistributionDeathTest, InvalidParametersPanic)
{
    EXPECT_DEATH(DeterministicDistribution(-1.0), "negative");
    EXPECT_DEATH(ExponentialDistribution(0.0), "non-positive");
    EXPECT_DEATH(ErlangDistribution(0, 1.0), "stage count");
    EXPECT_DEATH(ErlangDistribution(3, -2.0), "non-positive");
    EXPECT_DEATH(ParetoDistribution(0.0, 1.5), "non-positive");
    EXPECT_DEATH(ParetoDistribution(1.0, 1.0), "tail index");
}

} // namespace
} // namespace busarb
