/**
 * @file
 * Unit tests for the xoshiro256++ generator.
 */

#include <set>

#include <gtest/gtest.h>

#include "random/rng.hh"

namespace busarb {
namespace {

TEST(RngTest, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(RngTest, ZeroSeedIsUsable)
{
    Rng r(0);
    std::set<std::uint64_t> values;
    for (int i = 0; i < 32; ++i)
        values.insert(r.next());
    EXPECT_GT(values.size(), 30u); // not stuck
}

TEST(RngTest, UniformInHalfOpenUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformMeanIsOneHalf)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, UniformPositiveNeverReturnsZero)
{
    Rng r(13);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(r.uniformPositive(), 0.0);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng r(17);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(10), 10u);
}

TEST(RngTest, BelowIsRoughlyUniform)
{
    Rng r(19);
    int counts[8] = {};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++counts[r.below(8)];
    for (int c : counts) {
        EXPECT_NEAR(static_cast<double>(c), n / 8.0, 0.05 * n / 8.0);
    }
}

TEST(RngDeathTest, BelowZeroBoundPanics)
{
    Rng r(23);
    EXPECT_DEATH(r.below(0), "positive bound");
}

TEST(RngTest, ForkedStreamsAreIndependent)
{
    Rng base(99);
    Rng s1 = base.fork(1);
    Rng s2 = base.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (s1.next() == s2.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsDeterministic)
{
    Rng base(99);
    Rng a = base.fork(5);
    Rng b = base.fork(5);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, ForkDoesNotPerturbParent)
{
    Rng a(3), b(3);
    (void)a.fork(1);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, KnownRegressionStream)
{
    // Pins the generator's output so expected values elsewhere in the
    // test suite stay portable across platforms and library versions.
    Rng r(123456789);
    const std::uint64_t first = r.next();
    Rng r2(123456789);
    EXPECT_EQ(first, r2.next());
    EXPECT_NE(first, r2.next());
}

} // namespace
} // namespace busarb
