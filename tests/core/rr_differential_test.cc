/**
 * @file
 * Differential tests: all three RR implementations against a trivial
 * cyclic-scan oracle.
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/round_robin.hh"
#include "random/rng.hh"
#include "support/protocol_driver.hh"

namespace busarb {
namespace {

using test::ProtocolDriver;

/**
 * Oracle: true round-robin. After serving j, scan j-1..1 then N..j and
 * serve the first requester found.
 */
class RrOracle
{
  public:
    explicit RrOracle(int n)
        : n_(n), pending_(static_cast<std::size_t>(n) + 1, false)
    {
    }

    void post(AgentId a) { pending_[static_cast<std::size_t>(a)] = true; }

    AgentId
    serveNext()
    {
        const AgentId pivot = (last_ == 0) ? n_ + 1 : last_;
        // Scan pivot-1 .. 1.
        for (AgentId a = pivot - 1; a >= 1; --a) {
            if (pending_[static_cast<std::size_t>(a)])
                return take(a);
        }
        // Then N .. pivot.
        for (AgentId a = n_; a >= pivot; --a) {
            if (a <= n_ && pending_[static_cast<std::size_t>(a)])
                return take(a);
        }
        return kNoAgent;
    }

  private:
    AgentId
    take(AgentId a)
    {
        pending_[static_cast<std::size_t>(a)] = false;
        last_ = a;
        return a;
    }

    int n_;
    AgentId last_ = 0;
    std::vector<bool> pending_;
};

class RrDifferentialTest
    : public ::testing::TestWithParam<RrImplementation>
{
};

TEST_P(RrDifferentialTest, MatchesCyclicScanOracle)
{
    Rng rng(0xCAFE + static_cast<std::uint64_t>(GetParam()));
    for (int trial = 0; trial < 25; ++trial) {
        const int n = 2 + static_cast<int>(rng.below(14));
        RrConfig config;
        config.impl = GetParam();
        RoundRobinProtocol protocol(config);
        ProtocolDriver driver(protocol, n);
        RrOracle oracle(n);
        std::vector<bool> outstanding(static_cast<std::size_t>(n) + 1,
                                      false);
        int pending = 0;
        Tick now = 0;
        for (int step = 0; step < 400; ++step) {
            ++now;
            if (rng.below(100) < 55) {
                const AgentId a = 1 + static_cast<AgentId>(rng.below(
                                        static_cast<std::uint64_t>(n)));
                if (!outstanding[static_cast<std::size_t>(a)]) {
                    outstanding[static_cast<std::size_t>(a)] = true;
                    driver.post(a, now);
                    oracle.post(a);
                    ++pending;
                }
            }
            if (pending > 0 && rng.below(100) < 45) {
                const AgentId got = driver.arbitrateAndServe(now);
                const AgentId want = oracle.serveNext();
                ASSERT_EQ(got, want)
                    << "impl " << static_cast<int>(GetParam())
                    << " trial " << trial << " step " << step;
                outstanding[static_cast<std::size_t>(got)] = false;
                --pending;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllImplementations, RrDifferentialTest,
    ::testing::Values(RrImplementation::kPriorityBit,
                      RrImplementation::kLowRequestLine,
                      RrImplementation::kNoExtraLine));

} // namespace
} // namespace busarb
