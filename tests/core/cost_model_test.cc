/**
 * @file
 * Tests for the wiring cost model.
 */

#include <gtest/gtest.h>

#include "core/cost_model.hh"

namespace busarb {
namespace {

TEST(CostModelTest, FixedPriorityBaseline)
{
    // 10 agents -> k = 4: 4 arbitration lines + the request line.
    const auto cost = fixedPriorityCost(10, LineEncoding::kFull);
    EXPECT_EQ(cost.arbitrationLines, 4);
    EXPECT_EQ(cost.broadcastLines, 0);
    EXPECT_EQ(cost.controlLines, 1);
    EXPECT_EQ(cost.totalLines(), 5);
    EXPECT_DOUBLE_EQ(cost.arbitrationPropagations, 2.0); // k/2
}

TEST(CostModelTest, PatternedLinesCutTheDelay)
{
    const auto cost = fixedPriorityCost(30, LineEncoding::kBinaryPatterned);
    EXPECT_EQ(cost.arbitrationLines, 5);
    EXPECT_DOUBLE_EQ(cost.arbitrationPropagations, 1.0);
}

TEST(CostModelTest, AapCostsMatchFixedPriority)
{
    for (auto enc :
         {LineEncoding::kFull, LineEncoding::kBinaryPatterned}) {
        const auto aap = assuredAccessCost(30, enc);
        const auto fixed = fixedPriorityCost(30, enc);
        EXPECT_EQ(aap.totalLines(), fixed.totalLines());
        EXPECT_DOUBLE_EQ(aap.arbitrationPropagations,
                         fixed.arbitrationPropagations);
    }
}

TEST(CostModelTest, RrImplementationsDifferByOneLine)
{
    RrConfig impl1;
    impl1.impl = RrImplementation::kPriorityBit;
    RrConfig impl2;
    impl2.impl = RrImplementation::kLowRequestLine;
    RrConfig impl3;
    impl3.impl = RrImplementation::kNoExtraLine;
    const auto c1 = roundRobinCost(10, impl1, LineEncoding::kFull);
    const auto c2 = roundRobinCost(10, impl2, LineEncoding::kFull);
    const auto c3 = roundRobinCost(10, impl3, LineEncoding::kFull);
    // impl 1: 5 arb + 1 control; impl 2: 4 arb + 2 control;
    // impl 3: 4 arb + 1 control.
    EXPECT_EQ(c1.totalLines(), 6);
    EXPECT_EQ(c2.totalLines(), 6);
    EXPECT_EQ(c3.totalLines(), 5);
    // impl 1 arbitrates over one more line than impl 2.
    EXPECT_GT(c1.arbitrationPropagations, c2.arbitrationPropagations);
}

TEST(CostModelTest, RrWithPatternedLinesNeedsWinnerBroadcast)
{
    // Paper footnote 2: binary-patterned lines cannot be used easily
    // for RR; broadcasting the winner costs k extra lines.
    RrConfig config;
    const auto full = roundRobinCost(10, config, LineEncoding::kFull);
    const auto patterned =
        roundRobinCost(10, config, LineEncoding::kBinaryPatterned);
    EXPECT_EQ(full.broadcastLines, 0);
    EXPECT_EQ(patterned.broadcastLines, 4);
    EXPECT_GT(patterned.totalLines(), full.totalLines());
    EXPECT_LT(patterned.arbitrationPropagations,
              full.arbitrationPropagations + 1.0);
}

TEST(CostModelTest, FcfsDoublesTheIdentityWidth)
{
    // Section 3.2: "at most we need to double the size of the
    // identities".
    FcfsConfig config;
    const auto cost = fcfsCost(10, config, LineEncoding::kFull);
    EXPECT_EQ(cost.arbitrationLines, 8); // 4 id + 4 counter
    EXPECT_DOUBLE_EQ(cost.arbitrationPropagations, 4.0);
    const auto fixed = fixedPriorityCost(10, LineEncoding::kFull);
    EXPECT_EQ(cost.arbitrationLines, 2 * fixed.arbitrationLines);
}

TEST(CostModelTest, PatternedStaticPartRecoversFcfsOverhead)
{
    // Paper footnote 3: patterned static lines make FCFS's arbitration
    // delay nearly identical to RR's.
    FcfsConfig config;
    const auto patterned =
        fcfsCost(10, config, LineEncoding::kBinaryPatterned);
    RrConfig rr;
    const auto rr_full = roundRobinCost(10, rr, LineEncoding::kFull);
    EXPECT_DOUBLE_EQ(patterned.arbitrationPropagations, 3.0); // 4/2 + 1
    EXPECT_NEAR(patterned.arbitrationPropagations,
                rr_full.arbitrationPropagations, 0.5);
}

TEST(CostModelTest, FcfsControlLinesByStrategy)
{
    FcfsConfig strategy1;
    strategy1.strategy = FcfsStrategy::kIncrementOnLose;
    EXPECT_EQ(fcfsCost(10, strategy1, LineEncoding::kFull).controlLines,
              1);
    FcfsConfig strategy2;
    strategy2.strategy = FcfsStrategy::kIncrLine;
    EXPECT_EQ(fcfsCost(10, strategy2, LineEncoding::kFull).controlLines,
              2);
    FcfsConfig dual = strategy2;
    dual.enablePriority = true;
    dual.priorityCounting = PriorityCounting::kDualIncrLines;
    const auto dual_cost = fcfsCost(10, dual, LineEncoding::kFull);
    EXPECT_EQ(dual_cost.controlLines, 3);
    EXPECT_EQ(dual_cost.arbitrationLines, 9); // + priority bit
}

TEST(CostModelTest, MultipleOutstandingAddsCounterBits)
{
    // Section 3.2: r = 8 outstanding -> 3 more counter lines.
    FcfsConfig base;
    FcfsConfig multi;
    multi.maxOutstandingHint = 8;
    const auto c_base = fcfsCost(10, base, LineEncoding::kFull);
    const auto c_multi = fcfsCost(10, multi, LineEncoding::kFull);
    EXPECT_EQ(c_multi.arbitrationLines - c_base.arbitrationLines, 3);
}

TEST(CostModelTest, DescribeIsReadable)
{
    const auto cost = roundRobinCost(10, RrConfig{},
                                     LineEncoding::kBinaryPatterned);
    const std::string text = describeCost(cost);
    EXPECT_NE(text.find("broadcast"), std::string::npos);
    EXPECT_NE(text.find("lines"), std::string::npos);
}

} // namespace
} // namespace busarb
