/**
 * @file
 * Differential tests: the distributed FCFS protocol against an oracle
 * that sorts requests by (pulse epoch, static identity) — the order the
 * hardware is specified to produce (Section 3.2).
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/fcfs.hh"
#include "random/rng.hh"
#include "support/protocol_driver.hh"

namespace busarb {
namespace {

using test::ProtocolDriver;

/** A request the oracle tracks. */
struct OracleRequest
{
    AgentId agent;
    Tick issued;
    std::uint64_t epoch;
};

/**
 * Oracle for FCFS implementation 2: arrival epochs (pulse windows)
 * ordered ascending; ties within an epoch by descending identity.
 */
class IncrLineOracle
{
  public:
    explicit IncrLineOracle(Tick window) : window_(window) {}

    void
    post(AgentId agent, Tick now)
    {
        if (!any_ || now - lastPulse_ >= window_) {
            ++epoch_;
            lastPulse_ = now;
            any_ = true;
        }
        pending_.push_back(OracleRequest{agent, now, epoch_});
    }

    AgentId
    serveNext()
    {
        auto best = pending_.begin();
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            if (it->epoch < best->epoch ||
                (it->epoch == best->epoch && it->agent > best->agent)) {
                best = it;
            }
        }
        const AgentId agent = best->agent;
        pending_.erase(best);
        return agent;
    }

    bool empty() const { return pending_.empty(); }

  private:
    Tick window_;
    Tick lastPulse_ = 0;
    bool any_ = false;
    std::uint64_t epoch_ = 0;
    std::vector<OracleRequest> pending_;
};

TEST(FcfsDifferentialTest, IncrLineMatchesEpochOracle)
{
    Rng rng(0xD1FF);
    for (int trial = 0; trial < 25; ++trial) {
        const int n = 3 + static_cast<int>(rng.below(10));
        const Tick window = unitsToTicks(0.05);
        FcfsConfig config;
        config.strategy = FcfsStrategy::kIncrLine;
        config.incrWindow = 0.05;
        FcfsProtocol protocol(config);
        ProtocolDriver driver(protocol, n);
        IncrLineOracle oracle(window);

        // Random bursts of arrivals (single-outstanding per agent),
        // interleaved with arbitrations.
        std::vector<bool> outstanding(static_cast<std::size_t>(n) + 1,
                                      false);
        Tick now = 0;
        int pending = 0;
        for (int step = 0; step < 300; ++step) {
            now += static_cast<Tick>(rng.below(unitsToTicks(0.4)));
            if (rng.below(100) < 55) {
                const AgentId a = 1 + static_cast<AgentId>(rng.below(
                                        static_cast<std::uint64_t>(n)));
                if (!outstanding[static_cast<std::size_t>(a)]) {
                    outstanding[static_cast<std::size_t>(a)] = true;
                    driver.post(a, now);
                    oracle.post(a, now);
                    ++pending;
                }
            }
            if (pending > 0 && rng.below(100) < 45) {
                const AgentId got = driver.arbitrateAndServe(now);
                const AgentId want = oracle.serveNext();
                ASSERT_EQ(got, want)
                    << "trial " << trial << " step " << step;
                outstanding[static_cast<std::size_t>(got)] = false;
                --pending;
            }
        }
        // Drain.
        while (pending > 0) {
            now += unitsToTicks(1.0);
            const AgentId got = driver.arbitrateAndServe(now);
            const AgentId want = oracle.serveNext();
            ASSERT_EQ(got, want) << "drain, trial " << trial;
            --pending;
        }
        EXPECT_TRUE(oracle.empty());
    }
}

TEST(FcfsDifferentialTest, CountersNeverExceedTheSingleOutstandingBound)
{
    // Section 3.2: with one outstanding request per agent, at most N
    // requests can be served while a request waits, so ceil(log2(N+1))
    // counter bits never overflow.
    Rng rng(0xB0B);
    const int n = 10;
    FcfsConfig config;
    config.strategy = FcfsStrategy::kIncrementOnLose;
    FcfsProtocol protocol(config);
    ProtocolDriver driver(protocol, n);
    std::vector<bool> outstanding(static_cast<std::size_t>(n) + 1, false);
    int pending = 0;
    Tick now = 0;
    for (int step = 0; step < 4000; ++step) {
        ++now;
        const AgentId a = 1 + static_cast<AgentId>(
                                rng.below(static_cast<std::uint64_t>(n)));
        if (!outstanding[static_cast<std::size_t>(a)]) {
            outstanding[static_cast<std::size_t>(a)] = true;
            driver.post(a, now);
            ++pending;
        }
        if (pending > 0 && rng.below(100) < 60) {
            const AgentId got = driver.arbitrateAndServe(now);
            outstanding[static_cast<std::size_t>(got)] = false;
            --pending;
        }
    }
    EXPECT_EQ(protocol.overflowEvents(), 0u);
}

} // namespace
} // namespace busarb
