/**
 * @file
 * Unit tests for the Section 5 hybrid protocol (FCFS with round-robin
 * tie-break among same-interval arrivals).
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/hybrid.hh"
#include "support/protocol_driver.hh"

namespace busarb {
namespace {

using test::ProtocolDriver;

TEST(HybridTest, FcfsAcrossIntervals)
{
    HybridProtocol protocol;
    ProtocolDriver driver(protocol, 8);
    driver.post(3, 0);
    driver.post(2, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 3); // tie -> higher id first
    driver.post(8, 2); // newer request
    // Agent 2 waited through one arbitration: counter 1 beats 8's 0.
    EXPECT_EQ(driver.arbitrateAndServe(3), 2);
    EXPECT_EQ(driver.arbitrateAndServe(4), 8);
}

TEST(HybridTest, TiesUseRoundRobinNotIdentity)
{
    HybridProtocol protocol;
    ProtocolDriver driver(protocol, 8);
    driver.post(5, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 5);
    // Simultaneous arrivals 4 and 7 (same interval): plain FCFS would
    // serve 7 first (identity). The hybrid's RR bit makes 4 (< last
    // winner 5) go first.
    driver.post(7, 2);
    driver.post(4, 2);
    EXPECT_EQ(driver.arbitrateAndServe(3), 4);
    EXPECT_EQ(driver.arbitrateAndServe(4), 7);
}

TEST(HybridTest, CounterStillDominatesRrBit)
{
    HybridProtocol protocol;
    ProtocolDriver driver(protocol, 8);
    driver.post(6, 0);
    driver.post(2, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 6);
    // Agent 2 has waited one arbitration; a fresh agent 3 with the RR
    // bit set cannot pass it.
    driver.post(3, 2);
    EXPECT_EQ(driver.arbitrateAndServe(3), 2);
    EXPECT_EQ(driver.arbitrateAndServe(4), 3);
}

TEST(HybridTest, RoundRobinCycleAmongSimultaneousArrivals)
{
    HybridProtocol protocol;
    ProtocolDriver driver(protocol, 5);
    for (AgentId a = 1; a <= 5; ++a)
        driver.post(a, 0);
    std::vector<AgentId> order;
    for (int i = 0; i < 5; ++i)
        order.push_back(driver.arbitrateAndServe(1 + i));
    // All five tie on the counter each round? No: after the first
    // arbitration the four losers carry counter 1 and stay ahead of
    // nobody new; among themselves the RR bit relative to the last
    // winner orders them. The result is the round-robin scan.
    EXPECT_EQ(order, (std::vector<AgentId>{5, 4, 3, 2, 1}));
}

TEST(HybridTest, RecordedWinnerTracksArbitrations)
{
    HybridProtocol protocol;
    ProtocolDriver driver(protocol, 4);
    EXPECT_EQ(protocol.recordedWinner(), 5);
    driver.post(1, 0);
    driver.arbitrateAndServe(1);
    EXPECT_EQ(protocol.recordedWinner(), 1);
}

TEST(HybridDeathTest, NoPrioritySupport)
{
    HybridProtocol protocol;
    ProtocolDriver driver(protocol, 4);
    EXPECT_DEATH(driver.post(1, 0, true), "priority");
}

} // namespace
} // namespace busarb
