/**
 * @file
 * Unit tests for the pending-request bookkeeping.
 */

#include <gtest/gtest.h>

#include "core/pending_requests.hh"

namespace busarb {
namespace {

Request
makeReq(AgentId agent, std::uint64_t seq, Tick issued = 0)
{
    Request r;
    r.agent = agent;
    r.seq = seq;
    r.issued = issued;
    return r;
}

TEST(PendingRequestsTest, StartsEmpty)
{
    PendingRequests p;
    p.reset(4);
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.size(), 0u);
    EXPECT_FALSE(p.hasAgent(1));
    EXPECT_EQ(p.numAgents(), 4);
}

TEST(PendingRequestsTest, AddAndPopOldest)
{
    PendingRequests p;
    p.reset(4);
    p.add(makeReq(2, 1));
    p.add(makeReq(2, 2));
    EXPECT_EQ(p.size(), 2u);
    EXPECT_TRUE(p.hasAgent(2));
    EXPECT_EQ(p.oldest(2).req.seq, 1u);
    const Request popped = p.popOldest(2);
    EXPECT_EQ(popped.seq, 1u);
    EXPECT_EQ(p.oldest(2).req.seq, 2u);
    p.popOldest(2);
    EXPECT_TRUE(p.empty());
}

TEST(PendingRequestsTest, FindAndPopBySeq)
{
    PendingRequests p;
    p.reset(4);
    p.add(makeReq(1, 10));
    p.add(makeReq(1, 11));
    p.add(makeReq(1, 12));
    ASSERT_NE(p.findBySeq(1, 11), nullptr);
    EXPECT_EQ(p.findBySeq(1, 11)->req.seq, 11u);
    EXPECT_EQ(p.findBySeq(1, 99), nullptr);
    const Request popped = p.popBySeq(1, 11);
    EXPECT_EQ(popped.seq, 11u);
    EXPECT_EQ(p.size(), 2u);
    EXPECT_EQ(p.oldest(1).req.seq, 10u);
    EXPECT_EQ(p.findBySeq(1, 11), nullptr);
}

TEST(PendingRequestsTest, EntriesKeepDynamicState)
{
    PendingRequests p;
    p.reset(2);
    PendingEntry &e = p.add(makeReq(1, 1));
    e.counter = 42;
    e.epoch = 7;
    e.inPass = true;
    EXPECT_EQ(p.oldest(1).counter, 42u);
    EXPECT_EQ(p.oldest(1).epoch, 7u);
    EXPECT_TRUE(p.oldest(1).inPass);
}

TEST(PendingRequestsTest, ForEachVisitsAll)
{
    PendingRequests p;
    p.reset(3);
    p.add(makeReq(1, 1));
    p.add(makeReq(3, 2));
    p.add(makeReq(3, 3));
    int visits = 0;
    p.forEach([&](PendingEntry &) { ++visits; });
    EXPECT_EQ(visits, 3);
}

TEST(PendingRequestsTest, ForEachAgentOldestVisitsFronts)
{
    PendingRequests p;
    p.reset(3);
    p.add(makeReq(2, 1));
    p.add(makeReq(2, 2));
    p.add(makeReq(3, 3));
    std::vector<std::uint64_t> seqs;
    p.forEachAgentOldest(
        [&](PendingEntry &e) { seqs.push_back(e.req.seq); });
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 3}));
}

TEST(PendingRequestsTest, AgentsWithRequests)
{
    PendingRequests p;
    p.reset(5);
    p.add(makeReq(4, 1));
    p.add(makeReq(2, 2));
    EXPECT_EQ(p.agentsWithRequests(), (std::vector<AgentId>{2, 4}));
}

TEST(PendingRequestsTest, ResetClears)
{
    PendingRequests p;
    p.reset(2);
    p.add(makeReq(1, 1));
    p.reset(3);
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.numAgents(), 3);
}

TEST(PendingRequestsDeathTest, InvalidOperations)
{
    PendingRequests p;
    p.reset(2);
    EXPECT_DEATH(p.add(makeReq(3, 1)), "out of range");
    EXPECT_DEATH(p.oldest(1), "no pending request");
    EXPECT_DEATH(p.popOldest(1), "no pending request");
    p.add(makeReq(1, 5));
    EXPECT_DEATH(p.popBySeq(1, 6), "not pending");
}

} // namespace
} // namespace busarb
