/**
 * @file
 * Unit, schedule, and differential tests for the weighted round-robin
 * protocol (RR implementation 1 plus a claim line carrying burst
 * credits).
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/round_robin.hh"
#include "core/weighted_round_robin.hh"
#include "random/rng.hh"
#include "support/protocol_driver.hh"

namespace busarb {
namespace {

using test::ProtocolDriver;

WrrConfig
weightsOf(std::vector<int> weights)
{
    WrrConfig c;
    c.weights = std::move(weights);
    return c;
}

TEST(WeightedRoundRobinTest, FirstArbitrationHighestIdentityWins)
{
    WeightedRoundRobinProtocol protocol(weightsOf({1, 1, 1, 1, 1, 1, 1, 1}));
    ProtocolDriver driver(protocol, 8);
    driver.post(3, 0);
    driver.post(7, 0);
    driver.post(5, 0);
    EXPECT_EQ(driver.arbitrateAndServe(10), 7);
}

TEST(WeightedRoundRobinTest, BurstCreditsGrantConsecutiveWins)
{
    // Weights {2,1,1}, every agent saturated with 4 queued requests.
    // Worked schedule: the RR scan serves 3, 2, then 1 — and agent 1,
    // holding weight 2, immediately claims one extra win before the
    // scan resumes. Each 4-pass period is 3, 2, 1, 1.
    WeightedRoundRobinProtocol protocol(weightsOf({2, 1, 1}));
    ProtocolDriver driver(protocol, 3);
    for (AgentId a = 1; a <= 3; ++a)
        for (int i = 0; i < 4; ++i)
            driver.post(a, 0);
    std::vector<AgentId> order;
    for (int i = 0; i < 12; ++i)
        order.push_back(driver.arbitrateAndServe(10 + i));
    EXPECT_EQ(order, (std::vector<AgentId>{3, 2, 1, 1, 3, 2, 1, 1,
                                           3, 2, 3, 2}));
}

TEST(WeightedRoundRobinTest, CreditsExpireWithoutBackToBackRequests)
{
    // A weight only matters while its holder keeps a request pending:
    // if the winner does not compete in the following pass its claim
    // line stays idle, and the ordinary RR order proceeds.
    WeightedRoundRobinProtocol protocol(weightsOf({4, 1, 1}));
    ProtocolDriver driver(protocol, 3);
    driver.post(1, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 1);
    EXPECT_EQ(protocol.credits(), 3);
    // Agents 2 and 3 request; agent 1 does not. The claim never
    // asserts, so the scan serves 3 then 2 as plain RR would.
    driver.post(2, 2);
    driver.post(3, 2);
    EXPECT_EQ(driver.arbitrateAndServe(3), 3);
    EXPECT_EQ(driver.arbitrateAndServe(4), 2);
}

TEST(WeightedRoundRobinTest, SingleWeightBroadcastsToAllAgents)
{
    WeightedRoundRobinProtocol protocol(weightsOf({3}));
    protocol.reset(5);
    for (AgentId a = 1; a <= 5; ++a)
        EXPECT_EQ(protocol.weightOf(a), 3);
}

TEST(WeightedRoundRobinTest, UnitWeightsMatchRoundRobinImplOne)
{
    // With all weights 1 the claim line never asserts, so the schedule
    // must be exactly RR implementation 1's under any request pattern.
    WeightedRoundRobinProtocol wrr(weightsOf({}));
    RrConfig rr_config;
    rr_config.impl = RrImplementation::kPriorityBit;
    RoundRobinProtocol rr(rr_config);

    const int agents = 6;
    ProtocolDriver wrr_driver(wrr, agents);
    ProtocolDriver rr_driver(rr, agents);

    Rng rng(0xd1ffu);
    Tick now = 0;
    for (int step = 0; step < 500; ++step) {
        ++now;
        const AgentId a = static_cast<AgentId>(1 + rng.below(agents));
        wrr_driver.post(a, now);
        rr_driver.post(a, now);
        if (step % 3 == 0) {
            ++now;
            EXPECT_EQ(wrr_driver.arbitrateAndServe(now),
                      rr_driver.arbitrateAndServe(now));
        }
    }
}

TEST(WeightedRoundRobinTest, ExtraClaimLineInWordWidth)
{
    WeightedRoundRobinProtocol wrr;
    wrr.reset(8); // 3 identity bits
    RoundRobinProtocol rr;
    rr.reset(8);
    EXPECT_EQ(wrr.arbitrationLineCount(), rr.arbitrationLineCount() + 1);
}

TEST(WeightedRoundRobinDeathTest, RejectsNonPositiveWeights)
{
    EXPECT_DEATH(WeightedRoundRobinProtocol{weightsOf({2, 0, 1})},
                 "weights must be >= 1");
}

TEST(WeightedRoundRobinDeathTest, RejectsWeightCountMismatch)
{
    WeightedRoundRobinProtocol protocol(weightsOf({2, 1, 1}));
    EXPECT_DEATH(protocol.reset(4), "3 entries for 4 agents");
}

TEST(WeightedRoundRobinDeathTest, RejectsPriorityRequests)
{
    WeightedRoundRobinProtocol protocol;
    ProtocolDriver driver(protocol, 4);
    EXPECT_DEATH(driver.post(2, 0, true),
                 "does not support priority-class requests");
}

} // namespace
} // namespace busarb
