/**
 * @file
 * Unit and property tests for the distributed FCFS protocol
 * (both counter strategies of Section 3.2 and the extensions).
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/fcfs.hh"
#include "random/rng.hh"
#include "support/protocol_driver.hh"

namespace busarb {
namespace {

using test::ProtocolDriver;

FcfsConfig
configFor(FcfsStrategy strategy)
{
    FcfsConfig c;
    c.strategy = strategy;
    return c;
}

class FcfsStrategyTest : public ::testing::TestWithParam<FcfsStrategy>
{
};

TEST_P(FcfsStrategyTest, SimultaneousArrivalsServedByIdentity)
{
    FcfsProtocol protocol(configFor(GetParam()));
    ProtocolDriver driver(protocol, 8);
    driver.post(3, 0);
    driver.post(7, 0);
    driver.post(5, 0);
    // All tie on the counter: static identity order, highest first.
    EXPECT_EQ(driver.arbitrateAndServe(1), 7);
    EXPECT_EQ(driver.arbitrateAndServe(2), 5);
    EXPECT_EQ(driver.arbitrateAndServe(3), 3);
}

TEST_P(FcfsStrategyTest, SingleRequesterAlwaysWins)
{
    FcfsProtocol protocol(configFor(GetParam()));
    ProtocolDriver driver(protocol, 4);
    for (int i = 0; i < 3; ++i) {
        driver.post(1, i * 100);
        EXPECT_EQ(driver.arbitrateAndServe(i * 100 + 1), 1);
    }
}

TEST_P(FcfsStrategyTest, NoRequestsMeansIdle)
{
    FcfsProtocol protocol(configFor(GetParam()));
    ProtocolDriver driver(protocol, 4);
    EXPECT_EQ(driver.arbitrateAndServe(0), kNoAgent);
}

INSTANTIATE_TEST_SUITE_P(BothStrategies, FcfsStrategyTest,
                         ::testing::Values(FcfsStrategy::kIncrementOnLose,
                                           FcfsStrategy::kIncrLine));

TEST(FcfsLoseCounterTest, EarlierIntervalBeatsLaterDespiteLowerId)
{
    // Agent 1 requests, loses one arbitration (counter 1); agent 8
    // arrives afterwards (counter 0): agent 1 must win.
    FcfsProtocol protocol(configFor(FcfsStrategy::kIncrementOnLose));
    ProtocolDriver driver(protocol, 8);
    driver.post(4, 0);
    driver.post(1, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 4); // agent 1 loses, counter->1
    driver.post(8, 2);
    EXPECT_EQ(driver.arbitrateAndServe(3), 1);
    EXPECT_EQ(driver.arbitrateAndServe(4), 8);
}

TEST(FcfsLoseCounterTest, SameIntervalIsIdentityOrderNotArrivalOrder)
{
    // The strategy's known inaccuracy: two arrivals between the same two
    // arbitrations tie even though one came first.
    FcfsProtocol protocol(configFor(FcfsStrategy::kIncrementOnLose));
    ProtocolDriver driver(protocol, 8);
    driver.post(2, 0);  // arrives first
    driver.post(6, 50); // arrives second, same inter-arbitration interval
    EXPECT_EQ(driver.arbitrateAndServe(100), 6);
    EXPECT_EQ(protocol.tiedArrivals(), 1u);
}

TEST(FcfsIncrLineTest, ArrivalOrderRespectedAcrossPulseWindows)
{
    // With the a-incr line, arrivals in different pulse windows are
    // ordered correctly even within one inter-arbitration interval.
    FcfsConfig config = configFor(FcfsStrategy::kIncrLine);
    config.incrWindow = 0.01;
    FcfsProtocol protocol(config);
    ProtocolDriver driver(protocol, 8);
    driver.post(2, 0);
    driver.post(6, unitsToTicks(0.5)); // well past the pulse window
    EXPECT_EQ(driver.arbitrateAndServe(unitsToTicks(1.0)), 2);
    EXPECT_EQ(driver.arbitrateAndServe(unitsToTicks(2.0)), 6);
    EXPECT_EQ(protocol.tiedArrivals(), 0u);
}

TEST(FcfsIncrLineTest, ArrivalsWithinOnePulseWindowTie)
{
    FcfsConfig config = configFor(FcfsStrategy::kIncrLine);
    config.incrWindow = 0.05;
    FcfsProtocol protocol(config);
    ProtocolDriver driver(protocol, 8);
    driver.post(2, 0);
    driver.post(6, unitsToTicks(0.01)); // inside agent 2's pulse
    EXPECT_EQ(driver.arbitrateAndServe(unitsToTicks(1.0)), 6);
    EXPECT_EQ(protocol.tiedArrivals(), 1u);
}

TEST(FcfsIncrLineTest, BackToBackPulsesReopenTheWindow)
{
    FcfsConfig config = configFor(FcfsStrategy::kIncrLine);
    config.incrWindow = 0.05;
    FcfsProtocol protocol(config);
    ProtocolDriver driver(protocol, 8);
    driver.post(2, 0);
    driver.post(6, unitsToTicks(0.06)); // new pulse
    driver.post(7, unitsToTicks(0.07)); // inside agent 6's pulse
    EXPECT_EQ(driver.arbitrateAndServe(unitsToTicks(1)), 2);
    EXPECT_EQ(driver.arbitrateAndServe(unitsToTicks(2)), 7); // tie: id
    EXPECT_EQ(driver.arbitrateAndServe(unitsToTicks(3)), 6);
    EXPECT_EQ(protocol.tiedArrivals(), 1u);
}

TEST(FcfsOrderPropertyTest, WellSeparatedArrivalsServeInFcfsOrder)
{
    // Arrivals separated by more than the pulse window / one arbitration
    // interval must be served exactly in arrival order by both
    // strategies (arbitrating after each arrival).
    for (auto strategy :
         {FcfsStrategy::kIncrementOnLose, FcfsStrategy::kIncrLine}) {
        FcfsProtocol protocol(configFor(strategy));
        Rng rng(99);
        for (int trial = 0; trial < 20; ++trial) {
            ProtocolDriver driver(protocol, 10);
            // Post 6 requests from distinct agents at separated times,
            // with one arbitration between consecutive arrivals so the
            // lose-counter strategy can order them too.
            std::vector<AgentId> agents{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
            for (int i = 9; i > 0; --i)
                std::swap(agents[static_cast<std::size_t>(i)],
                          agents[rng.below(static_cast<std::uint64_t>(
                              i + 1))]);
            agents.resize(6);
            Tick now = 0;
            // A sacrificial long-lived competitor would distort the
            // order; instead interleave arrivals with arbitrations of a
            // growing queue and check the drain order afterwards.
            for (std::size_t i = 0; i < agents.size(); ++i) {
                now += unitsToTicks(1.0);
                driver.post(agents[i], now);
                // One arbitration between arrivals increments waiting
                // counters but do not serve (no service modeled): here we
                // must serve, so only check the final drain order below
                // for the requests still pending.
            }
            std::vector<AgentId> served;
            for (std::size_t i = 0; i < agents.size(); ++i) {
                now += unitsToTicks(1.0);
                served.push_back(driver.arbitrateAndServe(now));
            }
            // The lose-counter strategy ties all (no arbitration ran
            // between arrivals), so only check incr-line for exact
            // order; the tie case is covered elsewhere.
            if (strategy == FcfsStrategy::kIncrLine) {
                EXPECT_EQ(served, agents);
            }
        }
    }
}

TEST(FcfsCounterWidthTest, DefaultWidthMatchesPaper)
{
    FcfsProtocol protocol(configFor(FcfsStrategy::kIncrementOnLose));
    protocol.reset(10);
    EXPECT_EQ(protocol.counterBits(), 4); // ceil(log2(11))
    EXPECT_EQ(protocol.numLines(), 8);    // id 4 + counter 4

    FcfsConfig multi = configFor(FcfsStrategy::kIncrementOnLose);
    multi.maxOutstandingHint = 8;
    FcfsProtocol protocol8(multi);
    protocol8.reset(10);
    EXPECT_EQ(protocol8.counterBits(), 7); // + ceil(log2 8) = 3
}

TEST(FcfsCounterWidthTest, SaturationKeepsOldestGroupFirst)
{
    // 1-bit counter: counters clip to 1, so every request that has
    // waited at least one event ties; identity breaks the tie, but a
    // fresh request (counter 0) can never pass a waiting one.
    FcfsConfig config = configFor(FcfsStrategy::kIncrementOnLose);
    config.counterBits = 1;
    config.overflow = OverflowPolicy::kSaturate;
    FcfsProtocol protocol(config);
    ProtocolDriver driver(protocol, 8);
    driver.post(2, 0);
    driver.post(3, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 3); // 2 loses twice -> sat.
    driver.post(8, 2);
    EXPECT_EQ(driver.arbitrateAndServe(3), 2); // still ahead of 8
    EXPECT_EQ(driver.arbitrateAndServe(4), 8);
    EXPECT_GE(protocol.overflowEvents(), 0u);
}

TEST(FcfsCounterWidthTest, WrapCanInvertOrder)
{
    // 1-bit wrapping counter: after two losses the counter reads 0
    // again, letting a newer request with counter 1 overtake. This is
    // the overflow hazard the paper accepts for rare priority bursts.
    FcfsConfig config = configFor(FcfsStrategy::kIncrementOnLose);
    config.counterBits = 1;
    config.overflow = OverflowPolicy::kWrap;
    FcfsProtocol protocol(config);
    ProtocolDriver driver(protocol, 8);
    // Three requests; serve one per arbitration. Agent 2 loses twice:
    // raw counter 2 wraps to 0.
    driver.post(2, 0);
    driver.post(5, 0);
    driver.post(6, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 6);
    EXPECT_EQ(driver.arbitrateAndServe(2), 5);
    driver.post(7, 3); // fresh, counter 0 -> loses to nothing...
    // Agent 2 raw counter is 2 -> wrapped 0; tie with agent 7: id wins.
    EXPECT_EQ(driver.arbitrateAndServe(4), 7);
    EXPECT_EQ(protocol.overflowEvents(), 1u);
}

TEST(FcfsMultiOutstandingTest, OneAgentQueuesServedFifo)
{
    FcfsProtocol protocol(configFor(FcfsStrategy::kIncrLine));
    ProtocolDriver driver(protocol, 4);
    const Request r1 = driver.post(2, 0);
    driver.post(3, unitsToTicks(0.5));
    const Request r2 = driver.post(2, unitsToTicks(1.0));
    EXPECT_EQ(driver.arbitrateAndServe(unitsToTicks(2)), 2);
    EXPECT_EQ(driver.served().back().seq, r1.seq);
    EXPECT_EQ(driver.arbitrateAndServe(unitsToTicks(3)), 3);
    EXPECT_EQ(driver.arbitrateAndServe(unitsToTicks(4)), 2);
    EXPECT_EQ(driver.served().back().seq, r2.seq);
}

TEST(FcfsMultiOutstandingTest, GlobalFcfsAcrossAgentsWithQueues)
{
    FcfsProtocol protocol(configFor(FcfsStrategy::kIncrLine));
    ProtocolDriver driver(protocol, 4);
    driver.post(1, unitsToTicks(1));
    driver.post(2, unitsToTicks(2));
    driver.post(1, unitsToTicks(3));
    driver.post(3, unitsToTicks(4));
    std::vector<AgentId> served;
    for (int i = 0; i < 4; ++i)
        served.push_back(driver.arbitrateAndServe(unitsToTicks(10 + i)));
    EXPECT_EQ(served, (std::vector<AgentId>{1, 2, 1, 3}));
}

TEST(FcfsPriorityTest, PriorityClassAlwaysWins)
{
    FcfsConfig config = configFor(FcfsStrategy::kIncrementOnLose);
    config.enablePriority = true;
    FcfsProtocol protocol(config);
    ProtocolDriver driver(protocol, 8);
    driver.post(7, 0, false);
    driver.post(6, 0, false);
    EXPECT_EQ(driver.arbitrateAndServe(1), 7);
    // A later priority request jumps both waiting non-priority ones.
    driver.post(2, 2, true);
    EXPECT_EQ(driver.arbitrateAndServe(3), 2);
    EXPECT_EQ(driver.arbitrateAndServe(4), 6);
}

TEST(FcfsPriorityTest, MatchedIncrementOnlyCountsOwnClass)
{
    FcfsConfig config = configFor(FcfsStrategy::kIncrementOnLose);
    config.enablePriority = true;
    config.priorityCounting = PriorityCounting::kMatchedIncrement;
    FcfsProtocol protocol(config);
    ProtocolDriver driver(protocol, 8);
    // Non-priority request waits through two priority services: its
    // counter must not move (winner class differs).
    driver.post(3, 0, false);
    driver.post(5, 0, true);
    driver.post(6, 0, true);
    EXPECT_EQ(driver.arbitrateAndServe(1), 6);
    EXPECT_EQ(driver.arbitrateAndServe(2), 5);
    // Fresh non-priority arrival: agent 3's counter stayed 0, so the
    // higher identity 7 wins the tie.
    driver.post(7, 3, false);
    EXPECT_EQ(driver.arbitrateAndServe(4), 7);
    EXPECT_EQ(driver.arbitrateAndServe(5), 3);
}

TEST(FcfsPriorityTest, AlwaysIncrementCountsOtherClassToo)
{
    FcfsConfig config = configFor(FcfsStrategy::kIncrementOnLose);
    config.enablePriority = true;
    config.priorityCounting = PriorityCounting::kAlwaysIncrement;
    FcfsProtocol protocol(config);
    ProtocolDriver driver(protocol, 8);
    driver.post(3, 0, false);
    driver.post(5, 0, true);
    EXPECT_EQ(driver.arbitrateAndServe(1), 5);
    driver.post(7, 2, false);
    // Agent 3's counter advanced past agent 7's.
    EXPECT_EQ(driver.arbitrateAndServe(3), 3);
    EXPECT_EQ(driver.arbitrateAndServe(4), 7);
}

TEST(FcfsPriorityTest, DualIncrLinesKeepClassesIndependent)
{
    FcfsConfig config = configFor(FcfsStrategy::kIncrLine);
    config.enablePriority = true;
    config.priorityCounting = PriorityCounting::kDualIncrLines;
    FcfsProtocol protocol(config);
    ProtocolDriver driver(protocol, 8);
    // Non-priority request, then a burst of priority arrivals: the
    // non-priority counter must not advance from priority pulses.
    driver.post(3, 0, false);
    driver.post(5, unitsToTicks(1), true);
    driver.post(6, unitsToTicks(2), true);
    EXPECT_EQ(driver.arbitrateAndServe(unitsToTicks(3)), 5);
    EXPECT_EQ(driver.arbitrateAndServe(unitsToTicks(4)), 6);
    driver.post(7, unitsToTicks(5), false);
    // Non-priority stream pulsed once for 3 and once for 7: 3 is older.
    EXPECT_EQ(driver.arbitrateAndServe(unitsToTicks(6)), 3);
    EXPECT_EQ(driver.arbitrateAndServe(unitsToTicks(7)), 7);
}

TEST(FcfsDeathTest, InvalidConfigurations)
{
    FcfsConfig bad1 = configFor(FcfsStrategy::kIncrementOnLose);
    bad1.enablePriority = true;
    bad1.priorityCounting = PriorityCounting::kDualIncrLines;
    EXPECT_EXIT(FcfsProtocol{bad1}, ::testing::ExitedWithCode(1),
                "a-incr strategy");

    FcfsConfig bad2 = configFor(FcfsStrategy::kIncrLine);
    bad2.enablePriority = true;
    bad2.priorityCounting = PriorityCounting::kMatchedIncrement;
    EXPECT_EXIT(FcfsProtocol{bad2}, ::testing::ExitedWithCode(1),
                "increment-on-");

    FcfsProtocol protocol(configFor(FcfsStrategy::kIncrementOnLose));
    ProtocolDriver driver(protocol, 4);
    EXPECT_EXIT(driver.post(1, 0, true), ::testing::ExitedWithCode(1),
                "enablePriority");
}

} // namespace
} // namespace busarb
