/**
 * @file
 * Unit and property tests for the distributed round-robin protocol
 * (all three implementations of Section 3.1).
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/round_robin.hh"
#include "random/rng.hh"
#include "support/protocol_driver.hh"

namespace busarb {
namespace {

using test::ProtocolDriver;

RrConfig
configFor(RrImplementation impl)
{
    RrConfig c;
    c.impl = impl;
    return c;
}

class RrImplTest : public ::testing::TestWithParam<RrImplementation>
{
};

TEST_P(RrImplTest, FirstArbitrationHighestIdentityWins)
{
    RoundRobinProtocol protocol(configFor(GetParam()));
    ProtocolDriver driver(protocol, 8);
    driver.post(3, 0);
    driver.post(7, 0);
    driver.post(5, 0);
    EXPECT_EQ(driver.arbitrateAndServe(10), 7);
}

TEST_P(RrImplTest, ScanDescendsThenWraps)
{
    // With every agent requesting, service order is N, N-1, ..., 1, N...
    RoundRobinProtocol protocol(configFor(GetParam()));
    ProtocolDriver driver(protocol, 5);
    for (AgentId a = 1; a <= 5; ++a)
        driver.post(a, 0);
    std::vector<AgentId> order;
    for (int i = 0; i < 5; ++i) {
        order.push_back(driver.arbitrateAndServe(10 + i));
        driver.post(order.back(), 10 + i); // re-request immediately
    }
    EXPECT_EQ(order, (std::vector<AgentId>{5, 4, 3, 2, 1}));
    // Next full cycle repeats.
    std::vector<AgentId> order2;
    for (int i = 0; i < 5; ++i) {
        order2.push_back(driver.arbitrateAndServe(20 + i));
        driver.post(order2.back(), 20 + i);
    }
    EXPECT_EQ(order2, (std::vector<AgentId>{5, 4, 3, 2, 1}));
}

TEST_P(RrImplTest, JustServedAgentGoesToTheBack)
{
    RoundRobinProtocol protocol(configFor(GetParam()));
    ProtocolDriver driver(protocol, 4);
    driver.post(3, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 3);
    // Agent 3 re-requests together with agent 4; after serving 3 the
    // scan position is at 2, so 2 (below) is ahead of 4... none below
    // requested -> wrap: 4 first, then 3 last.
    driver.post(3, 2);
    driver.post(4, 2);
    EXPECT_EQ(driver.arbitrateAndServe(3), 4);
    EXPECT_EQ(driver.arbitrateAndServe(4), 3);
}

TEST_P(RrImplTest, LowerIdentityHasPriorityAfterWinner)
{
    RoundRobinProtocol protocol(configFor(GetParam()));
    ProtocolDriver driver(protocol, 8);
    driver.post(5, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 5);
    // 4 < 5 beats 7 > 5 even though 7 has the bigger identity.
    driver.post(7, 2);
    driver.post(4, 2);
    EXPECT_EQ(driver.arbitrateAndServe(3), 4);
    EXPECT_EQ(driver.arbitrateAndServe(4), 7);
}

TEST_P(RrImplTest, SingleRequesterAlwaysWins)
{
    RoundRobinProtocol protocol(configFor(GetParam()));
    ProtocolDriver driver(protocol, 6);
    for (int i = 0; i < 4; ++i) {
        driver.post(2, i * 10);
        EXPECT_EQ(driver.arbitrateAndServe(i * 10 + 1), 2);
    }
}

TEST_P(RrImplTest, NoRequestsMeansIdle)
{
    RoundRobinProtocol protocol(configFor(GetParam()));
    ProtocolDriver driver(protocol, 4);
    EXPECT_EQ(driver.arbitrateAndServe(0), kNoAgent);
    EXPECT_FALSE(protocol.wantsPass());
}

TEST_P(RrImplTest, RecordedWinnerTracksArbitrations)
{
    RoundRobinProtocol protocol(configFor(GetParam()));
    ProtocolDriver driver(protocol, 4);
    EXPECT_EQ(protocol.recordedWinner(), 5); // N+1 initially
    driver.post(2, 0);
    driver.arbitrateAndServe(1);
    EXPECT_EQ(protocol.recordedWinner(), 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllImplementations, RrImplTest,
    ::testing::Values(RrImplementation::kPriorityBit,
                      RrImplementation::kLowRequestLine,
                      RrImplementation::kNoExtraLine));

TEST(RrEquivalenceTest, AllThreeImplementationsProduceTheSameSchedule)
{
    // Random request patterns posted identically to all three
    // implementations, arbitrated in lock-step: every winner sequence
    // must match (they all implement true round-robin).
    Rng rng(2024);
    for (int trial = 0; trial < 30; ++trial) {
        RoundRobinProtocol p1(configFor(RrImplementation::kPriorityBit));
        RoundRobinProtocol p2(configFor(RrImplementation::kLowRequestLine));
        RoundRobinProtocol p3(configFor(RrImplementation::kNoExtraLine));
        const int n = 2 + static_cast<int>(rng.below(9));
        ProtocolDriver d1(p1, n), d2(p2, n), d3(p3, n);
        std::vector<int> outstanding(static_cast<std::size_t>(n) + 1, 0);
        Tick now = 0;
        for (int step = 0; step < 200; ++step) {
            ++now;
            if (rng.below(100) < 60) {
                const AgentId a = 1 + static_cast<AgentId>(rng.below(
                                        static_cast<std::uint64_t>(n)));
                if (outstanding[static_cast<std::size_t>(a)] == 0) {
                    ++outstanding[static_cast<std::size_t>(a)];
                    d1.post(a, now);
                    d2.post(a, now);
                    d3.post(a, now);
                }
            }
            if (rng.below(100) < 50) {
                const AgentId w1 = d1.arbitrateAndServe(now);
                const AgentId w2 = d2.arbitrateAndServe(now);
                const AgentId w3 = d3.arbitrateAndServe(now);
                ASSERT_EQ(w1, w2) << "impl1 vs impl2, trial " << trial;
                ASSERT_EQ(w1, w3) << "impl1 vs impl3, trial " << trial;
                if (w1 != kNoAgent)
                    --outstanding[static_cast<std::size_t>(w1)];
            }
        }
    }
}

TEST(RrImpl3Test, WrapConsumesARetryPass)
{
    RoundRobinProtocol protocol(configFor(RrImplementation::kNoExtraLine));
    ProtocolDriver driver(protocol, 4);
    driver.post(2, 0);
    EXPECT_EQ(driver.arbitrateAndServe(1), 2);
    // Now recordedWinner = 2; a request from 3 (>= 2) needs the wrap.
    driver.post(3, 2);
    EXPECT_EQ(driver.arbitrateAndServe(3), 3);
    EXPECT_EQ(driver.retries(), 1);
}

TEST(RrImpl12Test, NoRetryPassesEver)
{
    for (auto impl : {RrImplementation::kPriorityBit,
                      RrImplementation::kLowRequestLine}) {
        RoundRobinProtocol protocol(configFor(impl));
        ProtocolDriver driver(protocol, 4);
        driver.post(2, 0);
        driver.arbitrateAndServe(1);
        driver.post(3, 2);
        driver.arbitrateAndServe(3);
        EXPECT_EQ(driver.retries(), 0);
    }
}

TEST(RrPriorityTest, PriorityRequestsBeatNonPriority)
{
    RrConfig config;
    config.impl = RrImplementation::kPriorityBit;
    config.enablePriority = true;
    RoundRobinProtocol protocol(config);
    ProtocolDriver driver(protocol, 8);
    driver.post(7, 0, /*priority=*/false);
    driver.post(2, 0, /*priority=*/true);
    EXPECT_EQ(driver.arbitrateAndServe(1), 2);
    EXPECT_EQ(driver.arbitrateAndServe(2), 7);
}

TEST(RrPriorityTest, RoundRobinWithinPriorityClass)
{
    RrConfig config;
    config.impl = RrImplementation::kPriorityBit;
    config.enablePriority = true;
    config.rrWithinPriorityClass = true;
    RoundRobinProtocol protocol(config);
    ProtocolDriver driver(protocol, 8);
    driver.post(5, 0, true);
    EXPECT_EQ(driver.arbitrateAndServe(1), 5);
    // Among priority requests, RR order applies: 4 < 5 beats 7.
    driver.post(7, 2, true);
    driver.post(4, 2, true);
    EXPECT_EQ(driver.arbitrateAndServe(3), 4);
    EXPECT_EQ(driver.arbitrateAndServe(4), 7);
}

TEST(RrPriorityTest, IgnoringRrWithinClassServesByIdentity)
{
    RrConfig config;
    config.impl = RrImplementation::kPriorityBit;
    config.enablePriority = true;
    config.rrWithinPriorityClass = false;
    RoundRobinProtocol protocol(config);
    ProtocolDriver driver(protocol, 8);
    driver.post(5, 0, true);
    EXPECT_EQ(driver.arbitrateAndServe(1), 5);
    driver.post(7, 2, true);
    driver.post(4, 2, true);
    // Both assert the RR bit: plain identity order.
    EXPECT_EQ(driver.arbitrateAndServe(3), 7);
    EXPECT_EQ(driver.arbitrateAndServe(4), 4);
}

TEST(RrConfigTest, LineCountsPerImplementation)
{
    RoundRobinProtocol p1(configFor(RrImplementation::kPriorityBit));
    p1.reset(10); // 4 id bits
    EXPECT_EQ(p1.numLines(), 5); // + rr bit
    RoundRobinProtocol p2(configFor(RrImplementation::kLowRequestLine));
    p2.reset(10);
    EXPECT_EQ(p2.numLines(), 4);
    RoundRobinProtocol p3(configFor(RrImplementation::kNoExtraLine));
    p3.reset(10);
    EXPECT_EQ(p3.numLines(), 4);
}

TEST(RrDeathTest, PriorityUnsupportedOutsideImpl1)
{
    RrConfig config;
    config.impl = RrImplementation::kLowRequestLine;
    config.enablePriority = true;
    EXPECT_EXIT(RoundRobinProtocol{config},
                ::testing::ExitedWithCode(1), "implementation 1");
}

TEST(RrDeathTest, PriorityRequestWithoutEnable)
{
    RoundRobinProtocol protocol(configFor(RrImplementation::kPriorityBit));
    ProtocolDriver driver(protocol, 4);
    EXPECT_EXIT(driver.post(1, 0, true), ::testing::ExitedWithCode(1),
                "enablePriority");
}

} // namespace
} // namespace busarb
