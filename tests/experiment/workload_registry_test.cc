/**
 * @file
 * Tests for the workload registry seam: every registered source
 * instantiates and smokes through the runner, spec strings round-trip
 * canonically, the error paths carry did-you-mean hints, and the
 * pre-run validation hooks reject doomed runs before they start.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "experiment/workload_registry.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

/** A small, fast scenario for registry smoke runs. */
ScenarioConfig
tinyScenario()
{
    ScenarioConfig config = equalLoadScenario(4, 1.0, 1.0);
    config.numBatches = 3;
    config.batchSize = 200;
    config.warmup = 200;
    return config;
}

std::string
parseError(const std::string &text)
{
    WorkloadSpec spec;
    std::string error;
    EXPECT_FALSE(
        WorkloadRegistry::builtin().parseSpec(text, spec, error))
        << text;
    return error;
}

WorkloadSpec
parseOk(const std::string &text)
{
    WorkloadSpec spec;
    std::string error;
    EXPECT_TRUE(WorkloadRegistry::builtin().parseSpec(text, spec, error))
        << text << ": " << error;
    return spec;
}

/** Writes a text trace long enough for tinyScenario and returns it. */
class TempTraceFile
{
  public:
    explicit TempTraceFile(int requests)
    {
        path_ = testing::TempDir() + "workload_registry_trace.txt";
        std::ofstream out(path_);
        double t = 0.0;
        for (int i = 0; i < requests; ++i) {
            t += 0.25;
            out << t << ' ' << (1 + i % 4) << '\n';
        }
    }

    ~TempTraceFile() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST(WorkloadRegistryTest, EverySourceRunsThroughTheRunner)
{
    TempTraceFile trace(2000);
    const std::string specs[] = {
        "closed",
        "open:rate=2,dist=exp",
        "open:rate=2,dist=pareto,alpha=1.8",
        "open:rate=2,dist=mmpp,burst=4,gap=8,ratio=5",
        "onoff:on=0.2,off=10,burst=8,gap=2",
        "trace:file=" + trace.path(),
    };
    for (const std::string &text : specs) {
        ScenarioConfig config = tinyScenario();
        config.workloadSpec = text;
        ASSERT_EQ(validateWorkloadRun(config), "") << text;
        const ScenarioResult result =
            runScenario(config, makeRoundRobinFactory());
        EXPECT_EQ(result.workloadSpec, text);
        EXPECT_GT(result.throughput().value, 0.0) << text;
    }
}

TEST(WorkloadRegistryTest, OpenLoopObservablesOnlyForOpenSources)
{
    ScenarioConfig closed = tinyScenario();
    const ScenarioResult closed_result =
        runScenario(closed, makeRoundRobinFactory());
    EXPECT_FALSE(closed_result.workload.openLoop);
    EXPECT_EQ(closed_result.metrics.counters().count("workload.issued"),
              0u);

    ScenarioConfig open = tinyScenario();
    open.workloadSpec = "open:rate=2";
    const ScenarioResult open_result =
        runScenario(open, makeRoundRobinFactory());
    EXPECT_TRUE(open_result.workload.openLoop);
    EXPECT_GT(open_result.workload.issued, 0u);
    EXPECT_EQ(open_result.metrics.counters().count("workload.issued"),
              1u);
    EXPECT_EQ(
        open_result.metrics.gauges().count("workload.offered_rate"),
        1u);
}

TEST(WorkloadRegistryTest, SpecsRoundTripCanonically)
{
    EXPECT_EQ(parseOk("closed").format(), "closed");
    // Options are canonicalized into declaration order with canonical
    // value text; re-parsing the canonical form is a fixed point.
    const WorkloadSpec spec =
        parseOk("open:alpha=1.50,dist=pareto,rate=2.0");
    EXPECT_EQ(spec.format(), "open:dist=pareto,rate=2,alpha=1.5");
    EXPECT_EQ(parseOk(spec.format()).format(), spec.format());
    EXPECT_EQ(parseOk("onoff:off=10,on=0.5").format(),
              "onoff:on=0.5,off=10");
}

TEST(WorkloadRegistryTest, UnknownKeysGetDidYouMeanHints)
{
    EXPECT_EQ(parseError("opne"),
              "unknown workload source key 'opne'; did you mean "
              "'open'?");
    EXPECT_EQ(parseError("clsed"),
              "unknown workload source key 'clsed'; did you mean "
              "'closed'?");
}

TEST(WorkloadRegistryTest, UnknownOptionsGetDidYouMeanHints)
{
    EXPECT_EQ(parseError("open:rte=2"),
              "unknown option 'rte' for workload source 'open'; did "
              "you mean 'rate'?");
}

TEST(WorkloadRegistryTest, CrossParameterValidationRejectsBadCombos)
{
    EXPECT_EQ(parseError("onoff:on=10,off=10"),
              "option 'on' must be smaller than 'off' (the ON phase "
              "is the bursty one)");
    EXPECT_EQ(parseError("trace"),
              "workload source 'trace' requires file=<path>");
}

TEST(WorkloadRegistryTest, OutOfRangeValuesAreRejected)
{
    EXPECT_NE(parseError("open:alpha=0.5").find("out of range"),
              std::string::npos);
    EXPECT_NE(parseError("open:dist=gamma").find("expects one of"),
              std::string::npos);
}

TEST(WorkloadRegistryTest, ValidateRunRejectsShortTraces)
{
    TempTraceFile trace(100);
    ScenarioConfig config = tinyScenario();
    config.workloadSpec = "trace:file=" + trace.path();
    const std::string error = validateWorkloadRun(config);
    EXPECT_NE(error.find("trace has 100 requests"), std::string::npos)
        << error;
}

TEST(WorkloadRegistryTest, ValidateRunRejectsMissingFiles)
{
    ScenarioConfig config = tinyScenario();
    config.workloadSpec = "trace:file=/nonexistent/never.trace";
    EXPECT_NE(validateWorkloadRun(config), "");
}

TEST(WorkloadRegistryTest, ValidateRunRejectsTooFewAgents)
{
    TempTraceFile trace(2000); // posts to agents 1..4
    ScenarioConfig config = tinyScenario();
    config.agents.resize(2);
    config.numAgents = 2;
    config.workloadSpec = "trace:file=" + trace.path();
    const std::string error = validateWorkloadRun(config);
    EXPECT_NE(error.find("agent"), std::string::npos) << error;
}

TEST(WorkloadRegistryTest, DescriptorLookupFollowsSpecKey)
{
    const WorkloadDescriptor *open =
        workloadDescriptorFor("open:rate=2,dist=mmpp");
    ASSERT_NE(open, nullptr);
    EXPECT_TRUE(open->openLoop);
    EXPECT_TRUE(open->takesLoads);

    const WorkloadDescriptor *trace =
        workloadDescriptorFor("trace:file=x");
    ASSERT_NE(trace, nullptr);
    EXPECT_FALSE(trace->takesLoads);

    EXPECT_EQ(workloadDescriptorFor("bogus"), nullptr);
}

TEST(WorkloadRegistryTest, PrintTableListsEverySourceAndOption)
{
    std::ostringstream os;
    WorkloadRegistry::builtin().printTable(os);
    const std::string table = os.str();
    for (const auto &desc : WorkloadRegistry::builtin().all()) {
        EXPECT_NE(table.find(desc.key), std::string::npos) << desc.key;
        for (const auto &param : desc.params)
            EXPECT_NE(table.find(param.name), std::string::npos)
                << desc.key << ":" << param.name;
    }
    EXPECT_NE(table.find("open loop"), std::string::npos);
    EXPECT_NE(table.find("no load axis"), std::string::npos);
}

} // namespace
} // namespace busarb
