/**
 * @file
 * Tests for the timeline probe.
 */

#include <algorithm>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "baseline/fixed_priority.hh"
#include "experiment/timeline.hh"
#include "sim/event_queue.hh"

namespace busarb {
namespace {

constexpr Tick U = kTicksPerUnit;

TEST(TimelineProbeTest, SamplesAtFixedWindows)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 4, {});
    TimelineProbe probe(queue, bus, /*window=*/1.0);
    probe.start();
    queue.schedule(0, [&] { bus.postRequest(1); });
    // Keep the clock alive long enough for several windows.
    queue.schedule(5 * U, [] {});
    queue.run(5 * U);
    ASSERT_GE(probe.samples().size(), 4u);
    EXPECT_DOUBLE_EQ(probe.samples()[0].time, 1.0);
    EXPECT_DOUBLE_EQ(probe.samples()[1].time, 2.0);
}

TEST(TimelineProbeTest, TracksBacklogAndUtilization)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 4, {});
    TimelineProbe probe(queue, bus, 1.0);
    probe.start();
    // Burst of 4 requests at t = 0: service at 0.5, 1.5, 2.5, 3.5.
    queue.schedule(0, [&] {
        for (AgentId a = 1; a <= 4; ++a)
            bus.postRequest(a);
    });
    queue.schedule(6 * U, [] {});
    queue.run(6 * U);
    const auto &samples = probe.samples();
    ASSERT_GE(samples.size(), 5u);
    // At t = 1 three requests remain outstanding (one served at 0.5-1.5
    // still counts as outstanding until completion at 1.5).
    EXPECT_EQ(samples[0].outstanding, 4u);
    // The backlog drains one per unit.
    EXPECT_EQ(samples[1].outstanding, 3u);
    EXPECT_EQ(samples[2].outstanding, 2u);
    // Utilization is 1 while draining, 0 once idle.
    EXPECT_GT(samples[1].utilization, 0.99);
    EXPECT_DOUBLE_EQ(samples[5].utilization, 0.0);
    EXPECT_EQ(probe.peakOutstanding(), 4u);
}

TEST(TimelineProbeTest, MaxSamplesStopsTheProbe)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 2, {});
    TimelineProbe probe(queue, bus, 0.5, /*max_samples=*/3);
    probe.start();
    queue.schedule(10 * U, [] {});
    queue.run(10 * U);
    EXPECT_EQ(probe.samples().size(), 3u);
}

TEST(TimelineProbeTest, CsvOutput)
{
    EventQueue queue;
    Bus bus(queue, std::make_unique<FixedPriorityProtocol>(), 2, {});
    TimelineProbe probe(queue, bus, 1.0, 2);
    probe.start();
    queue.schedule(3 * U, [] {});
    queue.run(3 * U);
    std::ostringstream os;
    probe.writeCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("time,outstanding,utilization,completed"),
              std::string::npos);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

} // namespace
} // namespace busarb
