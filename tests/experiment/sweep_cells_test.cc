/**
 * @file
 * Sweep-cell assembly tests: the canonical cell enumeration (cell
 * index -> load x protocol), tuning-knob wiring into ScenarioConfig,
 * the canonical tuning key text, and buildSweepGrid's equivalence to
 * per-cell assembly.
 */

#include <gtest/gtest.h>

#include "experiment/sweep_cells.hh"

namespace busarb {
namespace {

ScenarioSpec
gridSpec()
{
    ScenarioSpec spec;
    spec.agents = 6;
    spec.loadTokens = {"0.25", "1", "2.5"};
    spec.protocolSpecs = {"rr1", "fcfs1"};
    return spec;
}

TEST(SweepCells, CellEnumerationIsLoadsOuterProtocolsInner)
{
    const ScenarioSpec spec = gridSpec();
    ASSERT_EQ(spec.cellCount(), 6u);
    // Row-emission order: loads outer, protocols inner. This order is
    // the identity cells carry in checkpoint manifests, so it may
    // never change.
    const char *expected[][2] = {
        {"0.25", "rr1"}, {"0.25", "fcfs1"}, {"1", "rr1"},
        {"1", "fcfs1"},  {"2.5", "rr1"},    {"2.5", "fcfs1"},
    };
    for (std::size_t cell = 0; cell < spec.cellCount(); ++cell) {
        EXPECT_EQ(spec.cellLoadToken(cell), expected[cell][0])
            << "cell " << cell;
        EXPECT_EQ(spec.cellProtocolSpec(cell), expected[cell][1])
            << "cell " << cell;
    }
}

TEST(SweepCells, EmptyAxesYieldNoCells)
{
    ScenarioSpec spec;
    spec.loadTokens.clear();
    spec.protocolSpecs = {"rr1"};
    EXPECT_EQ(spec.cellCount(), 0u);
    spec.loadTokens = {"1"};
    spec.protocolSpecs.clear();
    EXPECT_EQ(spec.cellCount(), 0u);
}

TEST(SweepCells, TuningKnobsReachTheCellConfig)
{
    const ScenarioSpec spec = gridSpec();
    SweepTuning tuning;
    tuning.captureTrace = true;
    tuning.fairness = true;
    tuning.fairnessWindow = 12.5;
    tuning.bypassBound = 4;
    tuning.health = true;
    tuning.healthRelHw = 0.02;
    tuning.healthLag1 = 0.4;
    tuning.snapshotEvery = 7.0;
    tuning.healthSnapshots = true;
    tuning.queuePolicy = EventQueuePolicy::kHeap;

    const ScenarioConfig config =
        sweepCellConfig(spec, tuning, "sweep_cells_test", 2);
    EXPECT_TRUE(config.captureBinaryTrace);
    EXPECT_TRUE(config.auditFairness);
    EXPECT_EQ(config.fairnessWindowUnits, 12.5);
    EXPECT_EQ(config.bypassBound, 4);
    EXPECT_TRUE(config.monitorHealth);
    EXPECT_EQ(config.healthRelHwTarget, 0.02);
    EXPECT_EQ(config.healthLag1Threshold, 0.4);
    EXPECT_EQ(config.snapshotEveryUnits, 7.0);
    EXPECT_TRUE(config.healthSnapshots);
    EXPECT_EQ(config.eventQueuePolicy, EventQueuePolicy::kHeap);
}

TEST(SweepCells, BuildSweepGridMatchesPerCellAssembly)
{
    const ScenarioSpec spec = gridSpec();
    const SweepTuning tuning;
    const auto grid = buildSweepGrid(spec, tuning, "sweep_cells_test");
    ASSERT_EQ(grid.size(), spec.cellCount());
    for (std::size_t cell = 0; cell < grid.size(); ++cell) {
        const GridJob job =
            sweepCellJob(spec, tuning, "sweep_cells_test", cell);
        EXPECT_EQ(grid[cell].spec, job.spec) << "cell " << cell;
        EXPECT_EQ(grid[cell].config.totalOfferedLoad(),
                  job.config.totalOfferedLoad())
            << "cell " << cell;
        EXPECT_EQ(grid[cell].spec, spec.cellProtocolSpec(cell));
    }
}

TEST(SweepCells, CanonicalKeyIsStableText)
{
    // The key is hashed into the sweep fingerprint; its exact text is
    // load-bearing for checkpoint compatibility across versions.
    EXPECT_EQ(SweepTuning{}.canonicalKey(),
              "trace=0;fairness=0;fairness-window=50;bypass-bound=0;"
              "health=0;health-rel-hw=0.05;health-lag1=0.3;"
              "snapshot-every=0;health-snapshots=0");

    SweepTuning tuning;
    tuning.captureTrace = true;
    tuning.snapshotEvery = 2.5;
    EXPECT_EQ(tuning.canonicalKey(),
              "trace=1;fairness=0;fairness-window=50;bypass-bound=0;"
              "health=0;health-rel-hw=0.05;health-lag1=0.3;"
              "snapshot-every=2.5;health-snapshots=0");
}

TEST(SweepCells, QueuePolicyIsNotInTheCanonicalKey)
{
    SweepTuning calendar;
    SweepTuning heap;
    heap.queuePolicy = EventQueuePolicy::kHeap;
    // Both policies are pinned to bit-identical artifacts, so a resume
    // may switch them without invalidating checkpoints.
    EXPECT_EQ(calendar.canonicalKey(), heap.canonicalKey());
}

} // namespace
} // namespace busarb
