/**
 * @file
 * JobPool failure-path tests: exception propagation through wait() and
 * clean destructor drain with work still queued.
 */

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "experiment/job_pool.hh"

namespace busarb {
namespace {

TEST(JobPoolFailure, ExceptionPropagatesToWait)
{
    JobPool pool(2);
    pool.submit([] { throw std::runtime_error("job failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(JobPoolFailure, ExceptionCarriesMessage)
{
    JobPool pool(1);
    pool.submit([] { throw std::runtime_error("distinctive message"); });
    try {
        pool.wait();
        FAIL() << "wait() should have rethrown";
    } catch (const std::runtime_error &err) {
        EXPECT_STREQ(err.what(), "distinctive message");
    }
}

TEST(JobPoolFailure, JobsBehindThrowingJobStillRun)
{
    JobPool pool(1); // serial worker forces FIFO execution
    std::atomic<int> ran{0};
    pool.submit([] { throw std::runtime_error("first"); });
    for (int i = 0; i < 8; ++i)
        pool.submit([&ran] { ++ran; });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 8);
}

TEST(JobPoolFailure, OnlyFirstExceptionIsKept)
{
    JobPool pool(1);
    pool.submit([] { throw std::runtime_error("first"); });
    pool.submit([] { throw std::logic_error("second"); });
    try {
        pool.wait();
        FAIL() << "wait() should have rethrown";
    } catch (const std::runtime_error &err) {
        EXPECT_STREQ(err.what(), "first");
    } catch (const std::logic_error &) {
        FAIL() << "second exception should have been dropped";
    }
}

TEST(JobPoolFailure, WaitClearsStoredException)
{
    JobPool pool(2);
    pool.submit([] { throw std::runtime_error("once"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error was consumed: a later healthy batch waits cleanly.
    std::atomic<int> ran{0};
    pool.submit([&ran] { ++ran; });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(ran.load(), 1);
}

TEST(JobPoolFailure, DestructorDrainsQueuedJobs)
{
    std::atomic<int> ran{0};
    {
        JobPool pool(1);
        // A slow head job guarantees the rest are still queued when the
        // destructor runs.
        pool.submit([] {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        });
        for (int i = 0; i < 16; ++i)
            pool.submit([&ran] { ++ran; });
        // No wait(): destruction must drain the queue itself.
    }
    EXPECT_EQ(ran.load(), 16);
}

TEST(JobPoolFailure, DestructorSwallowsPendingException)
{
    // A captured job exception with no final wait() must not escape the
    // destructor (destructors must not throw).
    std::atomic<int> ran{0};
    {
        JobPool pool(2);
        pool.submit([] { throw std::runtime_error("never observed"); });
        pool.submit([&ran] { ++ran; });
    }
    EXPECT_EQ(ran.load(), 1);
}

} // namespace
} // namespace busarb
