/**
 * @file
 * Tests for the parallel scenario grid: the JobPool itself, the
 * bit-identical-to-serial determinism guarantee, and the batch-local
 * Welford waiting-time statistics the runner now uses.
 */

#include <atomic>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "experiment/job_pool.hh"
#include "experiment/metrics.hh"
#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

// ------------------------------------------------------------- JobPool

TEST(JobPoolTest, RunsEverySubmittedJob)
{
    JobPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(JobPoolTest, WaitIsReusableAcrossSubmissionRounds)
{
    JobPool pool(2);
    std::atomic<int> counter{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&counter] { ++counter; });
        pool.wait();
        EXPECT_EQ(counter.load(), 10 * (round + 1));
    }
}

TEST(JobPoolTest, ResolveJobCountDefaultsToHardware)
{
    EXPECT_GE(resolveJobCount(0), 1);
    EXPECT_GE(resolveJobCount(-3), 1);
    EXPECT_EQ(resolveJobCount(7), 7);
}

// ----------------------------------------------------- grid determinism

ScenarioConfig
smallConfig(double load)
{
    ScenarioConfig config = equalLoadScenario(8, load, 1.0);
    config.numBatches = 3;
    config.batchSize = 400;
    config.warmup = 400;
    return config;
}

void
expectBitIdentical(const ScenarioResult &a, const ScenarioResult &b)
{
    EXPECT_EQ(a.protocolName, b.protocolName);
    EXPECT_EQ(a.numAgents, b.numAgents);
    ASSERT_EQ(a.batches.size(), b.batches.size());
    for (std::size_t i = 0; i < a.batches.size(); ++i) {
        const BatchStats &ba = a.batches[i];
        const BatchStats &bb = b.batches[i];
        // Exact comparisons on purpose: the parallel path must produce
        // the very same doubles as the serial one, not merely close.
        EXPECT_EQ(ba.duration, bb.duration);
        EXPECT_EQ(ba.waitMean, bb.waitMean);
        EXPECT_EQ(ba.waitStddev, bb.waitStddev);
        EXPECT_EQ(ba.utilization, bb.utilization);
        EXPECT_EQ(ba.passes, bb.passes);
        EXPECT_EQ(ba.retryPasses, bb.retryPasses);
        EXPECT_EQ(ba.completions, bb.completions);
        EXPECT_EQ(ba.productive, bb.productive);
        EXPECT_EQ(ba.cycle, bb.cycle);
        EXPECT_EQ(ba.waitSum, bb.waitSum);
        EXPECT_EQ(ba.overlapSum, bb.overlapSum);
    }
}

TEST(ScenarioGridTest, ParallelRunIsBitIdenticalToSerial)
{
    std::vector<GridJob> grid;
    for (const char *key : {"rr1", "fcfs1", "aap1"}) {
        for (double load : {0.5, 2.0, 7.5})
            grid.push_back({smallConfig(load), protocolByKey(key)});
    }
    const auto serial = runScenarioGrid(grid, 1);
    const auto parallel = runScenarioGrid(grid, 4);
    ASSERT_EQ(serial.size(), grid.size());
    ASSERT_EQ(parallel.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i)
        expectBitIdentical(serial[i], parallel[i]);
}

TEST(ScenarioGridTest, ResultsComeBackInSubmissionOrder)
{
    std::vector<GridJob> grid;
    std::vector<std::string> expected;
    for (const char *key : {"rr1", "fcfs1", "aap1"}) {
        grid.push_back({smallConfig(1.0), protocolByKey(key)});
        expected.push_back(
            runScenario(smallConfig(1.0), protocolByKey(key))
                .protocolName);
    }
    const auto results = runScenarioGrid(grid, 3);
    ASSERT_EQ(results.size(), expected.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].protocolName, expected[i]);
}

TEST(ScenarioGridTest, GridFillsPerScenarioTiming)
{
    std::vector<GridJob> grid{{smallConfig(1.0), protocolByKey("rr1")}};
    const auto results = runScenarioGrid(grid, 1);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GE(results[0].elapsedMs, 0.0);
}

// --------------------------------------- batch-local wait statistics

TEST(BatchWaitStatsTest, StddevIsStableForLargeMagnitudeWaits)
{
    // Waits of 1e9, 1e9+1, 1e9+2 units: population variance 2/3. The
    // old cumulative-sums formula E[x^2] - E[x]^2 differences numbers
    // near 1e18, where double resolution is ~256 — the true variance
    // drowns completely (and the result can go negative).
    MetricsCollector collector(1);
    collector.beginBatch();
    const double base = 1.0e9;
    for (int k = 0; k < 3; ++k) {
        Request req;
        req.agent = 1;
        req.issued = 0;
        collector.onServiceEnd(req, unitsToTicks(base + k));
    }
    const RunningStats &stats = collector.batchWaitStats();
    EXPECT_EQ(stats.count(), 3u);
    EXPECT_NEAR(stats.mean(), base + 1.0, 1e-3);
    EXPECT_NEAR(stats.variancePopulation(), 2.0 / 3.0, 1e-6);

    // Document the failure mode this replaces: the naive formula over
    // the collector's cumulative sums cancels catastrophically and
    // loses most (here: all) of the true variance.
    const double naive_mean = collector.totalWaitSum() / 3.0;
    const double naive_var =
        collector.totalWaitSqSum() / 3.0 - naive_mean * naive_mean;
    EXPECT_GT(std::abs(naive_var - 2.0 / 3.0), 0.5);
}

TEST(BatchWaitStatsTest, BeginBatchResetsTheAccumulator)
{
    MetricsCollector collector(1);
    Request req;
    req.agent = 1;
    req.issued = 0;
    collector.onServiceEnd(req, unitsToTicks(2.0));
    collector.beginBatch();
    EXPECT_EQ(collector.batchWaitStats().count(), 0u);
    collector.onServiceEnd(req, unitsToTicks(3.0));
    EXPECT_EQ(collector.batchWaitStats().count(), 1u);
    EXPECT_DOUBLE_EQ(collector.batchWaitStats().mean(), 3.0);
    // Cumulative sums keep counting across batches.
    EXPECT_EQ(collector.totalCompletions(), 2u);
}

TEST(BatchWaitStatsTest, RunnerBatchesMatchWelfordStatistics)
{
    // End-to-end: per-batch stddev must be non-negative and finite on
    // a real run (the old path could silently clamp a negative
    // variance to zero).
    const auto result =
        runScenario(smallConfig(2.0), protocolByKey("rr1"));
    for (const auto &batch : result.batches) {
        EXPECT_TRUE(std::isfinite(batch.waitStddev));
        EXPECT_GE(batch.waitStddev, 0.0);
        EXPECT_GT(batch.waitMean, 0.0);
    }
}

} // namespace
} // namespace busarb
