/**
 * @file
 * Tests for the report formatting module.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "experiment/protocols.hh"
#include "experiment/report.hh"
#include "experiment/runner.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

TEST(DescribeScenarioTest, MentionsTheKeyParameters)
{
    ScenarioConfig config = equalLoadScenario(10, 2.0, 0.5);
    const std::string text = describeScenario(config);
    EXPECT_NE(text.find("10 agents"), std::string::npos);
    EXPECT_NE(text.find("2.00"), std::string::npos);
    EXPECT_NE(text.find("cv 0.50"), std::string::npos);
    EXPECT_NE(text.find("arbitration 0.5 overlapped"), std::string::npos);
    EXPECT_NE(text.find("10 batches x 8000"), std::string::npos);
}

TEST(DescribeScenarioTest, MentionsSettleTimingAndOutstanding)
{
    ScenarioConfig config = equalLoadScenario(8, 1.0, 1.0);
    config.bus.settleTiming = true;
    config.bus.settleMode = BusParams::SettleMode::kWorstCase;
    for (auto &a : config.agents)
        a.maxOutstanding = 4;
    const std::string text = describeScenario(config);
    EXPECT_NE(text.find("settle-timed (worst-case"), std::string::npos);
    EXPECT_NE(text.find("4 outstanding/agent"), std::string::npos);
}

TEST(ReportTest, SummaryContainsTheMeasures)
{
    ScenarioConfig config = equalLoadScenario(6, 1.5, 1.0);
    config.numBatches = 3;
    config.batchSize = 500;
    config.warmup = 500;
    const auto result = runScenario(config, protocolByKey("rr1"));
    std::ostringstream os;
    printSummary(result, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("RR (impl 1"), std::string::npos);
    EXPECT_NE(out.find("mean wait W"), std::string::npos);
    EXPECT_NE(out.find("fairness ratio"), std::string::npos);
    EXPECT_NE(out.find("±"), std::string::npos);
}

TEST(ReportTest, ComparisonListsEveryProtocol)
{
    ScenarioConfig config = equalLoadScenario(6, 1.5, 1.0);
    config.numBatches = 3;
    config.batchSize = 500;
    config.warmup = 500;
    std::vector<ScenarioResult> results;
    results.push_back(runScenario(config, protocolByKey("rr1")));
    results.push_back(runScenario(config, protocolByKey("aap1")));
    std::ostringstream os;
    printComparison(results, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("RR (impl 1"), std::string::npos);
    EXPECT_NE(out.find("AAP-1"), std::string::npos);
    EXPECT_NE(out.find("retries"), std::string::npos);
}

TEST(ReportDeathTest, EmptyComparison)
{
    std::ostringstream os;
    EXPECT_DEATH(printComparison({}, os), "nothing to compare");
}

} // namespace
} // namespace busarb
