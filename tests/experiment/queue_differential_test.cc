/**
 * @file
 * Full-stack differential test for the event-queue policy seam: the
 * same scenarios pushed through the calendar and the reference heap
 * kernel must produce byte-identical artifacts — every trace record,
 * metric, and batch statistic, not just the summary numbers. This is
 * the determinism contract docs/KERNEL.md promises.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

std::string
metricsJson(const ScenarioResult &result)
{
    std::ostringstream os;
    result.metrics.writeJson(os);
    return os.str();
}

void
expectIdenticalRuns(ScenarioConfig config, const std::string &protocol)
{
    config.captureBinaryTrace = true;
    config.eventQueuePolicy = EventQueuePolicy::kCalendar;
    const auto calendar = runScenario(config, protocolByKey(protocol));
    config.eventQueuePolicy = EventQueuePolicy::kHeap;
    const auto heap = runScenario(config, protocolByKey(protocol));

    // Byte-identical event trace: same transactions at the same ticks
    // in the same order.
    ASSERT_FALSE(calendar.binaryTrace.empty());
    EXPECT_EQ(calendar.binaryTrace, heap.binaryTrace);

    // Identical metrics tree (bus.*, agent.NN.*, wait.*).
    EXPECT_EQ(metricsJson(calendar), metricsJson(heap));

    // Identical batch statistics (bit-exact, not approximately equal).
    ASSERT_EQ(calendar.batches.size(), heap.batches.size());
    for (std::size_t b = 0; b < calendar.batches.size(); ++b) {
        EXPECT_EQ(calendar.batches[b].waitMean, heap.batches[b].waitMean)
            << "batch " << b;
        EXPECT_EQ(calendar.batches[b].duration, heap.batches[b].duration)
            << "batch " << b;
        EXPECT_EQ(calendar.batches[b].completions,
                  heap.batches[b].completions)
            << "batch " << b;
        EXPECT_EQ(calendar.batches[b].passes, heap.batches[b].passes)
            << "batch " << b;
    }
}

TEST(QueueDifferentialTest, Table45JustMissScenarioIsIdentical)
{
    // The paper's most tie-sensitive experiment: Table 4.5's "just
    // miss" workload only reproduces when same-tick events resolve in
    // exactly the contractual (tick, priority, id) order, so it is the
    // sharpest full-stack probe of the queue ordering.
    ScenarioConfig config = worstCaseRrScenario(10, 0.0);
    config.numBatches = 5;
    config.batchSize = 1500;
    config.warmup = 1500;
    expectIdenticalRuns(config, "rr1");
}

TEST(QueueDifferentialTest, Table45ResultStillHoldsOnBothKernels)
{
    // And the headline number itself: the slow agent is served every
    // other cycle (throughput ratio ~0.5) on either kernel.
    ScenarioConfig config = worstCaseRrScenario(10, 0.0);
    config.numBatches = 5;
    config.batchSize = 1500;
    config.warmup = 1500;
    for (const auto policy :
         {EventQueuePolicy::kCalendar, EventQueuePolicy::kHeap}) {
        config.eventQueuePolicy = policy;
        const auto result = runScenario(config, protocolByKey("rr1"));
        EXPECT_NEAR(result.throughputRatio(1, 2).value, 0.5, 0.05);
    }
}

TEST(QueueDifferentialTest, StochasticFcfsScenarioIsIdentical)
{
    // A stochastic workload exercises bucket spreading and calendar
    // resizes far more than the deterministic worst case does.
    ScenarioConfig config = equalLoadScenario(8, 2.0);
    config.numBatches = 3;
    config.batchSize = 800;
    config.warmup = 400;
    expectIdenticalRuns(config, "fcfs1");
}

TEST(QueueDifferentialTest, TwentyAgentWorkloadIsIdentical)
{
    // The acceptance-gate workload (20 agents) through both kernels.
    ScenarioConfig config = equalLoadScenario(20, 2.0);
    config.numBatches = 3;
    config.batchSize = 800;
    config.warmup = 400;
    expectIdenticalRuns(config, "rr1");
}

} // namespace
} // namespace busarb
