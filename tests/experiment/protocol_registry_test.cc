/**
 * @file
 * Tests for the protocol registry seam: the descriptor matrix (every
 * registered protocol instantiates, smokes through the runner, and
 * round-trips its spec text), the registry-vs-legacy golden diff, and
 * the spec-string error paths with their did-you-mean hints.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/fcfs.hh"
#include "experiment/protocol_registry.hh"
#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

/** A small, fast scenario for registry smoke runs. */
ScenarioConfig
tinyScenario()
{
    ScenarioConfig config = equalLoadScenario(6, 1.0, 1.0);
    config.numBatches = 3;
    config.batchSize = 200;
    config.warmup = 200;
    return config;
}

std::string
metricsCsv(const ScenarioResult &result)
{
    std::ostringstream os;
    result.metrics.writeCsv(os);
    return os.str();
}

std::string
parseError(const std::string &text)
{
    ProtocolSpec spec;
    std::string error;
    EXPECT_FALSE(
        ProtocolRegistry::builtin().parseSpec(text, spec, error))
        << text;
    return error;
}

ProtocolSpec
parseOk(const std::string &text)
{
    ProtocolSpec spec;
    std::string error;
    EXPECT_TRUE(ProtocolRegistry::builtin().parseSpec(text, spec, error))
        << text << ": " << error;
    return spec;
}

TEST(RegistryCatalogTest, EveryDescriptorInstantiatesWithDefaults)
{
    const ProtocolRegistry &registry = ProtocolRegistry::builtin();
    ASSERT_FALSE(registry.all().empty());
    for (const auto &desc : registry.all()) {
        const ProtocolSpec spec = parseOk(desc.key);
        EXPECT_EQ(spec.key, desc.key);
        EXPECT_TRUE(spec.params.empty()) << desc.key;
        ProtocolFactory factory = registry.instantiate(spec);
        auto protocol = factory();
        ASSERT_NE(protocol, nullptr) << desc.key;
        protocol->reset(8);
        EXPECT_FALSE(protocol->name().empty()) << desc.key;
        EXPECT_FALSE(protocol->wantsPass()) << desc.key;
        protocol->reset(4); // reusable after a second reset
        EXPECT_FALSE(protocol->wantsPass()) << desc.key;
    }
}

TEST(RegistryCatalogTest, EveryDescriptorSmokesThroughRunner)
{
    const ProtocolRegistry &registry = ProtocolRegistry::builtin();
    for (const auto &desc : registry.all()) {
        const auto result = runScenario(
            tinyScenario(), registry.instantiate(parseOk(desc.key)));
        EXPECT_EQ(result.batches.size(), 3u) << desc.key;
        EXPECT_FALSE(result.protocolName.empty()) << desc.key;
    }
}

TEST(RegistryCatalogTest, AllExplicitDefaultsRoundTrip)
{
    // Spell out every declared parameter at its default value; the
    // canonical spec must re-parse to itself (parse . format = id).
    const ProtocolRegistry &registry = ProtocolRegistry::builtin();
    for (const auto &desc : registry.all()) {
        std::string text = desc.key;
        for (std::size_t i = 0; i < desc.params.size(); ++i) {
            text += i == 0 ? ":" : ",";
            text += desc.params[i].name + "=" +
                    desc.params[i].defaultValue;
        }
        const ProtocolSpec spec = parseOk(text);
        EXPECT_EQ(spec.params.size(), desc.params.size()) << desc.key;
        const ProtocolSpec again = parseOk(spec.format());
        EXPECT_EQ(again, spec) << desc.key;
        EXPECT_EQ(again.format(), spec.format()) << desc.key;
    }
}

TEST(RegistryCatalogTest, PrintTableListsEveryKeyAndParameter)
{
    std::ostringstream os;
    ProtocolRegistry::builtin().printTable(os);
    const std::string table = os.str();
    for (const auto &desc : ProtocolRegistry::builtin().all()) {
        EXPECT_NE(table.find(desc.key), std::string::npos) << desc.key;
        for (const auto &param : desc.params)
            EXPECT_NE(table.find(param.name), std::string::npos)
                << desc.key << ":" << param.name;
    }
    EXPECT_NE(table.find("wrr"), std::string::npos);
    EXPECT_NE(table.find("§3.1"), std::string::npos);
    EXPECT_NE(table.find("(parameterized form)"), std::string::npos);
}

TEST(RegistrySpecCanonicalTest, OptionsCanonicalizeToDeclarationOrder)
{
    EXPECT_EQ(parseOk("fcfs2:wrap,window=0.05,bits=3").format(),
              "fcfs2:bits=3,overflow=wrap,window=0.05");
    EXPECT_EQ(parseOk("rr1:rr-within-class=false,priority").format(),
              "rr1:priority=true,rr-within-class=false");
    EXPECT_EQ(parseOk("wrr:weights=4/1/1/1").format(),
              "wrr:weights=4/1/1/1");
}

TEST(RegistrySpecCanonicalTest, AliasesResolveToCanonicalName)
{
    EXPECT_EQ(parseOk("fcfs1:counter_bits=8").format(), "fcfs1:bits=8");
}

TEST(RegistrySpecCanonicalTest, FamilyAliasesExposeSameProtocols)
{
    const ProtocolRegistry &registry = ProtocolRegistry::builtin();
    auto rr3 = registry.instantiate(parseOk("rr:impl=3"))();
    auto rr3_direct = registry.instantiate(parseOk("rr3"))();
    rr3->reset(8);
    rr3_direct->reset(8);
    EXPECT_EQ(rr3->name(), rr3_direct->name());

    auto fcfs2 = registry.instantiate(
        parseOk("fcfs:strategy=incr_line,counter_bits=8"))();
    auto fcfs2_direct = registry.instantiate(parseOk("fcfs2:bits=8"))();
    fcfs2->reset(8);
    fcfs2_direct->reset(8);
    EXPECT_EQ(fcfs2->name(), fcfs2_direct->name());
}

TEST(RegistryGoldenDiffTest, RrMatchesLegacyFactoryMetrics)
{
    const auto legacy = runScenario(tinyScenario(),
                                    makeRoundRobinFactory());
    const auto registry = runScenario(
        tinyScenario(), ProtocolRegistry::builtin().fromSpec("rr1"));
    EXPECT_EQ(registry.protocolName, legacy.protocolName);
    EXPECT_EQ(metricsCsv(registry), metricsCsv(legacy));
}

TEST(RegistryGoldenDiffTest, FcfsMatchesLegacyFactoryMetrics)
{
    FcfsConfig config;
    config.strategy = FcfsStrategy::kIncrLine;
    config.counterBits = 3;
    config.overflow = OverflowPolicy::kWrap;
    config.incrWindow = 0.05;
    const auto legacy = runScenario(tinyScenario(),
                                    makeFcfsFactory(config));
    const auto registry = runScenario(
        tinyScenario(), ProtocolRegistry::builtin().fromSpec(
                            "fcfs2:window=0.05,bits=3,wrap"));
    EXPECT_EQ(registry.protocolName, legacy.protocolName);
    EXPECT_EQ(metricsCsv(registry), metricsCsv(legacy));
}

TEST(RegistryErrorTest, UnknownKeyGetsDidYouMeanHint)
{
    EXPECT_EQ(parseError("rr9"),
              "unknown protocol key 'rr9'; did you mean 'rr1'?");
    EXPECT_EQ(parseError("fcsf1"),
              "unknown protocol key 'fcsf1'; did you mean 'fcfs1'?");
    // Nothing is close: no hint at all.
    EXPECT_EQ(parseError("completely-bogus"),
              "unknown protocol key 'completely-bogus'");
}

TEST(RegistryErrorTest, UnknownOptionGetsDidYouMeanHint)
{
    EXPECT_EQ(parseError("fcfs1:bitz=3"),
              "unknown option 'bitz' for protocol 'fcfs1'; did you mean "
              "'bits'?");
    EXPECT_EQ(parseError("rr1:priorty"),
              "unknown option 'priorty' for protocol 'rr1'; did you "
              "mean 'priority'?");
}

TEST(RegistryErrorTest, ValuesAreRangeAndTypeChecked)
{
    EXPECT_EQ(parseError("fcfs1:bits=99"),
              "option 'bits' out of range: got '99', expected [0, 32]");
    EXPECT_EQ(parseError("fcfs1:bits=many"),
              "option 'bits' expects an integer, got 'many'");
    EXPECT_EQ(parseError("fcfs1:window=never"),
              "option 'window' expects a number, got 'never'");
    EXPECT_EQ(parseError("rr1:priority=maybe"),
              "option 'priority' expects true/false, got 'maybe'");
    EXPECT_EQ(parseError("fcfs1:bits=3,bits=4"),
              "duplicate option 'bits'");
    EXPECT_EQ(parseError("fcfs1:window"),
              "option 'window' needs a value");
}

TEST(RegistryErrorTest, EnumValuesGetDidYouMeanHint)
{
    EXPECT_EQ(parseError("fcfs:strategy=incr_lines"),
              "option 'strategy' expects one of "
              "increment_on_lose|incr_line, got 'incr_lines'; did you "
              "mean 'incr_line'?");
}

TEST(RegistryErrorTest, WeightListsAreValidatedPerElement)
{
    EXPECT_EQ(parseError("wrr:weights=4/x"),
              "option 'weights' expects a '/'-separated list of "
              "integers, got '4/x'");
    EXPECT_EQ(parseError("wrr:weights=0/1"),
              "option 'weights' element out of range: got '0', "
              "expected [1, 4096]");
}

TEST(RegistryErrorTest, CrossParameterValidationRuns)
{
    EXPECT_EQ(parseError("rr:impl=2,priority"),
              "option 'priority' requires impl=1 (the rr-priority bit "
              "implementation)");
}

TEST(RegistryErrorDeathTest, FactoryOrExitUsesExitCodeTwo)
{
    EXPECT_EXIT(protocolFactoryOrExit("busarb_test", "nope"),
                ::testing::ExitedWithCode(2),
                "busarb_test: bad protocol spec 'nope': unknown "
                "protocol key");
    EXPECT_EXIT(protocolFactoryOrExit("busarb_test", "rr1:turbo"),
                ::testing::ExitedWithCode(2), "unknown option 'turbo'");
}

TEST(RegistryExtensionTest, WrrRegistersThroughItsOwnUnitAlone)
{
    // The zero-edit seam: a registry holding only the wrr registration
    // unit serves wrr specs end to end, proving nothing else needs to
    // know the protocol exists.
    ProtocolRegistry registry;
    registerWeightedRoundRobin(registry);
    ASSERT_NE(registry.find("wrr"), nullptr);
    ProtocolSpec spec;
    std::string error;
    ASSERT_TRUE(registry.parseSpec("wrr:weights=4/1", spec, error))
        << error;
    auto protocol = registry.instantiate(spec)();
    protocol->reset(2);
    EXPECT_EQ(protocol->name(), "WRR (weights 4/1)");
}

} // namespace
} // namespace busarb
