/**
 * @file
 * Unit tests for the metrics collector, table formatter, protocol
 * registry, and the scenario runner.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "core/fcfs.hh"
#include "experiment/csv.hh"
#include "experiment/metrics.hh"
#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "experiment/table.hh"

namespace busarb {
namespace {

Request
makeReq(AgentId agent, Tick issued, std::uint64_t seq)
{
    Request r;
    r.agent = agent;
    r.issued = issued;
    r.seq = seq;
    return r;
}

TEST(MetricsTest, WaitAccounting)
{
    MetricsCollector collector(4);
    const Request r = makeReq(2, 0, 1);
    collector.onServiceStart(r, unitsToTicks(0.5));
    collector.onServiceEnd(r, unitsToTicks(1.5));
    EXPECT_EQ(collector.totalCompletions(), 1u);
    EXPECT_DOUBLE_EQ(collector.totalWaitSum(), 1.5);
    EXPECT_DOUBLE_EQ(collector.totalWaitSqSum(), 2.25);
    const auto &sums = collector.agent(2);
    EXPECT_EQ(sums.completions, 1u);
    EXPECT_DOUBLE_EQ(sums.waitSum, 1.5);
    EXPECT_DOUBLE_EQ(sums.queueWaitSum, 0.5);
}

TEST(MetricsTest, OverlapIsClampedByWait)
{
    MetricsCollector collector(2);
    collector.setOverlapLimit(1, 2.0);
    const Request shortWait = makeReq(1, 0, 1);
    collector.onServiceStart(shortWait, unitsToTicks(0.0));
    collector.onServiceEnd(shortWait, unitsToTicks(1.0)); // W = 1 < V
    const Request longWait = makeReq(1, 0, 2);
    collector.onServiceStart(longWait, unitsToTicks(4.0));
    collector.onServiceEnd(longWait, unitsToTicks(5.0)); // W = 5 > V
    EXPECT_DOUBLE_EQ(collector.agent(1).overlapSum, 1.0 + 2.0);
}

TEST(MetricsTest, ThinkRecording)
{
    MetricsCollector collector(2);
    collector.recordThink(1, 3.0);
    collector.recordThink(1, 2.0);
    EXPECT_DOUBLE_EQ(collector.agent(1).thinkSum, 5.0);
    EXPECT_DOUBLE_EQ(collector.agent(2).thinkSum, 0.0);
}

TEST(MetricsTest, HistogramOnlyAfterEnable)
{
    MetricsCollector collector(2, 0.5, 10);
    const Request r1 = makeReq(1, 0, 1);
    collector.onServiceStart(r1, 0);
    collector.onServiceEnd(r1, unitsToTicks(1.0));
    EXPECT_EQ(collector.histogram().count(), 0u);
    collector.enableHistogram();
    const Request r2 = makeReq(1, 0, 2);
    collector.onServiceStart(r2, 0);
    collector.onServiceEnd(r2, unitsToTicks(1.0));
    EXPECT_EQ(collector.histogram().count(), 1u);
}

TEST(TextTableTest, AlignsColumns)
{
    TextTable table({"a", "long header"});
    table.addRow({"1234567", "x"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("long header"), std::string::npos);
    EXPECT_NE(out.find("1234567"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, FormatHelpers)
{
    EXPECT_EQ(formatFixed(1.23456, 2), "1.23");
    EXPECT_EQ(formatFixed(2.0, 0), "2");
    EXPECT_EQ(formatEstimate(Estimate{1.5, 0.25}, 2), "1.50 ± 0.25");
}

TEST(TextTableDeathTest, RowSizeMismatch)
{
    TextTable table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only one"}), "cells");
}

TEST(ProtocolRegistryTest, AllKeysConstructible)
{
    for (const auto &named : allProtocols()) {
        auto protocol = named.factory();
        ASSERT_NE(protocol, nullptr) << named.key;
        protocol->reset(8);
        EXPECT_FALSE(protocol->name().empty());
        EXPECT_FALSE(protocol->wantsPass());
    }
}

TEST(ProtocolRegistryTest, LookupByKey)
{
    auto factory = protocolByKey("rr2");
    auto protocol = factory();
    EXPECT_NE(protocol->name().find("impl 2"), std::string::npos);
}

TEST(ProtocolSpecTest, BareKeysMatchRegistry)
{
    for (const auto &named : allProtocols()) {
        auto protocol = protocolFromSpec(named.key)();
        auto reference = named.factory();
        protocol->reset(8);
        reference->reset(8);
        EXPECT_EQ(protocol->name(), reference->name()) << named.key;
    }
}

TEST(ProtocolSpecTest, FcfsOptionsApply)
{
    auto factory =
        protocolFromSpec("fcfs2:window=0.05,bits=3,wrap,r=4");
    auto protocol = factory();
    auto *fcfs = dynamic_cast<FcfsProtocol *>(protocol.get());
    ASSERT_NE(fcfs, nullptr);
    fcfs->reset(10);
    EXPECT_EQ(fcfs->counterBits(), 3);
    EXPECT_NE(fcfs->name().find("a-incr"), std::string::npos);
}

TEST(ProtocolSpecTest, RrPriorityOptionsApply)
{
    auto protocol = protocolFromSpec("rr1:priority")();
    protocol->reset(8);
    Request req;
    req.agent = 1;
    req.seq = 1;
    req.priority = true;
    protocol->requestPosted(req); // must not be fatal
    protocol->beginPass(0);
    const auto result = protocol->completePass(0);
    EXPECT_EQ(result.winner.agent, 1);
}

TEST(ProtocolSpecTest, TicketAndHybridBits)
{
    auto ticket = protocolFromSpec("ticket:bits=6")();
    ticket->reset(4);
    EXPECT_NE(ticket->name().find("Ticket"), std::string::npos);
    auto hybrid = protocolFromSpec("hybrid:bits=2")();
    hybrid->reset(4);
    EXPECT_NE(hybrid->name().find("Hybrid"), std::string::npos);
}

TEST(ProtocolSpecDeathTest, BadSpecsAreFatal)
{
    EXPECT_EXIT(protocolFromSpec("nope:priority"),
                ::testing::ExitedWithCode(1), "unknown protocol key");
    EXPECT_EXIT(protocolFromSpec("rr1:turbo"),
                ::testing::ExitedWithCode(1), "unknown option");
    EXPECT_EXIT(protocolFromSpec("fcfs1:bits"),
                ::testing::ExitedWithCode(1), "needs a value");
    EXPECT_EXIT(protocolFromSpec("fcfs1:counting=sometimes"),
                ::testing::ExitedWithCode(1), "always");
    EXPECT_EXIT(protocolFromSpec("central-rr:bits=2"),
                ::testing::ExitedWithCode(1), "unknown option");
    EXPECT_EXIT(protocolFromSpec("rr1:priority=maybe"),
                ::testing::ExitedWithCode(1), "true/false");
}

TEST(ProtocolRegistryDeathTest, UnknownKey)
{
    EXPECT_EXIT(protocolByKey("nope"), ::testing::ExitedWithCode(1),
                "unknown protocol");
}

/** A small, fast scenario for runner tests. */
ScenarioConfig
smallScenario(double load = 1.0)
{
    ScenarioConfig config = equalLoadScenario(6, load, 1.0);
    config.numBatches = 5;
    config.batchSize = 400;
    config.warmup = 400;
    return config;
}

TEST(RunnerTest, ProducesRequestedBatches)
{
    const auto result = runScenario(smallScenario(), protocolByKey("rr1"));
    EXPECT_EQ(result.batches.size(), 5u);
    EXPECT_EQ(result.numAgents, 6);
    EXPECT_FALSE(result.protocolName.empty());
    for (const auto &b : result.batches) {
        EXPECT_GT(b.duration, 0.0);
        std::uint64_t total = 0;
        for (auto c : b.completions)
            total += c;
        EXPECT_EQ(total, 400u);
    }
}

TEST(RunnerTest, LowLoadThroughputMatchesOfferedLoad)
{
    const auto result =
        runScenario(smallScenario(0.3), protocolByKey("rr1"));
    const Estimate thr = result.throughput();
    EXPECT_NEAR(thr.value, 0.3, 0.03);
    const Estimate util = result.utilization();
    EXPECT_NEAR(util.value, 0.3, 0.03);
}

TEST(RunnerTest, SaturatedBusIsFullyUtilized)
{
    const auto result =
        runScenario(smallScenario(3.0), protocolByKey("fcfs1"));
    EXPECT_NEAR(result.utilization().value, 1.0, 1e-6);
    EXPECT_NEAR(result.throughput().value, 1.0, 1e-6);
}

TEST(RunnerTest, HistogramCollectedWhenRequested)
{
    auto config = smallScenario();
    config.collectHistogram = true;
    const auto result = runScenario(config, protocolByKey("rr1"));
    EXPECT_EQ(result.waitHistogram.count(), 5u * 400u);
    EXPECT_GT(result.waitHistogram.cdf(1000.0), 0.99);
}

TEST(RunnerTest, PerAgentHistogramsSumToGlobal)
{
    auto config = smallScenario(2.0);
    config.collectHistogram = true;
    config.collectPerAgentHistograms = true;
    const auto result = runScenario(config, protocolByKey("rr1"));
    ASSERT_EQ(result.agentWaitHistograms.size(), 6u);
    std::uint64_t total = 0;
    for (const auto &h : result.agentWaitHistograms)
        total += h.count();
    EXPECT_EQ(total, result.waitHistogram.count());
}

TEST(RunnerTest, PerAgentHistogramsExposeFixedPriorityDominance)
{
    // Under fixed priority, the top identity's waiting-time CDF
    // stochastically dominates the bottom's.
    auto config = smallScenario(2.0);
    config.collectPerAgentHistograms = true;
    const auto result = runScenario(config, protocolByKey("fixed"));
    const auto &hi = result.agentWaitHistograms[5];
    const auto &lo = result.agentWaitHistograms[0];
    ASSERT_GT(hi.count(), 0u);
    ASSERT_GT(lo.count(), 0u);
    // Finite-sample dominance: allow sampling noise at each point.
    for (double t : {2.0, 4.0, 8.0}) {
        EXPECT_GE(hi.cdf(t), lo.cdf(t) - 0.02) << t;
    }
    EXPECT_GT(hi.cdf(4.0), lo.cdf(4.0) + 0.2);
}

TEST(MetricsDeathTest, PerAgentHistogramRequiresEnable)
{
    MetricsCollector collector(3);
    EXPECT_DEATH(collector.agentHistogram(1), "not enabled");
    collector.enablePerAgentHistograms();
    EXPECT_DEATH(collector.agentHistogram(4), "out of range");
}

TEST(RunnerTest, AgentThroughputsSumToTotal)
{
    const auto result =
        runScenario(smallScenario(2.0), protocolByKey("rr1"));
    double sum = 0.0;
    for (AgentId a = 1; a <= 6; ++a)
        sum += result.agentThroughput(a).value;
    EXPECT_NEAR(sum, result.throughput().value, 1e-9);
}

TEST(RunnerTest, MinimumWaitIsArbitrationPlusService)
{
    const auto result =
        runScenario(smallScenario(0.1), protocolByKey("rr1"));
    // W >= 1.5 always; near-idle bus means W barely above 1.5.
    EXPECT_GT(result.meanWait().value, 1.49);
    EXPECT_LT(result.meanWait().value, 1.8);
}

TEST(RunnerTest, SameSeedReproduces)
{
    const auto r1 = runScenario(smallScenario(), protocolByKey("fcfs1"));
    const auto r2 = runScenario(smallScenario(), protocolByKey("fcfs1"));
    ASSERT_EQ(r1.batches.size(), r2.batches.size());
    for (std::size_t i = 0; i < r1.batches.size(); ++i) {
        EXPECT_DOUBLE_EQ(r1.batches[i].duration,
                         r2.batches[i].duration);
        EXPECT_DOUBLE_EQ(r1.batches[i].waitMean, r2.batches[i].waitMean);
    }
}

TEST(RunnerTest, DifferentSeedsDiffer)
{
    auto config = smallScenario();
    const auto r1 = runScenario(config, protocolByKey("fcfs1"));
    config.seed = 999;
    const auto r2 = runScenario(config, protocolByKey("fcfs1"));
    EXPECT_NE(r1.batches[0].waitMean, r2.batches[0].waitMean);
}

TEST(CsvTest, BatchesCsvHasHeaderAndRows)
{
    const auto result = runScenario(smallScenario(), protocolByKey("rr1"));
    std::ostringstream os;
    writeBatchesCsv(result, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("batch,duration,utilization"), std::string::npos);
    EXPECT_NE(out.find("completions_6"), std::string::npos);
    // Header + one line per batch.
    EXPECT_EQ(static_cast<int>(std::count(out.begin(), out.end(), '\n')),
              1 + static_cast<int>(result.batches.size()));
}

TEST(CsvTest, HistogramCsvEndsWithOverflowRow)
{
    auto config = smallScenario();
    config.collectHistogram = true;
    config.histBinWidth = 0.5;
    config.histBins = 50;
    const auto result = runScenario(config, protocolByKey("rr1"));
    std::ostringstream os;
    writeHistogramCsv(result, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("bin_lo,bin_hi,count,cdf"), std::string::npos);
    EXPECT_NE(out.find(",inf,"), std::string::npos);
}

TEST(CsvTest, SummaryRowsRoundTrip)
{
    const auto result = runScenario(smallScenario(), protocolByKey("rr1"));
    std::ostringstream os;
    writeSummaryCsvHeader(os);
    writeSummaryCsvRow(result, "load=1.0", os);
    writeSummaryCsvRow(result, "again", os);
    const std::string out = os.str();
    EXPECT_NE(out.find("label,protocol,throughput"), std::string::npos);
    EXPECT_NE(out.find("load=1.0,RR"), std::string::npos);
    EXPECT_EQ(static_cast<int>(std::count(out.begin(), out.end(), '\n')),
              3);
}

TEST(RunnerTest, ThroughputRatioSurvivesStarvation)
{
    // Fixed priority at heavy load starves agent 1 in some batches; the
    // ratio must degrade gracefully instead of failing.
    auto config = smallScenario(3.0);
    const auto result = runScenario(config, protocolByKey("fixed"));
    const Estimate ratio = result.throughputRatio(6, 1);
    EXPECT_TRUE(ratio.value > 1.0); // possibly +inf
    EXPECT_DOUBLE_EQ(ratio.halfWidth, 0.0);
}

TEST(RunnerDeathTest, MisconfiguredScenario)
{
    ScenarioConfig config = smallScenario();
    config.agents.pop_back();
    EXPECT_DEATH(runScenario(config, protocolByKey("rr1")),
                 "agent traits count");
}

} // namespace
} // namespace busarb
