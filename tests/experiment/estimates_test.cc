/**
 * @file
 * Consistency tests for the ScenarioResult estimate helpers.
 */

#include <gtest/gtest.h>

#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

ScenarioConfig
config(double load = 1.5, double overlap = 0.0)
{
    ScenarioConfig c = equalLoadScenario(6, load, 1.0);
    c.numBatches = 5;
    c.batchSize = 1200;
    c.warmup = 1200;
    if (overlap > 0.0)
        setOverlapLimit(c, overlap);
    return c;
}

TEST(EstimatesTest, AgentMeanWaitsAverageToGlobalMean)
{
    const auto result = runScenario(config(), protocolByKey("rr1"));
    // RR serves everyone equally, so the completion-weighted average of
    // per-agent means equals the global mean; with equal rates the
    // plain average is close too.
    double sum = 0.0;
    for (AgentId a = 1; a <= 6; ++a)
        sum += result.agentMeanWait(a).value;
    EXPECT_NEAR(sum / 6.0, result.meanWait().value,
                0.02 * result.meanWait().value);
}

TEST(EstimatesTest, AgentProductivityMatchesThinkFraction)
{
    // Without overlap, productivity = E[think] / (E[think] + E[W]).
    const auto result = runScenario(config(), protocolByKey("rr1"));
    const double z = interrequestForLoad(1.5 / 6.0);
    const double w = result.meanWait().value;
    for (AgentId a = 1; a <= 6; ++a) {
        EXPECT_NEAR(result.agentProductivity(a).value, z / (z + w),
                    0.03)
            << a;
    }
}

TEST(EstimatesTest, FullOverlapMakesProductivityOne)
{
    // With an overlap limit far above any wait, every waiting unit is
    // overlapped with useful work: productivity -> 1 and residual
    // wait -> 0.
    const auto result =
        runScenario(config(1.5, 1000.0), protocolByKey("rr1"));
    EXPECT_NEAR(result.productivity().value, 1.0, 1e-9);
    EXPECT_NEAR(result.residualWait().value, 0.0, 1e-9);
}

TEST(EstimatesTest, ZeroOverlapResidualEqualsMeanWait)
{
    const auto result = runScenario(config(), protocolByKey("fcfs1"));
    EXPECT_NEAR(result.residualWait().value, result.meanWait().value,
                1e-9);
}

TEST(EstimatesTest, PartialOverlapBracketsResidual)
{
    const double v = 3.0;
    const auto result =
        runScenario(config(1.5, v), protocolByKey("fcfs1"));
    const double w = result.meanWait().value;
    const double residual = result.residualWait().value;
    // E[max(W - v, 0)] lies between max(E[W] - v, 0) (Jensen) and E[W].
    EXPECT_GE(residual, w - v - 1e-9);
    EXPECT_LE(residual, w);
    EXPECT_GT(residual, 0.0);
}

TEST(EstimatesTest, WaitPercentilesBracketTheMean)
{
    auto c = config(2.0);
    c.collectHistogram = true;
    const auto result = runScenario(c, protocolByKey("fcfs1"));
    const double median = result.waitPercentile(0.5);
    const double p95 = result.waitPercentile(0.95);
    EXPECT_LT(result.waitPercentile(0.05), median);
    EXPECT_LT(median, p95);
    EXPECT_NEAR(median, result.meanWait().value,
                result.waitStddev().value);
}

TEST(EstimatesDeathTest, PercentileWithoutHistogram)
{
    const auto result = runScenario(config(), protocolByKey("rr1"));
    EXPECT_DEATH(result.waitPercentile(0.5), "collectHistogram");
}

TEST(EstimatesDeathTest, OutOfRangeAgents)
{
    const auto result = runScenario(config(), protocolByKey("rr1"));
    EXPECT_DEATH(result.agentMeanWait(0), "out of range");
    EXPECT_DEATH(result.agentMeanWait(7), "out of range");
    EXPECT_DEATH(result.agentProductivity(99), "out of range");
    EXPECT_DEATH(result.agentThroughput(-1), "out of range");
}

} // namespace
} // namespace busarb
