/**
 * @file
 * Unit tests for the command-line flag parser.
 */

#include <vector>

#include <gtest/gtest.h>

#include "experiment/cli.hh"

namespace busarb {
namespace {

ArgParser
makeParser()
{
    ArgParser parser("prog", "test program");
    parser.addStringFlag("name", "default", "a string");
    parser.addIntFlag("count", 7, "an int");
    parser.addDoubleFlag("rate", 1.5, "a double");
    parser.addBoolFlag("verbose", false, "a bool");
    return parser;
}

bool
parse(ArgParser &parser, std::vector<const char *> args)
{
    args.insert(args.begin(), "prog");
    return parser.parse(static_cast<int>(args.size()), args.data());
}

TEST(ArgParserTest, DefaultsApplyWithoutArguments)
{
    auto parser = makeParser();
    EXPECT_TRUE(parse(parser, {}));
    EXPECT_EQ(parser.getString("name"), "default");
    EXPECT_EQ(parser.getInt("count"), 7);
    EXPECT_DOUBLE_EQ(parser.getDouble("rate"), 1.5);
    EXPECT_FALSE(parser.getBool("verbose"));
}

TEST(ArgParserTest, SpaceSeparatedValues)
{
    auto parser = makeParser();
    EXPECT_TRUE(parse(parser, {"--name", "abc", "--count", "42",
                               "--rate", "0.25"}));
    EXPECT_EQ(parser.getString("name"), "abc");
    EXPECT_EQ(parser.getInt("count"), 42);
    EXPECT_DOUBLE_EQ(parser.getDouble("rate"), 0.25);
}

TEST(ArgParserTest, EqualsSeparatedValues)
{
    auto parser = makeParser();
    EXPECT_TRUE(parse(parser, {"--name=xyz", "--count=-3",
                               "--rate=2.5e-1", "--verbose=true"}));
    EXPECT_EQ(parser.getString("name"), "xyz");
    EXPECT_EQ(parser.getInt("count"), -3);
    EXPECT_DOUBLE_EQ(parser.getDouble("rate"), 0.25);
    EXPECT_TRUE(parser.getBool("verbose"));
}

TEST(ArgParserTest, BareBoolFlagMeansTrue)
{
    auto parser = makeParser();
    EXPECT_TRUE(parse(parser, {"--verbose"}));
    EXPECT_TRUE(parser.getBool("verbose"));
}

TEST(ArgParserTest, BoolFlagCanBeSetFalse)
{
    ArgParser parser("prog", "test");
    parser.addBoolFlag("feature", true, "on by default");
    std::vector<const char *> args{"prog", "--feature=false"};
    EXPECT_TRUE(parser.parse(2, args.data()));
    EXPECT_FALSE(parser.getBool("feature"));
}

TEST(ArgParserTest, PositionalArgumentsCollected)
{
    auto parser = makeParser();
    EXPECT_TRUE(parse(parser, {"input.txt", "--count", "3", "more"}));
    EXPECT_EQ(parser.positional(),
              (std::vector<std::string>{"input.txt", "more"}));
}

TEST(ArgParserTest, HelpStopsParsing)
{
    auto parser = makeParser();
    ::testing::internal::CaptureStdout();
    EXPECT_FALSE(parse(parser, {"--help"}));
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_EQ(parser.exitCode(), 0);
    EXPECT_NE(out.find("--count <int>"), std::string::npos);
    EXPECT_NE(out.find("test program"), std::string::npos);
}

TEST(ArgParserTest, UnknownFlagFails)
{
    auto parser = makeParser();
    ::testing::internal::CaptureStderr();
    EXPECT_FALSE(parse(parser, {"--nope"}));
    (void)::testing::internal::GetCapturedStderr();
    EXPECT_EQ(parser.exitCode(), 2);
}

TEST(ArgParserTest, TypeErrorsFail)
{
    {
        auto parser = makeParser();
        ::testing::internal::CaptureStderr();
        EXPECT_FALSE(parse(parser, {"--count", "seven"}));
        (void)::testing::internal::GetCapturedStderr();
        EXPECT_EQ(parser.exitCode(), 2);
    }
    {
        auto parser = makeParser();
        ::testing::internal::CaptureStderr();
        EXPECT_FALSE(parse(parser, {"--rate", "fast"}));
        (void)::testing::internal::GetCapturedStderr();
    }
    {
        // A bare bool flag never consumes the next token, so the bad
        // value must come via '='.
        auto parser = makeParser();
        ::testing::internal::CaptureStderr();
        EXPECT_FALSE(parse(parser, {"--verbose=maybe"}));
        (void)::testing::internal::GetCapturedStderr();
    }
}

TEST(ArgParserTest, MissingValueFails)
{
    auto parser = makeParser();
    ::testing::internal::CaptureStderr();
    EXPECT_FALSE(parse(parser, {"--count"}));
    (void)::testing::internal::GetCapturedStderr();
    EXPECT_EQ(parser.exitCode(), 2);
}

TEST(ArgParserTest, HelpTextListsAllFlags)
{
    auto parser = makeParser();
    const std::string help = parser.helpText();
    for (const char *needle :
         {"--name <string>", "--count <int>", "--rate <number>",
          "--verbose [true|false]", "--help"}) {
        EXPECT_NE(help.find(needle), std::string::npos) << needle;
    }
}

TEST(NumericParseTest, ParseLongAcceptsWholeIntegersOnly)
{
    long v = 0;
    EXPECT_TRUE(parseLong("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parseLong("-7", v));
    EXPECT_EQ(v, -7);
    EXPECT_FALSE(parseLong("", v));
    EXPECT_FALSE(parseLong("7x", v));
    EXPECT_FALSE(parseLong("x7", v));
}

TEST(NumericParseTest, ParseDoubleAcceptsWholeNumbersOnly)
{
    double v = 0.0;
    EXPECT_TRUE(parseDouble("0.25", v));
    EXPECT_DOUBLE_EQ(v, 0.25);
    EXPECT_TRUE(parseDouble("2.5e-1", v));
    EXPECT_DOUBLE_EQ(v, 0.25);
    EXPECT_FALSE(parseDouble("", v));
    EXPECT_FALSE(parseDouble("0.5,", v));
    EXPECT_FALSE(parseDouble("fast", v));
}

TEST(NumericParseTest, ListParsesAndSkipsEmptyTokens)
{
    const auto values =
        parseDoubleListOrExit("prog", "loads", "0.25,,0.5,2");
    EXPECT_EQ(values, (std::vector<double>{0.25, 0.5, 2.0}));
}

TEST(NumericParseDeathTest, BadListTokenExitsWithCode2)
{
    // The regression this guards: std::stod on a bad --loads token
    // used to abort with an uncaught std::invalid_argument instead of
    // a usage error naming the token.
    EXPECT_EXIT(parseDoubleListOrExit("prog", "loads", "0.5,bogus"),
                ::testing::ExitedWithCode(2), "bogus");
    EXPECT_EXIT(parseDoubleTokenOrExit("prog", "loads", "1.5x"),
                ::testing::ExitedWithCode(2), "1\\.5x");
}

TEST(ArgParserDeathTest, MisuseIsCaught)
{
    auto parser = makeParser();
    EXPECT_DEATH(parser.getString("undeclared"), "undeclared");
    EXPECT_DEATH(parser.getInt("name"), "wrong type");
    ArgParser dup("prog", "x");
    dup.addIntFlag("a", 1, "h");
    EXPECT_DEATH(dup.addIntFlag("a", 2, "h"), "twice");
}

} // namespace
} // namespace busarb
