/**
 * @file
 * Tests for declarative scenario specs: the INI-subset parser, the
 * canonical format() round trip, the single configForLoad() expansion
 * path shared by flags and files, and the error paths with their line
 * numbers and did-you-mean hints.
 */

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "experiment/cli.hh"
#include "experiment/scenario_spec.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

ScenarioSpec
parseOk(const std::string &text)
{
    ScenarioSpec spec;
    std::string error;
    EXPECT_TRUE(parseScenarioSpec(text, spec, error))
        << text << ": " << error;
    return spec;
}

std::string
parseError(const std::string &text)
{
    ScenarioSpec spec;
    std::string error;
    EXPECT_FALSE(parseScenarioSpec(text, spec, error)) << text;
    return error;
}

TEST(ScenarioSpecParseTest, EmptyTextYieldsDefaults)
{
    const ScenarioSpec spec = parseOk("");
    EXPECT_EQ(spec.family, "equal");
    EXPECT_EQ(spec.agents, 10);
    EXPECT_DOUBLE_EQ(spec.cv, 1.0);
    EXPECT_EQ(spec.maxOutstanding, 1);
    EXPECT_EQ(spec.batches, 10);
    EXPECT_EQ(spec.batchSize, 8000);
    EXPECT_EQ(spec.resolvedWarmup(), 8000u);
    EXPECT_EQ(spec.seed, 0x5eedcafeu);
    EXPECT_DOUBLE_EQ(spec.confidence, 0.90);
    EXPECT_TRUE(spec.loadTokens.empty());
    EXPECT_TRUE(spec.protocolSpecs.empty());
}

TEST(ScenarioSpecParseTest, CommentsAndBlankLinesAreIgnored)
{
    const ScenarioSpec spec = parseOk("# heading comment\n"
                                      "\n"
                                      "[workload]\n"
                                      "; another comment style\n"
                                      "agents = 16\n"
                                      "  cv = 2  \n");
    EXPECT_EQ(spec.agents, 16);
    EXPECT_DOUBLE_EQ(spec.cv, 2.0);
}

TEST(ScenarioSpecParseTest, LoadRangesExpandInclusively)
{
    const ScenarioSpec spec =
        parseOk("[sweep]\nloads = 0.5:2:0.5 5\n");
    EXPECT_EQ(spec.loadTokens,
              (std::vector<std::string>{"0.5", "1", "1.5", "2", "5"}));
}

TEST(ScenarioSpecParseTest, SeedAcceptsHex)
{
    EXPECT_EQ(parseOk("[run]\nseed = 0x10\n").seed, 16u);
    EXPECT_EQ(parseOk("[run]\nseed = 12345\n").seed, 12345u);
}

TEST(ScenarioSpecParseTest, WarmupDefaultsToBatchSize)
{
    EXPECT_EQ(parseOk("[run]\nbatch-size = 4000\n").resolvedWarmup(),
              4000u);
    EXPECT_EQ(parseOk("[run]\nbatch-size = 4000\nwarmup = 0\n")
                  .resolvedWarmup(),
              0u);
}

TEST(ScenarioSpecParseTest, ListKeysAccumulateAcrossLines)
{
    const ScenarioSpec spec = parseOk("[protocol]\n"
                                      "spec = rr1\n"
                                      "spec = fcfs1:window=0.05\n"
                                      "[sweep]\n"
                                      "loads = 1\n"
                                      "loads = 2 3\n");
    EXPECT_EQ(spec.protocolSpecs,
              (std::vector<std::string>{"rr1", "fcfs1:window=0.05"}));
    EXPECT_EQ(spec.loadTokens,
              (std::vector<std::string>{"1", "2", "3"}));
}

TEST(ScenarioSpecFormatTest, ParseFormatRoundTrips)
{
    const ScenarioSpec spec = parseOk("[workload]\n"
                                      "family = unequal\n"
                                      "agents = 8\n"
                                      "unequal-factor = 4\n"
                                      "cv = 2\n"
                                      "max-outstanding = 4\n"
                                      "[run]\n"
                                      "batches = 5\n"
                                      "batch-size = 400\n"
                                      "seed = 0x10\n"
                                      "[sweep]\n"
                                      "loads = 1 1.5\n"
                                      "protocols = rr1 wrr:weights=4/1\n");
    const std::string canonical = spec.format();
    const ScenarioSpec again = parseOk(canonical);
    EXPECT_EQ(again.format(), canonical);
    EXPECT_NE(canonical.find("unequal-factor = 4"), std::string::npos);
    EXPECT_NE(canonical.find("seed = 16"), std::string::npos);
    EXPECT_NE(canonical.find("protocols = rr1 wrr:weights=4/1"),
              std::string::npos);
}

TEST(ScenarioSpecFormatTest, FlagBuiltSpecMatchesEquivalentFile)
{
    ArgParser parser("prog", "test");
    addScenarioFlags(parser);
    std::vector<const char *> args{"prog",      "--agents", "8",
                                   "--load",    "1.5",      "--cv",
                                   "2",         "--batches", "4"};
    ASSERT_TRUE(parser.parse(static_cast<int>(args.size()), args.data()));
    const ScenarioSpec from_flags =
        scenarioSpecFromFlags("prog", parser);

    const ScenarioSpec from_file = parseOk("[workload]\n"
                                           "family = equal\n"
                                           "agents = 8\n"
                                           "cv = 2\n"
                                           "[run]\n"
                                           "batches = 4\n"
                                           "warmup = 8000\n"
                                           "[sweep]\n"
                                           "loads = 1.5\n");
    EXPECT_EQ(from_flags.format(), from_file.format());
}

TEST(ScenarioSpecConfigTest, EqualFamilyMatchesHandBuiltConfig)
{
    const ScenarioSpec spec = parseOk("[workload]\n"
                                      "agents = 6\n"
                                      "cv = 2\n"
                                      "max-outstanding = 3\n"
                                      "[bus]\n"
                                      "arb-overhead = 0.25\n"
                                      "[run]\n"
                                      "batches = 5\n"
                                      "batch-size = 400\n"
                                      "seed = 7\n"
                                      "confidence = 0.95\n");
    const ScenarioConfig config = spec.configForLoad("1.5");

    ScenarioConfig expected = equalLoadScenario(6, 1.5, 2.0);
    EXPECT_EQ(config.numAgents, expected.numAgents);
    ASSERT_EQ(config.agents.size(), expected.agents.size());
    for (std::size_t i = 0; i < config.agents.size(); ++i) {
        EXPECT_DOUBLE_EQ(config.agents[i].meanInterrequest,
                         expected.agents[i].meanInterrequest);
        EXPECT_DOUBLE_EQ(config.agents[i].cv, expected.agents[i].cv);
        EXPECT_EQ(config.agents[i].maxOutstanding, 3);
    }
    EXPECT_EQ(config.numBatches, 5);
    EXPECT_EQ(config.batchSize, 400u);
    EXPECT_EQ(config.warmup, 400u); // defaults to batch-size
    EXPECT_EQ(config.seed, 7u);
    EXPECT_DOUBLE_EQ(config.confidence, 0.95);
    EXPECT_DOUBLE_EQ(config.bus.arbitrationOverhead, 0.25);
}

TEST(ScenarioSpecConfigTest, UnequalFamilySplitsTheLoad)
{
    const ScenarioSpec spec = parseOk("[workload]\n"
                                      "family = unequal\n"
                                      "agents = 8\n"
                                      "unequal-factor = 4\n");
    const ScenarioConfig config = spec.configForLoad("1.5");
    const ScenarioConfig expected =
        unequalLoadScenario(8, 1.5 / 8, 4.0, 1.0);
    ASSERT_EQ(config.agents.size(), expected.agents.size());
    for (std::size_t i = 0; i < config.agents.size(); ++i)
        EXPECT_DOUBLE_EQ(config.agents[i].meanInterrequest,
                         expected.agents[i].meanInterrequest);
}

TEST(ScenarioSpecConfigTest, WorstCaseFamilyIgnoresLoadToken)
{
    const ScenarioSpec spec = parseOk("[workload]\n"
                                      "family = worst-case\n"
                                      "agents = 10\n");
    const ScenarioConfig config = spec.configForLoad("");
    const ScenarioConfig expected = worstCaseRrScenario(10, 1.0);
    ASSERT_EQ(config.agents.size(), expected.agents.size());
    for (std::size_t i = 0; i < config.agents.size(); ++i)
        EXPECT_DOUBLE_EQ(config.agents[i].meanInterrequest,
                         expected.agents[i].meanInterrequest);
}

TEST(ScenarioSpecConfigTest, WorstCaseSettleSelectsWorstCaseMode)
{
    const ScenarioSpec spec =
        parseOk("[bus]\nworst-case-settle = true\n");
    const ScenarioConfig config = spec.configForLoad("1");
    EXPECT_TRUE(config.bus.settleTiming);
    EXPECT_EQ(config.bus.settleMode, BusParams::SettleMode::kWorstCase);
}

TEST(ScenarioSpecErrorTest, ErrorsCarryLineNumbersAndHints)
{
    EXPECT_EQ(parseError("[workloads]\n"),
              "line 1: unknown section '[workloads]'; did you mean "
              "'workload'?");
    EXPECT_EQ(parseError("[workload]\nagent = 3\n"),
              "line 2: unknown key 'agent' in [workload]; did you mean "
              "'agents'?");
    EXPECT_EQ(parseError("agents = 3\n"),
              "line 1: key 'agents' outside any [section]");
    EXPECT_EQ(parseError("[workload\n"),
              "line 1: malformed section header '[workload'");
    EXPECT_EQ(parseError("[workload]\nwhat is this\n"),
              "line 2: expected 'key = value' or '[section]', got "
              "'what is this'");
}

TEST(ScenarioSpecErrorTest, ValuesAreValidated)
{
    EXPECT_EQ(parseError("[workload]\nagents = none\n"),
              "line 2: key 'agents' expects an integer, got 'none'");
    EXPECT_EQ(parseError("[workload]\nagents = 0\n"),
              "line 2: key 'agents' must be >= 1, got '0'");
    EXPECT_EQ(parseError("[workload]\ncv =\n"),
              "line 2: key 'cv' needs a value");
    EXPECT_EQ(parseError("[bus]\nsettle-timing = yes\n"),
              "line 2: key 'settle-timing' expects true/false, got "
              "'yes'");
    EXPECT_EQ(parseError("[run]\nconfidence = 1.5\n"),
              "line 2: key 'confidence' must be in (0, 1), got '1.5'");
    EXPECT_EQ(parseError("[run]\nseed = -1\n"),
              "line 2: key 'seed' expects an unsigned integer, got "
              "'-1'");
    EXPECT_EQ(parseError("[workload]\nagents = 3\nagents = 4\n"),
              "line 3: duplicate key 'agents' in [workload]");
}

TEST(ScenarioSpecErrorTest, SweepAxesAreValidated)
{
    EXPECT_EQ(parseError("[sweep]\nloads = fast\n"),
              "line 2: bad load 'fast'");
    EXPECT_EQ(parseError("[sweep]\nloads = 2:1:0.5\n"),
              "line 2: bad load range '2:1:0.5' (need step > 0 and "
              "hi >= lo)");
    EXPECT_EQ(parseError("[protocol]\nspec = rr9\n"),
              "line 2: bad protocol spec 'rr9': unknown protocol key "
              "'rr9'; did you mean 'rr1'?");
}

TEST(ScenarioSpecErrorTest, FileLevelValidationHasNoLinePrefix)
{
    EXPECT_EQ(parseError("[workload]\nfamily = unequal\n"),
              "family 'unequal' requires unequal-factor");
    EXPECT_EQ(parseError("[workload]\nfamily = worst-case\n"
                         "[sweep]\nloads = 1\n"),
              "family 'worst-case' takes no loads (the Table 4.5 "
              "workload fixes its own rates)");
}

TEST(ScenarioSpecFlagsTest, WasSetTracksExplicitFlagsOnly)
{
    ArgParser parser("prog", "test");
    addScenarioFlags(parser);
    std::vector<const char *> args{"prog", "--agents", "8"};
    ASSERT_TRUE(parser.parse(static_cast<int>(args.size()), args.data()));
    EXPECT_TRUE(parser.wasSet("agents"));
    EXPECT_FALSE(parser.wasSet("cv"));
    EXPECT_FALSE(parser.wasSet("scenario"));
}

TEST(ScenarioSpecSourceTest, DefaultSourceIsClosedAndOmittedFromFormat)
{
    const ScenarioSpec spec = parseOk("");
    EXPECT_EQ(spec.source, "closed");
    EXPECT_TRUE(spec.sourceTakesLoads());
    // Pre-seam scenario text must format (and hence hash) identically,
    // so the default source never appears in the canonical form.
    EXPECT_EQ(spec.format().find("source"), std::string::npos);
}

TEST(ScenarioSpecSourceTest, SourceRoundTripsVerbatim)
{
    const ScenarioSpec spec =
        parseOk("[workload]\nsource = open:dist=mmpp,burst=4\n"
                "[sweep]\nloads = 0.5 1\nprotocols = rr1\n");
    EXPECT_EQ(spec.source, "open:dist=mmpp,burst=4");
    EXPECT_NE(spec.format().find("source = open:dist=mmpp,burst=4"),
              std::string::npos);
    const ScenarioSpec again = parseOk(spec.format());
    EXPECT_EQ(again.format(), spec.format());
}

TEST(ScenarioSpecSourceTest, BadSourceSpecsFailWithLineNumbers)
{
    EXPECT_EQ(parseError("[workload]\nsource = opne\n"),
              "line 2: bad workload source 'opne': unknown workload "
              "source key 'opne'; did you mean 'open'?");
}

TEST(ScenarioSpecSourceTest, TraceSourcesHaveNoLoadAxis)
{
    const ScenarioSpec spec =
        parseOk("[workload]\nsource = trace:file=x.trace\n"
                "[sweep]\nprotocols = rr1 fcfs1\n");
    EXPECT_FALSE(spec.sourceTakesLoads());
    EXPECT_EQ(spec.loadAxis(), std::vector<std::string>{"-"});
    EXPECT_EQ(spec.cellCount(), 2u);
    EXPECT_EQ(spec.cellLoadToken(0), "-");

    EXPECT_EQ(parseError("[workload]\nsource = trace:file=x.trace\n"
                         "load = 2\n"),
              "workload source 'trace:file=x.trace' takes no loads "
              "(it fixes its own arrival schedule)");
}

TEST(ScenarioSpecSourceTest, ConfigCarriesTheSpecVerbatim)
{
    const ScenarioSpec spec =
        parseOk("[workload]\nsource = open:rate=2\nload = 0.5\n");
    const ScenarioConfig config = spec.configForLoad("0.5");
    EXPECT_EQ(config.workloadSpec, "open:rate=2");
    EXPECT_EQ(parseOk("").configForLoad("1").workloadSpec, "closed");
}

TEST(ScenarioSpecHotMixTest, HotAgentsScaleTheirShare)
{
    const ScenarioSpec spec = parseOk("[workload]\nagents = 4\n"
                                      "hot-agents = 2\nhot-factor = 3\n"
                                      "load = 0.4\n");
    const ScenarioConfig config = spec.configForLoad("0.4");
    // Base per-agent load 0.1; hot agents offer 0.3 each.
    ASSERT_EQ(config.agents.size(), 4u);
    const double hot = config.agents[0].meanInterrequest;
    const double cold = config.agents[2].meanInterrequest;
    EXPECT_DOUBLE_EQ(config.agents[1].meanInterrequest, hot);
    EXPECT_DOUBLE_EQ(config.agents[3].meanInterrequest, cold);
    // interrequestForLoad is monotone decreasing in load, and the hot
    // agents' offered load is exactly hot-factor times the base.
    EXPECT_LT(hot, cold);
    const double s = config.bus.transactionTime;
    const double hot_load = s / (s + hot);
    const double cold_load = s / (s + cold);
    EXPECT_NEAR(hot_load, 3.0 * cold_load, 1e-9);
}

TEST(ScenarioSpecHotMixTest, RoundTripsAndValidates)
{
    const ScenarioSpec spec = parseOk("[workload]\nagents = 8\n"
                                      "hot-agents = 2\nhot-factor = 3\n"
                                      "load = 1\n");
    EXPECT_NE(spec.format().find("hot-agents = 2"), std::string::npos);
    EXPECT_NE(spec.format().find("hot-factor = 3"), std::string::npos);
    EXPECT_EQ(parseOk(spec.format()).format(), spec.format());
    // Defaults stay invisible, preserving pre-seam canonical text.
    EXPECT_EQ(parseOk("").format().find("hot-"), std::string::npos);

    EXPECT_EQ(parseError("[workload]\nhot-agents = 2\nload = 1\n"),
              "hot-agents requires hot-factor");
    EXPECT_EQ(parseError("[workload]\nhot-factor = 2\nload = 1\n"),
              "hot-factor requires hot-agents");
    EXPECT_EQ(parseError("[workload]\nagents = 4\nhot-agents = 5\n"
                         "hot-factor = 2\nload = 1\n"),
              "hot-agents exceeds agents");
    EXPECT_NE(parseError("[workload]\nfamily = unequal\n"
                         "unequal-factor = 2\nhot-agents = 1\n"
                         "hot-factor = 2\nload = 1\n")
                  .find("requires family 'equal'"),
              std::string::npos);
    EXPECT_NE(parseError("[workload]\nagents = 4\nhot-agents = 2\n"
                         "hot-factor = 8\nload = 2\n")
                  .find("pushes a hot agent's offered load"),
              std::string::npos);
}

TEST(ScenarioSpecDeathTest, OrExitDistinguishesIoFromParseErrors)
{
    EXPECT_EXIT(scenarioSpecOrExit("prog", "/nonexistent/x.scenario"),
                ::testing::ExitedWithCode(1), "prog: cannot read");

    const std::string path =
        ::testing::TempDir() + "/bad_spec_test.scenario";
    {
        std::ofstream out(path);
        out << "[workload]\nagents = none\n";
    }
    EXPECT_EXIT(scenarioSpecOrExit("prog", path),
                ::testing::ExitedWithCode(2),
                "line 2: key 'agents' expects an integer");
}

} // namespace
} // namespace busarb
