/**
 * @file
 * Unit tests for the discrete-event queue.
 */

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace busarb {
namespace {

TEST(EventQueueTest, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0);
    EXPECT_EQ(q.nextTick(), kMaxTick);
    EXPECT_EQ(q.numExecuted(), 0u);
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueueTest, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, SameTickOrderedByPriority)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(2); }, kPriRequestArrival);
    q.schedule(5, [&] { order.push_back(0); }, kPriTransactionEnd);
    q.schedule(5, [&] { order.push_back(1); }, kPriArbitration);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTest, SameTickSamePriorityIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    q.run();
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, ScheduleInIsRelativeToNow)
{
    EventQueue q;
    Tick seen = -1;
    q.schedule(100, [&] {
        q.scheduleIn(50, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150);
}

TEST(EventQueueTest, RunHonorsHorizon)
{
    EventQueue q;
    int executed = 0;
    q.schedule(10, [&] { ++executed; });
    q.schedule(20, [&] { ++executed; });
    q.schedule(21, [&] { ++executed; });
    EXPECT_EQ(q.run(20), 2u); // inclusive horizon
    EXPECT_EQ(executed, 2);
    EXPECT_EQ(q.nextTick(), 21);
}

TEST(EventQueueTest, DescheduleCancelsPendingEvent)
{
    EventQueue q;
    bool ran = false;
    const auto id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.deschedule(id));
    EXPECT_TRUE(q.empty());
    q.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueueTest, DescheduleTwiceFails)
{
    EventQueue q;
    const auto id = q.schedule(10, [] {});
    EXPECT_TRUE(q.deschedule(id));
    EXPECT_FALSE(q.deschedule(id));
}

TEST(EventQueueTest, DescheduleAfterExecutionFails)
{
    EventQueue q;
    const auto id = q.schedule(10, [] {});
    q.run();
    EXPECT_FALSE(q.deschedule(id));
}

TEST(EventQueueTest, DescheduleUnknownIdFails)
{
    EventQueue q;
    EXPECT_FALSE(q.deschedule(0));
    EXPECT_FALSE(q.deschedule(12345));
}

TEST(EventQueueTest, NextTickSkipsCancelledHead)
{
    EventQueue q;
    const auto id = q.schedule(5, [] {});
    q.schedule(9, [] {});
    EXPECT_EQ(q.nextTick(), 5);
    q.deschedule(id);
    EXPECT_EQ(q.nextTick(), 9);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            q.scheduleIn(1, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.now(), 4);
    EXPECT_EQ(q.numExecuted(), 5u);
}

TEST(EventQueueTest, NumPendingTracksLiveEvents)
{
    EventQueue q;
    const auto a = q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.numPending(), 2u);
    q.deschedule(a);
    EXPECT_EQ(q.numPending(), 1u);
    q.run();
    EXPECT_EQ(q.numPending(), 0u);
}

TEST(EventQueueTest, TimeDoesNotAdvancePastLastEvent)
{
    EventQueue q;
    q.schedule(42, [] {});
    q.run(1000);
    EXPECT_EQ(q.now(), 42);
}

TEST(EventQueueDeathTest, SchedulingIntoThePastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(5, [] {}), "scheduling into the past");
}

TEST(EventQueueDeathTest, NullCallbackPanics)
{
    EventQueue q;
    EXPECT_DEATH(q.schedule(1, EventQueue::Callback{}), "null event");
}

TEST(EventQueueDeathTest, NegativeDelayPanics)
{
    EventQueue q;
    EXPECT_DEATH(q.scheduleIn(-1, [] {}), "negative delay");
}

} // namespace
} // namespace busarb
