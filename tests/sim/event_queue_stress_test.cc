/**
 * @file
 * Randomized stress test: the event queue against a naive reference
 * model (sorted vector), with interleaved schedule / deschedule / run
 * operations.
 */

#include <algorithm>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "random/rng.hh"
#include "sim/event_queue.hh"

namespace busarb {
namespace {

/** Reference model: (tick, priority, id) triples, executed in order. */
struct ReferenceModel
{
    // id -> (tick, priority); live entries only.
    std::vector<std::tuple<Tick, int, std::uint64_t>> live;

    void
    schedule(Tick when, int priority, std::uint64_t id)
    {
        live.emplace_back(when, priority, id);
    }

    bool
    deschedule(std::uint64_t id)
    {
        for (auto it = live.begin(); it != live.end(); ++it) {
            if (std::get<2>(*it) == id) {
                live.erase(it);
                return true;
            }
        }
        return false;
    }

    /** Pop the earliest (tick, priority, id) entry. */
    std::uint64_t
    popNext()
    {
        auto best = live.begin();
        for (auto it = live.begin(); it != live.end(); ++it) {
            if (*it < *best)
                best = it;
        }
        const std::uint64_t id = std::get<2>(*best);
        live.erase(best);
        return id;
    }
};

TEST(EventQueueStressTest, MatchesReferenceModelUnderRandomOps)
{
    Rng rng(0xabcdef);
    for (int trial = 0; trial < 10; ++trial) {
        EventQueue queue;
        ReferenceModel reference;
        std::vector<std::uint64_t> actual;   // queue's execution order
        std::vector<std::uint64_t> expected; // reference's order
        std::vector<std::uint64_t> live_ids;

        for (int step = 0; step < 400; ++step) {
            const auto op = rng.below(10);
            if (op < 6) {
                // Schedule at now + random delay with random priority.
                const Tick when = queue.now() +
                                  static_cast<Tick>(rng.below(50));
                const int priority = static_cast<int>(rng.below(4)) * 10;
                // The callback must report the queue's own event id,
                // which is only known after schedule() returns: route
                // it through a shared slot.
                auto my_id = std::make_shared<std::uint64_t>(0);
                const auto id = queue.schedule(
                    when,
                    [my_id, &actual, &expected, &reference] {
                        actual.push_back(*my_id);
                        expected.push_back(reference.popNext());
                    },
                    priority);
                *my_id = id;
                reference.schedule(when, priority, id);
                live_ids.push_back(id);
            } else if (op < 8 && !live_ids.empty()) {
                // Deschedule a random (possibly stale) id.
                const auto pick =
                    live_ids[rng.below(live_ids.size())];
                const bool q_ok = queue.deschedule(pick);
                const bool r_ok = reference.deschedule(pick);
                ASSERT_EQ(q_ok, r_ok) << "trial " << trial;
            } else {
                // Run a few events.
                for (int i = 0; i < 3; ++i) {
                    if (!queue.runOne())
                        break;
                }
            }
            ASSERT_EQ(queue.numPending(), reference.live.size());
        }
        queue.run();
        EXPECT_TRUE(reference.live.empty());
        EXPECT_EQ(actual, expected) << "trial " << trial;
        EXPECT_EQ(actual.size(), queue.numExecuted());
    }
}

TEST(EventQueueStressTest, OrderIsIndependentOfInsertionOrder)
{
    // Insert the same logical events in shuffled order; the execution
    // sequence of (tick, priority) pairs must be sorted regardless.
    Rng rng(555);
    std::vector<std::pair<Tick, int>> events;
    for (int i = 0; i < 200; ++i) {
        events.emplace_back(static_cast<Tick>(rng.below(40)),
                            static_cast<int>(rng.below(3)) * 10);
    }
    for (int trial = 0; trial < 5; ++trial) {
        auto shuffled = events;
        for (std::size_t i = shuffled.size() - 1; i > 0; --i)
            std::swap(shuffled[i], shuffled[rng.below(i + 1)]);
        EventQueue queue;
        std::vector<std::pair<Tick, int>> order;
        for (const auto &[when, priority] : shuffled) {
            queue.schedule(when,
                           [&order, when = when, priority = priority] {
                               order.emplace_back(when, priority);
                           },
                           priority);
        }
        queue.run();
        ASSERT_EQ(order.size(), events.size());
        EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
    }
}

} // namespace
} // namespace busarb
