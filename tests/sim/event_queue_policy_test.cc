/**
 * @file
 * Policy-seam tests for the event queue: both storage policies must
 * implement the identical (tick, priority, id) ordering contract, the
 * scheduleIn() saturation rule, and bounded memory under churn.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace busarb {
namespace {

class EventQueuePolicyTest
    : public ::testing::TestWithParam<EventQueuePolicy>
{
  protected:
    EventQueue queue_{GetParam()};
};

TEST_P(EventQueuePolicyTest, ReportsItsPolicy)
{
    EXPECT_EQ(queue_.policy(), GetParam());
}

TEST_P(EventQueuePolicyTest, ExecutesInTickPriorityIdOrder)
{
    std::vector<int> order;
    queue_.schedule(30, [&] { order.push_back(5); });
    queue_.schedule(10, [&] { order.push_back(1); }, kPriDefault);
    queue_.schedule(10, [&] { order.push_back(0); }, kPriArbitration);
    queue_.schedule(20, [&] { order.push_back(3); });
    queue_.schedule(20, [&] { order.push_back(4); });
    queue_.schedule(10, [&] { order.push_back(2); }, kPriDefault);
    queue_.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
    EXPECT_EQ(queue_.numExecuted(), 6u);
}

TEST_P(EventQueuePolicyTest, DescheduleRemovesOnlyTheTarget)
{
    std::vector<int> order;
    queue_.schedule(1, [&] { order.push_back(1); });
    const auto id = queue_.schedule(2, [&] { order.push_back(2); });
    queue_.schedule(3, [&] { order.push_back(3); });
    EXPECT_TRUE(queue_.deschedule(id));
    EXPECT_FALSE(queue_.deschedule(id));
    EXPECT_EQ(queue_.numPending(), 2u);
    queue_.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST_P(EventQueuePolicyTest, NextTickSkipsCancelledHead)
{
    const auto id = queue_.schedule(5, [] {});
    queue_.schedule(9, [] {});
    EXPECT_EQ(queue_.nextTick(), 5);
    queue_.deschedule(id);
    EXPECT_EQ(queue_.nextTick(), 9);
}

TEST_P(EventQueuePolicyTest, ScheduleInSaturatesAtMaxTick)
{
    // A delay reaching past kMaxTick must clamp, not overflow.
    queue_.schedule(100, [] {});
    queue_.run();
    ASSERT_EQ(queue_.now(), 100);
    queue_.scheduleIn(kMaxTick, [] {});
    EXPECT_EQ(queue_.nextTick(), kMaxTick);
    queue_.scheduleIn(kMaxTick - 100, [] {}); // exact fit, no clamp
    EXPECT_EQ(queue_.numPending(), 2u);
    EXPECT_EQ(queue_.nextTick(), kMaxTick);
}

TEST_P(EventQueuePolicyTest, EventsAtMaxTickExecute)
{
    bool ran = false;
    queue_.schedule(kMaxTick, [&] { ran = true; });
    queue_.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(queue_.now(), kMaxTick);
    // Saturation keeps scheduleIn legal even at the end of time.
    queue_.scheduleIn(1, [] {});
    EXPECT_EQ(queue_.nextTick(), kMaxTick);
}

TEST_P(EventQueuePolicyTest, SaturatedSentinelCanBeDescheduled)
{
    // The "never, unless the horizon is infinite" idiom: park a
    // sentinel at kMaxTick, then cancel it.
    const auto id = queue_.scheduleIn(kMaxTick, [] {});
    bool ran = false;
    queue_.schedule(7, [&] { ran = true; });
    EXPECT_EQ(queue_.run(1000), 1u);
    EXPECT_TRUE(ran);
    EXPECT_TRUE(queue_.deschedule(id));
    EXPECT_TRUE(queue_.empty());
}

TEST_P(EventQueuePolicyTest, ChurnDoesNotGrowMemoryUnbounded)
{
    // Schedule/deschedule churn against far-future events: tombstones
    // (heap) must compact and node slots (calendar) must recycle, so
    // neither footprint tracks the total number of operations.
    std::vector<EventQueue::EventId> parked;
    for (int i = 0; i < 32; ++i)
        parked.push_back(
            queue_.schedule(1'000'000 + i, [] {}, kPriStats));

    for (int round = 0; round < 2000; ++round) {
        const auto id = queue_.schedule(2'000'000 + round, [] {});
        EXPECT_TRUE(queue_.deschedule(id));
        EXPECT_LE(queue_.numTombstones(),
                  queue_.numPending() / 2 + 1);
    }
    // 32 live events after 2000 churn rounds: capacity must reflect the
    // high-water mark (a few dozen slots), not the operation count.
    EXPECT_EQ(queue_.numPending(), 32u);
    EXPECT_LE(queue_.nodeCapacity(), 256u);

    for (const auto id : parked)
        EXPECT_TRUE(queue_.deschedule(id));
    EXPECT_TRUE(queue_.empty());
}

using EventQueuePolicyDeathTest = EventQueuePolicyTest;

TEST_P(EventQueuePolicyDeathTest, DeathOnContractViolations)
{
    EXPECT_DEATH(queue_.scheduleIn(-1, [] {}), "negative delay");
    EXPECT_DEATH(queue_.schedule(1, EventQueue::Callback{}),
                 "null event");
    queue_.schedule(10, [] {});
    queue_.run();
    EXPECT_DEATH(queue_.schedule(5, [] {}), "scheduling into the past");
}

const auto kPolicyName =
    [](const ::testing::TestParamInfo<EventQueuePolicy> &info) {
        return std::string(info.param == EventQueuePolicy::kCalendar
                               ? "calendar"
                               : "heap");
    };

INSTANTIATE_TEST_SUITE_P(
    BothPolicies, EventQueuePolicyTest,
    ::testing::Values(EventQueuePolicy::kCalendar,
                      EventQueuePolicy::kHeap),
    kPolicyName);

INSTANTIATE_TEST_SUITE_P(
    BothPolicies, EventQueuePolicyDeathTest,
    ::testing::Values(EventQueuePolicy::kCalendar,
                      EventQueuePolicy::kHeap),
    kPolicyName);

/**
 * High-churn random schedule/cancel fuzz pushed through both policies
 * in lock-step, asserting identical execution order, now() trajectory,
 * and numExecuted() — the queue-level half of the differential proof
 * (the full-scenario half lives in tests/experiment).
 */
TEST(EventQueueDifferentialTest, RandomChurnExecutesIdentically)
{
    constexpr int kOps = 5000;
    const int priorities[] = {kPriTransactionEnd, kPriArbitration,
                              kPriRequestArrival, kPriBeginPass,
                              kPriDefault, kPriStats};

    const auto drive = [&](EventQueue &q) {
        // (op sequence number, execution tick) log; ids are assigned
        // identically on both sides because the op sequence is.
        std::vector<std::pair<int, Tick>> log;
        std::vector<Tick> trajectory;
        std::vector<EventQueue::EventId> live;
        std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
        const auto next = [&rng] {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            return rng;
        };
        for (int op = 0; op < kOps; ++op) {
            const std::uint64_t roll = next() % 100;
            if (roll < 55 || live.empty()) {
                const Tick delay = static_cast<Tick>(next() % 64);
                const int pri = priorities[next() % 6];
                live.push_back(q.scheduleIn(
                    delay,
                    [&log, &q, op] { log.emplace_back(op, q.now()); },
                    pri));
            } else if (roll < 75) {
                const std::size_t victim = next() % live.size();
                q.deschedule(live[victim]);
                live.erase(live.begin() +
                           static_cast<std::ptrdiff_t>(victim));
            } else {
                q.runOne();
                trajectory.push_back(q.now());
            }
        }
        q.run();
        trajectory.push_back(q.now());
        return std::make_tuple(log, trajectory, q.numExecuted());
    };

    EventQueue calendar(EventQueuePolicy::kCalendar);
    EventQueue heap(EventQueuePolicy::kHeap);
    const auto [cal_log, cal_traj, cal_count] = drive(calendar);
    const auto [heap_log, heap_traj, heap_count] = drive(heap);
    EXPECT_EQ(cal_log, heap_log);
    EXPECT_EQ(cal_traj, heap_traj);
    EXPECT_EQ(cal_count, heap_count);
    EXPECT_GT(cal_count, 1000u);
}

/** The calendar must stay correct across growth-driven rebuilds. */
TEST(EventQueueDifferentialTest, GrowthAndDrainMatchAcrossPolicies)
{
    EventQueue calendar(EventQueuePolicy::kCalendar,
                        CalendarTuning{3, 4}); // tiny: force rebuilds
    EventQueue heap(EventQueuePolicy::kHeap);
    const auto drive = [](EventQueue &q) {
        std::vector<std::pair<int, Tick>> log;
        std::uint64_t rng = 12345;
        for (int i = 0; i < 4000; ++i) {
            rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
            const Tick when = static_cast<Tick>(rng % 1'000'000);
            q.schedule(when,
                       [&log, &q, i] { log.emplace_back(i, q.now()); });
        }
        q.run();
        return log;
    };
    EXPECT_EQ(drive(calendar), drive(heap));
    EXPECT_EQ(calendar.numExecuted(), 4000u);
}

} // namespace
} // namespace busarb
