/**
 * @file
 * Tests for the logging/error-reporting macros.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

namespace busarb {
namespace {

TEST(LoggingDeathTest, PanicAbortsWithMessage)
{
    EXPECT_DEATH(BUSARB_PANIC("broken invariant x=", 42),
                 "panic: broken invariant x=42");
}

TEST(LoggingDeathTest, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(BUSARB_FATAL("bad config: ", "oops"),
                ::testing::ExitedWithCode(1), "fatal: bad config: oops");
}

TEST(LoggingDeathTest, AssertPassesAndFails)
{
    BUSARB_ASSERT(1 + 1 == 2, "never printed");
    EXPECT_DEATH(BUSARB_ASSERT(false, "value was ", 7),
                 "assertion 'false' failed: value was 7");
}

TEST(LoggingTest, WarnAndInformDoNotTerminate)
{
    ::testing::internal::CaptureStderr();
    BUSARB_WARN("something odd: ", 3.5);
    BUSARB_INFORM("status ", "ok");
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn: something odd: 3.5"), std::string::npos);
    EXPECT_NE(err.find("info: status ok"), std::string::npos);
}

TEST(LoggingTest, FormatMessageConcatenatesMixedTypes)
{
    EXPECT_EQ(detail::formatMessage("a=", 1, " b=", 2.5, " c=", 'x'),
              "a=1 b=2.5 c=x");
    EXPECT_EQ(detail::formatMessage(), "");
}

} // namespace
} // namespace busarb
