/**
 * @file
 * Unit tests for tick/unit conversions.
 */

#include <gtest/gtest.h>

#include "sim/types.hh"

namespace busarb {
namespace {

TEST(TypesTest, UnitConversionExactForPaperConstants)
{
    // The paper's 0.5-unit arbitration overhead and the n - 0.5 / n - 3.6
    // worst-case think times must be exact.
    EXPECT_EQ(unitsToTicks(1.0), kTicksPerUnit);
    EXPECT_EQ(unitsToTicks(0.5), kTicksPerUnit / 2);
    EXPECT_EQ(unitsToTicks(9.5), 9 * kTicksPerUnit + kTicksPerUnit / 2);
    EXPECT_EQ(unitsToTicks(6.4), 6'400'000);
    EXPECT_EQ(unitsToTicks(26.4), 26'400'000);
}

TEST(TypesTest, RoundTripIsIdentityForRepresentableValues)
{
    for (double v : {0.0, 0.25, 0.5, 1.0, 3.6, 9.5, 100.0}) {
        EXPECT_DOUBLE_EQ(ticksToUnits(unitsToTicks(v)), v) << v;
    }
}

TEST(TypesTest, ConversionRoundsToNearest)
{
    EXPECT_EQ(unitsToTicks(1e-7), 0);     // below half a tick
    EXPECT_EQ(unitsToTicks(6e-7), 1);     // above half a tick
    EXPECT_EQ(unitsToTicks(0.9999999), 1'000'000);
}

TEST(TypesTest, NegativeDurationsClampToZero)
{
    EXPECT_EQ(unitsToTicks(-1.0), 0);
    EXPECT_EQ(unitsToTicks(-1e-9), 0);
}

TEST(TypesTest, TicksToUnitsHandlesLargeValues)
{
    const Tick big = 123'456'789'000'000;
    EXPECT_DOUBLE_EQ(ticksToUnits(big), 123'456'789.0);
}

} // namespace
} // namespace busarb
