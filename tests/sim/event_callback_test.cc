/**
 * @file
 * Unit tests for the small-buffer-optimized event callback.
 */

#include <array>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "sim/event_callback.hh"

namespace busarb {
namespace {

TEST(EventCallbackTest, DefaultIsEmpty)
{
    EventCallback cb;
    EXPECT_FALSE(static_cast<bool>(cb));
    EventCallback null_cb(nullptr);
    EXPECT_FALSE(static_cast<bool>(null_cb));
}

TEST(EventCallbackTest, InvokesStoredCallable)
{
    int hits = 0;
    EventCallback cb([&hits] { ++hits; });
    ASSERT_TRUE(static_cast<bool>(cb));
    cb();
    cb();
    EXPECT_EQ(hits, 2);
}

TEST(EventCallbackTest, MoveTransfersOwnership)
{
    int hits = 0;
    EventCallback a([&hits] { ++hits; });
    EventCallback b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);

    EventCallback c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    ASSERT_TRUE(static_cast<bool>(c));
    c();
    EXPECT_EQ(hits, 2);
}

TEST(EventCallbackTest, DestroysCapturedState)
{
    auto token = std::make_shared<int>(42);
    EXPECT_EQ(token.use_count(), 1);
    {
        EventCallback cb([token] { (void)*token; });
        EXPECT_EQ(token.use_count(), 2);
    }
    EXPECT_EQ(token.use_count(), 1);
}

TEST(EventCallbackTest, SmallCallablesStayInline)
{
    const auto before = EventCallback::heapAllocations();
    // Typical simulator callback shape: a couple of captured pointers.
    int a = 0, b = 0;
    for (int i = 0; i < 64; ++i) {
        EventCallback cb([&a, &b] { a += b; });
        cb();
    }
    EXPECT_EQ(EventCallback::heapAllocations(), before);
}

TEST(EventCallbackTest, OversizedCallablesFallBackToHeapAndCount)
{
    const auto before = EventCallback::heapAllocations();
    std::array<std::uint64_t, 16> big{}; // 128 bytes > kInlineBytes
    big[0] = 7;
    std::uint64_t seen = 0;
    EventCallback cb([big, &seen] { seen = big[0]; });
    EXPECT_EQ(EventCallback::heapAllocations(), before + 1);
    cb();
    EXPECT_EQ(seen, 7u);

    // The heap payload moves by pointer: no second allocation.
    EventCallback moved(std::move(cb));
    EXPECT_EQ(EventCallback::heapAllocations(), before + 1);
    seen = 0;
    moved();
    EXPECT_EQ(seen, 7u);
}

TEST(EventCallbackTest, ReassignmentDestroysPreviousCallable)
{
    auto token = std::make_shared<int>(1);
    EventCallback cb([token] { (void)*token; });
    EXPECT_EQ(token.use_count(), 2);
    cb = EventCallback([] {});
    EXPECT_EQ(token.use_count(), 1);
}

} // namespace
} // namespace busarb
