/**
 * @file
 * Jain's-index and tumbling-window fairness accumulator tests.
 */

#include <vector>

#include <gtest/gtest.h>

#include "stats/fairness.hh"

namespace busarb {
namespace {

TEST(JainIndex, EqualSharesScoreOne)
{
    EXPECT_DOUBLE_EQ(jainIndex({1.0, 1.0, 1.0, 1.0}), 1.0);
    EXPECT_DOUBLE_EQ(jainIndex({7.5, 7.5}), 1.0);
    EXPECT_DOUBLE_EQ(jainIndex({42.0}), 1.0);
}

TEST(JainIndex, SingleHogScoresOneOverN)
{
    EXPECT_DOUBLE_EQ(jainIndex({10.0, 0.0, 0.0, 0.0}), 0.25);
    EXPECT_DOUBLE_EQ(jainIndex({0.0, 3.0}), 0.5);
}

TEST(JainIndex, EmptyAndAllZeroScoreOne)
{
    EXPECT_DOUBLE_EQ(jainIndex({}), 1.0);
    EXPECT_DOUBLE_EQ(jainIndex({0.0, 0.0, 0.0}), 1.0);
}

TEST(JainIndex, ScaleInvariant)
{
    const std::vector<double> base = {1.0, 2.0, 3.0, 4.0};
    std::vector<double> scaled;
    for (const double x : base)
        scaled.push_back(1000.0 * x);
    EXPECT_DOUBLE_EQ(jainIndex(base), jainIndex(scaled));
}

TEST(JainIndex, KnownUnevenVector)
{
    // J = (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
    EXPECT_DOUBLE_EQ(jainIndex({1.0, 2.0, 3.0}), 36.0 / 42.0);
}

TEST(WindowedFairness, SingleWindowSummaries)
{
    WindowedFairness w(100, 2);
    w.record(10, 0, 2.0);
    w.record(20, 1, 4.0);
    w.record(30, 0, 6.0);
    w.finishAt(100);
    EXPECT_EQ(w.windowsClosed(), 1u);
    // Counts {2, 1}: J = 9 / (2 * 5).
    EXPECT_DOUBLE_EQ(w.windowJain().mean(), 0.9);
    EXPECT_DOUBLE_EQ(w.windowValueMean().mean(), 4.0);
}

TEST(WindowedFairness, WindowsCloseAsTimeAdvances)
{
    WindowedFairness w(100, 2);
    w.record(10, 0, 1.0); // window [0, 100)
    w.record(150, 1, 3.0); // closes the first window
    EXPECT_EQ(w.windowsClosed(), 1u);
    EXPECT_DOUBLE_EQ(w.windowJain().mean(), 0.5); // counts {1, 0}
    w.finishAt(200);
    EXPECT_EQ(w.windowsClosed(), 2u);
    EXPECT_DOUBLE_EQ(w.windowValueMean().min(), 1.0);
    EXPECT_DOUBLE_EQ(w.windowValueMean().max(), 3.0);
}

TEST(WindowedFairness, EmptyWindowsAreSkipped)
{
    WindowedFairness w(10, 3);
    w.record(5, 0, 1.0);
    // Jump far ahead: the gap windows hold nothing and must not count.
    w.record(1005, 2, 2.0);
    w.finishAt(1010);
    EXPECT_EQ(w.windowsClosed(), 2u);
}

TEST(WindowedFairness, TrailingPartialWindowCounts)
{
    WindowedFairness w(1000, 2);
    w.record(10, 0, 5.0);
    w.finishAt(20); // run ends mid-window
    EXPECT_EQ(w.windowsClosed(), 1u);
    EXPECT_DOUBLE_EQ(w.windowValueMean().mean(), 5.0);
}

TEST(WindowedFairness, NoObservationsNoWindows)
{
    WindowedFairness w(10, 4);
    w.finishAt(100);
    EXPECT_EQ(w.windowsClosed(), 0u);
    EXPECT_EQ(w.windowJain().count(), 0u);
}

TEST(WindowedFairness, ObservationOnWindowBoundaryOpensNextWindow)
{
    WindowedFairness w(100, 1);
    w.record(0, 0, 1.0);
    w.record(100, 0, 2.0); // first tick of the second window
    w.finishAt(200);
    EXPECT_EQ(w.windowsClosed(), 2u);
    EXPECT_DOUBLE_EQ(w.windowValueMean().min(), 1.0);
    EXPECT_DOUBLE_EQ(w.windowValueMean().max(), 2.0);
}

TEST(WindowedFairnessDeathTest, RejectsBadConstruction)
{
    EXPECT_DEATH(WindowedFairness(0, 2), "window width");
    EXPECT_DEATH(WindowedFairness(10, 0), "at least one slot");
}

TEST(WindowedFairnessDeathTest, RejectsOutOfRangeSlot)
{
    WindowedFairness w(10, 2);
    EXPECT_DEATH(w.record(5, 2, 1.0), "slot out of range");
}

} // namespace
} // namespace busarb
