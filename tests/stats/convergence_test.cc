/**
 * @file
 * Tests for the streaming convergence monitor and the MSER truncation
 * scan (stats/convergence).
 */

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "random/rng.hh"
#include "stats/convergence.hh"

namespace busarb {
namespace {

/** Feed a whole series into a fresh monitor. */
ConvergenceMonitor
monitorOver(const std::vector<double> &xs,
            const ConvergenceConfig &config = {})
{
    ConvergenceMonitor m(config);
    for (double x : xs)
        m.addBatch(x);
    return m;
}

/** n batches of `level` plus small deterministic iid-ish jitter. */
std::vector<double>
stationarySeries(std::size_t n, double level, double jitter,
                 std::uint64_t seed = 123)
{
    Rng rng(seed);
    std::vector<double> xs;
    for (std::size_t i = 0; i < n; ++i)
        xs.push_back(level + jitter * (rng.uniform() - 0.5));
    return xs;
}

TEST(ConvergenceVerdictTest, NamesAreStable)
{
    EXPECT_STREQ(verdictName(ConvergenceVerdict::kConverged), "converged");
    EXPECT_STREQ(verdictName(ConvergenceVerdict::kUnderconverged),
                 "underconverged");
    EXPECT_STREQ(verdictName(ConvergenceVerdict::kTransientContaminated),
                 "transient-contaminated");
}

TEST(ConvergenceVerdictTest, WorseVerdictOrdersBySeverity)
{
    const auto ok = ConvergenceVerdict::kConverged;
    const auto under = ConvergenceVerdict::kUnderconverged;
    const auto transient = ConvergenceVerdict::kTransientContaminated;
    EXPECT_EQ(worseVerdict(ok, ok), ok);
    EXPECT_EQ(worseVerdict(ok, under), under);
    EXPECT_EQ(worseVerdict(under, ok), under);
    EXPECT_EQ(worseVerdict(under, transient), transient);
    EXPECT_EQ(worseVerdict(transient, ok), transient);
    EXPECT_EQ(worseVerdict(transient, transient), transient);
}

TEST(MserTruncationTest, ShortSeriesNeverTruncates)
{
    EXPECT_EQ(mserTruncationPoint({}), 0u);
    EXPECT_EQ(mserTruncationPoint({1.0}), 0u);
    EXPECT_EQ(mserTruncationPoint({1.0, 9.0}), 0u);
    EXPECT_EQ(mserTruncationPoint({9.0, 1.0, 1.0}), 0u);
}

TEST(MserTruncationTest, CutsTransientPrefix)
{
    // Two wildly biased warm-up batches ahead of a flat steady state:
    // the scan must cut at (at least) the prefix boundary.
    std::vector<double> xs = {40.0, 20.0};
    const std::vector<double> steady = stationarySeries(10, 5.0, 0.1);
    xs.insert(xs.end(), steady.begin(), steady.end());
    const std::size_t cut = mserTruncationPoint(xs);
    EXPECT_GE(cut, 2u);
    EXPECT_LE(cut, xs.size() / 2);
}

TEST(MserTruncationTest, ScanNeverPassesHalfway)
{
    // Monotone decay: later suffixes always look "flatter", so the scan
    // would run away without the n/2 stop.
    std::vector<double> xs;
    for (int i = 0; i < 12; ++i)
        xs.push_back(100.0 * std::pow(0.5, i));
    EXPECT_LE(mserTruncationPoint(xs), xs.size() / 2);
}

TEST(ConvergenceMonitorTest, RelHalfWidthNeedsTwoBatches)
{
    ConvergenceMonitor m;
    EXPECT_DOUBLE_EQ(m.relHalfWidth(), 0.0);
    m.addBatch(5.0);
    EXPECT_DOUBLE_EQ(m.relHalfWidth(), 0.0);
    m.addBatch(6.0);
    EXPECT_GT(m.relHalfWidth(), 0.0);
}

TEST(ConvergenceMonitorTest, RelHalfWidthIsRelative)
{
    // Same spread at 10x the level must give ~10x smaller relative
    // half-width.
    const auto lo = monitorOver(stationarySeries(10, 5.0, 0.5));
    const auto hi = monitorOver(stationarySeries(10, 50.0, 0.5));
    ASSERT_GT(lo.relHalfWidth(), 0.0);
    EXPECT_NEAR(hi.relHalfWidth(), lo.relHalfWidth() / 10.0,
                lo.relHalfWidth() * 0.01);
}

TEST(ConvergenceMonitorTest, NearZeroMeanFallsBackToAbsolute)
{
    // Means around zero: relative width would divide by ~0. The monitor
    // must judge the absolute half-width instead of exploding.
    const auto m = monitorOver({1e-12, -1e-12, 1e-12, -1e-12, 1e-12});
    const double rhw = m.relHalfWidth();
    EXPECT_TRUE(std::isfinite(rhw));
    EXPECT_DOUBLE_EQ(rhw, m.estimate().halfWidth);
}

TEST(ConvergenceMonitorTest, TrajectoryRecordsEveryBatch)
{
    const std::vector<double> xs = stationarySeries(8, 5.0, 0.4);
    const auto m = monitorOver(xs);
    const std::vector<double> &traj = m.relHalfWidthTrajectory();
    ASSERT_EQ(traj.size(), xs.size());
    // One batch has no interval.
    EXPECT_DOUBLE_EQ(traj[0], 0.0);
    for (std::size_t i = 1; i < traj.size(); ++i)
        EXPECT_GT(traj[i], 0.0) << "batch " << i;
    // The final entry is the live value.
    EXPECT_DOUBLE_EQ(traj.back(), m.relHalfWidth());
}

TEST(ConvergenceMonitorTest, FewBatchesAreUnderconverged)
{
    ConvergenceMonitor m;
    m.addBatch(5.0);
    m.addBatch(5.0);
    EXPECT_EQ(m.verdict(), ConvergenceVerdict::kUnderconverged);
}

TEST(ConvergenceMonitorTest, TightIidSeriesConverges)
{
    // Loose lag-1 threshold isolates the half-width check: 10 points of
    // iid noise can show |lag1| > 0.3 by chance.
    ConvergenceConfig config;
    config.lag1Threshold = 0.95;
    const auto m = monitorOver(stationarySeries(10, 5.0, 0.05), config);
    EXPECT_LE(m.relHalfWidth(), config.relHalfWidthTarget);
    EXPECT_EQ(m.verdict(), ConvergenceVerdict::kConverged);
}

TEST(ConvergenceMonitorTest, WideIntervalIsUnderconverged)
{
    ConvergenceConfig config;
    config.lag1Threshold = 0.95;
    const auto m = monitorOver(stationarySeries(10, 5.0, 8.0), config);
    EXPECT_GT(m.relHalfWidth(), config.relHalfWidthTarget);
    EXPECT_EQ(m.verdict(), ConvergenceVerdict::kUnderconverged);
}

TEST(ConvergenceMonitorTest, CorrelatedBatchesAreUnderconverged)
{
    // Alternating series: lag-1 near -1. Relax the half-width target so
    // only the correlation check can fire.
    ConvergenceConfig config;
    config.relHalfWidthTarget = 100.0;
    ConvergenceMonitor m(config);
    for (int i = 0; i < 10; ++i)
        m.addBatch(i % 2 == 0 ? 9.0 : 11.0);
    EXPECT_LT(m.lag1(), -config.lag1Threshold);
    EXPECT_EQ(m.verdict(), ConvergenceVerdict::kUnderconverged);
}

TEST(ConvergenceMonitorTest, TransientPrefixIsFlagged)
{
    ConvergenceMonitor m;
    m.addBatch(40.0);
    m.addBatch(20.0);
    for (double x : stationarySeries(10, 5.0, 0.05))
        m.addBatch(x);
    EXPECT_TRUE(m.transientDetected());
    EXPECT_GE(m.mserTruncation(), 2u);
    EXPECT_EQ(m.verdict(), ConvergenceVerdict::kTransientContaminated);
}

TEST(ConvergenceMonitorTest, NoiseTruncationDoesNotFlagTransient)
{
    // On a clean stationary series the MSER minimum may land at a small
    // d > 0 by chance, but the improvement gate must keep the verdict
    // free of false transient alarms.
    ConvergenceConfig config;
    config.lag1Threshold = 0.95;
    const auto m = monitorOver(stationarySeries(10, 5.0, 0.05), config);
    EXPECT_FALSE(m.transientDetected());
    EXPECT_NE(m.verdict(), ConvergenceVerdict::kTransientContaminated);
}

TEST(ConvergenceMonitorTest, ConstantSeriesConverges)
{
    // Zero variance everywhere: half-width 0, lag1 defined 0, and the
    // zero-untruncated-variance guard keeps MSER quiet.
    const auto m = monitorOver(std::vector<double>(10, 5.0));
    EXPECT_DOUBLE_EQ(m.relHalfWidth(), 0.0);
    EXPECT_DOUBLE_EQ(m.lag1(), 0.0);
    EXPECT_FALSE(m.transientDetected());
    EXPECT_EQ(m.verdict(), ConvergenceVerdict::kConverged);
}

TEST(ConvergenceMonitorTest, EstimateMatchesBatchMeans)
{
    const std::vector<double> xs = stationarySeries(10, 5.0, 0.4);
    const auto m = monitorOver(xs);
    BatchMeans ref;
    for (double x : xs)
        ref.addBatch(x);
    const Estimate a = m.estimate();
    const Estimate b = ref.estimate(m.config().confidence);
    EXPECT_DOUBLE_EQ(a.value, b.value);
    EXPECT_DOUBLE_EQ(a.halfWidth, b.halfWidth);
    EXPECT_EQ(m.batchMeans(), xs);
}

TEST(ConvergenceDeathTest, RejectsInvalidConfig)
{
    ConvergenceConfig bad_target;
    bad_target.relHalfWidthTarget = 0.0;
    EXPECT_DEATH(ConvergenceMonitor{bad_target}, "relHalfWidthTarget");

    ConvergenceConfig bad_lag;
    bad_lag.lag1Threshold = -0.3;
    EXPECT_DEATH(ConvergenceMonitor{bad_lag}, "lag1Threshold");

    ConvergenceConfig bad_mser;
    bad_mser.mserImprovement = 1.5;
    EXPECT_DEATH(ConvergenceMonitor{bad_mser}, "mserImprovement");
}

} // namespace
} // namespace busarb
