/**
 * @file
 * Tests for the machine-repairman model, including the cross-check
 * against the full simulation.
 */

#include <gtest/gtest.h>

#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "stats/machine_repairman.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

TEST(MachineRepairmanTest, SingleAgentClosedForm)
{
    // N = 1: utilization = S / (S + Z), response = S.
    const auto r = machineRepairman(1, 4.0, 1.0);
    EXPECT_DOUBLE_EQ(r.utilization, 1.0 / 5.0);
    EXPECT_DOUBLE_EQ(r.throughput, 1.0 / 5.0);
    EXPECT_DOUBLE_EQ(r.meanResponse, 1.0);
}

TEST(MachineRepairmanTest, TwoAgentHandComputation)
{
    // N = 2, Z = 1, S = 1: terms 1, 2, 2 -> p = {0.2, 0.4, 0.4}.
    const auto r = machineRepairman(2, 1.0, 1.0);
    EXPECT_NEAR(r.utilization, 0.8, 1e-12);
    EXPECT_NEAR(r.meanAtServer, 0.4 + 0.8, 1e-12);
    EXPECT_NEAR(r.throughput, 0.8, 1e-12);
    EXPECT_NEAR(r.meanResponse, 1.2 / 0.8, 1e-12);
}

TEST(MachineRepairmanTest, LittlesLawAcrossTheWholeSystem)
{
    // N = X * (R + Z) must hold exactly.
    for (int n : {3, 10, 40}) {
        for (double z : {1.0, 9.0}) {
            const auto r = machineRepairman(n, z, 1.0);
            EXPECT_NEAR(n, r.throughput * (r.meanResponse + z), 1e-9)
                << n << " " << z;
        }
    }
}

TEST(MachineRepairmanTest, SaturationAsymptote)
{
    // Heavy load: utilization -> 1 and R -> N*S - Z.
    const auto r = machineRepairman(20, 0.5, 1.0);
    EXPECT_GT(r.utilization, 0.999);
    EXPECT_NEAR(r.meanResponse, 20.0 * 1.0 - 0.5, 0.05);
}

TEST(MachineRepairmanTest, UtilizationMonotoneInN)
{
    double prev = 0.0;
    for (int n = 1; n <= 30; ++n) {
        const auto r = machineRepairman(n, 9.0, 1.0);
        EXPECT_GT(r.utilization, prev);
        prev = r.utilization;
    }
}

TEST(MachineRepairmanTest, DeathOnBadArguments)
{
    EXPECT_DEATH(machineRepairman(0, 1.0, 1.0), "at least one");
    EXPECT_DEATH(machineRepairman(2, 0.0, 1.0), "think");
    EXPECT_DEATH(machineRepairman(2, 1.0, -1.0), "service");
}

TEST(MachineRepairmanCrossCheck, SimulationBracketsTheModel)
{
    // The simulated bus serves deterministically (CV = 0 service) and
    // adds 0.5 exposed arbitration when idle, so against the
    // exponential-service model: utilization is close, and the
    // simulated response (minus the idle-bus arbitration component)
    // stays below the model's response, with both meeting at the
    // saturated asymptote.
    for (double load : {0.5, 1.5}) {
        ScenarioConfig config = equalLoadScenario(10, load, 1.0);
        config.numBatches = 5;
        config.batchSize = 2000;
        config.warmup = 2000;
        const auto sim = runScenario(config, protocolByKey("fcfs2"));
        const auto model = machineRepairman(
            10, config.agents[0].meanInterrequest, 1.0);
        EXPECT_NEAR(sim.utilization().value, model.utilization,
                    0.08) << load;
        // Deterministic service halves queueing variance contribution:
        // the simulated mean response must not exceed the analytic
        // exponential-service response by more than the arbitration
        // overhead.
        EXPECT_LT(sim.meanWait().value,
                  model.meanResponse + 0.55) << load;
    }
    // Saturated: both pin to N*S - Z.
    ScenarioConfig config = equalLoadScenario(10, 5.0, 1.0);
    config.numBatches = 5;
    config.batchSize = 2000;
    config.warmup = 2000;
    const auto sim = runScenario(config, protocolByKey("fcfs2"));
    const auto model =
        machineRepairman(10, config.agents[0].meanInterrequest, 1.0);
    EXPECT_NEAR(sim.meanWait().value, model.meanResponse, 0.3);
}

} // namespace
} // namespace busarb
