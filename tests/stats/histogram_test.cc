/**
 * @file
 * Unit tests for the histogram / empirical CDF.
 */

#include <gtest/gtest.h>

#include "stats/histogram.hh"

namespace busarb {
namespace {

TEST(HistogramTest, EmptyHistogram)
{
    Histogram h(0.5, 10);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.cdf(1.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.approximateMean(), 0.0);
}

TEST(HistogramTest, BinningIsCorrect)
{
    Histogram h(1.0, 4);
    h.add(0.1);  // bin 0
    h.add(0.9);  // bin 0
    h.add(1.0);  // bin 1
    h.add(2.5);  // bin 2
    h.add(3.99); // bin 3
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.count(), 5u);
}

TEST(HistogramTest, OverflowBucket)
{
    Histogram h(1.0, 2);
    h.add(5.0);
    h.add(100.0);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.cdf(2.0), 0.0);  // all mass beyond the bins
}

TEST(HistogramTest, NegativeClampsToFirstBin)
{
    Histogram h(1.0, 2);
    h.add(-3.0);
    EXPECT_EQ(h.binCount(0), 1u);
}

TEST(HistogramTest, CdfAtBinEdges)
{
    Histogram h(1.0, 4);
    for (double v : {0.5, 1.5, 2.5, 3.5})
        h.add(v);
    EXPECT_DOUBLE_EQ(h.cdf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.cdf(1.0), 0.25);
    EXPECT_DOUBLE_EQ(h.cdf(2.0), 0.5);
    EXPECT_DOUBLE_EQ(h.cdf(4.0), 1.0);
    EXPECT_DOUBLE_EQ(h.cdf(100.0), 1.0);
}

TEST(HistogramTest, CdfInterpolatesWithinBin)
{
    Histogram h(2.0, 2);
    h.add(0.5);
    h.add(1.5); // both bin 0
    // Halfway through bin 0 -> half its mass.
    EXPECT_DOUBLE_EQ(h.cdf(1.0), 0.5);
    EXPECT_DOUBLE_EQ(h.cdf(2.0), 1.0);
}

TEST(HistogramTest, CdfIsMonotone)
{
    Histogram h(0.25, 64);
    for (int i = 0; i < 1000; ++i)
        h.add(0.013 * i);
    double prev = -1.0;
    for (double x = 0.0; x <= 16.0; x += 0.1) {
        const double c = h.cdf(x);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST(HistogramTest, QuantileInvertsCdf)
{
    Histogram h(1.0, 10);
    for (int i = 0; i < 100; ++i)
        h.add(i * 0.1); // uniform over [0, 10)
    EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
    EXPECT_NEAR(h.quantile(0.9), 9.0, 1.0);
    // p = 0 is the minimum of the support, not the first bin edge.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(HistogramTest, QuantileZeroSkipsLeadingEmptyBins)
{
    Histogram h(1.0, 10);
    h.add(3.5); // bin 3; bins 0-2 stay empty
    h.add(3.6);
    // The lower edge of the first non-empty bin, not bin 0's edge.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(HistogramTest, QuantileClampsToEdgeOnlyForOverflowMass)
{
    Histogram h(1.0, 2);
    h.add(0.5);
    h.add(5.0); // overflow
    // In-range mass resolves normally...
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
    // ...and only a target inside the overflow mass clamps to the edge.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(HistogramTest, QuantileZeroWithOnlyOverflowMassReturnsEdge)
{
    Histogram h(1.0, 2);
    h.add(9.0); // everything beyond the bins
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(HistogramTest, ApproximateMeanIsExactSumBased)
{
    Histogram h(1.0, 4);
    h.add(0.5);
    h.add(1.5);
    h.add(7.0); // overflow still counted in the mean
    EXPECT_DOUBLE_EQ(h.approximateMean(), 3.0);
}

TEST(HistogramTest, ExpectedMinClampsAtLimit)
{
    Histogram h(1.0, 10);
    h.add(0.5); // mid 0.5
    h.add(2.5); // mid 2.5
    h.add(8.5); // mid 8.5
    // v larger than everything: plain mean of midpoints.
    EXPECT_NEAR(h.expectedMin(100.0), (0.5 + 2.5 + 8.5) / 3.0, 1e-12);
    // v = 2: min(0.5,2) + min(2.5,2) + min(8.5,2) over 3.
    EXPECT_NEAR(h.expectedMin(2.0), (0.5 + 2.0 + 2.0) / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(h.expectedMin(0.0), 0.0);
}

TEST(HistogramTest, ExpectedExcessComplementsExpectedMin)
{
    Histogram h(1.0, 10);
    h.add(0.5);
    h.add(2.5);
    h.add(8.5);
    for (double v : {0.0, 1.0, 3.0, 7.0, 20.0}) {
        EXPECT_NEAR(h.expectedMin(v) + h.expectedExcess(v),
                    h.approximateMean(), 1e-12)
            << v;
        EXPECT_GE(h.expectedExcess(v), 0.0);
    }
    EXPECT_NEAR(h.expectedExcess(2.0), (0.0 + 0.5 + 6.5) / 3.0, 1e-12);
}

TEST(HistogramTest, ExpectedMinCountsOverflowAtLimit)
{
    Histogram h(1.0, 2);
    h.add(0.5);
    h.add(50.0); // overflow
    EXPECT_NEAR(h.expectedMin(1.5), (0.5 + 1.5) / 2.0, 1e-12);
}

TEST(HistogramTest, ClearResets)
{
    Histogram h(1.0, 4);
    h.add(1.0);
    h.add(9.0);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_DOUBLE_EQ(h.cdf(10.0), 0.0);
}

TEST(HistogramDeathTest, InvalidConstruction)
{
    EXPECT_DEATH(Histogram(0.0, 4), "bin width");
    EXPECT_DEATH(Histogram(1.0, 0), "at least one bin");
}

TEST(HistogramDeathTest, QuantileOutOfRange)
{
    Histogram h(1.0, 4);
    h.add(1.0);
    EXPECT_DEATH(h.quantile(1.5), "out of range");
}

} // namespace
} // namespace busarb
