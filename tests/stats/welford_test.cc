/**
 * @file
 * Unit tests for the Welford accumulator.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "stats/welford.hh"

namespace busarb {
namespace {

TEST(WelfordTest, EmptyAccumulator)
{
    RunningStats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.varianceSample(), 0.0);
    EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
    EXPECT_TRUE(std::isinf(rs.min()));
    EXPECT_TRUE(std::isinf(rs.max()));
}

TEST(WelfordTest, SingleValue)
{
    RunningStats rs;
    rs.add(5.0);
    EXPECT_EQ(rs.count(), 1u);
    EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
    EXPECT_DOUBLE_EQ(rs.varianceSample(), 0.0);
    EXPECT_DOUBLE_EQ(rs.min(), 5.0);
    EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(WelfordTest, KnownSmallSample)
{
    RunningStats rs;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        rs.add(v);
    EXPECT_EQ(rs.count(), 8u);
    EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
    EXPECT_DOUBLE_EQ(rs.variancePopulation(), 4.0);
    EXPECT_NEAR(rs.varianceSample(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(rs.min(), 2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 9.0);
    EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(WelfordTest, MergeMatchesSequential)
{
    RunningStats all, a, b;
    for (int i = 0; i < 100; ++i) {
        const double v = 0.37 * i - 13.0;
        all.add(v);
        (i < 40 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.varianceSample(), all.varianceSample(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(WelfordTest, MergeWithEmptySides)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    RunningStats a_copy = a;
    a.merge(b); // empty right side
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a_copy); // empty left side
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(WelfordTest, ClearResets)
{
    RunningStats rs;
    rs.add(10.0);
    rs.clear();
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
}

TEST(WelfordTest, StableWithLargeOffset)
{
    // Naive sum-of-squares would lose all precision here.
    RunningStats rs;
    const double offset = 1e9;
    for (double v : {offset + 1.0, offset + 2.0, offset + 3.0})
        rs.add(v);
    EXPECT_NEAR(rs.varianceSample(), 1.0, 1e-6);
}

TEST(WelfordTest, NegativeValues)
{
    RunningStats rs;
    rs.add(-2.0);
    rs.add(2.0);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.min(), -2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 2.0);
    EXPECT_DOUBLE_EQ(rs.varianceSample(), 8.0);
}

} // namespace
} // namespace busarb
