/**
 * @file
 * Tests for batch-means adequacy diagnostics.
 */

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "random/rng.hh"
#include "stats/autocorrelation.hh"

namespace busarb {
namespace {

TEST(AutocorrelationTest, ShortOrConstantSeriesIsZero)
{
    EXPECT_DOUBLE_EQ(autocorrelation({}, 1), 0.0);
    EXPECT_DOUBLE_EQ(autocorrelation({1.0, 2.0}, 1), 0.0);
    EXPECT_DOUBLE_EQ(autocorrelation({5.0, 5.0, 5.0, 5.0}, 1), 0.0);
}

TEST(AutocorrelationTest, DegenerateInputsHaveDefinedValues)
{
    // A single point offers no pairs at any lag: defined zero, not NaN.
    EXPECT_DOUBLE_EQ(autocorrelation({7.5}, 1), 0.0);
    EXPECT_FALSE(std::isnan(autocorrelation({7.5}, 4)));

    // Lag at or beyond the series length leaves no overlapping pairs.
    EXPECT_DOUBLE_EQ(autocorrelation({1.0, 2.0, 3.0}, 3), 0.0);
    EXPECT_DOUBLE_EQ(autocorrelation({1.0, 2.0, 3.0}, 100), 0.0);

    // Lag n-1 leaves one pair — still too short for an estimate.
    EXPECT_DOUBLE_EQ(autocorrelation({1.0, 2.0, 3.0}, 2), 0.0);

    // Constant series have zero variance at every lag: the denominator
    // degenerates and the estimator must report zero rather than 0/0.
    const std::vector<double> flat(8, 42.0);
    for (std::size_t lag = 1; lag <= flat.size(); ++lag) {
        const double r = autocorrelation(flat, lag);
        EXPECT_DOUBLE_EQ(r, 0.0) << "lag " << lag;
    }

    // Near-constant series stay finite (no catastrophic cancellation
    // blowing up into inf/NaN).
    const double r =
        autocorrelation({1.0, 1.0 + 1e-9, 1.0 - 1e-9, 1.0, 1.0 + 1e-9}, 1);
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_LE(std::abs(r), 1.5);
}

TEST(AutocorrelationTest, AlternatingSeriesIsStronglyNegative)
{
    std::vector<double> xs;
    for (int i = 0; i < 64; ++i)
        xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
    EXPECT_LT(autocorrelation(xs, 1), -0.9);
    EXPECT_GT(autocorrelation(xs, 2), 0.9);
}

TEST(AutocorrelationTest, TrendingSeriesIsStronglyPositive)
{
    std::vector<double> xs;
    for (int i = 0; i < 64; ++i)
        xs.push_back(static_cast<double>(i));
    EXPECT_GT(autocorrelation(xs, 1), 0.8);
}

TEST(AutocorrelationTest, IidNoiseIsNearZero)
{
    Rng rng(31);
    std::vector<double> xs;
    for (int i = 0; i < 4000; ++i)
        xs.push_back(rng.uniform());
    EXPECT_NEAR(autocorrelation(xs, 1), 0.0, 0.05);
}

TEST(AutocorrelationTest, Ar1ProcessMatchesTheory)
{
    // x_{t+1} = phi x_t + noise has lag-1 autocorrelation phi.
    const double phi = 0.6;
    Rng rng(77);
    std::vector<double> xs;
    double x = 0.0;
    for (int i = 0; i < 20000; ++i) {
        x = phi * x + (rng.uniform() - 0.5);
        xs.push_back(x);
    }
    EXPECT_NEAR(autocorrelation(xs, 1), phi, 0.05);
    EXPECT_NEAR(autocorrelation(xs, 2), phi * phi, 0.05);
}

TEST(DiagnoseBatchesTest, FlagsCorrelatedBatches)
{
    std::vector<double> trending;
    for (int i = 0; i < 10; ++i)
        trending.push_back(static_cast<double>(i));
    EXPECT_FALSE(diagnoseBatches(trending).adequate);

    std::vector<double> alternating;
    for (int i = 0; i < 10; ++i)
        alternating.push_back(i % 2 == 0 ? 1.0 : -1.0);
    EXPECT_FALSE(diagnoseBatches(alternating).adequate);
}

TEST(DiagnoseBatchesTest, AcceptsIndependentBatches)
{
    Rng rng(9);
    std::vector<double> xs;
    for (int i = 0; i < 10; ++i)
        xs.push_back(rng.uniform());
    // A 10-point estimate is noisy; use a generous threshold as in
    // practice.
    EXPECT_TRUE(diagnoseBatches(xs, 0.6).adequate);
}

TEST(AutocorrelationDeathTest, InvalidArguments)
{
    EXPECT_DEATH(autocorrelation({1.0, 2.0, 3.0}, 0), "lag");
    EXPECT_DEATH(diagnoseBatches({1.0, 2.0}, 0.0), "threshold");
}

} // namespace
} // namespace busarb
