/**
 * @file
 * Closed-form checks for the open single-server queues (M/M/1, M/D/1)
 * that anchor the open-loop workload tests.
 */

#include <gtest/gtest.h>

#include "stats/open_queue.hh"

namespace busarb {
namespace {

TEST(OpenQueueTest, Mm1MatchesTextbookValues)
{
    // rho = 0.5: R = S / (1 - rho) = 2, L = lambda * R = 1.
    const OpenQueueResult r = mm1(0.5, 1.0);
    EXPECT_DOUBLE_EQ(r.utilization, 0.5);
    EXPECT_DOUBLE_EQ(r.meanResponse, 2.0);
    EXPECT_DOUBLE_EQ(r.meanInSystem, 1.0);
}

TEST(OpenQueueTest, Md1MatchesPollaczekKhinchine)
{
    // rho = 0.5: R = S + rho * S / (2 * (1 - rho)) = 1.5.
    const OpenQueueResult r = md1(0.5, 1.0);
    EXPECT_DOUBLE_EQ(r.utilization, 0.5);
    EXPECT_DOUBLE_EQ(r.meanResponse, 1.5);
    EXPECT_DOUBLE_EQ(r.meanInSystem, 0.75);
}

TEST(OpenQueueTest, Md1BracketedByMm1FromAbove)
{
    // Deterministic service halves the queueing delay of exponential
    // service (PK with CV = 0), so M/D/1 <= M/M/1 at every load.
    for (const double rho : {0.1, 0.3, 0.5, 0.7, 0.9, 0.95}) {
        const OpenQueueResult e = mm1(rho, 1.0);
        const OpenQueueResult d = md1(rho, 1.0);
        EXPECT_LT(d.meanResponse, e.meanResponse) << "rho=" << rho;
        EXPECT_GE(d.meanResponse, 1.0) << "rho=" << rho;
    }
}

TEST(OpenQueueTest, LittlesLawHoldsAcrossLoads)
{
    for (const double lambda : {0.2, 0.6, 0.85}) {
        for (const double s : {0.5, 1.0}) {
            const OpenQueueResult e = mm1(lambda, s);
            EXPECT_NEAR(e.meanInSystem, lambda * e.meanResponse, 1e-12);
            const OpenQueueResult d = md1(lambda, s);
            EXPECT_NEAR(d.meanInSystem, lambda * d.meanResponse, 1e-12);
        }
    }
}

TEST(OpenQueueTest, ResponseDivergesNearSaturation)
{
    EXPECT_GT(mm1(0.999, 1.0).meanResponse, 500.0);
    EXPECT_GT(md1(0.999, 1.0).meanResponse, 250.0);
}

} // namespace
} // namespace busarb
