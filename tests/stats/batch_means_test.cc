/**
 * @file
 * Unit tests for Student-t critical values and batch-means estimation.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "stats/batch_means.hh"
#include "stats/student_t.hh"

namespace busarb {
namespace {

TEST(StudentTTest, KnownCriticalValues)
{
    // dof = 9 at 90% two-sided is the constant behind the paper's
    // "10 batches, 90% confidence intervals".
    EXPECT_DOUBLE_EQ(studentTCritical(9, 0.90), 1.833);
    EXPECT_DOUBLE_EQ(studentTCritical(1, 0.90), 6.314);
    EXPECT_DOUBLE_EQ(studentTCritical(9, 0.95), 2.262);
    EXPECT_DOUBLE_EQ(studentTCritical(9, 0.99), 3.250);
    EXPECT_DOUBLE_EQ(studentTCritical(30, 0.90), 1.697);
}

TEST(StudentTTest, LargeDofFallsBackToNormal)
{
    EXPECT_DOUBLE_EQ(studentTCritical(1000, 0.90), 1.645);
    EXPECT_DOUBLE_EQ(studentTCritical(1000, 0.95), 1.960);
    EXPECT_DOUBLE_EQ(studentTCritical(1000, 0.99), 2.576);
}

TEST(StudentTTest, CriticalValueDecreasesWithDof)
{
    for (int dof = 2; dof <= 30; ++dof) {
        EXPECT_LT(studentTCritical(dof, 0.90),
                  studentTCritical(dof - 1, 0.90));
    }
}

TEST(StudentTDeathTest, InvalidInputs)
{
    EXPECT_DEATH(studentTCritical(0, 0.90), "degrees of freedom");
    EXPECT_EXIT(studentTCritical(5, 0.42),
                ::testing::ExitedWithCode(1), "unsupported confidence");
}

TEST(EstimateTest, FormattingAndEdges)
{
    Estimate e{1.2345, 0.0456};
    EXPECT_EQ(e.str(2), "1.23 ± 0.05");
    EXPECT_EQ(e.str(3), "1.234 ± 0.046");
    EXPECT_NEAR(e.lo(), 1.1889, 1e-12);
    EXPECT_NEAR(e.hi(), 1.2801, 1e-12);
}

TEST(BatchMeansTest, EmptyAndSingleBatch)
{
    BatchMeans bm;
    EXPECT_DOUBLE_EQ(bm.mean(), 0.0);
    EXPECT_DOUBLE_EQ(bm.estimate().halfWidth, 0.0);
    bm.addBatch(4.0);
    EXPECT_DOUBLE_EQ(bm.mean(), 4.0);
    EXPECT_DOUBLE_EQ(bm.estimate().value, 4.0);
    EXPECT_DOUBLE_EQ(bm.estimate().halfWidth, 0.0);
}

TEST(BatchMeansTest, HandComputedInterval)
{
    // Batches 1..10: mean 5.5, sample stddev sqrt(110/12) ... compute
    // directly: s^2 = sum((i - 5.5)^2)/9 = 82.5 / 9.
    BatchMeans bm;
    for (int i = 1; i <= 10; ++i)
        bm.addBatch(static_cast<double>(i));
    const Estimate e = bm.estimate(0.90);
    EXPECT_DOUBLE_EQ(e.value, 5.5);
    const double s = std::sqrt(82.5 / 9.0);
    EXPECT_NEAR(e.halfWidth, 1.833 * s / std::sqrt(10.0), 1e-9);
}

TEST(BatchMeansTest, IdenticalBatchesHaveZeroWidth)
{
    BatchMeans bm;
    for (int i = 0; i < 10; ++i)
        bm.addBatch(7.25);
    const Estimate e = bm.estimate(0.90);
    EXPECT_DOUBLE_EQ(e.value, 7.25);
    EXPECT_DOUBLE_EQ(e.halfWidth, 0.0);
}

TEST(BatchMeansTest, WiderConfidenceWiderInterval)
{
    BatchMeans bm;
    for (int i = 1; i <= 10; ++i)
        bm.addBatch(static_cast<double>(i % 3));
    EXPECT_LT(bm.estimate(0.90).halfWidth, bm.estimate(0.95).halfWidth);
    EXPECT_LT(bm.estimate(0.95).halfWidth, bm.estimate(0.99).halfWidth);
}

TEST(RatioEstimateTest, ConstantRatio)
{
    std::vector<double> num{2.0, 4.0, 6.0};
    std::vector<double> den{1.0, 2.0, 3.0};
    const Estimate e = ratioEstimate(num, den, 0.90);
    EXPECT_DOUBLE_EQ(e.value, 2.0);
    EXPECT_DOUBLE_EQ(e.halfWidth, 0.0);
}

TEST(RatioEstimateTest, VaryingRatio)
{
    std::vector<double> num{1.0, 2.0, 3.0, 2.0};
    std::vector<double> den{1.0, 1.0, 1.0, 1.0};
    const Estimate e = ratioEstimate(num, den, 0.90);
    EXPECT_DOUBLE_EQ(e.value, 2.0);
    EXPECT_GT(e.halfWidth, 0.0);
}

TEST(RatioEstimateDeathTest, MismatchedSizesAndZeroDenominator)
{
    std::vector<double> a{1.0, 2.0};
    std::vector<double> b{1.0};
    EXPECT_DEATH(ratioEstimate(a, b), "size mismatch");
    std::vector<double> z{1.0, 0.0};
    EXPECT_DEATH(ratioEstimate(a, z), "zero denominator");
}

} // namespace
} // namespace busarb
