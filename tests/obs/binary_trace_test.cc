/**
 * @file
 * Binary trace format tests: varint coding, writer/reader round-trips,
 * chunk concatenation, and malformed-input rejection.
 */

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "obs/binary_trace.hh"

namespace busarb {
namespace {

std::uint64_t
roundTripVarint(std::uint64_t value, std::size_t *encoded_size = nullptr)
{
    std::vector<std::uint8_t> buf;
    appendVarint(buf, value);
    if (encoded_size != nullptr)
        *encoded_size = buf.size();
    const std::uint8_t *cursor = buf.data();
    std::uint64_t out = 0;
    EXPECT_TRUE(decodeVarint(&cursor, buf.data() + buf.size(), out));
    EXPECT_EQ(cursor, buf.data() + buf.size());
    return out;
}

TEST(Varint, RoundTripsEdgeValues)
{
    for (const std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
          std::uint64_t{128}, std::uint64_t{16383}, std::uint64_t{16384},
          std::uint64_t{0xdeadbeef},
          std::numeric_limits<std::uint64_t>::max()}) {
        EXPECT_EQ(roundTripVarint(v), v) << "value " << v;
    }
}

TEST(Varint, EncodedSizesMatchLeb128)
{
    std::size_t size = 0;
    roundTripVarint(0, &size);
    EXPECT_EQ(size, 1u);
    roundTripVarint(127, &size);
    EXPECT_EQ(size, 1u);
    roundTripVarint(128, &size);
    EXPECT_EQ(size, 2u);
    roundTripVarint(std::numeric_limits<std::uint64_t>::max(), &size);
    EXPECT_EQ(size, 10u);
}

TEST(Varint, TruncatedInputFails)
{
    std::vector<std::uint8_t> buf;
    appendVarint(buf, 1u << 20); // multi-byte encoding
    for (std::size_t keep = 0; keep + 1 < buf.size(); ++keep) {
        const std::uint8_t *cursor = buf.data();
        std::uint64_t out = 0;
        EXPECT_FALSE(decodeVarint(&cursor, buf.data() + keep, out));
    }
}

TEST(Varint, OverlongInputFails)
{
    // Eleven continuation bytes can never be a valid 64-bit varint.
    const std::vector<std::uint8_t> buf(11, 0x80);
    const std::uint8_t *cursor = buf.data();
    std::uint64_t out = 0;
    EXPECT_FALSE(decodeVarint(&cursor, buf.data() + buf.size(), out));
}

Request
makeRequest(AgentId agent, Tick issued, std::uint64_t seq,
            bool priority = false)
{
    Request req;
    req.agent = agent;
    req.issued = issued;
    req.seq = seq;
    req.priority = priority;
    return req;
}

TEST(BinaryTrace, RoundTripsEveryRecordKind)
{
    BinaryTraceWriter writer(4, "test-protocol");
    const std::uint64_t ops = writer.defineCounter("bus.ops");

    writer.onRequestPosted(makeRequest(2, 1000, 7, true));
    writer.onPassStarted(1000);
    writer.onPassResolved(1500, 1000, makeRequest(2, 1000, 7), false);
    writer.onTenureStarted(makeRequest(2, 1000, 7), 1500);
    writer.counterUpdate(ops, 2000, 42);
    writer.onTenureEnded(makeRequest(2, 1000, 7), 2500);
    writer.onPassStarted(2500);
    writer.onPassResolved(3000, 2500, Request{}, true); // retry pass
    writer.onPassStarted(3000);
    writer.onPassResolved(3500, 3000, Request{}, false); // idle pass

    const std::vector<std::uint8_t> bytes = writer.finish();
    const auto chunks = readTraceChunks(bytes);
    ASSERT_EQ(chunks.size(), 1u);
    const TraceChunk &chunk = chunks.front();

    EXPECT_EQ(chunk.numAgents, 4);
    EXPECT_EQ(chunk.protocol, "test-protocol");
    ASSERT_EQ(chunk.counterNames.size(), 1u);
    EXPECT_EQ(chunk.counterNames[0], "bus.ops");
    ASSERT_EQ(chunk.events.size(), 10u);

    const TraceEvent &request = chunk.events[0];
    EXPECT_EQ(request.kind, TraceEventKind::kRequestPosted);
    EXPECT_EQ(request.tick, 1000);
    EXPECT_EQ(request.agent, 2);
    EXPECT_EQ(request.seq, 7u);
    EXPECT_TRUE(request.priority);

    const TraceEvent &resolve = chunk.events[2];
    EXPECT_EQ(resolve.kind, TraceEventKind::kPassResolved);
    EXPECT_EQ(resolve.tick, 1500);
    EXPECT_EQ(resolve.passStart, 1000);
    EXPECT_EQ(resolve.agent, 2);
    EXPECT_FALSE(resolve.retry);

    const TraceEvent &counter = chunk.events[4];
    EXPECT_EQ(counter.kind, TraceEventKind::kCounterUpdate);
    EXPECT_EQ(counter.tick, 2000);
    EXPECT_EQ(counter.counterId, 0u);
    EXPECT_EQ(counter.counterValue, 42u);

    const TraceEvent &retry = chunk.events[7];
    EXPECT_EQ(retry.kind, TraceEventKind::kPassResolved);
    EXPECT_EQ(retry.agent, kNoAgent);
    EXPECT_TRUE(retry.retry);

    const TraceEvent &idle = chunk.events[9];
    EXPECT_EQ(idle.agent, kNoAgent);
    EXPECT_FALSE(idle.retry);
    EXPECT_EQ(idle.passStart, 3000);
}

TEST(BinaryTrace, ConcatenatedChunksDecodeInOrder)
{
    BinaryTraceWriter first(2, "alpha");
    first.onPassStarted(100);
    std::vector<std::uint8_t> bytes = first.finish();

    BinaryTraceWriter second(3, "beta");
    second.onPassStarted(200);
    second.onPassStarted(300);
    const std::vector<std::uint8_t> tail = second.finish();
    bytes.insert(bytes.end(), tail.begin(), tail.end());

    const auto chunks = readTraceChunks(bytes);
    ASSERT_EQ(chunks.size(), 2u);
    EXPECT_EQ(chunks[0].protocol, "alpha");
    EXPECT_EQ(chunks[0].numAgents, 2);
    EXPECT_EQ(chunks[0].events.size(), 1u);
    EXPECT_EQ(chunks[1].protocol, "beta");
    EXPECT_EQ(chunks[1].numAgents, 3);
    EXPECT_EQ(chunks[1].events.size(), 2u);
    // Tick deltas restart per chunk.
    EXPECT_EQ(chunks[1].events[0].tick, 200);
    EXPECT_EQ(chunks[1].events[1].tick, 300);
}

TEST(BinaryTrace, EmptyBufferYieldsNoChunks)
{
    EXPECT_TRUE(readTraceChunks(nullptr, 0).empty());
}

TEST(BinaryTrace, EventCountExcludesDefinitions)
{
    BinaryTraceWriter writer(1, "p");
    writer.defineCounter("a");
    EXPECT_EQ(writer.events(), 0u);
    writer.onPassStarted(0);
    EXPECT_EQ(writer.events(), 1u);
}

TEST(BinaryTrace, RejectsMalformedInput)
{
    // Bad magic.
    const std::vector<std::uint8_t> junk = {'J', 'U', 'N', 'K', 1, 0};
    EXPECT_THROW(readTraceChunks(junk), std::runtime_error);

    BinaryTraceWriter writer(2, "p");
    writer.onPassStarted(50);
    const std::vector<std::uint8_t> good = writer.finish();

    // Every truncation of a valid chunk must be rejected, not crash.
    for (std::size_t keep = 1; keep < good.size(); ++keep) {
        const std::vector<std::uint8_t> cut(good.begin(),
                                            good.begin() + keep);
        EXPECT_THROW(readTraceChunks(cut), std::runtime_error)
            << "kept " << keep << " of " << good.size() << " bytes";
    }

    // Unsupported version byte.
    std::vector<std::uint8_t> wrong_version = good;
    wrong_version[4] = 99;
    EXPECT_THROW(readTraceChunks(wrong_version), std::runtime_error);

    // Unknown record tag where the end record belongs.
    std::vector<std::uint8_t> bad_tag = good;
    bad_tag[bad_tag.size() - 1] = 200;
    EXPECT_THROW(readTraceChunks(bad_tag), std::runtime_error);
}

TEST(BinaryTraceDeathTest, BackwardsTimePanics)
{
    BinaryTraceWriter writer(1, "p");
    writer.onPassStarted(1000);
    EXPECT_DEATH(writer.onPassStarted(500), "backwards in time");
}

} // namespace
} // namespace busarb
