/**
 * @file
 * End-to-end observability tests on the scenario runner: trace capture
 * decodes and is byte-identical between serial and parallel grids, and
 * the per-run metrics registry is populated consistently with the
 * batch measurements.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "obs/binary_trace.hh"
#include "obs/latency.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

ScenarioConfig
smallConfig(double load)
{
    ScenarioConfig config = equalLoadScenario(6, load, 1.0);
    config.numBatches = 2;
    config.batchSize = 300;
    config.warmup = 300;
    config.captureBinaryTrace = true;
    return config;
}

TEST(RunnerCapture, TraceDecodesAndCoversTheRun)
{
    const ScenarioConfig config = smallConfig(2.0);
    const auto result = runScenario(config, protocolByKey("rr1"));
    ASSERT_FALSE(result.binaryTrace.empty());

    const auto chunks = readTraceChunks(result.binaryTrace);
    ASSERT_EQ(chunks.size(), 1u);
    const TraceChunk &chunk = chunks.front();
    EXPECT_EQ(chunk.numAgents, config.numAgents);
    EXPECT_EQ(chunk.protocol, result.protocolName);
    EXPECT_FALSE(chunk.events.empty());
    EXPECT_FALSE(chunk.counterNames.empty());

    // Events are time-ordered; the trace spans warmup + all batches, so
    // it must contain at least one tenure per completed request.
    Tick last = 0;
    std::uint64_t tenures = 0;
    for (const TraceEvent &ev : chunk.events) {
        EXPECT_GE(ev.tick, last);
        last = ev.tick;
        if (ev.kind == TraceEventKind::kTenureEnded)
            ++tenures;
    }
    std::uint64_t measured = 0;
    for (const auto &batch : result.batches)
        for (const std::uint64_t c : batch.completions)
            measured += c;
    EXPECT_GE(tenures, measured);

    // The decoded trace is rich enough for the latency pipeline.
    EXPECT_FALSE(computeRequestLatencies(chunk).empty());
}

TEST(RunnerCapture, DisabledCaptureLeavesTraceEmpty)
{
    ScenarioConfig config = smallConfig(1.0);
    config.captureBinaryTrace = false;
    const auto result = runScenario(config, protocolByKey("rr1"));
    EXPECT_TRUE(result.binaryTrace.empty());
    // Metrics are always populated; they cost one pass at run end.
    EXPECT_FALSE(result.metrics.empty());
}

TEST(RunnerCapture, MetricsMatchBatchMeasurements)
{
    auto result = runScenario(smallConfig(2.0), protocolByKey("fcfs1"));
    MetricsRegistry &metrics = result.metrics;

    std::uint64_t measured_completions = 0;
    std::uint64_t measured_passes = 0;
    for (const auto &batch : result.batches) {
        measured_passes += batch.passes;
        for (const std::uint64_t c : batch.completions)
            measured_completions += c;
    }
    // The counters cover the whole run (warmup included), so they bound
    // the measured-batch totals from above.
    EXPECT_GE(metrics.counter("bus.completions").value(),
              measured_completions);
    EXPECT_GE(metrics.counter("bus.passes").value(), measured_passes);

    // Per-agent completion counters partition the bus total.
    std::uint64_t per_agent = 0;
    for (int a = 1; a <= 6; ++a) {
        per_agent += metrics
                         .counter("agent." + std::to_string(a) +
                                  ".completions")
                         .value();
    }
    EXPECT_EQ(per_agent, metrics.counter("bus.completions").value());

    EXPECT_EQ(metrics.gauge("wait.mean").count(), 1u);
    EXPECT_GT(metrics.gauge("wait.mean").mean(), 0.0);
    const double util = metrics.gauge("bus.utilization").mean();
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0);
}

TEST(RunnerCapture, ParallelGridMatchesSerialByteForByte)
{
    std::vector<GridJob> grid;
    for (const char *key : {"rr1", "fcfs1"}) {
        for (double load : {0.5, 2.0})
            grid.push_back({smallConfig(load), protocolByKey(key)});
    }
    const auto serial = runScenarioGrid(grid, 1);
    const auto parallel = runScenarioGrid(grid, 4);
    ASSERT_EQ(serial.size(), grid.size());
    ASSERT_EQ(parallel.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        // The acceptance bar: identical trace bytes at any job count.
        EXPECT_EQ(serial[i].binaryTrace, parallel[i].binaryTrace)
            << "cell " << i;
        std::ostringstream a;
        std::ostringstream b;
        serial[i].metrics.writeCsv(a);
        parallel[i].metrics.writeCsv(b);
        EXPECT_EQ(a.str(), b.str()) << "cell " << i;
    }
}

} // namespace
} // namespace busarb
