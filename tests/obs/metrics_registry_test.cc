/**
 * @file
 * Metrics registry tests: kinds, exact-mergeable gauges, prefixed
 * merges, and deterministic CSV/JSON export.
 */

#include <fstream>
#include <locale>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics_registry.hh"

namespace busarb {
namespace {

TEST(MetricsRegistry, CounterAccumulatesAndMerges)
{
    Counter a;
    a.add();
    a.add(41);
    EXPECT_EQ(a.value(), 42u);
    Counter b;
    b.add(8);
    a.merge(b);
    EXPECT_EQ(a.value(), 50u);
}

TEST(MetricsRegistry, GaugeTracksExactSummary)
{
    Gauge g;
    EXPECT_EQ(g.count(), 0u);
    EXPECT_EQ(g.mean(), 0.0);
    g.set(2.0);
    g.set(-1.0);
    g.set(5.0);
    EXPECT_EQ(g.count(), 3u);
    EXPECT_DOUBLE_EQ(g.sum(), 6.0);
    EXPECT_DOUBLE_EQ(g.min(), -1.0);
    EXPECT_DOUBLE_EQ(g.max(), 5.0);
    EXPECT_DOUBLE_EQ(g.mean(), 2.0);

    Gauge h;
    h.set(10.0);
    g.merge(h);
    EXPECT_EQ(g.count(), 4u);
    EXPECT_DOUBLE_EQ(g.max(), 10.0);
    // Merging an empty gauge changes nothing (its infinities lose).
    g.merge(Gauge{});
    EXPECT_EQ(g.count(), 4u);
    EXPECT_DOUBLE_EQ(g.min(), -1.0);
    EXPECT_DOUBLE_EQ(g.max(), 10.0);
}

TEST(MetricsRegistry, LooksUpByNameAndCountsMetrics)
{
    MetricsRegistry reg;
    EXPECT_TRUE(reg.empty());
    reg.counter("bus.passes").add(3);
    reg.counter("bus.passes").add(4); // same object
    reg.gauge("wait.mean").set(1.5);
    reg.histogram("wait.histogram", 0.5, 10).add(0.7);
    EXPECT_FALSE(reg.empty());
    EXPECT_EQ(reg.size(), 3u);
    EXPECT_EQ(reg.counter("bus.passes").value(), 7u);
}

TEST(MetricsRegistry, MergeFromAppliesPrefix)
{
    MetricsRegistry run;
    run.counter("bus.passes").add(5);
    run.gauge("wait.mean").set(2.0);
    run.histogram("wait.histogram", 0.25, 8).add(1.1);

    MetricsRegistry merged;
    merged.mergeFrom(run, "rr1.");
    merged.mergeFrom(run, "fcfs1.");

    EXPECT_EQ(merged.counter("rr1.bus.passes").value(), 5u);
    EXPECT_EQ(merged.counter("fcfs1.bus.passes").value(), 5u);
    EXPECT_EQ(merged.gauge("rr1.wait.mean").count(), 1u);
    EXPECT_EQ(merged.histogram("rr1.wait.histogram", 0.25, 8).count(),
              1u);
    EXPECT_EQ(merged.size(), 6u);
}

TEST(MetricsRegistry, UnprefixedMergeFromAccumulates)
{
    MetricsRegistry run;
    run.counter("bus.passes").add(5);
    run.gauge("wait.mean").set(2.0);

    MetricsRegistry merged;
    merged.mergeFrom(run);
    merged.mergeFrom(run); // accumulate-by-sum is fine without a prefix
    EXPECT_EQ(merged.counter("bus.passes").value(), 10u);
    EXPECT_EQ(merged.gauge("wait.mean").count(), 2u);
}

TEST(MetricsRegistry, CsvIsSortedByNameAcrossKinds)
{
    MetricsRegistry reg;
    reg.gauge("b.gauge").set(1.0);
    reg.counter("c.counter").add(2);
    reg.histogram("a.hist", 1.0, 4).add(0.5);

    std::ostringstream os;
    reg.writeCsv(os);
    const std::string csv = os.str();
    const auto header = csv.find("name,kind,count,sum,min,max,p50,p90,p99");
    const auto a = csv.find("a.hist,histogram,");
    const auto b = csv.find("b.gauge,gauge,");
    const auto c = csv.find("c.counter,counter,2,");
    ASSERT_NE(header, std::string::npos);
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(b, std::string::npos);
    ASSERT_NE(c, std::string::npos);
    EXPECT_LT(header, a);
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
}

TEST(MetricsRegistry, EmptyGaugeExportsWithoutInfinities)
{
    MetricsRegistry reg;
    reg.gauge("never.set");
    std::ostringstream csv;
    reg.writeCsv(csv);
    EXPECT_EQ(csv.str().find("inf"), std::string::npos);

    std::ostringstream json;
    reg.writeJson(json);
    EXPECT_EQ(json.str().find("inf"), std::string::npos);
    EXPECT_NE(json.str().find("\"min\": null"), std::string::npos);
}

TEST(MetricsRegistry, JsonCarriesSparseHistogramBins)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("w", 1.0, 8);
    h.add(0.5); // bin 0
    h.add(3.5); // bin 3
    h.add(3.6); // bin 3

    std::ostringstream os;
    reg.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
    EXPECT_NE(json.find("[0, 1], [3, 2]"), std::string::npos);
}

TEST(MetricsRegistry, WriteFilePicksFormatByExtension)
{
    MetricsRegistry reg;
    reg.counter("x").add(1);

    const std::string dir = ::testing::TempDir();
    const std::string csv_path = dir + "/busarb_metrics_test.csv";
    const std::string json_path = dir + "/busarb_metrics_test.json";
    ASSERT_TRUE(reg.writeFile(csv_path));
    ASSERT_TRUE(reg.writeFile(json_path));

    std::ifstream csv(csv_path);
    std::string first_line;
    ASSERT_TRUE(std::getline(csv, first_line));
    EXPECT_EQ(first_line,
              "name,kind,count,sum,min,max,p50,p90,p99,value");

    std::ifstream json(json_path);
    char ch = 0;
    ASSERT_TRUE(json.get(ch));
    EXPECT_EQ(ch, '{');

    EXPECT_FALSE(reg.writeFile(dir + "/no/such/dir/out.csv"));
}

TEST(MetricsRegistry, GaugeMergeSummaryFoldsPreAggregatedSamples)
{
    Gauge g;
    g.set(2.0);
    g.mergeSummary(3, 12.0, 1.0, 8.0);
    EXPECT_EQ(g.count(), 4u);
    EXPECT_DOUBLE_EQ(g.sum(), 14.0);
    EXPECT_DOUBLE_EQ(g.min(), 1.0);
    EXPECT_DOUBLE_EQ(g.max(), 8.0);
}

TEST(MetricsRegistry, JsonEscapesHostileMetricNames)
{
    MetricsRegistry reg;
    reg.counter("run=\"x\"\\path\n.b\x01" "el").add(1);
    std::ostringstream os;
    reg.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("run=\\\"x\\\"\\\\path\\n.b\\u0001el"),
              std::string::npos)
        << json;
    // The raw control characters must never reach the output.
    EXPECT_EQ(json.find('\x01'), std::string::npos);
}

TEST(MetricsRegistry, CsvQuotesFieldsWithSeparators)
{
    MetricsRegistry reg;
    reg.counter("load=0,5.passes").add(3);
    std::ostringstream os;
    reg.writeCsv(os);
    EXPECT_NE(os.str().find("\"load=0,5.passes\",counter,3"),
              std::string::npos)
        << os.str();
}

TEST(MetricsRegistry, NumbersExportLocaleIndependently)
{
    // A stream whose locale renders 2.5 as "2,5" (comma decimal point,
    // digit grouping) must not corrupt exports; every number goes
    // through std::to_chars, bypassing iostream formatting entirely.
    struct CommaPunct : std::numpunct<char>
    {
        char do_decimal_point() const override { return ','; }
        char do_thousands_sep() const override { return '.'; }
        std::string do_grouping() const override { return "\3"; }
    };
    MetricsRegistry reg;
    reg.gauge("wait.mean").set(2.5);
    reg.counter("bus.passes").add(1234567);
    std::ostringstream csv, json;
    csv.imbue(std::locale(csv.getloc(), new CommaPunct));
    json.imbue(std::locale(json.getloc(), new CommaPunct));
    reg.writeCsv(csv);
    reg.writeJson(json);
    EXPECT_NE(csv.str().find("wait.mean,gauge,1,2.5,2.5,2.5"),
              std::string::npos)
        << csv.str();
    EXPECT_NE(csv.str().find("bus.passes,counter,1234567"),
              std::string::npos)
        << csv.str();
    EXPECT_NE(json.str().find("\"sum\": 2.5"), std::string::npos);
    EXPECT_NE(json.str().find("\"value\": 1234567"), std::string::npos);
    // Shortest round-trip formatting: no trailing zero padding.
    EXPECT_EQ(json.str().find("2.50"), std::string::npos);
}

TEST(MetricsRegistryDeathTest, KindConflictPanics)
{
    MetricsRegistry reg;
    reg.counter("bus.passes").add(1);
    EXPECT_DEATH(reg.gauge("bus.passes"),
                 "metric 'bus.passes' redefined as a gauge");
}

TEST(MetricsRegistryDeathTest, DuplicatePrefixedMergePanics)
{
    MetricsRegistry run;
    run.counter("bus.passes").add(5);

    MetricsRegistry merged;
    merged.mergeFrom(run, "rr1.");
    // Merging the same run twice under one prefix would silently sum
    // two runs into one metric; the diagnostic names the collision.
    EXPECT_DEATH(merged.mergeFrom(run, "rr1."),
                 "metric 'rr1.bus.passes' already exists; duplicate "
                 "merge under prefix 'rr1.'");
}

TEST(MetricsRegistryDeathTest, PrefixedMergeOntoPlainNamePanics)
{
    MetricsRegistry run;
    run.counter("passes").add(5);

    MetricsRegistry merged;
    merged.counter("rr1.passes").add(1);
    EXPECT_DEATH(merged.mergeFrom(run, "rr1."),
                 "metric 'rr1.passes' already exists");
}

} // namespace
} // namespace busarb
