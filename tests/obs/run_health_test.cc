/**
 * @file
 * Tests for the run-health monitor (obs/run_health): combined verdict,
 * health.* metrics export, snapshot JSONL stream, and the CLI summary
 * line.
 */

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/run_health.hh"

namespace busarb {
namespace {

/** Count occurrences of `needle` in `haystack`. */
std::size_t
countOf(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

/** A monitor fed `n` healthy (tight, stationary) batches. */
RunHealthMonitor
healthyMonitor(std::size_t n, bool snapshots = false)
{
    RunHealthConfig config;
    // Loose lag-1: tiny deterministic series can correlate by chance.
    config.convergence.lag1Threshold = 0.95;
    config.label = "test-run";
    config.snapshots = snapshots;
    RunHealthMonitor m(config);
    for (std::size_t i = 0; i < n; ++i) {
        const double jitter = (i % 3 == 0 ? 1.0 : -0.5) * 0.01;
        m.onBatch(100.0 * static_cast<double>(i + 1), 5.0 + jitter,
                  0.8 + jitter / 10.0);
    }
    return m;
}

TEST(RunHealthMonitorTest, CombinedVerdictIsWorstAcrossMeasures)
{
    // Healthy W, alternating utilization: the combined verdict must
    // pick up the utilization monitor's failure.
    RunHealthConfig config;
    config.convergence.lag1Threshold = 0.3;
    config.convergence.relHalfWidthTarget = 100.0;
    RunHealthMonitor m(config);
    for (int i = 0; i < 10; ++i)
        m.onBatch(100.0 * (i + 1), 5.0, i % 2 == 0 ? 0.2 : 0.9);
    EXPECT_EQ(m.waitMonitor().verdict(), ConvergenceVerdict::kConverged);
    EXPECT_EQ(m.utilizationMonitor().verdict(),
              ConvergenceVerdict::kUnderconverged);
    EXPECT_EQ(m.verdict(), ConvergenceVerdict::kUnderconverged);
}

TEST(RunHealthMonitorTest, ReportMirrorsMonitors)
{
    const RunHealthMonitor m = healthyMonitor(10);
    const RunHealthReport r = m.report();
    EXPECT_TRUE(r.enabled);
    EXPECT_EQ(r.verdict, m.verdict());
    EXPECT_EQ(r.batches, 10u);
    EXPECT_DOUBLE_EQ(r.wait.value, m.waitMonitor().estimate().value);
    EXPECT_DOUBLE_EQ(r.waitRelHalfWidth, m.waitMonitor().relHalfWidth());
    EXPECT_DOUBLE_EQ(r.waitLag1, m.waitMonitor().lag1());
    EXPECT_EQ(r.waitMserCut, m.waitMonitor().mserTruncation());
    ASSERT_EQ(r.waitRelHwTrajectory.size(), 10u);
    EXPECT_DOUBLE_EQ(r.utilRelHalfWidth,
                     m.utilizationMonitor().relHalfWidth());
    EXPECT_STREQ(r.verdictLabel(), verdictName(r.verdict));
}

TEST(RunHealthMonitorTest, ExportsHealthMetrics)
{
    const RunHealthMonitor m = healthyMonitor(10);
    MetricsRegistry reg;
    m.exportMetrics(reg);
    EXPECT_EQ(reg.counter("health.batches").value(), 10u);
    EXPECT_DOUBLE_EQ(reg.gauge("health.verdict").sum(),
                     static_cast<double>(static_cast<int>(m.verdict())));
    const char *gauges[] = {
        "health.wait.rel_half_width", "health.wait.lag1",
        "health.wait.mser_cut",       "health.wait.mean",
        "health.wait.half_width",     "health.util.rel_half_width",
        "health.util.lag1",
    };
    for (const char *name : gauges)
        EXPECT_EQ(reg.gauge(name).count(), 1u) << name;
    EXPECT_DOUBLE_EQ(reg.gauge("health.wait.mean").sum(),
                     m.waitMonitor().estimate().value);
}

TEST(RunHealthMonitorTest, SnapshotStreamHasOneLinePerBatch)
{
    const RunHealthMonitor m = healthyMonitor(6, /*snapshots=*/true);
    const std::string &jsonl = m.snapshots();
    EXPECT_EQ(countOf(jsonl, "\n"), 6u);
    EXPECT_EQ(countOf(jsonl, "\"kind\": \"health\""), 6u);
    EXPECT_EQ(countOf(jsonl, "\"run\": \"test-run\""), 6u);
    // Keyed to simulated time: the first batch boundary is t=100.
    EXPECT_NE(jsonl.find("\"t\": 100"), std::string::npos);
    EXPECT_NE(jsonl.find("\"batch\": 1"), std::string::npos);
    EXPECT_NE(jsonl.find("\"verdict\": \""), std::string::npos);
    for (const char *field :
         {"\"wait_mean\": ", "\"wait_half_width\": ",
          "\"rel_half_width\": ", "\"lag1\": ", "\"mser_cut\": ",
          "\"util_rel_half_width\": "})
        EXPECT_EQ(countOf(jsonl, field), 6u) << field;
}

TEST(RunHealthMonitorTest, SnapshotsDisabledByDefault)
{
    const RunHealthMonitor m = healthyMonitor(6, /*snapshots=*/false);
    EXPECT_TRUE(m.snapshots().empty());
}

TEST(RunHealthMonitorTest, SnapshotStreamIsDeterministic)
{
    // Two monitors fed the identical batch series must emit identical
    // bytes — the property check_determinism.sh holds across --jobs.
    const RunHealthMonitor a = healthyMonitor(8, /*snapshots=*/true);
    const RunHealthMonitor b = healthyMonitor(8, /*snapshots=*/true);
    EXPECT_FALSE(a.snapshots().empty());
    EXPECT_EQ(a.snapshots(), b.snapshots());
}

TEST(RunHealthMonitorTest, SummaryLineLeadsWithVerdict)
{
    const RunHealthMonitor m = healthyMonitor(10);
    std::ostringstream os;
    m.printSummary(os);
    const std::string line = os.str();
    EXPECT_EQ(line.rfind("verdict=", 0), 0u) << line;
    for (const char *field : {"batches=10", " W=", " rel_hw=", " lag1=",
                              " mser_cut=", " util_rel_hw="})
        EXPECT_NE(line.find(field), std::string::npos)
            << field << " missing from: " << line;
}

TEST(RunHealthReportTest, DefaultReportIsDisabled)
{
    const RunHealthReport r;
    EXPECT_FALSE(r.enabled);
    EXPECT_EQ(r.verdict, ConvergenceVerdict::kUnderconverged);
    EXPECT_EQ(r.batches, 0u);
}

} // namespace
} // namespace busarb
