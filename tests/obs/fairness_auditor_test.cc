/**
 * @file
 * Fairness-auditor tests: bypass counting against the paper's N-1
 * bound, arrival-order inversions, the starvation watchdog, windowed
 * Jain summaries, deterministic snapshots, and the headline contrast —
 * RR honors its bound while AAP batching violates it.
 */

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "obs/fairness_auditor.hh"
#include "workload/scenario.hh"

namespace busarb {
namespace {

Request
makeRequest(AgentId agent, Tick issued, std::uint64_t seq)
{
    Request req;
    req.agent = agent;
    req.issued = issued;
    req.seq = seq;
    return req;
}

FairnessAuditorConfig
smallConfig(int agents)
{
    FairnessAuditorConfig fc;
    fc.numAgents = agents;
    fc.windowTicks = 100 * kTicksPerUnit;
    return fc;
}

/** Post, grant, and serve one request through live callbacks. */
void
serve(FairnessAuditor &a, AgentId agent, std::uint64_t seq, Tick posted,
      Tick pass_start, Tick granted, Tick served)
{
    a.onRequestPosted(makeRequest(agent, posted, seq));
    a.onPassResolved(granted, pass_start, makeRequest(agent, posted, seq),
                     false);
    a.onTenureStarted(makeRequest(agent, posted, seq), granted);
    a.onTenureEnded(makeRequest(agent, posted, seq), served);
}

TEST(FairnessAuditor, CountsBypassesOfOlderPendingRequests)
{
    FairnessAuditor a(smallConfig(3));
    a.onRequestPosted(makeRequest(1, 0, 1));
    // Agents 2 and 3 are granted while agent 1 keeps waiting; both
    // passes started after agent 1 posted.
    serve(a, 2, 2, 10, 20, 30, 130);
    serve(a, 3, 3, 15, 130, 140, 240);
    // Agent 1 finally wins: bypassed twice, within the N-1 = 2 bound.
    a.onPassResolved(250, 240, makeRequest(1, 0, 1), false);
    a.onTenureStarted(makeRequest(1, 0, 1), 250);
    a.onTenureEnded(makeRequest(1, 0, 1), 350);
    a.finish(400);

    EXPECT_EQ(a.grants(), 3u);
    EXPECT_EQ(a.completions(), 3u);
    EXPECT_EQ(a.maxBypasses(), 2u);
    EXPECT_EQ(a.agentMaxBypasses(1), 2u);
    EXPECT_EQ(a.agentMaxBypasses(2), 0u);
    EXPECT_EQ(a.boundViolations(), 0u);
}

TEST(FairnessAuditor, FlagsGrantsBeyondTheBound)
{
    FairnessAuditorConfig fc = smallConfig(3);
    fc.bypassBound = 1; // tighter than N-1, to force a violation
    FairnessAuditor a(fc);
    a.onRequestPosted(makeRequest(1, 0, 1));
    serve(a, 2, 2, 10, 20, 30, 130);
    serve(a, 3, 3, 15, 130, 140, 240);
    a.onPassResolved(250, 240, makeRequest(1, 0, 1), false);
    a.finish(300);

    EXPECT_EQ(a.bypassBound(), 1);
    EXPECT_EQ(a.maxBypasses(), 2u);
    EXPECT_EQ(a.boundViolations(), 1u);
}

TEST(FairnessAuditor, RequestPostedDuringPassIsNotBypassed)
{
    FairnessAuditor a(smallConfig(2));
    // Agent 2's pass froze its competitors at t=100; agent 1 posts at
    // t=150, mid-pass. That pass could never have admitted agent 1, so
    // the grant at t=200 must not count as a bypass.
    a.onRequestPosted(makeRequest(2, 90, 1));
    a.onRequestPosted(makeRequest(1, 150, 2));
    a.onPassResolved(200, 100, makeRequest(2, 90, 1), false);
    a.finish(300);
    EXPECT_EQ(a.agentMaxBypasses(1), 0u);
    EXPECT_EQ(a.maxBypasses(), 0u);
}

TEST(FairnessAuditor, CountsArrivalOrderInversions)
{
    FairnessAuditor a(smallConfig(3));
    a.onRequestPosted(makeRequest(1, 0, 1));
    a.onRequestPosted(makeRequest(2, 5, 2));
    a.onRequestPosted(makeRequest(3, 10, 3));
    // Granting the newest request skips two older pending ones.
    a.onPassResolved(100, 20, makeRequest(3, 10, 3), false);
    a.finish(200);
    EXPECT_EQ(a.inversions(), 2u);
}

TEST(FairnessAuditor, EmptyAndRetryPassesAreIgnored)
{
    FairnessAuditor a(smallConfig(2));
    a.onRequestPosted(makeRequest(1, 0, 1));
    a.onPassResolved(50, 40, Request{}, false); // idle pass
    a.onPassResolved(90, 80, Request{}, true);  // retry pass
    a.finish(100);
    EXPECT_EQ(a.grants(), 0u);
    EXPECT_EQ(a.agentMaxBypasses(1), 0u);
}

TEST(FairnessAuditor, StarvationWatchdogTracksUnservedRequests)
{
    FairnessAuditor a(smallConfig(2));
    serve(a, 2, 1, 0, 10, 20, 120);
    // Agent 1 posts at t=50 and is never served before the run ends.
    a.onRequestPosted(makeRequest(1, 50, 2));
    a.finish(1050);
    EXPECT_EQ(a.maxStarvationTicks(), 1000);
    EXPECT_EQ(a.agentMaxStarvationTicks(1), 1000);
    // Agent 2 was served after a 20-tick request-to-tenure interval.
    EXPECT_EQ(a.agentMaxStarvationTicks(2), 20);
}

TEST(FairnessAuditor, WaitAndJainAccounting)
{
    FairnessAuditor a(smallConfig(2));
    serve(a, 1, 1, 0, 10, kTicksPerUnit, 2 * kTicksPerUnit);
    serve(a, 2, 2, 0, 2 * kTicksPerUnit, 3 * kTicksPerUnit,
          4 * kTicksPerUnit);
    a.finish(4 * kTicksPerUnit);
    // One completion each; waits of 2 and 4 units give J = 36/40.
    EXPECT_DOUBLE_EQ(a.jainCompletions(), 1.0);
    EXPECT_DOUBLE_EQ(a.jainWaits(), 0.9);
    EXPECT_EQ(a.windows().windowsClosed(), 1u);
}

TEST(FairnessAuditor, ConsumeMatchesLiveCallbacks)
{
    // The offline replay path (busarb_trace audit) must agree with the
    // live BusTracer path event for event.
    FairnessAuditorConfig fc = smallConfig(2);
    fc.snapshotEveryTicks = 100;
    fc.label = "x";
    FairnessAuditor live(fc);
    serve(live, 1, 1, 0, 10, 50, 250);
    live.finish(300);

    FairnessAuditor replay(fc);
    TraceEvent ev;
    ev.kind = TraceEventKind::kRequestPosted;
    ev.tick = 0;
    ev.agent = 1;
    ev.seq = 1;
    replay.consume(ev);
    ev = TraceEvent{};
    ev.kind = TraceEventKind::kPassResolved;
    ev.tick = 50;
    ev.passStart = 10;
    ev.agent = 1;
    ev.seq = 1;
    replay.consume(ev);
    ev = TraceEvent{};
    ev.kind = TraceEventKind::kTenureStarted;
    ev.tick = 50;
    ev.agent = 1;
    ev.seq = 1;
    replay.consume(ev);
    ev.kind = TraceEventKind::kTenureEnded;
    ev.tick = 250;
    replay.consume(ev);
    replay.finish(300);

    EXPECT_EQ(live.grants(), replay.grants());
    EXPECT_EQ(live.completions(), replay.completions());
    EXPECT_EQ(live.maxStarvationTicks(), replay.maxStarvationTicks());
    EXPECT_EQ(live.snapshots(), replay.snapshots());
}

TEST(FairnessAuditor, SnapshotsAreKeyedToSimulatedTime)
{
    FairnessAuditorConfig fc = smallConfig(2);
    fc.snapshotEveryTicks = 100;
    fc.label = "snap";
    FairnessAuditor a(fc);
    a.onRequestPosted(makeRequest(1, 0, 1));
    // An event at exactly tick 100 emits the t=100 boundary first, so
    // the snapshot covers only events before it.
    a.onPassResolved(100, 10, makeRequest(1, 0, 1), false);
    a.finish(250);

    const std::string &text = a.snapshots();
    // Boundaries 100 and 200 fire; 300 lies beyond the end.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
    const std::size_t first_line = text.find('\n');
    EXPECT_NE(text.find("\"run\": \"snap\""), std::string::npos);
    // The t=100 snapshot predates the grant at tick 100.
    EXPECT_NE(text.substr(0, first_line).find("\"grants\": 0"),
              std::string::npos);
    EXPECT_NE(text.substr(first_line).find("\"grants\": 1"),
              std::string::npos);
}

TEST(FairnessAuditor, ExportMetricsEmitsFairnessEntries)
{
    FairnessAuditor a(smallConfig(2));
    serve(a, 1, 1, 0, 10, 50, kTicksPerUnit);
    a.finish(2 * kTicksPerUnit);
    MetricsRegistry m;
    a.exportMetrics(m);
    EXPECT_EQ(m.counter("fairness.grants").value(), 1u);
    EXPECT_EQ(m.counter("fairness.completions").value(), 1u);
    EXPECT_EQ(m.counter("fairness.bound_violations").value(), 0u);
    EXPECT_EQ(m.counter("fairness.agent.1.completions").value(), 1u);
    EXPECT_EQ(m.counter("fairness.agent.2.completions").value(), 0u);
    EXPECT_EQ(m.gauge("fairness.agent.1.wait").count(), 1u);
    EXPECT_DOUBLE_EQ(m.gauge("fairness.jain_completions").mean(), 0.5);
}

TEST(FairnessAuditor, PrintSummaryMentionsKeyMeasures)
{
    FairnessAuditor a(smallConfig(2));
    serve(a, 1, 1, 0, 10, 50, kTicksPerUnit);
    a.finish(2 * kTicksPerUnit);
    std::ostringstream os;
    a.printSummary(os);
    EXPECT_NE(os.str().find("bypass bound 1"), std::string::npos);
    EXPECT_NE(os.str().find("Jain(completions)"), std::string::npos);
}

TEST(FairnessAuditorDeathTest, RejectsEventsAfterFinish)
{
    FairnessAuditor a(smallConfig(2));
    a.finish(100);
    EXPECT_DEATH(a.onRequestPosted(makeRequest(1, 200, 1)),
                 "after finish");
}

// ----------------------------------------------------------------------
// The acceptance contrast: under the same near-saturation workload the
// RR protocol never exceeds its N-1 external bypass bound (the paper's
// Section 3.1 guarantee), while AAP batch arbitration — where a request
// that just misses a batch waits out the whole batch and then takes its
// fixed-priority turn in the next — accumulates more than N-1 bypasses
// and registers bound violations.

ScenarioConfig
contrastScenario()
{
    ScenarioConfig config = equalLoadScenario(8, 7.6);
    config.numBatches = 2;
    config.batchSize = 1000;
    config.warmup = 500;
    config.auditFairness = true;
    return config;
}

TEST(FairnessAuditorIntegration, RrHonorsItsBoundWhileAapViolatesIt)
{
    const ScenarioConfig config = contrastScenario();
    ScenarioResult rr = runScenario(config, protocolFromSpec("rr1"));
    ScenarioResult aap = runScenario(config, protocolFromSpec("aap1"));

    EXPECT_EQ(rr.metrics.counter("fairness.bound_violations").value(),
              0u);
    EXPECT_LE(rr.metrics.gauge("fairness.max_bypasses").max(), 7.0);
    EXPECT_GT(aap.metrics.counter("fairness.bound_violations").value(),
              0u);
    EXPECT_GT(aap.metrics.gauge("fairness.max_bypasses").max(), 7.0);
    // FCFS-style arrival order is exactly what RR's token rotation
    // preserves under saturation and AAP's batches scramble.
    EXPECT_LT(rr.metrics.counter("fairness.inversions").value(),
              aap.metrics.counter("fairness.inversions").value());
}

TEST(FairnessAuditorIntegration, SnapshotsIdenticalAcrossJobCounts)
{
    ScenarioConfig config = contrastScenario();
    config.snapshotEveryUnits = 250.0;
    std::vector<GridJob> grid;
    grid.push_back({config, protocolFromSpec("rr1")});
    grid.push_back({config, protocolFromSpec("aap1")});

    const auto serial = runScenarioGrid(grid, 1);
    const auto parallel = runScenarioGrid(grid, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].fairnessSnapshots.empty());
        EXPECT_EQ(serial[i].fairnessSnapshots,
                  parallel[i].fairnessSnapshots);
    }
}

} // namespace
} // namespace busarb
