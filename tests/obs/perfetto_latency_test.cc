/**
 * @file
 * Exporter tests: the latency breakdown computed from a hand-built
 * trace, and structural checks on the Chrome trace-event JSON and CSV
 * outputs.
 */

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/binary_trace.hh"
#include "obs/latency.hh"
#include "obs/perfetto.hh"
#include "sim/types.hh"

namespace busarb {
namespace {

Request
makeRequest(AgentId agent, Tick issued, std::uint64_t seq)
{
    Request req;
    req.agent = agent;
    req.issued = issued;
    req.seq = seq;
    return req;
}

/**
 * Two served requests on a 2-agent bus.
 *
 * Agent 1 (seq 1) requests at t=0 on an idle bus: its whole 0.5-unit
 * arbitration pass is exposed, then a 1-unit transfer. Agent 2 (seq 2)
 * requests at t=0.1u while that pass runs; its own pass starts when the
 * bus frees at 1.5u, so its exposed share is again the full pass.
 */
TraceChunk
buildTwoRequestChunk()
{
    BinaryTraceWriter writer(2, "synthetic");
    const Tick half = kTicksPerUnit / 2;

    writer.onRequestPosted(makeRequest(1, 0, 1));
    writer.onPassStarted(0);
    writer.onRequestPosted(makeRequest(2, kTicksPerUnit / 10, 2));
    writer.onPassResolved(half, 0, makeRequest(1, 0, 1), false);
    writer.onTenureStarted(makeRequest(1, 0, 1), half);
    writer.onTenureEnded(makeRequest(1, 0, 1), half + kTicksPerUnit);
    const Tick free_at = half + kTicksPerUnit; // 1.5 units
    writer.onPassStarted(free_at);
    writer.onPassResolved(free_at + half, free_at,
                          makeRequest(2, kTicksPerUnit / 10, 2), false);
    writer.onTenureStarted(makeRequest(2, 0, 2), free_at + half);
    writer.onTenureEnded(makeRequest(2, 0, 2),
                         free_at + half + kTicksPerUnit);

    const auto chunks = readTraceChunks(writer.finish());
    return chunks.front();
}

TEST(Latency, BreaksWaitIntoComponents)
{
    const TraceChunk chunk = buildTwoRequestChunk();
    const auto latencies = computeRequestLatencies(chunk);
    ASSERT_EQ(latencies.size(), 2u);
    const Tick half = kTicksPerUnit / 2;

    // First request: no queueing, fully exposed pass, 1-unit service.
    EXPECT_EQ(latencies[0].agent, 1);
    EXPECT_EQ(latencies[0].queue, 0);
    EXPECT_EQ(latencies[0].exposedArb, half);
    EXPECT_EQ(latencies[0].service, kTicksPerUnit);
    EXPECT_EQ(latencies[0].wait(), half + kTicksPerUnit);

    // Second request: issued at 0.1u, granted at 2.0u after a fully
    // exposed 0.5u pass; the remaining 1.4u was queueing.
    EXPECT_EQ(latencies[1].agent, 2);
    EXPECT_EQ(latencies[1].exposedArb, half);
    EXPECT_EQ(latencies[1].queue,
              2 * kTicksPerUnit - kTicksPerUnit / 10 - half);
    EXPECT_EQ(latencies[1].service, kTicksPerUnit);
}

TEST(Latency, SummaryAggregatesInUnits)
{
    const TraceChunk chunk = buildTwoRequestChunk();
    const LatencySummary s =
        summarizeLatencies(computeRequestLatencies(chunk));
    EXPECT_EQ(s.wait.count(), 2u);
    EXPECT_DOUBLE_EQ(s.service.mean(), 1.0);
    EXPECT_DOUBLE_EQ(s.exposedArb.mean(), 0.5);
    EXPECT_DOUBLE_EQ(s.wait.max(), 0.5 + 1.4 + 1.0);
}

TEST(Latency, InFlightRequestsAreOmitted)
{
    BinaryTraceWriter writer(1, "p");
    writer.onRequestPosted(makeRequest(1, 0, 1));
    writer.onPassStarted(0);
    writer.onPassResolved(100, 0, makeRequest(1, 0, 1), false);
    writer.onTenureStarted(makeRequest(1, 0, 1), 100);
    // Trace ends before the tenure completes.
    const auto chunks = readTraceChunks(writer.finish());
    EXPECT_TRUE(computeRequestLatencies(chunks.front()).empty());
}

TEST(Latency, BreakdownTableAndCsvRender)
{
    const std::vector<TraceChunk> chunks = {buildTwoRequestChunk()};

    std::ostringstream table;
    printLatencyBreakdown(chunks, table);
    EXPECT_NE(table.str().find("synthetic"), std::string::npos);
    EXPECT_NE(table.str().find("exp. arb"), std::string::npos);

    std::ostringstream csv;
    writeLatencyCsv(chunks, csv);
    const std::string text = csv.str();
    EXPECT_NE(
        text.find(
            "chunk,protocol,agent,seq,issued,queue,exposed_arb,service,"
            "wait"),
        std::string::npos);
    // Header plus one row per served request.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(Perfetto, EmitsMetadataEventsAndCounters)
{
    BinaryTraceWriter writer(2, "proto \"quoted\"");
    const std::uint64_t id = writer.defineCounter("bus.ops");
    writer.onRequestPosted(makeRequest(1, 100, 1));
    writer.onPassStarted(100);
    writer.onPassResolved(200, 100, makeRequest(1, 100, 1), false);
    writer.onTenureStarted(makeRequest(1, 100, 1), 200);
    writer.counterUpdate(id, 300, 17);
    writer.onTenureEnded(makeRequest(1, 100, 1), 400);
    const auto chunks = readTraceChunks(writer.finish());

    std::ostringstream os;
    writePerfettoJson(chunks, os);
    const std::string json = os.str();

    EXPECT_EQ(json.find("{\"traceEvents\": ["), 0u);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    // Process/track metadata.
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("proto \\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("\"arbiter\""), std::string::npos);
    EXPECT_NE(json.find("\"agent 2\""), std::string::npos);
    // One instant, one pass slice, one tenure slice, one counter.
    EXPECT_NE(json.find("\"name\": \"request\", \"ph\": \"i\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"pass\", \"ph\": \"X\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"tenure\", \"ph\": \"X\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(json.find("\"wait_ticks\": 300"), std::string::npos);
    // Balanced braces is a cheap structural sanity check; the ctest
    // shell script validates with a real JSON parser.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(Perfetto, EventsCsvHasOneRowPerEvent)
{
    const TraceChunk chunk = buildTwoRequestChunk();
    std::ostringstream os;
    writeEventsCsv({chunk}, os);
    const std::string text = os.str();
    EXPECT_EQ(text.find("chunk,protocol,tick,units,kind,agent,seq,"
                        "priority,retry,pass_start,counter,value"),
              0u);
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
              1 + static_cast<long>(chunk.events.size()));
}

} // namespace
} // namespace busarb
