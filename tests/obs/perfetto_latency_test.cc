/**
 * @file
 * Exporter tests: the latency breakdown computed from a hand-built
 * trace, and structural checks on the Chrome trace-event JSON and CSV
 * outputs.
 */

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/binary_trace.hh"
#include "obs/latency.hh"
#include "obs/perfetto.hh"
#include "sim/types.hh"

namespace busarb {
namespace {

Request
makeRequest(AgentId agent, Tick issued, std::uint64_t seq)
{
    Request req;
    req.agent = agent;
    req.issued = issued;
    req.seq = seq;
    return req;
}

/**
 * Two served requests on a 2-agent bus.
 *
 * Agent 1 (seq 1) requests at t=0 on an idle bus: its whole 0.5-unit
 * arbitration pass is exposed, then a 1-unit transfer. Agent 2 (seq 2)
 * requests at t=0.1u while that pass runs; its own pass starts when the
 * bus frees at 1.5u, so its exposed share is again the full pass.
 */
TraceChunk
buildTwoRequestChunk()
{
    BinaryTraceWriter writer(2, "synthetic");
    const Tick half = kTicksPerUnit / 2;

    writer.onRequestPosted(makeRequest(1, 0, 1));
    writer.onPassStarted(0);
    writer.onRequestPosted(makeRequest(2, kTicksPerUnit / 10, 2));
    writer.onPassResolved(half, 0, makeRequest(1, 0, 1), false);
    writer.onTenureStarted(makeRequest(1, 0, 1), half);
    writer.onTenureEnded(makeRequest(1, 0, 1), half + kTicksPerUnit);
    const Tick free_at = half + kTicksPerUnit; // 1.5 units
    writer.onPassStarted(free_at);
    writer.onPassResolved(free_at + half, free_at,
                          makeRequest(2, kTicksPerUnit / 10, 2), false);
    writer.onTenureStarted(makeRequest(2, 0, 2), free_at + half);
    writer.onTenureEnded(makeRequest(2, 0, 2),
                         free_at + half + kTicksPerUnit);

    const auto chunks = readTraceChunks(writer.finish());
    return chunks.front();
}

TEST(Latency, BreaksWaitIntoComponents)
{
    const TraceChunk chunk = buildTwoRequestChunk();
    const auto latencies = computeRequestLatencies(chunk);
    ASSERT_EQ(latencies.size(), 2u);
    const Tick half = kTicksPerUnit / 2;

    // First request: no queueing, fully exposed pass, 1-unit service.
    EXPECT_EQ(latencies[0].agent, 1);
    EXPECT_EQ(latencies[0].queue, 0);
    EXPECT_EQ(latencies[0].exposedArb, half);
    EXPECT_EQ(latencies[0].service, kTicksPerUnit);
    EXPECT_EQ(latencies[0].wait(), half + kTicksPerUnit);

    // Second request: issued at 0.1u, granted at 2.0u after a fully
    // exposed 0.5u pass; the remaining 1.4u was queueing.
    EXPECT_EQ(latencies[1].agent, 2);
    EXPECT_EQ(latencies[1].exposedArb, half);
    EXPECT_EQ(latencies[1].queue,
              2 * kTicksPerUnit - kTicksPerUnit / 10 - half);
    EXPECT_EQ(latencies[1].service, kTicksPerUnit);
}

TEST(Latency, SummaryAggregatesInUnits)
{
    const TraceChunk chunk = buildTwoRequestChunk();
    const LatencySummary s =
        summarizeLatencies(computeRequestLatencies(chunk));
    EXPECT_EQ(s.wait.count(), 2u);
    EXPECT_DOUBLE_EQ(s.service.mean(), 1.0);
    EXPECT_DOUBLE_EQ(s.exposedArb.mean(), 0.5);
    EXPECT_DOUBLE_EQ(s.wait.max(), 0.5 + 1.4 + 1.0);
    // Histogram-backed quantiles: monotone in p and within one bin
    // (0.25 units) of the observed maximum at the top.
    EXPECT_LE(s.waitQuantile(0.50), s.waitQuantile(0.95));
    EXPECT_LE(s.waitQuantile(0.95), s.waitQuantile(0.99));
    EXPECT_NEAR(s.waitQuantile(0.99), s.wait.max(), 0.25);
}

TEST(Latency, InFlightRequestsAreOmitted)
{
    BinaryTraceWriter writer(1, "p");
    writer.onRequestPosted(makeRequest(1, 0, 1));
    writer.onPassStarted(0);
    writer.onPassResolved(100, 0, makeRequest(1, 0, 1), false);
    writer.onTenureStarted(makeRequest(1, 0, 1), 100);
    // Trace ends before the tenure completes.
    const auto chunks = readTraceChunks(writer.finish());
    EXPECT_TRUE(computeRequestLatencies(chunks.front()).empty());
}

TEST(Latency, BreakdownTableAndCsvRender)
{
    const std::vector<TraceChunk> chunks = {buildTwoRequestChunk()};

    std::ostringstream table;
    printLatencyBreakdown(chunks, table);
    EXPECT_NE(table.str().find("synthetic"), std::string::npos);
    EXPECT_NE(table.str().find("exp. arb"), std::string::npos);
    EXPECT_NE(table.str().find("W p50"), std::string::npos);
    EXPECT_NE(table.str().find("W p95"), std::string::npos);
    EXPECT_NE(table.str().find("W p99"), std::string::npos);

    std::ostringstream csv;
    writeLatencyCsv(chunks, csv);
    const std::string text = csv.str();
    EXPECT_NE(
        text.find(
            "chunk,protocol,agent,seq,issued,queue,exposed_arb,service,"
            "wait"),
        std::string::npos);
    // Header plus one row per served request.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(Perfetto, EmitsMetadataEventsAndCounters)
{
    BinaryTraceWriter writer(2, "proto \"quoted\"");
    const std::uint64_t id = writer.defineCounter("bus.ops");
    writer.onRequestPosted(makeRequest(1, 100, 1));
    writer.onPassStarted(100);
    writer.onPassResolved(200, 100, makeRequest(1, 100, 1), false);
    writer.onTenureStarted(makeRequest(1, 100, 1), 200);
    writer.counterUpdate(id, 300, 17);
    writer.onTenureEnded(makeRequest(1, 100, 1), 400);
    const auto chunks = readTraceChunks(writer.finish());

    std::ostringstream os;
    writePerfettoJson(chunks, os);
    const std::string json = os.str();

    EXPECT_EQ(json.find("{\"traceEvents\": ["), 0u);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    // Process/track metadata.
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("proto \\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("\"arbiter\""), std::string::npos);
    EXPECT_NE(json.find("\"agent 2\""), std::string::npos);
    // One instant, one pass slice, one tenure slice, one counter.
    EXPECT_NE(json.find("\"name\": \"request\", \"ph\": \"i\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"pass\", \"ph\": \"X\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"tenure\", \"ph\": \"X\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(json.find("\"wait_ticks\": 300"), std::string::npos);
    // Balanced braces is a cheap structural sanity check; the ctest
    // shell script validates with a real JSON parser.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(Perfetto, PairsTenureEventsIntoDurationSlices)
{
    const TraceChunk chunk = buildTwoRequestChunk();
    std::ostringstream os;
    writePerfettoJson({chunk}, os);
    const std::string json = os.str();
    const Tick half = kTicksPerUnit / 2;

    // Each tenure_start/tenure_end pair collapses into one complete
    // slice whose ts is the start tick and dur the tenure length; the
    // request-to-completion wait rides along in args.
    std::ostringstream slice1;
    slice1 << "{\"name\": \"tenure\", \"ph\": \"X\", \"pid\": 1, "
              "\"tid\": 1, \"ts\": " << half << ", \"dur\": "
           << kTicksPerUnit << ", \"args\": {\"seq\": 1, "
              "\"wait_ticks\": " << half + kTicksPerUnit << "}}";
    EXPECT_NE(json.find(slice1.str()), std::string::npos) << json;
    // Agent 2's tenure lands on its own track (tid 2).
    std::ostringstream slice2;
    slice2 << "{\"name\": \"tenure\", \"ph\": \"X\", \"pid\": 1, "
              "\"tid\": 2, \"ts\": " << 2 * kTicksPerUnit;
    EXPECT_NE(json.find(slice2.str()), std::string::npos) << json;
    // Both pass slices carry their winner and full interval.
    std::ostringstream pass;
    pass << "{\"name\": \"pass\", \"ph\": \"X\", \"pid\": 1, "
            "\"tid\": 0, \"ts\": 0, \"dur\": " << half
         << ", \"args\": {\"winner\": 1, \"seq\": 1}}";
    EXPECT_NE(json.find(pass.str()), std::string::npos) << json;
}

TEST(Perfetto, MapsChunksToPidsAndAgentsToTids)
{
    // Two runs in one trace file: each chunk becomes its own Perfetto
    // process (pid 1, 2, ...) with the arbiter on tid 0 and agent k on
    // tid k, so multi-run traces never interleave tracks.
    BinaryTraceWriter first(2, "alpha");
    first.onRequestPosted(makeRequest(1, 0, 1));
    BinaryTraceWriter second(3, "beta");
    second.onRequestPosted(makeRequest(3, 0, 1));
    std::vector<std::uint8_t> bytes = first.finish();
    const auto more = second.finish();
    bytes.insert(bytes.end(), more.begin(), more.end());
    const auto chunks = readTraceChunks(bytes);
    ASSERT_EQ(chunks.size(), 2u);

    std::ostringstream os;
    writePerfettoJson(chunks, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"pid\": 1, \"args\": {\"name\": \"alpha\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"pid\": 2, \"args\": {\"name\": \"beta\"}"),
              std::string::npos);
    // Thread metadata: arbiter tid 0 in both processes, agent tracks
    // numbered per chunk (chunk 2 has three agents).
    EXPECT_NE(json.find("\"pid\": 2, \"tid\": 0, \"args\": {\"name\": "
                        "\"arbiter\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"pid\": 2, \"tid\": 3, \"args\": {\"name\": "
                        "\"agent 3\"}"),
              std::string::npos);
    EXPECT_EQ(json.find("\"pid\": 1, \"tid\": 3"), std::string::npos);
    // The events themselves land in their owning process: chunk 2's
    // request instant is on pid 2, tid 3.
    EXPECT_NE(json.find("\"name\": \"request\", \"ph\": \"i\", \"s\": "
                        "\"t\", \"pid\": 2, \"tid\": 3"),
              std::string::npos);
}

TEST(Perfetto, EventsCsvHasOneRowPerEvent)
{
    const TraceChunk chunk = buildTwoRequestChunk();
    std::ostringstream os;
    writeEventsCsv({chunk}, os);
    const std::string text = os.str();
    EXPECT_EQ(text.find("chunk,protocol,tick,units,kind,agent,seq,"
                        "priority,retry,pass_start,counter,value"),
              0u);
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
              1 + static_cast<long>(chunk.events.size()));
}

} // namespace
} // namespace busarb
