/**
 * @file
 * Tests for the simulator self-profiler (obs/profiler): phase timers,
 * simulation-derived counters from the EventQueue probes, the
 * deterministic profile.* metrics export, and the stderr report shape.
 *
 * The suite passes in both build flavours: assertions on probe data
 * are conditional on BUSARB_PROFILING_ENABLED so -DBUSARB_PROFILING=OFF
 * builds still verify that the API stays callable and the report stays
 * all-zero.
 */

#include <cstddef>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/profiler.hh"
#include "sim/event_queue.hh"
#include "sim/profiling.hh"

namespace busarb {
namespace {

TEST(RunPhaseTest, NamesAreStable)
{
    EXPECT_STREQ(runPhaseName(RunPhase::kWarmup), "warmup");
    EXPECT_STREQ(runPhaseName(RunPhase::kMeasure), "measure");
    EXPECT_STREQ(runPhaseName(RunPhase::kDrain), "drain");
}

TEST(ProfileReportTest, TotalsAndRates)
{
    ProfileReport r;
    EXPECT_DOUBLE_EQ(r.totalSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(r.eventsPerSecond(), 0.0);
    r.phaseSeconds[0] = 1.0;
    r.phaseSeconds[1] = 2.5;
    r.phaseSeconds[2] = 0.5;
    EXPECT_DOUBLE_EQ(r.totalSeconds(), 4.0);
    // Zero events stays unmeasurable even with elapsed time.
    EXPECT_DOUBLE_EQ(r.eventsPerSecond(), 0.0);
    r.eventsExecuted = 8000;
    EXPECT_DOUBLE_EQ(r.eventsPerSecond(), 2000.0);
}

TEST(ProfileReportTest, ExportsDeterministicSubsetOnly)
{
    ProfileReport r;
    r.enabled = true;
    r.phaseSeconds[1] = 3.0; // wall-clock: must NOT be exported
    r.eventsExecuted = 1234;
    r.maxQueueDepth = 17;
    r.arbitrationPasses = 55;
    r.retryPasses = 5;
    r.completions = 400;
    r.queueDepthLog2[0] = 3;
    r.queueDepthLog2[4] = 90;
    r.queueDepthLog2[12] = 1;

    MetricsRegistry m;
    r.exportMetrics(m);
    EXPECT_EQ(m.counter("profile.events_executed").value(), 1234u);
    EXPECT_EQ(m.counter("profile.queue.max_depth").value(), 17u);
    EXPECT_EQ(m.counter("profile.arb.passes").value(), 55u);
    EXPECT_EQ(m.counter("profile.arb.retry_passes").value(), 5u);
    EXPECT_EQ(m.counter("profile.completions").value(), 400u);
    // Sparse, zero-padded histogram names keep lexicographic order
    // equal to numeric order.
    EXPECT_EQ(m.counter("profile.queue.depth_log2.00").value(), 3u);
    EXPECT_EQ(m.counter("profile.queue.depth_log2.04").value(), 90u);
    EXPECT_EQ(m.counter("profile.queue.depth_log2.12").value(), 1u);
    // 5 scalars + 3 non-empty buckets; nothing wall-clock-derived.
    EXPECT_EQ(m.size(), 8u);
    std::ostringstream csv;
    m.writeCsv(csv);
    EXPECT_EQ(csv.str().find("seconds"), std::string::npos);
}

TEST(ProfilerTest, FinishCapturesQueueCounters)
{
    EventQueue queue;
    // Build up depth 8, then drain.
    for (int i = 0; i < 8; ++i)
        queue.schedule(i + 1, [] {});
    queue.run();
    Profiler prof;
    prof.finish(queue, /*passes=*/12, /*retries=*/3, /*completions=*/8);
    const ProfileReport &r = prof.report();
    EXPECT_EQ(r.eventsExecuted, 8u);
    EXPECT_EQ(r.arbitrationPasses, 12u);
    EXPECT_EQ(r.retryPasses, 3u);
    EXPECT_EQ(r.completions, 8u);
#if BUSARB_PROFILING_ENABLED
    EXPECT_TRUE(r.enabled);
    EXPECT_EQ(r.maxQueueDepth, 8u);
    // 8 schedule() calls at depths 1..8: log2 buckets 0,1,1,2,2,2,2,3.
    EXPECT_EQ(r.queueDepthLog2[0], 1u);
    EXPECT_EQ(r.queueDepthLog2[1], 2u);
    EXPECT_EQ(r.queueDepthLog2[2], 4u);
    EXPECT_EQ(r.queueDepthLog2[3], 1u);
#else
    EXPECT_FALSE(r.enabled);
    EXPECT_EQ(r.maxQueueDepth, 0u);
    for (std::uint64_t b : r.queueDepthLog2)
        EXPECT_EQ(b, 0u);
#endif
}

TEST(ProfilerTest, PhaseTimersAccumulate)
{
    Profiler prof;
    {
        ProfilePhaseTimer t(&prof, RunPhase::kMeasure);
    }
    {
        ProfilePhaseTimer t(&prof, RunPhase::kMeasure);
    }
    const ProfileReport &r = prof.report();
    const double measured =
        r.phaseSeconds[static_cast<std::size_t>(RunPhase::kMeasure)];
#if BUSARB_PROFILING_ENABLED
    EXPECT_GE(measured, 0.0);
#else
    EXPECT_DOUBLE_EQ(measured, 0.0);
#endif
    EXPECT_DOUBLE_EQ(
        r.phaseSeconds[static_cast<std::size_t>(RunPhase::kWarmup)], 0.0);
}

TEST(ProfilerTest, NullProfilerTimerIsSafe)
{
    // runScenario passes nullptr when --profile is off; the timer must
    // be a no-op, not a crash.
    ProfilePhaseTimer t(nullptr, RunPhase::kDrain);
}

TEST(ProfileReportTest, PrintShapes)
{
    ProfileReport r;
    r.enabled = false;
    std::ostringstream off;
    r.print("rr1", off);
    EXPECT_NE(off.str().find("profile[rr1]:"), std::string::npos);
    EXPECT_NE(off.str().find("compiled out"), std::string::npos);

    r.enabled = true;
    r.eventsExecuted = 100;
    r.phaseSeconds[1] = 0.5;
    r.queueDepthLog2[2] = 40;
    std::ostringstream on;
    r.print("rr1", on);
    const std::string text = on.str();
    for (const char *piece :
         {"events=100", "events/s=200", "warmup=", "measure=", "drain=",
          "total=", "[4..]=40"})
        EXPECT_NE(text.find(piece), std::string::npos)
            << piece << " missing from: " << text;
}

} // namespace
} // namespace busarb
