/**
 * @file
 * EtaEstimator tests: EWMA math, priming, burst handling, and the
 * regression/no-progress guards.
 */

#include <gtest/gtest.h>

#include "obs/sweep_progress.hh"

namespace busarb {
namespace {

TEST(EtaEstimator, UnprimedReportsZeros)
{
    EtaEstimator eta(0.25);
    eta.start(100.0);
    EXPECT_FALSE(eta.primed());
    EXPECT_EQ(eta.secondsPerCell(), 0.0);
    EXPECT_EQ(eta.cellsPerSecond(), 0.0);
    EXPECT_EQ(eta.etaSeconds(50), 0.0);
}

TEST(EtaEstimator, FirstCompletionSeedsTheAverage)
{
    EtaEstimator eta(0.25);
    eta.start(10.0);
    eta.onProgress(12.0, 1); // 2 s for the first cell
    EXPECT_TRUE(eta.primed());
    EXPECT_DOUBLE_EQ(eta.secondsPerCell(), 2.0);
    EXPECT_DOUBLE_EQ(eta.cellsPerSecond(), 0.5);
    EXPECT_DOUBLE_EQ(eta.etaSeconds(10), 20.0);
}

TEST(EtaEstimator, EwmaTracksTheRecentRate)
{
    EtaEstimator eta(0.25);
    eta.start(0.0);
    eta.onProgress(2.0, 1); // ewma = 2
    eta.onProgress(6.0, 2); // ewma = 0.25*4 + 0.75*2 = 2.5
    EXPECT_DOUBLE_EQ(eta.secondsPerCell(), 2.5);
    eta.onProgress(7.0, 3); // ewma = 0.25*1 + 0.75*2.5 = 2.125
    EXPECT_DOUBLE_EQ(eta.secondsPerCell(), 2.125);
    EXPECT_DOUBLE_EQ(eta.etaSeconds(4), 8.5);
}

TEST(EtaEstimator, BurstSpreadsIntervalAndWeightsPerCell)
{
    EtaEstimator eta(0.5);
    eta.start(0.0);
    eta.onProgress(4.0, 1); // ewma = 4
    // Two cells complete in the next 2 s: per-cell 1 s, applied twice.
    // ewma = 0.5*1 + 0.5*(0.5*1 + 0.5*4) = 1.75
    eta.onProgress(6.0, 3);
    EXPECT_DOUBLE_EQ(eta.secondsPerCell(), 1.75);
}

TEST(EtaEstimator, IgnoresEventsWithoutNewCompletions)
{
    EtaEstimator eta(0.25);
    eta.start(0.0);
    eta.onProgress(2.0, 1);
    const double before = eta.secondsPerCell();
    eta.onProgress(50.0, 1); // idle poll: no new completions
    eta.onProgress(60.0, 0); // stale count must not underflow
    EXPECT_DOUBLE_EQ(eta.secondsPerCell(), before);
    // Idle polls do not advance the reference time: the next interval
    // is measured from the last completion.
    eta.onProgress(51.0, 2);
    EXPECT_DOUBLE_EQ(eta.secondsPerCell(),
                     0.25 * 49.0 + 0.75 * before);
}

TEST(EtaEstimator, ClampsClockRegressionToZero)
{
    EtaEstimator eta(0.25);
    eta.start(10.0);
    eta.onProgress(12.0, 1);
    eta.onProgress(11.0, 2); // clock went backwards: treat dt as 0
    EXPECT_DOUBLE_EQ(eta.secondsPerCell(), 0.75 * 2.0);
    EXPECT_GE(eta.etaSeconds(3), 0.0);
}

TEST(EtaEstimator, AlphaOneTracksInstantaneously)
{
    EtaEstimator eta(1.0);
    eta.start(0.0);
    eta.onProgress(5.0, 1);
    eta.onProgress(6.0, 2);
    EXPECT_DOUBLE_EQ(eta.secondsPerCell(), 1.0);
}

TEST(EtaEstimator, StartResetsState)
{
    EtaEstimator eta(0.25);
    eta.start(0.0);
    eta.onProgress(2.0, 1);
    ASSERT_TRUE(eta.primed());
    eta.start(100.0);
    EXPECT_FALSE(eta.primed());
    eta.onProgress(103.0, 1);
    EXPECT_DOUBLE_EQ(eta.secondsPerCell(), 3.0);
}

} // namespace
} // namespace busarb
