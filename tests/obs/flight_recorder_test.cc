/**
 * @file
 * Flight-recorder tests: ring-buffer retention, snapshot ordering, and
 * the panic-hook dump that turns a contract violation into a readable
 * bus timeline.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/flight_recorder.hh"
#include "sim/logging.hh"

namespace busarb {
namespace {

Request
makeRequest(AgentId agent, Tick issued, std::uint64_t seq)
{
    Request req;
    req.agent = agent;
    req.issued = issued;
    req.seq = seq;
    return req;
}

TEST(FlightRecorder, RetainsAllEventsBelowCapacity)
{
    FlightRecorder rec(8);
    rec.onPassStarted(100);
    rec.onPassStarted(200);
    EXPECT_EQ(rec.size(), 2u);
    EXPECT_EQ(rec.totalEvents(), 2u);
    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].tick, 100);
    EXPECT_EQ(events[1].tick, 200);
}

TEST(FlightRecorder, EvictsOldestBeyondCapacity)
{
    FlightRecorder rec(3);
    for (Tick t = 1; t <= 10; ++t)
        rec.onPassStarted(t * 100);
    EXPECT_EQ(rec.size(), 3u);
    EXPECT_EQ(rec.totalEvents(), 10u);
    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 3u);
    // Oldest first: ticks 800, 900, 1000 survive.
    EXPECT_EQ(events[0].tick, 800);
    EXPECT_EQ(events[1].tick, 900);
    EXPECT_EQ(events[2].tick, 1000);
}

TEST(FlightRecorder, CapacityOneKeepsOnlyTheLastEvent)
{
    FlightRecorder rec(1);
    rec.onRequestPosted(makeRequest(1, 100, 1));
    rec.onTenureEnded(makeRequest(2, 100, 2), 900);
    ASSERT_EQ(rec.size(), 1u);
    EXPECT_EQ(rec.snapshot()[0].kind, TraceEventKind::kTenureEnded);
    EXPECT_EQ(rec.snapshot()[0].agent, 2);
}

TEST(FlightRecorder, RecordsBusCallbackFields)
{
    FlightRecorder rec(8);
    rec.onRequestPosted(makeRequest(3, 500, 11));
    rec.onPassResolved(1500, 1000, makeRequest(3, 500, 11), false);
    rec.onPassResolved(2500, 2000, Request{}, true);
    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, TraceEventKind::kRequestPosted);
    EXPECT_EQ(events[0].agent, 3);
    EXPECT_EQ(events[0].seq, 11u);
    EXPECT_EQ(events[1].kind, TraceEventKind::kPassResolved);
    EXPECT_EQ(events[1].passStart, 1000);
    EXPECT_EQ(events[1].agent, 3);
    EXPECT_TRUE(events[2].retry);
    EXPECT_EQ(events[2].agent, kNoAgent);
}

TEST(FlightRecorder, DumpPrintsTailWithTotals)
{
    FlightRecorder rec(2);
    rec.onPassStarted(100);
    rec.onPassStarted(200);
    rec.onTenureStarted(makeRequest(4, 100, 9), 300);
    std::ostringstream os;
    rec.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("flight recorder: last 2 of 3 bus events"),
              std::string::npos);
    EXPECT_NE(text.find("tenure_start agent=4 seq=9"),
              std::string::npos);
    // Only one of the two pass_start events survived the eviction.
    std::size_t pass_starts = 0;
    for (std::size_t at = text.find("pass_start");
         at != std::string::npos; at = text.find("pass_start", at + 1))
        ++pass_starts;
    EXPECT_EQ(pass_starts, 1u);
}

TEST(FlightRecorder, DumpAfterWraparoundIsChronological)
{
    // Fill a 3-slot ring past capacity twice over; the dump must print
    // exactly the surviving tail, oldest first, with no seam at the
    // ring's physical wrap point.
    FlightRecorder rec(3);
    for (std::uint64_t seq = 1; seq <= 8; ++seq)
        rec.onRequestPosted(makeRequest(1, static_cast<Tick>(seq * 10),
                                        seq));
    std::ostringstream os;
    rec.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("last 3 of 8 bus events"), std::string::npos);
    const std::size_t s6 = text.find("seq=6");
    const std::size_t s7 = text.find("seq=7");
    const std::size_t s8 = text.find("seq=8");
    ASSERT_NE(s6, std::string::npos);
    ASSERT_NE(s7, std::string::npos);
    ASSERT_NE(s8, std::string::npos);
    EXPECT_LT(s6, s7);
    EXPECT_LT(s7, s8);
    // The evicted head must be gone entirely.
    EXPECT_EQ(text.find("seq=5"), std::string::npos);
}

TEST(FlightRecorderDeathTest, PanicDumpTailOrderingAfterWraparound)
{
    // The panic-hook dump goes through the same snapshot path; verify
    // the tail it prints is in event order even after the ring wrapped.
    FlightRecorder rec(2);
    rec.onPassStarted(100);
    rec.onRequestPosted(makeRequest(1, 200, 1));
    rec.onTenureStarted(makeRequest(1, 200, 1), 300);
    ScopedFlightRecorderDump guard(rec);
    EXPECT_DEATH(BUSARB_ASSERT(false, "wrapped"),
                 "wrapped(.|\n)*last 2 of 3 bus events"
                 "(.|\n)*request agent=1 seq=1"
                 "(.|\n)*tenure_start agent=1 seq=1");
}

TEST(FlightRecorderDeathTest, ZeroCapacityPanics)
{
    EXPECT_DEATH(FlightRecorder rec(0), "capacity >= 1");
}

TEST(FlightRecorderDeathTest, PanicDumpsRecorderTail)
{
    // Satellite contract: a BUSARB_ASSERT failure (e.g. a
    // ProtocolChecker contract violation) while a
    // ScopedFlightRecorderDump guard is alive prints the recorder tail
    // to stderr before aborting.
    FlightRecorder rec(4);
    rec.onRequestPosted(makeRequest(2, 1000, 5));
    rec.onPassStarted(1000);
    ScopedFlightRecorderDump guard(rec);
    EXPECT_DEATH(BUSARB_ASSERT(false, "checker tripped"),
                 "checker tripped(.|\n)*flight recorder: last 2 of 2 "
                 "bus events(.|\n)*request agent=2 seq=5");
}

TEST(FlightRecorderDeathTest, HookUninstalledAfterGuardScope)
{
    FlightRecorder rec(4);
    rec.onPassStarted(100);
    {
        ScopedFlightRecorderDump guard(rec);
    }
    // Guard gone: the panic message appears without any recorder dump.
    EXPECT_DEATH(
        {
            BUSARB_PANIC("plain panic");
        },
        "plain panic");
}

} // namespace
} // namespace busarb
