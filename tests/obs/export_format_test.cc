/**
 * @file
 * Locale-independent export formatting tests.
 */

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/export_format.hh"

namespace busarb {
namespace {

TEST(ExportFormat, FormatDoubleShortestRoundTrip)
{
    EXPECT_EQ(formatDouble(0.0), "0");
    EXPECT_EQ(formatDouble(2.5), "2.5");
    EXPECT_EQ(formatDouble(-0.1), "-0.1");
    EXPECT_EQ(formatDouble(1e300), "1e+300");
    // Round-trip: parsing the text recovers the exact value.
    const double v = 0.30000000000000004;
    EXPECT_EQ(std::stod(formatDouble(v)), v);
}

TEST(ExportFormat, FormatDoubleNonFinite)
{
    EXPECT_EQ(formatDouble(std::numeric_limits<double>::infinity()),
              "inf");
    EXPECT_EQ(formatDouble(-std::numeric_limits<double>::infinity()),
              "-inf");
    EXPECT_EQ(formatDouble(std::nan("")), "nan");
}

TEST(ExportFormat, FormatIntegers)
{
    EXPECT_EQ(formatUint(0), "0");
    EXPECT_EQ(formatUint(18446744073709551615ull),
              "18446744073709551615");
    EXPECT_EQ(formatInt(-42), "-42");
}

TEST(ExportFormat, JsonStringEscapesEverythingHostile)
{
    std::ostringstream os;
    writeJsonString(os, "a\"b\\c\nd\te\x01"
                        "f");
    EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
}

TEST(ExportFormat, JsonNumberUsesNullForNonFinite)
{
    std::ostringstream os;
    writeJsonNumber(os, 1.5);
    os << " ";
    writeJsonNumber(os, std::numeric_limits<double>::infinity());
    EXPECT_EQ(os.str(), "1.5 null");
}

TEST(ExportFormat, CsvFieldQuotesOnlyWhenNeeded)
{
    std::ostringstream plain;
    writeCsvField(plain, "bus.passes");
    EXPECT_EQ(plain.str(), "bus.passes");

    std::ostringstream quoted;
    writeCsvField(quoted, "load=0,5 \"x\"");
    EXPECT_EQ(quoted.str(), "\"load=0,5 \"\"x\"\"\"");
}

TEST(ExportFormat, AgentMetricPrefixZeroPads)
{
    EXPECT_EQ(agentMetricPrefix(3, 8), "agent.3.");
    EXPECT_EQ(agentMetricPrefix(3, 30), "agent.03.");
    EXPECT_EQ(agentMetricPrefix(30, 30), "agent.30.");
    EXPECT_EQ(agentMetricPrefix(7, 100), "agent.007.");
}

} // namespace
} // namespace busarb
