/**
 * @file
 * busarb_trace — inspect and convert binary bus traces.
 *
 * Reads a trace file produced by --trace-out (busarb_sim or
 * busarb_sweep) and converts it to Chrome trace-event JSON for
 * ui.perfetto.dev, to a flat events CSV, or to a per-request latency
 * CSV. With no output flags it prints a per-run latency breakdown
 * (queueing vs exposed arbitration vs service):
 *
 *   busarb_trace run.trace
 *   busarb_trace run.trace --perfetto run.json
 *   busarb_trace run.trace --events-csv events.csv
 *   busarb_trace run.trace --latency-csv latency.csv
 */

#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "experiment/cli.hh"
#include "obs/binary_trace.hh"
#include "obs/latency.hh"
#include "obs/perfetto.hh"

using namespace busarb;

namespace {

bool
readFile(const std::string &path, std::vector<std::uint8_t> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    return !in.bad();
}

/** Open `path` and run `write(file)`; false on I/O failure. */
template <typename WriteFn>
bool
writeTextFile(const std::string &path, WriteFn write)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "busarb_trace: cannot write " << path << "\n";
        return false;
    }
    write(out);
    if (!out) {
        std::cerr << "busarb_trace: error writing " << path << "\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser parser("busarb_trace",
                     "convert binary bus traces (--trace-out files) to "
                     "Perfetto JSON or CSV, or summarize latencies");
    parser.addStringFlag("perfetto", "",
                         "write Chrome trace-event JSON here (open in "
                         "ui.perfetto.dev)");
    parser.addStringFlag("events-csv", "",
                         "write one CSV row per trace event here");
    parser.addStringFlag("latency-csv", "",
                         "write one CSV row per served request here "
                         "(queue / exposed-arb / service breakdown)");
    parser.addBoolFlag("summary", false,
                       "print the latency breakdown table even when an "
                       "output flag is given");
    if (!parser.parse(argc, argv))
        return parser.exitCode();

    if (parser.positional().size() != 1) {
        std::cerr << "busarb_trace: expected exactly one input file "
                     "(see --help)\n";
        return 2;
    }
    const std::string &input = parser.positional().front();

    std::vector<std::uint8_t> bytes;
    if (!readFile(input, bytes)) {
        std::cerr << "busarb_trace: cannot read " << input << "\n";
        return 1;
    }

    std::vector<TraceChunk> chunks;
    try {
        chunks = readTraceChunks(bytes);
    } catch (const std::exception &err) {
        std::cerr << "busarb_trace: " << input << ": " << err.what()
                  << "\n";
        return 1;
    }

    const std::string perfetto_path = parser.getString("perfetto");
    const std::string events_path = parser.getString("events-csv");
    const std::string latency_path = parser.getString("latency-csv");
    const bool any_output = !perfetto_path.empty() ||
                            !events_path.empty() || !latency_path.empty();

    if (!perfetto_path.empty()) {
        if (!writeTextFile(perfetto_path, [&](std::ostream &os) {
                writePerfettoJson(chunks, os);
            }))
            return 1;
        std::cout << "wrote Perfetto JSON to " << perfetto_path << "\n";
    }
    if (!events_path.empty()) {
        if (!writeTextFile(events_path, [&](std::ostream &os) {
                writeEventsCsv(chunks, os);
            }))
            return 1;
        std::cout << "wrote events CSV to " << events_path << "\n";
    }
    if (!latency_path.empty()) {
        if (!writeTextFile(latency_path, [&](std::ostream &os) {
                writeLatencyCsv(chunks, os);
            }))
            return 1;
        std::cout << "wrote latency CSV to " << latency_path << "\n";
    }

    if (!any_output || parser.getBool("summary")) {
        std::size_t total_events = 0;
        for (const auto &chunk : chunks)
            total_events += chunk.events.size();
        std::cout << input << ": " << chunks.size() << " run(s), "
                  << total_events << " events\n\n";
        printLatencyBreakdown(chunks, std::cout);
    }
    return 0;
}
