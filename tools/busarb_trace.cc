/**
 * @file
 * busarb_trace — inspect and convert binary bus traces.
 *
 * Reads a trace file produced by --trace-out (busarb_sim or
 * busarb_sweep) and converts it to Chrome trace-event JSON for
 * ui.perfetto.dev, to a flat events CSV, or to a per-request latency
 * CSV. With no output flags it prints a per-run latency breakdown
 * (queueing vs exposed arbitration vs service):
 *
 *   busarb_trace run.trace
 *   busarb_trace run.trace --perfetto run.json
 *   busarb_trace run.trace --events-csv events.csv
 *   busarb_trace run.trace --latency-csv latency.csv
 *
 * The `audit` subcommand replays every run in the trace through the
 * fairness auditor (obs/fairness_auditor.hh) — the identical code path
 * a live --fairness run uses — and prints per-run bypass-bound,
 * starvation, and Jain's-index summaries:
 *
 *   busarb_trace audit run.trace
 *   busarb_trace audit run.trace --bypass-bound 3 --metrics-out f.json
 *   busarb_trace audit run.trace --snapshot-out run.jsonl \
 *                --snapshot-every 100
 *
 * A truncated or otherwise corrupt trace exits with status 2 and a
 * message naming the offending chunk.
 */

#include <algorithm>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "experiment/cli.hh"
#include "obs/binary_trace.hh"
#include "obs/fairness_auditor.hh"
#include "obs/latency.hh"
#include "obs/metrics_registry.hh"
#include "obs/perfetto.hh"

using namespace busarb;

namespace {

bool
readFile(const std::string &path, std::vector<std::uint8_t> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    return !in.bad();
}

/** Open `path` and run `write(file)`; false on I/O failure. */
template <typename WriteFn>
bool
writeTextFile(const std::string &path, WriteFn write)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "busarb_trace: cannot write " << path << "\n";
        return false;
    }
    write(out);
    if (!out) {
        std::cerr << "busarb_trace: error writing " << path << "\n";
        return false;
    }
    return true;
}

/**
 * Replay every chunk through a fresh FairnessAuditor and print its
 * summary; optionally write merged fairness.* metrics and concatenated
 * snapshot JSONL.
 *
 * @return Process exit code.
 */
int
runAudit(const std::vector<TraceChunk> &chunks, const ArgParser &parser)
{
    const double window = parser.getDouble("fairness-window");
    if (window <= 0.0) {
        std::cerr << "busarb_trace: --fairness-window must be > 0\n";
        return 2;
    }
    const std::string snapshot_path = parser.getString("snapshot-out");
    const double snapshot_every = parser.getDouble("snapshot-every");
    if (snapshot_path.empty() != (snapshot_every <= 0.0)) {
        std::cerr << "busarb_trace: --snapshot-out and --snapshot-every "
                     "must be given together\n";
        return 2;
    }

    MetricsRegistry merged;
    std::string snapshots;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        const TraceChunk &chunk = chunks[i];
        FairnessAuditorConfig fc;
        fc.numAgents = chunk.numAgents;
        fc.windowTicks = unitsToTicks(window);
        fc.bypassBound =
            static_cast<int>(parser.getInt("bypass-bound"));
        fc.snapshotEveryTicks = unitsToTicks(snapshot_every);
        fc.label = chunk.protocol;
        FairnessAuditor auditor(fc);
        Tick end = 0;
        for (const TraceEvent &ev : chunk.events) {
            auditor.consume(ev);
            end = std::max(end, ev.tick);
        }
        auditor.finish(end);

        if (i > 0)
            std::cout << "\n";
        std::cout << "run " << i << " (" << chunk.protocol << "):\n";
        auditor.printSummary(std::cout);
        MetricsRegistry local;
        auditor.exportMetrics(local);
        merged.mergeFrom(local, "run" + std::to_string(i) + "." +
                                    chunk.protocol + ".");
        snapshots += auditor.snapshots();
    }

    if (!parser.getString("metrics-out").empty()) {
        if (!merged.writeFile(parser.getString("metrics-out"))) {
            std::cerr << "busarb_trace: cannot write "
                      << parser.getString("metrics-out") << "\n";
            return 1;
        }
        std::cout << "\nwrote fairness metrics to "
                  << parser.getString("metrics-out") << "\n";
    }
    if (!snapshot_path.empty()) {
        std::ofstream out(snapshot_path, std::ios::binary);
        if (!out) {
            std::cerr << "busarb_trace: cannot write " << snapshot_path
                      << "\n";
            return 1;
        }
        out << snapshots;
        if (!out) {
            std::cerr << "busarb_trace: error writing " << snapshot_path
                      << "\n";
            return 1;
        }
        std::cout << "wrote fairness snapshots to " << snapshot_path
                  << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser parser("busarb_trace",
                     "convert binary bus traces (--trace-out files) to "
                     "Perfetto JSON or CSV, summarize latencies, or "
                     "`audit` fairness");
    parser.addStringFlag("perfetto", "",
                         "write Chrome trace-event JSON here (open in "
                         "ui.perfetto.dev)");
    parser.addStringFlag("events-csv", "",
                         "write one CSV row per trace event here");
    parser.addStringFlag("latency-csv", "",
                         "write one CSV row per served request here "
                         "(queue / exposed-arb / service breakdown)");
    parser.addBoolFlag("summary", false,
                       "print the latency breakdown table even when an "
                       "output flag is given");
    parser.addDoubleFlag("fairness-window", 50.0,
                         "audit: fairness window width, transaction "
                         "units");
    parser.addIntFlag("bypass-bound", 0,
                      "audit: audited bypass bound per grant (0 = the "
                      "paper's RR guarantee, N-1)");
    parser.addStringFlag("snapshot-out", "",
                         "audit: write deterministic fairness snapshots "
                         "(JSONL) here; requires --snapshot-every");
    parser.addDoubleFlag("snapshot-every", 0.0,
                         "audit: snapshot interval in simulated "
                         "transaction units; requires --snapshot-out");
    parser.addStringFlag("metrics-out", "",
                         "audit: write merged fairness.* metrics here "
                         "(.json for JSON, anything else for CSV)");
    if (!parser.parse(argc, argv))
        return parser.exitCode();

    bool audit = false;
    std::string input;
    if (parser.positional().size() == 1) {
        input = parser.positional().front();
    } else if (parser.positional().size() == 2 &&
               parser.positional().front() == "audit") {
        audit = true;
        input = parser.positional().back();
    } else {
        std::cerr << "busarb_trace: expected an input file or "
                     "`audit <file>` (see --help)\n";
        return 2;
    }
    // Artifact destinations are validated before any decoding work.
    for (const char *flag : {"perfetto", "events-csv", "latency-csv",
                             "snapshot-out", "metrics-out"})
        requireParentDirOrExit("busarb_trace", flag,
                               parser.getString(flag));
    // Audit-only flags are meaningless (and silently misleading) on the
    // conversion path; reject them loudly instead.
    if (!audit) {
        for (const char *flag :
             {"snapshot-out", "metrics-out"}) {
            if (!parser.getString(flag).empty()) {
                std::cerr << "busarb_trace: --" << flag
                          << " requires the audit subcommand\n";
                return 2;
            }
        }
    }

    std::vector<std::uint8_t> bytes;
    if (!readFile(input, bytes)) {
        std::cerr << "busarb_trace: cannot read " << input << "\n";
        return 1;
    }

    std::vector<TraceChunk> chunks;
    try {
        chunks = readTraceChunks(bytes);
    } catch (const std::exception &err) {
        // Truncated or corrupt chunks are a usage-level failure (wrong
        // file, interrupted capture), distinct from I/O errors above.
        std::cerr << "busarb_trace: " << input
                  << ": corrupt or truncated trace: " << err.what()
                  << "\n";
        return 2;
    }

    if (audit)
        return runAudit(chunks, parser);

    const std::string perfetto_path = parser.getString("perfetto");
    const std::string events_path = parser.getString("events-csv");
    const std::string latency_path = parser.getString("latency-csv");
    const bool any_output = !perfetto_path.empty() ||
                            !events_path.empty() || !latency_path.empty();

    if (!perfetto_path.empty()) {
        if (!writeTextFile(perfetto_path, [&](std::ostream &os) {
                writePerfettoJson(chunks, os);
            }))
            return 1;
        std::cout << "wrote Perfetto JSON to " << perfetto_path << "\n";
    }
    if (!events_path.empty()) {
        if (!writeTextFile(events_path, [&](std::ostream &os) {
                writeEventsCsv(chunks, os);
            }))
            return 1;
        std::cout << "wrote events CSV to " << events_path << "\n";
    }
    if (!latency_path.empty()) {
        if (!writeTextFile(latency_path, [&](std::ostream &os) {
                writeLatencyCsv(chunks, os);
            }))
            return 1;
        std::cout << "wrote latency CSV to " << latency_path << "\n";
    }

    if (!any_output || parser.getBool("summary")) {
        std::size_t total_events = 0;
        for (const auto &chunk : chunks)
            total_events += chunk.events.size();
        std::cout << input << ": " << chunks.size() << " run(s), "
                  << total_events << " events\n\n";
        printLatencyBreakdown(chunks, std::cout);
    }
    return 0;
}
