/**
 * @file
 * busarb_sweep — sweep protocols across a load range and emit a CSV (or
 * table) of the paper's summary measures. The companion to busarb_sim
 * for producing plot-ready data.
 *
 *   busarb_sweep --protocols rr1,fcfs1,aap1 --agents 30 \
 *                --loads 0.25,0.5,1,1.5,2,2.5,5,7.5 --csv out.csv
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/cli.hh"
#include "experiment/csv.hh"
#include "experiment/protocols.hh"
#include "experiment/runner.hh"
#include "experiment/table.hh"
#include "workload/scenario.hh"

namespace {

std::vector<std::string>
splitCsvList(const std::string &text)
{
    std::vector<std::string> parts;
    std::istringstream is(text);
    std::string token;
    while (std::getline(is, token, ',')) {
        if (!token.empty())
            parts.push_back(token);
    }
    return parts;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace busarb;

    ArgParser parser("busarb_sweep",
                     "sweep arbitration protocols across offered loads");
    parser.addStringFlag("protocols", "rr1,fcfs1",
                         "comma-separated protocol keys (note: specs "
                         "with options are not usable here because of "
                         "the comma separator; use busarb_sim)");
    parser.addStringFlag("loads", "0.25,0.5,1,1.5,2,2.5,5,7.5",
                         "comma-separated total offered loads");
    parser.addIntFlag("agents", 10, "number of agents");
    parser.addDoubleFlag("cv", 1.0,
                         "inter-request coefficient of variation");
    parser.addIntFlag("batches", 10, "measurement batches");
    parser.addIntFlag("batch-size", 8000, "completions per batch");
    parser.addStringFlag("csv", "", "write CSV here instead of a table");
    if (!parser.parse(argc, argv))
        return parser.exitCode();

    const int n = static_cast<int>(parser.getInt("agents"));
    const auto protocol_keys = splitCsvList(parser.getString("protocols"));
    const auto load_tokens = splitCsvList(parser.getString("loads"));
    if (protocol_keys.empty() || load_tokens.empty()) {
        std::cerr << "need at least one protocol and one load\n";
        return 2;
    }

    std::ofstream file;
    std::ostream *csv = nullptr;
    if (!parser.getString("csv").empty()) {
        file.open(parser.getString("csv"));
        if (!file) {
            std::cerr << "cannot write " << parser.getString("csv")
                      << "\n";
            return 1;
        }
        csv = &file;
        writeSummaryCsvHeader(*csv);
    }

    TextTable table({"load", "protocol", "util", "W", "sigma W",
                     "t_N/t_1"});
    for (const auto &token : load_tokens) {
        const double load = std::stod(token);
        ScenarioConfig config =
            equalLoadScenario(n, load, parser.getDouble("cv"));
        config.numBatches = static_cast<int>(parser.getInt("batches"));
        config.batchSize =
            static_cast<std::uint64_t>(parser.getInt("batch-size"));
        config.warmup = config.batchSize;
        for (const auto &key : protocol_keys) {
            const auto result = runScenario(config, protocolFromSpec(key));
            if (csv != nullptr) {
                writeSummaryCsvRow(result, "load=" + token, *csv);
            } else {
                table.addRow({
                    token,
                    key,
                    formatFixed(result.utilization().value, 2),
                    formatEstimate(result.meanWait()),
                    formatEstimate(result.waitStddev()),
                    formatEstimate(result.throughputRatio(n, 1)),
                });
            }
        }
    }
    if (csv != nullptr) {
        std::cout << "wrote "
                  << protocol_keys.size() * load_tokens.size()
                  << " rows to " << parser.getString("csv") << "\n";
    } else {
        table.print(std::cout);
    }
    return 0;
}
