/**
 * @file
 * busarb_sweep — sweep protocols across a load range and emit a CSV (or
 * table) of the paper's summary measures. The companion to busarb_sim
 * for producing plot-ready data.
 *
 * Scenario runs fan out across worker threads (--jobs); every cell of
 * the protocol x load grid is hermetic, so the output is bit-identical
 * at any job count.
 *
 *   busarb_sweep --protocols rr1,fcfs1,aap1 --agents 30 \
 *                --loads 0.25,0.5,1,1.5,2,2.5,5,7.5 --jobs 4 --csv out.csv
 *   busarb_sweep --grid examples/scenarios/table41.grid --csv out.csv
 *
 * A --grid scenario file (experiment/scenario_spec.hh) declares the
 * same sweep declaratively — including protocol specs with options,
 * which the comma-separated --protocols flag cannot express — and
 * expands through the same cell-assembly path, so a grid file
 * reproduces a flag invocation byte for byte.
 */

#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/cli.hh"
#include "obs/metrics_registry.hh"
#include "experiment/csv.hh"
#include "experiment/job_pool.hh"
#include "experiment/protocol_registry.hh"
#include "experiment/runner.hh"
#include "experiment/scenario_spec.hh"
#include "experiment/table.hh"
#include "workload/scenario.hh"

namespace {

std::vector<std::string>
splitCsvList(const std::string &text)
{
    std::vector<std::string> parts;
    std::istringstream is(text);
    std::string token;
    while (std::getline(is, token, ',')) {
        if (!token.empty())
            parts.push_back(token);
    }
    return parts;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace busarb;

    ArgParser parser("busarb_sweep",
                     "sweep arbitration protocols across offered loads");
    parser.addStringFlag("grid", "",
                         "read the whole sweep (workload, run controls, "
                         "loads, protocol specs) from this scenario "
                         "file; conflicts with the axis flags");
    parser.addStringFlag("protocols", "rr1,fcfs1",
                         "comma-separated protocol keys (note: specs "
                         "with options are not usable here because of "
                         "the comma separator; use --grid)");
    parser.addStringFlag("loads", "0.25,0.5,1,1.5,2,2.5,5,7.5",
                         "comma-separated total offered loads");
    parser.addBoolFlag("list-protocols", false,
                       "print the protocol catalogue (keys, parameters, "
                       "defaults, paper sections) and exit");
    parser.addIntFlag("agents", 10, "number of agents");
    parser.addDoubleFlag("cv", 1.0,
                         "inter-request coefficient of variation");
    parser.addIntFlag("batches", 10, "measurement batches");
    parser.addIntFlag("batch-size", 8000, "completions per batch");
    parser.addIntFlag("jobs", 0,
                      "parallel scenario jobs (0 = one per hardware "
                      "thread, 1 = serial); any value produces "
                      "identical output");
    parser.addStringFlag("csv", "", "write CSV here instead of a table");
    parser.addStringFlag("trace-out", "",
                         "capture a binary event trace of every cell to "
                         "this file (decode with busarb_trace)");
    parser.addStringFlag("metrics-out", "",
                         "write merged per-cell metrics to this file "
                         "(.json for JSON, anything else for CSV)");
    parser.addStringFlag("timing-csv", "",
                         "write per-cell wall-clock timing here (host "
                         "timing; varies run to run, so it is kept out "
                         "of the deterministic --csv file)");
    parser.addBoolFlag("fairness", false,
                       "attach the fairness auditor to every cell; the "
                       "fairness.* measures land in --metrics-out");
    parser.addDoubleFlag("fairness-window", 50.0,
                         "fairness window width, transaction units");
    parser.addIntFlag("bypass-bound", 0,
                      "audited bypass bound per grant (0 = the paper's "
                      "RR guarantee, N-1)");
    parser.addBoolFlag("health", false,
                       "attach the run-health monitor to every cell and "
                       "print per-cell convergence verdicts; health.* "
                       "measures land in --metrics-out");
    parser.addBoolFlag("health-strict", false,
                       "like --health, but exit with status 3 if any "
                       "cell's verdict is not 'converged'");
    parser.addDoubleFlag("health-rel-hw", 0.05,
                         "relative CI half-width target (the paper's "
                         "\"within 5%\")");
    parser.addDoubleFlag("health-lag1", 0.3,
                         "|lag-1| autocorrelation threshold for "
                         "batch-mean independence");
    parser.addBoolFlag("progress", false,
                       "print a live progress/ETA line to stderr as grid "
                       "cells complete (stderr only, so stdout and every "
                       "artifact stay byte-identical)");
    addQueueFlag(parser);
    if (!parser.parse(argc, argv))
        return parser.exitCode();
    if (parser.getBool("list-protocols")) {
        ProtocolRegistry::builtin().printTable(std::cout);
        return 0;
    }

    if (parser.getBool("fairness") &&
        parser.getDouble("fairness-window") <= 0.0) {
        std::cerr << "busarb_sweep: --fairness-window must be > 0\n";
        return 2;
    }

    // Both axes plus the workload come from one ScenarioSpec, built
    // either from a --grid file or from the flags; cell assembly below
    // is shared, so the two inputs produce identical artifacts.
    ScenarioSpec spec;
    if (!parser.getString("grid").empty()) {
        static const char *const kOwned[] = {"protocols", "loads",
                                             "agents", "cv", "batches",
                                             "batch-size"};
        for (const char *flag : kOwned) {
            if (parser.wasSet(flag)) {
                std::cerr << "busarb_sweep: --" << flag
                          << " conflicts with --grid (the file is the "
                             "single source of truth)\n";
                return 2;
            }
        }
        spec = scenarioSpecOrExit("busarb_sweep",
                                  parser.getString("grid"));
    } else {
        spec.family = "equal";
        spec.agents = static_cast<int>(parser.getInt("agents"));
        spec.cv = parser.getDouble("cv");
        spec.batches = static_cast<int>(parser.getInt("batches"));
        spec.batchSize = parser.getInt("batch-size");
        spec.loadTokens = splitCsvList(parser.getString("loads"));
        spec.protocolSpecs = splitCsvList(parser.getString("protocols"));
    }
    if (spec.family == "worst-case") {
        std::cerr << "busarb_sweep: family 'worst-case' has no load "
                     "axis; run it with busarb_sim\n";
        return 2;
    }

    const int n = spec.agents;
    const auto &protocol_keys = spec.protocolSpecs;
    const auto &load_tokens = spec.loadTokens;
    if (protocol_keys.empty() || load_tokens.empty()) {
        std::cerr << "need at least one protocol and one load\n";
        return 2;
    }
    // Duplicate keys would collide under the per-cell metric prefixes
    // (load=X.key.*) and silently double rows; reject them up front.
    const auto has_duplicate = [](const std::vector<std::string> &v) {
        for (std::size_t i = 0; i < v.size(); ++i)
            for (std::size_t j = i + 1; j < v.size(); ++j)
                if (v[i] == v[j])
                    return true;
        return false;
    };
    if (has_duplicate(protocol_keys)) {
        std::cerr << "busarb_sweep: duplicate key in --protocols\n";
        return 2;
    }
    if (has_duplicate(load_tokens)) {
        std::cerr << "busarb_sweep: duplicate load in --loads\n";
        return 2;
    }
    const bool health_strict = parser.getBool("health-strict");
    const bool monitor_health =
        parser.getBool("health") || health_strict;

    std::ofstream file;
    std::ostream *csv = nullptr;
    if (!parser.getString("csv").empty()) {
        file.open(parser.getString("csv"));
        if (!file) {
            std::cerr << "cannot write " << parser.getString("csv")
                      << "\n";
            return 1;
        }
        csv = &file;
        writeSummaryCsvHeader(*csv);
    }

    // One grid cell per load x protocol, in row-emission order.
    std::vector<GridJob> grid;
    grid.reserve(load_tokens.size() * protocol_keys.size());
    for (const auto &token : load_tokens) {
        parseDoubleTokenOrExit("busarb_sweep", "loads", token);
        ScenarioConfig config = spec.configForLoad(token);
        config.captureBinaryTrace =
            !parser.getString("trace-out").empty();
        config.auditFairness = parser.getBool("fairness");
        config.fairnessWindowUnits = parser.getDouble("fairness-window");
        config.bypassBound =
            static_cast<int>(parser.getInt("bypass-bound"));
        config.monitorHealth = monitor_health;
        config.healthRelHwTarget = parser.getDouble("health-rel-hw");
        config.healthLag1Threshold = parser.getDouble("health-lag1");
        config.eventQueuePolicy =
            queuePolicyOrExit("busarb_sweep", parser);
        for (const auto &key : protocol_keys)
            grid.push_back({config,
                            protocolFactoryOrExit("busarb_sweep", key),
                            key});
    }

    const int jobs =
        resolveJobCount(static_cast<int>(parser.getInt("jobs")));
    const auto start = std::chrono::steady_clock::now();

    // The live progress line is stderr-only and host-timing based;
    // stdout and every written artifact stay byte-identical with or
    // without it, at any job count.
    std::function<void(std::size_t, std::size_t)> on_progress;
    if (parser.getBool("progress")) {
        on_progress = [start](std::size_t done, std::size_t total) {
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            const double eta =
                done > 0 ? elapsed *
                               static_cast<double>(total - done) /
                               static_cast<double>(done)
                         : 0.0;
            std::cerr << "\rbusarb_sweep: " << done << "/" << total
                      << " cells elapsed=" << formatFixed(elapsed, 1)
                      << "s eta=" << formatFixed(eta, 1) << "s   ";
            if (done == total)
                std::cerr << "\n";
            std::cerr.flush();
        };
    }

    const std::vector<ScenarioResult> results =
        runScenarioGrid(grid, jobs, on_progress);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();

    TextTable table({"load", "protocol", "util", "W", "sigma W",
                     "t_N/t_1", "ms"});
    std::size_t cell = 0;
    for (const auto &token : load_tokens) {
        for (const auto &key : protocol_keys) {
            const ScenarioResult &result = results[cell++];
            if (csv != nullptr) {
                writeSummaryCsvRow(result, "load=" + token, *csv);
            } else {
                table.addRow({
                    token,
                    key,
                    formatFixed(result.utilization().value, 2),
                    formatEstimate(result.meanWait()),
                    formatEstimate(result.waitStddev()),
                    formatEstimate(result.throughputRatio(n, 1)),
                    formatFixed(result.elapsedMs, 0),
                });
            }
        }
    }
    if (csv != nullptr) {
        std::cout << "wrote " << results.size() << " rows to "
                  << parser.getString("csv") << "\n";
    } else {
        table.print(std::cout);
    }
    if (monitor_health) {
        std::size_t idx = 0;
        for (const auto &token : load_tokens) {
            for (const auto &key : protocol_keys) {
                const ScenarioResult &r = results[idx++];
                std::cout << "health[load=" << token << "." << key
                          << "]: ";
                r.health.print(std::cout);
                std::cout << "\n";
            }
        }
    }
    if (!parser.getString("trace-out").empty()) {
        std::ofstream out(parser.getString("trace-out"),
                          std::ios::binary);
        if (!out) {
            std::cerr << "cannot write "
                      << parser.getString("trace-out") << "\n";
            return 1;
        }
        for (const auto &result : results) {
            out.write(
                reinterpret_cast<const char *>(result.binaryTrace.data()),
                static_cast<std::streamsize>(result.binaryTrace.size()));
        }
        if (!out) {
            std::cerr << "error writing "
                      << parser.getString("trace-out") << "\n";
            return 1;
        }
        std::cout << "wrote binary trace (" << results.size()
                  << " chunks) to " << parser.getString("trace-out")
                  << "\n";
    }
    if (!parser.getString("metrics-out").empty()) {
        // One prefix per grid cell, in row-emission order.
        MetricsRegistry merged;
        std::size_t idx = 0;
        for (const auto &token : load_tokens) {
            for (const auto &key : protocol_keys) {
                merged.mergeFrom(results[idx++].metrics,
                                 "load=" + token + "." + key + ".");
            }
        }
        // Canonical provenance: identical text for --grid and for the
        // equivalent flag invocation.
        merged.setAnnotation("scenario.spec", spec.format());
        if (!merged.writeFile(parser.getString("metrics-out"))) {
            std::cerr << "cannot write "
                      << parser.getString("metrics-out") << "\n";
            return 1;
        }
        std::cout << "wrote metrics to "
                  << parser.getString("metrics-out") << "\n";
    }
    if (!parser.getString("timing-csv").empty()) {
        // Host wall-clock per cell. Deliberately a separate file from
        // --csv: timing varies run to run while the results CSV must
        // stay byte-identical across job counts.
        std::ofstream out(parser.getString("timing-csv"));
        if (!out) {
            std::cerr << "cannot write "
                      << parser.getString("timing-csv") << "\n";
            return 1;
        }
        out << "label,protocol,elapsed_ms\n";
        std::size_t idx = 0;
        for (const auto &token : load_tokens) {
            for (const auto &key : protocol_keys) {
                out << "load=" << token << "," << key << ","
                    << formatFixed(results[idx++].elapsedMs, 3) << "\n";
            }
        }
        if (!out) {
            std::cerr << "error writing "
                      << parser.getString("timing-csv") << "\n";
            return 1;
        }
        std::cout << "wrote per-cell timing to "
                  << parser.getString("timing-csv") << "\n";
    }
    // Timing goes to stdout, never into the results CSV: that file must
    // stay byte-identical across job counts.
    std::cout << "jobs=" << jobs << " elapsed_ms="
              << formatFixed(elapsed_ms, 0) << "\n";
    if (health_strict) {
        // Exit 3 is reserved for verdict failures, distinct from I/O
        // errors (1) and usage errors (2), so scripts can gate on it.
        std::size_t idx = 0;
        for (const auto &token : load_tokens) {
            for (const auto &key : protocol_keys) {
                const ScenarioResult &r = results[idx++];
                if (r.health.verdict != ConvergenceVerdict::kConverged) {
                    std::cerr << "busarb_sweep: cell load=" << token
                              << "." << key << " is "
                              << r.health.verdictLabel()
                              << " (--health-strict)\n";
                    return 3;
                }
            }
        }
    }
    return 0;
}
