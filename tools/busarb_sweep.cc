/**
 * @file
 * busarb_sweep — sweep protocols across a load range and emit a CSV (or
 * table) of the paper's summary measures. The companion to busarb_sim
 * for producing plot-ready data.
 *
 * Scenario runs fan out across worker threads (--jobs); every cell of
 * the protocol x load grid is hermetic, so the output is bit-identical
 * at any job count.
 *
 *   busarb_sweep --protocols rr1,fcfs1,aap1 --agents 30 \
 *                --loads 0.25,0.5,1,1.5,2,2.5,5,7.5 --jobs 4 --csv out.csv
 *   busarb_sweep --grid examples/scenarios/table41.grid --csv out.csv
 *
 * A --grid scenario file (experiment/scenario_spec.hh) declares the
 * same sweep declaratively — including protocol specs with options,
 * which the comma-separated --protocols flag cannot express — and
 * expands through the same cell-assembly path, so a grid file
 * reproduces a flag invocation byte for byte.
 *
 * With --shards N (and a --shard-dir), the sweep becomes a
 * multi-process fleet: the grid is partitioned into shards, worker
 * processes (`busarb_sweep --worker-shard <task-file>`) checkpoint
 * each finished cell durably, and the coordinator reassembles the
 * results — every artifact byte-identical to the single-process run.
 * A killed run (workers or coordinator) continues with --resume from
 * whatever the checkpoints already hold. See docs/ORCHESTRATION.md.
 */

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dist/dispatcher.hh"
#include "dist/worker_protocol.hh"
#include "experiment/cli.hh"
#include "experiment/csv.hh"
#include "experiment/job_pool.hh"
#include "experiment/protocol_registry.hh"
#include "experiment/runner.hh"
#include "experiment/scenario_spec.hh"
#include "experiment/sweep_cells.hh"
#include "experiment/table.hh"
#include "experiment/workload_registry.hh"
#include "obs/metrics_registry.hh"
#include "obs/sweep_progress.hh"
#include "workload/scenario.hh"

namespace {

std::vector<std::string>
splitCsvList(const std::string &text)
{
    std::vector<std::string> parts;
    std::istringstream is(text);
    std::string token;
    while (std::getline(is, token, ',')) {
        if (!token.empty())
            parts.push_back(token);
    }
    return parts;
}

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace busarb;

    ArgParser parser("busarb_sweep",
                     "sweep arbitration protocols across offered loads");
    parser.addStringFlag("grid", "",
                         "read the whole sweep (workload, run controls, "
                         "loads, protocol specs) from this scenario "
                         "file; conflicts with the axis flags");
    parser.addStringFlag("protocols", "rr1,fcfs1",
                         "comma-separated protocol keys (note: specs "
                         "with options are not usable here because of "
                         "the comma separator; use --grid)");
    parser.addStringFlag("loads", "0.25,0.5,1,1.5,2,2.5,5,7.5",
                         "comma-separated total offered loads");
    parser.addBoolFlag("list-protocols", false,
                       "print the protocol catalogue (keys, parameters, "
                       "defaults, paper sections) and exit");
    parser.addBoolFlag("list-workloads", false,
                       "print the workload-source catalogue (keys, "
                       "options, defaults) and exit");
    parser.addStringFlag("source", "closed",
                         "workload-source spec for every cell (see "
                         "--list-workloads); sources without a load "
                         "axis conflict with --loads");
    parser.addIntFlag("agents", 10, "number of agents");
    parser.addDoubleFlag("cv", 1.0,
                         "inter-request coefficient of variation");
    parser.addIntFlag("batches", 10, "measurement batches");
    parser.addIntFlag("batch-size", 8000, "completions per batch");
    parser.addIntFlag("jobs", 0,
                      "parallel scenario jobs (0 = one per hardware "
                      "thread, 1 = serial); any value produces "
                      "identical output. In fleet mode this is the "
                      "per-worker thread count (default 1)");
    parser.addStringFlag("csv", "", "write CSV here instead of a table");
    parser.addStringFlag("trace-out", "",
                         "capture a binary event trace of every cell to "
                         "this file (decode with busarb_trace)");
    parser.addStringFlag("metrics-out", "",
                         "write merged per-cell metrics to this file "
                         "(.json for JSON, anything else for CSV)");
    parser.addStringFlag("timing-csv", "",
                         "write per-cell wall-clock timing here (host "
                         "timing; varies run to run, so it is kept out "
                         "of the deterministic --csv file)");
    parser.addStringFlag("snapshot-out", "",
                         "write deterministic per-cell fairness/health "
                         "snapshots (JSONL, byte-identical at any "
                         "--jobs or --shards) to this file; requires "
                         "--snapshot-every and/or --health");
    parser.addDoubleFlag("snapshot-every", 0.0,
                         "snapshot interval in simulated transaction "
                         "units; requires --snapshot-out");
    parser.addBoolFlag("fairness", false,
                       "attach the fairness auditor to every cell; the "
                       "fairness.* measures land in --metrics-out");
    parser.addDoubleFlag("fairness-window", 50.0,
                         "fairness window width, transaction units");
    parser.addIntFlag("bypass-bound", 0,
                      "audited bypass bound per grant (0 = the paper's "
                      "RR guarantee, N-1)");
    parser.addBoolFlag("health", false,
                       "attach the run-health monitor to every cell and "
                       "print per-cell convergence verdicts; health.* "
                       "measures land in --metrics-out");
    parser.addBoolFlag("health-strict", false,
                       "like --health, but exit with status 3 if any "
                       "cell's verdict is not 'converged'");
    parser.addDoubleFlag("health-rel-hw", 0.05,
                         "relative CI half-width target (the paper's "
                         "\"within 5%\")");
    parser.addDoubleFlag("health-lag1", 0.3,
                         "|lag-1| autocorrelation threshold for "
                         "batch-mean independence");
    parser.addBoolFlag("progress", false,
                       "print a live progress/ETA line to stderr as grid "
                       "cells complete (stderr only, so stdout and every "
                       "artifact stay byte-identical)");
    parser.addIntFlag("shards", 0,
                      "partition the grid into this many shards and run "
                      "them as worker processes (requires --shard-dir); "
                      "0 or 1 = in-process");
    parser.addStringFlag("shard-dir", "",
                         "directory for shard task files and durable "
                         "cell checkpoints (created if missing)");
    parser.addIntFlag("fleet", 0,
                      "max concurrent worker processes (0 = "
                      "min(shards, hardware threads))");
    parser.addIntFlag("retries", 2,
                      "crash retries per shard before the sweep gives "
                      "up (each retry resumes from the shard's "
                      "checkpoints)");
    parser.addBoolFlag("resume", false,
                       "continue a sharded sweep from the checkpoints "
                       "already in --shard-dir instead of refusing");
    parser.addStringFlag("worker-shard", "",
                         "internal: run one shard task file and "
                         "checkpoint its cells (spawned by the "
                         "coordinator; every other flag except --jobs "
                         "is ignored)");
    addQueueFlag(parser);
    if (!parser.parse(argc, argv))
        return parser.exitCode();
    if (!parser.getString("worker-shard").empty()) {
        return runWorkerShard("busarb_sweep",
                              parser.getString("worker-shard"),
                              static_cast<int>(parser.getInt("jobs")));
    }
    if (parser.getBool("list-protocols")) {
        ProtocolRegistry::builtin().printTable(std::cout);
        return 0;
    }
    if (parser.getBool("list-workloads")) {
        WorkloadRegistry::builtin().printTable(std::cout);
        return 0;
    }

    if (parser.getBool("fairness") &&
        parser.getDouble("fairness-window") <= 0.0) {
        std::cerr << "busarb_sweep: --fairness-window must be > 0\n";
        return 2;
    }

    const bool health_strict = parser.getBool("health-strict");
    const bool monitor_health =
        parser.getBool("health") || health_strict;
    const std::string snapshot_path = parser.getString("snapshot-out");
    const double snapshot_every = parser.getDouble("snapshot-every");
    if (snapshot_path.empty() && snapshot_every > 0.0) {
        std::cerr << "busarb_sweep: --snapshot-every requires "
                     "--snapshot-out\n";
        return 2;
    }
    if (!snapshot_path.empty() && snapshot_every <= 0.0 &&
        !monitor_health) {
        std::cerr << "busarb_sweep: --snapshot-out requires "
                     "--snapshot-every and/or --health\n";
        return 2;
    }

    // Artifact destinations are validated before any cell runs: a
    // missing parent directory fails in seconds, not after the sweep.
    requireParentDirOrExit("busarb_sweep", "csv",
                           parser.getString("csv"));
    requireParentDirOrExit("busarb_sweep", "trace-out",
                           parser.getString("trace-out"));
    requireParentDirOrExit("busarb_sweep", "metrics-out",
                           parser.getString("metrics-out"));
    requireParentDirOrExit("busarb_sweep", "timing-csv",
                           parser.getString("timing-csv"));
    requireParentDirOrExit("busarb_sweep", "snapshot-out",
                           snapshot_path);

    const long shards_flag = parser.getInt("shards");
    if (shards_flag < 0) {
        std::cerr << "busarb_sweep: --shards must be >= 0\n";
        return 2;
    }
    const bool sharded = shards_flag > 1;
    if (sharded && parser.getString("shard-dir").empty()) {
        std::cerr << "busarb_sweep: --shards needs --shard-dir for the "
                     "task files and checkpoints\n";
        return 2;
    }
    if (!sharded) {
        for (const char *flag : {"shard-dir", "fleet", "resume"}) {
            if (parser.wasSet(flag)) {
                std::cerr << "busarb_sweep: --" << flag
                          << " only makes sense with --shards >= 2\n";
                return 2;
            }
        }
    }
    if (parser.getInt("retries") < 0) {
        std::cerr << "busarb_sweep: --retries must be >= 0\n";
        return 2;
    }

    // Both axes plus the workload come from one ScenarioSpec, built
    // either from a --grid file or from the flags; cell assembly below
    // is shared, so the two inputs produce identical artifacts.
    ScenarioSpec spec;
    if (!parser.getString("grid").empty()) {
        static const char *const kOwned[] = {"protocols", "loads",
                                             "agents", "cv", "batches",
                                             "batch-size", "source"};
        for (const char *flag : kOwned) {
            if (parser.wasSet(flag)) {
                std::cerr << "busarb_sweep: --" << flag
                          << " conflicts with --grid (the file is the "
                             "single source of truth)\n";
                return 2;
            }
        }
        spec = scenarioSpecOrExit("busarb_sweep",
                                  parser.getString("grid"));
    } else {
        spec.family = "equal";
        spec.agents = static_cast<int>(parser.getInt("agents"));
        spec.cv = parser.getDouble("cv");
        spec.batches = static_cast<int>(parser.getInt("batches"));
        spec.batchSize = parser.getInt("batch-size");
        spec.source = parser.getString("source");
        workloadSpecOrExit("busarb_sweep", spec.source);
        if (spec.sourceTakesLoads()) {
            spec.loadTokens = splitCsvList(parser.getString("loads"));
        } else if (parser.wasSet("loads")) {
            // The source fixes its own arrival schedule; a load axis
            // would be silently ignored, so reject it loudly instead.
            std::cerr << "busarb_sweep: --loads conflicts with --source "
                      << spec.source
                      << " (the source fixes its own arrival "
                         "schedule)\n";
            return 2;
        }
        spec.protocolSpecs = splitCsvList(parser.getString("protocols"));
    }
    if (spec.family == "worst-case") {
        std::cerr << "busarb_sweep: family 'worst-case' has no load "
                     "axis; run it with busarb_sim\n";
        return 2;
    }

    const int n = spec.agents;
    const auto &protocol_keys = spec.protocolSpecs;
    // Sources without a load axis (trace replay) sweep the single
    // placeholder token "-", so row labels and metric prefixes stay
    // well-formed with one cell per protocol.
    const auto &load_tokens = spec.loadAxis();
    if (protocol_keys.empty() || load_tokens.empty()) {
        std::cerr << "need at least one protocol and one load\n";
        return 2;
    }
    // Duplicate keys would collide under the per-cell metric prefixes
    // (load=X.key.*) and silently double rows; reject them up front.
    const auto has_duplicate = [](const std::vector<std::string> &v) {
        for (std::size_t i = 0; i < v.size(); ++i)
            for (std::size_t j = i + 1; j < v.size(); ++j)
                if (v[i] == v[j])
                    return true;
        return false;
    };
    if (has_duplicate(protocol_keys)) {
        std::cerr << "busarb_sweep: duplicate key in --protocols\n";
        return 2;
    }
    if (has_duplicate(load_tokens)) {
        std::cerr << "busarb_sweep: duplicate load in --loads\n";
        return 2;
    }

    std::ofstream file;
    std::ostream *csv = nullptr;
    if (!parser.getString("csv").empty()) {
        file.open(parser.getString("csv"));
        if (!file) {
            std::cerr << "cannot write " << parser.getString("csv")
                      << "\n";
            return 1;
        }
        csv = &file;
        writeSummaryCsvHeader(*csv);
    }

    // Every knob that shapes a cell lives in one SweepTuning: the
    // in-process path, the coordinator, and every worker derive their
    // cells from it through the same sweep_cells.hh assembly, which is
    // what keeps sharded artifacts byte-identical to this process's.
    SweepTuning tuning;
    tuning.captureTrace = !parser.getString("trace-out").empty();
    tuning.fairness =
        parser.getBool("fairness") || snapshot_every > 0.0;
    tuning.fairnessWindow = parser.getDouble("fairness-window");
    tuning.bypassBound =
        static_cast<int>(parser.getInt("bypass-bound"));
    tuning.health = monitor_health;
    tuning.healthRelHw = parser.getDouble("health-rel-hw");
    tuning.healthLag1 = parser.getDouble("health-lag1");
    tuning.snapshotEvery = snapshot_every;
    tuning.healthSnapshots = monitor_health && !snapshot_path.empty();
    tuning.queuePolicy = queuePolicyOrExit("busarb_sweep", parser);
    if (tuning.fairness && tuning.fairnessWindow <= 0.0) {
        std::cerr << "busarb_sweep: --fairness-window must be > 0\n";
        return 2;
    }

    const auto start = std::chrono::steady_clock::now();
    std::vector<ScenarioResult> results;
    int jobs = 0;
    if (sharded) {
        FleetOptions opts;
        opts.program = "busarb_sweep";
        opts.exePath = argv[0];
        opts.shardDir = parser.getString("shard-dir");
        opts.shards = static_cast<std::size_t>(shards_flag);
        opts.fleet = static_cast<std::size_t>(
            std::max(0L, parser.getInt("fleet")));
        opts.retries = static_cast<int>(parser.getInt("retries"));
        // Workers default to one thread each — the fleet is the
        // parallelism — but an explicit --jobs passes through.
        opts.workerJobs =
            parser.wasSet("jobs")
                ? static_cast<int>(parser.getInt("jobs"))
                : 1;
        opts.resume = parser.getBool("resume");
        opts.progress = parser.getBool("progress");
        results = runShardedSweep(spec, tuning, opts);
        jobs = opts.workerJobs;
    } else {
        const std::vector<GridJob> grid =
            buildSweepGrid(spec, tuning, "busarb_sweep");
        jobs = resolveJobCount(static_cast<int>(parser.getInt("jobs")));

        // The live progress line is stderr-only and host-timing based;
        // stdout and every written artifact stay byte-identical with
        // or without it, at any job count. The ETA smooths per-cell
        // completion times (EWMA) instead of assuming uniform cost, so
        // it tracks grids whose high-load cells run much longer.
        std::function<void(std::size_t, std::size_t)> on_progress;
        auto eta = std::make_shared<EtaEstimator>();
        if (parser.getBool("progress")) {
            eta->start(nowSeconds());
            on_progress = [eta, start](std::size_t done,
                                       std::size_t total) {
                eta->onProgress(nowSeconds(), done);
                const double elapsed =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
                std::cerr << "\rbusarb_sweep: " << done << "/" << total
                          << " cells elapsed="
                          << formatFixed(elapsed, 1) << "s";
                if (eta->primed())
                    std::cerr << " eta="
                              << formatFixed(
                                     eta->etaSeconds(total - done), 1)
                              << "s";
                std::cerr << "   ";
                if (done == total)
                    std::cerr << "\n";
                std::cerr.flush();
            };
        }
        results = runScenarioGrid(grid, jobs, on_progress);
    }
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();

    TextTable table({"load", "protocol", "util", "W", "sigma W",
                     "t_N/t_1", "ms"});
    std::size_t cell = 0;
    for (const auto &token : load_tokens) {
        for (const auto &key : protocol_keys) {
            const ScenarioResult &result = results[cell++];
            if (csv != nullptr) {
                writeSummaryCsvRow(result, "load=" + token, *csv);
            } else {
                table.addRow({
                    token,
                    key,
                    formatFixed(result.utilization().value, 2),
                    formatEstimate(result.meanWait()),
                    formatEstimate(result.waitStddev()),
                    formatEstimate(result.throughputRatio(n, 1)),
                    formatFixed(result.elapsedMs, 0),
                });
            }
        }
    }
    if (csv != nullptr) {
        std::cout << "wrote " << results.size() << " rows to "
                  << parser.getString("csv") << "\n";
    } else {
        table.print(std::cout);
    }
    if (monitor_health) {
        std::size_t idx = 0;
        for (const auto &token : load_tokens) {
            for (const auto &key : protocol_keys) {
                const ScenarioResult &r = results[idx++];
                std::cout << "health[load=" << token << "." << key
                          << "]: ";
                r.health.print(std::cout);
                std::cout << "\n";
            }
        }
    }
    if (!parser.getString("trace-out").empty()) {
        std::ofstream out(parser.getString("trace-out"),
                          std::ios::binary);
        if (!out) {
            std::cerr << "cannot write "
                      << parser.getString("trace-out") << "\n";
            return 1;
        }
        for (const auto &result : results) {
            out.write(
                reinterpret_cast<const char *>(result.binaryTrace.data()),
                static_cast<std::streamsize>(result.binaryTrace.size()));
        }
        if (!out) {
            std::cerr << "error writing "
                      << parser.getString("trace-out") << "\n";
            return 1;
        }
        std::cout << "wrote binary trace (" << results.size()
                  << " chunks) to " << parser.getString("trace-out")
                  << "\n";
    }
    if (!snapshot_path.empty()) {
        // Per-cell snapshot streams (fairness first, then health)
        // concatenated in cell order — byte-identical at any job or
        // shard count.
        std::ofstream out(snapshot_path, std::ios::binary);
        if (!out) {
            std::cerr << "cannot write " << snapshot_path << "\n";
            return 1;
        }
        std::size_t lines = 0;
        const auto count_lines = [](const std::string &s) {
            std::size_t n_lines = 0;
            for (const char c : s)
                if (c == '\n')
                    ++n_lines;
            return n_lines;
        };
        for (const auto &r : results) {
            out << r.fairnessSnapshots << r.healthSnapshots;
            lines += count_lines(r.fairnessSnapshots) +
                     count_lines(r.healthSnapshots);
        }
        if (!out) {
            std::cerr << "error writing " << snapshot_path << "\n";
            return 1;
        }
        std::cout << "wrote " << lines << " snapshot line(s) to "
                  << snapshot_path << "\n";
    }
    if (!parser.getString("metrics-out").empty()) {
        // One prefix per grid cell, in row-emission order.
        MetricsRegistry merged;
        std::size_t idx = 0;
        for (const auto &token : load_tokens) {
            for (const auto &key : protocol_keys) {
                merged.mergeFrom(results[idx++].metrics,
                                 "load=" + token + "." + key + ".");
            }
        }
        // Canonical provenance: identical text for --grid and for the
        // equivalent flag invocation.
        merged.setAnnotation("scenario.spec", spec.format());
        if (!merged.writeFile(parser.getString("metrics-out"))) {
            std::cerr << "cannot write "
                      << parser.getString("metrics-out") << "\n";
            return 1;
        }
        std::cout << "wrote metrics to "
                  << parser.getString("metrics-out") << "\n";
    }
    if (!parser.getString("timing-csv").empty()) {
        // Host wall-clock per cell. Deliberately a separate file from
        // --csv: timing varies run to run while the results CSV must
        // stay byte-identical across job counts.
        std::ofstream out(parser.getString("timing-csv"));
        if (!out) {
            std::cerr << "cannot write "
                      << parser.getString("timing-csv") << "\n";
            return 1;
        }
        out << "label,protocol,elapsed_ms\n";
        std::size_t idx = 0;
        for (const auto &token : load_tokens) {
            for (const auto &key : protocol_keys) {
                out << "load=" << token << "," << key << ","
                    << formatFixed(results[idx++].elapsedMs, 3) << "\n";
            }
        }
        if (!out) {
            std::cerr << "error writing "
                      << parser.getString("timing-csv") << "\n";
            return 1;
        }
        std::cout << "wrote per-cell timing to "
                  << parser.getString("timing-csv") << "\n";
    }
    // Timing goes to stdout, never into the results CSV: that file must
    // stay byte-identical across job counts.
    std::cout << "jobs=" << jobs << " elapsed_ms="
              << formatFixed(elapsed_ms, 0) << "\n";
    if (health_strict) {
        // Exit 3 is reserved for verdict failures, distinct from I/O
        // errors (1) and usage errors (2), so scripts can gate on it.
        std::size_t idx = 0;
        for (const auto &token : load_tokens) {
            for (const auto &key : protocol_keys) {
                const ScenarioResult &r = results[idx++];
                if (r.health.verdict != ConvergenceVerdict::kConverged) {
                    std::cerr << "busarb_sweep: cell load=" << token
                              << "." << key << " is "
                              << r.health.verdictLabel()
                              << " (--health-strict)\n";
                    return 3;
                }
            }
        }
    }
    return 0;
}
