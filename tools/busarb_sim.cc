/**
 * @file
 * busarb_sim — command-line front end to the whole library.
 *
 * Run any protocol on any of the paper's workload families without
 * writing code:
 *
 *   busarb_sim --protocol rr1 --agents 30 --load 2.0
 *   busarb_sim --protocol fcfs1 --agents 10 --load 1.5 --cv 0.5 \
 *              --histogram-csv hist.csv --batches-csv batches.csv
 *   busarb_sim --protocol aap1 --agents 30 --load 7.5 --compare rr1
 *   busarb_sim --protocol rr3 --agents 4 --load 1.0 --trace-events 40
 *   busarb_sim --protocol fcfs2 --agents 16 --load 2.0 --settle-timing
 *   busarb_sim --protocol rr1 --worst-case --agents 10 --cv 0
 *   busarb_sim --protocol rr1 --agents 8 --load 2.0 --trace-out run.trace \
 *              --metrics-out run-metrics.csv
 *   busarb_sim --scenario examples/scenarios/wrr_asymmetric.scenario
 *   busarb_sim --list-protocols
 *
 * Protocol specs are resolved by the protocol registry
 * (experiment/protocol_registry.hh); workloads come from declarative
 * scenario specs (experiment/scenario_spec.hh), built either from a
 * --scenario file or from the individual flags.
 */

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bus/trace.hh"
#include "experiment/cli.hh"
#include "obs/metrics_registry.hh"
#include "experiment/job_pool.hh"
#include "experiment/csv.hh"
#include "experiment/protocol_registry.hh"
#include "experiment/report.hh"
#include "experiment/workload_registry.hh"
#include "experiment/runner.hh"
#include "experiment/scenario_spec.hh"
#include "experiment/table.hh"
#include "workload/scenario.hh"

using namespace busarb;

int
main(int argc, char **argv)
{
    ArgParser parser("busarb_sim",
                     "simulate multiprocessor bus arbitration protocols "
                     "(Vernon & Manber, ISCA 1988)");
    parser.addStringFlag("protocol", "rr1",
                         "protocol spec (see --list-protocols), e.g. "
                         "rr:impl=3, "
                         "fcfs:strategy=increment_on_lose,counter_bits=8,"
                         " fcfs2:window=0.05,bits=3,wrap, rr1:priority, "
                         "or wrr:weights=4/1/1/1");
    parser.addStringFlag("compare", "",
                         "second protocol to run on the same workload");
    parser.addBoolFlag("list-protocols", false,
                       "print the protocol catalogue (keys, parameters, "
                       "defaults, paper sections) and exit");
    parser.addBoolFlag("list-workloads", false,
                       "print the workload-source catalogue (keys, "
                       "parameters, defaults) and exit");
    addScenarioFlags(parser);
    addQueueFlag(parser);
    parser.addStringFlag("batches-csv", "",
                         "write per-batch measurements to this file");
    parser.addStringFlag("histogram-csv", "",
                         "write the waiting-time histogram to this file");
    parser.addIntFlag("trace-events", 0,
                      "print the first K bus events as a timeline");
    parser.addStringFlag("trace-out", "",
                         "capture a binary event trace of every run to "
                         "this file (decode with busarb_trace)");
    parser.addStringFlag("metrics-out", "",
                         "write merged run metrics to this file (.json "
                         "for JSON, anything else for CSV)");
    parser.addIntFlag("flight-recorder", 0,
                      "retain the last M bus events and dump them to "
                      "stderr if a run panics (0 disables)");
    parser.addBoolFlag("fairness", false,
                       "attach the fairness auditor: per-agent bypass "
                       "counts with N-1 bound checking, starvation "
                       "watchdog, Jain indices (fairness.* metrics)");
    parser.addDoubleFlag("fairness-window", 50.0,
                         "fairness window width, transaction units");
    parser.addIntFlag("bypass-bound", 0,
                      "audited bypass bound per grant (0 = the paper's "
                      "RR guarantee, N-1)");
    parser.addStringFlag("snapshot-out", "",
                         "write deterministic fairness snapshots (JSONL, "
                         "byte-identical at any --jobs) to this file; "
                         "requires --snapshot-every");
    parser.addDoubleFlag("snapshot-every", 0.0,
                         "snapshot interval in simulated transaction "
                         "units; requires --snapshot-out");
    parser.addBoolFlag("health", false,
                       "attach the run-health monitor: batch-means "
                       "convergence diagnostics (relative CI half-width, "
                       "lag-1 autocorrelation, MSER warm-up detection) "
                       "with a per-run verdict and health.* metrics");
    parser.addBoolFlag("health-strict", false,
                       "like --health, but exit with status 3 if any "
                       "run's verdict is not 'converged'");
    parser.addDoubleFlag("health-rel-hw", 0.05,
                         "relative CI half-width target (the paper's "
                         "\"within 5%\")");
    parser.addDoubleFlag("health-lag1", 0.3,
                         "|lag-1| autocorrelation threshold for "
                         "batch-mean independence");
    parser.addBoolFlag("profile", false,
                       "print a per-run self-profile (events/sec, "
                       "per-phase wall-clock, queue depth) to stderr "
                       "and export profile.* metrics");
    parser.addIntFlag("jobs", 0,
                      "parallel scenario jobs for --compare runs (0 = "
                      "one per hardware thread); results are identical "
                      "at any job count");
    if (!parser.parse(argc, argv))
        return parser.exitCode();
    if (parser.getBool("list-protocols")) {
        ProtocolRegistry::builtin().printTable(std::cout);
        return 0;
    }
    if (parser.getBool("list-workloads")) {
        WorkloadRegistry::builtin().printTable(std::cout);
        return 0;
    }

    // Artifact destinations are validated before the run: a missing
    // parent directory fails in seconds, not after the simulation.
    for (const char *flag : {"batches-csv", "histogram-csv", "trace-out",
                             "metrics-out", "snapshot-out"})
        requireParentDirOrExit("busarb_sim", flag,
                               parser.getString(flag));

    const ScenarioSpec spec = scenarioSpecFromFlags("busarb_sim", parser);
    if (spec.loadTokens.size() > 1) {
        std::cerr << "busarb_sim: scenario sweeps " << spec.loadTokens.size()
                  << " loads; busarb_sim runs one (use busarb_sweep "
                     "--grid for grids)\n";
        return 2;
    }

    // One or two protocol specs: from the scenario file when it names
    // any, otherwise from --protocol/--compare. Mixing the two sources
    // would leave the file no longer describing the run.
    std::vector<std::string> protocol_specs = spec.protocolSpecs;
    if (!protocol_specs.empty() &&
        (parser.wasSet("protocol") || parser.wasSet("compare"))) {
        std::cerr << "busarb_sim: --protocol/--compare conflict with "
                     "the scenario file's [protocol]/[sweep] entries\n";
        return 2;
    }
    if (protocol_specs.empty()) {
        protocol_specs.push_back(parser.getString("protocol"));
        if (!parser.getString("compare").empty())
            protocol_specs.push_back(parser.getString("compare"));
    }
    if (protocol_specs.size() > 2) {
        std::cerr << "busarb_sim: scenario names "
                  << protocol_specs.size()
                  << " protocols; busarb_sim runs at most two (use "
                     "busarb_sweep --grid for grids)\n";
        return 2;
    }

    ScenarioConfig config = spec.configForLoad(
        spec.loadAxis().empty() ? "" : spec.loadAxis().front());
    // Pre-run workload validation (trace readability, length vs run
    // controls): a doomed run exits 2 here instead of dying mid-run.
    const std::string workload_error = validateWorkloadRun(config);
    if (!workload_error.empty()) {
        std::cerr << "busarb_sim: " << workload_error << "\n";
        return 2;
    }
    config.collectHistogram = !parser.getString("histogram-csv").empty();
    config.captureBinaryTrace = !parser.getString("trace-out").empty();
    config.flightRecorderEvents = static_cast<std::size_t>(
        std::max(0L, parser.getInt("flight-recorder")));
    const std::string snapshot_path = parser.getString("snapshot-out");
    const double snapshot_every = parser.getDouble("snapshot-every");
    const bool health_strict = parser.getBool("health-strict");
    config.monitorHealth = parser.getBool("health") || health_strict;
    if (snapshot_path.empty() && snapshot_every > 0.0) {
        std::cerr << "busarb_sim: --snapshot-every requires "
                     "--snapshot-out\n";
        return 2;
    }
    if (!snapshot_path.empty() && snapshot_every <= 0.0 &&
        !config.monitorHealth) {
        std::cerr << "busarb_sim: --snapshot-out requires "
                     "--snapshot-every and/or --health\n";
        return 2;
    }
    config.healthSnapshots =
        config.monitorHealth && !snapshot_path.empty();
    config.healthRelHwTarget = parser.getDouble("health-rel-hw");
    config.healthLag1Threshold = parser.getDouble("health-lag1");
    config.profile = parser.getBool("profile");
    config.eventQueuePolicy = queuePolicyOrExit("busarb_sim", parser);
    config.auditFairness =
        parser.getBool("fairness") || snapshot_every > 0.0;
    config.fairnessWindowUnits = parser.getDouble("fairness-window");
    config.bypassBound = static_cast<int>(parser.getInt("bypass-bound"));
    config.snapshotEveryUnits = snapshot_every;
    if (config.auditFairness && config.fairnessWindowUnits <= 0.0) {
        std::cerr << "busarb_sim: --fairness-window must be > 0\n";
        return 2;
    }

    if (protocol_specs.size() == 2 &&
        protocol_specs[0] == protocol_specs[1]) {
        // Identical specs would collide under the protocol-name
        // metric prefix (and tell the reader nothing anyway).
        std::cerr << "busarb_sim: comparison runs need two different "
                     "protocol specs, got '"
                  << protocol_specs[0] << "' twice\n";
        return 2;
    }
    // Resolve specs before any output so usage errors stay clean.
    std::vector<ProtocolFactory> factories;
    for (const auto &text : protocol_specs)
        factories.push_back(protocolFactoryOrExit("busarb_sim", text));

    const auto trace_events = parser.getInt("trace-events");
    std::unique_ptr<TextTracer> tracer;
    if (trace_events > 0) {
        std::cout << "timeline of the first " << trace_events
                  << " bus events:\n\n";
        tracer = std::make_unique<TextTracer>(
            std::cout, static_cast<std::uint64_t>(trace_events));
        config.tracer = tracer.get();
    }

    std::cout << "busarb_sim: " << describeScenario(config) << "\n\n";

    std::vector<GridJob> grid;
    for (std::size_t i = 0; i < protocol_specs.size(); ++i)
        grid.push_back({config, factories[i], protocol_specs[i]});

    // A tracer writes to a shared stream while the simulation runs, so
    // traced runs must stay serial; plain runs fan out.
    const int jobs =
        config.tracer != nullptr
            ? 1
            : resolveJobCount(static_cast<int>(parser.getInt("jobs")));
    const auto start = std::chrono::steady_clock::now();
    const std::vector<ScenarioResult> results =
        runScenarioGrid(grid, jobs);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    const ScenarioResult &result = results.front();

    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i > 0)
            std::cout << "\n";
        printSummary(results[i], std::cout);
    }
    if (result.workload.openLoop) {
        std::cout << "\n";
        for (const auto &r : results) {
            const WorkloadStats &w = r.workload;
            std::cout << "workload[" << r.protocolName
                      << "]: source=" << r.workloadSpec
                      << " issued=" << w.issued
                      << " backlog=" << w.finalBacklog
                      << " offered_rate=" << formatFixed(w.offeredRate, 4)
                      << " carried_rate=" << formatFixed(w.carriedRate, 4)
                      << " saturated=" << (w.saturated ? "yes" : "no")
                      << "\n";
        }
    }
    if (config.auditFairness) {
        std::cout << "\n";
        for (const auto &r : results) {
            // The registry has no const accessors; read from a copy.
            MetricsRegistry m = r.metrics;
            std::cout << "fairness[" << r.protocolName
                      << "]: grants="
                      << m.counter("fairness.grants").value()
                      << " bound_violations="
                      << m.counter("fairness.bound_violations").value()
                      << " max_bypasses="
                      << m.gauge("fairness.max_bypasses").max()
                      << " inversions="
                      << m.counter("fairness.inversions").value()
                      << " jain_completions="
                      << m.gauge("fairness.jain_completions").mean()
                      << " max_starvation="
                      << m.gauge("fairness.max_starvation_units").max()
                      << "\n";
        }
    }
    if (config.monitorHealth) {
        std::cout << "\n";
        for (const auto &r : results) {
            std::cout << "health[" << r.protocolName << "]: ";
            r.health.print(std::cout);
            std::cout << "\n";
        }
    }
    if (config.profile) {
        for (const auto &r : results)
            r.profile.print(r.protocolName, std::cerr);
    }
    std::cout << "\njobs=" << jobs << " elapsed_ms="
              << formatFixed(elapsed_ms, 0) << "\n";

    if (!snapshot_path.empty()) {
        // Per-run snapshot streams (fairness first, then health)
        // concatenated in submission order — byte-identical at any job
        // count.
        std::ofstream out(snapshot_path, std::ios::binary);
        if (!out) {
            std::cerr << "cannot write " << snapshot_path << "\n";
            return 1;
        }
        std::size_t lines = 0;
        const auto count_lines = [](const std::string &s) {
            return static_cast<std::size_t>(
                std::count(s.begin(), s.end(), '\n'));
        };
        for (const auto &r : results) {
            out << r.fairnessSnapshots << r.healthSnapshots;
            lines += count_lines(r.fairnessSnapshots) +
                     count_lines(r.healthSnapshots);
        }
        if (!out) {
            std::cerr << "error writing " << snapshot_path << "\n";
            return 1;
        }
        std::cout << "wrote " << lines << " snapshot line(s) to "
                  << snapshot_path << "\n";
    }

    if (!parser.getString("batches-csv").empty()) {
        std::ofstream out(parser.getString("batches-csv"));
        if (!out) {
            std::cerr << "cannot write "
                      << parser.getString("batches-csv") << "\n";
            return 1;
        }
        writeBatchesCsv(result, out);
        std::cout << "\nwrote per-batch CSV to "
                  << parser.getString("batches-csv") << "\n";
    }
    if (!parser.getString("histogram-csv").empty()) {
        std::ofstream out(parser.getString("histogram-csv"));
        if (!out) {
            std::cerr << "cannot write "
                      << parser.getString("histogram-csv") << "\n";
            return 1;
        }
        writeHistogramCsv(result, out);
        std::cout << "wrote waiting-time histogram CSV to "
                  << parser.getString("histogram-csv") << "\n";
    }
    if (!parser.getString("trace-out").empty()) {
        // One self-contained chunk per run, concatenated in submission
        // order — byte-identical at any job count.
        std::ofstream out(parser.getString("trace-out"),
                          std::ios::binary);
        if (!out) {
            std::cerr << "cannot write "
                      << parser.getString("trace-out") << "\n";
            return 1;
        }
        std::size_t bytes = 0;
        for (const auto &r : results) {
            out.write(reinterpret_cast<const char *>(
                          r.binaryTrace.data()),
                      static_cast<std::streamsize>(r.binaryTrace.size()));
            bytes += r.binaryTrace.size();
        }
        if (!out) {
            std::cerr << "error writing "
                      << parser.getString("trace-out") << "\n";
            return 1;
        }
        std::cout << "wrote binary trace (" << results.size()
                  << " chunk(s), " << bytes << " bytes) to "
                  << parser.getString("trace-out") << "\n";
    }
    if (!parser.getString("metrics-out").empty()) {
        // Merge per-run registries in submission order, prefixed by
        // protocol so a --compare run keeps the two apart. Two specs
        // can resolve to one protocol name (e.g. option variants that
        // do not change it); catch that before the merge panics.
        if (results.size() == 2 &&
            results[0].protocolName == results[1].protocolName) {
            std::cerr << "busarb_sim: --protocol and --compare resolve "
                         "to the same name '"
                      << results[0].protocolName
                      << "'; their metrics would collide\n";
            return 2;
        }
        MetricsRegistry merged;
        for (const auto &r : results)
            merged.mergeFrom(r.metrics, r.protocolName + ".");
        // Canonical provenance: the same annotation text whether the
        // run came from flags or from a scenario file.
        merged.setAnnotation("scenario.spec", spec.format());
        if (!merged.writeFile(parser.getString("metrics-out"))) {
            std::cerr << "cannot write "
                      << parser.getString("metrics-out") << "\n";
            return 1;
        }
        std::cout << "wrote metrics to "
                  << parser.getString("metrics-out") << "\n";
    }
    if (health_strict) {
        // Exit 3 is reserved for verdict failures, distinct from I/O
        // errors (1) and usage errors (2), so scripts can gate on it.
        for (const auto &r : results) {
            if (r.health.verdict != ConvergenceVerdict::kConverged) {
                std::cerr << "busarb_sim: run '" << r.protocolName
                          << "' is " << r.health.verdictLabel()
                          << " (--health-strict)\n";
                return 3;
            }
        }
    }
    return 0;
}
