/**
 * @file
 * busarb_report — run one scenario and render a self-contained run
 * report (markdown or HTML) with the convergence verdict up top,
 * followed by the summary estimates, per-batch measurements, latency
 * breakdown, fairness audit, and the full metrics export.
 *
 * The report is a pure function of the scenario configuration (seed
 * included), so a fixed command line reproduces the file byte for
 * byte:
 *
 *   busarb_report --protocol rr1 --agents 10 --load 2.0 --out run.html
 *   busarb_report --protocol fcfs1 --agents 30 --load 7.5 \
 *                 --format md --out run.md
 */

#include <fstream>
#include <iostream>
#include <string>

#include "experiment/cli.hh"
#include "experiment/protocols.hh"
#include "experiment/run_report.hh"
#include "experiment/runner.hh"
#include "workload/scenario.hh"

using namespace busarb;

int
main(int argc, char **argv)
{
    ArgParser parser("busarb_report",
                     "render a self-contained run report (markdown or "
                     "HTML) for one scenario run");
    parser.addStringFlag("protocol", "rr1",
                         "protocol spec (same grammar as busarb_sim)");
    parser.addIntFlag("agents", 10, "number of agents (1..N)");
    parser.addDoubleFlag("load", 2.0, "total offered load");
    parser.addDoubleFlag("cv", 1.0,
                         "inter-request coefficient of variation");
    parser.addBoolFlag("worst-case", false,
                       "use the Table 4.5 just-miss workload instead of "
                       "equal loads");
    parser.addDoubleFlag("unequal-factor", 0.0,
                         "agent 1's load multiplier (Table 4.4); 0 "
                         "disables");
    parser.addIntFlag("batches", 10, "measurement batches");
    parser.addIntFlag("batch-size", 8000, "completions per batch");
    parser.addIntFlag("warmup", 8000, "warm-up completions discarded");
    parser.addIntFlag("seed", 0x5eedcafe, "random seed");
    parser.addDoubleFlag("arb-overhead", 0.5,
                         "arbitration overhead, transaction times");
    parser.addDoubleFlag("snapshot-every", 0.0,
                         "also embed fairness snapshots at this "
                         "simulated-time interval (0 disables)");
    parser.addBoolFlag("no-trace", false,
                       "skip the binary trace capture (drops the "
                       "latency-breakdown section; faster for large "
                       "runs)");
    parser.addStringFlag("format", "",
                         "report format: md or html (default: by --out "
                         "extension, .html for HTML, markdown "
                         "otherwise)");
    parser.addStringFlag("out", "",
                         "output file; '-' writes to stdout (required)");
    if (!parser.parse(argc, argv))
        return parser.exitCode();

    const std::string out_path = parser.getString("out");
    if (out_path.empty()) {
        std::cerr << "busarb_report: --out is required\n";
        return 2;
    }
    RunReportFormat format = RunReportFormat::kMarkdown;
    const std::string format_arg = parser.getString("format");
    if (format_arg == "html") {
        format = RunReportFormat::kHtml;
    } else if (format_arg == "md" || format_arg == "markdown") {
        format = RunReportFormat::kMarkdown;
    } else if (format_arg.empty()) {
        if (out_path.size() >= 5 &&
            out_path.compare(out_path.size() - 5, 5, ".html") == 0)
            format = RunReportFormat::kHtml;
    } else {
        std::cerr << "busarb_report: --format must be md or html, got '"
                  << format_arg << "'\n";
        return 2;
    }

    const int n = static_cast<int>(parser.getInt("agents"));
    const double load = parser.getDouble("load");
    const double cv = parser.getDouble("cv");
    const double factor = parser.getDouble("unequal-factor");

    ScenarioConfig config;
    if (parser.getBool("worst-case")) {
        config = worstCaseRrScenario(n, cv);
    } else if (factor > 0.0) {
        config = unequalLoadScenario(n, load / n, factor, cv);
    } else {
        config = equalLoadScenario(n, load, cv);
    }
    config.numBatches = static_cast<int>(parser.getInt("batches"));
    config.batchSize =
        static_cast<std::uint64_t>(parser.getInt("batch-size"));
    config.warmup = static_cast<std::uint64_t>(parser.getInt("warmup"));
    config.seed = static_cast<std::uint64_t>(parser.getInt("seed"));
    config.bus.arbitrationOverhead = parser.getDouble("arb-overhead");

    // A report is the run's full observability surface: health verdict,
    // snapshots, fairness audit, and (unless suppressed) the trace the
    // latency breakdown is computed from.
    config.monitorHealth = true;
    config.healthSnapshots = true;
    config.auditFairness = true;
    config.snapshotEveryUnits = parser.getDouble("snapshot-every");
    config.captureBinaryTrace = !parser.getBool("no-trace");

    const ScenarioResult result =
        runScenario(config, protocolFromSpec(parser.getString("protocol")));

    if (out_path == "-") {
        writeRunReport(config, result, format, std::cout);
        return 0;
    }
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    writeRunReport(config, result, format, out);
    if (!out) {
        std::cerr << "error writing " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote "
              << (format == RunReportFormat::kHtml ? "HTML" : "markdown")
              << " report (" << result.protocolName << ", verdict "
              << result.health.verdictLabel() << ") to " << out_path
              << "\n";
    return 0;
}
