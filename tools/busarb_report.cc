/**
 * @file
 * busarb_report — run one scenario and render a self-contained run
 * report (markdown or HTML) with the convergence verdict up top,
 * followed by the summary estimates, per-batch measurements, latency
 * breakdown, fairness audit, and the full metrics export.
 *
 * The report is a pure function of the scenario configuration (seed
 * included), so a fixed command line reproduces the file byte for
 * byte:
 *
 *   busarb_report --protocol rr1 --agents 10 --load 2.0 --out run.html
 *   busarb_report --protocol fcfs1 --agents 30 --load 7.5 \
 *                 --format md --out run.md
 *   busarb_report --scenario examples/scenarios/wrr_asymmetric.scenario \
 *                 --out wrr.md
 *
 * The workload comes from the same declarative scenario seam as
 * busarb_sim (experiment/scenario_spec.hh); the canonical spec text is
 * embedded in the report, so any report can be replayed.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "experiment/cli.hh"
#include "experiment/protocol_registry.hh"
#include "experiment/run_report.hh"
#include "experiment/runner.hh"
#include "experiment/scenario_spec.hh"
#include "experiment/workload_registry.hh"
#include "workload/scenario.hh"

using namespace busarb;

int
main(int argc, char **argv)
{
    ArgParser parser("busarb_report",
                     "render a self-contained run report (markdown or "
                     "HTML) for one scenario run");
    parser.addStringFlag("protocol", "rr1",
                         "protocol spec (same grammar as busarb_sim)");
    addScenarioFlags(parser);
    parser.addDoubleFlag("snapshot-every", 0.0,
                         "also embed fairness snapshots at this "
                         "simulated-time interval (0 disables)");
    parser.addBoolFlag("no-trace", false,
                       "skip the binary trace capture (drops the "
                       "latency-breakdown section; faster for large "
                       "runs)");
    parser.addStringFlag("format", "",
                         "report format: md or html (default: by --out "
                         "extension, .html for HTML, markdown "
                         "otherwise)");
    parser.addStringFlag("out", "",
                         "output file; '-' writes to stdout (required)");
    if (!parser.parse(argc, argv))
        return parser.exitCode();

    const std::string out_path = parser.getString("out");
    if (out_path.empty()) {
        std::cerr << "busarb_report: --out is required\n";
        return 2;
    }
    if (out_path != "-")
        requireParentDirOrExit("busarb_report", "out", out_path);
    RunReportFormat format = RunReportFormat::kMarkdown;
    const std::string format_arg = parser.getString("format");
    if (format_arg == "html") {
        format = RunReportFormat::kHtml;
    } else if (format_arg == "md" || format_arg == "markdown") {
        format = RunReportFormat::kMarkdown;
    } else if (format_arg.empty()) {
        if (out_path.size() >= 5 &&
            out_path.compare(out_path.size() - 5, 5, ".html") == 0)
            format = RunReportFormat::kHtml;
    } else {
        std::cerr << "busarb_report: --format must be md or html, got '"
                  << format_arg << "'\n";
        return 2;
    }

    const ScenarioSpec spec =
        scenarioSpecFromFlags("busarb_report", parser);
    if (spec.loadTokens.size() > 1) {
        std::cerr << "busarb_report: scenario sweeps "
                  << spec.loadTokens.size()
                  << " loads; a report covers one run\n";
        return 2;
    }
    std::vector<std::string> protocol_specs = spec.protocolSpecs;
    if (!protocol_specs.empty() && parser.wasSet("protocol")) {
        std::cerr << "busarb_report: --protocol conflicts with the "
                     "scenario file's [protocol]/[sweep] entries\n";
        return 2;
    }
    if (protocol_specs.empty())
        protocol_specs.push_back(parser.getString("protocol"));
    if (protocol_specs.size() > 1) {
        std::cerr << "busarb_report: scenario names "
                  << protocol_specs.size()
                  << " protocols; a report covers one run\n";
        return 2;
    }

    ScenarioConfig config = spec.configForLoad(
        spec.loadAxis().empty() ? "" : spec.loadAxis().front());
    const std::string workload_error = validateWorkloadRun(config);
    if (!workload_error.empty()) {
        std::cerr << "busarb_report: " << workload_error << "\n";
        return 2;
    }

    // A report is the run's full observability surface: health verdict,
    // snapshots, fairness audit, and (unless suppressed) the trace the
    // latency breakdown is computed from.
    config.monitorHealth = true;
    config.healthSnapshots = true;
    config.auditFairness = true;
    config.snapshotEveryUnits = parser.getDouble("snapshot-every");
    config.captureBinaryTrace = !parser.getBool("no-trace");

    const ScenarioResult result = runScenario(
        config,
        protocolFactoryOrExit("busarb_report", protocol_specs.front()));

    if (out_path == "-") {
        writeRunReport(config, result, format, std::cout,
                       spec.format());
        return 0;
    }
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    writeRunReport(config, result, format, out, spec.format());
    if (!out) {
        std::cerr << "error writing " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote "
              << (format == RunReportFormat::kHtml ? "HTML" : "markdown")
              << " report (" << result.protocolName << ", verdict "
              << result.health.verdictLabel() << ") to " << out_path
              << "\n";
    return 0;
}
