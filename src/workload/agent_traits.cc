#include "workload/agent_traits.hh"

#include "sim/logging.hh"

namespace busarb {

double
interrequestForLoad(double offered_load, double transaction_time)
{
    BUSARB_ASSERT(offered_load > 0.0 && offered_load < 1.0,
                  "offered load must be in (0, 1), got ", offered_load);
    BUSARB_ASSERT(transaction_time > 0.0,
                  "transaction time must be positive");
    return transaction_time * (1.0 - offered_load) / offered_load;
}

double
loadForInterrequest(double mean_interrequest, double transaction_time)
{
    BUSARB_ASSERT(mean_interrequest >= 0.0,
                  "mean inter-request time must be >= 0");
    BUSARB_ASSERT(transaction_time > 0.0,
                  "transaction time must be positive");
    return transaction_time / (transaction_time + mean_interrequest);
}

} // namespace busarb
