#include "workload/workload_source.hh"

#include <utility>

#include "random/rng.hh"
#include "sim/logging.hh"
#include "workload/scenario.hh"

namespace busarb {

// ----------------------------------------------------------------- closed

ClosedWorkloadSource::ClosedWorkloadSource(EventQueue &queue, Bus &bus,
                                           const ScenarioConfig &config,
                                           ThinkFactory think)
{
    // This loop is the historical runner wiring, verbatim: agents are
    // constructed in id order, each forking the base stream at its own
    // id, so `source=closed` runs are byte-identical to pre-seam runs.
    Rng base(config.seed);
    agents_.reserve(static_cast<std::size_t>(config.numAgents));
    for (AgentId a = 1; a <= config.numAgents; ++a) {
        const AgentTraits &traits =
            config.agents[static_cast<std::size_t>(a - 1)];
        Rng rng = base.fork(static_cast<std::uint64_t>(a));
        if (think) {
            agents_.push_back(std::make_unique<ClosedAgent>(
                queue, bus, a, traits, std::move(rng),
                think(a, traits)));
        } else {
            agents_.push_back(std::make_unique<ClosedAgent>(
                queue, bus, a, traits, std::move(rng)));
        }
    }
}

void
ClosedWorkloadSource::start()
{
    for (auto &agent : agents_)
        agent->start();
}

void
ClosedWorkloadSource::onServiceEnd(AgentId agent, Tick now)
{
    agents_[static_cast<std::size_t>(agent - 1)]->onServiceEnd(now);
}

void
ClosedWorkloadSource::setThinkSink(ThinkSink *sink)
{
    for (auto &agent : agents_)
        agent->setThinkSink(sink);
}

std::uint64_t
ClosedWorkloadSource::issued() const
{
    std::uint64_t total = 0;
    for (const auto &agent : agents_)
        total += agent->issued();
    return total;
}

std::uint64_t
ClosedWorkloadSource::issuedBy(AgentId agent) const
{
    return agents_[static_cast<std::size_t>(agent - 1)]->issued();
}

// ------------------------------------------------------------------- open

OpenWorkloadSource::OpenWorkloadSource(EventQueue &queue, Bus &bus,
                                       const ScenarioConfig &config,
                                       ArrivalFactory arrivals)
    : queue_(queue), bus_(bus)
{
    BUSARB_ASSERT(static_cast<bool>(arrivals),
                  "open workload source needs an arrival factory");
    Rng base(config.seed);
    agents_.reserve(static_cast<std::size_t>(config.numAgents));
    for (AgentId a = 1; a <= config.numAgents; ++a) {
        const AgentTraits &traits =
            config.agents[static_cast<std::size_t>(a - 1)];
        Agent agent{a, traits, base.fork(static_cast<std::uint64_t>(a)),
                    arrivals(a, traits), 0};
        BUSARB_ASSERT(agent.arrivals != nullptr,
                      "null arrival process for agent ", a);
        agents_.push_back(std::move(agent));
    }
}

void
OpenWorkloadSource::start()
{
    for (auto &agent : agents_)
        scheduleArrival(agent);
}

void
OpenWorkloadSource::scheduleArrival(Agent &agent)
{
    const double gap = agent.arrivals->sample(agent.rng);
    queue_.scheduleIn(unitsToTicks(gap),
                      [this, &agent] { arrive(agent); },
                      kPriRequestArrival);
}

void
OpenWorkloadSource::arrive(Agent &agent)
{
    if (agent.traits.stopAfterRequests != 0 &&
        agent.issued >= agent.traits.stopAfterRequests) {
        return; // the device has dropped off the bus
    }
    const bool priority =
        agent.traits.priorityFraction > 0.0 &&
        agent.rng.uniform() < agent.traits.priorityFraction;
    ++agent.issued;
    ++issued_;
    bus_.postRequest(agent.id, priority);
    scheduleArrival(agent);
}

void
OpenWorkloadSource::onServiceEnd(AgentId agent, Tick now)
{
    // Open loop: arrivals never react to service.
    (void)agent;
    (void)now;
}

std::uint64_t
OpenWorkloadSource::issuedBy(AgentId agent) const
{
    return agents_[static_cast<std::size_t>(agent - 1)].issued;
}

// ------------------------------------------------------------------ trace

TraceWorkloadSource::TraceWorkloadSource(EventQueue &queue, Bus &bus,
                                         RequestTrace trace)
    : queue_(queue), bus_(bus), trace_(std::move(trace)),
      issuedBy_(static_cast<std::size_t>(bus.numAgents()), 0)
{
    BUSARB_ASSERT(trace_.maxAgent() <= bus.numAgents(),
                  "trace references agent ", trace_.maxAgent(),
                  " but the bus has only ", bus.numAgents());
}

void
TraceWorkloadSource::start()
{
    for (const auto &entry : trace_.entries()) {
        queue_.schedule(entry.when,
                        [this, entry] {
                            ++issued_;
                            ++issuedBy_[static_cast<std::size_t>(
                                entry.agent - 1)];
                            bus_.postRequest(entry.agent,
                                             entry.priority);
                        },
                        kPriRequestArrival);
    }
}

void
TraceWorkloadSource::onServiceEnd(AgentId agent, Tick now)
{
    (void)agent;
    (void)now;
}

std::uint64_t
TraceWorkloadSource::issuedBy(AgentId agent) const
{
    return issuedBy_[static_cast<std::size_t>(agent - 1)];
}

} // namespace busarb
