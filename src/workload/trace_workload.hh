/**
 * @file
 * Trace-driven (open-loop) workload.
 *
 * The paper's fairness findings were corroborated by a trace simulation
 * study [EgGi87]. This module replays a fixed schedule of bus requests
 * — from a file, a programmatic list, or a synthetic generator — so
 * protocols can be compared on identical request sequences, open-loop
 * (arrival times do not react to bus delays, unlike ClosedAgent).
 *
 * Trace format (text, one request per line):
 *     <time-in-transaction-units> <agent-id> [p]
 * '#' starts a comment; blank lines are ignored; times must be
 * non-decreasing. The trailing 'p' marks a priority request.
 */

#ifndef BUSARB_WORKLOAD_TRACE_WORKLOAD_HH
#define BUSARB_WORKLOAD_TRACE_WORKLOAD_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "bus/bus.hh"
#include "random/rng.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace busarb {

/** One trace record. */
struct TraceEntry
{
    Tick when = 0;
    AgentId agent = kNoAgent;
    bool priority = false;

    bool
    operator==(const TraceEntry &other) const
    {
        return when == other.when && agent == other.agent &&
               priority == other.priority;
    }
};

/** An ordered bus-request trace. */
class RequestTrace
{
  public:
    RequestTrace() = default;

    /** Append one record; times must be non-decreasing. */
    void append(Tick when, AgentId agent, bool priority = false);

    /** @return All records, in time order. */
    const std::vector<TraceEntry> &entries() const { return entries_; }

    /** @return Number of records. */
    std::size_t size() const { return entries_.size(); }

    /** @return True when the trace has no records. */
    bool empty() const { return entries_.empty(); }

    /** @return Largest agent id referenced (0 if empty). */
    AgentId maxAgent() const { return maxAgent_; }

    /**
     * Parse a trace from a stream (format in the file header).
     *
     * @param is Input stream.
     * @return The parsed trace; fatal error on malformed input.
     */
    static RequestTrace parse(std::istream &is);

    /** Serialize in the parseable text format. */
    void write(std::ostream &os) const;

    /**
     * Generate a synthetic Poisson trace.
     *
     * @param num_agents Agents 1..N, equal rates.
     * @param total_rate Aggregate request rate (requests per unit).
     * @param length Trace duration in transaction units.
     * @param rng Randomness source.
     * @return Trace with exponential inter-arrivals, uniform agents.
     */
    static RequestTrace poisson(int num_agents, double total_rate,
                                double length, Rng rng);

  private:
    std::vector<TraceEntry> entries_;
    AgentId maxAgent_ = 0;
};

/**
 * Replays a RequestTrace into a Bus (open loop).
 */
class TracePlayer
{
  public:
    /**
     * @param queue Simulation event queue.
     * @param bus Target bus; must have at least trace.maxAgent() agents.
     * @param trace The schedule to replay (copied).
     */
    TracePlayer(EventQueue &queue, Bus &bus, RequestTrace trace);

    /** Schedule every trace record; call once before running. */
    void start();

    /** @return Requests injected so far. */
    std::size_t injected() const { return injected_; }

    /** @return Total records in the trace. */
    std::size_t total() const { return trace_.size(); }

  private:
    EventQueue &queue_;
    Bus &bus_;
    RequestTrace trace_;
    std::size_t injected_ = 0;
};

} // namespace busarb

#endif // BUSARB_WORKLOAD_TRACE_WORKLOAD_HH
