/**
 * @file
 * A two-state (ON/OFF) modulated think-time process.
 *
 * The paper's workloads are renewal processes (iid inter-request
 * times, CV in [0, 1]). Real processors alternate between bus-hungry
 * phases (cache-miss bursts, block copies) and quiet phases. This
 * process models that: think times are exponential with a short mean
 * while the source is ON and a long mean while OFF, and the state
 * persists for geometrically many requests — producing *correlated*
 * inter-request times (positive lag-1 autocorrelation), which no iid
 * CV setting can express. Section 5's "adaptive scheme that uses the
 * history of request patterns" is motivated by exactly such traffic.
 *
 * The object is stateful: successive sample() calls walk the chain.
 * clone() returns a fresh process in the stationary initial state.
 */

#ifndef BUSARB_WORKLOAD_ON_OFF_PROCESS_HH
#define BUSARB_WORKLOAD_ON_OFF_PROCESS_HH

#include <memory>
#include <string>

#include "random/distributions.hh"

namespace busarb {

/** Parameters of the ON/OFF think process. */
struct OnOffParams
{
    /** Mean think time while ON (bursting); > 0. */
    double meanOn = 0.2;

    /** Mean think time while OFF (quiet); > 0. */
    double meanOff = 10.0;

    /** Expected number of requests per ON burst; >= 1. */
    double burstLength = 8.0;

    /** Expected number of requests per OFF stretch; >= 1. */
    double gapLength = 2.0;
};

/**
 * Markov-modulated think-time process (two exponential phases).
 */
class OnOffProcess : public Distribution
{
  public:
    explicit OnOffProcess(const OnOffParams &params);

    /** Draw the next (correlated) think time and advance the chain. */
    double sample(Rng &rng) const override;

    /** @return The long-run mean think time. */
    double mean() const override;

    /** @return Coefficient of variation of the stationary marginal. */
    double cv() const override;

    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    /** @return True while the process is in the ON (bursting) state. */
    bool isOn() const { return on_; }

  private:
    OnOffParams params_;
    mutable bool on_ = true;

    /** Stationary probability of drawing a sample in the ON state. */
    double onFraction() const;
};

} // namespace busarb

#endif // BUSARB_WORKLOAD_ON_OFF_PROCESS_HH
