/**
 * @file
 * A two-state Markov-modulated Poisson inter-arrival process (MMPP-2).
 *
 * Where OnOffProcess modulates *think* times by request count (a
 * closed-loop notion), this process modulates an *arrival rate* by
 * dwell time: the source alternates between an ON phase with a high
 * Poisson rate and an OFF phase with a low rate, with exponentially
 * distributed phase durations. Successive sample() calls return the
 * (correlated) inter-arrival times of the resulting point process —
 * the canonical bursty-traffic model for open-loop sources.
 *
 * The object is stateful: successive sample() calls walk the phase
 * chain. clone() returns a fresh process in the initial (ON) state.
 */

#ifndef BUSARB_WORKLOAD_MMPP_PROCESS_HH
#define BUSARB_WORKLOAD_MMPP_PROCESS_HH

#include <memory>
#include <string>

#include "random/distributions.hh"

namespace busarb {

/** Parameters of the two-state MMPP. */
struct MmppParams
{
    /** Arrival rate while ON (bursting); > 0, per transaction unit. */
    double rateOn = 1.0;

    /** Arrival rate while OFF (quiet); >= 0, per transaction unit. */
    double rateOff = 0.1;

    /** Mean ON-phase duration in transaction units; > 0. */
    double meanOnTime = 8.0;

    /** Mean OFF-phase duration in transaction units; > 0. */
    double meanOffTime = 32.0;
};

/**
 * MMPP-2 inter-arrival time process.
 */
class MmppProcess : public Distribution
{
  public:
    explicit MmppProcess(const MmppParams &params);

    /** Draw the next inter-arrival time and advance the phase chain. */
    double sample(Rng &rng) const override;

    /** @return The long-run mean inter-arrival time. */
    double mean() const override;

    /**
     * @return Approximate marginal CV (hyperexponential limit that
     *         ignores phase changes between arrivals).
     */
    double cv() const override;

    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    /** @return True while the process is in the ON phase. */
    bool isOn() const { return on_; }

    /** @return Time-average arrival rate. */
    double averageRate() const;

  private:
    MmppParams params_;
    mutable bool on_ = true;
};

} // namespace busarb

#endif // BUSARB_WORKLOAD_MMPP_PROCESS_HH
