#include "workload/scenario.hh"

#include "sim/logging.hh"

namespace busarb {

double
ScenarioConfig::totalOfferedLoad() const
{
    double total = 0.0;
    for (const auto &a : agents) {
        total += loadForInterrequest(a.meanInterrequest,
                                     bus.transactionTime);
    }
    return total;
}

ScenarioConfig
equalLoadScenario(int num_agents, double total_load, double cv)
{
    BUSARB_ASSERT(num_agents >= 1, "need at least one agent");
    const double per_agent = total_load / num_agents;
    BUSARB_ASSERT(per_agent > 0.0 && per_agent < 1.0,
                  "per-agent load must be in (0, 1), got ", per_agent);
    ScenarioConfig config;
    config.numAgents = num_agents;
    AgentTraits traits;
    traits.meanInterrequest = interrequestForLoad(per_agent);
    traits.cv = cv;
    config.agents.assign(static_cast<std::size_t>(num_agents), traits);
    return config;
}

ScenarioConfig
unequalLoadScenario(int num_agents, double base_load, double factor,
                    double cv)
{
    BUSARB_ASSERT(num_agents >= 2, "need at least two agents");
    BUSARB_ASSERT(base_load > 0.0 && base_load * factor < 1.0,
                  "loads out of range: base=", base_load, " factor=",
                  factor);
    ScenarioConfig config;
    config.numAgents = num_agents;
    AgentTraits regular;
    regular.meanInterrequest = interrequestForLoad(base_load);
    regular.cv = cv;
    AgentTraits fast = regular;
    fast.meanInterrequest = interrequestForLoad(base_load * factor);
    config.agents.assign(static_cast<std::size_t>(num_agents), regular);
    config.agents[0] = fast; // agent 1 is the higher-rate requester
    return config;
}

ScenarioConfig
worstCaseRrScenario(int num_agents, double cv)
{
    BUSARB_ASSERT(num_agents >= 5, "scenario needs n - 3.6 > 0");
    ScenarioConfig config;
    config.numAgents = num_agents;
    AgentTraits other;
    other.meanInterrequest = num_agents - 3.6;
    other.cv = cv;
    AgentTraits slow = other;
    slow.meanInterrequest = num_agents - 0.5;
    config.agents.assign(static_cast<std::size_t>(num_agents), other);
    config.agents[0] = slow; // agent 1 just misses its turn
    return config;
}

void
setOverlapLimit(ScenarioConfig &config, double overlap)
{
    BUSARB_ASSERT(overlap >= 0.0, "negative overlap: ", overlap);
    for (auto &a : config.agents)
        a.overlapLimit = overlap;
}

} // namespace busarb
