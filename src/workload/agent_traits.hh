/**
 * @file
 * Per-agent workload parameters.
 *
 * Section 4.1: "The offered load of an individual agent is defined as its
 * bus transaction time divided by the sum of its bus transaction time and
 * mean interrequest time." Agents are closed sources: after a request
 * completes, the agent computes (thinks) for an inter-request time drawn
 * from its distribution, then issues the next request.
 */

#ifndef BUSARB_WORKLOAD_AGENT_TRAITS_HH
#define BUSARB_WORKLOAD_AGENT_TRAITS_HH

#include <cstdint>

namespace busarb {

/** Workload description of one agent. */
struct AgentTraits
{
    /** Mean inter-request (think) time, transaction units. */
    double meanInterrequest = 1.0;

    /** Coefficient of variation of the inter-request time. */
    double cv = 1.0;

    /** Simultaneously outstanding requests (FCFS r > 1 extension). */
    int maxOutstanding = 1;

    /** Fraction of requests issued as priority requests. */
    double priorityFraction = 0.0;

    /**
     * Execution-overlap limit V for the Table 4.3 experiment: the amount
     * of useful "extra" work the agent can overlap with each bus waiting
     * time (the realized overlap is min(V, waiting time)). 0 disables.
     */
    double overlapLimit = 0.0;

    /**
     * Failure injection: the agent stops issuing requests after this
     * many (models a device dropping off the bus mid-run); 0 means
     * never. In-flight requests still complete normally.
     */
    std::uint64_t stopAfterRequests = 0;
};

/**
 * Mean inter-request time for a target offered load.
 *
 * @param offered_load Agent's offered load, in (0, 1).
 * @param transaction_time Bus transaction time S (default 1 unit).
 * @return Mean think time T with load == S / (S + T).
 */
double interrequestForLoad(double offered_load,
                           double transaction_time = 1.0);

/**
 * Offered load from a mean inter-request time.
 *
 * @param mean_interrequest Mean think time T.
 * @param transaction_time Bus transaction time S (default 1 unit).
 * @return S / (S + T).
 */
double loadForInterrequest(double mean_interrequest,
                           double transaction_time = 1.0);

} // namespace busarb

#endif // BUSARB_WORKLOAD_AGENT_TRAITS_HH
