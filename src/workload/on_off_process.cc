#include "workload/on_off_process.hh"

#include <cmath>
#include <sstream>

#include "sim/logging.hh"

namespace busarb {

OnOffProcess::OnOffProcess(const OnOffParams &params) : params_(params)
{
    BUSARB_ASSERT(params.meanOn > 0.0, "meanOn must be positive");
    BUSARB_ASSERT(params.meanOff > 0.0, "meanOff must be positive");
    BUSARB_ASSERT(params.burstLength >= 1.0,
                  "burstLength must be >= 1");
    BUSARB_ASSERT(params.gapLength >= 1.0, "gapLength must be >= 1");
}

double
OnOffProcess::onFraction() const
{
    // Per regenerative cycle: burstLength ON samples, gapLength OFF.
    return params_.burstLength /
           (params_.burstLength + params_.gapLength);
}

double
OnOffProcess::sample(Rng &rng) const
{
    const double mean = on_ ? params_.meanOn : params_.meanOff;
    const double value = -mean * std::log(rng.uniformPositive());
    // Geometric run lengths: leave the state with probability 1/L.
    const double leave =
        on_ ? 1.0 / params_.burstLength : 1.0 / params_.gapLength;
    if (rng.uniform() < leave)
        on_ = !on_;
    return value;
}

double
OnOffProcess::mean() const
{
    const double p = onFraction();
    return p * params_.meanOn + (1.0 - p) * params_.meanOff;
}

double
OnOffProcess::cv() const
{
    // Stationary marginal: a mixture of two exponentials with weights
    // p and 1-p. E[X^2] = 2(p m_on^2 + (1-p) m_off^2).
    const double p = onFraction();
    const double m = mean();
    const double second = 2.0 * (p * params_.meanOn * params_.meanOn +
                                 (1.0 - p) * params_.meanOff *
                                     params_.meanOff);
    const double var = second - m * m;
    return var > 0.0 ? std::sqrt(var) / m : 0.0;
}

std::string
OnOffProcess::describe() const
{
    std::ostringstream os;
    os << "OnOff(on=" << params_.meanOn << "x" << params_.burstLength
       << ", off=" << params_.meanOff << "x" << params_.gapLength << ")";
    return os.str();
}

std::unique_ptr<Distribution>
OnOffProcess::clone() const
{
    return std::make_unique<OnOffProcess>(params_);
}

} // namespace busarb
