#include "workload/mmpp_process.hh"

#include <cmath>
#include <sstream>

#include "sim/logging.hh"

namespace busarb {

MmppProcess::MmppProcess(const MmppParams &params) : params_(params)
{
    BUSARB_ASSERT(params.rateOn > 0.0, "rateOn must be positive");
    BUSARB_ASSERT(params.rateOff >= 0.0, "rateOff must be >= 0");
    BUSARB_ASSERT(params.meanOnTime > 0.0, "meanOnTime must be positive");
    BUSARB_ASSERT(params.meanOffTime > 0.0,
                  "meanOffTime must be positive");
}

double
MmppProcess::averageRate() const
{
    const double p_on = params_.meanOnTime /
                        (params_.meanOnTime + params_.meanOffTime);
    return p_on * params_.rateOn + (1.0 - p_on) * params_.rateOff;
}

double
MmppProcess::sample(Rng &rng) const
{
    // Competing exponentials from the current phase: whichever of
    // (next arrival, phase switch) fires first wins; exponential dwell
    // times are memoryless, so re-drawing the residual dwell at each
    // step is exact.
    double elapsed = 0.0;
    while (true) {
        const double rate = on_ ? params_.rateOn : params_.rateOff;
        const double dwell =
            on_ ? params_.meanOnTime : params_.meanOffTime;
        const double to_switch =
            -dwell * std::log(rng.uniformPositive());
        if (rate > 0.0) {
            const double to_arrival =
                -std::log(rng.uniformPositive()) / rate;
            if (to_arrival <= to_switch)
                return elapsed + to_arrival;
        }
        elapsed += to_switch;
        on_ = !on_;
    }
}

double
MmppProcess::mean() const
{
    const double rate = averageRate();
    BUSARB_ASSERT(rate > 0.0, "MMPP with zero average rate");
    return 1.0 / rate;
}

double
MmppProcess::cv() const
{
    // Arrival-weighted hyperexponential approximation: condition each
    // inter-arrival on the phase its predecessor arrived in and ignore
    // phase changes in between. Exact in the long-dwell limit.
    const double lambda = averageRate();
    const double p_on = params_.meanOnTime /
                        (params_.meanOnTime + params_.meanOffTime);
    const double q = p_on * params_.rateOn / lambda;
    if (params_.rateOff <= 0.0)
        return 1.0;
    const double m = q / params_.rateOn + (1.0 - q) / params_.rateOff;
    const double second =
        2.0 * (q / (params_.rateOn * params_.rateOn) +
               (1.0 - q) / (params_.rateOff * params_.rateOff));
    const double var = second - m * m;
    return var > 0.0 ? std::sqrt(var) / m : 0.0;
}

std::string
MmppProcess::describe() const
{
    std::ostringstream os;
    os << "MMPP(on=" << params_.rateOn << "x" << params_.meanOnTime
       << ", off=" << params_.rateOff << "x" << params_.meanOffTime
       << ")";
    return os.str();
}

std::unique_ptr<Distribution>
MmppProcess::clone() const
{
    return std::make_unique<MmppProcess>(params_);
}

} // namespace busarb
