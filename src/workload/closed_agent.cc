#include "workload/closed_agent.hh"

#include <utility>

#include "sim/logging.hh"

namespace busarb {

ClosedAgent::ClosedAgent(EventQueue &queue, Bus &bus, AgentId id,
                         const AgentTraits &traits, Rng rng)
    : ClosedAgent(queue, bus, id, traits, std::move(rng),
                  makeDistributionByCv(traits.meanInterrequest,
                                       traits.cv))
{
}

ClosedAgent::ClosedAgent(EventQueue &queue, Bus &bus, AgentId id,
                         const AgentTraits &traits, Rng rng,
                         std::unique_ptr<Distribution> think)
    : queue_(queue), bus_(bus), id_(id), traits_(traits),
      rng_(std::move(rng)), think_(std::move(think))
{
    BUSARB_ASSERT(think_ != nullptr, "agent needs a think process");
    BUSARB_ASSERT(traits.maxOutstanding >= 1,
                  "maxOutstanding must be >= 1, got ",
                  traits.maxOutstanding);
    BUSARB_ASSERT(traits.priorityFraction >= 0.0 &&
                  traits.priorityFraction <= 1.0,
                  "priorityFraction must be in [0, 1]");
}

void
ClosedAgent::start()
{
    for (int i = 0; i < traits_.maxOutstanding; ++i)
        scheduleNextRequest();
}

void
ClosedAgent::scheduleNextRequest()
{
    const double think = think_->sample(rng_);
    if (sink_ != nullptr)
        sink_->recordThink(id_, think);
    queue_.scheduleIn(unitsToTicks(think), [this] { issueRequest(); },
                      kPriRequestArrival);
}

void
ClosedAgent::issueRequest()
{
    if (traits_.stopAfterRequests != 0 &&
        issued_ >= traits_.stopAfterRequests) {
        return; // the device has dropped off the bus
    }
    const bool priority = traits_.priorityFraction > 0.0 &&
                          rng_.uniform() < traits_.priorityFraction;
    ++issued_;
    bus_.postRequest(id_, priority);
}

void
ClosedAgent::onServiceEnd(Tick now)
{
    (void)now;
    scheduleNextRequest();
}

} // namespace busarb
