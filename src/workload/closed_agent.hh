/**
 * @file
 * A closed-loop request source for one bus agent.
 *
 * Each of the agent's `maxOutstanding` tokens cycles through
 * think -> request -> wait -> service; the think (inter-request) time is
 * drawn from the agent's distribution. Think times are reported to an
 * optional ThinkSink so the experiment layer can account productivity
 * (Table 4.3) without the agent knowing about statistics.
 */

#ifndef BUSARB_WORKLOAD_CLOSED_AGENT_HH
#define BUSARB_WORKLOAD_CLOSED_AGENT_HH

#include <cstdint>
#include <memory>

#include "bus/bus.hh"
#include "random/distributions.hh"
#include "random/rng.hh"
#include "sim/event_queue.hh"
#include "workload/agent_traits.hh"

namespace busarb {

/** Receives the think-time samples an agent generates. */
class ThinkSink
{
  public:
    virtual ~ThinkSink() = default;

    /**
     * The agent spent `think` units computing before issuing a request.
     *
     * @param agent The agent.
     * @param think Think duration in transaction units.
     */
    virtual void recordThink(AgentId agent, double think) = 0;
};

/**
 * Closed-loop workload generator for one agent.
 */
class ClosedAgent
{
  public:
    /**
     * @param queue Simulation event queue.
     * @param bus Bus to issue requests on.
     * @param id This agent's static identity (1..N).
     * @param traits Workload parameters.
     * @param rng Private random stream for this agent.
     */
    ClosedAgent(EventQueue &queue, Bus &bus, AgentId id,
                const AgentTraits &traits, Rng rng);

    /**
     * Construct with an explicit think-time process instead of the
     * traits' (mean, CV) renewal distribution — e.g. the correlated
     * OnOffProcess. The traits' meanInterrequest/cv are ignored.
     *
     * @param think The think-time source (owned).
     */
    ClosedAgent(EventQueue &queue, Bus &bus, AgentId id,
                const AgentTraits &traits, Rng rng,
                std::unique_ptr<Distribution> think);

    /** Schedule the initial request(s); call once before running. */
    void start();

    /** The bus finished serving one of this agent's requests. */
    void onServiceEnd(Tick now);

    /** @return This agent's identity. */
    AgentId id() const { return id_; }

    /** @return The workload parameters. */
    const AgentTraits &traits() const { return traits_; }

    /** @return Requests issued so far. */
    std::uint64_t issued() const { return issued_; }

    /** Set the sink receiving think-time samples (may be nullptr). */
    void setThinkSink(ThinkSink *sink) { sink_ = sink; }

  private:
    EventQueue &queue_;
    Bus &bus_;
    AgentId id_;
    AgentTraits traits_;
    Rng rng_;
    std::unique_ptr<Distribution> think_;
    ThinkSink *sink_ = nullptr;
    std::uint64_t issued_ = 0;

    /** Begin one token's think phase, then issue its request. */
    void scheduleNextRequest();

    /** Issue a request now. */
    void issueRequest();
};

} // namespace busarb

#endif // BUSARB_WORKLOAD_CLOSED_AGENT_HH
