/**
 * @file
 * Scenario descriptions: the complete recipe for one simulation run, and
 * builders for the workload families of the paper's Section 4.
 */

#ifndef BUSARB_WORKLOAD_SCENARIO_HH
#define BUSARB_WORKLOAD_SCENARIO_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bus/bus.hh"
#include "workload/agent_traits.hh"

namespace busarb {

/** Full description of one simulation run. */
struct ScenarioConfig
{
    /** Number of agents; identities 1..N. */
    int numAgents = 10;

    /** Bus timing (Section 4.1 defaults). */
    BusParams bus;

    /** Per-agent workload; index i describes agent i+1. */
    std::vector<AgentTraits> agents;

    /**
     * Workload-source spec (experiment/workload_registry.hh grammar):
     * "closed" is the paper's think/request/service loop; "open:...",
     * "onoff:..." and "trace:..." select the open-loop, bursty and
     * trace-replay generators. The agents vector still carries the
     * per-agent load shape; the source decides whether load means
     * think-time scaling (closed) or arrival-rate scaling (open).
     */
    std::string workloadSpec = "closed";

    /** Base seed; each agent gets an independent sub-stream. */
    std::uint64_t seed = 0x5eedcafe;

    /**
     * Event-queue storage policy. kCalendar is the fast default; kHeap
     * is the reference heap kernel, kept selectable so differential
     * tests and benchmarks can push the identical scenario through both
     * implementations (the determinism contract makes every artifact
     * byte-identical between them).
     */
    EventQueuePolicy eventQueuePolicy = EventQueuePolicy::kCalendar;

    /** Batch-means output analysis (Section 4.1: 10 x 8000). */
    int numBatches = 10;
    std::uint64_t batchSize = 8000;

    /** Completions discarded before measurement starts. */
    std::uint64_t warmup = 8000;

    /** Two-sided confidence level for interval estimates. */
    double confidence = 0.90;

    /** Collect the waiting-time histogram (Figure 4.1, Table 4.3). */
    bool collectHistogram = false;

    /** Additionally collect one waiting-time histogram per agent. */
    bool collectPerAgentHistograms = false;
    double histBinWidth = 0.25;
    std::size_t histBins = 1200;

    /**
     * Optional bus tracer attached for the run (not owned; must outlive
     * the runScenario call). Useful for short diagnostic runs.
     */
    BusTracer *tracer = nullptr;

    /**
     * Capture the whole run as a compact binary event trace
     * (obs/binary_trace.hh); the bytes land in
     * ScenarioResult::binaryTrace. Each run owns its buffer, so a
     * parallel grid captures byte-identical traces to a serial one.
     */
    bool captureBinaryTrace = false;

    /**
     * Retain the last M bus events in a flight recorder
     * (obs/flight_recorder.hh) and dump them to stderr if the run
     * panics — most usefully on a ProtocolChecker contract violation.
     * 0 disables.
     */
    std::size_t flightRecorderEvents = 0;

    /**
     * Attach a fairness auditor (obs/fairness_auditor.hh) for the run:
     * per-agent bypass counts with bound checking, a starvation
     * watchdog, and windowed Jain indices, exported as fairness.*
     * metrics in ScenarioResult::metrics.
     */
    bool auditFairness = false;

    /** Fairness window width in transaction units. */
    double fairnessWindowUnits = 50.0;

    /**
     * Bypass bound audited at each grant; <= 0 selects the paper's RR
     * guarantee of numAgents - 1.
     */
    int bypassBound = 0;

    /**
     * Emit a deterministic fairness snapshot (JSONL) every this many
     * transaction units of simulated time into
     * ScenarioResult::fairnessSnapshots; 0 disables. Implies
     * auditFairness.
     */
    double snapshotEveryUnits = 0.0;

    /**
     * Attach the run-health monitor (obs/run_health.hh): streaming
     * batch-means convergence diagnostics (relative CI half-width,
     * lag-1 autocorrelation, MSER warm-up detection) with a per-run
     * verdict in ScenarioResult::health and health.* metrics.
     */
    bool monitorHealth = false;

    /**
     * Additionally emit one deterministic health snapshot line (JSONL,
     * keyed to simulated time) per completed batch into
     * ScenarioResult::healthSnapshots. Implies monitorHealth.
     */
    bool healthSnapshots = false;

    /** Relative CI half-width target (the paper's "within 5%"). */
    double healthRelHwTarget = 0.05;

    /** |lag-1| threshold for batch-mean independence. */
    double healthLag1Threshold = 0.3;

    /**
     * Collect a per-run self-profile (obs/profiler.hh): per-phase
     * wall-clock, events/sec, and queue-depth stats in
     * ScenarioResult::profile. Wall-clock numbers are host-only and
     * never feed back into the simulation.
     */
    bool profile = false;

    /** @return Sum of agent offered loads. */
    double totalOfferedLoad() const;
};

/**
 * Equal request rates (Tables 4.1 and 4.2).
 *
 * @param num_agents N.
 * @param total_load Total offered load; per-agent load is total/N.
 * @param cv Inter-request coefficient of variation.
 * @return Scenario with N identical agents.
 */
ScenarioConfig equalLoadScenario(int num_agents, double total_load,
                                 double cv = 1.0);

/**
 * One higher-rate requester (Table 4.4): agent 1's offered load is
 * `factor` times the common per-agent base load.
 *
 * @param num_agents N.
 * @param base_load Offered load of agents 2..N.
 * @param factor Agent 1's load multiplier (2.0 or 4.0 in the paper).
 * @param cv Inter-request coefficient of variation.
 * @return Scenario with one fast and N-1 regular agents.
 */
ScenarioConfig unequalLoadScenario(int num_agents, double base_load,
                                   double factor, double cv = 1.0);

/**
 * Worst case for the RR protocol (Table 4.5): agent 1 ("slow") has mean
 * inter-request time n - 0.5 and repeatedly just misses its round-robin
 * turn; all other agents have mean inter-request time n - 3.6.
 *
 * @param num_agents N.
 * @param cv Coefficient of variation applied to all agents.
 * @return Scenario with the contrived just-miss workload.
 */
ScenarioConfig worstCaseRrScenario(int num_agents, double cv);

/**
 * Apply an execution-overlap limit to all agents (Table 4.3).
 *
 * @param config Scenario to modify.
 * @param overlap The overlap value V, in transaction units.
 */
void setOverlapLimit(ScenarioConfig &config, double overlap);

} // namespace busarb

#endif // BUSARB_WORKLOAD_SCENARIO_HH
