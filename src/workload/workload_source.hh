/**
 * @file
 * The workload-source seam: one object that owns a scenario's traffic
 * generation, whatever its shape.
 *
 * The paper's Section 4 workload is closed-loop — each agent cycles
 * think -> request -> service, capping pressure at N outstanding
 * requests. Production traffic is not so polite: open-loop arrivals
 * keep coming regardless of service, bursts correlate, and recorded
 * traces must be replayable against any protocol. WorkloadSource
 * abstracts over all of these so the experiment runner drives exactly
 * one interface; concrete sources are built by the workload registry
 * (experiment/workload_registry.hh) from `source=` spec strings.
 */

#ifndef BUSARB_WORKLOAD_WORKLOAD_SOURCE_HH
#define BUSARB_WORKLOAD_WORKLOAD_SOURCE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "bus/bus.hh"
#include "random/distributions.hh"
#include "sim/event_queue.hh"
#include "workload/closed_agent.hh"
#include "workload/trace_workload.hh"

namespace busarb {

struct ScenarioConfig;

/**
 * Generates a scenario's bus requests. One instance per run, owned by
 * the runner; start() is called once before the first event, and
 * onServiceEnd() after every completed transaction (closed-loop
 * sources schedule their next think from it, open-loop sources ignore
 * it).
 */
class WorkloadSource
{
  public:
    virtual ~WorkloadSource() = default;

    /** Schedule the initial request(s)/arrivals; call once. */
    virtual void start() = 0;

    /** The bus finished serving one of `agent`'s requests. */
    virtual void onServiceEnd(AgentId agent, Tick now) = 0;

    /** Set the sink receiving think-time samples (may be nullptr). */
    virtual void setThinkSink(ThinkSink *sink) { (void)sink; }

    /**
     * @return True when arrivals are independent of service (open
     *         loop): queues are unbounded and saturation is possible,
     *         so the runner tracks backlog and offered-vs-carried load.
     */
    virtual bool openLoop() const = 0;

    /** @return Requests issued so far, across all agents. */
    virtual std::uint64_t issued() const = 0;

    /** @return Requests issued so far by one agent. */
    virtual std::uint64_t issuedBy(AgentId agent) const = 0;

    /**
     * @return The total number of requests this source can ever issue,
     *         or 0 when unbounded. Finite sources (trace replay) must
     *         cover warmup + batches * batchSize completions or the
     *         run would deadlock; the runner checks this up front.
     */
    virtual std::uint64_t capacity() const { return 0; }
};

/**
 * The paper's closed-loop workload: one ClosedAgent per agent, each
 * with its own forked RNG stream. Construction order and RNG forking
 * replicate the historical runner wiring exactly, so `source=closed`
 * scenarios are byte-identical to runs that predate the seam.
 */
class ClosedWorkloadSource : public WorkloadSource
{
  public:
    /**
     * Builds one agent's think-time process; nullptr selects the
     * traits' (mean, CV) renewal distribution.
     */
    using ThinkFactory = std::function<std::unique_ptr<Distribution>(
        AgentId, const AgentTraits &)>;

    ClosedWorkloadSource(EventQueue &queue, Bus &bus,
                         const ScenarioConfig &config,
                         ThinkFactory think = nullptr);

    void start() override;
    void onServiceEnd(AgentId agent, Tick now) override;
    void setThinkSink(ThinkSink *sink) override;
    bool openLoop() const override { return false; }
    std::uint64_t issued() const override;
    std::uint64_t issuedBy(AgentId agent) const override;

  private:
    std::vector<std::unique_ptr<ClosedAgent>> agents_;
};

/**
 * Open-loop renewal/modulated arrivals: each agent posts requests at
 * instants drawn from its inter-arrival process, regardless of how the
 * bus is coping. Backlog is unbounded; the runner's saturation
 * detector turns an unstable cell into a verdict instead of a hang.
 */
class OpenWorkloadSource : public WorkloadSource
{
  public:
    /** Builds one agent's inter-arrival process (required). */
    using ArrivalFactory = std::function<std::unique_ptr<Distribution>(
        AgentId, const AgentTraits &)>;

    OpenWorkloadSource(EventQueue &queue, Bus &bus,
                       const ScenarioConfig &config,
                       ArrivalFactory arrivals);

    void start() override;
    void onServiceEnd(AgentId agent, Tick now) override;
    bool openLoop() const override { return true; }
    std::uint64_t issued() const override { return issued_; }
    std::uint64_t issuedBy(AgentId agent) const override;

  private:
    struct Agent
    {
        AgentId id = 0;
        AgentTraits traits;
        Rng rng;
        std::unique_ptr<Distribution> arrivals;
        std::uint64_t issued = 0;
    };

    EventQueue &queue_;
    Bus &bus_;
    std::vector<Agent> agents_;
    std::uint64_t issued_ = 0;

    void scheduleArrival(Agent &agent);
    void arrive(Agent &agent);
};

/**
 * Replays a fixed RequestTrace, open loop: every entry is posted at
 * its recorded tick whatever the bus is doing — record once, re-drive
 * any protocol with the identical arrival sequence.
 */
class TraceWorkloadSource : public WorkloadSource
{
  public:
    /**
     * @param bus Target bus; must have at least trace.maxAgent()
     *        agents.
     * @param trace The schedule to replay (moved in).
     */
    TraceWorkloadSource(EventQueue &queue, Bus &bus, RequestTrace trace);

    void start() override;
    void onServiceEnd(AgentId agent, Tick now) override;
    bool openLoop() const override { return true; }
    std::uint64_t issued() const override { return issued_; }
    std::uint64_t issuedBy(AgentId agent) const override;
    std::uint64_t capacity() const override { return trace_.size(); }

  private:
    EventQueue &queue_;
    Bus &bus_;
    RequestTrace trace_;
    std::uint64_t issued_ = 0;
    std::vector<std::uint64_t> issuedBy_; // index 0 -> agent 1
};

} // namespace busarb

#endif // BUSARB_WORKLOAD_WORKLOAD_SOURCE_HH
