#include "workload/trace_workload.hh"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "sim/logging.hh"

namespace busarb {

void
RequestTrace::append(Tick when, AgentId agent, bool priority)
{
    BUSARB_ASSERT(agent >= 1, "invalid agent id: ", agent);
    BUSARB_ASSERT(when >= 0, "negative trace time");
    BUSARB_ASSERT(entries_.empty() || when >= entries_.back().when,
                  "trace times must be non-decreasing");
    entries_.push_back(TraceEntry{when, agent, priority});
    maxAgent_ = std::max(maxAgent_, agent);
}

RequestTrace
RequestTrace::parse(std::istream &is)
{
    RequestTrace trace;
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        double when_units;
        if (!(fields >> when_units))
            continue; // blank or comment-only line
        AgentId agent;
        if (!(fields >> agent)) {
            BUSARB_FATAL("trace line ", line_no,
                         ": missing agent id");
        }
        std::string flag;
        bool priority = false;
        if (fields >> flag) {
            if (flag == "p" || flag == "P") {
                priority = true;
            } else {
                BUSARB_FATAL("trace line ", line_no,
                             ": unexpected token '", flag, "'");
            }
        }
        if (agent < 1)
            BUSARB_FATAL("trace line ", line_no, ": bad agent ", agent);
        const Tick when = unitsToTicks(when_units);
        if (!trace.entries_.empty() &&
            when < trace.entries_.back().when) {
            BUSARB_FATAL("trace line ", line_no,
                         ": timestamps must be non-decreasing");
        }
        trace.append(when, agent, priority);
    }
    return trace;
}

void
RequestTrace::write(std::ostream &os) const
{
    os << "# busarb request trace: <time> <agent> [p]\n";
    for (const auto &e : entries_) {
        os << ticksToUnits(e.when) << " " << e.agent;
        if (e.priority)
            os << " p";
        os << "\n";
    }
}

RequestTrace
RequestTrace::poisson(int num_agents, double total_rate, double length,
                      Rng rng)
{
    BUSARB_ASSERT(num_agents >= 1, "need at least one agent");
    BUSARB_ASSERT(total_rate > 0.0, "rate must be positive");
    BUSARB_ASSERT(length > 0.0, "length must be positive");
    RequestTrace trace;
    double t = 0.0;
    while (true) {
        t += -std::log(rng.uniformPositive()) / total_rate;
        if (t >= length)
            break;
        const AgentId agent =
            1 + static_cast<AgentId>(
                    rng.below(static_cast<std::uint64_t>(num_agents)));
        trace.append(unitsToTicks(t), agent);
    }
    return trace;
}

TracePlayer::TracePlayer(EventQueue &queue, Bus &bus, RequestTrace trace)
    : queue_(queue), bus_(bus), trace_(std::move(trace))
{
    BUSARB_ASSERT(trace_.maxAgent() <= bus.numAgents(),
                  "trace references agent ", trace_.maxAgent(),
                  " but the bus has only ", bus.numAgents());
}

void
TracePlayer::start()
{
    for (const auto &entry : trace_.entries()) {
        queue_.schedule(entry.when,
                        [this, entry] {
                            ++injected_;
                            bus_.postRequest(entry.agent, entry.priority);
                        },
                        kPriRequestArrival);
    }
}

} // namespace busarb
