/**
 * @file
 * A checking decorator for arbitration protocols.
 *
 * Wraps any ArbitrationProtocol and verifies the engine/protocol
 * contract on every call:
 *  - lifecycle: reset before use; beginPass/completePass strictly
 *    alternate; tenureStarted only for a request the protocol selected;
 *  - conservation: every posted request is served at most once, winners
 *    were actually posted and not yet served;
 *  - liveness accounting: wantsPass() is true whenever requests are
 *    outstanding;
 *  - bounded retries: a pass chain must reach a winner within a small
 *    number of retries (no livelock).
 *
 * Used by the property/fuzz tests to harden every protocol in the
 * library, and available to users developing their own protocols.
 */

#ifndef BUSARB_BUS_PROTOCOL_CHECKER_HH
#define BUSARB_BUS_PROTOCOL_CHECKER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "bus/protocol.hh"

namespace busarb {

/**
 * Contract-checking wrapper around another protocol.
 */
class ProtocolChecker : public ArbitrationProtocol
{
  public:
    /**
     * @param inner The protocol to check; owned by the checker.
     * @param max_retries Maximum kRetry results tolerated in a row.
     */
    explicit ProtocolChecker(std::unique_ptr<ArbitrationProtocol> inner,
                             int max_retries = 3);

    void reset(int num_agents) override;
    void requestPosted(const Request &req) override;
    bool wantsPass() const override;
    void beginPass(Tick now) override;
    PassResult completePass(Tick now) override;
    void tenureStarted(const Request &req, Tick now) override;
    void tenureEnded(const Request &req, Tick now) override;
    std::string name() const override;

    int
    settleRoundsForPass() const override
    {
        return inner_->settleRoundsForPass();
    }

    int
    arbitrationLineCount() const override
    {
        return inner_->arbitrationLineCount();
    }

    /** @return The wrapped protocol. */
    ArbitrationProtocol &inner() { return *inner_; }

    /** @return Requests posted so far. */
    std::uint64_t posted() const { return posted_; }

    /** @return Requests served so far. */
    std::uint64_t served() const { return served_; }

  private:
    std::unique_ptr<ArbitrationProtocol> inner_;
    int maxRetries_;
    bool wasReset_ = false;
    bool passOpen_ = false;
    int consecutiveRetries_ = 0;
    int numAgents_ = 0;
    std::uint64_t posted_ = 0;
    std::uint64_t served_ = 0;
    Tick lastTick_ = 0;

    /** seq -> outstanding request (posted, not yet served). */
    std::unordered_map<std::uint64_t, Request> outstanding_;

    /** seq of the winner announced by the last completePass. */
    std::uint64_t announcedWinner_ = 0;
    bool winnerPending_ = false;

    /** seqs currently being served (tenure started, not ended). */
    std::unordered_set<std::uint64_t> inService_;

    void checkTickMonotonic(Tick now);
};

} // namespace busarb

#endif // BUSARB_BUS_PROTOCOL_CHECKER_HH
