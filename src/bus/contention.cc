#include "bus/contention.hh"

#include <bit>

#include "sim/logging.hh"

namespace busarb {

ContentionArbiter::ContentionArbiter(int num_lines) : numLines_(num_lines)
{
    BUSARB_ASSERT(num_lines >= 1 && num_lines <= 63,
                  "line count out of range: ", num_lines);
}

std::uint64_t
ContentionArbiter::appliedWord(std::uint64_t identity,
                               std::uint64_t lines) const
{
    // Section 2.1 rule: for each line i carrying 1 where the agent applies
    // 0, the agent removes the bits below i. Equivalently the agent keeps
    // only the bits at or above the highest such conflicting line (and the
    // conflicting bit itself is 0, so masking from the top conflict down
    // is exactly "remove the lower-order i-1 bits" for the dominant
    // conflict; lower conflicts are subsumed).
    const std::uint64_t conflicts = lines & ~identity;
    if (conflicts == 0)
        return identity; // nothing removed (or everything re-applied)
    // Highest conflicting line index.
    const int top = 63 - std::countl_zero(conflicts);
    // Keep bits strictly above the conflict.
    const std::uint64_t keep_mask = ~((2ULL << top) - 1ULL);
    return identity & keep_mask;
}

SettleResult
ContentionArbiter::settle(const std::vector<Competitor> &competitors) const
{
    SettleResult result;
    if (competitors.empty())
        return result;

    const std::uint64_t word_limit =
        (numLines_ >= 63) ? ~0ULL : ((1ULL << numLines_) - 1ULL);
    for (const auto &c : competitors) {
        BUSARB_ASSERT(c.word <= word_limit, "word ", c.word,
                      " does not fit in ", numLines_, " lines");
        BUSARB_ASSERT(c.word != 0,
                      "agent ", c.agent, " applied the reserved word 0");
    }

    // Every agent initially applies its full word. The scratch vector is
    // a member so steady-state arbitration passes allocate nothing.
    std::vector<std::uint64_t> &applied = appliedScratch_;
    applied.resize(competitors.size());
    for (std::size_t i = 0; i < competitors.size(); ++i)
        applied[i] = competitors[i].word;

    // Synchronous rounds: all agents observe the OR from the previous
    // round, then update simultaneously. One round corresponds to one
    // end-to-end propagation delay.
    int rounds = 0;
    while (true) {
        std::uint64_t lines = 0;
        for (std::uint64_t w : applied)
            lines |= w;
        bool changed = false;
        for (std::size_t i = 0; i < competitors.size(); ++i) {
            const std::uint64_t next = appliedWord(competitors[i].word,
                                                   lines);
            if (next != applied[i]) {
                applied[i] = next;
                changed = true;
            }
        }
        if (!changed) {
            result.settledWord = lines;
            break;
        }
        ++rounds;
        BUSARB_ASSERT(rounds <= 2 * numLines_ + 2,
                      "settle failed to converge");
    }
    result.rounds = rounds;

    for (const auto &c : competitors) {
        if (c.word == result.settledWord) {
            BUSARB_ASSERT(result.winner == kNoAgent,
                          "two agents settled on the same word");
            result.winner = c.agent;
        }
    }
    BUSARB_ASSERT(result.winner != kNoAgent,
                  "settled word matches no competitor");
    return result;
}

AgentId
selectMax(const std::vector<Competitor> &competitors)
{
    AgentId winner = kNoAgent;
    std::uint64_t best = 0;
    bool any = false;
    for (const auto &c : competitors) {
        BUSARB_ASSERT(c.agent != kNoAgent, "competitor without an agent");
        if (!any || c.word > best) {
            any = true;
            best = c.word;
            winner = c.agent;
        } else if (c.word == best) {
            BUSARB_PANIC("duplicate arbitration word ", c.word,
                         " from agents ", winner, " and ", c.agent);
        }
    }
    return winner;
}

int
settleRounds(int num_lines, const std::vector<Competitor> &competitors)
{
    return ContentionArbiter(num_lines).settle(competitors).rounds;
}

int
linesForAgents(int num_agents)
{
    BUSARB_ASSERT(num_agents >= 1, "need at least one agent");
    int k = 0;
    while ((1 << k) < num_agents + 1)
        ++k;
    return k;
}

} // namespace busarb
