#include "bus/bus.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace busarb {

Bus::Bus(EventQueue &queue, std::unique_ptr<ArbitrationProtocol> protocol,
         int num_agents, const BusParams &params)
    : queue_(queue), protocol_(std::move(protocol)), numAgents_(num_agents),
      serviceTicks_(unitsToTicks(params.transactionTime)),
      arbTicks_(unitsToTicks(params.arbitrationOverhead)),
      settleTiming_(params.settleTiming),
      worstCaseSettle_(params.settleMode ==
                       BusParams::SettleMode::kWorstCase),
      propTicks_(unitsToTicks(params.propagationDelay)),
      controlRounds_(params.controlRounds)
{
    BUSARB_ASSERT(protocol_ != nullptr, "bus needs a protocol");
    BUSARB_ASSERT(num_agents >= 1, "need at least one agent");
    BUSARB_ASSERT(serviceTicks_ > 0, "transaction time must be positive");
    BUSARB_ASSERT(arbTicks_ >= 0, "arbitration overhead must be >= 0");
    BUSARB_ASSERT(!settleTiming_ ||
                  (propTicks_ > 0 && controlRounds_ >= 0),
                  "settle timing needs a positive propagation delay and "
                  "non-negative control rounds");
    protocol_->reset(num_agents);
}

Request
Bus::postRequest(AgentId agent, bool priority)
{
    BUSARB_ASSERT(agent >= 1 && agent <= numAgents_,
                  "agent id out of range: ", agent);
    Request req;
    req.agent = agent;
    req.issued = queue_.now();
    req.priority = priority;
    req.seq = ++seq_;
    protocol_->requestPosted(req);
    if (tracer_ != nullptr)
        tracer_->onRequestPosted(req);
    maybeStartPass();
    return req;
}

void
Bus::maybeStartPass()
{
    if (passInProgress_ || winnerDecided_ || passStartPending_)
        return;
    if (!protocol_->wantsPass())
        return;
    // Defer the actual pass start to a same-tick event that runs after
    // every same-tick request arrival: agents that assert the request
    // line at the same instant all compete in the arbitration that
    // starts at that instant.
    passStartPending_ = true;
    queue_.schedule(queue_.now(), [this] { startPassNow(); },
                    kPriBeginPass);
}

void
Bus::startPassNow()
{
    BUSARB_ASSERT(passStartPending_, "pass start without scheduling");
    passStartPending_ = false;
    if (passInProgress_ || winnerDecided_)
        return;
    if (!protocol_->wantsPass())
        return;
    passInProgress_ = true;
    passStart_ = queue_.now();
    ++passes_;
    protocol_->beginPass(queue_.now());
    if (tracer_ != nullptr)
        tracer_->onPassStarted(queue_.now());
    Tick duration = arbTicks_;
    if (settleTiming_) {
        if (worstCaseSettle_) {
            const int k = protocol_->arbitrationLineCount();
            if (k > 0) {
                duration = propTicks_ *
                           static_cast<Tick>(controlRounds_ +
                                             (k + 1) / 2);
            }
        } else {
            const int rounds = protocol_->settleRoundsForPass();
            if (rounds >= 0) {
                duration = propTicks_ *
                           static_cast<Tick>(controlRounds_ + rounds);
            }
        }
    }
    queue_.scheduleIn(duration, [this] { passCompleted(); },
                      kPriArbitration);
}

void
Bus::passCompleted()
{
    BUSARB_ASSERT(passInProgress_, "pass completion without a pass");
    passInProgress_ = false;
    const PassResult result = protocol_->completePass(queue_.now());
    if (tracer_ != nullptr) {
        tracer_->onPassResolved(queue_.now(), passStart_, result.winner,
                                result.kind == PassResult::Kind::kRetry);
    }
    switch (result.kind) {
      case PassResult::Kind::kWinner:
        BUSARB_ASSERT(result.winner.valid(), "winner without an agent");
        winnerDecided_ = true;
        nextMaster_ = result.winner;
        if (!busy_) {
            // The overhead of this pass (from when the bus was last free)
            // delayed the grant; account it as exposed.
            exposedArbTicks_ +=
                queue_.now() - std::max(passStart_, lastFreeTick_);
            startTenure(nextMaster_);
        }
        break;
      case PassResult::Kind::kRetry:
        ++retryPasses_;
        maybeStartPass();
        break;
      case PassResult::Kind::kIdle:
        // Requests may have been posted while the pass was in flight.
        maybeStartPass();
        break;
    }
}

void
Bus::startTenure(const Request &req)
{
    BUSARB_ASSERT(!busy_, "tenure started while the bus is busy");
    winnerDecided_ = false;
    busy_ = true;
    current_ = req;
    protocol_->tenureStarted(req, queue_.now());
    if (tracer_ != nullptr)
        tracer_->onTenureStarted(req, queue_.now());
    if (observer_ != nullptr)
        observer_->onServiceStart(req, queue_.now());
    busyTicks_ += serviceTicks_;
    queue_.scheduleIn(serviceTicks_, [this] { transactionCompleted(); },
                      kPriTransactionEnd);
    // "Arbitration for the next master starts at the beginning of a bus
    // transaction whenever requests are waiting" (Section 4.1).
    maybeStartPass();
}

void
Bus::transactionCompleted()
{
    BUSARB_ASSERT(busy_, "transaction completed while idle");
    busy_ = false;
    lastFreeTick_ = queue_.now();
    ++completed_;
    const Request finished = current_;
    current_ = Request{};
    protocol_->tenureEnded(finished, queue_.now());
    if (tracer_ != nullptr)
        tracer_->onTenureEnded(finished, queue_.now());
    if (observer_ != nullptr)
        observer_->onServiceEnd(finished, queue_.now());
    if (winnerDecided_) {
        startTenure(nextMaster_);
    } else {
        // Either a pass is still in flight (the grant will happen at its
        // completion) or nothing is pending; re-check in case a request
        // was posted by the observer callback just now.
        maybeStartPass();
    }
}

} // namespace busarb
