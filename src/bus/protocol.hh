/**
 * @file
 * The interface every arbitration protocol implements.
 *
 * The bus engine drives protocols through a small pass-oriented contract
 * that mirrors how the parallel contention arbiter actually operates:
 *
 *  1. Agents post requests at arbitrary times (requestPosted). Posting
 *     models asserting the shared bus-request line.
 *  2. When the engine decides an arbitration pass should run (at the
 *     beginning of a bus tenure when requests are waiting, or when a
 *     request arrives and no pass/decision is outstanding), it calls
 *     beginPass(). The protocol freezes its competitor set: requests
 *     posted after beginPass() cannot join this pass.
 *  3. One arbitration overhead later the engine calls completePass().
 *     The protocol resolves the wired-OR maximum over the frozen
 *     competitors and reports a winner, or asks for an immediate retry
 *     pass (AAP-2's fairness-release cycle, RR implementation 3's wrap
 *     cycle), or reports that nothing competed.
 *  4. tenureStarted() tells the protocol its winner took the bus (the
 *     agent releases the request line); tenureEnded() marks the end of
 *     the transfer.
 */

#ifndef BUSARB_BUS_PROTOCOL_HH
#define BUSARB_BUS_PROTOCOL_HH

#include <string>

#include "bus/request.hh"
#include "sim/types.hh"

namespace busarb {

/** Outcome of one arbitration pass. */
struct PassResult
{
    enum class Kind {
        /** A winner was selected; `winner` is valid. */
        kWinner,
        /**
         * The pass resolved with no competitor (all requesters inhibited
         * or out of the eligible window). The engine starts another pass
         * immediately; protocol state has been updated so the retry can
         * make progress (fairness release, RR wrap).
         */
        kRetry,
        /** No outstanding request exists at all; go idle. */
        kIdle,
    };

    Kind kind = Kind::kIdle;

    /** The request that won the pass (valid when kind == kWinner). */
    Request winner;

    static PassResult
    makeWinner(const Request &req)
    {
        return PassResult{Kind::kWinner, req};
    }

    static PassResult makeRetry() { return PassResult{Kind::kRetry, {}}; }

    static PassResult makeIdle() { return PassResult{Kind::kIdle, {}}; }
};

/**
 * Abstract distributed (or central) bus arbitration protocol.
 *
 * Implementations keep whatever per-agent state the real hardware would
 * hold (recorded winner registers, waiting-time counters, inhibit bits)
 * plus the set of posted requests (the request line and arbitration
 * lines).
 */
class ArbitrationProtocol
{
  public:
    virtual ~ArbitrationProtocol() = default;

    /**
     * Prepare for a run with `num_agents` agents (identities 1..N).
     * Called once before simulation; clears all dynamic state.
     */
    virtual void reset(int num_agents) = 0;

    /** An agent asserts the request line for a new request. */
    virtual void requestPosted(const Request &req) = 0;

    /**
     * @return True if any posted request exists (served or not yet
     *         eligible alike) — i.e. the engine should run a pass.
     */
    virtual bool wantsPass() const = 0;

    /**
     * Freeze the competitor set for a pass starting now.
     *
     * @param now Pass start tick.
     */
    virtual void beginPass(Tick now) = 0;

    /**
     * Resolve the pass begun by the last beginPass().
     *
     * @param now Pass completion tick.
     * @return Winner, retry, or idle.
     */
    virtual PassResult completePass(Tick now) = 0;

    /**
     * The winning agent becomes bus master and releases the request line
     * for the served request.
     *
     * @param req The request being served (as returned by completePass).
     * @param now Tenure start tick.
     */
    virtual void tenureStarted(const Request &req, Tick now) = 0;

    /**
     * The bus transfer for `req` finished.
     *
     * @param req The request that was served.
     * @param now Tenure end tick.
     */
    virtual void
    tenureEnded(const Request &req, Tick now)
    {
        (void)req;
        (void)now;
    }

    /** @return Human-readable protocol name for reports. */
    virtual std::string name() const = 0;

    /**
     * Signal-level cost of the pass begun by the last beginPass(): the
     * number of wired-OR settle rounds (end-to-end bus propagations)
     * the frozen competitor set needs to resolve in the parallel
     * contention arbiter.
     *
     * Distributed protocols compute this by running the bit-level
     * settle model over their frozen arbitration words; the bus engine
     * uses it when BusParams::settleTiming is enabled to derive each
     * pass's duration instead of charging a fixed overhead.
     *
     * @return Settle rounds (>= 0), or -1 when the protocol does not
     *         model signal-level arbitration (e.g. the central
     *         reference arbiters) — the engine then falls back to the
     *         fixed overhead.
     */
    virtual int
    settleRoundsForPass() const
    {
        return -1;
    }

    /**
     * Number of wired-OR arbitration lines the protocol drives (static
     * identity bits plus any dynamic fields). Used by the worst-case
     * settle-timing mode to budget ceil(k/2) propagation rounds per
     * arbitration.
     *
     * @return Line count k, or -1 when the protocol does not model
     *         signal-level arbitration.
     */
    virtual int
    arbitrationLineCount() const
    {
        return -1;
    }
};

} // namespace busarb

#endif // BUSARB_BUS_PROTOCOL_HH
