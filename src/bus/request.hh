/**
 * @file
 * A bus request as seen by the arbitration layer.
 */

#ifndef BUSARB_BUS_REQUEST_HH
#define BUSARB_BUS_REQUEST_HH

#include <cstdint>

#include "sim/types.hh"

namespace busarb {

/**
 * One agent's outstanding request for bus ownership.
 *
 * Agents may have several outstanding requests when the FCFS protocol's
 * multiple-outstanding-request extension (Section 3.2) is enabled; `seq`
 * distinguishes them and provides a deterministic global issue order.
 */
struct Request
{
    /** Static identity of the requesting agent (1..N). */
    AgentId agent = kNoAgent;

    /** Tick at which the request was issued (request line asserted). */
    Tick issued = 0;

    /** True for urgent requests using the priority-integration machinery. */
    bool priority = false;

    /** Global issue sequence number (strictly increasing). */
    std::uint64_t seq = 0;

    /** @return True if this describes a real request. */
    bool valid() const { return agent != kNoAgent; }
};

} // namespace busarb

#endif // BUSARB_BUS_REQUEST_HH
