/**
 * @file
 * The parallel contention arbiter: wired-OR maximum finding (Section 2.1).
 *
 * Every competing agent applies its k-bit arbitration number to k wired-OR
 * lines and monitors them. When an agent sees a 1 on a line it is driving
 * with 0, it removes the lower-order bits of its number; if the line drops
 * back to 0 it re-applies them. The lines settle to the maximum competing
 * number. Taub proved the settle time is at most k/2 end-to-end bus
 * propagation delays [Taub84].
 *
 * Two views are provided:
 *  - settle(): an explicit round-by-round simulation of the remove/re-apply
 *    process over WiredOrLine instances, reporting how many propagation
 *    rounds were needed. Used to validate the mechanism and the timing
 *    model, and by the micro-benchmarks.
 *  - selectMax(): the logical outcome (maximum word, ties impossible since
 *    words embed unique static identities), used by the protocol layer in
 *    the performance simulations where only the result and a fixed
 *    overhead matter.
 */

#ifndef BUSARB_BUS_CONTENTION_HH
#define BUSARB_BUS_CONTENTION_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace busarb {

/** A competitor in one arbitration: an agent and its composite word. */
struct Competitor
{
    AgentId agent = kNoAgent;

    /**
     * The value driven onto the arbitration lines. For the plain parallel
     * contention arbiter this is the static identity; the RR and FCFS
     * protocols prepend dynamic high-order fields (Section 3).
     */
    std::uint64_t word = 0;
};

/** Outcome of the bit-level settle process. */
struct SettleResult
{
    /** The value the lines carry at steady state (0 if nobody competed). */
    std::uint64_t settledWord = 0;

    /** The winning agent (kNoAgent if nobody competed). */
    AgentId winner = kNoAgent;

    /**
     * Number of propagation rounds until no agent changed its applied
     * word. One round models one end-to-end bus propagation delay in
     * which every agent re-evaluates the lines simultaneously.
     */
    int rounds = 0;
};

/**
 * Bit-level model of the parallel contention arbiter.
 */
class ContentionArbiter
{
  public:
    /**
     * @param num_lines Number of arbitration lines k; words must fit in
     *        k bits. Must be in [1, 63].
     */
    explicit ContentionArbiter(int num_lines);

    /** @return Number of arbitration lines. */
    int numLines() const { return numLines_; }

    /**
     * Run the remove/re-apply settle process to a fixed point.
     *
     * @param competitors The agents applying words this arbitration.
     * @return Settled word, winner, and propagation-round count.
     */
    SettleResult settle(const std::vector<Competitor> &competitors) const;

  private:
    int numLines_;

    // Per-competitor applied words, reused across settle() calls so the
    // hot arbitration path performs no per-pass allocation.
    mutable std::vector<std::uint64_t> appliedScratch_;

    /** @return The word agent applies when the lines carry `lines`. */
    std::uint64_t appliedWord(std::uint64_t identity,
                              std::uint64_t lines) const;
};

/**
 * Logical maximum finding over competitor words.
 *
 * @param competitors Competing agents. Words must be unique: the static
 *        identity in the low bits guarantees this for every protocol in
 *        this library. Duplicate maximal words would mean two agents both
 *        believe they won (a protocol design error), so this panics.
 * @return The winning agent, or kNoAgent when the set is empty.
 */
AgentId selectMax(const std::vector<Competitor> &competitors);

/**
 * Number of arbitration lines needed for N agents: ceil(log2(N + 1)),
 * since identity 0 is reserved (Section 2.1).
 *
 * @param num_agents Number of agents N >= 1.
 * @return Line count k.
 */
int linesForAgents(int num_agents);

/**
 * Convenience: the settle-round count for one contest.
 *
 * @param num_lines Arbitration line count k.
 * @param competitors Competing words (may be empty: 0 rounds).
 * @return Propagation rounds the wired-OR lines need to settle.
 */
int settleRounds(int num_lines, const std::vector<Competitor> &competitors);

} // namespace busarb

#endif // BUSARB_BUS_CONTENTION_HH
