/**
 * @file
 * Model of an open-collector ("wired-OR") bus line.
 *
 * Section 2: "Each bus line used by the arbiter ... carries the wired-OR of
 * the signals applied by all agents". Each agent either lets the line float
 * (logical 0) or forces it to the asserted level (logical 1).
 */

#ifndef BUSARB_BUS_WIRED_OR_HH
#define BUSARB_BUS_WIRED_OR_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace busarb {

/**
 * A single wired-OR line shared by a fixed set of agents.
 *
 * Driver state is packed into uint64 words (bit a of word w = agent
 * w*64 + a driving), so a settle pass over 64 agents is a handful of
 * word operations and popcounts instead of a bit-at-a-time walk.
 * Tracks each driver's contribution so the line value can be recomputed
 * exactly, and counts assert edges for protocol logic that reacts to
 * pulses (the FCFS a-incr line of Section 3.2).
 */
class WiredOrLine
{
  public:
    /**
     * @param num_agents Number of attached agents; identities are 1..N.
     */
    explicit WiredOrLine(int num_agents);

    /** Agent drives the line to 1. Idempotent. */
    void assertLine(AgentId agent);

    /** Agent stops driving the line. Idempotent. */
    void releaseLine(AgentId agent);

    /** @return Wired-OR value: true iff any agent is driving the line. */
    bool read() const { return numAsserting_ > 0; }

    /** @return True iff `agent` is currently driving the line. */
    bool
    isAsserting(AgentId agent) const
    {
        assertInRange(agent);
        const auto bit = static_cast<std::size_t>(agent);
        return ((words_[bit >> 6] >> (bit & 63)) & 1ULL) != 0;
    }

    /** @return Number of agents currently driving the line. */
    int numAsserting() const { return numAsserting_; }

    /** @return Count of 0 -> 1 transitions of the line value. */
    std::uint64_t risingEdges() const { return risingEdges_; }

    /** Release all drivers. */
    void clear();

    /** @return Number of attached agents. */
    int numAgents() const { return numAgents_; }

    /** @return Number of 64-bit driver words (indexed by driverWord). */
    std::size_t numWords() const { return words_.size(); }

    /**
     * Raw driver word: bit a is set iff agent w*64 + a is driving.
     * (Agent ids start at 1, so bit 0 of word 0 is always clear.)
     *
     * @param w Word index, < numWords().
     * @return The packed driver word.
     */
    std::uint64_t
    driverWord(std::size_t w) const
    {
        BUSARB_ASSERT(w < words_.size(), "driver word out of range: ", w);
        return words_[w];
    }

    /**
     * Visit every driving agent in ascending id order.
     *
     * @param fn Callable invoked as fn(AgentId).
     */
    template <typename Fn>
    void
    forEachAsserting(Fn &&fn) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t bits = words_[w];
            while (bits != 0) {
                const int b = std::countr_zero(bits);
                fn(static_cast<AgentId>(w * 64 + b));
                bits &= bits - 1;
            }
        }
    }

  private:
    void assertInRange(AgentId agent) const;

    std::vector<std::uint64_t> words_; // bit (agent & 63) of word agent/64
    int numAgents_;
    int numAsserting_ = 0;
    std::uint64_t risingEdges_ = 0;
};

} // namespace busarb

#endif // BUSARB_BUS_WIRED_OR_HH
