/**
 * @file
 * Model of an open-collector ("wired-OR") bus line.
 *
 * Section 2: "Each bus line used by the arbiter ... carries the wired-OR of
 * the signals applied by all agents". Each agent either lets the line float
 * (logical 0) or forces it to the asserted level (logical 1).
 */

#ifndef BUSARB_BUS_WIRED_OR_HH
#define BUSARB_BUS_WIRED_OR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace busarb {

/**
 * A single wired-OR line shared by a fixed set of agents.
 *
 * Tracks each driver's contribution so the line value can be recomputed
 * exactly, and counts assert edges for protocol logic that reacts to
 * pulses (the FCFS a-incr line of Section 3.2).
 */
class WiredOrLine
{
  public:
    /**
     * @param num_agents Number of attached agents; identities are 1..N.
     */
    explicit WiredOrLine(int num_agents);

    /** Agent drives the line to 1. Idempotent. */
    void assertLine(AgentId agent);

    /** Agent stops driving the line. Idempotent. */
    void releaseLine(AgentId agent);

    /** @return Wired-OR value: true iff any agent is driving the line. */
    bool read() const { return numAsserting_ > 0; }

    /** @return True iff `agent` is currently driving the line. */
    bool isAsserting(AgentId agent) const;

    /** @return Number of agents currently driving the line. */
    int numAsserting() const { return numAsserting_; }

    /** @return Count of 0 -> 1 transitions of the line value. */
    std::uint64_t risingEdges() const { return risingEdges_; }

    /** Release all drivers. */
    void clear();

    /** @return Number of attached agents. */
    int numAgents() const { return static_cast<int>(driving_.size()) - 1; }

  private:
    std::vector<bool> driving_; // indexed by AgentId, slot 0 unused
    int numAsserting_ = 0;
    std::uint64_t risingEdges_ = 0;
};

} // namespace busarb

#endif // BUSARB_BUS_WIRED_OR_HH
