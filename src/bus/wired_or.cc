#include "bus/wired_or.hh"

#include "sim/logging.hh"

namespace busarb {

WiredOrLine::WiredOrLine(int num_agents)
    : driving_(static_cast<std::size_t>(num_agents) + 1, false)
{
    BUSARB_ASSERT(num_agents >= 1, "need at least one agent, got ",
                  num_agents);
}

void
WiredOrLine::assertLine(AgentId agent)
{
    BUSARB_ASSERT(agent >= 1 && agent <= numAgents(),
                  "agent id out of range: ", agent);
    if (driving_[static_cast<std::size_t>(agent)])
        return;
    driving_[static_cast<std::size_t>(agent)] = true;
    if (numAsserting_ == 0)
        ++risingEdges_;
    ++numAsserting_;
}

void
WiredOrLine::releaseLine(AgentId agent)
{
    BUSARB_ASSERT(agent >= 1 && agent <= numAgents(),
                  "agent id out of range: ", agent);
    if (!driving_[static_cast<std::size_t>(agent)])
        return;
    driving_[static_cast<std::size_t>(agent)] = false;
    --numAsserting_;
    BUSARB_ASSERT(numAsserting_ >= 0, "assert count underflow");
}

bool
WiredOrLine::isAsserting(AgentId agent) const
{
    BUSARB_ASSERT(agent >= 1 && agent <= numAgents(),
                  "agent id out of range: ", agent);
    return driving_[static_cast<std::size_t>(agent)];
}

void
WiredOrLine::clear()
{
    driving_.assign(driving_.size(), false);
    numAsserting_ = 0;
}

} // namespace busarb
