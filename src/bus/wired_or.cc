#include "bus/wired_or.hh"

#include <algorithm>

namespace busarb {

WiredOrLine::WiredOrLine(int num_agents)
    : words_((static_cast<std::size_t>(num_agents) + 1 + 63) / 64, 0),
      numAgents_(num_agents)
{
    BUSARB_ASSERT(num_agents >= 1, "need at least one agent, got ",
                  num_agents);
}

void
WiredOrLine::assertInRange(AgentId agent) const
{
    BUSARB_ASSERT(agent >= 1 && agent <= numAgents_,
                  "agent id out of range: ", agent);
}

void
WiredOrLine::assertLine(AgentId agent)
{
    assertInRange(agent);
    const auto bit = static_cast<std::size_t>(agent);
    std::uint64_t &word = words_[bit >> 6];
    const std::uint64_t mask = 1ULL << (bit & 63);
    if ((word & mask) != 0)
        return;
    word |= mask;
    if (numAsserting_ == 0)
        ++risingEdges_;
    ++numAsserting_;
}

void
WiredOrLine::releaseLine(AgentId agent)
{
    assertInRange(agent);
    const auto bit = static_cast<std::size_t>(agent);
    std::uint64_t &word = words_[bit >> 6];
    const std::uint64_t mask = 1ULL << (bit & 63);
    if ((word & mask) == 0)
        return;
    word &= ~mask;
    --numAsserting_;
    BUSARB_ASSERT(numAsserting_ >= 0, "assert count underflow");
}

void
WiredOrLine::clear()
{
    std::fill(words_.begin(), words_.end(), 0);
    numAsserting_ = 0;
}

} // namespace busarb
