#include "bus/async_contention.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <queue>

#include "sim/logging.hh"

namespace busarb {

namespace {

/**
 * The Section 2.1 reaction: the word an agent drives when the lines
 * (excluding its own contribution, which can never conflict with its
 * own identity) carry `others`.
 */
std::uint64_t
reactionWord(std::uint64_t identity, std::uint64_t others)
{
    const std::uint64_t conflicts = others & ~identity;
    if (conflicts == 0)
        return identity;
    const int top = 63 - std::countl_zero(conflicts);
    const std::uint64_t keep_mask = ~((2ULL << top) - 1ULL);
    return identity & keep_mask;
}

} // namespace

AsyncContentionArbiter::AsyncContentionArbiter(int num_lines)
    : numLines_(num_lines)
{
    BUSARB_ASSERT(num_lines >= 1 && num_lines <= 63,
                  "line count out of range: ", num_lines);
}

AsyncSettleResult
AsyncContentionArbiter::settle(
    const std::vector<PlacedCompetitor> &competitors) const
{
    AsyncSettleResult result;
    if (competitors.empty())
        return result;

    const std::uint64_t limit =
        (numLines_ >= 63) ? ~0ULL : ((1ULL << numLines_) - 1ULL);
    const std::size_t n = competitors.size();
    for (const auto &c : competitors) {
        BUSARB_ASSERT(c.word != 0 && c.word <= limit,
                      "bad word from agent ", c.agent);
        BUSARB_ASSERT(c.position >= 0.0 && c.position <= 1.0,
                      "position out of [0, 1] for agent ", c.agent);
    }

    // Per-driver output history: (time, word) steps, times increasing.
    std::vector<std::vector<std::pair<double, std::uint64_t>>> history(n);
    for (std::size_t i = 0; i < n; ++i)
        history[i].emplace_back(0.0, competitors[i].word);

    const auto output_at = [&](std::size_t i, double t) {
        // Latest step at or before t; before 0 the driver floats.
        const auto &h = history[i];
        std::uint64_t word = 0;
        for (const auto &[when, value] : h) {
            if (when <= t + 1e-12)
                word = value;
            else
                break;
        }
        return word;
    };

    // Event queue: re-evaluation of agent j at time t.
    using Event = std::pair<double, std::size_t>;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
    // Initial applications at t = 0 trigger evaluations at every agent
    // as each signal arrives.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            queue.emplace(std::abs(competitors[i].position -
                                   competitors[j].position),
                          j);
        }
        queue.emplace(0.0, i);
    }

    int transitions = 0;
    double last_change = 0.0;
    int guard = 0;
    while (!queue.empty()) {
        const auto [t, j] = queue.top();
        queue.pop();
        BUSARB_ASSERT(++guard < 100000, "async settle failed to converge");
        // What agent j currently sees from every other driver.
        std::uint64_t others = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (i == j)
                continue;
            const double d = std::abs(competitors[i].position -
                                      competitors[j].position);
            others |= output_at(i, t - d);
        }
        const std::uint64_t next =
            reactionWord(competitors[j].word, others);
        if (next == history[j].back().second)
            continue;
        history[j].emplace_back(t, next);
        ++transitions;
        last_change = std::max(last_change, t);
        // The transition propagates to every other agent.
        for (std::size_t i = 0; i < n; ++i) {
            if (i == j)
                continue;
            queue.emplace(t + std::abs(competitors[i].position -
                                       competitors[j].position),
                          i);
        }
    }

    std::uint64_t lines = 0;
    for (std::size_t i = 0; i < n; ++i)
        lines |= history[i].back().second;
    result.settledWord = lines;
    result.settleTime = last_change;
    result.transitions = transitions;
    for (const auto &c : competitors) {
        if (c.word == result.settledWord) {
            BUSARB_ASSERT(result.winner == kNoAgent,
                          "two agents settled on the same word");
            result.winner = c.agent;
        }
    }
    BUSARB_ASSERT(result.winner != kNoAgent,
                  "settled word matches no competitor");
    return result;
}

std::vector<PlacedCompetitor>
AsyncContentionArbiter::worstCasePlacement(int k)
{
    BUSARB_ASSERT(k >= 2 && k % 2 == 0, "need an even k >= 2, got ", k);
    // Alternating-bit identities at opposite ends of the bus: the
    // eventual winner (1010...) sits at one end; the runner-up
    // (0101...) at the other. The winner transiently removes its lower
    // bits when the runner-up's interleaved bits arrive, and re-applies
    // them only after the runner-up's removal has crossed the whole bus
    // — the remove/re-apply round trip Taub's worst case is built from.
    std::vector<PlacedCompetitor> competitors;
    std::uint64_t alt_hi = 0;
    std::uint64_t alt_lo = 0;
    for (int b = k - 1; b >= 0; --b) {
        if ((k - 1 - b) % 2 == 0)
            alt_hi |= 1ULL << b;
        else
            alt_lo |= 1ULL << b;
    }
    competitors.push_back(PlacedCompetitor{1, alt_hi, 0.0});
    competitors.push_back(PlacedCompetitor{2, alt_lo, 1.0});
    return competitors;
}

} // namespace busarb
