#include "bus/protocol_checker.hh"

#include <utility>

#include "sim/logging.hh"

namespace busarb {

ProtocolChecker::ProtocolChecker(
    std::unique_ptr<ArbitrationProtocol> inner, int max_retries)
    : inner_(std::move(inner)), maxRetries_(max_retries)
{
    BUSARB_ASSERT(inner_ != nullptr, "checker needs a protocol");
    BUSARB_ASSERT(max_retries >= 1, "max retries must be >= 1");
}

void
ProtocolChecker::checkTickMonotonic(Tick now)
{
    BUSARB_ASSERT(now >= lastTick_,
                  "protocol driven backwards in time: ", now, " < ",
                  lastTick_);
    lastTick_ = now;
}

void
ProtocolChecker::reset(int num_agents)
{
    inner_->reset(num_agents);
    wasReset_ = true;
    passOpen_ = false;
    consecutiveRetries_ = 0;
    numAgents_ = num_agents;
    posted_ = 0;
    served_ = 0;
    lastTick_ = 0;
    outstanding_.clear();
    inService_.clear();
    winnerPending_ = false;
}

void
ProtocolChecker::requestPosted(const Request &req)
{
    BUSARB_ASSERT(wasReset_, "requestPosted before reset");
    BUSARB_ASSERT(req.agent >= 1 && req.agent <= numAgents_,
                  "posted agent out of range: ", req.agent);
    BUSARB_ASSERT(req.seq != 0, "posted request without a sequence");
    BUSARB_ASSERT(!outstanding_.count(req.seq),
                  "request seq ", req.seq, " posted twice");
    checkTickMonotonic(req.issued);
    outstanding_.emplace(req.seq, req);
    ++posted_;
    inner_->requestPosted(req);
    BUSARB_ASSERT(inner_->wantsPass(),
                  "protocol does not want a pass right after a post");
}

bool
ProtocolChecker::wantsPass() const
{
    const bool wants = inner_->wantsPass();
    BUSARB_ASSERT(!(!wants && !outstanding_.empty()),
                  "requests outstanding but protocol refuses a pass");
    return wants;
}

void
ProtocolChecker::beginPass(Tick now)
{
    BUSARB_ASSERT(wasReset_, "beginPass before reset");
    BUSARB_ASSERT(!passOpen_, "beginPass while a pass is open");
    BUSARB_ASSERT(!winnerPending_,
                  "beginPass while a winner awaits its tenure");
    checkTickMonotonic(now);
    passOpen_ = true;
    inner_->beginPass(now);
}

PassResult
ProtocolChecker::completePass(Tick now)
{
    BUSARB_ASSERT(passOpen_, "completePass without beginPass");
    checkTickMonotonic(now);
    passOpen_ = false;
    const PassResult result = inner_->completePass(now);
    switch (result.kind) {
      case PassResult::Kind::kWinner: {
        consecutiveRetries_ = 0;
        const auto it = outstanding_.find(result.winner.seq);
        BUSARB_ASSERT(it != outstanding_.end(),
                      "winner seq ", result.winner.seq,
                      " was never posted or already served");
        BUSARB_ASSERT(it->second.agent == result.winner.agent,
                      "winner agent mismatch");
        BUSARB_ASSERT(result.winner.issued <= now,
                      "winner issued in the future");
        announcedWinner_ = result.winner.seq;
        winnerPending_ = true;
        break;
      }
      case PassResult::Kind::kRetry:
        ++consecutiveRetries_;
        BUSARB_ASSERT(consecutiveRetries_ <= maxRetries_,
                      "protocol livelock: ", consecutiveRetries_,
                      " consecutive retry passes");
        BUSARB_ASSERT(!outstanding_.empty(),
                      "retry pass with nothing outstanding");
        break;
      case PassResult::Kind::kIdle:
        consecutiveRetries_ = 0;
        // Requests posted between beginPass and completePass may be
        // outstanding without having competed; idle is only wrong if
        // the protocol keeps claiming it wants a pass yet never
        // produces a winner, which the retry bound catches.
        break;
    }
    return result;
}

void
ProtocolChecker::tenureStarted(const Request &req, Tick now)
{
    BUSARB_ASSERT(winnerPending_, "tenure started without a winner");
    BUSARB_ASSERT(req.seq == announcedWinner_,
                  "tenure started for seq ", req.seq,
                  " but the protocol selected ", announcedWinner_);
    checkTickMonotonic(now);
    winnerPending_ = false;
    const auto erased = outstanding_.erase(req.seq);
    BUSARB_ASSERT(erased == 1, "served request was not outstanding");
    inService_.insert(req.seq);
    ++served_;
    inner_->tenureStarted(req, now);
}

void
ProtocolChecker::tenureEnded(const Request &req, Tick now)
{
    BUSARB_ASSERT(inService_.erase(req.seq) == 1,
                  "tenure ended for a request not in service");
    checkTickMonotonic(now);
    inner_->tenureEnded(req, now);
}

std::string
ProtocolChecker::name() const
{
    return inner_->name() + " [checked]";
}

} // namespace busarb
