/**
 * @file
 * Bus activity tracing.
 *
 * One of the paper's arguments for the parallel contention arbiter
 * (Section 1) is that "the state of the arbiter is available and can be
 * monitored on the bus. This is useful for software initialization of
 * the system and for diagnosing system failures." This module is that
 * monitor for the simulation: a tracer receives every externally
 * visible bus event — request-line assertions, arbitration pass starts
 * and resolutions, bus tenures — and can render them as a timeline or
 * feed custom diagnostics.
 */

#ifndef BUSARB_BUS_TRACE_HH
#define BUSARB_BUS_TRACE_HH

#include <cstdint>
#include <iosfwd>

#include "bus/request.hh"
#include "sim/types.hh"

namespace busarb {

/**
 * Receives bus-level events. All callbacks default to no-ops so
 * implementations override only what they need.
 */
class BusTracer
{
  public:
    virtual ~BusTracer() = default;

    /** An agent asserted the request line. */
    virtual void
    onRequestPosted(const Request &req)
    {
        (void)req;
    }

    /** An arbitration pass began (competitors frozen). */
    virtual void
    onPassStarted(Tick now)
    {
        (void)now;
    }

    /**
     * An arbitration pass resolved.
     *
     * @param now Resolution tick.
     * @param pass_start Tick at which this pass began, so every
     *        resolution record is self-contained (the flight recorder
     *        may have evicted the matching onPassStarted event).
     * @param winner The winning request; invalid() for an empty pass
     *        (fairness release / round-robin wrap).
     * @param retry True when the protocol asked for an immediate retry.
     */
    virtual void
    onPassResolved(Tick now, Tick pass_start, const Request &winner,
                   bool retry)
    {
        (void)now;
        (void)pass_start;
        (void)winner;
        (void)retry;
    }

    /** A bus tenure (transfer) began for `req`. */
    virtual void
    onTenureStarted(const Request &req, Tick now)
    {
        (void)req;
        (void)now;
    }

    /** The transfer for `req` completed. */
    virtual void
    onTenureEnded(const Request &req, Tick now)
    {
        (void)req;
        (void)now;
    }
};

/**
 * Renders bus events as a human-readable timeline on a stream.
 */
class TextTracer : public BusTracer
{
  public:
    /**
     * @param os Output stream (must outlive the tracer).
     * @param max_events Stop printing after this many events (guards
     *        against accidentally tracing a full-length run); 0 means
     *        unlimited.
     */
    explicit TextTracer(std::ostream &os, std::uint64_t max_events = 0);

    void onRequestPosted(const Request &req) override;
    void onPassStarted(Tick now) override;
    void onPassResolved(Tick now, Tick pass_start, const Request &winner,
                        bool retry) override;
    void onTenureStarted(const Request &req, Tick now) override;
    void onTenureEnded(const Request &req, Tick now) override;

    /** @return Events printed so far. */
    std::uint64_t events() const { return events_; }

  private:
    std::ostream &os_;
    std::uint64_t maxEvents_;
    std::uint64_t events_ = 0;

    /** @return True if the event budget allows printing another line. */
    bool admit();

    void stamp(Tick now);
};

} // namespace busarb

#endif // BUSARB_BUS_TRACE_HH
