#include "bus/trace.hh"

#include <iomanip>
#include <ostream>

namespace busarb {

TextTracer::TextTracer(std::ostream &os, std::uint64_t max_events)
    : os_(os), maxEvents_(max_events)
{
}

bool
TextTracer::admit()
{
    if (maxEvents_ != 0 && events_ >= maxEvents_)
        return false;
    ++events_;
    if (maxEvents_ != 0 && events_ == maxEvents_) {
        os_ << "          ... (trace truncated after " << maxEvents_
            << " events)\n";
        return false;
    }
    return true;
}

void
TextTracer::stamp(Tick now)
{
    os_ << "[" << std::setw(9) << std::fixed << std::setprecision(3)
        << ticksToUnits(now) << "] ";
}

void
TextTracer::onRequestPosted(const Request &req)
{
    if (!admit())
        return;
    stamp(req.issued);
    os_ << "agent " << std::setw(2) << req.agent << " asserts request"
        << (req.priority ? " (priority)" : "") << "\n";
}

void
TextTracer::onPassStarted(Tick now)
{
    if (!admit())
        return;
    stamp(now);
    os_ << "arbitration pass starts\n";
}

void
TextTracer::onPassResolved(Tick now, Tick pass_start,
                           const Request &winner, bool retry)
{
    (void)pass_start;
    if (!admit())
        return;
    stamp(now);
    if (winner.valid()) {
        os_ << "arbitration resolves: agent " << winner.agent
            << " wins\n";
    } else if (retry) {
        os_ << "arbitration resolves empty (release/wrap cycle)\n";
    } else {
        os_ << "arbitration resolves with no competitors\n";
    }
}

void
TextTracer::onTenureStarted(const Request &req, Tick now)
{
    if (!admit())
        return;
    stamp(now);
    os_ << "agent " << std::setw(2) << req.agent
        << " becomes bus master (waited "
        << std::setprecision(3) << ticksToUnits(now - req.issued)
        << ")\n";
}

void
TextTracer::onTenureEnded(const Request &req, Tick now)
{
    if (!admit())
        return;
    stamp(now);
    os_ << "agent " << std::setw(2) << req.agent
        << " releases the bus\n";
}

} // namespace busarb
