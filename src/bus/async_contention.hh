/**
 * @file
 * Asynchronous, placement-aware model of the parallel contention
 * arbiter.
 *
 * The ContentionArbiter in contention.hh settles in synchronous rounds
 * (every agent re-evaluates once per end-to-end propagation). Real
 * wired-OR arbitration is asynchronous: each agent sits at a physical
 * position along the bus, sees every other driver's transitions after a
 * distance-proportional delay, and reacts immediately. Taub's theorem
 * [Taub84] says the lines settle within k/2 end-to-end propagation
 * delays for k-bit identities, with the worst case achieved by a
 * particular physical assignment of identities along the bus.
 *
 * This module simulates exactly that: a tiny nested discrete-event
 * simulation of per-agent line views, driven by pairwise propagation
 * delays. It exists to validate the arbiter at the signal level (and
 * Taub's bound empirically); the protocol-level simulations use the
 * cheaper synchronous model.
 */

#ifndef BUSARB_BUS_ASYNC_CONTENTION_HH
#define BUSARB_BUS_ASYNC_CONTENTION_HH

#include <cstdint>
#include <vector>

#include "bus/contention.hh"

namespace busarb {

/** A competitor with a physical position on the bus. */
struct PlacedCompetitor
{
    AgentId agent = kNoAgent;
    std::uint64_t word = 0;

    /** Position along the bus, in [0, 1] (end-to-end = 1). */
    double position = 0.0;
};

/** Outcome of the asynchronous settle simulation. */
struct AsyncSettleResult
{
    /** The steady-state wired-OR value (the maximum word). */
    std::uint64_t settledWord = 0;

    /** The winning agent (kNoAgent if nobody competed). */
    AgentId winner = kNoAgent;

    /**
     * Time until the last line transition anywhere on the bus, in
     * end-to-end propagation delays. Taub: <= k/2 (plus the initial
     * application transient).
     */
    double settleTime = 0.0;

    /** Total line transitions driven during the settle process. */
    int transitions = 0;
};

/**
 * Asynchronous settle simulation.
 */
class AsyncContentionArbiter
{
  public:
    /**
     * @param num_lines Arbitration line count k, in [1, 63].
     */
    explicit AsyncContentionArbiter(int num_lines);

    /** @return The line count k. */
    int numLines() const { return numLines_; }

    /**
     * Run the settle process.
     *
     * At t = 0 every competitor applies its full word. Each agent
     * continuously observes, for every line, the wired-OR of every
     * driver's output delayed by their pairwise distance, and re-drives
     * its own outputs according to the Section 2.1 rule (remove bits
     * below the highest conflicting line; re-apply when the conflict
     * clears). Reaction time at the agent is zero; all latency is wire
     * propagation.
     *
     * @param competitors Agents with words and positions in [0, 1].
     * @return Settled value, winner, and the exact settle time.
     */
    AsyncSettleResult
    settle(const std::vector<PlacedCompetitor> &competitors) const;

    /**
     * The worst-case identity placement Taub's proof uses: identities
     * chosen and placed so each conflict resolution must cross the
     * whole bus alternately.
     *
     * @param k Line count; must be even and >= 2.
     * @return Competitors (k/2 + 1 of them) realizing the slow case.
     */
    static std::vector<PlacedCompetitor> worstCasePlacement(int k);

  private:
    int numLines_;
};

} // namespace busarb

#endif // BUSARB_BUS_ASYNC_CONTENTION_HH
