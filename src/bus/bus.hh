/**
 * @file
 * The bus engine: transaction timing and arbitration scheduling.
 *
 * Implements the timing assumptions of Section 4.1:
 *  - bus transaction (service) times are deterministic and define the
 *    unit of time;
 *  - arbitration overhead is a fixed fraction of a transaction time
 *    (0.5 by default);
 *  - arbitration for the next master starts at the beginning of a bus
 *    transaction whenever requests are waiting, so the overhead is
 *    completely overlapped with bus service under load. When the bus is
 *    idle, a pass starts the moment a request arrives and its overhead
 *    is exposed.
 *
 * The engine is protocol-agnostic: all scheduling policy lives behind
 * ArbitrationProtocol.
 */

#ifndef BUSARB_BUS_BUS_HH
#define BUSARB_BUS_BUS_HH

#include <cstdint>
#include <memory>

#include "bus/protocol.hh"
#include "bus/request.hh"
#include "bus/trace.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace busarb {

/**
 * Receives service notifications from the bus.
 */
class BusObserver
{
  public:
    virtual ~BusObserver() = default;

    /** `req` was granted the bus; its transfer starts now. */
    virtual void onServiceStart(const Request &req, Tick now) = 0;

    /** The transfer for `req` completed now. */
    virtual void onServiceEnd(const Request &req, Tick now) = 0;
};

/** Timing parameters of the bus, in transaction-time units. */
struct BusParams
{
    /** Transfer (service) time of one bus transaction. */
    double transactionTime = 1.0;

    /** Duration of one arbitration pass (fixed-overhead mode). */
    double arbitrationOverhead = 0.5;

    /**
     * When true, pass durations derive from the bit-level parallel
     * contention arbiter instead of the fixed arbitrationOverhead
     * (Section 2.1: selection among 2^k devices takes about k/2
     * end-to-end propagations plus control overhead). Protocols
     * without a signal-level model fall back to arbitrationOverhead.
     */
    bool settleTiming = false;

    /** How the settle cost is charged when settleTiming is true. */
    enum class SettleMode {
        /**
         * Self-timed (asynchronous) bus: each pass lasts
         * (controlRounds + actual settle rounds) * propagationDelay,
         * with the rounds computed from the frozen competitor words.
         */
        kDynamic,
        /**
         * Synchronous bus: every pass is budgeted the worst case,
         * (controlRounds + ceil(k/2)) * propagationDelay, where k is
         * the protocol's arbitration line count — this is where FCFS's
         * wider composite identities cost real time (Section 3.2).
         */
        kWorstCase,
    };
    SettleMode settleMode = SettleMode::kDynamic;

    /** End-to-end bus propagation delay, in transaction times. */
    double propagationDelay = 0.05;

    /** Fixed control rounds per pass (start / grant handshake). */
    int controlRounds = 4;
};

/**
 * A single shared bus with one arbiter and N request-issuing agents.
 */
class Bus
{
  public:
    /**
     * @param queue Event queue driving the simulation.
     * @param protocol Arbitration protocol (reset() is called here).
     * @param num_agents Number of agents (identities 1..N).
     * @param params Timing parameters.
     */
    Bus(EventQueue &queue, std::unique_ptr<ArbitrationProtocol> protocol,
        int num_agents, const BusParams &params);

    Bus(const Bus &) = delete;
    Bus &operator=(const Bus &) = delete;

    /** Register the observer notified of service starts/ends. */
    void setObserver(BusObserver *observer) { observer_ = observer; }

    /** Attach a tracer receiving every bus-level event (may be null). */
    void setTracer(BusTracer *tracer) { tracer_ = tracer; }

    /**
     * An agent issues a request (asserts the request line).
     *
     * @param agent Issuing agent, 1..N.
     * @param priority True for an urgent request.
     * @return The Request record (carries the issue tick and sequence).
     */
    Request postRequest(AgentId agent, bool priority = false);

    /** @return The arbitration protocol in use. */
    ArbitrationProtocol &protocol() { return *protocol_; }
    const ArbitrationProtocol &protocol() const { return *protocol_; }

    /** @return Number of attached agents. */
    int numAgents() const { return numAgents_; }

    /** @return True while a transfer is in progress. */
    bool busy() const { return busy_; }

    /** @return Total ticks the bus spent transferring data. */
    Tick busyTicks() const { return busyTicks_; }

    /** @return Completed transactions. */
    std::uint64_t completedTransactions() const { return completed_; }

    /** @return Requests posted and not yet fully served. */
    std::uint64_t
    outstandingRequests() const
    {
        return seq_ - completed_;
    }

    /** @return Arbitration passes begun (including retries). */
    std::uint64_t arbitrationPasses() const { return passes_; }

    /** @return Passes that resolved to kRetry (wasted cycles). */
    std::uint64_t retryPasses() const { return retryPasses_; }

    /**
     * @return Ticks of arbitration overhead that delayed a grant (i.e.
     *         were not hidden under a transfer).
     */
    Tick exposedArbitrationTicks() const { return exposedArbTicks_; }

  private:
    EventQueue &queue_;
    std::unique_ptr<ArbitrationProtocol> protocol_;
    BusObserver *observer_ = nullptr;
    BusTracer *tracer_ = nullptr;
    int numAgents_;
    Tick serviceTicks_;
    Tick arbTicks_;
    bool settleTiming_;
    bool worstCaseSettle_;
    Tick propTicks_;
    int controlRounds_;

    bool busy_ = false;          // transfer in progress
    bool passInProgress_ = false;
    bool passStartPending_ = false; // begin-pass event scheduled
    bool winnerDecided_ = false; // next master chosen, waiting for the bus
    Request nextMaster_;
    Request current_;            // request being served while busy_
    Tick passStart_ = 0;         // when the in-flight pass began
    Tick lastFreeTick_ = 0;      // when the bus last became idle

    std::uint64_t seq_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t passes_ = 0;
    std::uint64_t retryPasses_ = 0;
    Tick busyTicks_ = 0;
    Tick exposedArbTicks_ = 0;

    /** Schedule a pass start if one is due and none is outstanding. */
    void maybeStartPass();

    /** Freeze competitors and launch the arbitration pass (deferred). */
    void startPassNow();

    /** Arbitration pass completes: resolve and act on the result. */
    void passCompleted();

    /** Grant the bus to `req` and start its transfer. */
    void startTenure(const Request &req);

    /** The active transfer finished. */
    void transactionCompleted();
};

} // namespace busarb

#endif // BUSARB_BUS_BUS_HH
