#include "baseline/aap_futurebus.hh"

#include "sim/logging.hh"

namespace busarb {

FuturebusAapProtocol::FuturebusAapProtocol(bool enable_priority)
    : enablePriority_(enable_priority)
{
}

void
FuturebusAapProtocol::reset(int num_agents)
{
    BUSARB_ASSERT(num_agents >= 1, "need at least one agent");
    numAgents_ = num_agents;
    idBits_ = linesForAgents(num_agents);
    pending_.reset(num_agents);
    inhibited_.assign(static_cast<std::size_t>(num_agents) + 1, false);
    frozen_.clear();
    passOpen_ = false;
    releases_ = 0;
}

bool
FuturebusAapProtocol::isInhibited(AgentId agent) const
{
    BUSARB_ASSERT(agent >= 1 && agent <= numAgents_,
                  "agent id out of range: ", agent);
    return inhibited_[static_cast<std::size_t>(agent)];
}

void
FuturebusAapProtocol::requestPosted(const Request &req)
{
    BUSARB_ASSERT(req.agent >= 1 && req.agent <= numAgents_,
                  "agent id out of range: ", req.agent);
    if (req.priority && !enablePriority_)
        BUSARB_FATAL("priority request posted but priority is disabled");
    pending_.add(req);
}

bool
FuturebusAapProtocol::wantsPass() const
{
    // Even when every requester is inhibited an arbitration cycle must
    // run: that empty cycle is the fairness release.
    return !pending_.empty();
}

void
FuturebusAapProtocol::beginPass(Tick now)
{
    (void)now;
    BUSARB_ASSERT(!passOpen_, "beginPass with a pass already open");
    passOpen_ = true;
    frozen_.clear();
    std::vector<bool> prio_added(
        static_cast<std::size_t>(numAgents_) + 1, false);
    pending_.forEach([&](PendingEntry &e) {
        if (e.req.priority &&
            !prio_added[static_cast<std::size_t>(e.req.agent)]) {
            // Priority requests ignore the inhibit protocol and assert
            // the priority line (most significant bit); an agent
            // presents its oldest priority request.
            prio_added[static_cast<std::size_t>(e.req.agent)] = true;
            frozen_.push_back(FrozenCompetitor{
                e.req.agent,
                (1ULL << idBits_) |
                    static_cast<std::uint64_t>(e.req.agent),
                e.req.seq});
        }
    });
    pending_.forEachAgentOldest([&](PendingEntry &e) {
        if (e.req.priority)
            return; // already competing above
        if (inhibited_[static_cast<std::size_t>(e.req.agent)])
            return; // does not assert the request line
        frozen_.push_back(FrozenCompetitor{
            e.req.agent, static_cast<std::uint64_t>(e.req.agent),
            e.req.seq});
    });
}

PassResult
FuturebusAapProtocol::completePass(Tick now)
{
    (void)now;
    BUSARB_ASSERT(passOpen_, "completePass without beginPass");
    passOpen_ = false;
    if (frozen_.empty()) {
        if (pending_.empty())
            return PassResult::makeIdle();
        // "The fairness release operation is an arbitration cycle in
        // which no agents assert the request line": all inhibit marks
        // clear and the next arbitration starts a new batch.
        for (std::size_t i = 0; i < inhibited_.size(); ++i)
            inhibited_[i] = false;
        ++releases_;
        return PassResult::makeRetry();
    }
    const FrozenCompetitor *best = &frozen_.front();
    for (const auto &c : frozen_) {
        if (c.word > best->word)
            best = &c;
    }
    PendingEntry *winner = pending_.findBySeq(best->agent, best->seq);
    BUSARB_ASSERT(winner != nullptr, "winning request vanished");
    return PassResult::makeWinner(winner->req);
}

void
FuturebusAapProtocol::tenureStarted(const Request &req, Tick now)
{
    (void)now;
    pending_.popBySeq(req.agent, req.seq);
}

void
FuturebusAapProtocol::tenureEnded(const Request &req, Tick now)
{
    (void)now;
    // "At the completion of its bus tenure, the agent marks itself as
    // inhibited." Priority service bypasses the fairness protocol and
    // leaves the inhibit state untouched.
    if (!req.priority)
        inhibited_[static_cast<std::size_t>(req.agent)] = true;
}

int
FuturebusAapProtocol::settleRoundsForPass() const
{
    std::vector<Competitor> competitors;
    competitors.reserve(frozen_.size());
    for (const auto &c : frozen_)
        competitors.push_back(Competitor{c.agent, c.word});
    return settleRounds(linesForAgents(numAgents_), competitors);
}

std::string
FuturebusAapProtocol::name() const
{
    return "AAP-2 (Futurebus inhibit / fairness release)";
}

} // namespace busarb
