/**
 * @file
 * Assured access protocol 1: the batching protocol adopted by the
 * Fastbus, NuBus, and Multibus II standards (Section 2.2).
 *
 * All requests that arrive at an idle bus assert the request line and
 * form a batch. A batch member competes in every arbitration until it is
 * granted the bus; it releases the request line at the start of its
 * tenure. A request generated while a batch is in progress must wait for
 * the batch to end (request line reads 0) before asserting the line; all
 * requests waiting at that moment form the next batch. Within a batch,
 * agents are served in descending order of their static identities —
 * which is exactly the unfairness the paper's RR/FCFS protocols remove
 * (the highest identity is always served first in its batch).
 */

#ifndef BUSARB_BASELINE_AAP_BATCH_HH
#define BUSARB_BASELINE_AAP_BATCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bus/contention.hh"
#include "bus/protocol.hh"
#include "core/pending_requests.hh"

namespace busarb {

/**
 * The Fastbus/NuBus/Multibus II batching assured-access protocol.
 *
 * Priority integration per Section 2.4: agents follow the batching
 * protocol for non-priority requests but ignore it for priority
 * requests, competing in every arbitration with an extra
 * most-significant priority line asserted — so priority requests are
 * always served before any batch member.
 */
class BatchAapProtocol : public ArbitrationProtocol
{
  public:
    /** @param enable_priority Accept urgent requests (Section 2.4). */
    explicit BatchAapProtocol(bool enable_priority = false);

    void reset(int num_agents) override;
    void requestPosted(const Request &req) override;
    bool wantsPass() const override;
    void beginPass(Tick now) override;
    PassResult completePass(Tick now) override;
    void tenureStarted(const Request &req, Tick now) override;
    std::string name() const override;
    int settleRoundsForPass() const override;

    int
    arbitrationLineCount() const override
    {
        return linesForAgents(numAgents_);
    }

    /** @return Number of batches formed so far. */
    std::uint64_t batchesFormed() const { return batchesFormed_; }

  private:
    bool enablePriority_ = false;
    int numAgents_ = 0;
    int idBits_ = 0;
    int priorityPending_ = 0;
    PendingRequests pending_;
    bool passOpen_ = false;
    std::uint64_t batchesFormed_ = 0;

    /** seq numbers of the requests in the current batch. */
    std::vector<std::uint64_t> batch_;

    /**
     * Tick at which the current batch formed. Requests issued at the
     * same instant see the request line still low (the assertion has
     * not propagated yet) and join the forming batch.
     */
    Tick batchFormedAt_ = -1;

    struct FrozenCompetitor
    {
        AgentId agent;
        std::uint64_t word;
        std::uint64_t seq;
    };
    std::vector<FrozenCompetitor> frozen_;

    /** @return True if `seq` is a member of the current batch. */
    bool inBatch(std::uint64_t seq) const;

    /** Move every deferred pending request into a fresh batch. */
    void formNewBatch(Tick now);
};

} // namespace busarb

#endif // BUSARB_BASELINE_AAP_BATCH_HH
