/**
 * @file
 * Idealized central arbiters: reference schedulers for validating the
 * distributed protocols.
 *
 * The paper claims its RR protocol "implements true round-robin
 * scheduling, identical to the central round-robin arbiter" and that the
 * FCFS protocol is "very close to true first-come first-serve". These
 * central arbiters give those oracles concrete form: they see the global
 * request state directly (no distributed trickery) and are driven through
 * the same pass-based interface so schedules can be compared one-to-one.
 */

#ifndef BUSARB_BASELINE_CENTRAL_HH
#define BUSARB_BASELINE_CENTRAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bus/protocol.hh"
#include "core/pending_requests.hh"

namespace busarb {

/**
 * True round-robin: a central pointer scans identities N, N-1, ..., 1
 * cyclically, starting just below the last agent served.
 */
class CentralRoundRobinProtocol : public ArbitrationProtocol
{
  public:
    CentralRoundRobinProtocol() = default;

    void reset(int num_agents) override;
    void requestPosted(const Request &req) override;
    bool wantsPass() const override;
    void beginPass(Tick now) override;
    PassResult completePass(Tick now) override;
    void tenureStarted(const Request &req, Tick now) override;
    std::string name() const override;

  private:
    int numAgents_ = 0;
    AgentId lastServed_ = 0; // 0 = nobody yet
    PendingRequests pending_;
    bool passOpen_ = false;
    std::vector<std::uint64_t> frozenSeqs_;
    std::vector<AgentId> frozenAgents_;
};

/**
 * True first-come first-serve: the globally oldest request wins
 * (ties in arrival time broken by issue order).
 */
class CentralFcfsProtocol : public ArbitrationProtocol
{
  public:
    CentralFcfsProtocol() = default;

    void reset(int num_agents) override;
    void requestPosted(const Request &req) override;
    bool wantsPass() const override;
    void beginPass(Tick now) override;
    PassResult completePass(Tick now) override;
    void tenureStarted(const Request &req, Tick now) override;
    std::string name() const override;

  private:
    int numAgents_ = 0;
    PendingRequests pending_;
    bool passOpen_ = false;
    std::vector<std::uint64_t> frozenSeqs_;
    std::vector<AgentId> frozenAgents_;
};

} // namespace busarb

#endif // BUSARB_BASELINE_CENTRAL_HH
