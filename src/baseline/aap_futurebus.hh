/**
 * @file
 * Assured access protocol 2: the Futurebus inhibit / fairness-release
 * protocol (Section 2.2).
 *
 * An agent with a request asserts the request line and competes in
 * successive arbitrations until it wins. At the completion of its tenure
 * it marks itself "inhibited" and neither asserts the request line nor
 * competes until a fairness release: an arbitration cycle in which no
 * agent asserts the request line (either nothing is outstanding or every
 * requester is inhibited). A batch therefore starts and ends with a
 * fairness-release cycle; no agent is master twice in a batch, but a
 * request generated mid-batch joins it if its agent has not yet been
 * served in the batch.
 */

#ifndef BUSARB_BASELINE_AAP_FUTUREBUS_HH
#define BUSARB_BASELINE_AAP_FUTUREBUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bus/contention.hh"
#include "bus/protocol.hh"
#include "core/pending_requests.hh"

namespace busarb {

/**
 * The Futurebus inhibit-based assured-access protocol.
 */
class FuturebusAapProtocol : public ArbitrationProtocol
{
  public:
    /** @param enable_priority Accept urgent requests (Section 2.4):
     *  priority requests ignore the inhibit protocol, compete in every
     *  arbitration with the priority line asserted, and do not inhibit
     *  their agent. */
    explicit FuturebusAapProtocol(bool enable_priority = false);

    void reset(int num_agents) override;
    void requestPosted(const Request &req) override;
    bool wantsPass() const override;
    void beginPass(Tick now) override;
    PassResult completePass(Tick now) override;
    void tenureStarted(const Request &req, Tick now) override;
    void tenureEnded(const Request &req, Tick now) override;
    std::string name() const override;
    int settleRoundsForPass() const override;

    int
    arbitrationLineCount() const override
    {
        return linesForAgents(numAgents_);
    }

    /** @return Fairness-release cycles that have occurred. */
    std::uint64_t fairnessReleases() const { return releases_; }

    /** @return True if `agent` is currently inhibited. */
    bool isInhibited(AgentId agent) const;

  private:
    bool enablePriority_ = false;
    int numAgents_ = 0;
    int idBits_ = 0;
    PendingRequests pending_;
    std::vector<bool> inhibited_; // indexed by agent id
    bool passOpen_ = false;
    std::uint64_t releases_ = 0;

    struct FrozenCompetitor
    {
        AgentId agent;
        std::uint64_t word;
        std::uint64_t seq;
    };
    std::vector<FrozenCompetitor> frozen_;
};

} // namespace busarb

#endif // BUSARB_BASELINE_AAP_FUTUREBUS_HH
