#include "baseline/ticket_fcfs.hh"

#include "sim/logging.hh"

namespace busarb {

TicketFcfsProtocol::TicketFcfsProtocol(const TicketFcfsConfig &config)
    : config_(config)
{
    BUSARB_ASSERT(config_.ticketBits >= 0 && config_.ticketBits <= 62,
                  "ticket width out of range: ", config_.ticketBits);
}

void
TicketFcfsProtocol::reset(int num_agents)
{
    BUSARB_ASSERT(num_agents >= 1, "need at least one agent");
    numAgents_ = num_agents;
    nextTicket_ = 0;
    pending_.reset(num_agents);
    frozen_.clear();
    passOpen_ = false;
}

void
TicketFcfsProtocol::requestPosted(const Request &req)
{
    BUSARB_ASSERT(!req.priority,
                  "the ticket arbiter models non-priority traffic only");
    PendingEntry &entry = pending_.add(req);
    std::uint64_t ticket = nextTicket_++;
    if (config_.ticketBits > 0)
        ticket &= (1ULL << config_.ticketBits) - 1ULL;
    // Reuse the entry's counter field to hold the ticket.
    entry.counter = ticket;
}

bool
TicketFcfsProtocol::wantsPass() const
{
    return !pending_.empty();
}

bool
TicketFcfsProtocol::ticketBefore(std::uint64_t a, std::uint64_t b) const
{
    if (config_.ticketBits == 0)
        return a < b;
    // Circular comparison: a precedes b when (b - a) mod 2^w is in the
    // lower half of the ring. Correct while the outstanding window is
    // smaller than 2^(w-1) tickets.
    const std::uint64_t mask = (1ULL << config_.ticketBits) - 1ULL;
    const std::uint64_t diff = (b - a) & mask;
    return diff != 0 && diff < (1ULL << (config_.ticketBits - 1));
}

void
TicketFcfsProtocol::beginPass(Tick now)
{
    (void)now;
    BUSARB_ASSERT(!passOpen_, "beginPass with a pass already open");
    passOpen_ = true;
    frozen_.clear();
    pending_.forEachAgentOldest([&](PendingEntry &e) {
        frozen_.push_back(
            FrozenCompetitor{e.req.agent, e.counter, e.req.seq});
    });
}

PassResult
TicketFcfsProtocol::completePass(Tick now)
{
    (void)now;
    BUSARB_ASSERT(passOpen_, "completePass without beginPass");
    passOpen_ = false;
    if (frozen_.empty()) {
        BUSARB_ASSERT(pending_.empty(),
                      "pass frozen empty with requests pending");
        return PassResult::makeIdle();
    }
    const FrozenCompetitor *best = &frozen_.front();
    for (const auto &c : frozen_) {
        if (ticketBefore(c.ticket, best->ticket))
            best = &c;
    }
    PendingEntry *winner = pending_.findBySeq(best->agent, best->seq);
    BUSARB_ASSERT(winner != nullptr, "winning request vanished");
    return PassResult::makeWinner(winner->req);
}

void
TicketFcfsProtocol::tenureStarted(const Request &req, Tick now)
{
    (void)now;
    pending_.popBySeq(req.agent, req.seq);
}

std::string
TicketFcfsProtocol::name() const
{
    return "Ticket FCFS [ShAh81]";
}

} // namespace busarb
