/**
 * @file
 * The basic parallel contention arbiter: fixed-priority service.
 *
 * Section 2.2: "The parallel contention arbiter ... implements fixed
 * priority service, in which an agent's priority is defined by its
 * assigned arbitration number." No fairness mechanism at all; provided as
 * the bottom-line baseline.
 */

#ifndef BUSARB_BASELINE_FIXED_PRIORITY_HH
#define BUSARB_BASELINE_FIXED_PRIORITY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bus/contention.hh"
#include "bus/protocol.hh"
#include "core/pending_requests.hh"

namespace busarb {

/**
 * Fixed-priority arbitration: the highest requesting identity always
 * wins. Supports the Section 2.4 priority line (priority requests gain a
 * most significant bit).
 */
class FixedPriorityProtocol : public ArbitrationProtocol
{
  public:
    /** @param enable_priority Accept urgent requests with a priority bit. */
    explicit FixedPriorityProtocol(bool enable_priority = false);

    void reset(int num_agents) override;
    void requestPosted(const Request &req) override;
    bool wantsPass() const override;
    void beginPass(Tick now) override;
    PassResult completePass(Tick now) override;
    void tenureStarted(const Request &req, Tick now) override;
    std::string name() const override;
    int settleRoundsForPass() const override;

    int
    arbitrationLineCount() const override
    {
        return idBits_ + (enablePriority_ ? 1 : 0);
    }

  private:
    bool enablePriority_;
    int numAgents_ = 0;
    int idBits_ = 0;
    PendingRequests pending_;
    bool passOpen_ = false;

    struct FrozenCompetitor
    {
        AgentId agent;
        std::uint64_t word;
        std::uint64_t seq;
    };
    std::vector<FrozenCompetitor> frozen_;
};

} // namespace busarb

#endif // BUSARB_BASELINE_FIXED_PRIORITY_HH
