#include "baseline/fixed_priority.hh"

#include "sim/logging.hh"

namespace busarb {

FixedPriorityProtocol::FixedPriorityProtocol(bool enable_priority)
    : enablePriority_(enable_priority)
{
}

void
FixedPriorityProtocol::reset(int num_agents)
{
    BUSARB_ASSERT(num_agents >= 1, "need at least one agent");
    numAgents_ = num_agents;
    idBits_ = linesForAgents(num_agents);
    pending_.reset(num_agents);
    frozen_.clear();
    passOpen_ = false;
}

void
FixedPriorityProtocol::requestPosted(const Request &req)
{
    BUSARB_ASSERT(req.agent >= 1 && req.agent <= numAgents_,
                  "agent id out of range: ", req.agent);
    if (req.priority && !enablePriority_)
        BUSARB_FATAL("priority request posted but priority is disabled");
    pending_.add(req);
}

bool
FixedPriorityProtocol::wantsPass() const
{
    return !pending_.empty();
}

void
FixedPriorityProtocol::beginPass(Tick now)
{
    (void)now;
    BUSARB_ASSERT(!passOpen_, "beginPass with a pass already open");
    passOpen_ = true;
    frozen_.clear();
    pending_.forEachAgentOldest([&](PendingEntry &e) {
        std::uint64_t word = static_cast<std::uint64_t>(e.req.agent);
        if (enablePriority_ && e.req.priority)
            word |= 1ULL << idBits_;
        frozen_.push_back(FrozenCompetitor{e.req.agent, word, e.req.seq});
    });
    if (enablePriority_) {
        // An agent with both classes pending presents its priority
        // request; rebuild per-agent words accordingly.
        for (auto &c : frozen_) {
            PendingEntry *best = nullptr;
            std::uint64_t best_word = 0;
            pending_.forEachOfAgent(c.agent, [&](PendingEntry &e) {
                std::uint64_t w = static_cast<std::uint64_t>(e.req.agent);
                if (e.req.priority)
                    w |= 1ULL << idBits_;
                if (best == nullptr || w > best_word) {
                    best = &e;
                    best_word = w;
                }
            });
            c.word = best_word;
            c.seq = best->req.seq;
        }
    }
}

PassResult
FixedPriorityProtocol::completePass(Tick now)
{
    (void)now;
    BUSARB_ASSERT(passOpen_, "completePass without beginPass");
    passOpen_ = false;
    if (frozen_.empty()) {
        BUSARB_ASSERT(pending_.empty(),
                      "pass frozen empty with requests pending");
        return PassResult::makeIdle();
    }
    const FrozenCompetitor *best = &frozen_.front();
    for (const auto &c : frozen_) {
        if (c.word > best->word)
            best = &c;
    }
    PendingEntry *winner = pending_.findBySeq(best->agent, best->seq);
    BUSARB_ASSERT(winner != nullptr, "winning request vanished");
    return PassResult::makeWinner(winner->req);
}

void
FixedPriorityProtocol::tenureStarted(const Request &req, Tick now)
{
    (void)now;
    pending_.popBySeq(req.agent, req.seq);
}

int
FixedPriorityProtocol::settleRoundsForPass() const
{
    std::vector<Competitor> competitors;
    competitors.reserve(frozen_.size());
    for (const auto &c : frozen_)
        competitors.push_back(Competitor{c.agent, c.word});
    return settleRounds(idBits_ + (enablePriority_ ? 1 : 0), competitors);
}

std::string
FixedPriorityProtocol::name() const
{
    return "Fixed priority (parallel contention)";
}

} // namespace busarb
