#include "baseline/aap_batch.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace busarb {

BatchAapProtocol::BatchAapProtocol(bool enable_priority)
    : enablePriority_(enable_priority)
{
}

void
BatchAapProtocol::reset(int num_agents)
{
    BUSARB_ASSERT(num_agents >= 1, "need at least one agent");
    numAgents_ = num_agents;
    idBits_ = linesForAgents(num_agents);
    pending_.reset(num_agents);
    batch_.clear();
    frozen_.clear();
    passOpen_ = false;
    batchesFormed_ = 0;
    priorityPending_ = 0;
}

bool
BatchAapProtocol::inBatch(std::uint64_t seq) const
{
    return std::find(batch_.begin(), batch_.end(), seq) != batch_.end();
}

void
BatchAapProtocol::formNewBatch(Tick now)
{
    BUSARB_ASSERT(batch_.empty(), "forming a batch while one is active");
    pending_.forEach([&](PendingEntry &e) {
        // Priority requests ignore the batching protocol entirely.
        if (!e.req.priority)
            batch_.push_back(e.req.seq);
    });
    if (!batch_.empty()) {
        ++batchesFormed_;
        batchFormedAt_ = now;
    }
}

void
BatchAapProtocol::requestPosted(const Request &req)
{
    BUSARB_ASSERT(req.agent >= 1 && req.agent <= numAgents_,
                  "agent id out of range: ", req.agent);
    if (req.priority && !enablePriority_)
        BUSARB_FATAL("priority request posted but priority is disabled");
    pending_.add(req);
    if (req.priority) {
        // Priority requests compete in every arbitration (Section 2.4).
        ++priorityPending_;
        return;
    }
    if (batch_.empty()) {
        // Request line reads 0: the request asserts it and forms a new
        // batch.
        formNewBatch(req.issued);
    } else if (req.issued == batchFormedAt_) {
        // The batch formed at this very instant; the line assertion has
        // not propagated yet, so this request joins it too.
        batch_.push_back(req.seq);
    }
    // Otherwise: a batch is in progress; the request waits for its end.
}

bool
BatchAapProtocol::wantsPass() const
{
    // Batch members assert the request line (and the batch is non-empty
    // whenever a non-priority request is pending, since a new batch
    // forms the moment the old one drains); priority requests assert it
    // unconditionally.
    return !batch_.empty() || priorityPending_ > 0;
}

void
BatchAapProtocol::beginPass(Tick now)
{
    (void)now;
    BUSARB_ASSERT(!passOpen_, "beginPass with a pass already open");
    passOpen_ = true;
    frozen_.clear();
    std::vector<bool> prio_added(
        static_cast<std::size_t>(numAgents_) + 1, false);
    pending_.forEach([&](PendingEntry &e) {
        if (e.req.priority) {
            if (prio_added[static_cast<std::size_t>(e.req.agent)])
                return; // an agent presents its oldest priority request
            prio_added[static_cast<std::size_t>(e.req.agent)] = true;
            // Priority line asserted: most significant bit.
            frozen_.push_back(FrozenCompetitor{
                e.req.agent,
                (1ULL << idBits_) |
                    static_cast<std::uint64_t>(e.req.agent),
                e.req.seq});
        } else if (inBatch(e.req.seq)) {
            frozen_.push_back(FrozenCompetitor{
                e.req.agent, static_cast<std::uint64_t>(e.req.agent),
                e.req.seq});
        }
    });
}

PassResult
BatchAapProtocol::completePass(Tick now)
{
    (void)now;
    BUSARB_ASSERT(passOpen_, "completePass without beginPass");
    passOpen_ = false;
    if (frozen_.empty()) {
        BUSARB_ASSERT(batch_.empty(),
                      "batch members vanished without service");
        return PassResult::makeIdle();
    }
    const FrozenCompetitor *best = &frozen_.front();
    for (const auto &c : frozen_) {
        if (c.word > best->word)
            best = &c;
    }
    PendingEntry *winner = pending_.findBySeq(best->agent, best->seq);
    BUSARB_ASSERT(winner != nullptr, "winning request vanished");
    return PassResult::makeWinner(winner->req);
}

void
BatchAapProtocol::tenureStarted(const Request &req, Tick now)
{
    (void)now;
    if (req.priority) {
        BUSARB_ASSERT(priorityPending_ > 0, "priority count underflow");
        --priorityPending_;
        pending_.popBySeq(req.agent, req.seq);
        return;
    }
    // The agent releases the request line at the start of its tenure.
    auto it = std::find(batch_.begin(), batch_.end(), req.seq);
    BUSARB_ASSERT(it != batch_.end(), "served request was not in batch");
    batch_.erase(it);
    pending_.popBySeq(req.agent, req.seq);
    if (batch_.empty()) {
        // The request line drops to 0: every waiting request asserts it
        // and the next batch forms.
        formNewBatch(now);
    }
}

int
BatchAapProtocol::settleRoundsForPass() const
{
    std::vector<Competitor> competitors;
    competitors.reserve(frozen_.size());
    for (const auto &c : frozen_)
        competitors.push_back(Competitor{c.agent, c.word});
    return settleRounds(linesForAgents(numAgents_), competitors);
}

std::string
BatchAapProtocol::name() const
{
    return "AAP-1 (Fastbus/NuBus/Multibus II batching)";
}

} // namespace busarb
