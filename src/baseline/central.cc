#include "baseline/central.hh"

#include "sim/logging.hh"

namespace busarb {

// ------------------------------------------------------------ central RR

void
CentralRoundRobinProtocol::reset(int num_agents)
{
    BUSARB_ASSERT(num_agents >= 1, "need at least one agent");
    numAgents_ = num_agents;
    lastServed_ = 0;
    pending_.reset(num_agents);
    passOpen_ = false;
    frozenSeqs_.clear();
    frozenAgents_.clear();
}

void
CentralRoundRobinProtocol::requestPosted(const Request &req)
{
    BUSARB_ASSERT(!req.priority,
                  "central reference arbiters ignore priority classes");
    pending_.add(req);
}

bool
CentralRoundRobinProtocol::wantsPass() const
{
    return !pending_.empty();
}

void
CentralRoundRobinProtocol::beginPass(Tick now)
{
    (void)now;
    BUSARB_ASSERT(!passOpen_, "beginPass with a pass already open");
    passOpen_ = true;
    frozenSeqs_.clear();
    frozenAgents_.clear();
    pending_.forEachAgentOldest([&](PendingEntry &e) {
        frozenAgents_.push_back(e.req.agent);
        frozenSeqs_.push_back(e.req.seq);
    });
}

PassResult
CentralRoundRobinProtocol::completePass(Tick now)
{
    (void)now;
    BUSARB_ASSERT(passOpen_, "completePass without beginPass");
    passOpen_ = false;
    if (frozenAgents_.empty()) {
        BUSARB_ASSERT(pending_.empty(),
                      "pass frozen empty with requests pending");
        return PassResult::makeIdle();
    }
    // Scan order after serving j: j-1, ..., 1, N, ..., j. Find the best
    // requester under that cyclic descending order.
    const AgentId pivot = (lastServed_ == 0) ? numAgents_ + 1 : lastServed_;
    AgentId best = kNoAgent;
    std::uint64_t best_seq = 0;
    // Rank: agents below the pivot come first (descending), then the
    // rest (descending).
    auto rank = [&](AgentId a) {
        return (a < pivot) ? (pivot - a) : (numAgents_ + pivot - a);
    };
    for (std::size_t i = 0; i < frozenAgents_.size(); ++i) {
        if (best == kNoAgent ||
            rank(frozenAgents_[i]) < rank(best)) {
            best = frozenAgents_[i];
            best_seq = frozenSeqs_[i];
        }
    }
    lastServed_ = best;
    PendingEntry *winner = pending_.findBySeq(best, best_seq);
    BUSARB_ASSERT(winner != nullptr, "winning request vanished");
    return PassResult::makeWinner(winner->req);
}

void
CentralRoundRobinProtocol::tenureStarted(const Request &req, Tick now)
{
    (void)now;
    pending_.popBySeq(req.agent, req.seq);
}

std::string
CentralRoundRobinProtocol::name() const
{
    return "Central round-robin (reference)";
}

// ---------------------------------------------------------- central FCFS

void
CentralFcfsProtocol::reset(int num_agents)
{
    BUSARB_ASSERT(num_agents >= 1, "need at least one agent");
    numAgents_ = num_agents;
    pending_.reset(num_agents);
    passOpen_ = false;
    frozenSeqs_.clear();
    frozenAgents_.clear();
}

void
CentralFcfsProtocol::requestPosted(const Request &req)
{
    BUSARB_ASSERT(!req.priority,
                  "central reference arbiters ignore priority classes");
    pending_.add(req);
}

bool
CentralFcfsProtocol::wantsPass() const
{
    return !pending_.empty();
}

void
CentralFcfsProtocol::beginPass(Tick now)
{
    (void)now;
    BUSARB_ASSERT(!passOpen_, "beginPass with a pass already open");
    passOpen_ = true;
    frozenSeqs_.clear();
    frozenAgents_.clear();
    pending_.forEachAgentOldest([&](PendingEntry &e) {
        frozenAgents_.push_back(e.req.agent);
        frozenSeqs_.push_back(e.req.seq);
    });
}

PassResult
CentralFcfsProtocol::completePass(Tick now)
{
    (void)now;
    BUSARB_ASSERT(passOpen_, "completePass without beginPass");
    passOpen_ = false;
    if (frozenAgents_.empty()) {
        BUSARB_ASSERT(pending_.empty(),
                      "pass frozen empty with requests pending");
        return PassResult::makeIdle();
    }
    // The globally oldest request: smallest issue tick, then smallest
    // sequence number (issue order).
    PendingEntry *best = nullptr;
    for (std::size_t i = 0; i < frozenAgents_.size(); ++i) {
        PendingEntry *e = pending_.findBySeq(frozenAgents_[i],
                                             frozenSeqs_[i]);
        BUSARB_ASSERT(e != nullptr, "frozen request vanished");
        if (best == nullptr || e->req.issued < best->req.issued ||
            (e->req.issued == best->req.issued &&
             e->req.seq < best->req.seq)) {
            best = e;
        }
    }
    return PassResult::makeWinner(best->req);
}

void
CentralFcfsProtocol::tenureStarted(const Request &req, Tick now)
{
    (void)now;
    pending_.popBySeq(req.agent, req.seq);
}

std::string
CentralFcfsProtocol::name() const
{
    return "Central FCFS (reference)";
}

} // namespace busarb
