/**
 * @file
 * The Sharma-Ahuja ticket-based FCFS bus allocation scheme [ShAh81],
 * referenced by the paper as prior FCFS work.
 *
 * Each arriving request takes the next ticket from a conceptual global
 * dispenser; the arbiter grants the bus to the lowest outstanding ticket.
 * With an unbounded dispenser this is exact FCFS in arrival order. The
 * model exposes the ticket-counter width so the wrap-around hazard that
 * makes a hardware dispenser tricky (and motivated the paper's bounded
 * waiting-time counters) can be studied.
 */

#ifndef BUSARB_BASELINE_TICKET_FCFS_HH
#define BUSARB_BASELINE_TICKET_FCFS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bus/protocol.hh"
#include "core/pending_requests.hh"

namespace busarb {

/** Configuration of the ticket arbiter. */
struct TicketFcfsConfig
{
    /**
     * Ticket counter width in bits; 0 means unbounded (exact FCFS).
     * With w > 0, tickets are issued modulo 2^w and compared in a
     * circular order that is correct while fewer than 2^(w-1) requests
     * are outstanding.
     */
    int ticketBits = 0;
};

/**
 * Ticket-dispenser FCFS arbitration [ShAh81].
 */
class TicketFcfsProtocol : public ArbitrationProtocol
{
  public:
    explicit TicketFcfsProtocol(const TicketFcfsConfig &config = {});

    void reset(int num_agents) override;
    void requestPosted(const Request &req) override;
    bool wantsPass() const override;
    void beginPass(Tick now) override;
    PassResult completePass(Tick now) override;
    void tenureStarted(const Request &req, Tick now) override;
    std::string name() const override;

    /** @return Tickets issued so far. */
    std::uint64_t ticketsIssued() const { return nextTicket_; }

  private:
    TicketFcfsConfig config_;
    int numAgents_ = 0;
    std::uint64_t nextTicket_ = 0;
    PendingRequests pending_;
    bool passOpen_ = false;

    struct FrozenCompetitor
    {
        AgentId agent;
        std::uint64_t ticket;
        std::uint64_t seq;
    };
    std::vector<FrozenCompetitor> frozen_;

    /** Circular "a is before b" comparison under a bounded counter. */
    bool ticketBefore(std::uint64_t a, std::uint64_t b) const;
};

} // namespace busarb

#endif // BUSARB_BASELINE_TICKET_FCFS_HH
