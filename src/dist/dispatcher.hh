/**
 * @file
 * The fleet dispatcher: turns one sweep into a fleet of
 * `busarb_sweep --worker-shard` processes with crash recovery.
 *
 * The coordinator plans shards (shard_plan.hh), materializes one task
 * file per shard plus a grid.spec identity file in the shard
 * directory, then keeps up to `fleet` workers running until every
 * shard's manifest is complete. Scheduling is dynamic: shards are
 * handed to free slots in index order, so requesting more shards than
 * fleet slots yields work-stealing-style rebalancing — a slot that
 * finishes early simply takes the next pending shard, and a slow host
 * never strands more than one shard's tail.
 *
 * Crash recovery distinguishes two failure classes by exit status:
 *
 *  - A worker that dies on a signal (SIGKILL drill, OOM) or exits 1 is
 *    re-dispatched against the same manifest, which already holds its
 *    completed cells; each shard has a bounded retry budget, after
 *    which the sweep gives up with exit 1.
 *  - A worker that exits 2 found a spec-level problem (corrupt
 *    manifest, fingerprint mismatch, bad cell spec). Retrying cannot
 *    help, so the fleet is torn down and the sweep exits 2
 *    immediately.
 *
 * When every shard completes, the results are reassembled with
 * merge.hh and handed back exactly as runScenarioGrid would have
 * produced them.
 */

#ifndef BUSARB_DIST_DISPATCHER_HH
#define BUSARB_DIST_DISPATCHER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "experiment/runner.hh"
#include "experiment/scenario_spec.hh"
#include "experiment/sweep_cells.hh"

namespace busarb {

/** Coordinator-side options of one sharded sweep. */
struct FleetOptions
{
    /** Tool name for diagnostics. */
    std::string program = "busarb_sweep";

    /** Fallback worker executable when /proc/self/exe is unreadable. */
    std::string exePath;

    /** Shard directory (task files + checkpoint manifests). */
    std::string shardDir;

    /** Requested shard count; clamped to the cell count. */
    std::size_t shards = 1;

    /** Max concurrent workers; 0 = min(shards, hardware threads). */
    std::size_t fleet = 0;

    /** Crash retries per shard before the sweep gives up. */
    int retries = 2;

    /** --jobs passed to every worker (1 = cell-at-a-time durability). */
    int workerJobs = 1;

    /** Continue over existing checkpoints instead of refusing. */
    bool resume = false;

    /** Live aggregate fleet progress/ETA line on stderr. */
    bool progress = false;
};

/**
 * Run the sweep as a worker fleet and return the full grid's results
 * in cell order — the same vector an in-process runScenarioGrid would
 * return, recovered from the shard manifests.
 *
 * Failures follow the CLI conventions and exit the process directly:
 * 1 for I/O trouble or an exhausted retry budget, 2 for spec-level
 * errors (fingerprint mismatch, corrupt checkpoints, refusing to
 * overwrite a prior sweep's checkpoints without --resume).
 *
 * @param spec The scenario spec (validated, non-empty axes).
 * @param tuning Per-cell tuning shared by every worker.
 * @param opts Fleet options.
 * @return One result per grid cell, in cell order.
 */
std::vector<ScenarioResult> runShardedSweep(const ScenarioSpec &spec,
                                            const SweepTuning &tuning,
                                            const FleetOptions &opts);

} // namespace busarb

#endif // BUSARB_DIST_DISPATCHER_HH
