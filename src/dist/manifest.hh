/**
 * @file
 * Per-shard checkpoint manifests: append-only JSONL, durable at cell
 * granularity.
 *
 * A worker writes one manifest per shard. Line 1 is the header —
 * manifest kind, format version, sweep fingerprint, and the shard's
 * cell range — and every subsequent line is one completed cell: the
 * global cell index plus the hex-encoded result_codec record and its
 * FNV-1a checksum. Each line is appended with a single write() and
 * fsync'd before the worker moves on, so a SIGKILL at any instant
 * loses at most the line being written.
 *
 * Crash tolerance is asymmetric by design:
 *
 *  - A torn FINAL line (no trailing newline) is the expected kill
 *    artifact; readers drop it silently and resume re-runs that cell.
 *  - Any COMPLETE line that fails to parse, fails its checksum, names
 *    a cell outside the shard's range, or conflicts with an earlier
 *    record for the same cell is corruption, not a crash — readers
 *    report it and the tools exit 2. (A byte-identical duplicate cell
 *    line is accepted: an orphaned worker racing its replacement can
 *    legitimately re-append the same record.)
 *  - A header whose version or fingerprint disagrees with the resuming
 *    sweep is also corruption: merging checkpoints from a different
 *    grid would silently fabricate results.
 */

#ifndef BUSARB_DIST_MANIFEST_HH
#define BUSARB_DIST_MANIFEST_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace busarb {

/** Manifest format version stamped into every header line. */
inline constexpr std::uint32_t kManifestVersion = 1;

/** Identity fields of a shard manifest's header line. */
struct ManifestHeader
{
    /** Sweep fingerprint (shard_plan.hh). */
    std::uint64_t fingerprint = 0;

    /** Shard index within the plan. */
    std::size_t shard = 0;

    /** First global cell index owned by the shard. */
    std::size_t begin = 0;

    /** One past the last global cell index owned by the shard. */
    std::size_t end = 0;
};

/** Outcome of readManifest. */
enum class ManifestReadStatus {
    kOk,      ///< manifest loaded (possibly with zero cells)
    kMissing, ///< no manifest file exists (a fresh shard)
    kIoError, ///< the file exists but could not be read
    kCorrupt, ///< structural damage; the caller should exit 2
};

/** Everything recovered from one shard manifest. */
struct ManifestContents
{
    /** The parsed header. */
    ManifestHeader header;

    /** Recovered cell records, keyed by global cell index. */
    std::map<std::size_t, std::vector<std::uint8_t>> cells;

    /**
     * Length of the valid prefix of the file in bytes. When the file
     * ends in a torn line this is less than the file size; a resuming
     * writer truncates to it before appending.
     */
    std::size_t validBytes = 0;

    /** True when a torn final line was dropped. */
    bool tornTail = false;
};

/**
 * Load a shard manifest, verifying it against the expected header.
 *
 * @param path Manifest file path.
 * @param expected Header the manifest must match (fingerprint, shard
 *        index, cell range).
 * @param out Receives the recovered contents on kOk.
 * @param error Receives a diagnostic on kIoError/kCorrupt.
 * @return Read status; see ManifestReadStatus.
 */
ManifestReadStatus readManifest(const std::string &path,
                                const ManifestHeader &expected,
                                ManifestContents &out,
                                std::string &error);

/**
 * Append-only manifest writer with per-line durability.
 *
 * Not copyable; closes its descriptor on destruction.
 */
class ManifestWriter
{
  public:
    ManifestWriter() = default;
    ~ManifestWriter();

    ManifestWriter(const ManifestWriter &) = delete;
    ManifestWriter &operator=(const ManifestWriter &) = delete;

    /**
     * Open `path` for appending, creating it (plus its header line) if
     * absent. When resuming over an existing manifest, `valid_bytes`
     * must come from readManifest: the file is truncated to it first so
     * a torn tail can never glue onto the next record.
     *
     * @param path Manifest file path.
     * @param header Header to stamp into a newly created manifest.
     * @param valid_bytes Valid prefix length of an existing file; 0
     *        for a fresh manifest.
     * @param error Receives a diagnostic on failure.
     * @retval false The file could not be opened or truncated.
     */
    bool open(const std::string &path, const ManifestHeader &header,
              std::size_t valid_bytes, std::string &error);

    /**
     * Append one completed cell and fsync. The record is encoded,
     * checksummed, written with a single write(), and flushed to disk
     * before returning.
     *
     * @param cell Global cell index.
     * @param record result_codec bytes for the cell.
     * @param error Receives a diagnostic on failure.
     * @retval false The write or fsync failed.
     */
    bool appendCell(std::size_t cell,
                    const std::vector<std::uint8_t> &record,
                    std::string &error);

    /** Close the descriptor early (also done by the destructor). */
    void close();

    /** @return True while a descriptor is open. */
    bool isOpen() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    std::string path_;
};

/** @return Lowercase hex encoding of `data`. */
std::string hexEncode(const std::vector<std::uint8_t> &data);

/**
 * Decode hexEncode output.
 *
 * @param text Candidate text; must be even-length lowercase hex.
 * @param out Receives the bytes on success.
 * @retval false Malformed hex.
 */
bool hexDecode(const std::string &text, std::vector<std::uint8_t> &out);

/** @return FNV-1a 64 checksum of `data` (cell-line integrity check). */
std::uint64_t manifestChecksum(const std::vector<std::uint8_t> &data);

} // namespace busarb

#endif // BUSARB_DIST_MANIFEST_HH
