#include "dist/manifest.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "dist/shard_plan.hh"

namespace busarb {

namespace {

/**
 * Strict field-by-field parser for the manifest's own JSONL output.
 * The writer emits one fixed shape per line, so the reader demands
 * exactly that shape — any deviation is corruption, which makes the
 * parser double as the integrity check for complete lines.
 */
struct LineParser
{
    const std::string &line;
    std::size_t pos = 0;

    explicit LineParser(const std::string &l) : line(l) {}

    bool
    literal(const char *text)
    {
        const std::size_t n = std::strlen(text);
        if (line.compare(pos, n, text) != 0)
            return false;
        pos += n;
        return true;
    }

    bool
    number(std::uint64_t &out)
    {
        if (pos >= line.size() || line[pos] < '0' || line[pos] > '9')
            return false;
        std::uint64_t value = 0;
        while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
            const std::uint64_t digit =
                static_cast<std::uint64_t>(line[pos] - '0');
            if (value > (UINT64_MAX - digit) / 10)
                return false;
            value = value * 10 + digit;
            ++pos;
        }
        out = value;
        return true;
    }

    /** Consume a quoted run of `n` characters into `out`. */
    bool
    fixedString(std::size_t n, std::string &out)
    {
        if (line.size() - pos < n)
            return false;
        out = line.substr(pos, n);
        pos += n;
        return true;
    }

    /** Consume characters up to (not including) the next '"'. */
    bool
    untilQuote(std::string &out)
    {
        const std::size_t quote = line.find('"', pos);
        if (quote == std::string::npos)
            return false;
        out = line.substr(pos, quote - pos);
        pos = quote;
        return true;
    }

    bool atEnd() const { return pos == line.size(); }
};

std::string
headerLine(const ManifestHeader &header)
{
    std::ostringstream os;
    os << "{\"kind\":\"busarb-shard-manifest\",\"version\":"
       << kManifestVersion << ",\"fingerprint\":\""
       << fingerprintHex(header.fingerprint) << "\",\"shard\":"
       << header.shard << ",\"begin\":" << header.begin
       << ",\"end\":" << header.end << "}\n";
    return os.str();
}

bool
parseHeaderLine(const std::string &line, ManifestHeader &out,
                std::uint64_t &version)
{
    LineParser p(line);
    std::string fp;
    std::uint64_t shard = 0;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    if (!p.literal("{\"kind\":\"busarb-shard-manifest\",\"version\":") ||
        !p.number(version) || !p.literal(",\"fingerprint\":\"") ||
        !p.fixedString(16, fp) || !p.literal("\",\"shard\":") ||
        !p.number(shard) || !p.literal(",\"begin\":") ||
        !p.number(begin) || !p.literal(",\"end\":") || !p.number(end) ||
        !p.literal("}") || !p.atEnd())
        return false;
    if (!parseFingerprintHex(fp, out.fingerprint))
        return false;
    out.shard = static_cast<std::size_t>(shard);
    out.begin = static_cast<std::size_t>(begin);
    out.end = static_cast<std::size_t>(end);
    return true;
}

bool
parseCellLine(const std::string &line, std::size_t &cell,
              std::vector<std::uint8_t> &record)
{
    LineParser p(line);
    std::uint64_t index = 0;
    std::string check;
    std::uint64_t bytes = 0;
    std::string hex;
    if (!p.literal("{\"cell\":") || !p.number(index) ||
        !p.literal(",\"check\":\"") || !p.fixedString(16, check) ||
        !p.literal("\",\"bytes\":") || !p.number(bytes) ||
        !p.literal(",\"data\":\"") || !p.untilQuote(hex) ||
        !p.literal("\"}") || !p.atEnd())
        return false;
    if (!hexDecode(hex, record))
        return false;
    if (record.size() != bytes)
        return false;
    std::uint64_t expected = 0;
    if (!parseFingerprintHex(check, expected))
        return false;
    if (manifestChecksum(record) != expected)
        return false;
    cell = static_cast<std::size_t>(index);
    return true;
}

} // namespace

std::string
hexEncode(const std::vector<std::uint8_t> &data)
{
    static const char *const kDigits = "0123456789abcdef";
    std::string text;
    text.reserve(data.size() * 2);
    for (const std::uint8_t byte : data) {
        text.push_back(kDigits[byte >> 4]);
        text.push_back(kDigits[byte & 0xf]);
    }
    return text;
}

bool
hexDecode(const std::string &text, std::vector<std::uint8_t> &out)
{
    if (text.size() % 2 != 0)
        return false;
    out.clear();
    out.reserve(text.size() / 2);
    int hi = -1;
    for (const char c : text) {
        int digit = 0;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return false;
        if (hi < 0) {
            hi = digit;
        } else {
            out.push_back(static_cast<std::uint8_t>((hi << 4) | digit));
            hi = -1;
        }
    }
    return true;
}

std::uint64_t
manifestChecksum(const std::vector<std::uint8_t> &data)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const std::uint8_t byte : data) {
        hash ^= byte;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

ManifestReadStatus
readManifest(const std::string &path, const ManifestHeader &expected,
             ManifestContents &out, std::string &error)
{
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
        if (errno == ENOENT)
            return ManifestReadStatus::kMissing;
        error = path + ": cannot stat manifest: " + std::strerror(errno);
        return ManifestReadStatus::kIoError;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        error = path + ": cannot open manifest";
        return ManifestReadStatus::kIoError;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        error = path + ": read error";
        return ManifestReadStatus::kIoError;
    }
    const std::string text = buffer.str();

    out = ManifestContents{};
    const auto corrupt = [&](const std::string &what) {
        error = path + ": " + what;
        return ManifestReadStatus::kCorrupt;
    };

    bool sawHeader = false;
    std::size_t lineStart = 0;
    std::size_t lineNo = 0;
    while (lineStart < text.size()) {
        const std::size_t newline = text.find('\n', lineStart);
        if (newline == std::string::npos) {
            // Torn final line: the expected artifact of a mid-write
            // kill. Drop it; the resuming writer truncates it away.
            out.tornTail = true;
            break;
        }
        const std::string line =
            text.substr(lineStart, newline - lineStart);
        ++lineNo;
        if (!sawHeader) {
            std::uint64_t version = 0;
            ManifestHeader header;
            if (!parseHeaderLine(line, header, version))
                return corrupt("line 1: malformed manifest header");
            if (version != kManifestVersion)
                return corrupt(
                    "manifest version " + std::to_string(version) +
                    " does not match this build (expected " +
                    std::to_string(kManifestVersion) + ")");
            if (header.fingerprint != expected.fingerprint)
                return corrupt(
                    "sweep fingerprint " +
                    fingerprintHex(header.fingerprint) +
                    " does not match this sweep (expected " +
                    fingerprintHex(expected.fingerprint) +
                    "); the checkpoint belongs to a different grid");
            if (header.shard != expected.shard ||
                header.begin != expected.begin ||
                header.end != expected.end)
                return corrupt("shard range mismatch in header");
            out.header = header;
            sawHeader = true;
        } else {
            std::size_t cell = 0;
            std::vector<std::uint8_t> record;
            if (!parseCellLine(line, cell, record))
                return corrupt("line " + std::to_string(lineNo) +
                               ": malformed or checksum-failed cell "
                               "record");
            if (cell < expected.begin || cell >= expected.end)
                return corrupt("line " + std::to_string(lineNo) +
                               ": cell " + std::to_string(cell) +
                               " outside shard range");
            const auto existing = out.cells.find(cell);
            if (existing != out.cells.end()) {
                if (existing->second != record)
                    return corrupt(
                        "line " + std::to_string(lineNo) +
                        ": conflicting duplicate record for cell " +
                        std::to_string(cell));
                // Byte-identical duplicate (orphan worker race): keep
                // the first copy.
            } else {
                out.cells.emplace(cell, std::move(record));
            }
        }
        lineStart = newline + 1;
        out.validBytes = lineStart;
    }

    if (!sawHeader && !out.tornTail && !text.empty())
        return corrupt("no manifest header");
    if (!sawHeader)
        out.header = expected;
    return ManifestReadStatus::kOk;
}

ManifestWriter::~ManifestWriter()
{
    close();
}

void
ManifestWriter::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ManifestWriter::open(const std::string &path,
                     const ManifestHeader &header,
                     std::size_t valid_bytes, std::string &error)
{
    close();
    path_ = path;
    // No O_APPEND: resume must first truncate away any torn tail, and
    // we are the only writer of this descriptor.
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
    if (fd_ < 0) {
        error = path + ": cannot open manifest for writing: " +
                std::strerror(errno);
        return false;
    }
    if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0) {
        error = path + ": cannot truncate torn tail: " +
                std::strerror(errno);
        close();
        return false;
    }
    if (::lseek(fd_, 0, SEEK_END) < 0) {
        error = path + ": cannot seek: " + std::strerror(errno);
        close();
        return false;
    }
    if (valid_bytes == 0) {
        const std::string line = headerLine(header);
        if (::write(fd_, line.data(), line.size()) !=
            static_cast<ssize_t>(line.size())) {
            error = path + ": cannot write manifest header: " +
                    std::strerror(errno);
            close();
            return false;
        }
    }
    if (::fsync(fd_) != 0) {
        error = path + ": fsync failed: " + std::strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
ManifestWriter::appendCell(std::size_t cell,
                           const std::vector<std::uint8_t> &record,
                           std::string &error)
{
    if (fd_ < 0) {
        error = "manifest writer is not open";
        return false;
    }
    std::ostringstream os;
    os << "{\"cell\":" << cell << ",\"check\":\""
       << fingerprintHex(manifestChecksum(record)) << "\",\"bytes\":"
       << record.size() << ",\"data\":\"" << hexEncode(record)
       << "\"}\n";
    const std::string line = os.str();
    // One write() per line keeps a kill from interleaving two cells;
    // the worst case is one torn tail, which readers drop.
    if (::write(fd_, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size())) {
        error = path_ + ": cell write failed: " + std::strerror(errno);
        return false;
    }
    if (::fsync(fd_) != 0) {
        error = path_ + ": fsync failed: " + std::strerror(errno);
        return false;
    }
    return true;
}

} // namespace busarb
