/**
 * @file
 * The coordinator/worker contract: shard task files and the worker-side
 * run loop behind `busarb_sweep --worker-shard`.
 *
 * A shard task file is the complete, self-contained description of one
 * shard's work — sweep fingerprint, cell range, canonical tuning key,
 * queue policy, and the canonical scenario text. A worker needs nothing
 * else: it re-parses the scenario, re-derives the fingerprint, and
 * refuses (exit 2) if its derivation disagrees with the file, so a
 * coordinator and worker built from diverging sources can never
 * silently mix results.
 *
 * Format (line-oriented; the scenario section runs to EOF):
 *
 *     busarb-shard v1
 *     fingerprint <16 hex digits>
 *     shard <index>
 *     begin <cell>
 *     end <cell>
 *     queue <calendar|heap>
 *     tuning <SweepTuning::canonicalKey() text>
 *     scenario
 *     <ScenarioSpec::format() text ...>
 *
 * The worker checkpoints into the shard's manifest (manifest.hh) next
 * to the task file, resuming from whatever the manifest already holds;
 * running a worker on a fully complete shard is a cheap no-op.
 */

#ifndef BUSARB_DIST_WORKER_PROTOCOL_HH
#define BUSARB_DIST_WORKER_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "experiment/scenario_spec.hh"
#include "experiment/sweep_cells.hh"

namespace busarb {

/** Shard task file format version. */
inline constexpr std::uint32_t kShardFileVersion = 1;

/** One worker's parsed task: everything a shard run needs. */
struct ShardTask
{
    /** Sweep fingerprint the file was written under. */
    std::uint64_t fingerprint = 0;

    /** Shard index within the plan. */
    std::size_t shard = 0;

    /** First global cell index owned by the shard. */
    std::size_t begin = 0;

    /** One past the last global cell index owned by the shard. */
    std::size_t end = 0;

    /** Parsed scenario spec. */
    ScenarioSpec spec;

    /** Parsed per-cell tuning (including the queue policy). */
    SweepTuning tuning;
};

/**
 * Render a shard task file's text.
 *
 * @param fingerprint Sweep fingerprint (shard_plan.hh).
 * @param shard Shard index.
 * @param begin First cell of the shard.
 * @param end One past the last cell of the shard.
 * @param scenario_text Canonical scenario text (ScenarioSpec::format).
 * @param tuning Per-cell tuning; its canonicalKey and queue policy are
 *        embedded.
 * @return The file text.
 */
std::string renderShardFile(std::uint64_t fingerprint, std::size_t shard,
                            std::size_t begin, std::size_t end,
                            const std::string &scenario_text,
                            const SweepTuning &tuning);

/**
 * Parse a shard task file.
 *
 * @param text The file contents.
 * @param out Receives the task on success.
 * @param error Receives a diagnostic on failure (malformed structure,
 *        version mismatch, bad scenario text, or a fingerprint that
 *        does not match the re-derived one).
 * @retval false The text did not validate.
 */
bool parseShardFile(const std::string &text, ShardTask &out,
                    std::string &error);

/**
 * Parse a SweepTuning::canonicalKey() rendering back into a tuning.
 * Round-trip property: parse(render(t)).canonicalKey() ==
 * t.canonicalKey().
 *
 * @param text The canonical key text.
 * @param out Receives the tuning on success (queue policy untouched —
 *        it is not part of the key).
 * @param error Receives a diagnostic on failure.
 * @retval false Unknown field, missing field, or malformed value.
 */
bool parseTuningKey(const std::string &text, SweepTuning &out,
                    std::string &error);

/**
 * Run one shard to completion: load the task file, recover the shard's
 * manifest, simulate every cell not already checkpointed, and append
 * each finished cell durably. This is the whole implementation of
 * `busarb_sweep --worker-shard`.
 *
 * @param program Tool name for diagnostics.
 * @param shard_path Path of the shard task file; the manifest lives in
 *        the same directory under the planner's naming scheme.
 * @param jobs Worker threads for this shard's cells (resolveJobCount
 *        semantics).
 * @return Process exit code: 0 done, 1 I/O error, 2 malformed task
 *         file or corrupt manifest.
 */
int runWorkerShard(const std::string &program,
                   const std::string &shard_path, int jobs);

} // namespace busarb

#endif // BUSARB_DIST_WORKER_PROTOCOL_HH
