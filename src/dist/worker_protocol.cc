#include "dist/worker_protocol.hh"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "dist/manifest.hh"
#include "dist/result_codec.hh"
#include "dist/shard_plan.hh"
#include "experiment/cli.hh"
#include "experiment/job_pool.hh"
#include "experiment/runner.hh"

namespace busarb {

namespace {

const char *
queueToken(EventQueuePolicy policy)
{
    return policy == EventQueuePolicy::kHeap ? "heap" : "calendar";
}

bool
parseQueueToken(const std::string &token, EventQueuePolicy &out)
{
    if (token == "calendar") {
        out = EventQueuePolicy::kCalendar;
        return true;
    }
    if (token == "heap") {
        out = EventQueuePolicy::kHeap;
        return true;
    }
    return false;
}

/** Consume "<key> " at the start of `line`, leaving the value. */
bool
takeKeyword(const std::string &line, const std::string &key,
            std::string &value)
{
    if (line.compare(0, key.size(), key) != 0 ||
        line.size() <= key.size() || line[key.size()] != ' ')
        return false;
    value = line.substr(key.size() + 1);
    return true;
}

bool
parseSize(const std::string &text, std::size_t &out)
{
    long value = 0;
    if (!parseLong(text, value) || value < 0)
        return false;
    out = static_cast<std::size_t>(value);
    return true;
}

/** @return Directory part of `path` ("." when there is no slash). */
std::string
dirnameOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    return slash == 0 ? "/" : path.substr(0, slash);
}

} // namespace

std::string
renderShardFile(std::uint64_t fingerprint, std::size_t shard,
                std::size_t begin, std::size_t end,
                const std::string &scenario_text,
                const SweepTuning &tuning)
{
    std::ostringstream os;
    os << "busarb-shard v" << kShardFileVersion << "\n"
       << "fingerprint " << fingerprintHex(fingerprint) << "\n"
       << "shard " << shard << "\n"
       << "begin " << begin << "\n"
       << "end " << end << "\n"
       << "queue " << queueToken(tuning.queuePolicy) << "\n"
       << "tuning " << tuning.canonicalKey() << "\n"
       << "scenario\n"
       << scenario_text;
    return os.str();
}

bool
parseTuningKey(const std::string &text, SweepTuning &out,
               std::string &error)
{
    SweepTuning tuning;
    tuning.queuePolicy = out.queuePolicy; // not part of the key
    bool seen[9] = {};
    std::istringstream is(text);
    std::string field;
    while (std::getline(is, field, ';')) {
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos) {
            error = "tuning field '" + field + "' has no value";
            return false;
        }
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        const auto boolValue = [&](bool &target, std::size_t slot) {
            if (value != "0" && value != "1")
                return false;
            target = value == "1";
            seen[slot] = true;
            return true;
        };
        const auto doubleValue = [&](double &target, std::size_t slot) {
            if (!parseDouble(value, target))
                return false;
            seen[slot] = true;
            return true;
        };
        bool ok = false;
        if (key == "trace") {
            ok = boolValue(tuning.captureTrace, 0);
        } else if (key == "fairness") {
            ok = boolValue(tuning.fairness, 1);
        } else if (key == "fairness-window") {
            ok = doubleValue(tuning.fairnessWindow, 2);
        } else if (key == "bypass-bound") {
            long bound = 0;
            ok = parseLong(value, bound);
            if (ok) {
                tuning.bypassBound = static_cast<int>(bound);
                seen[3] = true;
            }
        } else if (key == "health") {
            ok = boolValue(tuning.health, 4);
        } else if (key == "health-rel-hw") {
            ok = doubleValue(tuning.healthRelHw, 5);
        } else if (key == "health-lag1") {
            ok = doubleValue(tuning.healthLag1, 6);
        } else if (key == "snapshot-every") {
            ok = doubleValue(tuning.snapshotEvery, 7);
        } else if (key == "health-snapshots") {
            ok = boolValue(tuning.healthSnapshots, 8);
        } else {
            error = "unknown tuning field '" + key + "'";
            return false;
        }
        if (!ok) {
            error = "malformed tuning value in '" + field + "'";
            return false;
        }
    }
    for (const bool s : seen) {
        if (!s) {
            error = "incomplete tuning key '" + text + "'";
            return false;
        }
    }
    out = tuning;
    return true;
}

bool
parseShardFile(const std::string &text, ShardTask &out, std::string &error)
{
    std::istringstream is(text);
    std::string line;
    std::string value;

    if (!std::getline(is, line) ||
        line != "busarb-shard v" + std::to_string(kShardFileVersion)) {
        error = "not a busarb-shard v" +
                std::to_string(kShardFileVersion) + " file";
        return false;
    }

    ShardTask task;
    if (!std::getline(is, line) ||
        !takeKeyword(line, "fingerprint", value) ||
        !parseFingerprintHex(value, task.fingerprint)) {
        error = "bad fingerprint line";
        return false;
    }
    if (!std::getline(is, line) || !takeKeyword(line, "shard", value) ||
        !parseSize(value, task.shard)) {
        error = "bad shard line";
        return false;
    }
    if (!std::getline(is, line) || !takeKeyword(line, "begin", value) ||
        !parseSize(value, task.begin)) {
        error = "bad begin line";
        return false;
    }
    if (!std::getline(is, line) || !takeKeyword(line, "end", value) ||
        !parseSize(value, task.end)) {
        error = "bad end line";
        return false;
    }
    if (!std::getline(is, line) || !takeKeyword(line, "queue", value) ||
        !parseQueueToken(value, task.tuning.queuePolicy)) {
        error = "bad queue line";
        return false;
    }
    if (!std::getline(is, line) || !takeKeyword(line, "tuning", value) ||
        !parseTuningKey(value, task.tuning, error)) {
        if (error.empty())
            error = "bad tuning line";
        return false;
    }
    if (!std::getline(is, line) || line != "scenario") {
        error = "missing scenario section";
        return false;
    }
    std::ostringstream scenario;
    scenario << is.rdbuf();

    if (!parseScenarioSpec(scenario.str(), task.spec, error)) {
        error = "scenario: " + error;
        return false;
    }
    if (task.begin >= task.end || task.end > task.spec.cellCount()) {
        error = "shard range [" + std::to_string(task.begin) + ", " +
                std::to_string(task.end) +
                ") does not fit the grid of " +
                std::to_string(task.spec.cellCount()) + " cells";
        return false;
    }
    // Re-derive the fingerprint from the parsed content; a mismatch
    // means the file was edited or written by a diverging build, and
    // running it would checkpoint unmergeable results.
    const std::uint64_t derived = sweepFingerprint(
        task.spec.format(), task.tuning.canonicalKey());
    if (derived != task.fingerprint) {
        error = "fingerprint " + fingerprintHex(task.fingerprint) +
                " does not match the task content (derived " +
                fingerprintHex(derived) + ")";
        return false;
    }
    out = std::move(task);
    return true;
}

int
runWorkerShard(const std::string &program,
               const std::string &shard_path, int jobs)
{
    std::ifstream in(shard_path, std::ios::binary);
    if (!in.is_open()) {
        std::cerr << program << ": cannot read shard file '"
                  << shard_path << "'\n";
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        std::cerr << program << ": error reading '" << shard_path
                  << "'\n";
        return 1;
    }

    ShardTask task;
    std::string error;
    if (!parseShardFile(buffer.str(), task, error)) {
        std::cerr << program << ": " << shard_path << ": " << error
                  << "\n";
        return 2;
    }

    const std::string manifest_path =
        shardManifestPath(dirnameOf(shard_path), task.shard);
    const ManifestHeader header{task.fingerprint, task.shard, task.begin,
                                task.end};
    ManifestContents recovered;
    switch (readManifest(manifest_path, header, recovered, error)) {
    case ManifestReadStatus::kOk:
    case ManifestReadStatus::kMissing:
        break;
    case ManifestReadStatus::kIoError:
        std::cerr << program << ": " << error << "\n";
        return 1;
    case ManifestReadStatus::kCorrupt:
        std::cerr << program << ": " << error << "\n";
        return 2;
    }

    ManifestWriter writer;
    if (!writer.open(manifest_path, header, recovered.validBytes,
                     error)) {
        std::cerr << program << ": " << error << "\n";
        return 1;
    }

    std::vector<std::size_t> todo;
    for (std::size_t cell = task.begin; cell < task.end; ++cell)
        if (recovered.cells.find(cell) == recovered.cells.end())
            todo.push_back(cell);

    // Chunked execution: each chunk runs its cells across the worker's
    // threads, then every finished cell is appended durably before the
    // next chunk starts. A kill therefore loses at most one chunk of
    // compute and zero checkpointed cells; jobs=1 (the fleet default)
    // degenerates to pure cell-at-a-time durability.
    const std::size_t chunk =
        static_cast<std::size_t>(resolveJobCount(jobs));
    for (std::size_t base = 0; base < todo.size(); base += chunk) {
        const std::size_t count =
            std::min(chunk, todo.size() - base);
        std::vector<GridJob> grid;
        grid.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            grid.push_back(sweepCellJob(task.spec, task.tuning, program,
                                        todo[base + i]));
        const std::vector<ScenarioResult> results =
            runScenarioGrid(grid, static_cast<int>(count));
        for (std::size_t i = 0; i < count; ++i) {
            if (!writer.appendCell(todo[base + i],
                                   encodeScenarioResult(results[i]),
                                   error)) {
                std::cerr << program << ": " << error << "\n";
                return 1;
            }
        }
    }
    return 0;
}

} // namespace busarb
