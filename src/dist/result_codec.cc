#include "dist/result_codec.hh"

#include <cstring>

#include "stats/convergence.hh"

namespace busarb {

namespace {

/** Record magic: "BSRC" read as a big-endian u32. */
constexpr std::uint32_t kMagic = 0x42535243u;

// ---------------------------------------------------------------------
// Encoding primitives. All multi-byte values are emitted via memcpy in
// host byte order; doubles travel as their IEEE-754 bit patterns so the
// round trip is bit-exact (decimal text would not be).

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    std::uint8_t raw[sizeof v];
    std::memcpy(raw, &v, sizeof v);
    out.insert(out.end(), raw, raw + sizeof v);
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    std::uint8_t raw[sizeof v];
    std::memcpy(raw, &v, sizeof v);
    out.insert(out.end(), raw, raw + sizeof v);
}

void
putDouble(std::vector<std::uint8_t> &out, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v, "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof v);
    putU64(out, bits);
}

void
putString(std::vector<std::uint8_t> &out, const std::string &s)
{
    putU64(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
}

void
putBytes(std::vector<std::uint8_t> &out,
         const std::vector<std::uint8_t> &b)
{
    putU64(out, b.size());
    out.insert(out.end(), b.begin(), b.end());
}

void
putU64Vec(std::vector<std::uint8_t> &out,
          const std::vector<std::uint64_t> &v)
{
    putU64(out, v.size());
    for (const std::uint64_t x : v)
        putU64(out, x);
}

void
putDoubleVec(std::vector<std::uint8_t> &out, const std::vector<double> &v)
{
    putU64(out, v.size());
    for (const double x : v)
        putDouble(out, x);
}

void
putHistogram(std::vector<std::uint8_t> &out, const Histogram &h)
{
    // Sparse form: most sweep histograms concentrate mass in a few of
    // their 1200 bins, so (index, count) pairs beat a dense dump.
    putDouble(out, h.binWidth());
    putU64(out, h.numBins());
    putDouble(out, h.sum());
    putU64(out, h.overflow());
    std::uint64_t nonzero = 0;
    for (std::size_t i = 0; i < h.numBins(); ++i)
        if (h.binCount(i) != 0)
            ++nonzero;
    putU64(out, nonzero);
    for (std::size_t i = 0; i < h.numBins(); ++i) {
        if (h.binCount(i) == 0)
            continue;
        putU64(out, i);
        putU64(out, h.binCount(i));
    }
}

void
putRegistry(std::vector<std::uint8_t> &out, const MetricsRegistry &m)
{
    putU64(out, m.counters().size());
    for (const auto &[name, counter] : m.counters()) {
        putString(out, name);
        putU64(out, counter.value());
    }
    putU64(out, m.gauges().size());
    for (const auto &[name, gauge] : m.gauges()) {
        putString(out, name);
        putU64(out, gauge.count());
        putDouble(out, gauge.sum());
        putDouble(out, gauge.min());
        putDouble(out, gauge.max());
    }
    putU64(out, m.histograms().size());
    for (const auto &[name, histogram] : m.histograms()) {
        putString(out, name);
        putHistogram(out, histogram);
    }
    putU64(out, m.annotations().size());
    for (const auto &[name, value] : m.annotations()) {
        putString(out, name);
        putString(out, value);
    }
}

// ---------------------------------------------------------------------
// Decoding primitives: a cursor over the record with bounds-checked
// reads. Every helper returns false on truncation; decode bails with a
// diagnostic rather than assert because manifests are external input.

struct Reader
{
    const std::uint8_t *data;
    std::size_t size;
    std::size_t pos = 0;

    bool
    getRaw(void *out, std::size_t n)
    {
        if (size - pos < n)
            return false;
        std::memcpy(out, data + pos, n);
        pos += n;
        return true;
    }

    bool getU32(std::uint32_t &v) { return getRaw(&v, sizeof v); }

    bool getU64(std::uint64_t &v) { return getRaw(&v, sizeof v); }

    bool
    getDouble(double &v)
    {
        std::uint64_t bits = 0;
        if (!getU64(bits))
            return false;
        std::memcpy(&v, &bits, sizeof v);
        return true;
    }

    bool
    getString(std::string &s)
    {
        std::uint64_t n = 0;
        if (!getU64(n) || size - pos < n)
            return false;
        s.assign(reinterpret_cast<const char *>(data + pos),
                 static_cast<std::size_t>(n));
        pos += static_cast<std::size_t>(n);
        return true;
    }

    bool
    getBytes(std::vector<std::uint8_t> &b)
    {
        std::uint64_t n = 0;
        if (!getU64(n) || size - pos < n)
            return false;
        b.assign(data + pos, data + pos + n);
        pos += static_cast<std::size_t>(n);
        return true;
    }

    bool
    getU64Vec(std::vector<std::uint64_t> &v)
    {
        std::uint64_t n = 0;
        if (!getU64(n) || n > (size - pos) / sizeof(std::uint64_t))
            return false;
        v.resize(static_cast<std::size_t>(n));
        for (auto &x : v)
            if (!getU64(x))
                return false;
        return true;
    }

    bool
    getDoubleVec(std::vector<double> &v)
    {
        std::uint64_t n = 0;
        if (!getU64(n) || n > (size - pos) / sizeof(double))
            return false;
        v.resize(static_cast<std::size_t>(n));
        for (auto &x : v)
            if (!getDouble(x))
                return false;
        return true;
    }

    bool
    getHistogram(Histogram &out)
    {
        double binWidth = 0.0;
        std::uint64_t numBins = 0;
        double sum = 0.0;
        std::uint64_t overflow = 0;
        std::uint64_t nonzero = 0;
        if (!getDouble(binWidth) || !getU64(numBins) ||
            !getDouble(sum) || !getU64(overflow) || !getU64(nonzero))
            return false;
        if (!(binWidth > 0.0) || numBins == 0 || nonzero > numBins)
            return false;
        Histogram h(binWidth, static_cast<std::size_t>(numBins));
        for (std::uint64_t i = 0; i < nonzero; ++i) {
            std::uint64_t bin = 0;
            std::uint64_t count = 0;
            if (!getU64(bin) || !getU64(count))
                return false;
            if (bin >= numBins || count == 0)
                return false;
            h.restoreBin(static_cast<std::size_t>(bin), count);
        }
        if (overflow != 0)
            h.restoreOverflow(overflow);
        h.restoreSum(sum);
        out = h;
        return true;
    }

    bool
    getRegistry(MetricsRegistry &m)
    {
        std::uint64_t n = 0;
        if (!getU64(n))
            return false;
        for (std::uint64_t i = 0; i < n; ++i) {
            std::string name;
            std::uint64_t value = 0;
            if (!getString(name) || !getU64(value))
                return false;
            m.counter(name).add(value);
        }
        if (!getU64(n))
            return false;
        for (std::uint64_t i = 0; i < n; ++i) {
            std::string name;
            std::uint64_t count = 0;
            double sum = 0.0;
            double min = 0.0;
            double max = 0.0;
            if (!getString(name) || !getU64(count) || !getDouble(sum) ||
                !getDouble(min) || !getDouble(max))
                return false;
            Gauge &gauge = m.gauge(name);
            // An empty gauge's min/max are +/-inf sentinels; replaying
            // them through mergeSummary would corrupt them, so only
            // non-empty gauges carry samples back in.
            if (count > 0)
                gauge.mergeSummary(count, sum, min, max);
        }
        if (!getU64(n))
            return false;
        for (std::uint64_t i = 0; i < n; ++i) {
            std::string name;
            Histogram h(1.0, 1);
            if (!getString(name) || !getHistogram(h))
                return false;
            m.histogram(name, h.binWidth(), h.numBins()) = h;
        }
        if (!getU64(n))
            return false;
        for (std::uint64_t i = 0; i < n; ++i) {
            std::string name;
            std::string value;
            if (!getString(name) || !getString(value))
                return false;
            m.setAnnotation(name, value);
        }
        return true;
    }
};

} // namespace

std::vector<std::uint8_t>
encodeScenarioResult(const ScenarioResult &result)
{
    std::vector<std::uint8_t> out;
    putU32(out, kMagic);
    putU32(out, kResultCodecVersion);
    putString(out, result.protocolName);
    putString(out, result.spec);
    putString(out, result.workloadSpec);
    putU32(out, static_cast<std::uint32_t>(result.numAgents));
    putDouble(out, result.confidence);
    putDouble(out, result.elapsedMs);

    const WorkloadStats &w = result.workload;
    putU32(out, w.openLoop ? 1 : 0);
    putU32(out, w.saturated ? 1 : 0);
    putU64(out, w.issued);
    putU64(out, w.finalBacklog);
    putDouble(out, w.offeredRate);
    putDouble(out, w.carriedRate);

    putU64(out, result.batches.size());
    for (const BatchStats &b : result.batches) {
        putDouble(out, b.duration);
        putU64Vec(out, b.completions);
        putDouble(out, b.waitMean);
        putDouble(out, b.waitStddev);
        putDoubleVec(out, b.productive);
        putDoubleVec(out, b.cycle);
        putDoubleVec(out, b.waitSum);
        putDoubleVec(out, b.overlapSum);
        putDouble(out, b.utilization);
        putU64(out, b.passes);
        putU64(out, b.retryPasses);
    }

    putHistogram(out, result.waitHistogram);
    putU64(out, result.agentWaitHistograms.size());
    for (const Histogram &h : result.agentWaitHistograms)
        putHistogram(out, h);

    putBytes(out, result.binaryTrace);
    putRegistry(out, result.metrics);
    putString(out, result.fairnessSnapshots);
    putString(out, result.healthSnapshots);

    const RunHealthReport &h = result.health;
    putU32(out, h.enabled ? 1 : 0);
    putU32(out, static_cast<std::uint32_t>(h.verdict));
    putU64(out, h.batches);
    putDouble(out, h.wait.value);
    putDouble(out, h.wait.halfWidth);
    putDouble(out, h.waitRelHalfWidth);
    putDouble(out, h.waitLag1);
    putU64(out, h.waitMserCut);
    putDoubleVec(out, h.waitRelHwTrajectory);
    putDouble(out, h.utilRelHalfWidth);
    putDouble(out, h.utilLag1);
    return out;
}

bool
decodeScenarioResult(const std::uint8_t *data, std::size_t size,
                     ScenarioResult &out, std::string &error)
{
    Reader r{data, size};
    const auto fail = [&error](const char *what) {
        error = what;
        return false;
    };

    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    if (!r.getU32(magic) || !r.getU32(version))
        return fail("truncated record header");
    if (magic != kMagic)
        return fail("bad record magic");
    if (version != kResultCodecVersion)
        return fail("record version mismatch");

    ScenarioResult result;
    std::uint32_t numAgents = 0;
    if (!r.getString(result.protocolName) || !r.getString(result.spec) ||
        !r.getString(result.workloadSpec) || !r.getU32(numAgents) ||
        !r.getDouble(result.confidence) ||
        !r.getDouble(result.elapsedMs))
        return fail("truncated scenario header");
    result.numAgents = static_cast<int>(numAgents);

    std::uint32_t wOpenLoop = 0;
    std::uint32_t wSaturated = 0;
    WorkloadStats &w = result.workload;
    if (!r.getU32(wOpenLoop) || !r.getU32(wSaturated) ||
        !r.getU64(w.issued) || !r.getU64(w.finalBacklog) ||
        !r.getDouble(w.offeredRate) || !r.getDouble(w.carriedRate))
        return fail("truncated workload stats");
    if (wOpenLoop > 1 || wSaturated > 1)
        return fail("bad workload flags");
    w.openLoop = wOpenLoop != 0;
    w.saturated = wSaturated != 0;

    std::uint64_t numBatches = 0;
    if (!r.getU64(numBatches))
        return fail("truncated batch count");
    result.batches.reserve(static_cast<std::size_t>(
        numBatches < 4096 ? numBatches : 4096));
    for (std::uint64_t i = 0; i < numBatches; ++i) {
        BatchStats b;
        if (!r.getDouble(b.duration) || !r.getU64Vec(b.completions) ||
            !r.getDouble(b.waitMean) || !r.getDouble(b.waitStddev) ||
            !r.getDoubleVec(b.productive) || !r.getDoubleVec(b.cycle) ||
            !r.getDoubleVec(b.waitSum) || !r.getDoubleVec(b.overlapSum) ||
            !r.getDouble(b.utilization) || !r.getU64(b.passes) ||
            !r.getU64(b.retryPasses))
            return fail("truncated batch record");
        result.batches.push_back(std::move(b));
    }

    if (!r.getHistogram(result.waitHistogram))
        return fail("bad waiting-time histogram");
    std::uint64_t numAgentHists = 0;
    if (!r.getU64(numAgentHists))
        return fail("truncated agent histogram count");
    for (std::uint64_t i = 0; i < numAgentHists; ++i) {
        Histogram h(1.0, 1);
        if (!r.getHistogram(h))
            return fail("bad per-agent histogram");
        result.agentWaitHistograms.push_back(std::move(h));
    }

    if (!r.getBytes(result.binaryTrace))
        return fail("truncated binary trace");
    if (!r.getRegistry(result.metrics))
        return fail("bad metrics registry");
    if (!r.getString(result.fairnessSnapshots) ||
        !r.getString(result.healthSnapshots))
        return fail("truncated snapshot text");

    std::uint32_t enabled = 0;
    std::uint32_t verdict = 0;
    std::uint64_t healthBatches = 0;
    std::uint64_t mserCut = 0;
    RunHealthReport &h = result.health;
    if (!r.getU32(enabled) || !r.getU32(verdict) ||
        !r.getU64(healthBatches) || !r.getDouble(h.wait.value) ||
        !r.getDouble(h.wait.halfWidth) ||
        !r.getDouble(h.waitRelHalfWidth) || !r.getDouble(h.waitLag1) ||
        !r.getU64(mserCut) || !r.getDoubleVec(h.waitRelHwTrajectory) ||
        !r.getDouble(h.utilRelHalfWidth) || !r.getDouble(h.utilLag1))
        return fail("truncated health report");
    if (enabled > 1)
        return fail("bad health-enabled flag");
    if (verdict >
        static_cast<std::uint32_t>(ConvergenceVerdict::kSaturated))
        return fail("bad health verdict");
    h.enabled = enabled != 0;
    h.verdict = static_cast<ConvergenceVerdict>(verdict);
    h.batches = static_cast<std::size_t>(healthBatches);
    h.waitMserCut = static_cast<std::size_t>(mserCut);

    if (r.pos != r.size)
        return fail("trailing bytes after record");
    out = std::move(result);
    error.clear();
    return true;
}

} // namespace busarb
