#include "dist/shard_plan.hh"

#include "sim/logging.hh"

namespace busarb {

namespace {

/** Zero-padded shard index, at least four digits wide. */
std::string
shardName(std::size_t index)
{
    std::string digits = std::to_string(index);
    if (digits.size() < 4)
        digits.insert(0, 4 - digits.size(), '0');
    return digits;
}

} // namespace

std::vector<ShardRange>
planShards(std::size_t cells, std::size_t shards)
{
    BUSARB_ASSERT(cells >= 1, "cannot plan an empty grid");
    BUSARB_ASSERT(shards >= 1, "need at least one shard");
    if (shards > cells)
        shards = cells;
    std::vector<ShardRange> plan;
    plan.reserve(shards);
    const std::size_t base = cells / shards;
    const std::size_t extra = cells % shards;
    std::size_t begin = 0;
    for (std::size_t i = 0; i < shards; ++i) {
        const std::size_t size = base + (i < extra ? 1 : 0);
        plan.push_back({i, begin, begin + size});
        begin += size;
    }
    BUSARB_ASSERT(begin == cells, "shard plan does not cover the grid");
    return plan;
}

std::uint64_t
sweepFingerprint(const std::string &scenario_text,
                 const std::string &tuning_key)
{
    // FNV-1a over "scenario \0 tuning"; the separator keeps
    // (a+b, c) and (a, b+c) from colliding.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    const auto mix = [&hash](const std::string &text) {
        for (const char c : text) {
            hash ^= static_cast<unsigned char>(c);
            hash *= 0x100000001b3ULL;
        }
        hash ^= 0xff;
        hash *= 0x100000001b3ULL;
    };
    mix(scenario_text);
    mix(tuning_key);
    return hash;
}

std::string
fingerprintHex(std::uint64_t fingerprint)
{
    static const char *const kDigits = "0123456789abcdef";
    std::string text(16, '0');
    for (int i = 15; i >= 0; --i) {
        text[static_cast<std::size_t>(i)] =
            kDigits[fingerprint & 0xf];
        fingerprint >>= 4;
    }
    return text;
}

bool
parseFingerprintHex(const std::string &text, std::uint64_t &out)
{
    if (text.size() != 16)
        return false;
    std::uint64_t value = 0;
    for (const char c : text) {
        int digit = 0;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return false;
        value = (value << 4) | static_cast<std::uint64_t>(digit);
    }
    out = value;
    return true;
}

std::string
gridSpecPath(const std::string &dir)
{
    return dir + "/grid.spec";
}

std::string
shardFilePath(const std::string &dir, std::size_t index)
{
    return dir + "/shard-" + shardName(index) + ".shard";
}

std::string
shardManifestPath(const std::string &dir, std::size_t index)
{
    return dir + "/shard-" + shardName(index) + ".manifest.jsonl";
}

} // namespace busarb
