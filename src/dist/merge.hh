/**
 * @file
 * Deterministic reassembly of a sharded sweep's results.
 *
 * After every shard's manifest is complete, the coordinator decodes
 * the checkpointed records back into ScenarioResult values, ordered by
 * global cell index — exactly the vector runScenarioGrid would have
 * returned in-process. All artifact emission (summary CSV, merged
 * metrics, concatenated traces, snapshot JSONL) then runs the same
 * code over the same values, which is what makes the merged artifacts
 * byte-identical to a single-process run at any shard count.
 */

#ifndef BUSARB_DIST_MERGE_HH
#define BUSARB_DIST_MERGE_HH

#include <string>
#include <vector>

#include "dist/shard_plan.hh"
#include "experiment/runner.hh"

namespace busarb {

/** Outcome of collectShardResults. */
enum class MergeStatus {
    kOk,         ///< every cell recovered
    kIncomplete, ///< a manifest is missing cells (or missing entirely)
    kCorrupt,    ///< corrupt manifest or undecodable record; exit 2
    kIoError,    ///< a manifest could not be read; exit 1
};

/**
 * Recover the full grid's results from the shard manifests in `dir`.
 *
 * @param dir Shard directory.
 * @param plan The shard plan (shard_plan.hh) the manifests were
 *        written under.
 * @param fingerprint Sweep fingerprint the manifests must carry.
 * @param out Receives one result per grid cell, in cell order, on kOk.
 * @param error Receives a diagnostic on any other status.
 * @return Merge status.
 */
MergeStatus collectShardResults(const std::string &dir,
                                const std::vector<ShardRange> &plan,
                                std::uint64_t fingerprint,
                                std::vector<ScenarioResult> &out,
                                std::string &error);

/**
 * Count the completed cells recorded in one shard manifest, cheaply
 * (newline count minus header; no record decoding). Used by the fleet
 * progress display, which polls while workers run — a torn tail simply
 * doesn't count yet.
 *
 * @param path Manifest file path.
 * @return Completed-cell count; 0 for a missing or empty manifest.
 */
std::size_t countManifestCells(const std::string &path);

} // namespace busarb

#endif // BUSARB_DIST_MERGE_HH
