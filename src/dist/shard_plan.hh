/**
 * @file
 * Deterministic shard planning for sweep orchestration.
 *
 * A sharded sweep partitions the canonical cell enumeration of a
 * ScenarioSpec (loads outer, protocols inner — see
 * ScenarioSpec::cellCount) into contiguous, non-empty cell ranges.
 * The plan is a pure function of (cell count, shard count): any
 * coordinator, worker, or resume run that agrees on those two numbers
 * derives the identical plan, which is what lets checkpoint manifests
 * written by one fleet be picked up by another.
 *
 * The grid fingerprint binds a shard directory to the sweep it was
 * produced by: a 64-bit FNV-1a hash over the canonical scenario text
 * and the canonical tuning key (experiment/sweep_cells.hh). Every
 * manifest header carries it, and every reader rejects a mismatch
 * with exit 2 — resuming a checkpoint under a different grid would
 * otherwise silently merge unrelated results.
 */

#ifndef BUSARB_DIST_SHARD_PLAN_HH
#define BUSARB_DIST_SHARD_PLAN_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace busarb {

/** One shard: the contiguous cell range [begin, end). */
struct ShardRange
{
    /** Shard index, 0-based. */
    std::size_t index = 0;

    /** First global cell index owned by this shard. */
    std::size_t begin = 0;

    /** One past the last global cell index owned by this shard. */
    std::size_t end = 0;

    /** @return Number of cells in the shard. */
    std::size_t size() const { return end - begin; }
};

/**
 * Partition `cells` into at most `shards` contiguous non-empty
 * ranges. Sizes are balanced: the first (cells % shards) ranges get
 * one extra cell. When shards > cells the plan degrades to one
 * single-cell shard per cell — never an empty shard.
 *
 * @param cells Total grid cells; must be >= 1.
 * @param shards Requested shard count; must be >= 1.
 * @return The plan, in shard-index order.
 */
std::vector<ShardRange> planShards(std::size_t cells,
                                   std::size_t shards);

/**
 * 64-bit FNV-1a fingerprint of a sweep's observable identity.
 *
 * @param scenario_text Canonical scenario text (ScenarioSpec::format).
 * @param tuning_key Canonical tuning key (SweepTuning::canonicalKey).
 * @return The fingerprint.
 */
std::uint64_t sweepFingerprint(const std::string &scenario_text,
                               const std::string &tuning_key);

/** @return Fixed-width lowercase hex text of a fingerprint. */
std::string fingerprintHex(std::uint64_t fingerprint);

/**
 * Parse fingerprintHex output.
 *
 * @param text Candidate text.
 * @param out Receives the value on success.
 * @retval false Not a 16-digit lowercase hex string.
 */
bool parseFingerprintHex(const std::string &text, std::uint64_t &out);

/** @return Path of the canonical grid spec inside a shard directory. */
std::string gridSpecPath(const std::string &dir);

/** @return Path of shard `index`'s spec file inside `dir`. */
std::string shardFilePath(const std::string &dir, std::size_t index);

/** @return Path of shard `index`'s checkpoint manifest inside `dir`. */
std::string shardManifestPath(const std::string &dir,
                              std::size_t index);

} // namespace busarb

#endif // BUSARB_DIST_SHARD_PLAN_HH
