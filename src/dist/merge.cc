#include "dist/merge.hh"

#include <fstream>

#include "dist/manifest.hh"
#include "dist/result_codec.hh"

namespace busarb {

MergeStatus
collectShardResults(const std::string &dir,
                    const std::vector<ShardRange> &plan,
                    std::uint64_t fingerprint,
                    std::vector<ScenarioResult> &out, std::string &error)
{
    std::size_t cells = 0;
    for (const ShardRange &shard : plan)
        cells += shard.size();
    out.assign(cells, ScenarioResult{});

    for (const ShardRange &shard : plan) {
        const std::string path = shardManifestPath(dir, shard.index);
        const ManifestHeader expected{fingerprint, shard.index,
                                      shard.begin, shard.end};
        ManifestContents contents;
        switch (readManifest(path, expected, contents, error)) {
        case ManifestReadStatus::kOk:
            break;
        case ManifestReadStatus::kMissing:
            error = path + ": manifest missing";
            return MergeStatus::kIncomplete;
        case ManifestReadStatus::kIoError:
            return MergeStatus::kIoError;
        case ManifestReadStatus::kCorrupt:
            return MergeStatus::kCorrupt;
        }
        if (contents.cells.size() != shard.size()) {
            error = path + ": only " +
                    std::to_string(contents.cells.size()) + " of " +
                    std::to_string(shard.size()) +
                    " cells are checkpointed";
            return MergeStatus::kIncomplete;
        }
        for (const auto &[cell, record] : contents.cells) {
            std::string decode_error;
            if (!decodeScenarioResult(record.data(), record.size(),
                                      out[cell], decode_error)) {
                error = path + ": cell " + std::to_string(cell) + ": " +
                        decode_error;
                return MergeStatus::kCorrupt;
            }
        }
    }
    error.clear();
    return MergeStatus::kOk;
}

std::size_t
countManifestCells(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return 0;
    std::size_t newlines = 0;
    char buffer[65536];
    while (in.read(buffer, sizeof buffer) || in.gcount() > 0) {
        const std::streamsize got = in.gcount();
        for (std::streamsize i = 0; i < got; ++i)
            if (buffer[i] == '\n')
                ++newlines;
        if (got < static_cast<std::streamsize>(sizeof buffer))
            break;
    }
    // Line 1 is the header; anything else is one completed cell.
    return newlines > 0 ? newlines - 1 : 0;
}

} // namespace busarb
