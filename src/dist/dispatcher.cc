#include "dist/dispatcher.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "dist/merge.hh"
#include "dist/shard_plan.hh"
#include "dist/worker_protocol.hh"
#include "experiment/cli.hh"
#include "experiment/job_pool.hh"
#include "experiment/table.hh"
#include "obs/sweep_progress.hh"

namespace busarb {

namespace {

/**
 * The sweep-identity file at the root of a shard directory. Byte
 * comparison against the expected rendering is the whole resume
 * validation: the text embeds the fingerprint, the canonical scenario,
 * and the canonical tuning key, so any observable difference — and
 * only an observable difference — makes it mismatch. (The queue
 * policy and job counts are absent on purpose: a resume may change
 * them.)
 */
std::string
renderGridSpec(std::uint64_t fingerprint, std::size_t cells,
               const std::string &scenario_text,
               const std::string &tuning_key)
{
    std::ostringstream os;
    os << "busarb-grid v1\n"
       << "fingerprint " << fingerprintHex(fingerprint) << "\n"
       << "cells " << cells << "\n"
       << "tuning " << tuning_key << "\n"
       << "scenario\n"
       << scenario_text;
    return os.str();
}

/** @return The running executable's path, for spawning workers. */
std::string
selfExePath(const std::string &fallback)
{
    char buffer[4096];
    const ssize_t got =
        ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
    if (got <= 0)
        return fallback;
    buffer[got] = '\0';
    return buffer;
}

[[noreturn]] void
ioExit(const std::string &program, const std::string &message)
{
    std::cerr << program << ": " << message << "\n";
    std::exit(1);
}

[[noreturn]] void
specExit(const std::string &program, const std::string &message)
{
    std::cerr << program << ": " << message << "\n";
    std::exit(2);
}

bool
readFileText(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad())
        return false;
    out = buffer.str();
    return true;
}

bool
writeFileText(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open())
        return false;
    out << text;
    out.flush();
    return static_cast<bool>(out);
}

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One running worker process. */
struct Worker
{
    std::size_t shard = 0;
};

pid_t
spawnWorker(const std::string &exe, const std::string &shard_file,
            int jobs)
{
    const std::string jobs_text = std::to_string(jobs);
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    // Child: exec the worker; _exit(127) keeps a failed exec from
    // returning into the coordinator's stack.
    ::execl(exe.c_str(), exe.c_str(), "--worker-shard",
            shard_file.c_str(), "--jobs", jobs_text.c_str(),
            static_cast<char *>(nullptr));
    std::cerr << "busarb_sweep: cannot exec worker '" << exe
              << "': " << std::strerror(errno) << "\n";
    ::_exit(127);
}

void
killFleet(std::map<pid_t, Worker> &running)
{
    for (const auto &[pid, worker] : running)
        ::kill(pid, SIGTERM);
    for (const auto &[pid, worker] : running) {
        int status = 0;
        ::waitpid(pid, &status, 0);
    }
    running.clear();
}

} // namespace

std::vector<ScenarioResult>
runShardedSweep(const ScenarioSpec &spec, const SweepTuning &tuning,
                const FleetOptions &opts)
{
    const std::string &program = opts.program;
    const std::size_t cells = spec.cellCount();
    const std::vector<ShardRange> plan = planShards(cells, opts.shards);
    const std::string scenario_text = spec.format();
    const std::string tuning_key = tuning.canonicalKey();
    const std::uint64_t fingerprint =
        sweepFingerprint(scenario_text, tuning_key);

    if (::mkdir(opts.shardDir.c_str(), 0755) != 0 && errno != EEXIST)
        ioExit(program, "cannot create shard directory '" +
                            opts.shardDir +
                            "': " + std::strerror(errno));

    // Sweep-identity gate. A directory carrying another sweep's
    // grid.spec is always refused; one carrying this sweep's
    // checkpoints is refused unless --resume says they are wanted.
    const std::string grid_text =
        renderGridSpec(fingerprint, cells, scenario_text, tuning_key);
    const std::string grid_path = gridSpecPath(opts.shardDir);
    std::string existing;
    const bool had_grid_spec = readFileText(grid_path, existing);
    if (had_grid_spec && existing != grid_text)
        specExit(program,
                 grid_path + ": shard directory belongs to a "
                             "different sweep (scenario, tuning, or "
                             "format version differs); remove it or "
                             "point --shard-dir elsewhere");
    bool have_checkpoints = false;
    for (const ShardRange &shard : plan) {
        struct stat st{};
        if (::stat(shardManifestPath(opts.shardDir, shard.index).c_str(),
                   &st) == 0)
            have_checkpoints = true;
    }
    if (have_checkpoints && !opts.resume)
        specExit(program,
                 opts.shardDir + ": shard directory already contains "
                                 "checkpoints; pass --resume to "
                                 "continue them or remove the "
                                 "directory to start over");
    if (have_checkpoints && !had_grid_spec)
        specExit(program, grid_path + ": missing (checkpoints exist "
                                      "but the sweep identity file "
                                      "is gone); remove the directory "
                                      "to start over");
    if (!had_grid_spec && !writeFileText(grid_path, grid_text))
        ioExit(program, "cannot write '" + grid_path + "'");

    // Task files are derived state; (re)write them every run so a
    // resume picks up runtime-only changes (e.g. --queue).
    for (const ShardRange &shard : plan) {
        const std::string path =
            shardFilePath(opts.shardDir, shard.index);
        if (!writeFileText(path,
                           renderShardFile(fingerprint, shard.index,
                                           shard.begin, shard.end,
                                           scenario_text, tuning)))
            ioExit(program, "cannot write '" + path + "'");
    }

    const std::size_t fleet =
        opts.fleet > 0
            ? std::min(opts.fleet, plan.size())
            : std::min(plan.size(),
                       static_cast<std::size_t>(resolveJobCount(0)));
    const std::string exe = selfExePath(opts.exePath);

    std::deque<std::size_t> pending;
    for (const ShardRange &shard : plan)
        pending.push_back(shard.index);
    std::vector<int> retries_left(plan.size(), opts.retries);
    std::map<pid_t, Worker> running;
    std::size_t completed = 0;

    EtaEstimator eta;
    eta.start(nowSeconds());
    std::size_t last_done = 0;
    const auto show_progress = [&]() {
        std::size_t done = 0;
        for (const ShardRange &shard : plan)
            done += std::min(
                shard.size(),
                countManifestCells(
                    shardManifestPath(opts.shardDir, shard.index)));
        const double now = nowSeconds();
        if (done > last_done) {
            eta.onProgress(now, done);
            last_done = done;
        }
        std::cerr << "\r" << program << ": fleet " << running.size()
                  << " worker" << (running.size() == 1 ? "" : "s")
                  << ", shards " << completed << "/" << plan.size()
                  << ", cells " << done << "/" << cells;
        if (eta.primed())
            std::cerr << " eta="
                      << formatFixed(
                             eta.etaSeconds(cells - std::min(done, cells)),
                             1)
                      << "s";
        std::cerr << "   ";
        std::cerr.flush();
    };

    while (completed < plan.size()) {
        while (running.size() < fleet && !pending.empty()) {
            const std::size_t shard = pending.front();
            pending.pop_front();
            const pid_t pid = spawnWorker(
                exe, shardFilePath(opts.shardDir, shard),
                opts.workerJobs);
            if (pid < 0) {
                killFleet(running);
                ioExit(program, std::string("fork failed: ") +
                                    std::strerror(errno));
            }
            running.emplace(pid, Worker{shard});
        }

        int status = 0;
        pid_t pid = -1;
        if (opts.progress) {
            // Poll so the fleet line ticks while workers run; the
            // display reads manifest line counts, never results.
            for (;;) {
                pid = ::waitpid(-1, &status, WNOHANG);
                if (pid != 0)
                    break;
                show_progress();
                struct timespec nap{0, 200 * 1000 * 1000};
                ::nanosleep(&nap, nullptr);
            }
        } else {
            pid = ::waitpid(-1, &status, 0);
        }
        if (pid < 0) {
            killFleet(running);
            ioExit(program, std::string("waitpid failed: ") +
                                std::strerror(errno));
        }
        const auto it = running.find(pid);
        if (it == running.end())
            continue; // not one of ours (shouldn't happen)
        const std::size_t shard = it->second.shard;
        running.erase(it);

        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
            ++completed;
            continue;
        }
        if (WIFEXITED(status) && WEXITSTATUS(status) == 2) {
            // Spec-level failure: deterministic, retrying cannot help.
            killFleet(running);
            if (opts.progress)
                std::cerr << "\n";
            specExit(program,
                     "shard " + std::to_string(shard) +
                         " failed with a spec error (see worker "
                         "message above)");
        }
        // Crash or I/O failure: the manifest keeps every completed
        // cell, so a retry only re-runs the lost tail.
        if (retries_left[shard] > 0) {
            --retries_left[shard];
            pending.push_back(shard);
            continue;
        }
        killFleet(running);
        if (opts.progress)
            std::cerr << "\n";
        ioExit(program, "shard " + std::to_string(shard) +
                            " failed after " +
                            std::to_string(opts.retries) +
                            " retries; manifest '" +
                            shardManifestPath(opts.shardDir, shard) +
                            "' keeps the completed cells (re-run with "
                            "--resume to continue)");
    }
    if (opts.progress) {
        show_progress();
        std::cerr << "\n";
    }

    std::vector<ScenarioResult> results;
    std::string error;
    switch (collectShardResults(opts.shardDir, plan, fingerprint,
                                results, error)) {
    case MergeStatus::kOk:
        break;
    case MergeStatus::kIncomplete:
        // Every worker exited 0, so a gap here is a coordinator bug or
        // concurrent tampering; surface it as corruption.
        specExit(program, error + " (after all workers completed)");
    case MergeStatus::kCorrupt:
        specExit(program, error);
    case MergeStatus::kIoError:
        ioExit(program, error);
    }
    return results;
}

} // namespace busarb
