/**
 * @file
 * Versioned binary codec for ScenarioResult checkpoint records.
 *
 * A sharded sweep must reassemble merged artifacts byte-identically
 * to a single-process run, so a worker's per-cell checkpoint has to
 * capture *everything* the coordinator's emission path reads — batch
 * series, metrics registry, binary trace, snapshot JSONL, health
 * report — with bit-exact doubles (serialized as IEEE-754 bit
 * patterns, never through decimal text). The coordinator deserializes
 * records back into real ScenarioResult values and runs the exact
 * same output code a non-sharded sweep runs, so byte-identity holds
 * by construction.
 *
 * The format is host-endian: manifests are per-host scratch state
 * (like build artifacts), not portable interchange files. The version
 * field exists so a stale manifest from an older build is rejected
 * with exit 2 instead of being misread.
 */

#ifndef BUSARB_DIST_RESULT_CODEC_HH
#define BUSARB_DIST_RESULT_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "experiment/runner.hh"

namespace busarb {

/**
 * Codec version stamped into every record. v2 added the workload spec
 * string and the WorkloadStats block (open-loop observables).
 */
inline constexpr std::uint32_t kResultCodecVersion = 2;

/**
 * Serialize a ScenarioResult into a self-contained record.
 *
 * The self-profile (ScenarioResult::profile) is deliberately not
 * carried: it is host-timing diagnostics with no deterministic
 * artifact behind it, and busarb_sweep has no per-cell profile
 * output.
 *
 * @param result The result to serialize.
 * @return The record bytes.
 */
std::vector<std::uint8_t>
encodeScenarioResult(const ScenarioResult &result);

/**
 * Deserialize a record produced by encodeScenarioResult.
 *
 * @param data Record bytes.
 * @param size Record length.
 * @param out Receives the result on success (fully overwritten).
 * @param error Receives a diagnostic on failure.
 * @retval false Malformed, truncated, or version-mismatched record.
 */
bool decodeScenarioResult(const std::uint8_t *data, std::size_t size,
                          ScenarioResult &out, std::string &error);

} // namespace busarb

#endif // BUSARB_DIST_RESULT_CODEC_HH
