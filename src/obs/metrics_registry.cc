#include "obs/metrics_registry.hh"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <vector>

#include "obs/export_format.hh"
#include "sim/logging.hh"

namespace busarb {

namespace {

enum class Kind { kCounter, kGauge, kHistogram, kAnnotation };

/** (name, kind) in global lexicographic name order. */
std::vector<std::pair<const std::string *, Kind>>
orderedNames(const std::map<std::string, Counter> &counters,
             const std::map<std::string, Gauge> &gauges,
             const std::map<std::string, Histogram> &histograms,
             const std::map<std::string, std::string> &annotations)
{
    std::vector<std::pair<const std::string *, Kind>> names;
    names.reserve(counters.size() + gauges.size() + histograms.size() +
                  annotations.size());
    for (const auto &[name, c] : counters)
        names.emplace_back(&name, Kind::kCounter);
    for (const auto &[name, g] : gauges)
        names.emplace_back(&name, Kind::kGauge);
    for (const auto &[name, h] : histograms)
        names.emplace_back(&name, Kind::kHistogram);
    for (const auto &[name, a] : annotations)
        names.emplace_back(&name, Kind::kAnnotation);
    std::sort(names.begin(), names.end(),
              [](const auto &a, const auto &b) {
                  return *a.first < *b.first;
              });
    return names;
}

} // namespace

void
MetricsRegistry::checkKindFree(const std::string &name,
                               const char *kind) const
{
    const bool is_counter = counters_.count(name) != 0;
    const bool is_gauge = gauges_.count(name) != 0;
    const bool is_hist = histograms_.count(name) != 0;
    const bool is_annotation = annotations_.count(name) != 0;
    BUSARB_ASSERT((!is_counter || std::string(kind) == "counter") &&
                  (!is_gauge || std::string(kind) == "gauge") &&
                  (!is_hist || std::string(kind) == "histogram") &&
                  (!is_annotation || std::string(kind) == "annotation"),
                  "metric '", name, "' redefined as a ", kind);
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    checkKindFree(name, "counter");
    return counters_[name];
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    checkKindFree(name, "gauge");
    return gauges_[name];
}

Histogram &
MetricsRegistry::histogram(const std::string &name, double bin_width,
                           std::size_t bins)
{
    checkKindFree(name, "histogram");
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, Histogram(bin_width, bins)).first;
    }
    return it->second;
}

void
MetricsRegistry::setAnnotation(const std::string &name,
                               const std::string &value)
{
    checkKindFree(name, "annotation");
    annotations_[name] = value;
}

bool
MetricsRegistry::empty() const
{
    return counters_.empty() && gauges_.empty() &&
           histograms_.empty() && annotations_.empty();
}

std::size_t
MetricsRegistry::size() const
{
    return counters_.size() + gauges_.size() + histograms_.size() +
           annotations_.size();
}

void
MetricsRegistry::checkMergeFresh(const std::string &name,
                                 const std::string &prefix) const
{
    // A prefixed merge promises a namespace of its own; landing on an
    // existing fully-qualified name means two runs were merged under
    // the same prefix (e.g. the same protocol key twice), which would
    // silently sum unrelated runs into one metric.
    BUSARB_ASSERT(counters_.count(name) == 0 &&
                  gauges_.count(name) == 0 &&
                  histograms_.count(name) == 0 &&
                  annotations_.count(name) == 0,
                  "mergeFrom: metric '", name,
                  "' already exists; duplicate merge under prefix '",
                  prefix, "'");
}

void
MetricsRegistry::mergeFrom(const MetricsRegistry &other,
                           const std::string &prefix)
{
    // Un-prefixed merges accumulate (sum) by design; prefixed merges
    // must land on fresh names.
    if (!prefix.empty()) {
        for (const auto &[name, c] : other.counters_)
            checkMergeFresh(prefix + name, prefix);
        for (const auto &[name, g] : other.gauges_)
            checkMergeFresh(prefix + name, prefix);
        for (const auto &[name, h] : other.histograms_)
            checkMergeFresh(prefix + name, prefix);
        for (const auto &[name, a] : other.annotations_)
            checkMergeFresh(prefix + name, prefix);
    }
    for (const auto &[name, c] : other.counters_)
        counter(prefix + name).merge(c);
    for (const auto &[name, g] : other.gauges_)
        gauge(prefix + name).merge(g);
    for (const auto &[name, h] : other.histograms_)
        histogram(prefix + name, h.binWidth(), h.numBins()).merge(h);
    for (const auto &[name, a] : other.annotations_) {
        // Annotations never aggregate: an un-prefixed merge may only
        // restate the same fact, never change it.
        const auto it = annotations_.find(prefix + name);
        BUSARB_ASSERT(it == annotations_.end() || it->second == a,
                      "mergeFrom: annotation '", prefix + name,
                      "' has conflicting values");
        setAnnotation(prefix + name, a);
    }
}

void
MetricsRegistry::writeCsv(std::ostream &os) const
{
    os << "name,kind,count,sum,min,max,p50,p90,p99,value\n";
    for (const auto &[name, kind] :
         orderedNames(counters_, gauges_, histograms_, annotations_)) {
        writeCsvField(os, *name);
        switch (kind) {
          case Kind::kCounter:
            os << ",counter," << formatUint(counters_.at(*name).value())
               << ",,,,,,,\n";
            break;
          case Kind::kGauge: {
            const Gauge &g = gauges_.at(*name);
            os << ",gauge," << formatUint(g.count()) << ","
               << formatDouble(g.sum()) << ",";
            if (g.count() > 0) {
                os << formatDouble(g.min()) << ","
                   << formatDouble(g.max());
            } else {
                os << ",";
            }
            os << ",,,,\n";
            break;
          }
          case Kind::kHistogram: {
            const Histogram &h = histograms_.at(*name);
            os << ",histogram," << formatUint(h.count()) << ","
               << formatDouble(h.sum()) << ",,,"
               << formatDouble(h.quantile(0.50)) << ","
               << formatDouble(h.quantile(0.90)) << ","
               << formatDouble(h.quantile(0.99)) << ",\n";
            break;
          }
          case Kind::kAnnotation:
            os << ",annotation,,,,,,,,";
            writeCsvField(os, annotations_.at(*name));
            os << "\n";
            break;
        }
    }
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const auto &[name, kind] :
         orderedNames(counters_, gauges_, histograms_, annotations_)) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  ";
        writeJsonString(os, *name);
        os << ": ";
        switch (kind) {
          case Kind::kCounter:
            os << "{\"kind\": \"counter\", \"value\": "
               << formatUint(counters_.at(*name).value()) << "}";
            break;
          case Kind::kGauge: {
            const Gauge &g = gauges_.at(*name);
            os << "{\"kind\": \"gauge\", \"count\": "
               << formatUint(g.count()) << ", \"sum\": ";
            writeJsonNumber(os, g.sum());
            os << ", \"mean\": ";
            writeJsonNumber(os, g.mean());
            os << ", \"min\": ";
            writeJsonNumber(os, g.min());
            os << ", \"max\": ";
            writeJsonNumber(os, g.max());
            os << "}";
            break;
          }
          case Kind::kHistogram: {
            const Histogram &h = histograms_.at(*name);
            os << "{\"kind\": \"histogram\", \"bin_width\": "
               << formatDouble(h.binWidth()) << ", \"count\": "
               << formatUint(h.count()) << ", \"sum\": ";
            writeJsonNumber(os, h.sum());
            os << ", \"overflow\": " << formatUint(h.overflow())
               << ", \"p50\": ";
            writeJsonNumber(os, h.quantile(0.50));
            os << ", \"p90\": ";
            writeJsonNumber(os, h.quantile(0.90));
            os << ", \"p99\": ";
            writeJsonNumber(os, h.quantile(0.99));
            os << ", \"bins\": [";
            // Sparse [index, count] pairs keep large empty histograms
            // from bloating the file.
            bool first_bin = true;
            for (std::size_t i = 0; i < h.numBins(); ++i) {
                if (h.binCount(i) == 0)
                    continue;
                if (!first_bin)
                    os << ", ";
                first_bin = false;
                os << "[" << formatUint(i) << ", "
                   << formatUint(h.binCount(i)) << "]";
            }
            os << "]}";
            break;
          }
          case Kind::kAnnotation:
            os << "{\"kind\": \"annotation\", \"value\": ";
            writeJsonString(os, annotations_.at(*name));
            os << "}";
            break;
        }
    }
    os << "\n}\n";
}

bool
MetricsRegistry::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    const bool json = path.size() >= 5 &&
                      path.compare(path.size() - 5, 5, ".json") == 0;
    if (json)
        writeJson(out);
    else
        writeCsv(out);
    return static_cast<bool>(out);
}

} // namespace busarb
