#include "obs/latency.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <unordered_map>

namespace busarb {

std::vector<RequestLatency>
computeRequestLatencies(const TraceChunk &chunk)
{
    std::vector<RequestLatency> out;
    std::unordered_map<std::uint64_t, Tick> issued;
    std::unordered_map<std::uint64_t, Tick> exposed;
    std::unordered_map<std::uint64_t, Tick> tenure_start;
    bool busy = false;
    Tick last_free = 0;
    for (const TraceEvent &ev : chunk.events) {
        switch (ev.kind) {
          case TraceEventKind::kRequestPosted:
            issued[ev.seq] = ev.tick;
            break;
          case TraceEventKind::kPassStarted:
            break;
          case TraceEventKind::kPassResolved:
            if (ev.agent != kNoAgent) {
                // Mirrors the engine: a pass that resolves while the
                // bus is idle delayed the grant by the part of the
                // pass that ran after the bus last became free.
                exposed[ev.seq] =
                    busy ? 0
                         : ev.tick -
                               std::max(ev.passStart, last_free);
            }
            break;
          case TraceEventKind::kTenureStarted:
            busy = true;
            tenure_start[ev.seq] = ev.tick;
            break;
          case TraceEventKind::kTenureEnded: {
            busy = false;
            last_free = ev.tick;
            const auto issue = issued.find(ev.seq);
            const auto start = tenure_start.find(ev.seq);
            if (issue == issued.end() || start == tenure_start.end())
                break; // request predates the trace
            RequestLatency r;
            r.agent = ev.agent;
            r.seq = ev.seq;
            r.issued = issue->second;
            r.service = ev.tick - start->second;
            const auto exp = exposed.find(ev.seq);
            r.exposedArb = exp == exposed.end() ? 0 : exp->second;
            r.queue = start->second - issue->second - r.exposedArb;
            out.push_back(r);
            issued.erase(issue);
            tenure_start.erase(start);
            if (exp != exposed.end())
                exposed.erase(exp);
            break;
          }
          case TraceEventKind::kCounterUpdate:
            break;
        }
    }
    return out;
}

void
LatencySummary::add(const RequestLatency &r)
{
    queue.set(ticksToUnits(r.queue));
    exposedArb.set(ticksToUnits(r.exposedArb));
    service.set(ticksToUnits(r.service));
    wait.set(ticksToUnits(r.wait()));
    waitHistogram.add(ticksToUnits(r.wait()));
}

double
LatencySummary::waitQuantile(double p) const
{
    return waitHistogram.quantile(p);
}

LatencySummary
summarizeLatencies(const std::vector<RequestLatency> &latencies)
{
    LatencySummary s;
    for (const RequestLatency &r : latencies)
        s.add(r);
    return s;
}

void
printLatencyBreakdown(const std::vector<TraceChunk> &chunks,
                      std::ostream &os)
{
    os << "per-pass latency breakdown (transaction units, means):\n"
       << std::left << std::setw(24) << "protocol" << std::right
       << std::setw(10) << "requests" << std::setw(10) << "queue"
       << std::setw(12) << "exp. arb" << std::setw(10) << "service"
       << std::setw(10) << "W mean" << std::setw(9) << "W p50"
       << std::setw(9) << "W p95" << std::setw(9) << "W p99"
       << std::setw(10) << "W max" << "\n";
    os << std::fixed << std::setprecision(3);
    for (const TraceChunk &chunk : chunks) {
        const LatencySummary s =
            summarizeLatencies(computeRequestLatencies(chunk));
        os << std::left << std::setw(24) << chunk.protocol << std::right
           << std::setw(10) << s.wait.count() << std::setw(10)
           << s.queue.mean() << std::setw(12) << s.exposedArb.mean()
           << std::setw(10) << s.service.mean() << std::setw(10)
           << s.wait.mean() << std::setw(9) << s.waitQuantile(0.50)
           << std::setw(9) << s.waitQuantile(0.95) << std::setw(9)
           << s.waitQuantile(0.99) << std::setw(10)
           << (s.wait.count() > 0 ? s.wait.max() : 0.0) << "\n";
    }
}

void
writeLatencyCsv(const std::vector<TraceChunk> &chunks, std::ostream &os)
{
    os << "chunk,protocol,agent,seq,issued,queue,exposed_arb,service,"
          "wait\n";
    int chunk_idx = 0;
    for (const TraceChunk &chunk : chunks) {
        for (const RequestLatency &r : computeRequestLatencies(chunk)) {
            os << chunk_idx << "," << chunk.protocol << "," << r.agent
               << "," << r.seq << "," << ticksToUnits(r.issued) << ","
               << ticksToUnits(r.queue) << ","
               << ticksToUnits(r.exposedArb) << ","
               << ticksToUnits(r.service) << ","
               << ticksToUnits(r.wait()) << "\n";
        }
        ++chunk_idx;
    }
}

} // namespace busarb
