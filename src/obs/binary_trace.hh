/**
 * @file
 * Compact binary encoding of bus observability events.
 *
 * The format is a sequence of self-contained chunks, one per scenario
 * run. Each chunk is:
 *
 *   magic "BATR"            4 bytes
 *   version                 1 byte (currently 1)
 *   num_agents              varint
 *   protocol name           varint length + bytes
 *   records                 1 tag byte + varint fields each
 *   end record              1 byte (tag 0)
 *
 * Every record carries its tick as an unsigned varint delta from the
 * previous record's tick (events are monotonic in time), so a typical
 * record is 3-8 bytes. Varints are unsigned LEB128. Counter records
 * refer to names via an id assigned by an in-stream name-definition
 * record, so the stream needs no out-of-band schema.
 *
 * The writer is a BusTracer: attach it to a Bus (or let the scenario
 * runner do it via ScenarioConfig::captureBinaryTrace) and every bus
 * event is appended to an in-memory buffer. Because each scenario owns
 * its writer, capture is JobPool-safe and the bytes are identical at
 * any --jobs count.
 */

#ifndef BUSARB_OBS_BINARY_TRACE_HH
#define BUSARB_OBS_BINARY_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bus/trace.hh"
#include "obs/trace_event.hh"

namespace busarb {

/** Append `value` to `out` as an unsigned LEB128 varint. */
void appendVarint(std::vector<std::uint8_t> &out, std::uint64_t value);

/**
 * Decode one unsigned LEB128 varint from [*cursor, end).
 *
 * @param cursor Advanced past the varint on success.
 * @param end One past the last readable byte.
 * @param out Receives the value.
 * @retval false Truncated or longer than 10 bytes.
 */
bool decodeVarint(const std::uint8_t **cursor, const std::uint8_t *end,
                  std::uint64_t &out);

/**
 * Serializes bus events into one binary trace chunk.
 */
class BinaryTraceWriter : public BusTracer
{
  public:
    /**
     * @param num_agents Number of agents on the traced bus.
     * @param protocol Protocol name recorded in the chunk header.
     */
    BinaryTraceWriter(int num_agents, const std::string &protocol);

    void onRequestPosted(const Request &req) override;
    void onPassStarted(Tick now) override;
    void onPassResolved(Tick now, Tick pass_start, const Request &winner,
                        bool retry) override;
    void onTenureStarted(const Request &req, Tick now) override;
    void onTenureEnded(const Request &req, Tick now) override;

    /**
     * Define a named counter; subsequent counterUpdate calls refer to
     * the returned id. Safe to call at any point in the stream.
     *
     * @param name Hierarchical counter name (metric convention).
     * @return The id for counterUpdate.
     */
    std::uint64_t defineCounter(const std::string &name);

    /** Append a counter-update record. */
    void counterUpdate(std::uint64_t id, Tick now, std::uint64_t value);

    /** @return Events written so far (excluding definitions). */
    std::uint64_t events() const { return events_; }

    /**
     * Terminate the chunk and surrender the buffer. The writer must
     * not be used afterwards.
     *
     * @return The complete chunk bytes.
     */
    std::vector<std::uint8_t> finish();

  private:
    std::vector<std::uint8_t> buffer_;
    Tick lastTick_ = 0;
    std::uint64_t events_ = 0;
    std::uint64_t nextCounterId_ = 0;
    bool finished_ = false;

    /** Append the tag byte and the tick delta for an event at `now`. */
    void beginRecord(TraceEventKind kind, Tick now);
};

/** One decoded trace chunk (a full scenario run). */
struct TraceChunk
{
    int numAgents = 0;
    std::string protocol;
    std::vector<TraceEvent> events;

    /** Counter-name table; index is the id in kCounterUpdate events. */
    std::vector<std::string> counterNames;
};

/**
 * Decode a buffer of concatenated trace chunks.
 *
 * @param data Chunk bytes (e.g. a --trace-out file).
 * @param size Byte count.
 * @return The decoded chunks, in input order.
 * @throws std::runtime_error on malformed input.
 */
std::vector<TraceChunk> readTraceChunks(const std::uint8_t *data,
                                        std::size_t size);

/** Convenience overload for a byte vector. */
std::vector<TraceChunk>
readTraceChunks(const std::vector<std::uint8_t> &data);

} // namespace busarb

#endif // BUSARB_OBS_BINARY_TRACE_HH
