#include "obs/sweep_progress.hh"

#include "sim/logging.hh"

namespace busarb {

EtaEstimator::EtaEstimator(double alpha) : alpha_(alpha)
{
    BUSARB_ASSERT(alpha > 0.0 && alpha <= 1.0,
                  "EtaEstimator alpha must be in (0, 1], got ", alpha);
}

void
EtaEstimator::start(double now_seconds)
{
    lastTime_ = now_seconds;
    lastDone_ = 0;
    ewma_ = 0.0;
    primed_ = false;
}

void
EtaEstimator::onProgress(double now_seconds, std::size_t done)
{
    if (done <= lastDone_)
        return;
    const std::size_t delta = done - lastDone_;
    double dt = now_seconds - lastTime_;
    if (dt < 0.0)
        dt = 0.0;
    // When several cells complete between observations (one manifest
    // poll seeing a burst), spread the interval across them so the
    // per-cell average stays unbiased.
    const double per_cell = dt / static_cast<double>(delta);
    if (!primed_) {
        ewma_ = per_cell;
        primed_ = true;
    } else {
        // Weight the new observation once per completed cell so a
        // burst of k cells moves the average as far as k single
        // completions would.
        for (std::size_t i = 0; i < delta; ++i)
            ewma_ = alpha_ * per_cell + (1.0 - alpha_) * ewma_;
    }
    lastTime_ = now_seconds;
    lastDone_ = done;
}

double
EtaEstimator::cellsPerSecond() const
{
    if (!primed_ || ewma_ <= 0.0)
        return 0.0;
    return 1.0 / ewma_;
}

double
EtaEstimator::etaSeconds(std::size_t remaining) const
{
    if (!primed_)
        return 0.0;
    return ewma_ * static_cast<double>(remaining);
}

} // namespace busarb
