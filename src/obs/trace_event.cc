#include "obs/trace_event.hh"

#include <iomanip>
#include <ostream>

namespace busarb {

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::kRequestPosted:
        return "request";
      case TraceEventKind::kPassStarted:
        return "pass_start";
      case TraceEventKind::kPassResolved:
        return "pass_resolve";
      case TraceEventKind::kTenureStarted:
        return "tenure_start";
      case TraceEventKind::kTenureEnded:
        return "tenure_end";
      case TraceEventKind::kCounterUpdate:
        return "counter";
    }
    return "unknown";
}

void
printTraceEvent(const TraceEvent &event, std::ostream &os)
{
    os << "[" << std::setw(10) << std::fixed << std::setprecision(3)
       << ticksToUnits(event.tick) << "] "
       << traceEventKindName(event.kind);
    switch (event.kind) {
      case TraceEventKind::kRequestPosted:
        os << " agent=" << event.agent << " seq=" << event.seq;
        if (event.priority)
            os << " priority";
        break;
      case TraceEventKind::kPassStarted:
        break;
      case TraceEventKind::kPassResolved:
        if (event.agent != kNoAgent) {
            os << " winner=" << event.agent << " seq=" << event.seq;
        } else {
            os << (event.retry ? " retry" : " idle");
        }
        os << " pass_units="
           << ticksToUnits(event.tick - event.passStart);
        break;
      case TraceEventKind::kTenureStarted:
      case TraceEventKind::kTenureEnded:
        os << " agent=" << event.agent << " seq=" << event.seq;
        break;
      case TraceEventKind::kCounterUpdate:
        os << " id=" << event.counterId << " value="
           << event.counterValue;
        break;
    }
}

} // namespace busarb
