/**
 * @file
 * Per-request latency breakdown from a decoded trace.
 *
 * Splits each served request's waiting time into the three components
 * the paper's timing model distinguishes (Section 4.1): time queued
 * behind other masters, arbitration overhead that was exposed (not
 * hidden under a bus transfer), and the bus service time itself. The
 * accounting mirrors the bus engine's own exposed-arbitration rule, so
 * summing the exposed component over a trace reproduces the engine's
 * exposedArbitrationTicks counter.
 */

#ifndef BUSARB_OBS_LATENCY_HH
#define BUSARB_OBS_LATENCY_HH

#include <iosfwd>
#include <vector>

#include "obs/binary_trace.hh"
#include "obs/metrics_registry.hh"

namespace busarb {

/** Latency components of one served request, in ticks. */
struct RequestLatency
{
    AgentId agent = kNoAgent;
    std::uint64_t seq = 0;

    /** Tick the request was issued. */
    Tick issued = 0;

    /** Time queued behind other masters (excludes exposed arb). */
    Tick queue = 0;

    /** Arbitration overhead that delayed the grant. */
    Tick exposedArb = 0;

    /** Bus transfer time. */
    Tick service = 0;

    /** @return Full waiting time W = queue + exposedArb + service. */
    Tick wait() const { return queue + exposedArb + service; }
};

/**
 * Compute the latency breakdown for every request served in `chunk`.
 * Requests still in flight when the trace ends are omitted.
 *
 * @param chunk One decoded trace chunk.
 * @return Per-request latencies, in completion order.
 */
std::vector<RequestLatency>
computeRequestLatencies(const TraceChunk &chunk);

/** Summary statistics over one set of request latencies. */
struct LatencySummary
{
    Gauge queue;      ///< queueing component, transaction units
    Gauge exposedArb; ///< exposed arbitration, transaction units
    Gauge service;    ///< service component, transaction units
    Gauge wait;       ///< full waiting time W, transaction units

    /**
     * Waiting-time distribution for percentile columns. Same binning
     * as the runner's waiting-time histograms (0.25-unit bins); the
     * overflow bin catches pathological waits, so quantiles saturate
     * rather than lie.
     */
    Histogram waitHistogram{0.25, 1200};

    /** Fold one request in. */
    void add(const RequestLatency &r);

    /** @return Approximate p-quantile of W; 0 when empty. */
    double waitQuantile(double p) const;
};

/**
 * Summarize a set of request latencies (values in transaction units).
 */
LatencySummary
summarizeLatencies(const std::vector<RequestLatency> &latencies);

/**
 * Print a per-chunk latency breakdown table.
 *
 * @param chunks Decoded trace chunks.
 * @param os Destination stream.
 */
void printLatencyBreakdown(const std::vector<TraceChunk> &chunks,
                           std::ostream &os);

/**
 * Write one CSV row per served request across all chunks.
 *
 * Columns: chunk, protocol, agent, seq, issued, queue, exposed_arb,
 * service, wait (time columns in transaction units).
 *
 * @param chunks Decoded trace chunks.
 * @param os Destination stream.
 */
void writeLatencyCsv(const std::vector<TraceChunk> &chunks,
                     std::ostream &os);

} // namespace busarb

#endif // BUSARB_OBS_LATENCY_HH
