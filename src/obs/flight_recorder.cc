#include "obs/flight_recorder.hh"

#include <iostream>
#include <ostream>

#include "sim/logging.hh"

namespace busarb {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity)
{
    BUSARB_ASSERT(capacity >= 1, "flight recorder needs capacity >= 1");
    ring_.reserve(capacity);
}

void
FlightRecorder::record(const TraceEvent &event)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(event);
    } else {
        ring_[next_] = event;
    }
    next_ = (next_ + 1) % capacity_;
    ++total_;
}

void
FlightRecorder::onRequestPosted(const Request &req)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::kRequestPosted;
    ev.tick = req.issued;
    ev.agent = req.agent;
    ev.seq = req.seq;
    ev.priority = req.priority;
    record(ev);
}

void
FlightRecorder::onPassStarted(Tick now)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::kPassStarted;
    ev.tick = now;
    record(ev);
}

void
FlightRecorder::onPassResolved(Tick now, Tick pass_start,
                               const Request &winner, bool retry)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::kPassResolved;
    ev.tick = now;
    ev.passStart = pass_start;
    ev.retry = retry;
    if (winner.valid()) {
        ev.agent = winner.agent;
        ev.seq = winner.seq;
    }
    record(ev);
}

void
FlightRecorder::onTenureStarted(const Request &req, Tick now)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::kTenureStarted;
    ev.tick = now;
    ev.agent = req.agent;
    ev.seq = req.seq;
    record(ev);
}

void
FlightRecorder::onTenureEnded(const Request &req, Tick now)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::kTenureEnded;
    ev.tick = now;
    ev.agent = req.agent;
    ev.seq = req.seq;
    record(ev);
}

std::size_t
FlightRecorder::size() const
{
    return ring_.size();
}

std::vector<TraceEvent>
FlightRecorder::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
        out = ring_;
        return out;
    }
    for (std::size_t i = 0; i < capacity_; ++i)
        out.push_back(ring_[(next_ + i) % capacity_]);
    return out;
}

void
FlightRecorder::dump(std::ostream &os) const
{
    os << "flight recorder: last " << size() << " of " << total_
       << " bus events\n";
    for (const TraceEvent &ev : snapshot()) {
        os << "  ";
        printTraceEvent(ev, os);
        os << "\n";
    }
}

ScopedFlightRecorderDump::ScopedFlightRecorderDump(
    const FlightRecorder &recorder)
{
    setPanicHook([&recorder] { recorder.dump(std::cerr); });
}

ScopedFlightRecorderDump::~ScopedFlightRecorderDump()
{
    setPanicHook(nullptr);
}

} // namespace busarb
