#include "obs/fairness_auditor.hh"

#include <algorithm>
#include <limits>
#include <ostream>
#include <sstream>

#include "obs/export_format.hh"
#include "sim/logging.hh"

namespace busarb {

namespace {

/** @return `ticks` converted to bus-transaction units. */
double
toUnits(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(kTicksPerUnit);
}

} // namespace

FairnessAuditor::FairnessAuditor(const FairnessAuditorConfig &config)
    : numAgents_(config.numAgents),
      bound_(config.bypassBound > 0 ? config.bypassBound
                                    : config.numAgents - 1),
      snapshotEvery_(config.snapshotEveryTicks),
      nextSnapshot_(config.snapshotEveryTicks),
      label_(config.label),
      agents_(static_cast<std::size_t>(config.numAgents)),
      windows_(config.windowTicks, config.numAgents)
{
    BUSARB_ASSERT(numAgents_ >= 1, "auditor needs at least one agent");
    BUSARB_ASSERT(snapshotEvery_ >= 0, "snapshot interval must be >= 0");
    for (AgentStats &a : agents_) {
        a.minWaitUnits = std::numeric_limits<double>::infinity();
        a.maxWaitUnits = -std::numeric_limits<double>::infinity();
    }
}

void
FairnessAuditor::onRequestPosted(const Request &req)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::kRequestPosted;
    ev.tick = req.issued;
    ev.agent = req.agent;
    ev.seq = req.seq;
    ev.priority = req.priority;
    consume(ev);
}

void
FairnessAuditor::onPassResolved(Tick now, Tick pass_start,
                                const Request &winner, bool retry)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::kPassResolved;
    ev.tick = now;
    ev.passStart = pass_start;
    ev.retry = retry;
    if (winner.valid()) {
        ev.agent = winner.agent;
        ev.seq = winner.seq;
    }
    consume(ev);
}

void
FairnessAuditor::onTenureStarted(const Request &req, Tick now)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::kTenureStarted;
    ev.tick = now;
    ev.agent = req.agent;
    ev.seq = req.seq;
    consume(ev);
}

void
FairnessAuditor::onTenureEnded(const Request &req, Tick now)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::kTenureEnded;
    ev.tick = now;
    ev.agent = req.agent;
    ev.seq = req.seq;
    consume(ev);
}

void
FairnessAuditor::consume(const TraceEvent &event)
{
    BUSARB_ASSERT(!finished_, "event consumed after finish()");
    emitSnapshotsThrough(event.tick);
    lastTick_ = std::max(lastTick_, event.tick);
    switch (event.kind) {
      case TraceEventKind::kRequestPosted:
        handleRequestPosted(event);
        break;
      case TraceEventKind::kPassResolved:
        handleGrant(event);
        break;
      case TraceEventKind::kTenureStarted:
        handleTenureStarted(event);
        break;
      case TraceEventKind::kTenureEnded:
        handleTenureEnded(event);
        break;
      case TraceEventKind::kPassStarted:
      case TraceEventKind::kCounterUpdate:
        break; // carry no fairness information
    }
}

void
FairnessAuditor::handleRequestPosted(const TraceEvent &ev)
{
    BUSARB_ASSERT(ev.agent >= 1 && ev.agent <= numAgents_,
                  "request from unknown agent ", ev.agent);
    pending_.push_back({ev.agent, ev.seq, ev.tick, 0});
}

void
FairnessAuditor::handleGrant(const TraceEvent &ev)
{
    if (ev.agent == kNoAgent)
        return; // empty pass (fairness release / wrap) or retry
    ++grants_;

    auto winner = pending_.end();
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->seq == ev.seq) {
            winner = it;
            continue;
        }
        // Every other agent's request that was already posted when this
        // pass froze its competitors has now been bypassed once. The
        // strict `< passStart` keeps a request posted during the pass
        // from counting it: that pass could never have admitted it, so
        // charging it would inflate RR past its N-1 external bound.
        if (it->agent != ev.agent && it->posted < ev.passStart)
            ++it->bypasses;
    }
    if (winner == pending_.end()) {
        // A grant for a request we never saw posted (trace cut mid-run):
        // keep accounting consistent without inventing a wait.
        granted_.push_back({ev.agent, ev.seq, ev.tick, false});
        return;
    }

    AgentStats &stats = agentStats(ev.agent);
    stats.maxBypasses = std::max(stats.maxBypasses, winner->bypasses);
    maxBypasses_ = std::max(maxBypasses_, winner->bypasses);
    if (winner->bypasses > static_cast<std::uint64_t>(bound_))
        ++boundViolations_;
    for (const PendingRequest &p : pending_) {
        if (p.seq < winner->seq)
            ++inversions_;
    }
    granted_.push_back({ev.agent, ev.seq, winner->posted, false});
    pending_.erase(winner);
}

void
FairnessAuditor::handleTenureStarted(const TraceEvent &ev)
{
    for (GrantedRequest &g : granted_) {
        if (g.seq != ev.seq)
            continue;
        g.started = true;
        const Tick starved = ev.tick - g.posted;
        AgentStats &stats = agentStats(g.agent);
        stats.maxStarvation = std::max(stats.maxStarvation, starved);
        maxStarvation_ = std::max(maxStarvation_, starved);
        return;
    }
}

void
FairnessAuditor::handleTenureEnded(const TraceEvent &ev)
{
    for (auto it = granted_.begin(); it != granted_.end(); ++it) {
        if (it->seq != ev.seq)
            continue;
        const double wait = toUnits(ev.tick - it->posted);
        AgentStats &stats = agentStats(it->agent);
        ++stats.completions;
        stats.waitSumUnits += wait;
        stats.minWaitUnits = std::min(stats.minWaitUnits, wait);
        stats.maxWaitUnits = std::max(stats.maxWaitUnits, wait);
        ++completions_;
        waitSumUnits_ += wait;
        windows_.record(ev.tick, it->agent - 1, wait);
        granted_.erase(it);
        return;
    }
}

void
FairnessAuditor::finish(Tick end)
{
    BUSARB_ASSERT(!finished_, "finish() called twice");
    BUSARB_ASSERT(end >= lastTick_,
                  "finish() tick precedes a consumed event");
    emitSnapshotsThrough(end);
    finished_ = true;
    lastTick_ = end;

    // Unserved requests starved from their post to the end of the run;
    // a granted request whose tenure never began did too.
    for (const PendingRequest &p : pending_) {
        const Tick starved = end - p.posted;
        AgentStats &stats = agentStats(p.agent);
        stats.maxStarvation = std::max(stats.maxStarvation, starved);
        maxStarvation_ = std::max(maxStarvation_, starved);
    }
    for (const GrantedRequest &g : granted_) {
        if (g.started)
            continue;
        const Tick starved = end - g.posted;
        AgentStats &stats = agentStats(g.agent);
        stats.maxStarvation = std::max(stats.maxStarvation, starved);
        maxStarvation_ = std::max(maxStarvation_, starved);
    }
    windows_.finishAt(end);
}

std::uint64_t
FairnessAuditor::agentMaxBypasses(AgentId agent) const
{
    return agentStats(agent).maxBypasses;
}

Tick
FairnessAuditor::agentMaxStarvationTicks(AgentId agent) const
{
    return agentStats(agent).maxStarvation;
}

double
FairnessAuditor::jainCompletions() const
{
    std::vector<double> shares;
    shares.reserve(agents_.size());
    for (const AgentStats &a : agents_)
        shares.push_back(static_cast<double>(a.completions));
    return jainIndex(shares);
}

double
FairnessAuditor::jainWaits() const
{
    std::vector<double> waits;
    for (const AgentStats &a : agents_) {
        if (a.completions > 0)
            waits.push_back(a.waitSumUnits /
                            static_cast<double>(a.completions));
    }
    return jainIndex(waits);
}

void
FairnessAuditor::exportMetrics(MetricsRegistry &m) const
{
    m.counter("fairness.grants").add(grants_);
    m.counter("fairness.completions").add(completions_);
    m.counter("fairness.bound_violations").add(boundViolations_);
    m.counter("fairness.inversions").add(inversions_);
    m.counter("fairness.windows").add(windows_.windowsClosed());
    m.gauge("fairness.max_bypasses")
        .set(static_cast<double>(maxBypasses_));
    m.gauge("fairness.max_starvation_units").set(toUnits(maxStarvation_));
    m.gauge("fairness.jain_completions").set(jainCompletions());
    m.gauge("fairness.jain_waits").set(jainWaits());

    const RunningStats &jain = windows_.windowJain();
    Gauge &wj = m.gauge("fairness.window_jain");
    if (jain.count() > 0)
        wj.mergeSummary(jain.count(), jain.sum(), jain.min(), jain.max());
    const RunningStats &wmean = windows_.windowValueMean();
    Gauge &ww = m.gauge("fairness.window_wait_mean");
    if (wmean.count() > 0)
        ww.mergeSummary(wmean.count(), wmean.sum(), wmean.min(),
                        wmean.max());

    for (AgentId a = 1; a <= numAgents_; ++a) {
        const AgentStats &stats = agentStats(a);
        const std::string prefix =
            "fairness." + agentMetricPrefix(a, numAgents_);
        m.counter(prefix + "completions").add(stats.completions);
        m.gauge(prefix + "max_bypasses")
            .set(static_cast<double>(stats.maxBypasses));
        m.gauge(prefix + "max_starvation_units")
            .set(toUnits(stats.maxStarvation));
        Gauge &wait = m.gauge(prefix + "wait");
        if (stats.completions > 0) {
            wait.mergeSummary(stats.completions, stats.waitSumUnits,
                              stats.minWaitUnits, stats.maxWaitUnits);
        }
    }
}

void
FairnessAuditor::emitSnapshotsThrough(Tick tick)
{
    if (snapshotEvery_ <= 0)
        return;
    while (nextSnapshot_ <= tick) {
        writeSnapshotLine(nextSnapshot_);
        nextSnapshot_ += snapshotEvery_;
    }
}

void
FairnessAuditor::writeSnapshotLine(Tick boundary)
{
    // A snapshot at boundary B reflects exactly the events with tick
    // < B; the still-live watchdog view extends unserved requests
    // through B. Every number goes through export_format so the line is
    // byte-stable across locales, platforms, and --jobs counts.
    Tick watchdog = maxStarvation_;
    for (const PendingRequest &p : pending_)
        watchdog = std::max(watchdog, boundary - p.posted);
    for (const GrantedRequest &g : granted_) {
        if (!g.started)
            watchdog = std::max(watchdog, boundary - g.posted);
    }

    std::ostringstream os;
    os << "{\"run\": ";
    writeJsonString(os, label_);
    os << ", \"t\": " << formatDouble(toUnits(boundary))
       << ", \"grants\": " << formatUint(grants_)
       << ", \"completions\": " << formatUint(completions_)
       << ", \"violations\": " << formatUint(boundViolations_)
       << ", \"inversions\": " << formatUint(inversions_)
       << ", \"max_bypasses\": " << formatUint(maxBypasses_)
       << ", \"max_starvation\": " << formatDouble(toUnits(watchdog))
       << ", \"jain_completions\": "
       << formatDouble(jainCompletions()) << ", \"agents\": [";
    for (AgentId a = 1; a <= numAgents_; ++a) {
        const AgentStats &stats = agentStats(a);
        Tick age = 0;
        for (const PendingRequest &p : pending_) {
            if (p.agent == a)
                age = std::max(age, boundary - p.posted);
        }
        if (a > 1)
            os << ", ";
        os << "{\"id\": " << formatInt(a) << ", \"completions\": "
           << formatUint(stats.completions) << ", \"mean_wait\": "
           << formatDouble(stats.completions == 0
                               ? 0.0
                               : stats.waitSumUnits /
                                     static_cast<double>(
                                         stats.completions))
           << ", \"max_bypasses\": " << formatUint(stats.maxBypasses)
           << ", \"pending_age\": " << formatDouble(toUnits(age))
           << "}";
    }
    os << "]}\n";
    snapshots_ += os.str();
}

void
FairnessAuditor::printSummary(std::ostream &os) const
{
    os << "fairness audit (" << numAgents_ << " agents, bypass bound "
       << bound_ << ")\n"
       << "  grants: " << grants_ << "  completions: " << completions_
       << "\n"
       << "  bound violations: " << boundViolations_
       << "  max bypasses: " << maxBypasses_ << "\n"
       << "  arrival-order inversions: " << inversions_ << "\n"
       << "  max starvation: " << formatDouble(toUnits(maxStarvation_))
       << " units\n"
       << "  Jain(completions): " << formatDouble(jainCompletions())
       << "  Jain(mean waits): " << formatDouble(jainWaits()) << "\n"
       << "  windows: " << windows_.windowsClosed()
       << "  mean window Jain: "
       << formatDouble(windows_.windowJain().mean()) << "\n"
       << "  agent  completions  mean_wait  max_bypass  max_starve\n";
    for (AgentId a = 1; a <= numAgents_; ++a) {
        const AgentStats &stats = agentStats(a);
        const double mean =
            stats.completions == 0
                ? 0.0
                : stats.waitSumUnits /
                      static_cast<double>(stats.completions);
        os << "  " << a << "  " << stats.completions << "  "
           << formatDouble(mean) << "  " << stats.maxBypasses << "  "
           << formatDouble(toUnits(stats.maxStarvation)) << "\n";
    }
}

FairnessAuditor::AgentStats &
FairnessAuditor::agentStats(AgentId agent)
{
    BUSARB_ASSERT(agent >= 1 && agent <= numAgents_,
                  "agent out of range: ", agent);
    return agents_[static_cast<std::size_t>(agent - 1)];
}

const FairnessAuditor::AgentStats &
FairnessAuditor::agentStats(AgentId agent) const
{
    BUSARB_ASSERT(agent >= 1 && agent <= numAgents_,
                  "agent out of range: ", agent);
    return agents_[static_cast<std::size_t>(agent - 1)];
}

} // namespace busarb
