/**
 * @file
 * Locale-independent text formatting for exported artifacts.
 *
 * Exported metrics, snapshots, and traces must be byte-identical across
 * machines and across `--jobs` counts, so none of them may go through
 * locale-sensitive iostream number formatting (a global locale with a
 * comma decimal point or digit grouping would silently corrupt every
 * CSV and JSON file). Everything here formats via std::to_chars with
 * the shortest round-trip representation, and the JSON/CSV writers
 * escape arbitrary names safely.
 */

#ifndef BUSARB_OBS_EXPORT_FORMAT_HH
#define BUSARB_OBS_EXPORT_FORMAT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "sim/types.hh"

namespace busarb {

/**
 * Shortest round-trip decimal representation of `v`, independent of
 * any global or imbued locale. Non-finite values render as "inf",
 * "-inf", or "nan" (JSON writers must special-case them).
 *
 * @param v The value.
 * @return The formatted text.
 */
std::string formatDouble(double v);

/** @return Locale-independent decimal text for an unsigned integer. */
std::string formatUint(std::uint64_t v);

/** @return Locale-independent decimal text for a signed integer. */
std::string formatInt(std::int64_t v);

/**
 * Write `s` as a JSON string literal: quotes and backslashes escaped,
 * control characters emitted as \u00XX.
 *
 * @param os Destination stream.
 * @param s The raw text.
 */
void writeJsonString(std::ostream &os, std::string_view s);

/**
 * Write `v` as a JSON number, or `null` when it is not finite (JSON
 * has no representation for infinities or NaN).
 *
 * @param os Destination stream.
 * @param v The value.
 */
void writeJsonNumber(std::ostream &os, double v);

/**
 * Write one CSV field, quoting it (with doubled inner quotes) only
 * when it contains a comma, quote, or newline.
 *
 * @param os Destination stream.
 * @param s The raw field text.
 */
void writeCsvField(std::ostream &os, std::string_view s);

/**
 * Zero-padded "agent.NN." metric-name prefix, wide enough for
 * `num_agents`, so per-agent metric names sort numerically.
 *
 * @param agent The agent (1..num_agents).
 * @param num_agents Total number of agents.
 * @return The prefix, e.g. "agent.03." when num_agents is 10..99.
 */
std::string agentMetricPrefix(AgentId agent, int num_agents);

} // namespace busarb

#endif // BUSARB_OBS_EXPORT_FORMAT_HH
