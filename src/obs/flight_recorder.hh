/**
 * @file
 * Bounded flight-recorder tracing.
 *
 * A FlightRecorder is a BusTracer that retains only the last M events
 * in a fixed-size ring, so it can run for the whole length of a
 * production-scale simulation at O(M) memory. Its purpose is post-hoc
 * diagnosis: when something goes wrong (most importantly, when a
 * ProtocolChecker contract violation panics the simulator), the tail
 * of bus activity leading up to the failure is dumped to stderr via
 * the thread-local panic hook (sim/logging.hh), turning an opaque
 * abort into a readable incident timeline.
 */

#ifndef BUSARB_OBS_FLIGHT_RECORDER_HH
#define BUSARB_OBS_FLIGHT_RECORDER_HH

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "bus/trace.hh"
#include "obs/trace_event.hh"

namespace busarb {

/**
 * Ring-buffer tracer retaining the last M bus events.
 */
class FlightRecorder : public BusTracer
{
  public:
    /**
     * @param capacity Events retained (M); must be >= 1.
     */
    explicit FlightRecorder(std::size_t capacity);

    void onRequestPosted(const Request &req) override;
    void onPassStarted(Tick now) override;
    void onPassResolved(Tick now, Tick pass_start, const Request &winner,
                        bool retry) override;
    void onTenureStarted(const Request &req, Tick now) override;
    void onTenureEnded(const Request &req, Tick now) override;

    /** Record an already-built event (for non-bus sources). */
    void record(const TraceEvent &event);

    /** @return Events currently retained (<= capacity). */
    std::size_t size() const;

    /** @return Total events seen, including evicted ones. */
    std::uint64_t totalEvents() const { return total_; }

    /** @return The retained tail, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /**
     * Print the retained tail, oldest first, one event per line.
     *
     * @param os Destination stream.
     */
    void dump(std::ostream &os) const;

  private:
    std::vector<TraceEvent> ring_;
    std::size_t capacity_;
    std::size_t next_ = 0; // slot the next event lands in
    std::uint64_t total_ = 0;
};

/**
 * RAII installer of a panic hook that dumps a flight recorder.
 *
 * While alive, any BUSARB_PANIC / BUSARB_ASSERT failure on this thread
 * (a ProtocolChecker contract violation, a deadlocked simulation, ...)
 * prints the recorder's tail to stderr before aborting. The hook is
 * thread-local, so concurrent scenario runs in a JobPool each dump
 * their own recorder.
 */
class ScopedFlightRecorderDump
{
  public:
    /** @param recorder The recorder to dump; must outlive this guard. */
    explicit ScopedFlightRecorderDump(const FlightRecorder &recorder);
    ~ScopedFlightRecorderDump();

    ScopedFlightRecorderDump(const ScopedFlightRecorderDump &) = delete;
    ScopedFlightRecorderDump &
    operator=(const ScopedFlightRecorderDump &) = delete;
};

} // namespace busarb

#endif // BUSARB_OBS_FLIGHT_RECORDER_HH
