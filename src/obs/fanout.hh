/**
 * @file
 * A tracer that forwards every event to several sinks, so a run can
 * feed (say) a binary trace writer, a flight recorder, and a text
 * timeline at the same time through the Bus's single tracer slot.
 */

#ifndef BUSARB_OBS_FANOUT_HH
#define BUSARB_OBS_FANOUT_HH

#include <vector>

#include "bus/trace.hh"

namespace busarb {

/**
 * Forwards bus events to every attached tracer, in attachment order.
 */
class FanoutTracer : public BusTracer
{
  public:
    FanoutTracer() = default;

    /** Attach a sink (not owned; null is ignored). */
    void
    add(BusTracer *tracer)
    {
        if (tracer != nullptr)
            sinks_.push_back(tracer);
    }

    /** @return Number of attached sinks. */
    std::size_t size() const { return sinks_.size(); }

    void
    onRequestPosted(const Request &req) override
    {
        for (BusTracer *t : sinks_)
            t->onRequestPosted(req);
    }

    void
    onPassStarted(Tick now) override
    {
        for (BusTracer *t : sinks_)
            t->onPassStarted(now);
    }

    void
    onPassResolved(Tick now, Tick pass_start, const Request &winner,
                   bool retry) override
    {
        for (BusTracer *t : sinks_)
            t->onPassResolved(now, pass_start, winner, retry);
    }

    void
    onTenureStarted(const Request &req, Tick now) override
    {
        for (BusTracer *t : sinks_)
            t->onTenureStarted(req, now);
    }

    void
    onTenureEnded(const Request &req, Tick now) override
    {
        for (BusTracer *t : sinks_)
            t->onTenureEnded(req, now);
    }

  private:
    std::vector<BusTracer *> sinks_;
};

} // namespace busarb

#endif // BUSARB_OBS_FANOUT_HH
