#include "obs/profiler.hh"

#include <ostream>

#include "obs/export_format.hh"
#include "sim/logging.hh"

namespace busarb {

const char *
runPhaseName(RunPhase phase)
{
    switch (phase) {
      case RunPhase::kWarmup:
        return "warmup";
      case RunPhase::kMeasure:
        return "measure";
      case RunPhase::kDrain:
        return "drain";
    }
    BUSARB_PANIC("unknown phase ", static_cast<int>(phase));
}

double
ProfileReport::totalSeconds() const
{
    double total = 0.0;
    for (double s : phaseSeconds)
        total += s;
    return total;
}

double
ProfileReport::eventsPerSecond() const
{
    const double total = totalSeconds();
    if (total <= 0.0 || eventsExecuted == 0)
        return 0.0;
    return static_cast<double>(eventsExecuted) / total;
}

void
ProfileReport::exportMetrics(MetricsRegistry &m) const
{
    // Only simulation-derived quantities: these are identical at any
    // --jobs count, so they are safe in --metrics-out comparisons.
    m.counter("profile.events_executed").add(eventsExecuted);
    m.counter("profile.queue.max_depth").add(maxQueueDepth);
    m.counter("profile.arb.passes").add(arbitrationPasses);
    m.counter("profile.arb.retry_passes").add(retryPasses);
    m.counter("profile.completions").add(completions);
    for (std::size_t b = 0; b < queueDepthLog2.size(); ++b) {
        if (queueDepthLog2[b] == 0)
            continue;
        const std::string name =
            "profile.queue.depth_log2." +
            (b < 10 ? "0" + std::to_string(b) : std::to_string(b));
        m.counter(name).add(queueDepthLog2[b]);
    }
}

void
ProfileReport::print(const std::string &label, std::ostream &os) const
{
    os << "profile[" << label << "]:";
    if (!enabled) {
        os << " (profiling compiled out)\n";
        return;
    }
    os << " events=" << formatUint(eventsExecuted) << " events/s="
       << formatDouble(eventsPerSecond()) << " max_queue_depth="
       << formatUint(maxQueueDepth) << " passes="
       << formatUint(arbitrationPasses) << " retries="
       << formatUint(retryPasses) << "\n";
    os << "profile[" << label << "]: wall";
    for (std::size_t p = 0; p < kNumRunPhases; ++p) {
        os << " " << runPhaseName(static_cast<RunPhase>(p)) << "="
           << formatDouble(phaseSeconds[p]) << "s";
    }
    os << " total=" << formatDouble(totalSeconds()) << "s\n";
    os << "profile[" << label << "]: queue depth log2 buckets:";
    bool any = false;
    for (std::size_t b = 0; b < queueDepthLog2.size(); ++b) {
        if (queueDepthLog2[b] == 0)
            continue;
        any = true;
        os << " [" << (1ULL << b) << "..]=" << formatUint(queueDepthLog2[b]);
    }
    if (!any)
        os << " (empty)";
    os << "\n";
}

void
Profiler::finish(const EventQueue &queue, std::uint64_t passes,
                 std::uint64_t retries, std::uint64_t completions)
{
    report_.enabled = BUSARB_PROFILING_ENABLED != 0;
    report_.eventsExecuted = queue.numExecuted();
    report_.maxQueueDepth = queue.profileMaxDepth();
    report_.queueDepthLog2 = queue.profileDepthHistogram();
    report_.arbitrationPasses = passes;
    report_.retryPasses = retries;
    report_.completions = completions;
}

} // namespace busarb
