#include "obs/binary_trace.hh"

#include <stdexcept>

#include "sim/logging.hh"

namespace busarb {

namespace {

/** Record tags beyond the TraceEventKind values. */
constexpr std::uint8_t kTagEnd = 0;
constexpr std::uint8_t kTagDefineCounter = 7;

constexpr char kMagic[4] = {'B', 'A', 'T', 'R'};
constexpr std::uint8_t kVersion = 1;

[[noreturn]] void
malformed(const char *what)
{
    throw std::runtime_error(std::string("malformed binary trace: ") +
                             what);
}

std::uint64_t
readVarintOrThrow(const std::uint8_t **cursor, const std::uint8_t *end)
{
    std::uint64_t value = 0;
    if (!decodeVarint(cursor, end, value))
        malformed("truncated varint");
    return value;
}

} // namespace

void
appendVarint(std::vector<std::uint8_t> &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(value));
}

bool
decodeVarint(const std::uint8_t **cursor, const std::uint8_t *end,
             std::uint64_t &out)
{
    const std::uint8_t *p = *cursor;
    std::uint64_t value = 0;
    for (int shift = 0; shift < 70; shift += 7) {
        if (p == end)
            return false;
        const std::uint8_t byte = *p++;
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            *cursor = p;
            out = value;
            return true;
        }
    }
    return false; // more than 10 continuation bytes
}

BinaryTraceWriter::BinaryTraceWriter(int num_agents,
                                     const std::string &protocol)
{
    BUSARB_ASSERT(num_agents >= 1, "trace writer needs agents");
    buffer_.insert(buffer_.end(), kMagic, kMagic + sizeof(kMagic));
    buffer_.push_back(kVersion);
    appendVarint(buffer_, static_cast<std::uint64_t>(num_agents));
    appendVarint(buffer_, protocol.size());
    buffer_.insert(buffer_.end(), protocol.begin(), protocol.end());
}

void
BinaryTraceWriter::beginRecord(TraceEventKind kind, Tick now)
{
    BUSARB_ASSERT(!finished_, "write into a finished trace");
    BUSARB_ASSERT(now >= lastTick_, "trace event goes backwards in time");
    buffer_.push_back(static_cast<std::uint8_t>(kind));
    appendVarint(buffer_, static_cast<std::uint64_t>(now - lastTick_));
    lastTick_ = now;
    ++events_;
}

void
BinaryTraceWriter::onRequestPosted(const Request &req)
{
    beginRecord(TraceEventKind::kRequestPosted, req.issued);
    appendVarint(buffer_, static_cast<std::uint64_t>(req.agent));
    appendVarint(buffer_, req.seq);
    buffer_.push_back(req.priority ? 1 : 0);
}

void
BinaryTraceWriter::onPassStarted(Tick now)
{
    beginRecord(TraceEventKind::kPassStarted, now);
}

void
BinaryTraceWriter::onPassResolved(Tick now, Tick pass_start,
                                  const Request &winner, bool retry)
{
    beginRecord(TraceEventKind::kPassResolved, now);
    appendVarint(buffer_, static_cast<std::uint64_t>(now - pass_start));
    std::uint8_t flags = 0;
    if (winner.valid())
        flags = 1;
    else if (retry)
        flags = 2;
    buffer_.push_back(flags);
    if (winner.valid()) {
        appendVarint(buffer_, static_cast<std::uint64_t>(winner.agent));
        appendVarint(buffer_, winner.seq);
    }
}

void
BinaryTraceWriter::onTenureStarted(const Request &req, Tick now)
{
    beginRecord(TraceEventKind::kTenureStarted, now);
    appendVarint(buffer_, static_cast<std::uint64_t>(req.agent));
    appendVarint(buffer_, req.seq);
}

void
BinaryTraceWriter::onTenureEnded(const Request &req, Tick now)
{
    beginRecord(TraceEventKind::kTenureEnded, now);
    appendVarint(buffer_, static_cast<std::uint64_t>(req.agent));
    appendVarint(buffer_, req.seq);
}

std::uint64_t
BinaryTraceWriter::defineCounter(const std::string &name)
{
    BUSARB_ASSERT(!finished_, "write into a finished trace");
    buffer_.push_back(kTagDefineCounter);
    const std::uint64_t id = nextCounterId_++;
    appendVarint(buffer_, id);
    appendVarint(buffer_, name.size());
    buffer_.insert(buffer_.end(), name.begin(), name.end());
    return id;
}

void
BinaryTraceWriter::counterUpdate(std::uint64_t id, Tick now,
                                 std::uint64_t value)
{
    BUSARB_ASSERT(id < nextCounterId_, "counter id ", id,
                  " was never defined");
    beginRecord(TraceEventKind::kCounterUpdate, now);
    appendVarint(buffer_, id);
    appendVarint(buffer_, value);
}

std::vector<std::uint8_t>
BinaryTraceWriter::finish()
{
    BUSARB_ASSERT(!finished_, "finish called twice");
    finished_ = true;
    buffer_.push_back(kTagEnd);
    return std::move(buffer_);
}

std::vector<TraceChunk>
readTraceChunks(const std::uint8_t *data, std::size_t size)
{
    std::vector<TraceChunk> chunks;
    const std::uint8_t *p = data;
    const std::uint8_t *const end = data + size;
    while (p != end) {
        if (end - p < 5 || p[0] != 'B' || p[1] != 'A' || p[2] != 'T' ||
            p[3] != 'R') {
            malformed("bad chunk magic");
        }
        p += 4;
        if (*p++ != kVersion)
            malformed("unsupported version");
        TraceChunk chunk;
        chunk.numAgents =
            static_cast<int>(readVarintOrThrow(&p, end));
        if (chunk.numAgents < 1)
            malformed("chunk without agents");
        const std::uint64_t name_len = readVarintOrThrow(&p, end);
        if (static_cast<std::uint64_t>(end - p) < name_len)
            malformed("truncated protocol name");
        chunk.protocol.assign(reinterpret_cast<const char *>(p),
                              static_cast<std::size_t>(name_len));
        p += name_len;

        Tick tick = 0;
        bool chunk_done = false;
        while (!chunk_done) {
            if (p == end)
                malformed("missing end record");
            const std::uint8_t tag = *p++;
            if (tag == kTagEnd) {
                chunk_done = true;
                break;
            }
            if (tag == kTagDefineCounter) {
                const std::uint64_t id = readVarintOrThrow(&p, end);
                if (id != chunk.counterNames.size())
                    malformed("counter ids out of order");
                const std::uint64_t len = readVarintOrThrow(&p, end);
                if (static_cast<std::uint64_t>(end - p) < len)
                    malformed("truncated counter name");
                chunk.counterNames.emplace_back(
                    reinterpret_cast<const char *>(p),
                    static_cast<std::size_t>(len));
                p += len;
                continue;
            }
            if (tag < 1 ||
                tag > static_cast<std::uint8_t>(
                          TraceEventKind::kCounterUpdate)) {
                malformed("unknown record tag");
            }
            TraceEvent ev;
            ev.kind = static_cast<TraceEventKind>(tag);
            tick += static_cast<Tick>(readVarintOrThrow(&p, end));
            ev.tick = tick;
            switch (ev.kind) {
              case TraceEventKind::kRequestPosted:
                ev.agent = static_cast<AgentId>(
                    readVarintOrThrow(&p, end));
                ev.seq = readVarintOrThrow(&p, end);
                if (p == end)
                    malformed("truncated request record");
                ev.priority = (*p++ != 0);
                break;
              case TraceEventKind::kPassStarted:
                break;
              case TraceEventKind::kPassResolved: {
                const std::uint64_t dur = readVarintOrThrow(&p, end);
                ev.passStart = tick - static_cast<Tick>(dur);
                if (p == end)
                    malformed("truncated pass record");
                const std::uint8_t flags = *p++;
                if (flags == 1) {
                    ev.agent = static_cast<AgentId>(
                        readVarintOrThrow(&p, end));
                    ev.seq = readVarintOrThrow(&p, end);
                } else if (flags == 2) {
                    ev.retry = true;
                } else if (flags != 0) {
                    malformed("bad pass flags");
                }
                break;
              }
              case TraceEventKind::kTenureStarted:
              case TraceEventKind::kTenureEnded:
                ev.agent = static_cast<AgentId>(
                    readVarintOrThrow(&p, end));
                ev.seq = readVarintOrThrow(&p, end);
                break;
              case TraceEventKind::kCounterUpdate:
                ev.counterId = readVarintOrThrow(&p, end);
                if (ev.counterId >= chunk.counterNames.size())
                    malformed("counter update before definition");
                ev.counterValue = readVarintOrThrow(&p, end);
                break;
            }
            chunk.events.push_back(ev);
        }
        chunks.push_back(std::move(chunk));
    }
    return chunks;
}

std::vector<TraceChunk>
readTraceChunks(const std::vector<std::uint8_t> &data)
{
    return readTraceChunks(data.data(), data.size());
}

} // namespace busarb
