/**
 * @file
 * The decoded form of one bus observability event.
 *
 * The binary flight-recorder format (binary_trace.hh), the in-memory
 * flight recorder (flight_recorder.hh) and the exporters (perfetto.hh,
 * latency.hh) all speak this struct, so a trace can round-trip
 * bus -> bytes -> events -> Perfetto JSON without loss.
 */

#ifndef BUSARB_OBS_TRACE_EVENT_HH
#define BUSARB_OBS_TRACE_EVENT_HH

#include <cstdint>
#include <iosfwd>

#include "sim/types.hh"

namespace busarb {

/** Kind of one observability event. Values are the on-disk record tags. */
enum class TraceEventKind : std::uint8_t {
    kRequestPosted = 1, ///< an agent asserted the request line
    kPassStarted = 2,   ///< an arbitration pass began (competitors frozen)
    kPassResolved = 3,  ///< an arbitration pass resolved
    kTenureStarted = 4, ///< a bus tenure (transfer) began
    kTenureEnded = 5,   ///< a bus tenure completed
    kCounterUpdate = 6, ///< a named counter took a new value
};

/** @return A short lowercase name for `kind` (e.g. "request"). */
const char *traceEventKindName(TraceEventKind kind);

/**
 * One decoded event. Fields beyond `kind` and `tick` are meaningful
 * only for the kinds noted on each member.
 */
struct TraceEvent
{
    TraceEventKind kind = TraceEventKind::kRequestPosted;

    /** Simulation tick of the event. */
    Tick tick = 0;

    /** Requesting/winning agent; kNoAgent when not applicable. */
    AgentId agent = kNoAgent;

    /** Request sequence number; 0 when not applicable. */
    std::uint64_t seq = 0;

    /** kRequestPosted: the request was urgent. */
    bool priority = false;

    /** kPassResolved: the protocol asked for an immediate retry. */
    bool retry = false;

    /** kPassResolved: tick at which this pass began. */
    Tick passStart = 0;

    /** kCounterUpdate: id into the chunk's counter-name table. */
    std::uint64_t counterId = 0;

    /** kCounterUpdate: the counter's value. */
    std::uint64_t counterValue = 0;
};

/**
 * Render one event as a single human-readable line (no newline).
 *
 * @param event The event.
 * @param os Destination stream.
 */
void printTraceEvent(const TraceEvent &event, std::ostream &os);

} // namespace busarb

#endif // BUSARB_OBS_TRACE_EVENT_HH
