/**
 * @file
 * Chrome trace-event JSON export (loadable in ui.perfetto.dev).
 *
 * Each trace chunk becomes one "process" named after its protocol;
 * inside it, track (tid) 0 is the arbiter and track i is agent i, so a
 * full arbitration timeline — request instants, arbitration passes,
 * bus tenures, counter tracks — can be scrubbed visually. Timestamps
 * are emitted in "microseconds" with 1 tick = 1 us, so one bus
 * transaction time (1e6 ticks) renders as one second on the UI ruler.
 */

#ifndef BUSARB_OBS_PERFETTO_HH
#define BUSARB_OBS_PERFETTO_HH

#include <iosfwd>
#include <vector>

#include "obs/binary_trace.hh"

namespace busarb {

/**
 * Write the chunks as one Chrome trace-event JSON document.
 *
 * @param chunks Decoded trace chunks (readTraceChunks).
 * @param os Destination stream.
 */
void writePerfettoJson(const std::vector<TraceChunk> &chunks,
                       std::ostream &os);

/**
 * Write the raw events as CSV, one row per event.
 *
 * Columns: chunk, protocol, tick, units, kind, agent, seq, priority,
 * retry, pass_start, counter, value.
 *
 * @param chunks Decoded trace chunks.
 * @param os Destination stream.
 */
void writeEventsCsv(const std::vector<TraceChunk> &chunks,
                    std::ostream &os);

} // namespace busarb

#endif // BUSARB_OBS_PERFETTO_HH
