/**
 * @file
 * Streaming fairness and liveness auditor for bus arbitration runs.
 *
 * The paper's central claims are fairness properties: the distributed
 * round-robin protocol guarantees bounded waiting (an agent that keeps
 * its request line asserted is bypassed by at most N-1 other grants),
 * FCFS approximates arrival-order service, and the assured-access
 * baselines of Section 2.2 admit batch unfairness (high identities are
 * served first in every batch, and a request that just misses a batch
 * waits out the whole batch). This auditor turns those qualitative
 * claims into continuously checked, exported quantities.
 *
 * It is a BusTracer, so it can audit a run live through the obs fanout,
 * and it also consumes decoded TraceEvents, so `busarb_trace audit` can
 * replay an existing --trace-out file through the identical code path.
 * Per agent it tracks:
 *
 *  - bypass counts between request post and grant, flagging any grant
 *    whose request was bypassed more than the configured bound (N-1 by
 *    default — the paper's RR guarantee, audited against any protocol);
 *  - arrival-order inversions: at each grant, the number of still
 *    pending older requests (FCFS should keep this near zero);
 *  - a starvation watchdog: the longest interval an agent spent with a
 *    request posted and no service;
 *  - windowed wait means and Jain's fairness index over per-agent
 *    completions, per tumbling window of simulated time
 *    (stats/fairness.hh), plus whole-run Jain indices over completions
 *    and mean waits.
 *
 * Everything is exported as `fairness.*` entries in a MetricsRegistry
 * (deterministically mergeable across JobPool runs) and, optionally, as
 * JSONL snapshots keyed to simulated-time boundaries, so the snapshot
 * stream is byte-identical at any --jobs count.
 */

#ifndef BUSARB_OBS_FAIRNESS_AUDITOR_HH
#define BUSARB_OBS_FAIRNESS_AUDITOR_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bus/trace.hh"
#include "obs/metrics_registry.hh"
#include "obs/trace_event.hh"
#include "stats/fairness.hh"

namespace busarb {

/** Configuration of one FairnessAuditor. */
struct FairnessAuditorConfig
{
    /** Number of agents on the audited bus (identities 1..N). */
    int numAgents = 0;

    /** Width of the fairness windows, in ticks; must be >= 1. */
    Tick windowTicks = 50 * kTicksPerUnit;

    /**
     * Bypass bound audited at every grant; a grant whose request was
     * bypassed by more than this many other-agent grants counts as a
     * violation. <= 0 selects the paper's RR bound, N-1.
     */
    int bypassBound = 0;

    /**
     * Emit one JSONL snapshot each time simulated time crosses a
     * multiple of this many ticks (0 disables). A snapshot at boundary
     * B reflects exactly the events with tick < B, so the stream is a
     * pure function of the event stream.
     */
    Tick snapshotEveryTicks = 0;

    /** Label stamped into each snapshot line (e.g. protocol name). */
    std::string label;
};

/**
 * Streaming consumer of bus events computing fairness measures.
 *
 * Feed it live as a BusTracer or offline via consume(); call finish()
 * exactly once when the stream ends, then read the results.
 */
class FairnessAuditor : public BusTracer
{
  public:
    /** @param config Auditor configuration; numAgents must be >= 1. */
    explicit FairnessAuditor(const FairnessAuditorConfig &config);

    // Live capture: each callback forwards to consume().
    void onRequestPosted(const Request &req) override;
    void onPassResolved(Tick now, Tick pass_start, const Request &winner,
                        bool retry) override;
    void onTenureStarted(const Request &req, Tick now) override;
    void onTenureEnded(const Request &req, Tick now) override;

    /** Consume one decoded event (offline replay path). */
    void consume(const TraceEvent &event);

    /**
     * End the stream: account still-pending requests into the
     * starvation watchdog, close fairness windows, and emit any
     * remaining snapshot boundaries at or before `end`.
     *
     * @param end Final simulated tick (>= every consumed event).
     */
    void finish(Tick end);

    /** @return The bound audited at each grant (resolved, not raw). */
    int bypassBound() const { return bound_; }

    /** @return Grants observed (pass resolutions with a winner). */
    std::uint64_t grants() const { return grants_; }

    /** @return Completions observed (tenure-ended events). */
    std::uint64_t completions() const { return completions_; }

    /** @return Grants whose request exceeded the bypass bound. */
    std::uint64_t boundViolations() const { return boundViolations_; }

    /** @return Arrival-order inversions (older pending pairs skipped). */
    std::uint64_t inversions() const { return inversions_; }

    /** @return Largest bypass count any grant accumulated. */
    std::uint64_t maxBypasses() const { return maxBypasses_; }

    /** @return Largest bypass count among `agent`'s grants. */
    std::uint64_t agentMaxBypasses(AgentId agent) const;

    /**
     * @return Longest observed request-to-service interval in ticks,
     *         including requests still unserved at finish().
     */
    Tick maxStarvationTicks() const { return maxStarvation_; }

    /** @return One agent's longest request-to-service interval. */
    Tick agentMaxStarvationTicks(AgentId agent) const;

    /** @return Jain's index over per-agent completion totals. */
    double jainCompletions() const;

    /**
     * @return Jain's index over per-agent mean waits (agents with no
     *         completions excluded); 1.0 when nothing completed.
     */
    double jainWaits() const;

    /** @return Per-window summaries (stats/fairness.hh). */
    const WindowedFairness &windows() const { return windows_; }

    /**
     * Export every measure as `fairness.*` entries into `m`. Counter
     * entries merge by summing, gauge entries merge exactly, so merged
     * multi-run registries stay deterministic.
     *
     * @param m Destination registry.
     */
    void exportMetrics(MetricsRegistry &m) const;

    /** @return Accumulated snapshot JSONL (empty when disabled). */
    const std::string &snapshots() const { return snapshots_; }

    /**
     * Render a one-paragraph human-readable summary (used by
     * `busarb_trace audit`).
     *
     * @param os Destination stream.
     */
    void printSummary(std::ostream &os) const;

  private:
    /** One posted request not yet granted. */
    struct PendingRequest
    {
        AgentId agent = kNoAgent;
        std::uint64_t seq = 0;
        Tick posted = 0;
        std::uint64_t bypasses = 0;
    };

    /** One granted request not yet completed. */
    struct GrantedRequest
    {
        AgentId agent = kNoAgent;
        std::uint64_t seq = 0;
        Tick posted = 0;
        bool started = false; ///< tenure began (service was delivered)
    };

    /** Whole-run accumulators of one agent. */
    struct AgentStats
    {
        std::uint64_t completions = 0;
        double waitSumUnits = 0.0;
        double minWaitUnits = 0.0;
        double maxWaitUnits = 0.0;
        std::uint64_t maxBypasses = 0;
        Tick maxStarvation = 0;
    };

    int numAgents_;
    int bound_;
    Tick snapshotEvery_;
    Tick nextSnapshot_;
    std::string label_;
    bool finished_ = false;

    // Sorted by seq (requests post in global seq order), tiny in
    // practice (<= N * maxOutstanding), so linear scans are cheap.
    std::vector<PendingRequest> pending_;
    std::vector<GrantedRequest> granted_;
    std::vector<AgentStats> agents_; // index 0 -> agent 1

    std::uint64_t grants_ = 0;
    std::uint64_t completions_ = 0;
    std::uint64_t boundViolations_ = 0;
    std::uint64_t inversions_ = 0;
    std::uint64_t maxBypasses_ = 0;
    Tick maxStarvation_ = 0;
    double waitSumUnits_ = 0.0;
    Tick lastTick_ = 0;

    WindowedFairness windows_;
    std::string snapshots_;

    void handleRequestPosted(const TraceEvent &ev);
    void handleGrant(const TraceEvent &ev);
    void handleTenureStarted(const TraceEvent &ev);
    void handleTenureEnded(const TraceEvent &ev);

    /** Emit snapshots for every boundary at or before `tick`. */
    void emitSnapshotsThrough(Tick tick);

    /** Append one snapshot line for boundary `boundary`. */
    void writeSnapshotLine(Tick boundary);

    AgentStats &agentStats(AgentId agent);
    const AgentStats &agentStats(AgentId agent) const;
};

} // namespace busarb

#endif // BUSARB_OBS_FAIRNESS_AUDITOR_HH
