#include "obs/perfetto.hh"

#include <ostream>
#include <unordered_map>

namespace busarb {

namespace {

/** Minimal escaper; protocol names may carry spec punctuation. */
void
jsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << (static_cast<unsigned char>(c) < 0x20 ? ' ' : c);
    }
    os << '"';
}

class EventArray
{
  public:
    explicit EventArray(std::ostream &os) : os_(os)
    {
        os_ << "{\"traceEvents\": [";
    }

    /** Start one event object; emits the separating comma. */
    std::ostream &
    next()
    {
        if (!first_)
            os_ << ",";
        first_ = false;
        os_ << "\n ";
        return os_;
    }

    void
    close()
    {
        os_ << "\n], \"displayTimeUnit\": \"ms\"}\n";
    }

  private:
    std::ostream &os_;
    bool first_ = true;
};

} // namespace

void
writePerfettoJson(const std::vector<TraceChunk> &chunks, std::ostream &os)
{
    EventArray out(os);
    int pid = 0;
    for (const TraceChunk &chunk : chunks) {
        ++pid;
        out.next() << "{\"name\": \"process_name\", \"ph\": \"M\", "
                      "\"pid\": " << pid << ", \"args\": {\"name\": ";
        jsonString(os, chunk.protocol);
        os << "}}";
        out.next() << "{\"name\": \"thread_name\", \"ph\": \"M\", "
                      "\"pid\": " << pid
                   << ", \"tid\": 0, \"args\": {\"name\": \"arbiter\"}}";
        for (int a = 1; a <= chunk.numAgents; ++a) {
            out.next() << "{\"name\": \"thread_name\", \"ph\": \"M\", "
                          "\"pid\": " << pid << ", \"tid\": " << a
                       << ", \"args\": {\"name\": \"agent " << a
                       << "\"}}";
        }

        std::unordered_map<std::uint64_t, Tick> issued;
        std::unordered_map<std::uint64_t, Tick> tenure_start;
        for (const TraceEvent &ev : chunk.events) {
            switch (ev.kind) {
              case TraceEventKind::kRequestPosted:
                issued[ev.seq] = ev.tick;
                out.next()
                    << "{\"name\": \"request\", \"ph\": \"i\", "
                       "\"s\": \"t\", \"pid\": " << pid
                    << ", \"tid\": " << ev.agent << ", \"ts\": "
                    << ev.tick << ", \"args\": {\"seq\": " << ev.seq
                    << ", \"priority\": "
                    << (ev.priority ? "true" : "false") << "}}";
                break;
              case TraceEventKind::kPassStarted:
                // The matching kPassResolved event carries the full
                // pass interval; nothing to draw here.
                break;
              case TraceEventKind::kPassResolved: {
                const char *name = ev.agent != kNoAgent ? "pass"
                                   : ev.retry           ? "retry pass"
                                                        : "idle pass";
                out.next()
                    << "{\"name\": \"" << name << "\", \"ph\": \"X\", "
                       "\"pid\": " << pid << ", \"tid\": 0, \"ts\": "
                    << ev.passStart << ", \"dur\": "
                    << ev.tick - ev.passStart << ", \"args\": {";
                if (ev.agent != kNoAgent)
                    os << "\"winner\": " << ev.agent << ", \"seq\": "
                       << ev.seq;
                os << "}}";
                break;
              }
              case TraceEventKind::kTenureStarted:
                tenure_start[ev.seq] = ev.tick;
                break;
              case TraceEventKind::kTenureEnded: {
                const auto start = tenure_start.find(ev.seq);
                if (start == tenure_start.end())
                    break; // tenure began before the trace started
                out.next()
                    << "{\"name\": \"tenure\", \"ph\": \"X\", \"pid\": "
                    << pid << ", \"tid\": " << ev.agent << ", \"ts\": "
                    << start->second << ", \"dur\": "
                    << ev.tick - start->second
                    << ", \"args\": {\"seq\": " << ev.seq;
                const auto issue = issued.find(ev.seq);
                if (issue != issued.end())
                    os << ", \"wait_ticks\": "
                       << ev.tick - issue->second;
                os << "}}";
                tenure_start.erase(start);
                break;
              }
              case TraceEventKind::kCounterUpdate:
                out.next() << "{\"name\": ";
                jsonString(os, chunk.counterNames[static_cast<
                                   std::size_t>(ev.counterId)]);
                os << ", \"ph\": \"C\", \"pid\": " << pid
                   << ", \"ts\": " << ev.tick
                   << ", \"args\": {\"value\": " << ev.counterValue
                   << "}}";
                break;
            }
        }
    }
    out.close();
}

void
writeEventsCsv(const std::vector<TraceChunk> &chunks, std::ostream &os)
{
    os << "chunk,protocol,tick,units,kind,agent,seq,priority,retry,"
          "pass_start,counter,value\n";
    int chunk_idx = 0;
    for (const TraceChunk &chunk : chunks) {
        for (const TraceEvent &ev : chunk.events) {
            os << chunk_idx << "," << chunk.protocol << "," << ev.tick
               << "," << ticksToUnits(ev.tick) << ","
               << traceEventKindName(ev.kind) << "," << ev.agent << ","
               << ev.seq << "," << (ev.priority ? 1 : 0) << ","
               << (ev.retry ? 1 : 0) << ",";
            if (ev.kind == TraceEventKind::kPassResolved)
                os << ev.passStart;
            os << ",";
            if (ev.kind == TraceEventKind::kCounterUpdate) {
                os << chunk.counterNames[static_cast<std::size_t>(
                          ev.counterId)]
                   << "," << ev.counterValue;
            } else {
                os << ",";
            }
            os << "\n";
        }
        ++chunk_idx;
    }
}

} // namespace busarb
