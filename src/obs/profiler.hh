/**
 * @file
 * Per-run simulator self-profiler.
 *
 * Answers "where does simulation wall-clock go?" for one scenario run:
 * per-phase (warmup / measure / drain) wall-clock, events executed and
 * events per second, event-queue depth (max and a log2 histogram from
 * the EventQueue's compile-time-gated probes), and arbitration-round
 * counts. One Profiler is owned by one run — no locks, no shared
 * state — the identical JobPool-safety pattern MetricsRegistry uses.
 *
 * Two strictly separated output classes:
 *
 *  - Simulation-derived counts (events, depths, passes) are
 *    deterministic and may be exported as profile.* metrics alongside
 *    the run's other metrics.
 *  - Wall-clock numbers are host-only; they go to stderr reports and
 *    timing CSVs, never into artifacts compared across --jobs counts.
 *
 * All instrumentation compiles out with -DBUSARB_PROFILING=OFF; the
 * class itself stays available so callers need no #if, but its timers
 * read as zero.
 */

#ifndef BUSARB_OBS_PROFILER_HH
#define BUSARB_OBS_PROFILER_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/metrics_registry.hh"
#include "sim/event_queue.hh"
#include "sim/profiling.hh"

namespace busarb {

/** Phases of one scenario run, in execution order. */
enum class RunPhase : int {
    kWarmup = 0,  ///< completions discarded before measurement
    kMeasure = 1, ///< the batch-means measurement period
    kDrain = 2,   ///< post-measurement finalization and export
};

/** Number of RunPhase values. */
constexpr std::size_t kNumRunPhases = 3;

/** @return Stable lowercase phase name ("warmup", ...). */
const char *runPhaseName(RunPhase phase);

/** Plain-value profile of one finished run. */
struct ProfileReport
{
    /** False when profiling was disabled (all other fields zero). */
    bool enabled = false;

    /** Host wall-clock per phase, in seconds. */
    std::array<double, kNumRunPhases> phaseSeconds{};

    /** Events executed by the run's event queue. */
    std::uint64_t eventsExecuted = 0;

    /** Largest event-queue depth reached. */
    std::uint64_t maxQueueDepth = 0;

    /** Log2-bucketed queue depth histogram (see EventQueue). */
    std::array<std::uint64_t, EventQueue::kDepthBuckets> queueDepthLog2{};

    /** Arbitration passes resolved during the run. */
    std::uint64_t arbitrationPasses = 0;

    /** Passes that ended in a retry (collision) during the run. */
    std::uint64_t retryPasses = 0;

    /** Completed bus transactions. */
    std::uint64_t completions = 0;

    /** @return Total wall-clock across phases, seconds. */
    double totalSeconds() const;

    /** @return Events per wall-clock second; 0 if unmeasurable. */
    double eventsPerSecond() const;

    /**
     * Export the deterministic (simulation-derived) subset as
     * profile.* entries. Wall-clock never goes through here.
     *
     * @param m Destination registry.
     */
    void exportMetrics(MetricsRegistry &m) const;

    /**
     * Render the host-facing profile block (wall-clock included), for
     * stderr.
     *
     * @param label Run label (e.g. protocol name).
     * @param os Destination stream.
     */
    void print(const std::string &label, std::ostream &os) const;
};

/**
 * Accumulates one run's profile. Scoped phase timing:
 *
 *   Profiler prof;
 *   { ProfilePhaseTimer t(prof, RunPhase::kWarmup); ...run warmup... }
 *
 * In unprofiled builds the timers are no-ops and the report's
 * wall-clock fields stay zero; the simulation-derived fields are
 * filled by finish() either way so tooling keeps working.
 */
class Profiler
{
  public:
    Profiler() = default;

    /** Add host wall-clock seconds to one phase's total. */
    void
    addPhaseSeconds(RunPhase phase, double seconds)
    {
        report_.phaseSeconds[static_cast<std::size_t>(phase)] += seconds;
    }

    /**
     * Capture the simulation-derived counters from the finished run.
     *
     * @param queue The run's event queue.
     * @param passes Arbitration passes resolved.
     * @param retries Retry passes.
     * @param completions Completed transactions.
     */
    void finish(const EventQueue &queue, std::uint64_t passes,
                std::uint64_t retries, std::uint64_t completions);

    /** @return The accumulated report. */
    const ProfileReport &report() const { return report_; }

  private:
    ProfileReport report_;
};

/**
 * RAII wall-clock timer charging its lifetime to one phase.
 * Compiles to nothing when profiling is off.
 */
class ProfilePhaseTimer
{
  public:
    /**
     * @param profiler Destination profiler (may be null: no-op).
     * @param phase Phase to charge.
     */
    ProfilePhaseTimer(Profiler *profiler, RunPhase phase)
#if BUSARB_PROFILING_ENABLED
        : profiler_(profiler), phase_(phase),
          start_(std::chrono::steady_clock::now())
#endif
    {
#if !BUSARB_PROFILING_ENABLED
        (void)profiler;
        (void)phase;
#endif
    }

    ~ProfilePhaseTimer()
    {
#if BUSARB_PROFILING_ENABLED
        if (profiler_ != nullptr) {
            profiler_->addPhaseSeconds(
                phase_,
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_)
                    .count());
        }
#endif
    }

    ProfilePhaseTimer(const ProfilePhaseTimer &) = delete;
    ProfilePhaseTimer &operator=(const ProfilePhaseTimer &) = delete;

  private:
#if BUSARB_PROFILING_ENABLED
    Profiler *profiler_;
    RunPhase phase_;
    std::chrono::steady_clock::time_point start_;
#endif
};

} // namespace busarb

#endif // BUSARB_OBS_PROFILER_HH
