#include "obs/export_format.hh"

#include <charconv>
#include <cmath>
#include <ostream>
#include <system_error>

#include "sim/logging.hh"

namespace busarb {

std::string
formatDouble(double v)
{
    if (std::isnan(v))
        return "nan";
    if (std::isinf(v))
        return v > 0.0 ? "inf" : "-inf";
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    BUSARB_ASSERT(res.ec == std::errc(), "to_chars failed for a double");
    return std::string(buf, res.ptr);
}

std::string
formatUint(std::uint64_t v)
{
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    BUSARB_ASSERT(res.ec == std::errc(), "to_chars failed for a uint");
    return std::string(buf, res.ptr);
}

std::string
formatInt(std::int64_t v)
{
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    BUSARB_ASSERT(res.ec == std::errc(), "to_chars failed for an int");
    return std::string(buf, res.ptr);
}

void
writeJsonString(std::ostream &os, std::string_view s)
{
    static const char *const hex = "0123456789abcdef";
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                const auto u = static_cast<unsigned char>(c);
                os << "\\u00" << hex[(u >> 4) & 0xf] << hex[u & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeJsonNumber(std::ostream &os, double v)
{
    if (std::isfinite(v))
        os << formatDouble(v);
    else
        os << "null";
}

void
writeCsvField(std::ostream &os, std::string_view s)
{
    if (s.find_first_of(",\"\n\r") == std::string_view::npos) {
        os << s;
        return;
    }
    os << '"';
    for (const char c : s) {
        if (c == '"')
            os << "\"\"";
        else
            os << c;
    }
    os << '"';
}

std::string
agentMetricPrefix(AgentId agent, int num_agents)
{
    std::size_t width = 1;
    for (int n = num_agents; n >= 10; n /= 10)
        ++width;
    const std::string id = formatInt(agent);
    BUSARB_ASSERT(id.size() <= width, "agent id wider than the padding");
    return "agent." + std::string(width - id.size(), '0') + id + ".";
}

} // namespace busarb
