/**
 * @file
 * Progress and ETA estimation for sweeps and worker fleets.
 *
 * The original --progress ETA assumed every grid cell costs the same
 * (eta = elapsed * remaining / done). On mixed-load grids that is
 * wildly wrong: cells at load 7.5 can run an order of magnitude longer
 * than cells at load 0.25, so the uniform-cost estimate whipsaws as
 * the sweep crosses the load axis. EtaEstimator instead tracks an
 * exponentially weighted moving average of the *recent* per-cell
 * completion time, so the ETA converges to the cost of the cells that
 * are actually still running.
 *
 * The estimator is deliberately host-time based and lives entirely on
 * the progress/stderr side: nothing here may ever feed back into the
 * simulation or into a deterministic artifact.
 */

#ifndef BUSARB_OBS_SWEEP_PROGRESS_HH
#define BUSARB_OBS_SWEEP_PROGRESS_HH

#include <cstddef>

namespace busarb {

/**
 * Streaming EWMA estimator of per-cell completion time.
 *
 * Feed it the cumulative completion count at each progress event; it
 * smooths the observed inter-completion times and projects the
 * remaining work at the recent rate. With parallel workers the
 * aggregate completion stream already reflects fleet concurrency, so
 * no separate worker-count correction is needed.
 */
class EtaEstimator
{
  public:
    /**
     * @param alpha EWMA weight of the newest observation, in (0, 1].
     *        Larger tracks load changes faster; smaller smooths more.
     */
    explicit EtaEstimator(double alpha = 0.25);

    /**
     * Mark the start of the run.
     *
     * @param now_seconds Host clock at start (any monotonic origin).
     */
    void start(double now_seconds);

    /**
     * Record a progress event.
     *
     * @param now_seconds Host clock now (same origin as start()).
     * @param done Cumulative cells completed so far; events with no
     *        new completions are ignored.
     */
    void onProgress(double now_seconds, std::size_t done);

    /** @return True once at least one completion has been observed. */
    bool primed() const { return primed_; }

    /** @return Smoothed seconds per cell (0 until primed). */
    double secondsPerCell() const { return primed_ ? ewma_ : 0.0; }

    /** @return Smoothed completion rate in cells/second (0 until primed). */
    double cellsPerSecond() const;

    /**
     * @param remaining Cells left to run.
     * @return Projected seconds to completion at the recent rate; 0
     *         until primed.
     */
    double etaSeconds(std::size_t remaining) const;

  private:
    double alpha_;
    double lastTime_ = 0.0;
    std::size_t lastDone_ = 0;
    double ewma_ = 0.0;
    bool primed_ = false;
};

} // namespace busarb

#endif // BUSARB_OBS_SWEEP_PROGRESS_HH
