/**
 * @file
 * Run-health telemetry: convergence monitoring wired into the
 * observability surface.
 *
 * A RunHealthMonitor owns one ConvergenceMonitor per watched output
 * measure (the mean waiting time W — the measure the paper's tables
 * report — plus bus utilization as a secondary), consumes one
 * observation per completed batch, and exposes the combined diagnosis
 * three ways:
 *
 *  - health.* entries in a MetricsRegistry (deterministic, mergeable
 *    across JobPool runs like every other obs export);
 *  - a JSONL snapshot stream keyed purely to simulated time, one line
 *    per batch boundary, byte-identical at any --jobs count (same
 *    contract as the fairness auditor's snapshots);
 *  - a RunHealthReport value the CLI tools surface via --health and
 *    gate on via --health-strict.
 *
 * Everything here is a pure function of the batch series, so it is
 * JobPool-safe by construction: each run owns its monitor and the
 * caller merges results deterministically.
 */

#ifndef BUSARB_OBS_RUN_HEALTH_HH
#define BUSARB_OBS_RUN_HEALTH_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics_registry.hh"
#include "stats/convergence.hh"

namespace busarb {

/** Configuration of one RunHealthMonitor. */
struct RunHealthConfig
{
    /** Thresholds shared by the per-measure monitors. */
    ConvergenceConfig convergence;

    /** Label stamped into each snapshot line (e.g. protocol name). */
    std::string label;

    /** Emit one JSONL snapshot line per completed batch. */
    bool snapshots = false;
};

/** Plain-value summary of a finished run's health diagnosis. */
struct RunHealthReport
{
    /** False when no monitor was attached (all other fields unset). */
    bool enabled = false;

    /** Combined verdict: the worst across the watched measures. */
    ConvergenceVerdict verdict = ConvergenceVerdict::kUnderconverged;

    /** Batches observed. */
    std::size_t batches = 0;

    /** Final W estimate with confidence half-width. */
    Estimate wait;

    /** Relative CI half-width of W at the final batch. */
    double waitRelHalfWidth = 0.0;

    /** Lag-1 autocorrelation of the W batch means. */
    double waitLag1 = 0.0;

    /** MSER truncation point over the W batch means (0 = clean). */
    std::size_t waitMserCut = 0;

    /** Relative CI half-width trajectory of W, one entry per batch. */
    std::vector<double> waitRelHwTrajectory;

    /** Relative CI half-width of utilization at the final batch. */
    double utilRelHalfWidth = 0.0;

    /** Lag-1 autocorrelation of the utilization batch means. */
    double utilLag1 = 0.0;

    /** @return verdictName(verdict). */
    const char *verdictLabel() const { return verdictName(verdict); }

    /**
     * Render the one-line CLI summary, e.g.
     * "verdict=converged batches=10 W=3.41±0.08 rel_hw=0.024 ...".
     *
     * @param os Destination stream.
     */
    void print(std::ostream &os) const;
};

/**
 * Streaming run-health monitor. Feed one observation per batch via
 * onBatch(), then read the report, metrics, and snapshots.
 */
class RunHealthMonitor
{
  public:
    explicit RunHealthMonitor(const RunHealthConfig &config);

    /**
     * Record one completed batch.
     *
     * @param sim_time_units Simulated time at the batch boundary, in
     *        transaction units (monotonically increasing).
     * @param wait_mean Mean waiting time W over the batch.
     * @param utilization Bus utilization over the batch.
     */
    void onBatch(double sim_time_units, double wait_mean,
                 double utilization);

    /** @return Number of batches observed. */
    std::size_t numBatches() const { return wait_.numBatches(); }

    /** @return The W monitor (primary measure). */
    const ConvergenceMonitor &waitMonitor() const { return wait_; }

    /** @return The utilization monitor (secondary measure). */
    const ConvergenceMonitor &utilizationMonitor() const { return util_; }

    /**
     * Record that the runner's saturation detector fired: the workload
     * was open-loop and backlog grew without bound over the measurement
     * period. Forces the combined verdict to kSaturated so the exported
     * gauge, the snapshots and the CLI report all agree — the batch
     * means may look perfectly converged while the queues diverge.
     */
    void noteSaturated() { saturated_ = true; }

    /** @return Combined verdict (worst across measures). */
    ConvergenceVerdict verdict() const;

    /** @return The full report value. */
    RunHealthReport report() const;

    /**
     * Export the diagnosis as health.* entries into `m`. All values
     * are pure functions of the batch series, so merged registries are
     * deterministic at any --jobs count.
     *
     * @param m Destination registry.
     */
    void exportMetrics(MetricsRegistry &m) const;

    /** @return Accumulated snapshot JSONL (empty when disabled). */
    const std::string &snapshots() const { return snapshots_; }

    /**
     * Render the one-line CLI summary, e.g.
     * "verdict=converged batches=10 W=3.41±0.08 rel_hw=0.024 ...".
     *
     * @param os Destination stream.
     */
    void printSummary(std::ostream &os) const;

  private:
    RunHealthConfig config_;
    ConvergenceMonitor wait_;
    ConvergenceMonitor util_;
    std::string snapshots_;
    bool saturated_ = false;

    /** Append one JSONL line for the batch ending at `sim_time_units`. */
    void writeSnapshotLine(double sim_time_units);
};

} // namespace busarb

#endif // BUSARB_OBS_RUN_HEALTH_HH
