/**
 * @file
 * A registry of hierarchically named metrics.
 *
 * Names are dot-separated paths ("bus.retry_passes",
 * "agent.03.wait_mean"); the registry stores them in lexicographic
 * order so every export is deterministic. Three metric kinds:
 *
 *  - Counter: a monotonically growing unsigned total; merge = sum.
 *  - Gauge: a sampled real value; keeps count/sum/min/max so merges
 *    stay exact (no "last value" ambiguity across workers).
 *  - Histogram: fixed-bin-width distribution (stats/histogram.hh);
 *    merge = bin-wise sum.
 *
 * Registries also carry string annotations — provenance facts such as
 * the scenario spec a run was built from. Annotations export alongside
 * the metrics (they share the name ordering) but never aggregate:
 * merging two different values for one annotation name is a caller
 * bug.
 *
 * Threading model: a registry is deliberately lock-free because it is
 * never shared while hot. Each scenario run (each JobPool worker job)
 * accumulates into its own registry; at the end the per-run registries
 * are merged on one thread, in submission order, so the combined
 * output is bit-identical at any --jobs count.
 */

#ifndef BUSARB_OBS_METRICS_REGISTRY_HH
#define BUSARB_OBS_METRICS_REGISTRY_HH

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <string>

#include "stats/histogram.hh"

namespace busarb {

/** A monotonically increasing unsigned total. */
class Counter
{
  public:
    /** Add `n` to the total. */
    void add(std::uint64_t n = 1) { value_ += n; }

    /** @return The current total. */
    std::uint64_t value() const { return value_; }

    /** Fold another counter in (sum). */
    void merge(const Counter &other) { value_ += other.value_; }

  private:
    std::uint64_t value_ = 0;
};

/** A sampled real value with exact-mergeable summary statistics. */
class Gauge
{
  public:
    /** Record one sample. */
    void
    set(double v)
    {
        ++count_;
        sum_ += v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    /** @return Number of samples. */
    std::uint64_t count() const { return count_; }

    /** @return Sum of samples. */
    double sum() const { return sum_; }

    /** @return Smallest sample; +inf when empty. */
    double min() const { return min_; }

    /** @return Largest sample; -inf when empty. */
    double max() const { return max_; }

    /** @return Mean of samples; 0 when empty. */
    double
    mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    /**
     * Fold in a pre-summarized sample set (e.g. a RunningStats), as if
     * each of its samples had been set() individually.
     *
     * @param count Number of samples; must be >= 1.
     * @param sum Sum of the samples.
     * @param min Smallest sample.
     * @param max Largest sample.
     */
    void
    mergeSummary(std::uint64_t count, double sum, double min, double max)
    {
        count_ += count;
        sum_ += sum;
        if (min < min_)
            min_ = min;
        if (max > max_)
            max_ = max;
    }

    /** Fold another gauge in. */
    void
    merge(const Gauge &other)
    {
        count_ += other.count_;
        sum_ += other.sum_;
        if (other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Deterministically ordered collection of named metrics.
 */
class MetricsRegistry
{
  public:
    /** Look up or create the counter `name`. */
    Counter &counter(const std::string &name);

    /** Look up or create the gauge `name`. */
    Gauge &gauge(const std::string &name);

    /**
     * Look up or create the histogram `name`.
     *
     * @param name Metric name.
     * @param bin_width Bin width on creation (ignored on lookup).
     * @param bins Bin count on creation (ignored on lookup).
     */
    Histogram &histogram(const std::string &name,
                         double bin_width = 0.25,
                         std::size_t bins = 1200);

    /**
     * Set the string annotation `name` (overwriting any prior value).
     * The name must not collide with a metric.
     */
    void setAnnotation(const std::string &name,
                       const std::string &value);

    /** @return All annotations, in name order. */
    const std::map<std::string, std::string> &
    annotations() const
    {
        return annotations_;
    }

    /**
     * Read-only views of the stored metrics, in name order. These
     * exist for serializers (the shard checkpoint codec) that must
     * capture every metric bit-exactly; exporters should prefer
     * writeCsv/writeJson.
     */
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    /** @return All gauges, in name order. */
    const std::map<std::string, Gauge> &gauges() const
    {
        return gauges_;
    }

    /** @return All histograms, in name order. */
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    /** @return True when no metric or annotation has been created. */
    bool empty() const;

    /** @return Total number of metrics and annotations. */
    std::size_t size() const;

    /**
     * Fold another registry into this one, optionally prefixing every
     * incoming name ("rr1." + "bus.passes" -> "rr1.bus.passes").
     * Metrics of the same resulting name must have the same kind (and,
     * for histograms, the same binning).
     *
     * A non-empty prefix claims a fresh namespace: if any resulting
     * fully-qualified name already exists, the merge panics with a
     * diagnostic naming the colliding metric and prefix (merging the
     * same run twice under one prefix is always a caller bug, and
     * silently summing two runs into one metric would corrupt the
     * export). Un-prefixed merges keep their accumulate-by-sum
     * semantics.
     *
     * @param other Registry to merge from.
     * @param prefix Prepended to each of `other`'s names.
     */
    void mergeFrom(const MetricsRegistry &other,
                   const std::string &prefix = "");

    /**
     * Write all metrics as CSV.
     *
     * Columns: name, kind, count, sum, min, max, p50, p90, p99, value.
     * Counters fill count only; gauges fill count/sum/min/max;
     * histograms fill count/sum and the quantile columns; annotations
     * fill only the trailing value column. Unused fields are left
     * empty.
     *
     * @param os Destination stream.
     */
    void writeCsv(std::ostream &os) const;

    /**
     * Write all metrics as a JSON object keyed by metric name, with
     * full per-bin data for histograms.
     *
     * @param os Destination stream.
     */
    void writeJson(std::ostream &os) const;

    /**
     * Write to `path`, choosing JSON when the extension is .json and
     * CSV otherwise.
     *
     * @param path Destination file.
     * @retval false The file could not be opened.
     */
    bool writeFile(const std::string &path) const;

  private:
    // One map per kind keeps the value types simple; exports interleave
    // the three maps in global name order.
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, std::string> annotations_;

    /** Panic if `name` already exists with a different kind. */
    void checkKindFree(const std::string &name, const char *kind) const;

    /** Panic if `name` already exists at all (prefixed-merge check). */
    void checkMergeFresh(const std::string &name,
                         const std::string &prefix) const;
};

} // namespace busarb

#endif // BUSARB_OBS_METRICS_REGISTRY_HH
