#include "obs/run_health.hh"

#include <ostream>
#include <sstream>

#include "obs/export_format.hh"

namespace busarb {

RunHealthMonitor::RunHealthMonitor(const RunHealthConfig &config)
    : config_(config), wait_(config.convergence), util_(config.convergence)
{
}

void
RunHealthMonitor::onBatch(double sim_time_units, double wait_mean,
                          double utilization)
{
    wait_.addBatch(wait_mean);
    util_.addBatch(utilization);
    if (config_.snapshots)
        writeSnapshotLine(sim_time_units);
}

ConvergenceVerdict
RunHealthMonitor::verdict() const
{
    const ConvergenceVerdict measured =
        worseVerdict(wait_.verdict(), util_.verdict());
    if (saturated_)
        return worseVerdict(measured, ConvergenceVerdict::kSaturated);
    return measured;
}

RunHealthReport
RunHealthMonitor::report() const
{
    RunHealthReport r;
    r.enabled = true;
    r.verdict = verdict();
    r.batches = wait_.numBatches();
    r.wait = wait_.estimate();
    r.waitRelHalfWidth = wait_.relHalfWidth();
    r.waitLag1 = wait_.lag1();
    r.waitMserCut = wait_.mserTruncation();
    r.waitRelHwTrajectory = wait_.relHalfWidthTrajectory();
    r.utilRelHalfWidth = util_.relHalfWidth();
    r.utilLag1 = util_.lag1();
    return r;
}

void
RunHealthMonitor::exportMetrics(MetricsRegistry &m) const
{
    m.counter("health.batches").add(wait_.numBatches());
    m.gauge("health.verdict")
        .set(static_cast<double>(static_cast<int>(verdict())));
    m.gauge("health.wait.rel_half_width").set(wait_.relHalfWidth());
    m.gauge("health.wait.lag1").set(wait_.lag1());
    m.gauge("health.wait.mser_cut")
        .set(static_cast<double>(wait_.mserTruncation()));
    m.gauge("health.wait.mean").set(wait_.estimate().value);
    m.gauge("health.wait.half_width").set(wait_.estimate().halfWidth);
    m.gauge("health.util.rel_half_width").set(util_.relHalfWidth());
    m.gauge("health.util.lag1").set(util_.lag1());
}

void
RunHealthMonitor::writeSnapshotLine(double sim_time_units)
{
    // Same byte-stability contract as the fairness snapshots: every
    // number goes through export_format, and the line depends only on
    // the batch series (keyed to simulated time, never host state).
    const Estimate e = wait_.estimate();
    std::ostringstream os;
    os << "{\"run\": ";
    writeJsonString(os, config_.label);
    os << ", \"kind\": \"health\", \"t\": "
       << formatDouble(sim_time_units) << ", \"batch\": "
       << formatUint(wait_.numBatches()) << ", \"wait_mean\": "
       << formatDouble(e.value) << ", \"wait_half_width\": "
       << formatDouble(e.halfWidth) << ", \"rel_half_width\": "
       << formatDouble(wait_.relHalfWidth()) << ", \"lag1\": "
       << formatDouble(wait_.lag1()) << ", \"mser_cut\": "
       << formatUint(wait_.mserTruncation()) << ", \"util_rel_half_width\": "
       << formatDouble(util_.relHalfWidth()) << ", \"verdict\": \""
       << verdictName(verdict()) << "\"}\n";
    snapshots_ += os.str();
}

void
RunHealthReport::print(std::ostream &os) const
{
    os << "verdict=" << verdictLabel() << " batches=" << batches
       << " W=" << formatDouble(wait.value) << "±"
       << formatDouble(wait.halfWidth) << " rel_hw="
       << formatDouble(waitRelHalfWidth) << " lag1="
       << formatDouble(waitLag1) << " mser_cut=" << waitMserCut
       << " util_rel_hw=" << formatDouble(utilRelHalfWidth);
}

void
RunHealthMonitor::printSummary(std::ostream &os) const
{
    report().print(os);
}

} // namespace busarb
