#include "stats/fairness.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace busarb {

double
jainIndex(const std::vector<double> &xs)
{
    double sum = 0.0;
    double sum_sq = 0.0;
    for (const double x : xs) {
        BUSARB_ASSERT(x >= 0.0, "jainIndex needs non-negative shares");
        sum += x;
        sum_sq += x * x;
    }
    if (sum_sq == 0.0)
        return 1.0;
    return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

WindowedFairness::WindowedFairness(Tick window_ticks, int slots)
    : window_(window_ticks),
      counts_(static_cast<std::size_t>(slots), 0.0)
{
    BUSARB_ASSERT(window_ticks >= 1, "window width must be >= 1 tick");
    BUSARB_ASSERT(slots >= 1, "need at least one slot");
}

void
WindowedFairness::closeOpenWindow()
{
    if (valueCount_ > 0) {
        jain_.add(jainIndex(counts_));
        valueMean_.add(valueSum_ / static_cast<double>(valueCount_));
        ++closed_;
        std::fill(counts_.begin(), counts_.end(), 0.0);
        valueSum_ = 0.0;
        valueCount_ = 0;
    }
}

void
WindowedFairness::closeThrough(Tick now)
{
    if (now < windowStart_ + window_)
        return;
    closeOpenWindow();
    // The windows between the one just closed and the one containing
    // `now` are empty by construction; jump straight to the live one.
    windowStart_ += ((now - windowStart_) / window_) * window_;
}

void
WindowedFairness::record(Tick now, int slot, double value)
{
    BUSARB_ASSERT(now >= windowStart_,
                  "observation precedes the open window: tick ", now);
    BUSARB_ASSERT(slot >= 0 &&
                  static_cast<std::size_t>(slot) < counts_.size(),
                  "slot out of range: ", slot);
    closeThrough(now);
    counts_[static_cast<std::size_t>(slot)] += 1.0;
    valueSum_ += value;
    ++valueCount_;
}

void
WindowedFairness::finishAt(Tick end)
{
    closeThrough(end);
    closeOpenWindow();
}

} // namespace busarb
