/**
 * @file
 * Student-t critical values for confidence-interval construction.
 */

#ifndef BUSARB_STATS_STUDENT_T_HH
#define BUSARB_STATS_STUDENT_T_HH

namespace busarb {

/**
 * Two-sided Student-t critical value.
 *
 * @param dof Degrees of freedom; must be >= 1.
 * @param confidence Two-sided confidence level; one of 0.90, 0.95, 0.99.
 * @return t such that P(|T_dof| <= t) == confidence.
 */
double studentTCritical(int dof, double confidence);

} // namespace busarb

#endif // BUSARB_STATS_STUDENT_T_HH
