#include "stats/batch_means.hh"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"
#include "stats/student_t.hh"
#include "stats/welford.hh"

namespace busarb {

std::string
Estimate::str(int decimals) const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value << " ± "
       << halfWidth;
    return os.str();
}

void
BatchMeans::addBatch(double batch_value)
{
    batches_.push_back(batch_value);
}

double
BatchMeans::mean() const
{
    if (batches_.empty())
        return 0.0;
    double s = 0.0;
    for (double v : batches_)
        s += v;
    return s / static_cast<double>(batches_.size());
}

Estimate
BatchMeans::estimate(double confidence) const
{
    Estimate e;
    e.value = mean();
    const std::size_t n = batches_.size();
    if (n < 2)
        return e;
    RunningStats rs;
    for (double v : batches_)
        rs.add(v);
    const double t = studentTCritical(static_cast<int>(n) - 1, confidence);
    e.halfWidth = t * rs.stddev() / std::sqrt(static_cast<double>(n));
    return e;
}

Estimate
ratioEstimate(const std::vector<double> &numer,
              const std::vector<double> &denom, double confidence)
{
    BUSARB_ASSERT(numer.size() == denom.size(),
                  "ratioEstimate: size mismatch ", numer.size(), " vs ",
                  denom.size());
    BatchMeans ratios;
    for (std::size_t i = 0; i < numer.size(); ++i) {
        BUSARB_ASSERT(denom[i] != 0.0, "ratioEstimate: zero denominator in "
                      "batch ", i);
        ratios.addBatch(numer[i] / denom[i]);
    }
    return ratios.estimate(confidence);
}

} // namespace busarb
