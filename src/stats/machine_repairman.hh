/**
 * @file
 * Exact machine-repairman (M/M/1//N) queueing model.
 *
 * The paper's simulated system is a closed single-server queue: N
 * agents thinking, then queueing for one bus. The classical
 * machine-repairman model with exponential think and exponential
 * service has an exact solution, which this module provides as an
 * analytic cross-check: with deterministic (CV = 0) service the
 * simulated waits fall below the model's, but utilization, throughput
 * trends, and the saturated asymptote R -> N*S - Z coincide.
 */

#ifndef BUSARB_STATS_MACHINE_REPAIRMAN_HH
#define BUSARB_STATS_MACHINE_REPAIRMAN_HH

namespace busarb {

/** Exact steady-state measures of the M/M/1//N queue. */
struct MachineRepairmanResult
{
    /** Server (bus) utilization. */
    double utilization = 0.0;

    /** Throughput, requests per unit time. */
    double throughput = 0.0;

    /** Mean response time (queueing + service). */
    double meanResponse = 0.0;

    /** Mean number of requests at the server (queued + in service). */
    double meanAtServer = 0.0;
};

/**
 * Solve the machine-repairman model.
 *
 * @param num_agents Number of sources N >= 1.
 * @param think_mean Mean think time Z > 0 (exponential).
 * @param service_mean Mean service time S > 0 (exponential).
 * @return Exact steady-state measures.
 */
MachineRepairmanResult machineRepairman(int num_agents, double think_mean,
                                        double service_mean);

} // namespace busarb

#endif // BUSARB_STATS_MACHINE_REPAIRMAN_HH
