/**
 * @file
 * Batch-means adequacy diagnostics.
 *
 * The batch-means method (Lavenberg) relies on batches long enough that
 * successive batch means are approximately uncorrelated; otherwise the
 * confidence intervals are too narrow. The standard check is the lag-1
 * autocorrelation of the batch means.
 */

#ifndef BUSARB_STATS_AUTOCORRELATION_HH
#define BUSARB_STATS_AUTOCORRELATION_HH

#include <vector>

namespace busarb {

/**
 * Lag-k sample autocorrelation.
 *
 * @param xs The series; needs at least k + 2 points.
 * @param k Lag, >= 1.
 * @return r_k in [-1, 1]; 0 when the series is too short or constant.
 */
double autocorrelation(const std::vector<double> &xs, int k = 1);

/** Result of a batch-independence diagnosis. */
struct BatchDiagnostics
{
    /** Lag-1 autocorrelation of the batch means. */
    double lag1 = 0.0;

    /** True when |lag1| is below the threshold. */
    bool adequate = true;
};

/**
 * Diagnose whether a batch-means series is adequate for interval
 * estimation.
 *
 * @param batch_means Per-batch values of the output measure.
 * @param threshold |lag-1| limit; 0.3 is a common rule of thumb for
 *        ~10 batches (the estimator itself is noisy at that length).
 * @return Diagnostics.
 */
BatchDiagnostics diagnoseBatches(const std::vector<double> &batch_means,
                                 double threshold = 0.3);

} // namespace busarb

#endif // BUSARB_STATS_AUTOCORRELATION_HH
