/**
 * @file
 * Closed-form open single-server queues: M/M/1 and M/D/1.
 *
 * Companions to the machine-repairman (M/M/1//N) model for the
 * open-loop workload sources: a Poisson-arrival bus with deterministic
 * transaction time S is exactly an M/D/1 queue (ignoring arbitration
 * overhead), and M/M/1 brackets it from above — so the simulator's
 * open-loop mean wait must land between the two closed forms, minus
 * the exposed-arbitration component. Used by the tests that validate
 * the open Poisson source end to end.
 */

#ifndef BUSARB_STATS_OPEN_QUEUE_HH
#define BUSARB_STATS_OPEN_QUEUE_HH

namespace busarb {

/** Steady-state results of an open single-server queue. */
struct OpenQueueResult
{
    /** Server utilization rho = lambda * S; < 1 for stability. */
    double utilization = 0.0;

    /** Mean response time (queueing + service), time units. */
    double meanResponse = 0.0;

    /** Mean number in system (Little: L = lambda * R). */
    double meanInSystem = 0.0;
};

/**
 * M/M/1: Poisson arrivals, exponential service.
 *
 * @param arrival_rate lambda, arrivals per time unit; > 0.
 * @param service_time Mean service time S; > 0, lambda * S < 1.
 * @return Steady-state measures (R = S / (1 - rho)).
 */
OpenQueueResult mm1(double arrival_rate, double service_time);

/**
 * M/D/1: Poisson arrivals, deterministic service
 * (Pollaczek-Khinchine with CV = 0).
 *
 * @param arrival_rate lambda, arrivals per time unit; > 0.
 * @param service_time Service time S; > 0, lambda * S < 1.
 * @return Steady-state measures (R = S + rho * S / (2 * (1 - rho))).
 */
OpenQueueResult md1(double arrival_rate, double service_time);

} // namespace busarb

#endif // BUSARB_STATS_OPEN_QUEUE_HH
