/**
 * @file
 * Streaming convergence diagnostics for batch-means output analysis.
 *
 * The paper's results (Section 4.1) rest on 10 batches x 8000 samples
 * with Student-t 90% confidence intervals "generally within 5% of the
 * reported measures". A run gives no signal today about whether that
 * actually held. This monitor consumes batch means as they complete and
 * tracks the three standard adequacy checks:
 *
 *  - the relative confidence-interval half-width trajectory (is the
 *    interval tightening toward the target as batches accumulate?);
 *  - the lag-1 autocorrelation of the batch means (are batches long
 *    enough to be approximately independent? — stats/autocorrelation);
 *  - an MSER-style truncation scan over the batch-mean series (did
 *    warm-up transient leak into the measurement period?).
 *
 * The verdict is deterministic: it depends only on the batch means, so
 * it is byte-stable across machines and --jobs counts.
 */

#ifndef BUSARB_STATS_CONVERGENCE_HH
#define BUSARB_STATS_CONVERGENCE_HH

#include <cstddef>
#include <vector>

#include "stats/batch_means.hh"

namespace busarb {

/** Outcome of a convergence diagnosis, ordered by severity. */
enum class ConvergenceVerdict {
    kConverged = 0,             ///< every check passed
    kUnderconverged = 1,        ///< CI too wide or batches correlated
    kTransientContaminated = 2, ///< warm-up transient leaked into batches
    kSaturated = 3,             ///< open-loop backlog grew without bound
};

/** @return Stable lowercase name ("converged", "underconverged", ...). */
const char *verdictName(ConvergenceVerdict v);

/** @return The more severe of two verdicts. */
ConvergenceVerdict worseVerdict(ConvergenceVerdict a, ConvergenceVerdict b);

/** Thresholds for the convergence checks. */
struct ConvergenceConfig
{
    /** Two-sided confidence level for the interval estimates. */
    double confidence = 0.90;

    /**
     * Relative half-width target: |halfWidth / mean| at the final batch
     * must be at or below this (the paper's "within 5%"). Means with
     * magnitude below meanFloor are judged on absolute half-width
     * against the same target instead, so near-zero measures do not
     * divide by ~0.
     */
    double relHalfWidthTarget = 0.05;

    /** Magnitude below which the relative test switches to absolute. */
    double meanFloor = 1e-9;

    /**
     * |lag-1 autocorrelation| limit for the batch means; 0.3 is the
     * common rule of thumb at ~10 batches (the estimator itself is
     * noisy at that length).
     */
    double lag1Threshold = 0.3;

    /**
     * MSER improvement ratio: a truncation point d > 0 only flags
     * transient contamination when MSER(d*) < mserImprovement *
     * MSER(0), i.e. dropping the prefix shrinks the normalized
     * standard-error statistic by a clear margin rather than by noise.
     */
    double mserImprovement = 0.5;

    /** Batches below this count are underconverged by definition. */
    std::size_t minBatches = 3;
};

/**
 * MSER truncation scan over a series.
 *
 * Evaluates the MSER statistic var(x[d..n)) / (n - d) for every
 * truncation point d in [0, n/2] and returns the minimizing d. A
 * minimum at d > 0 says the series' prefix is biased relative to its
 * steady state — for batch means, that warm-up transient leaked into
 * the first batches.
 *
 * @param xs The series (batch means).
 * @return The minimizing truncation point; 0 for series shorter than 4.
 */
std::size_t mserTruncationPoint(const std::vector<double> &xs);

/**
 * Streaming convergence monitor over one output measure.
 *
 * Feed it one value per completed batch; every diagnostic is available
 * after each addBatch, so callers can snapshot the trajectory as the
 * run progresses.
 */
class ConvergenceMonitor
{
  public:
    explicit ConvergenceMonitor(const ConvergenceConfig &config = {});

    /** Record the measure's value for one completed batch. */
    void addBatch(double batch_mean);

    /** @return Number of batches consumed. */
    std::size_t numBatches() const { return means_.numBatches(); }

    /** @return The configured thresholds. */
    const ConvergenceConfig &config() const { return config_; }

    /** @return Current batch-means estimate (mean and half-width). */
    Estimate estimate() const;

    /**
     * @return |halfWidth / mean| of the current estimate; falls back to
     *         the absolute half-width when |mean| < meanFloor. 0 with
     *         fewer than two batches.
     */
    double relHalfWidth() const;

    /**
     * Relative half-width recorded after each batch: element b is the
     * value when b + 1 batches had completed (element 0 is always 0 —
     * one batch has no interval).
     *
     * @return The trajectory, one element per batch.
     */
    const std::vector<double> &relHalfWidthTrajectory() const
    {
        return relHwTrajectory_;
    }

    /** @return Lag-1 autocorrelation of the batch means so far. */
    double lag1() const;

    /** @return MSER truncation point over the batch means so far. */
    std::size_t mserTruncation() const;

    /**
     * @return True when the MSER scan found a truncation point whose
     *         statistic beats the untruncated one by the configured
     *         improvement margin.
     */
    bool transientDetected() const;

    /**
     * Current verdict:
     *  - kTransientContaminated when transientDetected();
     *  - else kUnderconverged when there are fewer than minBatches
     *    batches, the relative half-width misses the target, or |lag-1|
     *    exceeds its threshold;
     *  - else kConverged.
     */
    ConvergenceVerdict verdict() const;

    /** @return The per-batch values consumed so far. */
    const std::vector<double> &batchMeans() const
    {
        return means_.batches();
    }

  private:
    ConvergenceConfig config_;
    BatchMeans means_;
    std::vector<double> relHwTrajectory_;
};

} // namespace busarb

#endif // BUSARB_STATS_CONVERGENCE_HH
