#include "stats/welford.hh"

#include <cmath>
#include <limits>

namespace busarb {

void
RunningStats::add(double x)
{
    if (x < min_)
        min_ = x;
    if (x > max_)
        max_ = x;
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    if (other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
}

void
RunningStats::clear()
{
    *this = RunningStats();
}

double
RunningStats::variancePopulation() const
{
    if (count_ < 1)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStats::varianceSample() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(varianceSample());
}

} // namespace busarb
