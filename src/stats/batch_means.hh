/**
 * @file
 * Batch-means confidence-interval estimation (Lavenberg, "Computer
 * Performance Modeling Handbook").
 *
 * Section 4.1 of the paper: "All of our simulations were run for 10
 * batches, with 8000 sample outputs in a batch. We have computed 90%
 * confidence intervals, which are generally within 5% of the reported
 * measures."
 */

#ifndef BUSARB_STATS_BATCH_MEANS_HH
#define BUSARB_STATS_BATCH_MEANS_HH

#include <string>
#include <vector>

namespace busarb {

/**
 * A point estimate with a symmetric confidence half-width.
 */
struct Estimate
{
    double value = 0.0;
    double halfWidth = 0.0;

    /** @return "v ± hw" with the requested number of decimals. */
    std::string str(int decimals = 2) const;

    /** @return Lower edge of the interval. */
    double lo() const { return value - halfWidth; }

    /** @return Upper edge of the interval. */
    double hi() const { return value + halfWidth; }
};

/**
 * Accumulates one scalar observation per batch and produces a mean with a
 * Student-t confidence interval across batches.
 */
class BatchMeans
{
  public:
    BatchMeans() = default;

    /** Record the value of the output measure for one completed batch. */
    void addBatch(double batch_value);

    /** @return Number of batches recorded. */
    std::size_t numBatches() const { return batches_.size(); }

    /** @return The recorded per-batch values. */
    const std::vector<double> &batches() const { return batches_; }

    /** @return Grand mean across batches; 0 if no batches. */
    double mean() const;

    /**
     * Confidence interval across batch means.
     *
     * @param confidence Two-sided level (0.90, 0.95 or 0.99).
     * @return Estimate{grand mean, t * s / sqrt(n)}; half-width 0 when
     *         fewer than two batches exist.
     */
    Estimate estimate(double confidence = 0.90) const;

  private:
    std::vector<double> batches_;
};

/**
 * Estimate for the ratio of two per-batch measures.
 *
 * Forms the per-batch ratio a_i / b_i and applies batch means to the
 * ratios. This is how the paper's throughput-ratio columns (Tables 4.1,
 * 4.4, 4.5) are computed, keeping numerator and denominator correlated
 * within each batch.
 *
 * @param numer Per-batch numerator values.
 * @param denom Per-batch denominator values (each must be non-zero).
 * @param confidence Two-sided level.
 * @return Ratio estimate with confidence half-width.
 */
Estimate ratioEstimate(const std::vector<double> &numer,
                       const std::vector<double> &denom,
                       double confidence = 0.90);

} // namespace busarb

#endif // BUSARB_STATS_BATCH_MEANS_HH
