/**
 * @file
 * Numerically stable single-pass mean/variance accumulation (Welford).
 */

#ifndef BUSARB_STATS_WELFORD_HH
#define BUSARB_STATS_WELFORD_HH

#include <cstdint>
#include <limits>

namespace busarb {

/**
 * Streaming mean / variance / extrema of a sequence of doubles.
 */
class RunningStats
{
  public:
    RunningStats() = default;

    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const RunningStats &other);

    /** Discard all observations. */
    void clear();

    /** @return Number of observations. */
    std::uint64_t count() const { return count_; }

    /** @return Sample mean; 0 if empty. */
    double mean() const { return mean_; }

    /** @return Population variance (divide by n); 0 if n < 1. */
    double variancePopulation() const;

    /** @return Sample variance (divide by n-1); 0 if n < 2. */
    double varianceSample() const;

    /** @return sqrt of the sample variance. */
    double stddev() const;

    /** @return Smallest observation; +inf if empty. */
    double min() const { return min_; }

    /** @return Largest observation; -inf if empty. */
    double max() const { return max_; }

    /** @return Sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(count_); }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace busarb

#endif // BUSARB_STATS_WELFORD_HH
