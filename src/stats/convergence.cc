#include "stats/convergence.hh"

#include <cmath>
#include <limits>

#include "sim/logging.hh"
#include "stats/autocorrelation.hh"

namespace busarb {

const char *
verdictName(ConvergenceVerdict v)
{
    switch (v) {
      case ConvergenceVerdict::kConverged:
        return "converged";
      case ConvergenceVerdict::kUnderconverged:
        return "underconverged";
      case ConvergenceVerdict::kTransientContaminated:
        return "transient-contaminated";
      case ConvergenceVerdict::kSaturated:
        return "saturated";
    }
    BUSARB_PANIC("unknown verdict ", static_cast<int>(v));
}

ConvergenceVerdict
worseVerdict(ConvergenceVerdict a, ConvergenceVerdict b)
{
    return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

namespace {

/** MSER statistic of the suffix xs[d..n): var / (n - d); +inf if < 2. */
double
mserStatistic(const std::vector<double> &xs, std::size_t d)
{
    const std::size_t n = xs.size();
    if (n - d < 2)
        return std::numeric_limits<double>::infinity();
    double mean = 0.0;
    for (std::size_t i = d; i < n; ++i)
        mean += xs[i];
    const double m = static_cast<double>(n - d);
    mean /= m;
    double var = 0.0;
    for (std::size_t i = d; i < n; ++i)
        var += (xs[i] - mean) * (xs[i] - mean);
    var /= m;
    return var / m;
}

} // namespace

std::size_t
mserTruncationPoint(const std::vector<double> &xs)
{
    const std::size_t n = xs.size();
    if (n < 4)
        return 0;
    std::size_t best = 0;
    double best_stat = mserStatistic(xs, 0);
    // The conventional scan stops at n/2: beyond that the statistic is
    // dominated by its own small-sample noise.
    for (std::size_t d = 1; d <= n / 2; ++d) {
        const double stat = mserStatistic(xs, d);
        if (stat < best_stat) {
            best_stat = stat;
            best = d;
        }
    }
    return best;
}

ConvergenceMonitor::ConvergenceMonitor(const ConvergenceConfig &config)
    : config_(config)
{
    BUSARB_ASSERT(config_.relHalfWidthTarget > 0.0,
                  "relHalfWidthTarget must be positive");
    BUSARB_ASSERT(config_.lag1Threshold > 0.0,
                  "lag1Threshold must be positive");
    BUSARB_ASSERT(config_.mserImprovement > 0.0 &&
                  config_.mserImprovement <= 1.0,
                  "mserImprovement must be in (0, 1]");
}

void
ConvergenceMonitor::addBatch(double batch_mean)
{
    means_.addBatch(batch_mean);
    relHwTrajectory_.push_back(relHalfWidth());
}

Estimate
ConvergenceMonitor::estimate() const
{
    return means_.estimate(config_.confidence);
}

double
ConvergenceMonitor::relHalfWidth() const
{
    if (means_.numBatches() < 2)
        return 0.0;
    const Estimate e = estimate();
    const double mag = std::abs(e.value);
    if (mag < config_.meanFloor)
        return e.halfWidth;
    return e.halfWidth / mag;
}

double
ConvergenceMonitor::lag1() const
{
    return autocorrelation(means_.batches(), 1);
}

std::size_t
ConvergenceMonitor::mserTruncation() const
{
    return mserTruncationPoint(means_.batches());
}

bool
ConvergenceMonitor::transientDetected() const
{
    const std::size_t cut = mserTruncation();
    if (cut == 0)
        return false;
    const double untruncated = mserStatistic(means_.batches(), 0);
    const double truncated = mserStatistic(means_.batches(), cut);
    // Zero-variance suffix of a non-constant series is a genuine level
    // shift, not noise.
    if (untruncated == 0.0)
        return false;
    return truncated < config_.mserImprovement * untruncated;
}

ConvergenceVerdict
ConvergenceMonitor::verdict() const
{
    if (transientDetected())
        return ConvergenceVerdict::kTransientContaminated;
    if (means_.numBatches() < config_.minBatches)
        return ConvergenceVerdict::kUnderconverged;
    if (relHalfWidth() > config_.relHalfWidthTarget)
        return ConvergenceVerdict::kUnderconverged;
    if (std::abs(lag1()) > config_.lag1Threshold)
        return ConvergenceVerdict::kUnderconverged;
    return ConvergenceVerdict::kConverged;
}

} // namespace busarb
