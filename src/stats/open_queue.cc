#include "stats/open_queue.hh"

#include "sim/logging.hh"

namespace busarb {

namespace {

double
checkedRho(double arrival_rate, double service_time)
{
    BUSARB_ASSERT(arrival_rate > 0.0, "arrival rate must be positive");
    BUSARB_ASSERT(service_time > 0.0, "service time must be positive");
    const double rho = arrival_rate * service_time;
    BUSARB_ASSERT(rho < 1.0, "open queue is unstable: rho = ", rho);
    return rho;
}

} // namespace

OpenQueueResult
mm1(double arrival_rate, double service_time)
{
    OpenQueueResult r;
    r.utilization = checkedRho(arrival_rate, service_time);
    r.meanResponse = service_time / (1.0 - r.utilization);
    r.meanInSystem = arrival_rate * r.meanResponse;
    return r;
}

OpenQueueResult
md1(double arrival_rate, double service_time)
{
    OpenQueueResult r;
    r.utilization = checkedRho(arrival_rate, service_time);
    r.meanResponse =
        service_time +
        r.utilization * service_time / (2.0 * (1.0 - r.utilization));
    r.meanInSystem = arrival_rate * r.meanResponse;
    return r;
}

} // namespace busarb
