#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace busarb {

Histogram::Histogram(double bin_width, std::size_t num_bins)
    : binWidth_(bin_width), bins_(num_bins, 0)
{
    BUSARB_ASSERT(bin_width > 0.0, "bin width must be positive");
    BUSARB_ASSERT(num_bins >= 1, "need at least one bin");
}

void
Histogram::add(double x)
{
    if (x < 0.0)
        x = 0.0;
    sum_ += x;
    ++total_;
    const auto idx = static_cast<std::size_t>(x / binWidth_);
    if (idx >= bins_.size())
        ++overflow_;
    else
        ++bins_[idx];
}

void
Histogram::clear()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    overflow_ = 0;
    total_ = 0;
    sum_ = 0.0;
}

void
Histogram::merge(const Histogram &other)
{
    BUSARB_ASSERT(other.binWidth_ == binWidth_ &&
                  other.bins_.size() == bins_.size(),
                  "merging histograms with different binning: ",
                  other.binWidth_, "x", other.bins_.size(), " into ",
                  binWidth_, "x", bins_.size());
    for (std::size_t i = 0; i < bins_.size(); ++i)
        bins_[i] += other.bins_[i];
    overflow_ += other.overflow_;
    total_ += other.total_;
    sum_ += other.sum_;
}

double
Histogram::cdf(double x) const
{
    if (total_ == 0)
        return 0.0;
    if (x < 0.0)
        return 0.0;
    // Count full bins whose upper edge is <= x, plus a linear fraction of
    // the bin containing x.
    const double pos = x / binWidth_;
    const auto full = static_cast<std::size_t>(pos);
    std::uint64_t below = 0;
    const std::size_t limit = std::min(full, bins_.size());
    for (std::size_t i = 0; i < limit; ++i)
        below += bins_[i];
    double mass = static_cast<double>(below);
    if (full < bins_.size()) {
        const double frac = pos - static_cast<double>(full);
        mass += frac * static_cast<double>(bins_[full]);
    } else {
        // x reaches into the overflow region; all regular mass is below.
        mass = static_cast<double>(total_ - overflow_);
    }
    return mass / static_cast<double>(total_);
}

double
Histogram::quantile(double p) const
{
    BUSARB_ASSERT(p >= 0.0 && p <= 1.0, "quantile p out of range: ", p);
    if (total_ == 0)
        return 0.0;
    const double target = p * static_cast<double>(total_);
    double cum = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0)
            continue; // empty bins carry no mass and cannot satisfy p
        if (target <= 0.0) // p = 0: the minimum of the support
            return binWidth_ * static_cast<double>(i);
        cum += static_cast<double>(bins_[i]);
        if (cum >= target)
            return binWidth_ * static_cast<double>(i + 1);
    }
    // The in-range mass was exhausted before reaching the target, so
    // the quantile falls in the overflow bucket; clamp to its lower
    // edge explicitly rather than by fall-through.
    BUSARB_ASSERT(overflow_ > 0,
                  "quantile target beyond all recorded mass: p = ", p);
    return binWidth_ * static_cast<double>(bins_.size());
}

double
Histogram::approximateMean() const
{
    if (total_ == 0)
        return 0.0;
    return sum_ / static_cast<double>(total_);
}

double
Histogram::expectedMin(double v) const
{
    BUSARB_ASSERT(v >= 0.0, "expectedMin requires v >= 0, got ", v);
    if (total_ == 0)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0)
            continue;
        const double mid = (static_cast<double>(i) + 0.5) * binWidth_;
        acc += static_cast<double>(bins_[i]) * std::min(mid, v);
    }
    acc += static_cast<double>(overflow_) *
           std::min(v, binWidth_ * static_cast<double>(bins_.size()));
    return acc / static_cast<double>(total_);
}

double
Histogram::expectedExcess(double v) const
{
    BUSARB_ASSERT(v >= 0.0, "expectedExcess requires v >= 0, got ", v);
    if (total_ == 0)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0)
            continue;
        const double mid = (static_cast<double>(i) + 0.5) * binWidth_;
        acc += static_cast<double>(bins_[i]) * std::max(mid - v, 0.0);
    }
    const double edge = binWidth_ * static_cast<double>(bins_.size());
    acc += static_cast<double>(overflow_) * std::max(edge - v, 0.0);
    return acc / static_cast<double>(total_);
}

void
Histogram::restoreBin(std::size_t i, std::uint64_t count)
{
    BUSARB_ASSERT(i < bins_.size(), "restoreBin index ", i,
                  " out of range (", bins_.size(), " bins)");
    bins_[i] += count;
    total_ += count;
}

void
Histogram::restoreOverflow(std::uint64_t count)
{
    overflow_ += count;
    total_ += count;
}

void
Histogram::restoreSum(double sum)
{
    sum_ += sum;
}

} // namespace busarb
