#include "stats/autocorrelation.hh"

#include <cmath>
#include <cstddef>

#include "sim/logging.hh"

namespace busarb {

double
autocorrelation(const std::vector<double> &xs, int k)
{
    BUSARB_ASSERT(k >= 1, "lag must be >= 1, got ", k);
    const std::size_t n = xs.size();
    const auto lag = static_cast<std::size_t>(k);
    if (n < lag + 2)
        return 0.0;
    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= static_cast<double>(n);
    double denom = 0.0;
    for (double x : xs)
        denom += (x - mean) * (x - mean);
    if (denom == 0.0)
        return 0.0; // constant series
    double numer = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i)
        numer += (xs[i] - mean) * (xs[i + lag] - mean);
    return numer / denom;
}

BatchDiagnostics
diagnoseBatches(const std::vector<double> &batch_means, double threshold)
{
    BUSARB_ASSERT(threshold > 0.0, "threshold must be positive");
    BatchDiagnostics d;
    d.lag1 = autocorrelation(batch_means, 1);
    d.adequate = std::abs(d.lag1) <= threshold;
    return d;
}

} // namespace busarb
