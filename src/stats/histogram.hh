/**
 * @file
 * Fixed-bin-width histogram with empirical CDF queries.
 *
 * Used for Figure 4.1 (CDF of the bus waiting time) and for choosing the
 * execution-overlap values in Table 4.3 ("the minimum integer value at
 * which the CDF for RR is less than the CDF for FCFS").
 */

#ifndef BUSARB_STATS_HISTOGRAM_HH
#define BUSARB_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace busarb {

/**
 * Histogram over [0, +inf) with uniform bins; values beyond the last bin
 * accumulate in an overflow bucket.
 */
class Histogram
{
  public:
    /**
     * @param bin_width Width of each bin; must be > 0.
     * @param num_bins Number of regular bins; must be >= 1.
     */
    Histogram(double bin_width, std::size_t num_bins);

    /** Add one non-negative observation (negatives clamp to bin 0). */
    void add(double x);

    /** Remove all observations. */
    void clear();

    /**
     * Fold another histogram in (bin-wise sum).
     *
     * @param other Must have the same bin width and bin count.
     */
    void merge(const Histogram &other);

    /** @return Exact sum of the recorded observations. */
    double sum() const { return sum_; }

    /** @return Total number of observations. */
    std::uint64_t count() const { return total_; }

    /** @return Observations recorded beyond the last bin. */
    std::uint64_t overflow() const { return overflow_; }

    /** @return The configured bin width. */
    double binWidth() const { return binWidth_; }

    /** @return Number of regular bins. */
    std::size_t numBins() const { return bins_.size(); }

    /** @return Raw count in bin `i`. */
    std::uint64_t binCount(std::size_t i) const { return bins_.at(i); }

    /**
     * Empirical cumulative distribution function.
     *
     * @param x Query point.
     * @return Fraction of observations <= x (bin-resolution approximation);
     *         0 if the histogram is empty.
     */
    double cdf(double x) const;

    /**
     * Approximate quantile by inverse CDF over the bins.
     *
     * @param p Probability in [0, 1].
     * @return Upper edge of the first non-empty bin where the CDF
     *         reaches p. p = 0 returns the lower edge of the first
     *         non-empty bin (the minimum of the support at bin
     *         resolution); the overflow edge is returned only when the
     *         target mass falls in the overflow bucket. 0 if empty.
     */
    double quantile(double p) const;

    /** Mean of the recorded observations (bin midpoints, overflow at edge). */
    double approximateMean() const;

    /**
     * Approximate E[min(X, v)] from the bins.
     *
     * Used by the Table 4.3 harness: the expected execution overlap
     * realized per request when up to `v` units of useful work can be
     * overlapped with a waiting time X. Bin mass is taken at the bin
     * midpoint; overflow mass contributes min(v, overflow edge) = v for
     * any v below the overflow edge.
     *
     * @param v Overlap limit, >= 0.
     * @return Approximation of E[min(X, v)].
     */
    double expectedMin(double v) const;

    /**
     * Approximate E[max(X - v, 0)] from the bins: the mean residual
     * waiting time after up to `v` units have been overlapped with
     * useful work. Complements expectedMin: expectedMin(v) +
     * expectedExcess(v) equals the binned mean.
     *
     * @param v Overlap limit, >= 0.
     * @return Approximation of E[max(X - v, 0)], never negative.
     */
    double expectedExcess(double v) const;

    /**
     * Restore `count` serialized observations into bin `i` without
     * going through add(). Together with restoreOverflow and
     * restoreSum this reconstructs a histogram bit-exactly from its
     * serialized state (bin counts, overflow count, exact sum) — the
     * checkpoint/resume codec depends on the round trip being exact.
     *
     * @param i Bin index; must be < numBins().
     * @param count Observations to add to the bin.
     */
    void restoreBin(std::size_t i, std::uint64_t count);

    /** Restore `count` serialized observations into the overflow bucket. */
    void restoreOverflow(std::uint64_t count);

    /** Restore the exact observation sum (added to the current sum). */
    void restoreSum(double sum);

  private:
    double binWidth_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    double sum_ = 0.0; // exact sum of observations, for approximateMean
};

} // namespace busarb

#endif // BUSARB_STATS_HISTOGRAM_HH
