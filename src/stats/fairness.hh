/**
 * @file
 * Fairness quantification primitives: Jain's fairness index and a
 * tumbling-window accumulator over simulated time.
 *
 * Jain's index J(x) = (sum x_i)^2 / (n * sum x_i^2) maps any allocation
 * vector to (0, 1]: 1 when every agent receives an equal share, 1/n
 * when a single agent receives everything. The paper argues RR/FCFS
 * fairness qualitatively; these helpers let the fairness auditor
 * (obs/fairness_auditor.hh) report it as a number per run and per
 * window of simulated time.
 */

#ifndef BUSARB_STATS_FAIRNESS_HH
#define BUSARB_STATS_FAIRNESS_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "stats/welford.hh"

namespace busarb {

/**
 * Jain's fairness index of an allocation vector.
 *
 * @param xs Per-agent allocations (all non-negative).
 * @return (sum xs)^2 / (n * sum xs^2); 1.0 for an empty or all-zero
 *         vector (no allocation observed means no observed unfairness).
 */
double jainIndex(const std::vector<double> &xs);

/**
 * Streams (tick, slot, value) observations into consecutive fixed-width
 * windows of simulated time, closing windows as the clock advances.
 *
 * Each closed window with at least one observation contributes one
 * sample to two summary accumulators: Jain's index over the per-slot
 * observation counts in the window, and the mean observed value over
 * the window. Windows with no observations are skipped (their Jain
 * index is undefined). Because the windows are keyed purely to
 * simulated time, the summaries are bit-identical however the run is
 * scheduled across worker threads.
 */
class WindowedFairness
{
  public:
    /**
     * @param window_ticks Window width in ticks; must be >= 1.
     * @param slots Number of slots (agents); must be >= 1.
     */
    WindowedFairness(Tick window_ticks, int slots);

    /**
     * Record one observation.
     *
     * @param now Observation tick; must not precede the open window.
     * @param slot Slot index in [0, slots).
     * @param value Observed value (e.g. a waiting time in units).
     */
    void record(Tick now, int slot, double value);

    /**
     * Close every window ending at or before `end`, plus the trailing
     * partial window if it holds any observations (so short runs still
     * report at least one window).
     *
     * @param end Final simulated tick of the stream.
     */
    void finishAt(Tick end);

    /** @return Number of non-empty windows closed so far. */
    std::uint64_t windowsClosed() const { return closed_; }

    /** @return Jain's index over per-slot counts, per closed window. */
    const RunningStats &windowJain() const { return jain_; }

    /** @return Mean observed value, one sample per closed window. */
    const RunningStats &windowValueMean() const { return valueMean_; }

  private:
    Tick window_;
    Tick windowStart_ = 0;
    std::vector<double> counts_; // per-slot counts in the open window
    double valueSum_ = 0.0;
    std::uint64_t valueCount_ = 0;
    std::uint64_t closed_ = 0;
    RunningStats jain_;
    RunningStats valueMean_;

    /** Close windows whose end lies at or before `now`. */
    void closeThrough(Tick now);

    /** Fold the open window into the summaries and reset it. */
    void closeOpenWindow();
};

} // namespace busarb

#endif // BUSARB_STATS_FAIRNESS_HH
