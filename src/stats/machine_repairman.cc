#include "stats/machine_repairman.hh"

#include <vector>

#include "sim/logging.hh"

namespace busarb {

MachineRepairmanResult
machineRepairman(int num_agents, double think_mean, double service_mean)
{
    BUSARB_ASSERT(num_agents >= 1, "need at least one agent");
    BUSARB_ASSERT(think_mean > 0.0, "think time must be positive");
    BUSARB_ASSERT(service_mean > 0.0, "service time must be positive");

    // Birth-death chain on j = number of requests at the server:
    //   p_j = p_0 * N! / (N-j)! * (S/Z)^j.
    // Build the unnormalized terms iteratively for stability.
    const double rho = service_mean / think_mean;
    const int n = num_agents;
    std::vector<double> terms(static_cast<std::size_t>(n) + 1);
    terms[0] = 1.0;
    for (int j = 1; j <= n; ++j) {
        terms[static_cast<std::size_t>(j)] =
            terms[static_cast<std::size_t>(j - 1)] *
            static_cast<double>(n - j + 1) * rho;
    }
    double norm = 0.0;
    for (double t : terms)
        norm += t;

    double p0 = terms[0] / norm;
    double mean_at_server = 0.0;
    for (int j = 0; j <= n; ++j) {
        mean_at_server += j * terms[static_cast<std::size_t>(j)] / norm;
    }

    MachineRepairmanResult result;
    result.utilization = 1.0 - p0;
    result.throughput = result.utilization / service_mean;
    result.meanAtServer = mean_at_server;
    // Little's law on the server subsystem.
    result.meanResponse = mean_at_server / result.throughput;
    return result;
}

} // namespace busarb
