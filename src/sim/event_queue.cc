#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace busarb {

namespace {

/** Calendar geometry limits. */
constexpr std::uint32_t kMinBucketCountLog2 = 3;  // 8 buckets
constexpr std::uint32_t kMaxBucketCountLog2 = 16; // 65536 buckets
constexpr std::uint32_t kMinBucketWidthLog2 = 0;
/** Mean insert chain walk (steps per operation) that triggers a width
 *  re-tune; a well-tuned calendar stays near one step. */
constexpr std::size_t kRetuneScanFactor = 3;
constexpr std::uint32_t kMaxBucketWidthLog2 = 44;

/** First slab size; later slabs double up to the cap. */
constexpr std::size_t kFirstSlabSlots = 64;
constexpr std::size_t kMaxSlabSlots = 8192;

std::uint32_t
clampU32(std::uint32_t v, std::uint32_t lo, std::uint32_t hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** floor(log2(v)) for v >= 1. */
std::uint32_t
floorLog2(std::uint64_t v)
{
    std::uint32_t b = 0;
    while (v > 1) {
        v >>= 1;
        ++b;
    }
    return b;
}

} // namespace

// ------------------------------------------------------- CalendarTuning

CalendarTuning
CalendarTuning::forExpectedDepth(std::size_t depth)
{
    CalendarTuning t;
    if (depth >= 1)
        t.bucketCountLog2 = clampU32(floorLog2(depth) + 1,
                                     kMinBucketCountLog2,
                                     kMaxBucketCountLog2);
    return t;
}

CalendarTuning
CalendarTuning::fromDepthHistogram(
    const std::array<std::uint64_t, kEventDepthBuckets> &depth_log2)
{
    // The modal log2 bucket is the typical live depth while scheduling;
    // size the calendar for that steady state.
    std::size_t mode = 0;
    std::uint64_t best = 0;
    for (std::size_t b = 0; b < depth_log2.size(); ++b) {
        if (depth_log2[b] > best) {
            best = depth_log2[b];
            mode = b;
        }
    }
    if (best == 0)
        return CalendarTuning{};
    return forExpectedDepth(std::size_t{1} << (mode + 1));
}

// ------------------------------------------------------------ NodeArena

EventQueue::Node *
EventQueue::NodeArena::allocate()
{
    if (freeHead_ != nullptr) {
        Slot *slot = freeHead_;
        freeHead_ = slot->nextFree;
        return reinterpret_cast<Node *>(slot->storage);
    }
    if (slabFill_ == slabSize_) {
        slabSize_ = slabs_.empty()
                        ? kFirstSlabSlots
                        : std::min(slabSize_ * 2, kMaxSlabSlots);
        slabs_.push_back(std::make_unique<Slot[]>(slabSize_));
        slabFill_ = 0;
        capacity_ += slabSize_;
    }
    return reinterpret_cast<Node *>(
        slabs_.back()[slabFill_++].storage);
}

void
EventQueue::NodeArena::release(Node *node)
{
    Slot *slot = reinterpret_cast<Slot *>(node);
    slot->nextFree = freeHead_;
    freeHead_ = slot;
}

// ------------------------------------------------------------ lifecycle

EventQueue::EventQueue(EventQueuePolicy policy, CalendarTuning tuning)
    : policy_(policy)
{
    if (policy_ == EventQueuePolicy::kCalendar) {
        const std::uint32_t count_log2 =
            clampU32(tuning.bucketCountLog2, kMinBucketCountLog2,
                     kMaxBucketCountLog2);
        widthLog2_ = clampU32(tuning.bucketWidthLog2, kMinBucketWidthLog2,
                              kMaxBucketWidthLog2);
        minCountLog2_ = count_log2;
        buckets_.assign(std::size_t{1} << count_log2, nullptr);
        tails_.assign(buckets_.size(), nullptr);
        bucketBits_.assign((buckets_.size() + 63) / 64, 0);
        bucketMask_ = buckets_.size() - 1;
    }
}

EventQueue::~EventQueue()
{
    for (Node *head : buckets_) {
        while (head != nullptr) {
            Node *next = head->next;
            head->~Node();
            head = next;
        }
    }
    // Heap entries (and their callbacks) are destroyed by the vector.
}

// ------------------------------------------------------------- calendar

void
EventQueue::calInsert(Node *node)
{
    const std::size_t bucket = calBucketOf(node->when);
    bucketBits_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
    // Event ids increase monotonically, so a new event sorts after every
    // same-(tick, priority) one already in its bucket; checking the tail
    // first makes the common append — including dense many-events-per-
    // tick floods, where chains cannot be short — O(1) instead of a
    // whole-chain walk.
    Node *tail = tails_[bucket];
    if (tail != nullptr &&
        earlier(tail->when, tail->priority, tail->id, node->when,
                node->priority, node->id)) {
        node->next = nullptr;
        tail->next = node;
        tails_[bucket] = node;
    } else {
        Node **link = &buckets_[bucket];
        while (*link != nullptr &&
               earlier((*link)->when, (*link)->priority, (*link)->id,
                       node->when, node->priority, node->id)) {
            link = &(*link)->next;
            ++insertScanSteps_;
        }
        node->next = *link;
        *link = node;
        if (node->next == nullptr)
            tails_[bucket] = node;
    }
    if (minValid_ &&
        earlier(node->when, node->priority, node->id, cachedMin_->when,
                cachedMin_->priority, cachedMin_->id)) {
        cachedMin_ = node;
    }
}

EventQueue::Node *
EventQueue::calFindMin() const
{
    if (liveCount_ == 0)
        return nullptr;
    if (minValid_)
        return cachedMin_;

    // One "year" lap starting at now's bucket: the first occupied
    // bucket whose head falls inside its current-year window holds the
    // global minimum (windows ahead of now are disjoint and ascending,
    // and same-tick events share a bucket). The occupancy bitmask
    // jumps straight between non-empty buckets.
    const std::uint64_t unow = static_cast<std::uint64_t>(now_);
    const std::uint64_t chunk = unow >> widthLog2_;
    const std::size_t start = static_cast<std::size_t>(chunk) & bucketMask_;
    const std::uint64_t base_top = (chunk + 1) << widthLog2_;
    const std::size_t nb = buckets_.size();
    const std::size_t nwords = bucketBits_.size();
    // First set bit at bucket index >= from, or nb if none.
    const auto nextOccupied = [&](std::size_t from) -> std::size_t {
        if (from >= nb)
            return nb;
        std::size_t w = from >> 6;
        std::uint64_t bits =
            bucketBits_[w] & (~std::uint64_t{0} << (from & 63));
        while (bits == 0) {
            if (++w == nwords)
                return nb;
            bits = bucketBits_[w];
        }
        return (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
    };
    bool wrapped = false;
    std::size_t pos = nextOccupied(start);
    if (pos == nb) {
        wrapped = true;
        pos = nextOccupied(0);
        BUSARB_ASSERT(pos < nb, "live events lost from the calendar");
    }
    while (!(wrapped && pos >= start)) {
        // Cyclic offset from the lap start (size_t wrap-around then
        // mask yields (pos - start) mod nb).
        const std::size_t i = (pos - start) & bucketMask_;
        Node *head = buckets_[pos];
        if (static_cast<std::uint64_t>(head->when) <
            base_top + (static_cast<std::uint64_t>(i) << widthLog2_)) {
            cachedMin_ = head;
            minValid_ = true;
            return head;
        }
        pos = nextOccupied(pos + 1);
        if (pos == nb) {
            if (wrapped)
                break;
            wrapped = true;
            pos = nextOccupied(0);
        }
    }

    // Sparse tail: every live event is more than a year ahead. Each
    // bucket list is sorted, so the global minimum is the least head.
    Node *best = nullptr;
    for (std::size_t w = 0; w < nwords; ++w) {
        for (std::uint64_t bits = bucketBits_[w]; bits != 0;
             bits &= bits - 1) {
            Node *head =
                buckets_[(w << 6) +
                         static_cast<std::size_t>(std::countr_zero(bits))];
            if (best == nullptr ||
                earlier(head->when, head->priority, head->id, best->when,
                        best->priority, best->id)) {
                best = head;
            }
        }
    }
    BUSARB_ASSERT(best != nullptr, "live events lost from the calendar");
    cachedMin_ = best;
    minValid_ = true;
    return best;
}

void
EventQueue::calRemove(Node *node, std::size_t bucket)
{
    Node *prev = nullptr;
    Node **link = &buckets_[bucket];
    while (*link != node) {
        BUSARB_ASSERT(*link != nullptr, "event ", node->id,
                      " missing from its calendar bucket");
        prev = *link;
        link = &(*link)->next;
    }
    *link = node->next;
    if (node == tails_[bucket])
        tails_[bucket] = prev;
    if (buckets_[bucket] == nullptr)
        bucketBits_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
    if (node == cachedMin_)
        minValid_ = false;
}

void
EventQueue::calMaybeResize()
{
    // Hysteresis: geometry changes only after a full bucket-count worth
    // of operations since the last rebuild, and never below the tuned
    // initial count — a live depth oscillating around a threshold must
    // not ping-pong between rebuilds.
    const std::size_t nb = buckets_.size();
    if (++opsSinceRebuild_ < nb)
        return;
    if (liveCount_ > nb * 2 &&
        nb < (std::size_t{1} << kMaxBucketCountLog2)) {
        calRebuild(floorLog2(nb) + 1, widthLog2_);
    } else if (liveCount_ < nb / 8 && floorLog2(nb) > minCountLog2_) {
        calRebuild(floorLog2(nb) - 1, widthLog2_);
    } else if (insertScanSteps_ > opsSinceRebuild_ * kRetuneScanFactor) {
        // The count is right but inserts walk long chains: the bucket
        // width no longer matches the tick distribution (e.g. the
        // initial tuning guessed wrong and the depth never changed
        // enough to trigger a count rebuild). Rebuild at the same count
        // to re-tune the width from the live span.
        calRebuild(floorLog2(nb), widthLog2_);
    }
}

void
EventQueue::calRebuild(std::uint32_t count_log2, std::uint32_t width_log2)
{
    rebuildScratch_.clear();
    rebuildScratch_.reserve(liveCount_);
    Tick min_when = kMaxTick;
    Tick max_when = 0;
    for (Node *head : buckets_) {
        while (head != nullptr) {
            rebuildScratch_.push_back(head);
            min_when = std::min(min_when, head->when);
            max_when = std::max(max_when, head->when);
            head = head->next;
        }
    }

    // Re-tune the width to the live span: aim for roughly one live
    // event per bucket-width so bucket lists stay short while a year
    // still covers the whole span. A span smaller than the live count
    // (many events per tick) wants the narrowest buckets — one tick per
    // bucket — so the sorted chains stay as short as the tick
    // distribution allows.
    if (rebuildScratch_.size() >= 2 && max_when > min_when) {
        const std::uint64_t gap =
            static_cast<std::uint64_t>(max_when - min_when) /
            rebuildScratch_.size();
        width_log2 = clampU32(gap >= 1 ? floorLog2(gap) + 1 : 0,
                              kMinBucketWidthLog2, kMaxBucketWidthLog2);
    }

    widthLog2_ = width_log2;
    buckets_.assign(std::size_t{1} << count_log2, nullptr);
    tails_.assign(buckets_.size(), nullptr);
    bucketBits_.assign((buckets_.size() + 63) / 64, 0);
    bucketMask_ = buckets_.size() - 1;
    minValid_ = false;
    cachedMin_ = nullptr;
    opsSinceRebuild_ = 0;
    for (Node *node : rebuildScratch_)
        calInsert(node);
    // Reinsertion walks above must not count toward the next window's
    // re-tune decision.
    insertScanSteps_ = 0;
}

// ----------------------------------------------------------------- heap

void
EventQueue::heapSift() const
{
    // Drop cancelled entries sitting at the heap top, erasing their
    // tombstones as they surface.
    const auto later = [](const HeapEntry &a, const HeapEntry &b) {
        return earlier(b.when, b.priority, b.id, a.when, a.priority, a.id);
    };
    while (!heap_.empty() && cancelled_.erase(heap_.front().id) > 0) {
        std::pop_heap(heap_.begin(), heap_.end(), later);
        heap_.pop_back();
    }
}

void
EventQueue::heapCompactTombstones()
{
    const auto later = [](const HeapEntry &a, const HeapEntry &b) {
        return earlier(b.when, b.priority, b.id, a.when, a.priority, a.id);
    };
    std::erase_if(heap_, [this](const HeapEntry &e) {
        return cancelled_.count(e.id) > 0;
    });
    std::make_heap(heap_.begin(), heap_.end(), later);
    cancelled_.clear();
}

// ------------------------------------------------------------------ API

EventQueue::Callback *
EventQueue::calScheduleSlot(Tick when, int priority, EventId &id)
{
    BUSARB_ASSERT(when >= now_, "scheduling into the past: when=", when,
                  " now=", now_);
    id = nextId_++;
    Node *node = new (arena_.allocate())
        Node{when, priority, id, nullptr, Callback{}};
    calInsert(node);
    ++liveCount_;
    calMaybeResize();
#if BUSARB_PROFILING_ENABLED
    recordDepth(liveCount_);
#endif
    return &node->cb;
}

EventQueue::EventId
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    BUSARB_ASSERT(static_cast<bool>(cb), "null event callback");
    if (policy_ == EventQueuePolicy::kCalendar) {
        EventId id = 0;
        *calScheduleSlot(when, priority, id) = std::move(cb);
        return id;
    }
    BUSARB_ASSERT(when >= now_, "scheduling into the past: when=", when,
                  " now=", now_);
    const EventId id = nextId_++;
    const auto later = [](const HeapEntry &a, const HeapEntry &b) {
        return earlier(b.when, b.priority, b.id, a.when, a.priority, a.id);
    };
    heap_.push_back(HeapEntry{when, priority, id, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), later);
    ++liveCount_;
#if BUSARB_PROFILING_ENABLED
    recordDepth(liveCount_);
#endif
    return id;
}

Tick
EventQueue::saturatedTick(Tick delay) const
{
    BUSARB_ASSERT(delay >= 0, "negative delay: ", delay);
    // Saturate instead of wrapping: now + delay past kMaxTick is signed
    // overflow (UB) before it is ever comparable, so clamp first.
    return delay > kMaxTick - now_ ? kMaxTick : now_ + delay;
}

EventQueue::EventId
EventQueue::scheduleIn(Tick delay, Callback cb, int priority)
{
    return schedule(saturatedTick(delay), std::move(cb), priority);
}

bool
EventQueue::deschedule(EventId id)
{
    if (id == 0 || id >= nextId_)
        return false;
    if (policy_ == EventQueuePolicy::kCalendar) {
        // Deschedules are rare (no per-event bookkeeping is worth
        // carrying for them); find the node by scanning the live set.
        for (std::size_t b = 0; b < buckets_.size(); ++b) {
            for (Node *node = buckets_[b]; node != nullptr;
                 node = node->next) {
                if (node->id != id)
                    continue;
                calRemove(node, b);
                node->~Node();
                arena_.release(node);
                BUSARB_ASSERT(liveCount_ > 0, "live count underflow");
                --liveCount_;
                calMaybeResize();
                return true;
            }
        }
        return false;
    }
    if (cancelled_.count(id) > 0)
        return false;
    const bool live =
        std::any_of(heap_.begin(), heap_.end(),
                    [id](const HeapEntry &e) { return e.id == id; });
    if (!live)
        return false;
    cancelled_.insert(id);
    BUSARB_ASSERT(liveCount_ > 0, "live count underflow");
    --liveCount_;
    // Tombstones for far-future events would otherwise accumulate until
    // they surfaced at the top; compact once they exceed half the live
    // count so cancelled storage stays bounded by the live set.
    if (cancelled_.size() * 2 > liveCount_)
        heapCompactTombstones();
    return true;
}

Tick
EventQueue::nextTick() const
{
    if (policy_ == EventQueuePolicy::kCalendar) {
        const Node *min = calFindMin();
        return min == nullptr ? kMaxTick : min->when;
    }
    heapSift();
    return heap_.empty() ? kMaxTick : heap_.front().when;
}

bool
EventQueue::runOne()
{
    if (policy_ == EventQueuePolicy::kCalendar) {
        Node *min = calFindMin();
        if (min == nullptr)
            return false;
        // The global minimum is always its bucket's head: anything in
        // the same bucket sorting ahead of it would itself be earlier.
        const std::size_t bucket = calBucketOf(min->when);
        BUSARB_ASSERT(buckets_[bucket] == min,
                      "calendar minimum is not its bucket head");
        Node *succ = min->next;
        buckets_[bucket] = succ;
        if (succ == nullptr) {
            tails_[bucket] = nullptr;
            bucketBits_[bucket >> 6] &=
                ~(std::uint64_t{1} << (bucket & 63));
        }
        if (succ != nullptr &&
            (static_cast<std::uint64_t>(succ->when) >> widthLog2_) ==
                (static_cast<std::uint64_t>(min->when) >> widthLog2_)) {
            // A successor in the same year window is exactly what the
            // lap scan from now's bucket would return next.
            cachedMin_ = succ;
            minValid_ = true;
        } else {
            cachedMin_ = nullptr;
            minValid_ = false;
        }
        BUSARB_ASSERT(min->when >= now_, "event queue went backwards");
        now_ = min->when;
        BUSARB_ASSERT(liveCount_ > 0, "live count underflow");
        --liveCount_;
        ++numExecuted_;
        // The node is already unlinked, so the callback can run in
        // place: its slot is not released to the arena until after the
        // call, so events it schedules can never alias this node.
        min->cb();
        min->~Node();
        arena_.release(min);
        // No geometry check here: pops never walk chains (the min is
        // its bucket's head), so mistuned width only costs on inserts
        // and the insert path carries the re-tune triggers.
        return true;
    }

    heapSift();
    if (heap_.empty())
        return false;
    const auto later = [](const HeapEntry &a, const HeapEntry &b) {
        return earlier(b.when, b.priority, b.id, a.when, a.priority, a.id);
    };
    std::pop_heap(heap_.begin(), heap_.end(), later);
    HeapEntry entry = std::move(heap_.back());
    heap_.pop_back();
    BUSARB_ASSERT(entry.when >= now_, "event queue went backwards");
    now_ = entry.when;
    BUSARB_ASSERT(liveCount_ > 0, "live count underflow");
    --liveCount_;
    ++numExecuted_;
    entry.cb();
    return true;
}

std::size_t
EventQueue::run(Tick until)
{
    std::size_t executed = 0;
    while (nextTick() <= until) {
        if (!runOne())
            break;
        ++executed;
    }
    return executed;
}

std::size_t
EventQueue::numTombstones() const
{
    return cancelled_.size();
}

std::size_t
EventQueue::nodeCapacity() const
{
    return policy_ == EventQueuePolicy::kCalendar ? arena_.capacity()
                                                  : heap_.capacity();
}

} // namespace busarb
