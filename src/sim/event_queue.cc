#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace busarb {

EventQueue::EventId
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    BUSARB_ASSERT(when >= now_, "scheduling into the past: when=", when,
                  " now=", now_);
    BUSARB_ASSERT(cb != nullptr, "null event callback");
    const EventId id = nextId_++;
    heap_.push(Entry{when, priority, id, std::move(cb)});
    liveIds_.insert(id);
    ++liveCount_;
#if BUSARB_PROFILING_ENABLED
    recordDepth(liveCount_);
#endif
    return id;
}

EventQueue::EventId
EventQueue::scheduleIn(Tick delay, Callback cb, int priority)
{
    BUSARB_ASSERT(delay >= 0, "negative delay: ", delay);
    return schedule(now_ + delay, std::move(cb), priority);
}

bool
EventQueue::deschedule(EventId id)
{
    // liveIds_ tracks exactly the entries still in the heap and not yet
    // cancelled, so the tombstone set can never leak.
    if (id == 0 || !liveIds_.count(id))
        return false;
    cancelled_.insert(id);
    liveIds_.erase(id);
    BUSARB_ASSERT(liveCount_ > 0, "live count underflow");
    --liveCount_;
    return true;
}

void
EventQueue::skipCancelled() const
{
    while (!heap_.empty() && cancelled_.count(heap_.top().id)) {
        cancelled_.erase(heap_.top().id);
        heap_.pop();
    }
}

Tick
EventQueue::nextTick() const
{
    skipCancelled();
    return heap_.empty() ? kMaxTick : heap_.top().when;
}

bool
EventQueue::runOne()
{
    skipCancelled();
    if (heap_.empty())
        return false;
    Entry top = heap_.top();
    heap_.pop();
    liveIds_.erase(top.id);
    BUSARB_ASSERT(liveCount_ > 0, "live count underflow");
    --liveCount_;
    BUSARB_ASSERT(top.when >= now_, "event queue went backwards");
    now_ = top.when;
    ++numExecuted_;
    top.cb();
    return true;
}

std::size_t
EventQueue::run(Tick until)
{
    std::size_t executed = 0;
    while (nextTick() <= until) {
        if (!runOne())
            break;
        ++executed;
    }
    return executed;
}

} // namespace busarb
