/**
 * @file
 * Error-reporting helpers in the spirit of gem5's base/logging.hh.
 *
 * panic()  - an internal invariant was violated; this is a simulator bug.
 *            Aborts so a debugger / core dump can inspect the state.
 * fatal()  - the simulation cannot continue because of a user error (bad
 *            configuration, invalid arguments). Exits with status 1.
 * warn()   - something suspicious but survivable happened.
 * inform() - a status message with no negative connotation.
 */

#ifndef BUSARB_SIM_LOGGING_HH
#define BUSARB_SIM_LOGGING_HH

#include <functional>
#include <sstream>
#include <string>

namespace busarb {

/**
 * Install a hook run (once) by panic() just before aborting, after the
 * error banner is printed. The hook is thread-local, so each JobPool
 * worker can register its own diagnostic dump (e.g. a flight-recorder
 * tail — see obs/flight_recorder.hh) without racing other scenarios.
 * Passing nullptr uninstalls. The hook is cleared before it runs, so a
 * panic inside the hook cannot recurse.
 *
 * @param hook The callback, or nullptr to uninstall.
 */
void setPanicHook(std::function<void()> hook);

namespace detail {

/** Terminate with an internal-error banner. Never returns. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate with a user-error banner. Never returns. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning banner to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** Fold a list of stream-insertable values into one string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace busarb

/** Report an unrecoverable internal error (simulator bug) and abort. */
#define BUSARB_PANIC(...)                                                  \
    ::busarb::detail::panicImpl(__FILE__, __LINE__,                        \
        ::busarb::detail::formatMessage(__VA_ARGS__))

/** Report an unrecoverable user error and exit(1). */
#define BUSARB_FATAL(...)                                                  \
    ::busarb::detail::fatalImpl(__FILE__, __LINE__,                        \
        ::busarb::detail::formatMessage(__VA_ARGS__))

/** Report a survivable anomaly. */
#define BUSARB_WARN(...)                                                   \
    ::busarb::detail::warnImpl(__FILE__, __LINE__,                         \
        ::busarb::detail::formatMessage(__VA_ARGS__))

/** Report normal operating status. */
#define BUSARB_INFORM(...)                                                 \
    ::busarb::detail::informImpl(                                          \
        ::busarb::detail::formatMessage(__VA_ARGS__))

/** Panic if an invariant does not hold. Active in all build types. */
#define BUSARB_ASSERT(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            BUSARB_PANIC("assertion '" #cond "' failed: ",                 \
                         ::busarb::detail::formatMessage(__VA_ARGS__));    \
        }                                                                  \
    } while (0)

#endif // BUSARB_SIM_LOGGING_HH
