#include "sim/logging.hh"

#include <cstdlib>
#include <iostream>

namespace busarb {

namespace {

thread_local std::function<void()> panic_hook;

} // namespace

void
setPanicHook(std::function<void()> hook)
{
    panic_hook = std::move(hook);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    if (panic_hook) {
        // Clear first so a panic raised by the hook cannot recurse.
        const std::function<void()> hook = std::move(panic_hook);
        panic_hook = nullptr;
        hook();
        std::cerr << std::flush;
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "warn: " << msg << " (" << file << ":" << line << ")"
              << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cerr << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace busarb
