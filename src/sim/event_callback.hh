/**
 * @file
 * Small-buffer-optimized, move-only callback storage for event-queue
 * entries.
 *
 * std::function is the wrong shape for a discrete-event hot path: it is
 * copyable (so popping an entry through std::priority_queue copies the
 * callable), and callables larger than its small internal buffer go to
 * the general-purpose heap once per scheduled event. EventCallback is
 * move-only — popping an event *moves* the callable out of the queue —
 * and carries a 24-byte inline buffer that fits every callback the
 * simulator schedules (lambdas capturing a handful of pointers), so the
 * steady-state event loop performs no callback allocation at all. The
 * size is deliberate: ops pointer + buffer is 32 bytes, which lands a
 * calendar-queue event node on exactly one 64-byte cache line.
 *
 * Callables that do exceed the buffer fall back to the heap; the
 * fall-back count is exposed via heapAllocations() so the micro
 * benchmarks can pin "zero per-pop allocations" as a regression check.
 * The counter is thread-local: each JobPool worker observes only its
 * own runs, keeping the probe race-free and deterministic per run.
 */

#ifndef BUSARB_SIM_EVENT_CALLBACK_HH
#define BUSARB_SIM_EVENT_CALLBACK_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace busarb {

class EventCallback
{
  public:
    /** Inline storage size; larger callables fall back to the heap. */
    static constexpr std::size_t kInlineBytes = 24;

    EventCallback() = default;
    EventCallback(std::nullptr_t) {}

    /** Wrap any nullary callable. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventCallback(F &&fn)
    {
        emplace(std::forward<F>(fn));
    }

    /**
     * Construct a callable directly in this storage, replacing any
     * stored one. Lets the event queue build the callback in its node
     * instead of moving it through temporaries.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    void
    emplace(F &&fn)
    {
        reset();
        using D = std::decay_t<F>;
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void *>(buf_)) D(std::forward<F>(fn));
            ops_ = &kInlineOps<D>;
        } else {
            *reinterpret_cast<D **>(buf_) = new D(std::forward<F>(fn));
            ++heapAllocs();
            ops_ = &kHeapOps<D>;
        }
    }

    EventCallback(EventCallback &&other) noexcept { moveFrom(other); }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    /** @return True iff a callable is stored. */
    explicit operator bool() const { return ops_ != nullptr; }

    /** Invoke the stored callable (must be non-empty). */
    void
    operator()()
    {
        ops_->invoke(buf_);
    }

    /**
     * Number of heap fall-back allocations made by this thread's
     * EventCallback constructions (callables larger than kInlineBytes).
     * Thread-local, so per-run observations are race-free.
     *
     * @return Cumulative fall-back allocation count for this thread.
     */
    static std::uint64_t
    heapAllocations()
    {
        return heapAllocs();
    }

  private:
    struct Ops
    {
        void (*invoke)(void *self);
        /** Move-construct the payload into `dst`, destroying `src`. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *self);
        /** Relocation is a plain buffer copy (trivially copyable
         *  payload, or the heap model's raw pointer): moves take the
         *  inline memcpy path instead of an indirect call. */
        bool trivialRelocate;
        /** Destruction is a no-op; reset() skips the indirect call. */
        bool trivialDestroy;
    };

    template <typename D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= kInlineBytes &&
               alignof(D) <= alignof(void *) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    struct InlineModel
    {
        static void
        invoke(void *self)
        {
            (*std::launder(reinterpret_cast<D *>(self)))();
        }

        static void
        relocate(void *dst, void *src)
        {
            D *s = std::launder(reinterpret_cast<D *>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
        }

        static void
        destroy(void *self)
        {
            std::launder(reinterpret_cast<D *>(self))->~D();
        }
    };

    template <typename D>
    struct HeapModel
    {
        static D *&
        slot(void *self)
        {
            return *reinterpret_cast<D **>(self);
        }

        static void
        invoke(void *self)
        {
            (*slot(self))();
        }

        static void
        relocate(void *dst, void *src)
        {
            *reinterpret_cast<D **>(dst) = slot(src);
        }

        static void
        destroy(void *self)
        {
            delete slot(self);
        }
    };

    template <typename D>
    static constexpr Ops kInlineOps{&InlineModel<D>::invoke,
                                    &InlineModel<D>::relocate,
                                    &InlineModel<D>::destroy,
                                    std::is_trivially_copyable_v<D>,
                                    std::is_trivially_destructible_v<D>};

    template <typename D>
    static constexpr Ops kHeapOps{&HeapModel<D>::invoke,
                                  &HeapModel<D>::relocate,
                                  &HeapModel<D>::destroy,
                                  /*trivialRelocate=*/true,
                                  /*trivialDestroy=*/false};

    static std::uint64_t &
    heapAllocs()
    {
        thread_local std::uint64_t count = 0;
        return count;
    }

    void
    moveFrom(EventCallback &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            if (ops_->trivialRelocate)
                std::memcpy(buf_, other.buf_, kInlineBytes);
            else
                ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    void
    reset()
    {
        if (ops_ != nullptr) {
            if (!ops_->trivialDestroy)
                ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    alignas(void *) unsigned char buf_[kInlineBytes];
};

} // namespace busarb

#endif // BUSARB_SIM_EVENT_CALLBACK_HH
