/**
 * @file
 * A deterministic discrete-event queue.
 *
 * Events are callbacks scheduled at an absolute tick with a small integer
 * priority. Ordering is total and deterministic: (tick, priority, insertion
 * sequence). Determinism matters here because several of the paper's
 * experiments (Table 4.5's "just miss" scenario) depend on exact tie
 * behaviour between simultaneous events.
 */

#ifndef BUSARB_SIM_EVENT_QUEUE_HH
#define BUSARB_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/profiling.hh"
#include "sim/types.hh"

namespace busarb {

/**
 * Priorities for simultaneous events. Lower runs first.
 *
 * The ordering encodes the causal structure of a bus cycle boundary: a
 * transaction completes, then an arbitration that was due resolves, and
 * only then do newly generated requests become visible, so a request
 * issued exactly at a cycle boundary cannot join an arbitration that
 * logically started earlier.
 */
enum EventPriority : int {
    kPriTransactionEnd = 0,
    kPriArbitration = 10,
    kPriRequestArrival = 20,
    // Pass starts run after every same-tick arrival so that requests
    // issued at the same instant all enter the arbitration that begins
    // at that instant.
    kPriBeginPass = 30,
    kPriDefault = 50,
    kPriStats = 90,
};

/**
 * A min-ordered queue of timed callbacks.
 *
 * Not thread-safe; the whole simulator is single-threaded by design.
 */
class EventQueue
{
  public:
    /** Opaque handle for descheduling. 0 is never a valid id. */
    using EventId = std::uint64_t;
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb Callback to invoke.
     * @param priority Tie-break among same-tick events (lower first).
     * @return Handle usable with deschedule().
     */
    EventId schedule(Tick when, Callback cb, int priority = kPriDefault);

    /**
     * Schedule a callback at a delay relative to now().
     *
     * @param delay Non-negative tick delay.
     * @param cb Callback to invoke.
     * @param priority Tie-break among same-tick events (lower first).
     * @return Handle usable with deschedule().
     */
    EventId scheduleIn(Tick delay, Callback cb, int priority = kPriDefault);

    /**
     * Cancel a previously scheduled event.
     *
     * @param id Handle returned by schedule().
     * @retval true The event was pending and is now cancelled.
     * @retval false The event already ran, was cancelled, or never existed.
     */
    bool deschedule(EventId id);

    /** @return true if no live events remain. */
    bool empty() const { return liveCount_ == 0; }

    /** @return Current simulated time in ticks. */
    Tick now() const { return now_; }

    /** @return Tick of the earliest live event; kMaxTick if empty. */
    Tick nextTick() const;

    /**
     * Execute the single earliest live event.
     *
     * @retval true An event was executed.
     * @retval false The queue was empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains or the next event is beyond
     * `until`.
     *
     * Events scheduled exactly at `until` are executed. Time is left at
     * the tick of the last executed event (or unchanged if none ran).
     *
     * @param until Inclusive horizon in ticks.
     * @return Number of events executed by this call.
     */
    std::size_t run(Tick until = kMaxTick);

    /** @return Total events executed over the queue's lifetime. */
    std::uint64_t numExecuted() const { return numExecuted_; }

    /** @return Number of live (scheduled, not cancelled) events. */
    std::size_t numPending() const { return liveCount_; }

    /** Buckets of the profile depth histogram (log2-spaced). */
    static constexpr std::size_t kDepthBuckets = 24;

    /**
     * Largest live-event depth ever reached. Maintained only when the
     * build is profiled (BUSARB_PROFILING, the default); 0 otherwise.
     * Deterministic: depends only on the scheduled event sequence.
     */
    std::size_t
    profileMaxDepth() const
    {
#if BUSARB_PROFILING_ENABLED
        return maxDepth_;
#else
        return 0;
#endif
    }

    /**
     * Per-schedule depth histogram: bucket b counts schedule() calls
     * made while the live depth (after insertion) was in
     * [2^b, 2^(b+1)); depths beyond the last bucket clamp into it.
     * All zeros when the build is not profiled.
     *
     * @return Reference to the bucket array.
     */
    const std::array<std::uint64_t, kDepthBuckets> &
    profileDepthHistogram() const
    {
        return depthLog2_;
    }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        EventId id; // doubles as insertion sequence
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.id > b.id;
        }
    };

    // mutable: nextTick() lazily pops cancelled entries but is logically
    // const.
    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    mutable std::unordered_set<EventId> cancelled_;
    std::unordered_set<EventId> liveIds_;
    Tick now_ = 0;
    EventId nextId_ = 1;
    std::size_t liveCount_ = 0;
    std::uint64_t numExecuted_ = 0;

    // Profile probes: the array stays (zeroed) in unprofiled builds so
    // the accessor keeps one signature, but is only ever written under
    // BUSARB_PROFILING_ENABLED.
    std::array<std::uint64_t, kDepthBuckets> depthLog2_{};
#if BUSARB_PROFILING_ENABLED
    std::size_t maxDepth_ = 0;

    /** Record one schedule() at live depth `depth` (>= 1). */
    void
    recordDepth(std::size_t depth)
    {
        if (depth > maxDepth_)
            maxDepth_ = depth;
        // Bucket floor(log2(depth)), clamped to the last bucket.
        std::size_t b = 0;
        while ((depth >> b) > 1 && b < kDepthBuckets - 1)
            ++b;
        ++depthLog2_[b];
    }
#endif

    /** Drop cancelled entries sitting at the top of the heap. */
    void skipCancelled() const;
};

} // namespace busarb

#endif // BUSARB_SIM_EVENT_QUEUE_HH
