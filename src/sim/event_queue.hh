/**
 * @file
 * A deterministic discrete-event queue.
 *
 * Events are callbacks scheduled at an absolute tick with a small integer
 * priority. Ordering is total and deterministic: (tick, priority, insertion
 * sequence). Determinism matters here because several of the paper's
 * experiments (Table 4.5's "just miss" scenario) depend on exact tie
 * behaviour between simultaneous events.
 *
 * Two storage policies implement the same ordering contract behind one
 * class (see docs/KERNEL.md):
 *
 *  - kCalendar (default): a calendar queue (Brown 1988) tuned for the
 *    integer-tick timestamp distribution. Event nodes live in an arena
 *    (freed slots are recycled, so steady state allocates nothing),
 *    buckets hold short (tick, priority, id)-sorted lists, and the
 *    bucket width re-tunes itself from the live event span as the
 *    queue grows and shrinks. Deschedules unlink directly — no
 *    tombstones.
 *  - kHeap: the classic binary heap with a tombstone set for
 *    cancellations, kept as the reference implementation. Differential
 *    tests pin both policies to bit-identical execution order, and the
 *    benchmarks report the speedup of one over the other.
 *
 * Both policies store callbacks in a small-buffer-optimized, move-only
 * EventCallback, so popping an event moves the callable out instead of
 * copying a std::function off the heap top.
 */

#ifndef BUSARB_SIM_EVENT_QUEUE_HH
#define BUSARB_SIM_EVENT_QUEUE_HH

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/event_callback.hh"
#include "sim/profiling.hh"
#include "sim/types.hh"

namespace busarb {

/**
 * Priorities for simultaneous events. Lower runs first.
 *
 * The ordering encodes the causal structure of a bus cycle boundary: a
 * transaction completes, then an arbitration that was due resolves, and
 * only then do newly generated requests become visible, so a request
 * issued exactly at a cycle boundary cannot join an arbitration that
 * logically started earlier.
 */
enum EventPriority : int {
    kPriTransactionEnd = 0,
    kPriArbitration = 10,
    kPriRequestArrival = 20,
    // Pass starts run after every same-tick arrival so that requests
    // issued at the same instant all enter the arbitration that begins
    // at that instant.
    kPriBeginPass = 30,
    kPriDefault = 50,
    kPriStats = 90,
};

/** Storage policy behind EventQueue; both obey the same ordering. */
enum class EventQueuePolicy {
    kCalendar, ///< calendar queue + arena (the fast default)
    kHeap,     ///< binary heap + tombstones (reference implementation)
};

/** Buckets of the event-queue depth profile histogram (log2-spaced). */
constexpr std::size_t kEventDepthBuckets = 24;

/**
 * Initial calendar-queue geometry. Both values are log2: the calendar
 * re-tunes its bucket width from the live event span as it resizes, so
 * these only seed the first configuration.
 */
struct CalendarTuning
{
    /** log2 of the initial bucket count. */
    std::uint32_t bucketCountLog2 = 6;

    /** log2 of the initial bucket width, in ticks. */
    std::uint32_t bucketWidthLog2 = 20;

    /**
     * Geometry for an expected steady-state live-event depth: roughly
     * two buckets per live event, so bucket lists stay a couple of
     * entries long.
     *
     * @param depth Expected number of live events (e.g. agents + a few
     *        bus events for the closed workloads).
     * @return Tuning with the bucket count sized to the depth.
     */
    static CalendarTuning forExpectedDepth(std::size_t depth);

    /**
     * Geometry from a recorded per-schedule depth histogram (the
     * profiler's queueDepthLog2 / EventQueue::profileDepthHistogram()):
     * the modal log2 depth bucket chooses the initial bucket count, so
     * a profiled run can seed the next run's calendar directly.
     *
     * @param depth_log2 Log2-bucketed schedule-depth counts.
     * @return Tuning sized to the modal depth.
     */
    static CalendarTuning
    fromDepthHistogram(
        const std::array<std::uint64_t, kEventDepthBuckets> &depth_log2);
};

/**
 * A min-ordered queue of timed callbacks.
 *
 * Not thread-safe; the whole simulator is single-threaded by design.
 */
class EventQueue
{
  public:
    /** Opaque handle for descheduling. 0 is never a valid id. */
    using EventId = std::uint64_t;
    using Callback = EventCallback;

    EventQueue() : EventQueue(EventQueuePolicy::kCalendar) {}

    /**
     * @param policy Storage policy (calendar or reference heap).
     * @param tuning Initial calendar geometry; ignored by kHeap.
     */
    explicit EventQueue(EventQueuePolicy policy,
                        CalendarTuning tuning = CalendarTuning{});

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb Callback to invoke.
     * @param priority Tie-break among same-tick events (lower first).
     * @return Handle usable with deschedule().
     */
    EventId schedule(Tick when, Callback cb, int priority = kPriDefault);

    /**
     * Schedule a callable, constructing it directly in the queue's own
     * storage (the arena node for the calendar policy) instead of
     * moving it through a Callback temporary. Semantics are identical
     * to schedule(Tick, Callback, int); this overload only removes two
     * relocations per event from the hot path.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Callback> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventId
    schedule(Tick when, F &&fn, int priority = kPriDefault)
    {
        if (policy_ == EventQueuePolicy::kCalendar) {
            EventId id = 0;
            calScheduleSlot(when, priority, id)
                ->emplace(std::forward<F>(fn));
            return id;
        }
        return schedule(when, Callback(std::forward<F>(fn)), priority);
    }

    /**
     * Schedule a callback at a delay relative to now().
     *
     * Delays reaching past kMaxTick saturate at kMaxTick instead of
     * overflowing: scheduleIn(kMaxTick, ...) is a valid "never, unless
     * the horizon is infinite" sentinel event.
     *
     * @param delay Non-negative tick delay.
     * @param cb Callback to invoke.
     * @param priority Tie-break among same-tick events (lower first).
     * @return Handle usable with deschedule().
     */
    EventId scheduleIn(Tick delay, Callback cb, int priority = kPriDefault);

    /** In-place-constructing variant of scheduleIn; see schedule(). */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Callback> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventId
    scheduleIn(Tick delay, F &&fn, int priority = kPriDefault)
    {
        return schedule(saturatedTick(delay), std::forward<F>(fn),
                        priority);
    }

    /**
     * Cancel a previously scheduled event.
     *
     * @param id Handle returned by schedule().
     * @retval true The event was pending and is now cancelled.
     * @retval false The event already ran, was cancelled, or never existed.
     */
    bool deschedule(EventId id);

    /** @return true if no live events remain. */
    bool empty() const { return liveCount_ == 0; }

    /** @return Current simulated time in ticks. */
    Tick now() const { return now_; }

    /** @return Tick of the earliest live event; kMaxTick if empty. */
    Tick nextTick() const;

    /**
     * Execute the single earliest live event.
     *
     * @retval true An event was executed.
     * @retval false The queue was empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains or the next event is beyond
     * `until`.
     *
     * Events scheduled exactly at `until` are executed. Time is left at
     * the tick of the last executed event (or unchanged if none ran).
     *
     * @param until Inclusive horizon in ticks.
     * @return Number of events executed by this call.
     */
    std::size_t run(Tick until = kMaxTick);

    /** @return Total events executed over the queue's lifetime. */
    std::uint64_t numExecuted() const { return numExecuted_; }

    /** @return Number of live (scheduled, not cancelled) events. */
    std::size_t numPending() const { return liveCount_; }

    /** @return The storage policy this queue was built with. */
    EventQueuePolicy policy() const { return policy_; }

    /**
     * Cancelled-but-not-yet-removed entries. Always 0 for the calendar
     * policy (deschedule unlinks directly); for the heap policy the
     * tombstone set is compacted whenever it exceeds half the live
     * count, so this stays bounded by liveCount / 2 + 1.
     *
     * @return Current tombstone count.
     */
    std::size_t numTombstones() const;

    /**
     * Allocated event-slot capacity: arena node slots (calendar) or
     * heap vector capacity (heap). Used by tests to pin that a
     * schedule/deschedule churn loop cannot grow memory without bound.
     *
     * @return Number of event slots currently allocated.
     */
    std::size_t nodeCapacity() const;

    /** Buckets of the profile depth histogram (log2-spaced). */
    static constexpr std::size_t kDepthBuckets = kEventDepthBuckets;

    /**
     * Largest live-event depth ever reached. Maintained only when the
     * build is profiled (BUSARB_PROFILING, the default); 0 otherwise.
     * Deterministic: depends only on the scheduled event sequence.
     */
    std::size_t
    profileMaxDepth() const
    {
#if BUSARB_PROFILING_ENABLED
        return maxDepth_;
#else
        return 0;
#endif
    }

    /**
     * Per-schedule depth histogram: bucket b counts schedule() calls
     * made while the live depth (after insertion) was in
     * [2^b, 2^(b+1)); depths beyond the last bucket clamp into it.
     * All zeros when the build is not profiled.
     *
     * @return Reference to the bucket array.
     */
    const std::array<std::uint64_t, kDepthBuckets> &
    profileDepthHistogram() const
    {
        return depthLog2_;
    }

  private:
    /** One live calendar event; recycled through the arena. */
    struct Node
    {
        Tick when;
        int priority;
        EventId id; // doubles as insertion sequence
        Node *next;
        Callback cb;
    };
    // The callback's inline buffer is sized so a node is exactly one
    // cache line; a pop touches one line plus the bucket head.
    static_assert(sizeof(Node) == 64, "event node must fit a cache line");

    /**
     * Slab allocator for calendar nodes. Freed slots are threaded onto
     * a free list and recycled, so a steady-state simulation performs
     * no per-event allocation and churn cannot grow memory beyond the
     * high-water mark of live events.
     */
    class NodeArena
    {
      public:
        Node *allocate();
        void release(Node *node);

        /** @return Total node slots allocated across all slabs. */
        std::size_t capacity() const { return capacity_; }

      private:
        union Slot
        {
            Slot *nextFree;
            alignas(Node) unsigned char storage[sizeof(Node)];
        };

        std::vector<std::unique_ptr<Slot[]>> slabs_;
        Slot *freeHead_ = nullptr;
        std::size_t slabFill_ = 0; // used slots in the newest slab
        std::size_t slabSize_ = 0; // slots in the newest slab
        std::size_t capacity_ = 0;
    };

    /** One heap entry (reference policy). */
    struct HeapEntry
    {
        Tick when;
        int priority;
        EventId id;
        Callback cb;
    };

    /** Strict (tick, priority, id) order. */
    static bool
    earlier(Tick aw, int ap, EventId ai, Tick bw, int bp, EventId bi)
    {
        if (aw != bw)
            return aw < bw;
        if (ap != bp)
            return ap < bp;
        return ai < bi;
    }

    /** Clamp now() + delay to kMaxTick (see scheduleIn). */
    Tick saturatedTick(Tick delay) const;

    // --- calendar policy ---
    /** Allocate, link, and account a node; cb is filled by the caller. */
    Callback *calScheduleSlot(Tick when, int priority, EventId &id);
    void calInsert(Node *node);
    Node *calFindMin() const;
    void calRemove(Node *node, std::size_t bucket);
    void calMaybeResize();
    void calRebuild(std::uint32_t count_log2, std::uint32_t width_log2);
    std::size_t
    calBucketOf(Tick when) const
    {
        return (static_cast<std::uint64_t>(when) >> widthLog2_) &
               bucketMask_;
    }

    // --- heap policy ---
    void heapSift() const;
    void heapCompactTombstones();

    EventQueuePolicy policy_;

    // Calendar state. Buckets are heads of (tick, priority, id)-sorted
    // singly-linked lists; the min cache avoids re-scanning between a
    // nextTick() and the runOne() that follows it.
    mutable std::vector<Node *> buckets_;
    // Last node of each bucket list: ids increase monotonically, so the
    // common insert is an O(1) tail append (see calInsert).
    std::vector<Node *> tails_;
    // One bit per bucket (1 = non-empty): the year-lap scan and the
    // sparse-tail fallback jump between occupied buckets with bit
    // scans instead of probing empty heads.
    std::vector<std::uint64_t> bucketBits_;
    std::uint32_t widthLog2_ = 0;
    // The tuned-for geometry is the shrink floor: transient dips below
    // the steady-state depth must not trigger rebuild ping-pong.
    std::uint32_t minCountLog2_ = 0;
    std::size_t opsSinceRebuild_ = 0;
    // Link-walk steps spent in calInsert since the last rebuild; a high
    // steps/ops ratio means the bucket width no longer matches the tick
    // distribution (chains grew long) and triggers a width re-tune.
    std::size_t insertScanSteps_ = 0;
    std::size_t bucketMask_ = 0;
    mutable Node *cachedMin_ = nullptr;
    mutable bool minValid_ = false;
    NodeArena arena_;
    std::vector<Node *> rebuildScratch_;

    // Heap state (reference policy). mutable: nextTick() lazily pops
    // cancelled entries but is logically const.
    mutable std::vector<HeapEntry> heap_;
    mutable std::unordered_set<EventId> cancelled_;

    Tick now_ = 0;
    EventId nextId_ = 1;
    std::size_t liveCount_ = 0;
    std::uint64_t numExecuted_ = 0;

    // Profile probes: the array stays (zeroed) in unprofiled builds so
    // the accessor keeps one signature, but is only ever written under
    // BUSARB_PROFILING_ENABLED.
    std::array<std::uint64_t, kDepthBuckets> depthLog2_{};
#if BUSARB_PROFILING_ENABLED
    std::size_t maxDepth_ = 0;

    /** Record one schedule() at live depth `depth` (>= 1). */
    void
    recordDepth(std::size_t depth)
    {
        if (depth > maxDepth_)
            maxDepth_ = depth;
        // Bucket floor(log2(depth)), clamped to the last bucket.
        const auto lg =
            static_cast<std::size_t>(std::bit_width(depth)) - 1;
        ++depthLog2_[lg < kDepthBuckets ? lg : kDepthBuckets - 1];
    }
#endif
};

} // namespace busarb

#endif // BUSARB_SIM_EVENT_QUEUE_HH
