/**
 * @file
 * Fundamental time and identity types for the busarb simulation kernel.
 *
 * The simulator uses a discrete integer clock. One bus transaction time
 * (the paper's unit of time, Section 4.1) is kTicksPerUnit ticks, so the
 * 0.5-unit arbitration overhead and the deterministic "n - 0.5" worst-case
 * inter-request times of Table 4.5 are represented exactly.
 */

#ifndef BUSARB_SIM_TYPES_HH
#define BUSARB_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace busarb {

/** Simulated time, in ticks. Signed so durations can be subtracted. */
using Tick = std::int64_t;

/** Number of ticks in one bus transaction time (the unit of time). */
constexpr Tick kTicksPerUnit = 1'000'000;

/** A tick value larger than any reachable simulation time. */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

/**
 * Convert a duration expressed in bus-transaction units to ticks.
 *
 * Rounds to the nearest tick; at one-millionth of a transaction time the
 * rounding error is far below anything observable in the output metrics.
 *
 * @param units Duration in transaction times (may be fractional).
 * @return The duration in ticks, never negative.
 */
constexpr Tick
unitsToTicks(double units)
{
    const double scaled = units * static_cast<double>(kTicksPerUnit);
    const Tick t = static_cast<Tick>(scaled + (scaled >= 0.0 ? 0.5 : -0.5));
    return t > 0 ? t : 0;
}

/**
 * Convert ticks back to bus-transaction units.
 *
 * @param ticks Duration in ticks.
 * @return Duration in transaction times.
 */
constexpr double
ticksToUnits(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(kTicksPerUnit);
}

/**
 * Identity of a bus agent.
 *
 * Agents are numbered 1..N as in the paper (Section 2.1: "No agent is
 * assigned the identity 0"), because an all-zero arbitration word must be
 * distinguishable from "no agent competed" on the wired-OR lines.
 */
using AgentId = int;

/** Sentinel meaning "no agent" (e.g. an arbitration nobody entered). */
constexpr AgentId kNoAgent = 0;

} // namespace busarb

#endif // BUSARB_SIM_TYPES_HH
