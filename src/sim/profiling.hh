/**
 * @file
 * Compile-time guard for simulator self-profiling instrumentation.
 *
 * The CMake option BUSARB_PROFILING (ON by default) defines the macro
 * of the same name. When it is OFF, every hot-path probe — the event
 * queue's depth accounting, the scoped phase timers in the runner —
 * compiles down to nothing, so an uninstrumented build pays zero cost.
 * Code should test BUSARB_PROFILING_ENABLED (always defined, 0 or 1)
 * rather than the raw option macro.
 *
 * The instrumentation itself is lock-free by design: every probe
 * accumulates into state owned by a single run (the EventQueue, the
 * per-run Profiler), the same JobPool-safety pattern MetricsRegistry
 * uses. Simulation-derived profile quantities (event counts, queue
 * depths) are deterministic; wall-clock quantities are host-only and
 * must never be written into artifacts compared across --jobs counts.
 */

#ifndef BUSARB_SIM_PROFILING_HH
#define BUSARB_SIM_PROFILING_HH

#if defined(BUSARB_PROFILING) && BUSARB_PROFILING
#define BUSARB_PROFILING_ENABLED 1
#else
#define BUSARB_PROFILING_ENABLED 0
#endif

#endif // BUSARB_SIM_PROFILING_HH
