/**
 * @file
 * The hybrid RR/FCFS protocol sketched in the paper's Section 5:
 * "the round robin protocol might be used only for requests that arrive
 * at the same time, while the FCFS protocol is used for other requests."
 *
 * Requests carry an FCFS waiting-time counter exactly as in FCFS
 * implementation 1 (increment on lose). Requests whose counters tie —
 * i.e. requests that arrived within the same interval between two
 * successive arbitrations — are ordered by the round-robin rule (an RR
 * priority bit relative to the recorded previous winner) instead of by
 * raw static identity, removing the fixed-priority bias among
 * simultaneous arrivals that Table 4.1 measures for plain FCFS.
 *
 * Composite word, most significant first:
 *   [ waiting-time counter | rr bit | static identity ]
 */

#ifndef BUSARB_CORE_HYBRID_HH
#define BUSARB_CORE_HYBRID_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bus/contention.hh"
#include "bus/protocol.hh"
#include "core/pending_requests.hh"

namespace busarb {

/** Configuration of the hybrid protocol. */
struct HybridConfig
{
    /** Counter width in bits; 0 selects ceil(log2(N+1)). */
    int counterBits = 0;
};

/**
 * FCFS-with-round-robin-tie-break protocol (Section 5 extension).
 */
class HybridProtocol : public ArbitrationProtocol
{
  public:
    explicit HybridProtocol(const HybridConfig &config = {});

    void reset(int num_agents) override;
    void requestPosted(const Request &req) override;
    bool wantsPass() const override;
    void beginPass(Tick now) override;
    PassResult completePass(Tick now) override;
    void tenureStarted(const Request &req, Tick now) override;
    std::string name() const override;
    int settleRoundsForPass() const override;

    int
    arbitrationLineCount() const override
    {
        return counterBits_ + 1 + idBits_;
    }

    /** @return The recorded identity of the most recent winner. */
    AgentId recordedWinner() const { return recordedWinner_; }

  private:
    HybridConfig config_;
    int numAgents_ = 0;
    int idBits_ = 0;
    int counterBits_ = 0;
    std::uint64_t counterMax_ = 0;
    AgentId recordedWinner_ = 0;
    PendingRequests pending_;
    bool passOpen_ = false;

    struct FrozenCompetitor
    {
        AgentId agent;
        std::uint64_t word;
        std::uint64_t seq;
    };
    std::vector<FrozenCompetitor> frozen_;

    std::uint64_t wordFor(const PendingEntry &e) const;
};

} // namespace busarb

#endif // BUSARB_CORE_HYBRID_HH
