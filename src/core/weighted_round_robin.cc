#include "core/weighted_round_robin.hh"

#include "sim/logging.hh"

namespace busarb {

WeightedRoundRobinProtocol::WeightedRoundRobinProtocol(
    const WrrConfig &config)
    : config_(config)
{
    for (int w : config_.weights) {
        if (w < 1)
            BUSARB_FATAL("WRR weights must be >= 1, got ", w);
    }
}

void
WeightedRoundRobinProtocol::reset(int num_agents)
{
    BUSARB_ASSERT(num_agents >= 1, "need at least one agent");
    if (config_.weights.size() > 1 &&
        config_.weights.size() != static_cast<std::size_t>(num_agents)) {
        BUSARB_FATAL("WRR weight vector has ", config_.weights.size(),
                     " entries for ", num_agents,
                     " agents (use one weight to broadcast)");
    }
    numAgents_ = num_agents;
    idBits_ = linesForAgents(num_agents);
    // As in RR implementation 1: before any arbitration every identity
    // is "below" the recorded winner, and nobody holds burst credits.
    recordedWinner_ = num_agents + 1;
    credits_ = 0;
    pending_.reset(num_agents);
    frozen_.clear();
    passOpen_ = false;
}

int
WeightedRoundRobinProtocol::weightOf(AgentId agent) const
{
    if (config_.weights.empty())
        return 1;
    if (config_.weights.size() == 1)
        return config_.weights.front();
    return config_.weights[static_cast<std::size_t>(agent - 1)];
}

void
WeightedRoundRobinProtocol::requestPosted(const Request &req)
{
    BUSARB_ASSERT(req.agent >= 1 && req.agent <= numAgents_,
                  "agent id out of range: ", req.agent);
    if (req.priority)
        BUSARB_FATAL("WRR does not support priority-class requests");
    pending_.add(req);
}

bool
WeightedRoundRobinProtocol::wantsPass() const
{
    return !pending_.empty();
}

std::uint64_t
WeightedRoundRobinProtocol::wordFor(AgentId agent) const
{
    const auto id = static_cast<std::uint64_t>(agent);
    const std::uint64_t rr_bit = (agent < recordedWinner_) ? 1 : 0;
    const std::uint64_t claim =
        (agent == recordedWinner_ && credits_ > 0) ? 1 : 0;
    return (claim << (idBits_ + 1)) | (rr_bit << idBits_) | id;
}

void
WeightedRoundRobinProtocol::beginPass(Tick now)
{
    (void)now;
    BUSARB_ASSERT(!passOpen_, "beginPass with a pass already open");
    passOpen_ = true;
    frozen_.clear();
    pending_.forEachAgentWithRequests([&](AgentId a) {
        // All of one agent's requests share a word, so the oldest is
        // presented (PendingRequests keeps arrival order).
        frozen_.push_back(
            FrozenCompetitor{a, wordFor(a), pending_.oldest(a).req.seq});
    });
}

PassResult
WeightedRoundRobinProtocol::completePass(Tick now)
{
    (void)now;
    BUSARB_ASSERT(passOpen_, "completePass without beginPass");
    passOpen_ = false;

    if (frozen_.empty())
        return PassResult::makeIdle();

    const FrozenCompetitor *best = &frozen_.front();
    for (const auto &c : frozen_) {
        BUSARB_ASSERT(c.word != best->word || c.agent == best->agent,
                      "duplicate arbitration word");
        if (c.word > best->word)
            best = &c;
    }

    // Every agent updates the winner identity and the burst credit
    // count; both are functions of broadcast information, so the state
    // stays consistent across agents without extra lines.
    if (best->agent == recordedWinner_ && credits_ > 0) {
        --credits_;
    } else {
        recordedWinner_ = best->agent;
        credits_ = weightOf(best->agent) - 1;
    }

    PendingEntry *entry = pending_.findBySeq(best->agent, best->seq);
    BUSARB_ASSERT(entry != nullptr, "winning request vanished");
    return PassResult::makeWinner(entry->req);
}

void
WeightedRoundRobinProtocol::tenureStarted(const Request &req, Tick now)
{
    (void)now;
    pending_.popBySeq(req.agent, req.seq);
}

int
WeightedRoundRobinProtocol::settleRoundsForPass() const
{
    std::vector<Competitor> competitors;
    competitors.reserve(frozen_.size());
    for (const auto &c : frozen_)
        competitors.push_back(Competitor{c.agent, c.word});
    return settleRounds(arbitrationLineCount(), competitors);
}

std::string
WeightedRoundRobinProtocol::name() const
{
    std::string weights;
    if (config_.weights.empty()) {
        weights = "1";
    } else {
        for (std::size_t i = 0; i < config_.weights.size(); ++i) {
            if (i > 0)
                weights += "/";
            weights += std::to_string(config_.weights[i]);
        }
    }
    return "WRR (weights " + weights + ")";
}

} // namespace busarb
